module P = Statics.Prim
open Lambda

(* ------------------------------------------------------------------ *)
(* Syntactic analyses                                                  *)
(* ------------------------------------------------------------------ *)

let is_atom = function
  | Lvar _ | Lint _ | Lstring _ | Lprim _ | Lbasisexn _ | Lcon0 _ | Limport _ ->
    true
  | _ -> false

(* Pure terms can be dropped or duplicated (well-typed programs only:
   projections cannot fail at run time). *)
let rec is_pure = function
  | Lvar _ | Lint _ | Lstring _ | Limport _ | Lprim _ | Lbasisexn _ | Lfn _
  | Lcon0 _ ->
    true
  | Ltuple parts -> List.for_all is_pure parts
  | Lrecord fields -> List.for_all (fun (_, v) -> is_pure v) fields
  | Lcon (_, e) | Lselect (_, e) | Lfield (_, e) | Lcontag e | Lconarg e
  | Lmkexn0 e | Lexnid e | Lexnarg e ->
    is_pure e
  | Llet (_, e, body) -> is_pure e && is_pure body
  | Lif (c, t, e) -> is_pure c && is_pure t && is_pure e
  | Lfix (_, body) -> is_pure body
  | Lapp _ | Lraise _ | Lhandle _ | Lnewexn _ -> false

let rec count_var v term =
  match term with
  | Lvar v' -> if Support.Symbol.equal v v' then 1 else 0
  | _ ->
    Lambda.fold_subterms (fun acc sub -> acc + count_var v sub) 0 term

(* all binders are globally unique, so no capture is possible *)
let rec subst v replacement term =
  match term with
  | Lvar v' when Support.Symbol.equal v v' -> replacement
  | Lvar _ | Lint _ | Lstring _ | Limport _ | Lprim _ | Lbasisexn _ | Lcon0 _
  | Lnewexn _ ->
    term
  | Lfn (x, body) -> Lfn (x, subst v replacement body)
  | Lapp (f, a) -> Lapp (subst v replacement f, subst v replacement a)
  | Llet (x, e, body) -> Llet (x, subst v replacement e, subst v replacement body)
  | Lfix (binds, body) ->
    Lfix
      ( List.map (fun (f, x, b) -> (f, x, subst v replacement b)) binds,
        subst v replacement body )
  | Ltuple parts -> Ltuple (List.map (subst v replacement) parts)
  | Lselect (i, e) -> Lselect (i, subst v replacement e)
  | Lrecord fields ->
    Lrecord (List.map (fun (n, e) -> (n, subst v replacement e)) fields)
  | Lfield (n, e) -> Lfield (n, subst v replacement e)
  | Lcon (tag, e) -> Lcon (tag, subst v replacement e)
  | Lcontag e -> Lcontag (subst v replacement e)
  | Lconarg e -> Lconarg (subst v replacement e)
  | Lmkexn0 e -> Lmkexn0 (subst v replacement e)
  | Lexnid e -> Lexnid (subst v replacement e)
  | Lexnarg e -> Lexnarg (subst v replacement e)
  | Lif (c, t, e) ->
    Lif (subst v replacement c, subst v replacement t, subst v replacement e)
  | Lraise e -> Lraise (subst v replacement e)
  | Lhandle (e, x, h) -> Lhandle (subst v replacement e, x, subst v replacement h)

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

let bool_term b = Lcon0 (if b then 1 else 0)

let fold_prim prim args =
  match (prim, args) with
  | P.Padd, Ltuple [ Lint a; Lint b ] -> Some (Lint (a + b))
  | P.Psub, Ltuple [ Lint a; Lint b ] -> Some (Lint (a - b))
  | P.Pmul, Ltuple [ Lint a; Lint b ] -> Some (Lint (a * b))
  | P.Pdiv, Ltuple [ Lint a; Lint b ] when b <> 0 -> Some (Lint (a / b))
  | P.Pmod, Ltuple [ Lint a; Lint b ] when b <> 0 -> Some (Lint (a mod b))
  | P.Pneg, Lint a -> Some (Lint (-a))
  | P.Plt, Ltuple [ Lint a; Lint b ] -> Some (bool_term (a < b))
  | P.Ple, Ltuple [ Lint a; Lint b ] -> Some (bool_term (a <= b))
  | P.Pgt, Ltuple [ Lint a; Lint b ] -> Some (bool_term (a > b))
  | P.Pge, Ltuple [ Lint a; Lint b ] -> Some (bool_term (a >= b))
  | P.Peq, Ltuple [ Lint a; Lint b ] -> Some (bool_term (a = b))
  | P.Pneq, Ltuple [ Lint a; Lint b ] -> Some (bool_term (a <> b))
  | P.Peq, Ltuple [ Lstring a; Lstring b ] -> Some (bool_term (String.equal a b))
  | P.Pneq, Ltuple [ Lstring a; Lstring b ] ->
    Some (bool_term (not (String.equal a b)))
  | P.Peq, Ltuple [ Lcon0 a; Lcon0 b ] -> Some (bool_term (a = b))
  | P.Pconcat, Ltuple [ Lstring a; Lstring b ] -> Some (Lstring (a ^ b))
  | P.Psize, Lstring s -> Some (Lint (String.length s))
  | P.Pnot, Lcon0 b -> Some (bool_term (b = 0))
  | P.Pint_to_string, Lint n ->
    Some (Lstring (if n < 0 then "~" ^ string_of_int (-n) else string_of_int n))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* One bottom-up pass                                                  *)
(* ------------------------------------------------------------------ *)

let rec pass term =
  match term with
  | Lvar _ | Lint _ | Lstring _ | Limport _ | Lprim _ | Lbasisexn _ | Lcon0 _
  | Lnewexn _ ->
    term
  | Lfn (x, body) -> Lfn (x, pass body)
  | Lapp (f, a) -> (
    let f = pass f and a = pass a in
    match (f, a) with
    | Lprim p, _ -> (
      match fold_prim p a with Some folded -> folded | None -> Lapp (f, a))
    | Lfn (x, body), _ -> pass (Llet (x, a, body))
    | _ -> Lapp (f, a))
  | Llet (x, e, body) -> (
    let e = pass e and body = pass body in
    if is_atom e then pass_subst x e body
    else
      match count_var x body with
      | 0 when is_pure e -> body
      | 1 when is_pure e ->
        (* single pure use: inline even non-atomic terms *)
        pass_subst x e body
      | _ -> Llet (x, e, body))
  | Lfix (binds, body) ->
    let binds = List.map (fun (f, x, b) -> (f, x, pass b)) binds in
    let body = pass body in
    let used (f, _, _) =
      count_var f body > 0
      || List.exists (fun (_, _, b) -> count_var f b > 0) binds
    in
    let live = List.filter used binds in
    if live = [] then body else Lfix (live, body)
  | Ltuple parts -> Ltuple (List.map pass parts)
  | Lselect (i, e) -> (
    match pass e with
    | Ltuple parts
      when i < List.length parts && List.for_all is_pure parts ->
      List.nth parts i
    | e -> Lselect (i, e))
  | Lrecord fields -> Lrecord (List.map (fun (n, e) -> (n, pass e)) fields)
  | Lfield (n, e) -> (
    match pass e with
    | Lrecord fields
      when List.mem_assoc n fields
           && List.for_all (fun (_, v) -> is_pure v) fields ->
      List.assoc n fields
    | e -> Lfield (n, e))
  | Lcon (tag, e) -> Lcon (tag, pass e)
  | Lcontag e -> (
    match pass e with
    | Lcon0 tag -> Lint tag
    | Lcon (tag, arg) when is_pure arg -> Lint tag
    | e -> Lcontag e)
  | Lconarg e -> (
    match pass e with Lcon (_, arg) -> arg | e -> Lconarg e)
  | Lmkexn0 e -> Lmkexn0 (pass e)
  | Lexnid e -> Lexnid (pass e)
  | Lexnarg e -> Lexnarg (pass e)
  | Lif (c, t, e) -> (
    let c = pass c in
    match c with
    | Lcon0 1 -> pass t
    | Lcon0 0 -> pass e
    | _ -> Lif (c, pass t, pass e))
  | Lraise e -> Lraise (pass e)
  | Lhandle (e, x, h) ->
    let e = pass e in
    if is_pure e then e else Lhandle (e, x, pass h)

and pass_subst x replacement body = pass (subst x replacement body)

type stats = { before_nodes : int; after_nodes : int; passes : int }

let max_passes = 4

let m_passes = Obs.Metrics.counter "simplify.passes"
let m_rewrites = Obs.Metrics.counter "simplify.rewrites"

let term_with_stats t =
  let before_nodes = size t in
  let rec go n t =
    if n >= max_passes then (t, n)
    else
      let t' = pass t in
      if size t' = size t then (t', n + 1) else go (n + 1) t'
  in
  let t', passes = go 0 t in
  Obs.Metrics.add m_passes passes;
  Obs.Metrics.add m_rewrites (before_nodes - size t');
  (t', { before_nodes; after_nodes = size t'; passes })

let term t = fst (term_with_stats t)
