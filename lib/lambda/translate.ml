module Symbol = Support.Symbol
module Diag = Support.Diag
module T = Statics.Tast
module Ty = Statics.Types
open Lambda

let translate_error fmt =
  Diag.error Diag.Translate Support.Loc.dummy fmt

let rec addr (a : Ty.addr) =
  match a with
  | Ty.AdLvar v -> Lvar v
  | Ty.AdField (base, field) -> Lfield (field, addr base)
  | Ty.AdExtern pid -> Limport pid
  | Ty.AdPrim p -> Lprim p
  | Ty.AdBasisExn s -> Lbasisexn s
  | Ty.AdNone -> translate_error "reference to a static-only entity"

let true_tag = 1

let _ = true_tag

(* equality test producing a bool constructor value *)
let eq a b = Lapp (Lprim Statics.Prim.Peq, Ltuple [ a; b ])

(* ------------------------------------------------------------------ *)
(* Pattern-match compilation                                           *)
(* ------------------------------------------------------------------ *)

(* [match_pat pat subject success fail] — lambda code that matches
   [subject] (a variable reference or cheap expression) against [pat],
   binding the pattern's variables around [success ()]; on mismatch
   evaluates [fail] (a call to a join-point thunk, so duplication is
   cheap). *)
let rec match_pat pat subject success fail =
  match pat with
  | T.TPwild -> success ()
  | T.TPvar v -> Llet (v, subject, success ())
  | T.TPint n -> Lif (eq subject (Lint n), success (), fail)
  | T.TPstring s -> Lif (eq subject (Lstring s), success (), fail)
  | T.TPtuple parts ->
    let rec go i parts =
      match parts with
      | [] -> success ()
      | p :: rest ->
        let field = Symbol.fresh "fld" in
        Llet
          ( field,
            Lselect (i, subject),
            match_pat p (Lvar field) (fun () -> go (i + 1) rest) fail )
    in
    go 0 parts
  | T.TPcon (rep, arg) ->
    let on_match () =
      match arg with
      | None -> success ()
      | Some argp ->
        let argv = Symbol.fresh "carg" in
        Llet (argv, Lconarg subject, match_pat argp (Lvar argv) success fail)
    in
    if rep.Ty.rep_span = 1 then on_match ()
    else Lif (eq (Lcontag subject) (Lint rep.Ty.rep_tag), on_match (), fail)
  | T.TPexn (conaddr, arg) ->
    let on_match () =
      match arg with
      | None -> success ()
      | Some argp ->
        let argv = Symbol.fresh "earg" in
        Llet (argv, Lexnarg subject, match_pat argp (Lvar argv) success fail)
    in
    Lif (eq (Lexnid subject) (Lexnid (addr conaddr)), on_match (), fail)
  | T.TPref inner ->
    let contents = Symbol.fresh "contents" in
    Llet
      ( contents,
        Lapp (Lprim Statics.Prim.Pderef, subject),
        match_pat inner (Lvar contents) success fail )
  | T.TPas (v, inner) -> Llet (v, subject, match_pat inner subject success fail)

let fail_exn = function
  | T.FailMatch -> Lmkexn0 (Lbasisexn (Symbol.intern "Match"))
  | T.FailBind -> Lmkexn0 (Lbasisexn (Symbol.intern "Bind"))

(* Compile a rule list over a subject variable.  Each rule's failure
   jumps to the next rule through a thunk, avoiding code blowup. *)
let rec compile_rules subject rules body_of on_exhausted =
  match rules with
  | [] -> on_exhausted
  | (pat, body) :: rest ->
    let next = compile_rules subject rest body_of on_exhausted in
    let k = Symbol.fresh "next" in
    let fail = Lapp (Lvar k, Ltuple []) in
    Llet
      ( k,
        Lfn (Symbol.fresh "unit", next),
        match_pat pat subject (fun () -> body_of body) fail )

let compile_match subject rules body_of fail_kind =
  compile_rules subject rules body_of (Lraise (fail_exn fail_kind))

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec texp (e : T.texp) =
  match e with
  | T.TEint n -> Lint n
  | T.TEstring s -> Lstring s
  | T.TEerror ->
    (* units with reported errors never reach translation *)
    Support.Diag.error Support.Diag.Translate Support.Loc.dummy
      "error placeholder escaped to translation"
  | T.TEvar a -> addr a
  | T.TEprim p -> Lprim p
  | T.TEcon (rep, None) -> Lcon0 rep.Ty.rep_tag
  | T.TEcon (rep, Some arg) -> Lcon (rep.Ty.rep_tag, texp arg)
  | T.TEconfn rep ->
    if rep.Ty.rep_has_arg then
      let x = Symbol.fresh "conarg" in
      Lfn (x, Lcon (rep.Ty.rep_tag, Lvar x))
    else Lcon0 rep.Ty.rep_tag
  | T.TEexncon (a, has_arg) ->
    if has_arg then addr a (* applying an identity constructs a packet *)
    else Lmkexn0 (addr a)
  | T.TEfn rules ->
    let param = Symbol.fresh "param" in
    Lfn (param, compile_match (Lvar param) rules texp T.FailMatch)
  | T.TEapp (f, arg) -> Lapp (texp f, texp arg)
  | T.TEtuple parts -> Ltuple (List.map texp parts)
  | T.TEselect (n, e) -> Lselect (n - 1, texp e)
  | T.TElet (decs, body) -> tdecs decs (texp body)
  | T.TEif (c, t, e) -> Lif (texp c, texp t, texp e)
  | T.TEcase (scrutinee, rules, fail_kind) ->
    let subject = Symbol.fresh "subject" in
    Llet (subject, texp scrutinee, compile_match (Lvar subject) rules texp fail_kind)
  | T.TEraise e -> Lraise (texp e)
  | T.TEhandle (body, rules) ->
    let packet = Symbol.fresh "packet" in
    (* an unhandled packet re-raises *)
    Lhandle
      ( texp body,
        packet,
        compile_rules (Lvar packet) rules texp (Lraise (Lvar packet)) )

(* ------------------------------------------------------------------ *)
(* Declarations and structures                                         *)
(* ------------------------------------------------------------------ *)

and tdec (d : T.tdec) body =
  match d with
  | T.TDval (pat, e, fail_kind) ->
    let subject = Symbol.fresh "bound" in
    Llet
      ( subject,
        texp e,
        compile_match (Lvar subject) [ (pat, ()) ]
          (fun () -> body)
          fail_kind )
  | T.TDrec binds ->
    let fixbinds =
      List.map
        (fun (f, rules) ->
          let param = Symbol.fresh "param" in
          (f, param, compile_match (Lvar param) rules texp T.FailMatch))
        binds
    in
    Lfix (fixbinds, body)
  | T.TDexn (lvar, name, has_arg) -> Llet (lvar, Lnewexn (name, has_arg), body)
  | T.TDstr (lvar, str) -> Llet (lvar, tstr str, body)
  | T.TDfct (lvar, param, bodystr) -> Llet (lvar, Lfn (param, tstr bodystr), body)

and tdecs decs body = List.fold_right tdec decs body

and tstr (s : T.tstr) =
  match s with
  | T.TSvar a -> addr a
  | T.TSstruct (decs, fields) ->
    tdecs decs (Lrecord (List.map (fun (name, e) -> (name, texp e)) fields))
  | T.TSapp (f, arg) -> Lapp (addr f, tstr arg)
  | T.TSthin (inner, thinning) ->
    let v = Symbol.fresh "str" in
    Llet (v, tstr inner, thin (Lvar v) thinning)
  | T.TSlet (decs, inner) -> tdecs decs (tstr inner)

and thin subject thinning =
  Lrecord
    (List.map
       (fun (name, item) ->
         match item with
         | T.ThinVal -> (name, Lfield (name, subject))
         | T.ThinStr sub ->
           let v = Symbol.fresh "sub" in
           (name, Llet (v, Lfield (name, subject), thin (Lvar v) sub)))
       thinning)

let unit_code decs exports =
  tdecs decs (Lrecord (List.map (fun (name, e) -> (name, texp e)) exports))
