(** The remote executor service: a worker pool behind a socket.

    An executor accepts {!Protocol.k_job} frames (unit name as id,
    {!Irm.Wire}-encoded job as payload), compiles them, and answers
    with at most one {!Protocol.k_static} frame (the mid-compile
    static-view release, when the job asks for the pipelined split)
    followed by exactly one {!Protocol.k_result} or
    {!Protocol.k_error}.  Because the job is a pure function of its
    payload, an executor on another machine returns bytes identical to
    a local compile — the fabric's whole correctness story rests on
    that.

    Two modes: [Pool cfg] hosts a supervised {!Worker} pool (the
    production shape — crashes and hangs become E0701/E0702 exactly as
    under [--workers], encoded back over the wire), driven
    nonblockingly from the socket reactor via [Worker.pump].  [Inline]
    compiles synchronously inside the reactor turn — forkless, for
    in-process tests where the chaos harness pumps client and server
    from one domain (fork is unsafe once OCaml domains exist). *)

type mode =
  | Inline
  | Pool of Worker.config

type t

(** [create ~mode addr proto] — bind, listen, serve jobs with [proto]
    (the IRM passes [Irm.Wire.proto ()]).  Port 0 binds an ephemeral
    port; read it back with {!addr}. *)
val create : mode:mode -> Transport.addr -> Worker.proto -> t

val addr : t -> Transport.addr

(** Jobs accepted and not yet answered. *)
val inflight : t -> int

(** One reactor turn (plus, in [Pool] mode, one worker-pool pump). *)
val step : ?timeout_s:float -> t -> unit

val running : t -> bool

(** Loop {!step} until {!stop}. *)
val run : t -> unit

val stop : t -> unit
