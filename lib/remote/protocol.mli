(** The remote build fabric's wire protocol.

    Frames are {!Pickle.Frame} messages — the same CRC-64-trailed
    framing the worker pipes and the compile daemon use — carried over
    a stream socket ({!Transport}).  The fabric's tag space (32–45) is
    disjoint from both the worker protocol (0–6) and the daemon
    protocol (16–20), so a frame aimed at the wrong peer is an
    immediate protocol error, never a misread.

    Conversation shape, both services: the client opens with a
    {!k_hello} frame whose payload is the service's version string; the
    server answers in kind, or replies {!k_error} and closes on a
    mismatch.  The two services carry different version strings, so a
    build client dialing the cache service (or vice versa) fails the
    handshake instead of exchanging nonsense.

    {b Executor service} ([irm serve-exec]): each compile goes out as
    one {!k_job} frame with the unit name as id and a {!Irm.Wire}
    encoded job as payload; the executor replies with at most one
    {!k_static} frame (the unit's static view, released mid-compile
    when the job asks for the pipelined split) and exactly one
    {!k_result} (encoded result) or {!k_error} (encoded exception),
    echoing the id.  Ids may interleave freely — an executor hosts a
    whole worker pool.

    {b Cache service} ([irm serve-cache]): {!k_cache_get} with the
    cache key as id answers {!k_cache_hit} (payload: the object bytes)
    or {!k_cache_miss}; {!k_cache_put} (payload: the object bytes)
    answers {!k_cache_ok}, sent only after the object {e and} its index
    record are durably committed on the service side; {!k_cache_has}
    answers hit/miss with an empty payload. *)

(** Executor service version, exchanged at HELLO. *)
val version_exec : string

(** Cache service version, exchanged at HELLO. *)
val version_cache : string

(** {2 Common frame kinds} *)

val k_hello : int
val k_error : int
val k_ping : int  (** health probe; echoed verbatim *)

(** {2 Executor frames} *)

val k_job : int
val k_result : int
val k_static : int

(** {2 Cache-service frames} *)

val k_cache_get : int
val k_cache_put : int
val k_cache_has : int
val k_cache_hit : int
val k_cache_miss : int
val k_cache_ok : int
