(** Stream transport for the build fabric: framed, nonblocking,
    chaos-injectable connections over Unix-domain or TCP sockets.

    The framing is {!Pickle.Frame} — pure bytes, so the same codec that
    crosses worker pipes crosses the network unchanged.  A connection
    here is the {e client} half; servers accept raw fds through
    {!Netsrv}.  Every connection is nonblocking end to end: [dial]
    starts the connect and returns immediately, [poll] progresses it,
    and the caller multiplexes many connections from one loop — the
    fleet keeps several executor dials in flight while jobs run.

    When an injector is attached, every connect, frame send and frame
    receive consults {!Netchaos} first, so one seed reproduces an
    entire build's worth of network weather. *)

type addr =
  | Unix_sock of string  (** Unix-domain socket path *)
  | Tcp of string * int  (** host, port *)

(** [parse_addr s] — ["unix:PATH"], ["tcp:HOST:PORT"], or a bare path
    (taken as Unix-domain). *)
val parse_addr : string -> (addr, string) result

val addr_to_string : addr -> string

(** The peer cannot be reached: refused, no such socket, reset during
    the handshake, dial deadline expired. *)
exception Unreachable of string

(** The peer is reachable but speaks damage: bad magic, CRC mismatch,
    torn frame. *)
exception Protocol_damage of string

(** [listen addr] — a nonblocking listening socket ([addr] with port 0
    picks an ephemeral port; a stale Unix socket path is unlinked).
    Raises {!Unreachable} when the address cannot be bound. *)
val listen : ?backlog:int -> addr -> Unix.file_descr

(** [bound_addr fd addr] — [addr] with the actual port filled in, for
    listeners bound to port 0. *)
val bound_addr : Unix.file_descr -> addr -> addr

type conn

type status =
  | Connecting  (** the connect (or its chaos delay) is still in flight *)
  | Up
  | Closed of string  (** why the connection died *)

(** [dial ?chaos addr] — begin a nonblocking connect.  Raises
    {!Unreachable} when the failure is immediate (refused, absent). *)
val dial : ?chaos:Netchaos.injector -> addr -> conn

val status : conn -> status
val addr : conn -> addr

(** The fd to select on while the connection lives; [None] once closed. *)
val fd : conn -> Unix.file_descr option

(** True while there are unflushed outgoing bytes. *)
val want_write : conn -> bool

(** [poll t] — progress the connection: finish the connect, read
    whatever the peer sent, flush pending output.  Never blocks, never
    raises; failures park the connection in [Closed]. *)
val poll : conn -> unit

(** [send t ~kind ~id ~payload] — frame and queue a message, flushing
    as much as the socket accepts.  A send on a closed connection is
    dropped silently — the caller observes [Closed] via {!status}. *)
val send : conn -> kind:int -> id:string -> payload:string -> unit

(** [recv t] — the next complete frame, if one has arrived.  Raises
    {!Protocol_damage} on a provably damaged stream (the connection is
    closed first). *)
val recv : conn -> Pickle.Frame.msg option

val close : conn -> unit
