(** The shared cache service: many builders, one content-addressed
    store, over sockets.

    The store is the PR-2 unit cache, sharded by key prefix: keys are
    hex MD5 pids, so the first hex digit (mod the shard count) spreads
    entries across [shards] independent {!Cache.t} instances, each with
    its own directory, journal, and LRU budget — journal compaction and
    eviction in one shard never blocks the others.

    Correctness across the network leans on two properties the local
    cache already has.  {b Commit ordering}: [Cache.store] commits the
    object file (atomic rename) strictly before appending the index
    record, and the service acknowledges a put ({!Protocol.k_cache_ok})
    only after [store] returns — so by the time any builder can observe
    the key, the object it names is durably present, no matter which
    machine asked.  {b Last-writer-wins idempotent puts}: keys are
    content addresses, so two builders racing to put the same key carry
    byte-identical objects; the service asserts that instead of
    locking, logs the (impossible outside corruption) mismatch, and
    lets the last writer win. *)

type t

(** [create ?shards ?budget_bytes ~dir addr fs] — bind the service on
    [addr], storing shard [i] under [dir/shard-<i>].  [shards] defaults
    to 4; [budget_bytes] is the {e per-shard} LRU budget. *)
val create :
  ?shards:int -> ?budget_bytes:int -> dir:string -> Transport.addr -> Vfs.fs -> t

val addr : t -> Transport.addr

(** Requests served since start. *)
val served : t -> int

(** Puts whose key already held different bytes (corruption tell-tale;
    expected to stay 0). *)
val conflicts : t -> int

val step : ?timeout_s:float -> t -> unit
val running : t -> bool
val run : t -> unit
val stop : t -> unit
