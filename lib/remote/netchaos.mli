(** Deterministic network fault injection.

    The socket-level sibling of [Vfs.faulty]: a {e plan} names which
    network operation misbehaves and how, an {e injector} counts
    operations per class and fires the faults on schedule.  The
    transport consults the injector at every connect, frame send, and
    frame receive, so a whole build sees an exactly reproducible
    sequence of partitions, resets, stragglers and duplicated replies —
    the chaos harness publishes failing seeds the same way the VFS
    fault tests do.

    Faults model the network, not the peers: they are injected on the
    {e client} side of each connection (the fleet's and the cache
    client's), leaving server processes untouched. *)

type fault =
  | Refuse  (** connect: the peer actively refuses *)
  | Reset  (** send/recv: the connection is torn down mid-stream *)
  | Black_hole  (** the frame silently vanishes; the peer never sees it *)
  | Delay of float  (** the operation completes late by this many seconds *)
  | Truncate_frame
      (** send: only a prefix of the frame leaves before the connection
          dies — the peer sees a torn stream *)
  | Duplicate_response  (** recv: the frame is delivered twice *)

val fault_name : fault -> string

(** The operation classes the injector counts independently. *)
type op = Connect | Send | Recv

val op_name : op -> string

(** Fire [ce_fault] on the [ce_at]-th operation (1-based) of class
    [ce_op]. *)
type event = { ce_op : op; ce_at : int; ce_fault : fault }

type plan = event list

val pp_plan : Format.formatter -> plan -> unit

(** [seeded_plan ~seed ~ops] — a small deterministic plan (1–4 events
    over roughly [ops] operations) with class-appropriate faults.
    Same seed, same plan. *)
val seeded_plan : seed:int -> ops:int -> plan

(** The environment variable {!of_env} parses ([SMLSEP_NET_CHAOS]). *)
val env_var : string

(** [of_env ()] — the plan [SMLSEP_NET_CHAOS=SEED[:OPS]] asks for
    ([ops] defaults to 64); [None] when unset or unparsable. *)
val of_env : unit -> plan option

(** A counting instance of a plan.  Share one injector across every
    connection of a build so the counters span the whole fabric. *)
type injector

val injector : plan -> injector

(** [fire inj op] — count one operation of class [op]; the fault due
    now, if any. *)
val fire : injector -> op -> fault option

(** Faults fired so far. *)
val fired : injector -> int
