module Frame = Pickle.Frame

type conn_state = {
  n_id : int;
  n_fd : Unix.file_descr;
  mutable n_in : string;
  mutable n_out : string;
  mutable n_hello : bool;
  mutable n_close_after_flush : bool;
  mutable n_alive : bool;
}

type t = {
  version : string;
  listen_fd : Unix.file_descr;
  bound : Transport.addr;
  mutable handler : (conn:int -> Frame.msg -> unit) option;
  mutable on_step : (unit -> unit) option;
  mutable conns : conn_state list;
  mutable next_id : int;
  mutable running : bool;
}

let m_conns = Obs.Metrics.counter "netsrv.connections"
let m_frames = Obs.Metrics.counter "netsrv.frames"

let create ~version addr =
  let fd = Transport.listen addr in
  {
    version;
    listen_fd = fd;
    bound = Transport.bound_addr fd addr;
    handler = None;
    on_step = None;
    conns = [];
    next_id = 0;
    running = true;
  }

let addr t = t.bound
let set_handler t f = t.handler <- Some f
let set_on_step t f = t.on_step <- Some f

let drop conn =
  if conn.n_alive then begin
    conn.n_alive <- false;
    conn.n_in <- "";
    conn.n_out <- "";
    try Unix.close conn.n_fd with Unix.Unix_error _ -> ()
  end

let find_conn t id =
  List.find_opt (fun c -> c.n_alive && c.n_id = id) t.conns

let send_conn conn ~kind ~id ~payload =
  if conn.n_alive then
    conn.n_out <- conn.n_out ^ Frame.encode ~kind ~id ~payload

let send t ~conn ~kind ~id ~payload =
  match find_conn t conn with
  | Some c -> send_conn c ~kind ~id ~payload
  | None -> ()

let conn_alive t ~conn = Option.is_some (find_conn t conn)

let handle_msg t conn (msg : Frame.msg) =
  Obs.Metrics.incr m_frames;
  if not conn.n_hello then
    if msg.f_kind = Protocol.k_hello then
      if String.equal msg.f_payload t.version then begin
        conn.n_hello <- true;
        send_conn conn ~kind:Protocol.k_hello ~id:msg.f_id ~payload:t.version
      end
      else begin
        send_conn conn ~kind:Protocol.k_error ~id:msg.f_id
          ~payload:
            (Printf.sprintf "version mismatch: service %s, client %s"
               t.version msg.f_payload);
        conn.n_close_after_flush <- true
      end
    else begin
      send_conn conn ~kind:Protocol.k_error ~id:msg.f_id
        ~payload:"expected a HELLO frame";
      conn.n_close_after_flush <- true
    end
  else if msg.f_kind = Protocol.k_ping then
    send_conn conn ~kind:Protocol.k_ping ~id:msg.f_id ~payload:msg.f_payload
  else
    match t.handler with
    | None ->
      send_conn conn ~kind:Protocol.k_error ~id:msg.f_id
        ~payload:"service has no handler"
    | Some f -> (
      match f ~conn:conn.n_id msg with
      | () -> ()
      | exception exn ->
        send_conn conn ~kind:Protocol.k_error ~id:msg.f_id
          ~payload:("service failure: " ^ Printexc.to_string exn);
        conn.n_close_after_flush <- true)

(* a peer feeding us garbage gets a best-effort error frame and a
   close — never an exception out of the reactor *)
let rec parse_conn t conn =
  if conn.n_alive && not conn.n_close_after_flush then
    match Frame.pop conn.n_in with
    | exception Pickle.Buf.Corrupt reason ->
      conn.n_in <- "";
      send_conn conn ~kind:Protocol.k_error ~id:""
        ~payload:("corrupt frame: " ^ reason);
      conn.n_close_after_flush <- true
    | None -> ()
    | Some (msg, rest) ->
      conn.n_in <- rest;
      handle_msg t conn msg;
      parse_conn t conn

let read_conn t conn =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Unix.read conn.n_fd chunk 0 (Bytes.length chunk) with
    | 0 -> drop conn
    | n ->
      conn.n_in <- conn.n_in ^ Bytes.sub_string chunk 0 n;
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> drop conn
  in
  go ();
  if conn.n_alive then parse_conn t conn

let flush_conn conn =
  let rec go () =
    if conn.n_alive && conn.n_out <> "" then
      match
        Unix.write_substring conn.n_fd conn.n_out 0 (String.length conn.n_out)
      with
      | n ->
        conn.n_out <- String.sub conn.n_out n (String.length conn.n_out - n);
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> drop conn
  in
  go ();
  if conn.n_alive && conn.n_out = "" && conn.n_close_after_flush then
    drop conn

let accept_conns t =
  let rec go () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      Obs.Metrics.incr m_conns;
      t.next_id <- t.next_id + 1;
      t.conns <-
        {
          n_id = t.next_id;
          n_fd = fd;
          n_in = "";
          n_out = "";
          n_hello = false;
          n_close_after_flush = false;
          n_alive = true;
        }
        :: t.conns;
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let step ?(timeout_s = 0.) t =
  if t.running then begin
    let live = List.filter (fun c -> c.n_alive) t.conns in
    let reads = t.listen_fd :: List.map (fun c -> c.n_fd) live in
    let writes =
      List.filter_map
        (fun c -> if c.n_out <> "" then Some c.n_fd else None)
        live
    in
    let readable, writable, _ =
      try Unix.select reads writes [] timeout_s
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.memq t.listen_fd readable then accept_conns t;
    List.iter
      (fun c ->
        if c.n_alive && List.memq c.n_fd readable then read_conn t c)
      live;
    List.iter
      (fun c ->
        if c.n_alive && (List.memq c.n_fd writable || c.n_out <> "") then
          flush_conn c)
      live;
    t.conns <- List.filter (fun c -> c.n_alive) t.conns;
    match t.on_step with Some f -> f () | None -> ()
  end

let running t = t.running

let stop t =
  if t.running then begin
    t.running <- false;
    List.iter drop t.conns;
    t.conns <- [];
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    match addr t with
    | Transport.Unix_sock path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
    | Transport.Tcp _ -> ()
  end

let run t =
  while t.running do
    step ~timeout_s:0.05 t
  done
