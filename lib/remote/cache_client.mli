(** Client side of the shared cache: a {!Cache.ops} that reads through
    a remote service into a local store.

    Lookup order: local store first (hits cost nothing on the wire),
    then the service; a remote hit is written back locally so the next
    probe stays local.  Stores go to both — the local write is
    unconditional, the remote put is best-effort.  Invalidation is
    local only: a corrupt object is a local observation, and the keyed
    entry will be refetched and re-validated anyway.

    {b Degradation}: any transport failure — refused dial, reset,
    damage, deadline — parks the client in degraded mode: operations
    fall back to the local store alone, a warning is logged once, and
    the build continues.  Redials follow {!Support.Backoff}, so a
    service that comes back is picked up without hammering it while it
    is down.  The driver never observes an exception from these ops. *)

type t

(** [create ?local ?tick ?chaos ?timeout_s ?log addr] — a client of the
    service at [addr].  [local] is the read-through store (typically
    [Cache.ops (Cache.create fs)]); omitted, the client is
    remote-only.  [tick] runs inside every wait loop — the in-process
    chaos harness uses it to pump the service's reactor from the same
    domain.  [timeout_s] bounds each remote operation (default 5 s). *)
val create :
  ?local:Cache.ops ->
  ?tick:(unit -> unit) ->
  ?chaos:Netchaos.injector ->
  ?timeout_s:float ->
  ?log:(string -> unit) ->
  Transport.addr ->
  t

(** The composite operations to hand to [Driver.build]. *)
val ops : t -> Cache.ops

(** True once the client has fallen back to local-only operation
    (it may still recover on a later redial). *)
val degraded : t -> bool

(** Remote hits / remote misses / remote puts so far. *)
val remote_hits : t -> int

val remote_misses : t -> int
val remote_puts : t -> int

val close : t -> unit
