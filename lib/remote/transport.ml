module Frame = Pickle.Frame

type addr = Unix_sock of string | Tcp of string * int

let parse_addr s =
  let prefix p = String.length s > String.length p && String.starts_with ~prefix:p s in
  let after p = String.sub s (String.length p) (String.length s - String.length p) in
  if prefix "unix:" then Ok (Unix_sock (after "unix:"))
  else if prefix "tcp:" then begin
    let rest = after "tcp:" in
    match String.rindex_opt rest ':' with
    | None -> Error (Printf.sprintf "bad tcp address %S (want tcp:HOST:PORT)" s)
    | Some i -> (
      let host = String.sub rest 0 i in
      match int_of_string_opt (String.sub rest (i + 1) (String.length rest - i - 1)) with
      | Some port when host <> "" -> Ok (Tcp (host, port))
      | _ -> Error (Printf.sprintf "bad tcp address %S (want tcp:HOST:PORT)" s))
  end
  else if s = "" then Error "empty address"
  else Ok (Unix_sock s)

let addr_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

exception Unreachable of string
exception Protocol_damage of string

let sockaddr_of = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
    let ip =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found | Invalid_argument _ ->
        raise (Unreachable (Printf.sprintf "unknown host %s" host))
    in
    Unix.ADDR_INET (ip, port)

let domain_of = function
  | Unix_sock _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET

let listen ?(backlog = 16) addr =
  (match addr with
  | Unix_sock path when Sys.file_exists path -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | Unix_sock _ | Tcp _ -> ());
  let fd = Unix.socket ~cloexec:true (domain_of addr) Unix.SOCK_STREAM 0 in
  (try
     (match addr with
     | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
     | Unix_sock _ -> ());
     Unix.bind fd (sockaddr_of addr);
     Unix.listen fd backlog;
     Unix.set_nonblock fd
   with
  | Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise
      (Unreachable
         (Printf.sprintf "cannot listen on %s: %s" (addr_to_string addr)
            (Unix.error_message e)))
  | exn ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise exn);
  fd

let bound_addr fd addr =
  match (addr, Unix.getsockname fd) with
  | Tcp (host, _), Unix.ADDR_INET (_, port) -> Tcp (host, port)
  | (Unix_sock _ | Tcp _), _ -> addr

type status = Connecting | Up | Closed of string

type conn = {
  c_addr : addr;
  mutable c_fd : Unix.file_descr option;
  mutable c_status : status;
  mutable c_in : string;
  mutable c_out : string;
  mutable c_redeliver : Frame.msg list;  (** chaos-duplicated frames *)
  mutable c_ready_at : float;  (** chaos connect delay gate *)
  mutable c_kill_after_flush : bool;  (** chaos truncation in progress *)
  c_chaos : Netchaos.injector option;
}

let m_dials = Obs.Metrics.counter "remote.dials"
let m_bytes_in = Obs.Metrics.counter "remote.bytes_in"
let m_bytes_out = Obs.Metrics.counter "remote.bytes_out"
let m_chaos = Obs.Metrics.counter "remote.chaos_faults"

let close_fd t =
  match t.c_fd with
  | Some fd ->
    t.c_fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ()

let kill t reason =
  (match t.c_status with
  | Closed _ -> ()
  | Connecting | Up -> t.c_status <- Closed reason);
  t.c_out <- "";
  close_fd t

let fire t op =
  match t.c_chaos with
  | None -> None
  | Some inj ->
    let f = Netchaos.fire inj op in
    (match f with
    | Some fault ->
      Obs.Metrics.incr m_chaos;
      Obs.Trace.instant ~cat:"remote"
        ~args:
          [ ("op", Netchaos.op_name op); ("fault", Netchaos.fault_name fault) ]
        "remote.chaos"
    | None -> ());
    f

let dial ?chaos addr =
  Obs.Metrics.incr m_dials;
  let t =
    {
      c_addr = addr;
      c_fd = None;
      c_status = Connecting;
      c_in = "";
      c_out = "";
      c_redeliver = [];
      c_ready_at = 0.;
      c_kill_after_flush = false;
      c_chaos = chaos;
    }
  in
  (match fire t Netchaos.Connect with
  | Some Netchaos.Refuse ->
    raise (Unreachable ("chaos: connection refused by " ^ addr_to_string addr))
  | Some (Netchaos.Delay d) -> t.c_ready_at <- Unix.gettimeofday () +. d
  | Some
      ( Netchaos.Reset | Netchaos.Black_hole | Netchaos.Truncate_frame
      | Netchaos.Duplicate_response )
  | None -> ());
  let fd = Unix.socket ~cloexec:true (domain_of addr) Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  t.c_fd <- Some fd;
  (match Unix.connect fd (sockaddr_of addr) with
  | () -> if t.c_ready_at = 0. then t.c_status <- Up
  | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
    -> ()
  | exception Unix.Unix_error (e, _, _) ->
    close_fd t;
    raise
      (Unreachable
         (Printf.sprintf "%s: %s" (addr_to_string addr) (Unix.error_message e)))
  | exception exn ->
    close_fd t;
    raise exn);
  t

let status t = t.c_status
let addr t = t.c_addr
let fd t = t.c_fd
let want_write t = t.c_out <> "" && t.c_fd <> None

let flush t =
  match t.c_fd with
  | None -> ()
  | Some fd ->
    let rec go () =
      if t.c_out <> "" then
        match Unix.write_substring fd t.c_out 0 (String.length t.c_out) with
        | n ->
          Obs.Metrics.add m_bytes_out n;
          t.c_out <- String.sub t.c_out n (String.length t.c_out - n);
          go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (e, _, _) ->
          kill t (Printf.sprintf "write failed: %s" (Unix.error_message e))
    in
    go ();
    if t.c_out = "" && t.c_kill_after_flush then
      kill t "chaos: connection reset mid-frame"

let read_in t =
  match t.c_fd with
  | None -> ()
  | Some fd ->
    let chunk = Bytes.create 65536 in
    let rec go () =
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> kill t "peer closed the connection"
      | n ->
        Obs.Metrics.add m_bytes_in n;
        t.c_in <- t.c_in ^ Bytes.sub_string chunk 0 n;
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (e, _, _) ->
        kill t (Printf.sprintf "read failed: %s" (Unix.error_message e))
    in
    go ()

let poll t =
  match t.c_status with
  | Closed _ -> ()
  | Connecting -> (
    match t.c_fd with
    | None -> kill t "no socket"
    | Some fd -> (
      if t.c_ready_at > 0. && Unix.gettimeofday () < t.c_ready_at then ()
      else
        (* a pending nonblocking connect resolves when the socket turns
           writable; the error (if any) is read with getsockopt *)
        match Unix.select [] [ fd ] [] 0. with
        | _, [ _ ], _ -> (
          match Unix.getsockopt_error fd with
          | None ->
            t.c_status <- Up;
            flush t
          | Some e ->
            kill t
              (Printf.sprintf "connect failed: %s" (Unix.error_message e)))
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
  | Up ->
    read_in t;
    flush t

let send t ~kind ~id ~payload =
  match t.c_status with
  | Closed _ -> ()
  | Connecting | Up -> (
    let frame = Frame.encode ~kind ~id ~payload in
    match fire t Netchaos.Send with
    | Some Netchaos.Reset -> kill t "chaos: connection reset"
    | Some Netchaos.Black_hole ->
      (* the frame vanishes on the wire; the connection itself lives *)
      ()
    | Some Netchaos.Truncate_frame ->
      t.c_out <- t.c_out ^ String.sub frame 0 (String.length frame / 2);
      t.c_kill_after_flush <- true;
      flush t
    | Some (Netchaos.Delay d) ->
      Unix.sleepf d;
      t.c_out <- t.c_out ^ frame;
      flush t
    | Some (Netchaos.Refuse | Netchaos.Duplicate_response) | None ->
      t.c_out <- t.c_out ^ frame;
      flush t)

let rec recv t =
  match t.c_redeliver with
  | msg :: rest ->
    t.c_redeliver <- rest;
    Some msg
  | [] -> (
    match Frame.pop t.c_in with
    | exception Pickle.Buf.Corrupt reason ->
      kill t ("corrupt frame: " ^ reason);
      raise (Protocol_damage reason)
    | None -> None
    | Some (msg, rest) -> (
      t.c_in <- rest;
      match fire t Netchaos.Recv with
      | Some Netchaos.Reset ->
        kill t "chaos: connection reset";
        None
      | Some Netchaos.Black_hole ->
        (* this frame never arrives; later ones may *)
        recv t
      | Some Netchaos.Duplicate_response ->
        t.c_redeliver <- t.c_redeliver @ [ msg ];
        Some msg
      | Some (Netchaos.Delay d) ->
        Unix.sleepf d;
        Some msg
      | Some (Netchaos.Refuse | Netchaos.Truncate_frame) | None -> Some msg))

let close t = kill t "closed"
