type fault =
  | Refuse
  | Reset
  | Black_hole
  | Delay of float
  | Truncate_frame
  | Duplicate_response

let fault_name = function
  | Refuse -> "refuse"
  | Reset -> "reset"
  | Black_hole -> "black-hole"
  | Delay s -> Printf.sprintf "delay-%gms" (1000. *. s)
  | Truncate_frame -> "truncate-frame"
  | Duplicate_response -> "duplicate-response"

type op = Connect | Send | Recv

let op_name = function Connect -> "connect" | Send -> "send" | Recv -> "recv"

type event = { ce_op : op; ce_at : int; ce_fault : fault }
type plan = event list

let pp_plan ppf plan =
  Format.fprintf ppf "[%s]"
    (String.concat "; "
       (List.map
          (fun e ->
            Printf.sprintf "%s@%d:%s" (op_name e.ce_op) e.ce_at
              (fault_name e.ce_fault))
          plan))

(* class-appropriate faults only: a duplicated connect or a refused
   recv would not correspond to anything a real network does *)
let seeded_plan ~seed ~ops =
  let state = Random.State.make [| seed; ops; 0x4E7; 0x5EED |] in
  let ops = max 1 ops in
  let n_faults = 1 + Random.State.int state 4 in
  List.init n_faults (fun _ ->
      let ce_at = 1 + Random.State.int state ops in
      let delay () = Delay (0.001 +. Random.State.float state 0.02) in
      match Random.State.int state 3 with
      | 0 ->
        let ce_fault =
          match Random.State.int state 3 with
          | 0 -> Refuse
          | 1 -> delay ()
          | _ -> Refuse
        in
        { ce_op = Connect; ce_at; ce_fault }
      | 1 ->
        let ce_fault =
          match Random.State.int state 4 with
          | 0 -> Reset
          | 1 -> Black_hole
          | 2 -> Truncate_frame
          | _ -> delay ()
        in
        { ce_op = Send; ce_at; ce_fault }
      | _ ->
        let ce_fault =
          match Random.State.int state 4 with
          | 0 -> Reset
          | 1 -> Black_hole
          | 2 -> Duplicate_response
          | _ -> delay ()
        in
        { ce_op = Recv; ce_at; ce_fault })

let env_var = "SMLSEP_NET_CHAOS"

let of_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> None
  | Some spec -> (
    let seed, ops =
      match String.index_opt spec ':' with
      | None -> (int_of_string_opt spec, Some 64)
      | Some i ->
        ( int_of_string_opt (String.sub spec 0 i),
          int_of_string_opt
            (String.sub spec (i + 1) (String.length spec - i - 1)) )
    in
    match (seed, ops) with
    | Some seed, Some ops -> Some (seeded_plan ~seed ~ops)
    | _ -> None)

type injector = {
  plan : plan;
  counts : (op, int) Hashtbl.t;
  mutable n_fired : int;
}

let injector plan = { plan; counts = Hashtbl.create 3; n_fired = 0 }

let fire inj op =
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt inj.counts op) in
  Hashtbl.replace inj.counts op n;
  match
    List.find_opt (fun e -> e.ce_op = op && e.ce_at = n) inj.plan
  with
  | Some e ->
    inj.n_fired <- inj.n_fired + 1;
    Some e.ce_fault
  | None -> None

let fired inj = inj.n_fired
