module Frame = Pickle.Frame

type t = {
  addr : Transport.addr;
  local : Cache.ops option;
  tick : (unit -> unit) option;
  chaos : Netchaos.injector option;
  timeout_s : float;
  log : string -> unit;
  backoff : Support.Backoff.t;
  mutable conn : Transport.conn option;  (** greeted and usable *)
  mutable degraded : bool;
  mutable warned : bool;
  mutable dial_attempts : int;
  mutable retry_at : float;
  mutable hits : int;
  mutable misses : int;
  mutable puts : int;
  mutable closed : bool;
}

let m_remote_hits = Obs.Metrics.counter "cache_client.remote_hits"
let m_remote_misses = Obs.Metrics.counter "cache_client.remote_misses"
let m_remote_puts = Obs.Metrics.counter "cache_client.remote_puts"
let m_degraded = Obs.Metrics.counter "cache_client.degraded"

let create ?local ?tick ?chaos ?(timeout_s = 5.) ?(log = prerr_endline) addr =
  {
    addr;
    local;
    tick;
    chaos;
    timeout_s;
    log;
    backoff = Support.Backoff.create ~base_s:0.2 ~cap_s:10. ();
    conn = None;
    degraded = false;
    warned = false;
    dial_attempts = 0;
    retry_at = 0.;
    hits = 0;
    misses = 0;
    puts = 0;
    closed = false;
  }

exception Gave_up of string

let tick t =
  match t.tick with Some f -> f () | None -> ()

let drop_conn t =
  (match t.conn with Some c -> Transport.close c | None -> ());
  t.conn <- None

(* remote failure: log the first one, park in degraded mode, and
   schedule a redial — the local store carries the build meanwhile *)
let degrade t reason =
  drop_conn t;
  if not t.degraded then Obs.Metrics.incr m_degraded;
  t.degraded <- true;
  if not t.warned then begin
    t.warned <- true;
    t.log
      (Printf.sprintf
         "warning: shared cache %s unreachable (%s); continuing with the \
          local cache only"
         (Transport.addr_to_string t.addr)
         reason)
  end;
  t.dial_attempts <- t.dial_attempts + 1;
  t.retry_at <-
    Unix.gettimeofday ()
    +. Support.Backoff.delay t.backoff ~attempt:(t.dial_attempts - 1)

(* block (ticking) until the transport yields a frame or the deadline
   passes.  All failure modes funnel into Gave_up. *)
let await_frame t conn ~deadline =
  let rec go () =
    tick t;
    Transport.poll conn;
    match Transport.recv conn with
    | Some msg -> msg
    | None -> (
      match Transport.status conn with
      | Transport.Closed reason -> raise (Gave_up reason)
      | Transport.Connecting | Transport.Up ->
        let now = Unix.gettimeofday () in
        if now >= deadline then raise (Gave_up "operation timed out")
        else begin
          (match Transport.fd conn with
          | Some fd -> (
            let w = if Transport.want_write conn then [ fd ] else [] in
            try
              ignore
                (Unix.select [ fd ] w []
                   (Float.min 0.01 (deadline -. now)))
            with Unix.Unix_error (Unix.EINTR, _, _) -> ())
          | None -> ());
          go ()
        end)
    | exception Transport.Protocol_damage reason -> raise (Gave_up reason)
  in
  go ()

(* a greeted connection, dialing and handshaking if needed *)
let connect t =
  match t.conn with
  | Some c -> c
  | None ->
    if t.degraded && Unix.gettimeofday () < t.retry_at then
      raise (Gave_up "degraded; redial not due yet");
    let deadline = Unix.gettimeofday () +. t.timeout_s in
    let conn =
      try Transport.dial ?chaos:t.chaos t.addr
      with Transport.Unreachable reason -> raise (Gave_up reason)
    in
    Transport.send conn ~kind:Protocol.k_hello ~id:""
      ~payload:Protocol.version_cache;
    let msg = await_frame t conn ~deadline in
    if
      msg.Frame.f_kind = Protocol.k_hello
      && String.equal msg.Frame.f_payload Protocol.version_cache
    then begin
      t.conn <- Some conn;
      if t.degraded then begin
        t.degraded <- false;
        t.warned <- false;
        t.dial_attempts <- 0;
        t.log
          (Printf.sprintf "shared cache %s is back; resuming read-through"
             (Transport.addr_to_string t.addr))
      end;
      conn
    end
    else begin
      Transport.close conn;
      raise (Gave_up "cache service handshake failed")
    end

(* one remote round-trip; Gave_up degrades, caller falls back to local *)
let rpc t ~kind ~key ~payload =
  if t.closed then raise (Gave_up "client closed");
  let conn = connect t in
  let deadline = Unix.gettimeofday () +. t.timeout_s in
  Transport.send conn ~kind ~id:key ~payload;
  (match Transport.status conn with
  | Transport.Closed reason -> raise (Gave_up reason)
  | Transport.Connecting | Transport.Up -> ());
  (* replies can interleave only if we pipelined; we don't — but a
     chaos-duplicated reply from the previous op may still be queued,
     so skip frames whose key is not ours *)
  let rec next () =
    let msg = await_frame t conn ~deadline in
    if String.equal msg.Frame.f_id key then msg else next ()
  in
  next ()

let remote_find t key =
  match rpc t ~kind:Protocol.k_cache_get ~key ~payload:"" with
  | msg when msg.Frame.f_kind = Protocol.k_cache_hit ->
    t.hits <- t.hits + 1;
    Obs.Metrics.incr m_remote_hits;
    Some msg.Frame.f_payload
  | msg when msg.Frame.f_kind = Protocol.k_cache_miss ->
    t.misses <- t.misses + 1;
    Obs.Metrics.incr m_remote_misses;
    None
  | msg ->
    raise
      (Gave_up (Printf.sprintf "unexpected reply kind %d" msg.Frame.f_kind))

let remote_put t key bytes =
  match rpc t ~kind:Protocol.k_cache_put ~key ~payload:bytes with
  | msg when msg.Frame.f_kind = Protocol.k_cache_ok ->
    t.puts <- t.puts + 1;
    Obs.Metrics.incr m_remote_puts
  | msg ->
    raise
      (Gave_up (Printf.sprintf "unexpected reply kind %d" msg.Frame.f_kind))

let local_find t key =
  match t.local with Some l -> l.Cache.o_find key | None -> None

let o_find t key =
  match local_find t key with
  | Some bytes -> Some bytes
  | None -> (
    match remote_find t key with
    | Some bytes ->
      (* read-through: the next probe for this key stays local *)
      (match t.local with
      | Some l -> l.Cache.o_store key bytes
      | None -> ());
      Some bytes
    | None -> None
    | exception Gave_up reason ->
      degrade t reason;
      None)

let o_store t key bytes =
  (match t.local with Some l -> l.Cache.o_store key bytes | None -> ());
  match remote_put t key bytes with
  | () -> ()
  | exception Gave_up reason -> degrade t reason

let o_invalidate t key =
  match t.local with Some l -> l.Cache.o_invalidate key | None -> ()

let ops t =
  {
    Cache.o_find = o_find t;
    o_store = o_store t;
    o_invalidate = o_invalidate t;
  }

let degraded t = t.degraded
let remote_hits t = t.hits
let remote_misses t = t.misses
let remote_puts t = t.puts

let close t =
  t.closed <- true;
  drop_conn t
