module Frame = Pickle.Frame

type failure =
  | Unreachable of { rf_attempts : int; rf_detail : string }
  | Protocol of { rf_detail : string }

type config = {
  r_execs : Transport.addr list;
  r_slots : int;
  r_job_timeout_s : float;
  r_dial_timeout_s : float;
  r_retries : int;
  r_hedge_s : float;
  r_quarantine : int;
  r_backoff_s : float;
  r_backoff_cap_s : float;
  r_chaos : Netchaos.plan;
  r_tick : (unit -> unit) option;
  r_local_fallback : bool;
  r_log : string -> unit;
  r_fail : id:string -> failure -> exn;
}

let default_fail ~id = function
  | Unreachable { rf_attempts; rf_detail } ->
    Failure
      (Printf.sprintf "remote executors unreachable for %s (%s; %d attempts)"
         id rf_detail rf_attempts)
  | Protocol { rf_detail } ->
    Failure (Printf.sprintf "remote protocol error for %s: %s" id rf_detail)

let default_config ~execs =
  {
    r_execs = execs;
    r_slots = 2;
    r_job_timeout_s = 30.;
    r_dial_timeout_s = 5.;
    r_retries = 2;
    r_hedge_s = 10.;
    r_quarantine = 3;
    r_backoff_s = 0.05;
    r_backoff_cap_s = 2.;
    r_chaos = Option.value ~default:[] (Netchaos.of_env ());
    r_tick = None;
    r_local_fallback = true;
    r_log = prerr_endline;
    r_fail = default_fail;
  }

type exec_state =
  | Redial of float  (** dial (again) once this moment passes *)
  | Dialing of { dx_conn : Transport.conn; dx_deadline : float }
  | Greeting of { dx_conn : Transport.conn; dx_deadline : float }
  | Ready of Transport.conn
  | Quarantined of string

(* a dispatched copy of a job: which executor runs it and its clocks *)
type copy = { cp_exec : int; cp_t0 : float; cp_deadline : float }

type jobst = {
  js_payload : string;
  mutable js_attempts : int;  (** copies that failed so far *)
  mutable js_copies : copy list;
  mutable js_last : failure;  (** what to blame if attempts run out *)
}

type t = {
  cfg : config;
  proto : Worker.proto;
  addrs : Transport.addr array;
  states : exec_state array;
  fails : int array;  (** consecutive failures, for quarantine *)
  dials : int array;  (** redial attempts, for backoff *)
  busy : float array;
  chaos : Netchaos.injector option;
  backoff : Support.Backoff.t;
  jobs : (string, jobst) Hashtbl.t;
  queue : string Queue.t;
  events : Worker.event Queue.t;
  done_ : (string, unit) Hashtbl.t;
  statics : (string, unit) Hashtbl.t;
  mutable degraded : bool;
  mutable warned_fallback : bool;
  mutable closed : bool;
}

let m_dispatched = Obs.Metrics.counter "fleet.dispatched"
let m_requeued = Obs.Metrics.counter "fleet.requeued"
let m_hedged = Obs.Metrics.counter "fleet.hedged"
let m_quarantined = Obs.Metrics.counter "fleet.quarantined"
let m_fallback = Obs.Metrics.counter "fleet.local_fallback_jobs"

let create cfg proto =
  let addrs = Array.of_list cfg.r_execs in
  let n = Array.length addrs in
  {
    cfg;
    proto;
    addrs;
    states = Array.make n (Redial 0.);
    fails = Array.make n 0;
    dials = Array.make n 0;
    busy = Array.make (max 1 n) 0.;
    chaos =
      (match cfg.r_chaos with
      | [] -> None
      | plan -> Some (Netchaos.injector plan));
    backoff =
      Support.Backoff.create ~base_s:cfg.r_backoff_s
        ~cap_s:cfg.r_backoff_cap_s ();
    jobs = Hashtbl.create 64;
    queue = Queue.create ();
    events = Queue.create ();
    done_ = Hashtbl.create 64;
    statics = Hashtbl.create 16;
    degraded = n = 0;
    warned_fallback = false;
    closed = false;
  }

let exec_name t i = Transport.addr_to_string t.addrs.(i)
let pending t = Hashtbl.length t.jobs + Queue.length t.events
let degraded t = t.degraded

let quarantined t =
  Array.fold_left
    (fun acc -> function Quarantined _ -> acc + 1 | _ -> acc)
    0 t.states

let load t i =
  Hashtbl.fold
    (fun _ js acc ->
      acc + List.length (List.filter (fun c -> c.cp_exec = i) js.js_copies))
    t.jobs 0

(* ------------------------------------------------------------------ *)
(* Completion and failure bookkeeping                                  *)
(* ------------------------------------------------------------------ *)

(* first answer wins: hedged duplicates and chaos-duplicated frames
   find the id already done and are discarded *)
let job_done t id res =
  if not (Hashtbl.mem t.done_ id) then begin
    (match Hashtbl.find_opt t.jobs id with
    | Some js ->
      let now = Unix.gettimeofday () in
      List.iter
        (fun c ->
          if c.cp_exec < Array.length t.busy then
            t.busy.(c.cp_exec) <-
              t.busy.(c.cp_exec) +. Float.max 0. (now -. c.cp_t0))
        js.js_copies;
      Hashtbl.remove t.jobs id
    | None -> ());
    Hashtbl.replace t.done_ id ();
    Queue.push (Worker.Done (id, res)) t.events
  end

let push_static t id payload =
  if not (Hashtbl.mem t.done_ id) && not (Hashtbl.mem t.statics id) then begin
    Hashtbl.replace t.statics id ();
    Queue.push (Worker.Static (id, payload)) t.events
  end

(* compile in-process: purity makes the bytes identical to any
   executor's, so degradation costs wall-clock, never correctness *)
let run_local t id js =
  if not t.warned_fallback then begin
    t.warned_fallback <- true;
    t.cfg.r_log
      "warning: remote executors unavailable; continuing with local compiles"
  end;
  Obs.Metrics.incr m_fallback;
  let t0 = Unix.gettimeofday () in
  let res =
    match
      t.proto.Worker.p_handler
        ~notify:(fun payload -> push_static t id payload)
        ~id js.js_payload
    with
    | payload -> Ok payload
    | exception exn -> Error exn
  in
  t.busy.(0) <- t.busy.(0) +. (Unix.gettimeofday () -. t0);
  job_done t id res

(* a copy failed: requeue for another executor, exhaust into local
   fallback or an E0703/E0704 failure *)
let requeue t id js =
  if not (Hashtbl.mem t.done_ id) then begin
    js.js_attempts <- js.js_attempts + 1;
    if js.js_attempts > t.cfg.r_retries then
      if t.cfg.r_local_fallback then run_local t id js
      else job_done t id (Error (t.cfg.r_fail ~id js.js_last))
    else begin
      Obs.Metrics.incr m_requeued;
      Queue.push id t.queue
    end
  end

(* executor [i] misbehaved: tear the connection down, requeue its
   copies, count toward quarantine, schedule a redial *)
let exec_fail t i ~proto_fault ~detail =
  (match t.states.(i) with
  | Dialing { dx_conn; _ } | Greeting { dx_conn; _ } | Ready dx_conn ->
    Transport.close dx_conn
  | Redial _ | Quarantined _ -> ());
  let now = Unix.gettimeofday () in
  let orphans =
    Hashtbl.fold
      (fun id js acc ->
        if List.exists (fun c -> c.cp_exec = i) js.js_copies then
          (id, js) :: acc
        else acc)
      t.jobs []
  in
  List.iter
    (fun (id, js) ->
      js.js_copies <- List.filter (fun c -> c.cp_exec <> i) js.js_copies;
      js.js_last <-
        (if proto_fault then Protocol { rf_detail = detail }
         else
           Unreachable { rf_attempts = js.js_attempts + 1; rf_detail = detail });
      (* a hedged twin may still be running elsewhere; only requeue
         when this was the last live copy *)
      if js.js_copies = [] then requeue t id js)
    orphans;
  t.fails.(i) <- t.fails.(i) + 1;
  if t.fails.(i) >= t.cfg.r_quarantine then begin
    Obs.Metrics.incr m_quarantined;
    t.cfg.r_log
      (Printf.sprintf "remote: executor %s quarantined (%s)" (exec_name t i)
         detail);
    Obs.Trace.instant ~cat:"remote"
      ~args:[ ("exec", exec_name t i); ("detail", detail) ]
      "remote.quarantine";
    t.states.(i) <- Quarantined detail
  end
  else begin
    t.dials.(i) <- t.dials.(i) + 1;
    t.states.(i) <-
      Redial (now +. Support.Backoff.delay t.backoff ~attempt:(t.dials.(i) - 1))
  end

(* ------------------------------------------------------------------ *)
(* Connection state machine                                            *)
(* ------------------------------------------------------------------ *)

let start_dial t i =
  match Transport.dial ?chaos:t.chaos t.addrs.(i) with
  | conn ->
    let dx_deadline = Unix.gettimeofday () +. t.cfg.r_dial_timeout_s in
    t.states.(i) <- Dialing { dx_conn = conn; dx_deadline }
  | exception Transport.Unreachable reason ->
    exec_fail t i ~proto_fault:false ~detail:reason

let drain_ready t i conn =
  let rec go () =
    match Transport.recv conn with
    | exception Transport.Protocol_damage reason ->
      exec_fail t i ~proto_fault:true ~detail:reason
    | None -> (
      match Transport.status conn with
      | Transport.Closed reason ->
        exec_fail t i ~proto_fault:false ~detail:reason
      | Transport.Connecting | Transport.Up -> ())
    | Some msg ->
      let k = msg.Frame.f_kind in
      if k = Protocol.k_static then begin
        push_static t msg.Frame.f_id msg.Frame.f_payload;
        go ()
      end
      else if k = Protocol.k_result then begin
        t.fails.(i) <- 0;
        job_done t msg.Frame.f_id (Ok msg.Frame.f_payload);
        go ()
      end
      else if k = Protocol.k_error then begin
        (* a handler-level failure (diagnostics, E0701/E0702 from the
           executor's own pool) — the compile itself answered *)
        t.fails.(i) <- 0;
        let exn =
          match t.proto.Worker.p_decode_exn msg.Frame.f_payload with
          | exn -> exn
          | exception _ ->
            Failure ("undecodable remote error for " ^ msg.Frame.f_id)
        in
        job_done t msg.Frame.f_id (Error exn);
        go ()
      end
      else if k = Protocol.k_ping then go ()
      else
        exec_fail t i ~proto_fault:true
          ~detail:(Printf.sprintf "unexpected frame kind %d" k)
  in
  go ()

let poll_exec t i =
  match t.states.(i) with
  | Quarantined _ -> ()
  | Redial at ->
    if Unix.gettimeofday () >= at && pending t > Queue.length t.events then
      start_dial t i
  | Dialing { dx_conn; dx_deadline } -> (
    Transport.poll dx_conn;
    match Transport.status dx_conn with
    | Transport.Up ->
      Transport.send dx_conn ~kind:Protocol.k_hello ~id:""
        ~payload:Protocol.version_exec;
      t.states.(i) <- Greeting { dx_conn; dx_deadline }
    | Transport.Closed reason -> exec_fail t i ~proto_fault:false ~detail:reason
    | Transport.Connecting ->
      if Unix.gettimeofday () > dx_deadline then
        exec_fail t i ~proto_fault:false ~detail:"dial timed out")
  | Greeting { dx_conn; dx_deadline } -> (
    Transport.poll dx_conn;
    match Transport.recv dx_conn with
    | exception Transport.Protocol_damage reason ->
      exec_fail t i ~proto_fault:true ~detail:reason
    | Some msg
      when msg.Frame.f_kind = Protocol.k_hello
           && String.equal msg.Frame.f_payload Protocol.version_exec ->
      t.fails.(i) <- 0;
      t.dials.(i) <- 0;
      t.states.(i) <- Ready dx_conn;
      drain_ready t i dx_conn
    | Some msg ->
      exec_fail t i ~proto_fault:true
        ~detail:
          (if msg.Frame.f_kind = Protocol.k_error then
             "handshake refused: " ^ msg.Frame.f_payload
           else "handshake: unexpected frame")
    | None -> (
      match Transport.status dx_conn with
      | Transport.Closed reason ->
        exec_fail t i ~proto_fault:false ~detail:reason
      | Transport.Connecting | Transport.Up ->
        if Unix.gettimeofday () > dx_deadline then
          exec_fail t i ~proto_fault:false ~detail:"handshake timed out"))
  | Ready conn -> (
    Transport.poll conn;
    match Transport.status conn with
    | Transport.Closed reason -> exec_fail t i ~proto_fault:false ~detail:reason
    | Transport.Connecting | Transport.Up -> drain_ready t i conn)

(* ------------------------------------------------------------------ *)
(* Dispatch, deadlines, hedging                                        *)
(* ------------------------------------------------------------------ *)

let send_copy t i conn id js =
  Transport.send conn ~kind:Protocol.k_job ~id ~payload:js.js_payload;
  match Transport.status conn with
  | Transport.Closed reason ->
    js.js_last <-
      Unreachable { rf_attempts = js.js_attempts + 1; rf_detail = reason };
    exec_fail t i ~proto_fault:false ~detail:reason;
    (* the send failed before a copy was registered, so exec_fail's
       orphan sweep cannot see this job — if no hedged twin is still
       out, requeue it here or it strands in t.jobs forever *)
    if js.js_copies = [] then requeue t id js;
    false
  | Transport.Connecting | Transport.Up ->
    let now = Unix.gettimeofday () in
    js.js_copies <-
      { cp_exec = i; cp_t0 = now; cp_deadline = now +. t.cfg.r_job_timeout_s }
      :: js.js_copies;
    Obs.Metrics.incr m_dispatched;
    true

(* the ready executor with the lightest load (ties to the lowest
   index — deterministic), excluding [not_on] *)
let pick_exec ?(not_on = -1) t =
  let best = ref None in
  Array.iteri
    (fun i st ->
      match st with
      | Ready _ when i <> not_on ->
        let l = load t i in
        if l < t.cfg.r_slots then (
          match !best with
          | Some (_, bl) when bl <= l -> ()
          | Some _ | None -> best := Some (i, l))
      | _ -> ())
    t.states;
  !best

let dispatch t =
  let continue = ref true in
  while !continue && not (Queue.is_empty t.queue) do
    match pick_exec t with
    | None -> continue := false
    | Some (i, _) -> (
      let id = Queue.pop t.queue in
      if not (Hashtbl.mem t.done_ id) then
        match (Hashtbl.find_opt t.jobs id, t.states.(i)) with
        | Some js, Ready conn -> ignore (send_copy t i conn id js)
        | Some _, _ | None, _ -> ())
  done

let expire t =
  let now = Unix.gettimeofday () in
  Array.iteri
    (fun i st ->
      match st with
      | Ready _ ->
        let expired =
          Hashtbl.fold
            (fun id js acc ->
              if
                List.exists
                  (fun c -> c.cp_exec = i && now > c.cp_deadline)
                  js.js_copies
              then (id, js) :: acc
              else acc)
            t.jobs []
        in
        if expired <> [] then
          exec_fail t i ~proto_fault:false
            ~detail:
              (Printf.sprintf "job %s exceeded its %gs network deadline"
                 (fst (List.hd expired))
                 t.cfg.r_job_timeout_s)
      | Redial _ | Dialing _ | Greeting _ | Quarantined _ -> ())
    t.states

let hedge t =
  if t.cfg.r_hedge_s > 0. then begin
    let now = Unix.gettimeofday () in
    Hashtbl.iter
      (fun id js ->
        match js.js_copies with
        | [ c ] when now -. c.cp_t0 >= t.cfg.r_hedge_s -> (
          match pick_exec ~not_on:c.cp_exec t with
          | Some (i, _) -> (
            match t.states.(i) with
            | Ready conn ->
              Obs.Metrics.incr m_hedged;
              Obs.Trace.instant ~cat:"remote"
                ~args:[ ("unit", id); ("exec", exec_name t i) ]
                "remote.hedge";
              ignore (send_copy t i conn id js)
            | _ -> ())
          | None -> ())
        | _ -> ())
      t.jobs
  end

(* every executor is quarantined: no copy will ever answer again.
   Settle everything still held — locally, or as E0703/E0704. *)
let drain_dead t =
  let all_quarantined =
    Array.for_all
      (function Quarantined _ -> true | _ -> false)
      t.states
  in
  if all_quarantined then begin
    t.degraded <- true;
    let held =
      Hashtbl.fold (fun id js acc -> (id, js) :: acc) t.jobs []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    List.iter
      (fun (id, js) ->
        if not (Hashtbl.mem t.done_ id) then
          if t.cfg.r_local_fallback then run_local t id js
          else begin
            (match js.js_last with
            | Unreachable _ | Protocol _ when js.js_attempts > 0 -> ()
            | _ ->
              js.js_last <-
                Unreachable
                  {
                    rf_attempts = js.js_attempts;
                    rf_detail = "every executor is quarantined";
                  });
            job_done t id (Error (t.cfg.r_fail ~id js.js_last))
          end)
      held;
    Queue.clear t.queue
  end

let step t =
  Array.iteri (fun i _ -> poll_exec t i) t.states;
  expire t;
  hedge t;
  dispatch t;
  if Hashtbl.length t.jobs > 0 || not (Queue.is_empty t.queue) then
    drain_dead t

(* ------------------------------------------------------------------ *)
(* The pool surface                                                    *)
(* ------------------------------------------------------------------ *)

let submit t ~id payload =
  if t.closed then invalid_arg "Fleet.submit: fleet is shut down";
  let js =
    {
      js_payload = payload;
      js_attempts = 0;
      js_copies = [];
      js_last =
        Unreachable { rf_attempts = 0; rf_detail = "never dispatched" };
    }
  in
  Hashtbl.replace t.jobs id js;
  Hashtbl.remove t.done_ id;
  Hashtbl.remove t.statics id;
  if t.degraded && t.cfg.r_local_fallback then run_local t id js
  else Queue.push id t.queue

let slot_busy t = Array.copy t.busy

let conn_fds t =
  Array.fold_left
    (fun acc st ->
      match st with
      | Dialing { dx_conn; _ } | Greeting { dx_conn; _ } | Ready dx_conn -> (
        match Transport.fd dx_conn with Some fd -> fd :: acc | None -> acc)
      | Redial _ | Quarantined _ -> acc)
    [] t.states

let next_event t =
  if t.closed then invalid_arg "Fleet.next_event: fleet is shut down";
  if pending t = 0 then invalid_arg "Fleet.next_event: no job pending";
  while Queue.is_empty t.events do
    step t;
    (match t.cfg.r_tick with Some f -> f () | None -> ());
    if Queue.is_empty t.events then begin
      let fds = conn_fds t in
      let timeout = if t.cfg.r_tick = None then 0.01 else 0.0005 in
      if fds = [] then Unix.sleepf timeout
      else
        try ignore (Unix.select fds [] [] timeout)
        with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    end
  done;
  Queue.pop t.events

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    Array.iteri
      (fun i st ->
        match st with
        | Dialing { dx_conn; _ } | Greeting { dx_conn; _ } | Ready dx_conn ->
          Transport.close dx_conn;
          t.states.(i) <- Quarantined "shut down"
        | Redial _ | Quarantined _ -> ())
      t.states
  end
