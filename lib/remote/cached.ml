module Frame = Pickle.Frame

type t = {
  srv : Netsrv.t;
  shards : Cache.t array;
  mutable served : int;
  mutable conflicts : int;
}

let m_gets = Obs.Metrics.counter "cached.gets"
let m_puts = Obs.Metrics.counter "cached.puts"
let m_hits = Obs.Metrics.counter "cached.hits"

(* keys are hex digests: the leading hex digit spreads uniformly *)
let shard_of t key =
  let h =
    if key = "" then 0
    else
      match key.[0] with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | 'a' .. 'f' as c -> 10 + Char.code c - Char.code 'a'
      | 'A' .. 'F' as c -> 10 + Char.code c - Char.code 'A'
      | c -> Char.code c
  in
  t.shards.(h mod Array.length t.shards)

let on_msg t ~conn (msg : Frame.msg) =
  t.served <- t.served + 1;
  let key = msg.f_id in
  let cache = shard_of t key in
  let reply kind payload =
    Netsrv.send t.srv ~conn ~kind ~id:key ~payload
  in
  if msg.f_kind = Protocol.k_cache_get then begin
    Obs.Metrics.incr m_gets;
    match Cache.find cache key with
    | Some bytes ->
      Obs.Metrics.incr m_hits;
      reply Protocol.k_cache_hit bytes
    | None -> reply Protocol.k_cache_miss ""
  end
  else if msg.f_kind = Protocol.k_cache_has then begin
    match Cache.find cache key with
    | Some _ ->
      Obs.Metrics.incr m_hits;
      reply Protocol.k_cache_hit ""
    | None -> reply Protocol.k_cache_miss ""
  end
  else if msg.f_kind = Protocol.k_cache_put then begin
    Obs.Metrics.incr m_puts;
    (* content addressing makes concurrent puts byte-identical; a
       mismatch means corruption somewhere upstream — record it, then
       let the last writer win rather than serialize writers *)
    (match Cache.find cache key with
    | Some old when not (String.equal old msg.f_payload) ->
      t.conflicts <- t.conflicts + 1
    | Some _ | None -> ());
    Cache.store cache key msg.f_payload;
    (* the ack leaves only now: Cache.store has committed the object
       (rename) and then the index record, in that order — a builder
       that observes the ok can rely on the object being present *)
    reply Protocol.k_cache_ok ""
  end
  else
    Netsrv.send t.srv ~conn ~kind:Protocol.k_error ~id:key
      ~payload:(Printf.sprintf "unexpected frame kind %d" msg.f_kind)

let create ?(shards = 4) ?budget_bytes ~dir addr fs =
  let shards = max 1 shards in
  let srv = Netsrv.create ~version:Protocol.version_cache addr in
  let shards =
    Array.init shards (fun i ->
        Cache.create
          ~dir:(Filename.concat dir (Printf.sprintf "shard-%d" i))
          ?budget_bytes fs)
  in
  let t = { srv; shards; served = 0; conflicts = 0 } in
  Netsrv.set_handler srv (fun ~conn msg -> on_msg t ~conn msg);
  t

let addr t = Netsrv.addr t.srv
let served t = t.served
let conflicts t = t.conflicts
let step ?timeout_s t = Netsrv.step ?timeout_s t.srv
let running t = Netsrv.running t.srv
let run t = Netsrv.run t.srv
let stop t = Netsrv.stop t.srv
