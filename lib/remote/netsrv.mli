(** A generic select-step socket reactor for the fabric's services.

    The same shape as the compile daemon's server loop — accept,
    buffered nonblocking reads and writes, frame parsing, HELLO/version
    gating, garbage tolerance — factored out so the executor and the
    cache service only supply a message handler.  [step] performs one
    bounded reactor turn; callers loop it ([run]) or hand-pump it from
    a test in the same process, which is how the chaos harness gets a
    deterministic single-domain interleaving of client and server.

    HELLO gating is built in: the first frame on every connection must
    be a {!Protocol.k_hello} carrying exactly [version]; anything else
    gets a {!Protocol.k_error} and a close, and the handler never sees
    a message from an ungreeted peer. *)

type t

(** [create ~version addr] — bind and listen.  [addr] with port 0
    binds an ephemeral port; read the result back with {!addr}.
    Raises {!Transport.Unreachable} when the address cannot be
    bound. *)
val create : version:string -> Transport.addr -> t

(** The bound address (with the real port filled in). *)
val addr : t -> Transport.addr

(** [set_handler t f] — [f ~conn msg] runs once per well-formed
    post-HELLO frame; [conn] identifies the connection for {!send}.
    An exception out of the handler closes that connection with an
    error frame, never the reactor. *)
val set_handler : t -> (conn:int -> Pickle.Frame.msg -> unit) -> unit

(** [set_on_step t f] — [f] runs once per {!step}, after I/O; for
    servers with asynchronous work to progress (the executor pumping
    its worker pool). *)
val set_on_step : t -> (unit -> unit) -> unit

(** [send t ~conn ~kind ~id ~payload] — queue a frame for [conn].
    Dropped silently if the connection is gone. *)
val send : t -> conn:int -> kind:int -> id:string -> payload:string -> unit

(** Is this connection still open? *)
val conn_alive : t -> conn:int -> bool

(** One reactor turn: accept, read, parse/dispatch, flush.  Blocks in
    select at most [timeout_s] (default 0 — never blocks). *)
val step : ?timeout_s:float -> t -> unit

val running : t -> bool

(** Loop {!step} (50 ms granularity) until {!stop}. *)
val run : t -> unit

(** Close every connection and the listener.  Idempotent. *)
val stop : t -> unit
