(** The executor fleet: partition-tolerant remote dispatch with the
    worker pool's interface.

    The fleet exposes exactly the surface [Sched]'s pool loop already
    drives — [submit] / [next_event] / [slot_busy] / [shutdown], with
    {!Worker.event} as the event vocabulary — so the [Remote] backend
    is the [Workers] backend pointed at sockets.  Underneath, it keeps
    one nonblocking connection per executor (dial, HELLO, job traffic
    all multiplexed from the calling domain, no threads), and it
    survives the network:

    - {b per-job deadlines}: a dispatched job that has not answered
      within [r_job_timeout_s] marks its executor suspect — the
      connection is torn down, its jobs requeued;
    - {b capped jittered retry}: a failed job copy is requeued and
      retried up to [r_retries] times; executor redials back off via
      {!Support.Backoff};
    - {b hedged re-dispatch}: a job still unanswered after [r_hedge_s]
      is speculatively duplicated onto a second executor; the first
      answer wins, later ones are discarded (results are pure, so the
      race is benign);
    - {b quarantine}: [r_quarantine] consecutive failures retire an
      executor for the build, mirroring the worker pool's E0701
      discipline;
    - {b graceful degradation}: when every executor is quarantined (or
      none was configured), the fleet compiles the remaining jobs
      in-process with a one-time warning — byte-identical output, never
      a lost build.  With [r_local_fallback = false] the exhausted jobs
      fail with the [r_fail] exception instead (E0703/E0704 via
      [Irm.Wire.remote_fail]), for builds that must not fall back
      silently. *)

(** Why the fleet failed a job (fed to [r_fail], which mints E0703
    [remote-unreachable] / E0704 [remote-protocol] diagnostics). *)
type failure =
  | Unreachable of { rf_attempts : int; rf_detail : string }
  | Protocol of { rf_detail : string }

type config = {
  r_execs : Transport.addr list;
  r_slots : int;  (** concurrent jobs per executor *)
  r_job_timeout_s : float;  (** per-job network deadline *)
  r_dial_timeout_s : float;  (** connect + HELLO budget *)
  r_retries : int;  (** re-dispatch attempts per job *)
  r_hedge_s : float;  (** straggler hedge threshold; 0 disables *)
  r_quarantine : int;  (** consecutive failures that retire an executor *)
  r_backoff_s : float;  (** redial backoff base *)
  r_backoff_cap_s : float;  (** redial backoff cap *)
  r_chaos : Netchaos.plan;  (** network fault plan (client side) *)
  r_tick : (unit -> unit) option;
      (** runs inside every wait loop — in-process tests pump their
          servers here *)
  r_local_fallback : bool;
  r_log : string -> unit;
  r_fail : id:string -> failure -> exn;
}

(** 2 slots per executor, 30 s job deadline, 5 s dial budget, 2
    retries, 10 s hedge, quarantine after 3, backoff 0.05 s capped at
    2 s, chaos from [SMLSEP_NET_CHAOS], local fallback on. *)
val default_config : execs:Transport.addr list -> config

type t

(** [create cfg proto] — connections are dialed lazily, on demand. *)
val create : config -> Worker.proto -> t

(** [submit t ~id payload] — queue a job.  Ids must be unique among
    in-flight jobs. *)
val submit : t -> id:string -> string -> unit

(** Jobs submitted and not yet reported. *)
val pending : t -> int

(** Seconds each executor spent holding dispatched jobs (index order
    of [r_execs]; a single local slot when the fleet is degraded). *)
val slot_busy : t -> float array

(** Block until a job completes or releases its static view.  Raises
    [Invalid_argument] if nothing is pending. *)
val next_event : t -> Worker.event

(** True once the fleet has fallen back to in-process compilation. *)
val degraded : t -> bool

(** Executors currently quarantined. *)
val quarantined : t -> int

val shutdown : t -> unit
