module Frame = Pickle.Frame

type mode = Inline | Pool of Worker.config

type t = {
  srv : Netsrv.t;
  proto : Worker.proto;
  pool : Worker.t option;
  owners : (string, int) Hashtbl.t;  (** job id -> conn, for pool replies *)
  mutable served : int;
}

let m_jobs = Obs.Metrics.counter "exec.jobs"

let inflight t = Hashtbl.length t.owners

(* pool replies arrive asynchronously: route each event back to the
   connection that submitted the job.  A client that vanished mid-job
   just loses the reply — Netsrv.send drops silently. *)
let pump_pool t pool =
  (match Worker.pump pool with
  | () -> ()
  | exception Worker.Pool_down _ ->
    (* the pool cannot start workers at all: fail every job we hold so
       clients can retry elsewhere instead of timing out *)
    Hashtbl.iter
      (fun id conn ->
        Netsrv.send t.srv ~conn ~kind:Protocol.k_error ~id
          ~payload:
            (t.proto.Worker.p_encode_exn (Failure "executor pool is down")))
      t.owners;
    Hashtbl.reset t.owners);
  let rec drain () =
    match Worker.poll_event pool with
    | None -> ()
    | Some event ->
      (match event with
      | Worker.Static (id, payload) -> (
        match Hashtbl.find_opt t.owners id with
        | Some conn ->
          Netsrv.send t.srv ~conn ~kind:Protocol.k_static ~id ~payload
        | None -> ())
      | Worker.Done (id, res) -> (
        match Hashtbl.find_opt t.owners id with
        | Some conn ->
          Hashtbl.remove t.owners id;
          (match res with
          | Ok payload ->
            Netsrv.send t.srv ~conn ~kind:Protocol.k_result ~id ~payload
          | Error exn ->
            Netsrv.send t.srv ~conn ~kind:Protocol.k_error ~id
              ~payload:(t.proto.Worker.p_encode_exn exn))
        | None -> ()));
      drain ()
  in
  drain ()

let on_job t ~conn (msg : Frame.msg) =
  Obs.Metrics.incr m_jobs;
  t.served <- t.served + 1;
  match t.pool with
  | Some pool ->
    Hashtbl.replace t.owners msg.f_id conn;
    Worker.submit pool ~id:msg.f_id msg.f_payload
  | None -> (
    (* inline: compile right here in the reactor turn.  The static
       notification goes out before the result, preserving the
       frame order a pooled executor produces. *)
    Hashtbl.replace t.owners msg.f_id conn;
    let notify payload =
      Netsrv.send t.srv ~conn ~kind:Protocol.k_static ~id:msg.f_id ~payload
    in
    match t.proto.Worker.p_handler ~notify ~id:msg.f_id msg.f_payload with
    | payload ->
      Hashtbl.remove t.owners msg.f_id;
      Netsrv.send t.srv ~conn ~kind:Protocol.k_result ~id:msg.f_id ~payload
    | exception exn ->
      Hashtbl.remove t.owners msg.f_id;
      Netsrv.send t.srv ~conn ~kind:Protocol.k_error ~id:msg.f_id
        ~payload:(t.proto.Worker.p_encode_exn exn))

let create ~mode addr proto =
  let srv = Netsrv.create ~version:Protocol.version_exec addr in
  let pool =
    match mode with
    | Inline -> None
    | Pool cfg -> Some (Worker.create cfg proto)
  in
  let t = { srv; proto; pool; owners = Hashtbl.create 16; served = 0 } in
  Netsrv.set_handler srv (fun ~conn msg ->
      if msg.Frame.f_kind = Protocol.k_job then on_job t ~conn msg
      else
        Netsrv.send srv ~conn ~kind:Protocol.k_error ~id:msg.Frame.f_id
          ~payload:(Printf.sprintf "unexpected frame kind %d" msg.Frame.f_kind));
  (match pool with
  | Some p ->
    (* stop() may land mid-step (a signal): the turn that observes it
       must not pump the pool it just shut down *)
    Netsrv.set_on_step srv (fun () ->
        if Netsrv.running srv then pump_pool t p)
  | None -> ());
  t

let addr t = Netsrv.addr t.srv
let step ?timeout_s t = Netsrv.step ?timeout_s t.srv
let running t = Netsrv.running t.srv
let run t = Netsrv.run t.srv

let stop t =
  (match t.pool with Some p -> Worker.shutdown p | None -> ());
  Netsrv.stop t.srv
