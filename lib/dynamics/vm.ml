module Symbol = Support.Symbol
module Diag = Support.Diag
module Pid = Digestkit.Pid
module P = Statics.Prim

type value =
  | Int of int
  | Str of string
  | Tuple of value array
  | Record of value Symbol.Map.t
  | Con0 of int
  | Con of int * value
  | Closure of closure
  | Prim of P.t
  | Exncon of Value.exnid
  | Exnpkt of Value.exnid * value option
  | Ref of value ref

and closure = { code_addr : int; mutable captured : value list }

(* ------------------------------------------------------------------ *)
(* Instructions                                                        *)
(* ------------------------------------------------------------------ *)

type instr =
  | Kint of int
  | Kstr of string
  | Kprim of P.t
  | Kbasisexn of Symbol.t
  | Kimport of Pid.t
  | Kaccess of int
  | Kclosure of int
  | Kfixgroup of int list
  | Kapply
  | Kreturn
  | Kpushenv
  | Kpopenv of int
  | Ktuple of int
  | Kselect of int
  | Krecord of Symbol.t array
  | Kfield of Symbol.t
  | Kcon0 of int
  | Kcon of int
  | Kcontag
  | Kconarg
  | Knewexn of Symbol.t * bool
  | Kmkexn0
  | Kexnid
  | Kexnarg
  | Kbranchiffalse of int
  | Kjump of int
  | Kraise
  | Kpushhandler of int
  | Kpophandler
  | Kstop

type program = { code : instr array; entry : int }

let program_length p = Array.length p.code

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let translate_error fmt = Diag.error Diag.Translate Support.Loc.dummy fmt

(* a deferred function body: label cell, compile-time env, term *)
type pending = Pfn of int ref * Symbol.t list * Lambda.t

let compile term =
  let instrs = ref [] (* reversed *) in
  let count = ref 0 in
  let patches = ref [] (* (position, label cell) *) in
  let groups = ref [] in
  let pending : pending Queue.t = Queue.create () in
  let emit instr =
    instrs := instr :: !instrs;
    incr count
  in
  (* emit a placeholder whose integer operand is patched at assembly *)
  let emit_labelled make =
    let cell = ref (-1) in
    patches := (!count, cell) :: !patches;
    emit (make (-1));
    (* stash which constructor to rebuild with *)
    ignore make;
    cell
  in
  let index_of cenv v =
    let rec go i = function
      | [] -> translate_error "VM compile: unbound variable %a" Symbol.pp v
      | x :: rest -> if Symbol.equal x v then i else go (i + 1) rest
    in
    go 0 cenv
  in
  let rec comp cenv (t : Lambda.t) =
    match t with
    | Lambda.Lint n -> emit (Kint n)
    | Lambda.Lstring s -> emit (Kstr s)
    | Lambda.Lprim p -> emit (Kprim p)
    | Lambda.Lbasisexn name -> emit (Kbasisexn name)
    | Lambda.Limport pid -> emit (Kimport pid)
    | Lambda.Lvar v -> emit (Kaccess (index_of cenv v))
    | Lambda.Lcon0 tag -> emit (Kcon0 tag)
    | Lambda.Lnewexn (name, has_arg) -> emit (Knewexn (name, has_arg))
    | Lambda.Lfn (x, body) ->
      let cell = emit_labelled (fun addr -> Kclosure addr) in
      Queue.add (Pfn (cell, x :: cenv, body)) pending
    | Lambda.Lapp (f, a) ->
      comp cenv f;
      comp cenv a;
      emit Kapply
    | Lambda.Llet (x, e, body) ->
      comp cenv e;
      emit Kpushenv;
      comp (x :: cenv) body;
      emit (Kpopenv 1)
    | Lambda.Lfix (binds, body) ->
      let cells = List.map (fun _ -> ref (-1)) binds in
      groups := (!count, cells) :: !groups;
      emit (Kfixgroup []);
      (* the first group member ends up shallowest, matching the
         runtime's fold over the reversed closure list *)
      let names = List.map (fun (f, _, _) -> f) binds in
      let cenv' = names @ cenv in
      List.iter2
        (fun cell (_, x, fbody) ->
          Queue.add (Pfn (cell, x :: cenv', fbody)) pending)
        cells binds;
      comp cenv' body;
      emit (Kpopenv (List.length binds))
    | Lambda.Ltuple parts ->
      List.iter (comp cenv) parts;
      emit (Ktuple (List.length parts))
    | Lambda.Lselect (i, e) ->
      comp cenv e;
      emit (Kselect i)
    | Lambda.Lrecord fields ->
      List.iter (fun (_, v) -> comp cenv v) fields;
      emit (Krecord (Array.of_list (List.map fst fields)))
    | Lambda.Lfield (name, e) ->
      comp cenv e;
      emit (Kfield name)
    | Lambda.Lcon (tag, e) ->
      comp cenv e;
      emit (Kcon tag)
    | Lambda.Lcontag e ->
      comp cenv e;
      emit Kcontag
    | Lambda.Lconarg e ->
      comp cenv e;
      emit Kconarg
    | Lambda.Lmkexn0 e ->
      comp cenv e;
      emit Kmkexn0
    | Lambda.Lexnid e ->
      comp cenv e;
      emit Kexnid
    | Lambda.Lexnarg e ->
      comp cenv e;
      emit Kexnarg
    | Lambda.Lif (c, t, e) ->
      comp cenv c;
      let else_cell = emit_labelled (fun addr -> Kbranchiffalse addr) in
      comp cenv t;
      let end_cell = emit_labelled (fun addr -> Kjump addr) in
      else_cell := !count;
      comp cenv e;
      end_cell := !count
    | Lambda.Lraise e ->
      comp cenv e;
      emit Kraise
    | Lambda.Lhandle (e, x, h) ->
      let handler_cell = emit_labelled (fun addr -> Kpushhandler addr) in
      comp cenv e;
      emit Kpophandler;
      let end_cell = emit_labelled (fun addr -> Kjump addr) in
      handler_cell := !count;
      emit Kpushenv;
      comp (x :: cenv) h;
      emit (Kpopenv 1);
      end_cell := !count
  in
  comp [] term;
  emit Kstop;
  let rec drain () =
    match Queue.take_opt pending with
    | None -> ()
    | Some (Pfn (cell, cenv, body)) ->
      cell := !count;
      comp cenv body;
      emit Kreturn;
      drain ()
  in
  drain ();
  let code = Array.of_list (List.rev !instrs) in
  List.iter
    (fun (pos, cell) ->
      code.(pos) <-
        (match code.(pos) with
        | Kclosure _ -> Kclosure !cell
        | Kbranchiffalse _ -> Kbranchiffalse !cell
        | Kjump _ -> Kjump !cell
        | Kpushhandler _ -> Kpushhandler !cell
        | other -> other))
    !patches;
  List.iter
    (fun (pos, cells) -> code.(pos) <- Kfixgroup (List.map ( ! ) cells))
    !groups;
  { code; entry = 0 }

(* ------------------------------------------------------------------ *)
(* Observation                                                         *)
(* ------------------------------------------------------------------ *)

let rec observe = function
  | Int n -> if n < 0 then "~" ^ string_of_int (-n) else string_of_int n
  | Str s -> Printf.sprintf "%S" s
  | Tuple parts ->
    "(" ^ String.concat ", " (Array.to_list (Array.map observe parts)) ^ ")"
  | Record fields ->
    "{"
    ^ String.concat ", "
        (List.map
           (fun (n, v) -> Symbol.name n ^ "=" ^ observe v)
           (Symbol.Map.bindings fields))
    ^ "}"
  | Con0 tag -> Printf.sprintf "con%d" tag
  | Con (tag, v) -> Printf.sprintf "con%d(%s)" tag (observe v)
  | Closure _ | Prim _ -> "fn"
  | Exncon id -> "exn<" ^ Symbol.name id.Value.exn_name ^ ">"
  | Exnpkt (id, None) -> Symbol.name id.Value.exn_name
  | Exnpkt (id, Some v) -> Symbol.name id.Value.exn_name ^ "(" ^ observe v ^ ")"
  | Ref cell -> "ref(" ^ observe !cell ^ ")"

let rec observe_eval = function
  | Value.Vint n -> if n < 0 then "~" ^ string_of_int (-n) else string_of_int n
  | Value.Vstring s -> Printf.sprintf "%S" s
  | Value.Vtuple parts ->
    "("
    ^ String.concat ", " (Array.to_list (Array.map observe_eval parts))
    ^ ")"
  | Value.Vrecord fields ->
    "{"
    ^ String.concat ", "
        (List.map
           (fun (n, v) -> Symbol.name n ^ "=" ^ observe_eval v)
           (Symbol.Map.bindings fields))
    ^ "}"
  | Value.Vcon0 tag -> Printf.sprintf "con%d" tag
  | Value.Vcon (tag, v) -> Printf.sprintf "con%d(%s)" tag (observe_eval v)
  | Value.Vclosure _ | Value.Vprim _ -> "fn"
  | Value.Vexnid id -> "exn<" ^ Symbol.name id.Value.exn_name ^ ">"
  | Value.Vexn (id, None) -> Symbol.name id.Value.exn_name
  | Value.Vexn (id, Some v) ->
    Symbol.name id.Value.exn_name ^ "(" ^ observe_eval v ^ ")"
  | Value.Vref cell -> "ref(" ^ observe_eval !cell ^ ")"

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

exception Vm_raise of value

let exec_error fmt = Diag.error Diag.Execute Support.Loc.dummy fmt
let bool_value b = Con0 (if b then 1 else 0)

(* VM exception identities live above the interpreter's counter so the
   two backends never collide; predefined exceptions are shared. *)
let fresh_uid =
  let counter = ref 1_000_000 in
  fun () ->
    incr counter;
    !counter

let rec vm_equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Tuple xs, Tuple ys ->
    Array.length xs = Array.length ys
    && (let ok = ref true in
        Array.iteri (fun i x -> if not (vm_equal x ys.(i)) then ok := false) xs;
        !ok)
  | Record xs, Record ys -> Symbol.Map.equal vm_equal xs ys
  | Con0 x, Con0 y -> x = y
  | Con (tx, vx), Con (ty, vy) -> tx = ty && vm_equal vx vy
  | Exncon x, Exncon y -> x.Value.uid = y.Value.uid
  | Exnpkt (x, ax), Exnpkt (y, ay) -> (
    x.Value.uid = y.Value.uid
    &&
    match (ax, ay) with
    | None, None -> true
    | Some va, Some vb -> vm_equal va vb
    | None, Some _ | Some _, None -> false)
  | Ref x, Ref y -> x == y
  | (Closure _ | Prim _), _ | _, (Closure _ | Prim _) ->
    exec_error "equality on functions"
  | _ -> false

let int_pair = function
  | Tuple [| Int a; Int b |] -> (a, b)
  | v -> exec_error "VM primitive expected an int pair, got %s" (observe v)

let raise_basis name arg =
  raise (Vm_raise (Exnpkt (Eval.basis_exnid (Symbol.intern name), arg)))

let apply_prim output prim arg =
  match prim with
  | P.Padd ->
    let a, b = int_pair arg in
    Int (a + b)
  | P.Psub ->
    let a, b = int_pair arg in
    Int (a - b)
  | P.Pmul ->
    let a, b = int_pair arg in
    Int (a * b)
  | P.Pdiv ->
    let a, b = int_pair arg in
    if b = 0 then raise_basis "Div" None else Int (a / b)
  | P.Pmod ->
    let a, b = int_pair arg in
    if b = 0 then raise_basis "Div" None else Int (a mod b)
  | P.Pneg -> (
    match arg with Int n -> Int (-n) | v -> exec_error "~ on %s" (observe v))
  | P.Plt ->
    let a, b = int_pair arg in
    bool_value (a < b)
  | P.Ple ->
    let a, b = int_pair arg in
    bool_value (a <= b)
  | P.Pgt ->
    let a, b = int_pair arg in
    bool_value (a > b)
  | P.Pge ->
    let a, b = int_pair arg in
    bool_value (a >= b)
  | P.Peq -> (
    match arg with
    | Tuple [| a; b |] -> bool_value (vm_equal a b)
    | v -> exec_error "= on %s" (observe v))
  | P.Pneq -> (
    match arg with
    | Tuple [| a; b |] -> bool_value (not (vm_equal a b))
    | v -> exec_error "<> on %s" (observe v))
  | P.Pconcat -> (
    match arg with
    | Tuple [| Str a; Str b |] -> Str (a ^ b)
    | v -> exec_error "^ on %s" (observe v))
  | P.Psize -> (
    match arg with
    | Str s -> Int (String.length s)
    | v -> exec_error "size on %s" (observe v))
  | P.Pint_to_string -> (
    match arg with
    | Int n -> Str (if n < 0 then "~" ^ string_of_int (-n) else string_of_int n)
    | v -> exec_error "intToString on %s" (observe v))
  | P.Pstring_to_int -> (
    match arg with
    | Str s -> (
      let s' =
        if String.length s > 0 && s.[0] = '~' then
          "-" ^ String.sub s 1 (String.length s - 1)
        else s
      in
      match int_of_string_opt s' with
      | Some n -> Int n
      | None -> raise_basis "Fail" (Some (Str ("stringToInt: " ^ s))))
    | v -> exec_error "stringToInt on %s" (observe v))
  | P.Pnot -> (
    match arg with
    | Con0 0 -> bool_value true
    | Con0 1 -> bool_value false
    | v -> exec_error "not on %s" (observe v))
  | P.Pref -> Ref (ref arg)
  | P.Pderef -> (
    match arg with Ref c -> !c | v -> exec_error "! on %s" (observe v))
  | P.Passign -> (
    match arg with
    | Tuple [| Ref c; v |] ->
      c := v;
      Tuple [||]
    | v -> exec_error ":= on %s" (observe v))
  | P.Pprint -> (
    match arg with
    | Str s ->
      output s;
      Tuple [||]
    | v -> exec_error "print on %s" (observe v))
  | P.Pexit -> (
    match arg with
    | Int n -> raise (Eval.Sml_exit n)
    | v -> exec_error "exit on %s" (observe v))

let m_instructions = Obs.Metrics.counter "vm.instructions"

type frame = { ret : int; saved_env : value list }

type handler = {
  h_pc : int;
  h_env : value list;
  h_stack : value list;
  h_frames : frame list;
}

let run ?(output = print_string) ~imports program =
  let code = program.code in
  let pc = ref program.entry in
  let stack : value list ref = ref [] in
  let env : value list ref = ref [] in
  let frames : frame list ref = ref [] in
  let handlers : handler list ref = ref [] in
  let result = ref None in
  let push v = stack := v :: !stack in
  let pop () =
    match !stack with
    | v :: rest ->
      stack := rest;
      v
    | [] -> exec_error "VM stack underflow"
  in
  let pop_n n =
    let rec go n acc = if n = 0 then acc else go (n - 1) (pop () :: acc) in
    go n []
  in
  let unwind packet =
    match !handlers with
    | [] -> raise (Vm_raise packet)
    | h :: rest ->
      handlers := rest;
      stack := packet :: h.h_stack;
      env := h.h_env;
      frames := h.h_frames;
      pc := h.h_pc
  in
  let drop n l =
    let rec go n l =
      if n = 0 then l
      else match l with _ :: rest -> go (n - 1) rest | [] -> []
    in
    go n l
  in
  (* steps accumulate locally; one registry update per run keeps the
     dispatch loop free of shared-state traffic *)
  let steps = ref 0 in
  Fun.protect ~finally:(fun () -> Obs.Metrics.add m_instructions !steps)
  @@ fun () ->
  while !result = None do
    let instr = code.(!pc) in
    incr pc;
    incr steps;
    match instr with
    | Kint n -> push (Int n)
    | Kstr s -> push (Str s)
    | Kprim p -> push (Prim p)
    | Kbasisexn name -> push (Exncon (Eval.basis_exnid name))
    | Kimport pid -> (
      match Pid.Map.find_opt pid imports with
      | Some v -> push v
      | None ->
        Diag.error Diag.Link Support.Loc.dummy "VM: unsatisfied import %s"
          (Pid.to_hex pid))
    | Kaccess i -> (
      match List.nth_opt !env i with
      | Some v -> push v
      | None -> exec_error "VM environment underflow")
    | Kclosure addr -> push (Closure { code_addr = addr; captured = !env })
    | Kfixgroup addrs ->
      let closures =
        List.map (fun addr -> { code_addr = addr; captured = [] }) addrs
      in
      (* last group member ends up deepest: reverse fold matches the
         compile-time [List.rev names @ cenv] layout *)
      let env' =
        List.fold_left
          (fun acc cl -> Closure cl :: acc)
          !env (List.rev closures)
      in
      List.iter (fun cl -> cl.captured <- env') closures;
      env := env'
    | Kapply -> (
      let arg = pop () in
      let fn = pop () in
      match fn with
      | Closure cl ->
        frames := { ret = !pc; saved_env = !env } :: !frames;
        env := arg :: cl.captured;
        pc := cl.code_addr
      | Prim p ->
        (match apply_prim output p arg with
        | v -> push v
        | exception Vm_raise packet -> unwind packet)
      | Exncon id when id.Value.has_arg -> push (Exnpkt (id, Some arg))
      | v -> exec_error "VM apply of non-function %s" (observe v))
    | Kreturn -> (
      match !frames with
      | f :: rest ->
        frames := rest;
        env := f.saved_env;
        pc := f.ret
      | [] -> exec_error "VM return without frame")
    | Kpushenv -> env := pop () :: !env
    | Kpopenv n -> env := drop n !env
    | Ktuple n -> push (Tuple (Array.of_list (pop_n n)))
    | Kselect i -> (
      match pop () with
      | Tuple parts when i < Array.length parts -> push parts.(i)
      | v -> exec_error "VM select %d of %s" i (observe v))
    | Krecord labels ->
      let values = pop_n (Array.length labels) in
      let fields =
        List.fold_left2
          (fun acc label v -> Symbol.Map.add label v acc)
          Symbol.Map.empty (Array.to_list labels) values
      in
      push (Record fields)
    | Kfield name -> (
      match pop () with
      | Record fields -> (
        match Symbol.Map.find_opt name fields with
        | Some v -> push v
        | None -> exec_error "VM: no field %a" Symbol.pp name)
      | v -> exec_error "VM field of %s" (observe v))
    | Kcon0 tag -> push (Con0 tag)
    | Kcon tag -> push (Con (tag, pop ()))
    | Kcontag -> (
      match pop () with
      | Con0 tag | Con (tag, _) -> push (Int tag)
      | v -> exec_error "VM contag of %s" (observe v))
    | Kconarg -> (
      match pop () with
      | Con (_, arg) -> push arg
      | v -> exec_error "VM conarg of %s" (observe v))
    | Knewexn (name, has_arg) ->
      push (Exncon { Value.uid = fresh_uid (); exn_name = name; has_arg })
    | Kmkexn0 -> (
      match pop () with
      | Exncon id -> push (Exnpkt (id, None))
      | v -> exec_error "VM mkexn0 of %s" (observe v))
    | Kexnid -> (
      match pop () with
      | Exncon id | Exnpkt (id, _) -> push (Int id.Value.uid)
      | v -> exec_error "VM exnid of %s" (observe v))
    | Kexnarg -> (
      match pop () with
      | Exnpkt (_, Some arg) -> push arg
      | Exnpkt (_, None) -> exec_error "VM: packet carries no argument"
      | v -> exec_error "VM exnarg of %s" (observe v))
    | Kbranchiffalse target -> (
      match pop () with
      | Con0 0 -> pc := target
      | Con0 1 -> ()
      | v -> exec_error "VM branch on %s" (observe v))
    | Kjump target -> pc := target
    | Kraise -> (
      match pop () with
      | Exnpkt _ as packet -> unwind packet
      | v -> exec_error "VM raise of %s" (observe v))
    | Kpushhandler target ->
      handlers :=
        { h_pc = target; h_env = !env; h_stack = !stack; h_frames = !frames }
        :: !handlers
    | Kpophandler -> (
      match !handlers with
      | _ :: rest -> handlers := rest
      | [] -> exec_error "VM handler underflow")
    | Kstop -> result := Some (pop ())
  done;
  match !result with Some v -> v | None -> assert false
