module Symbol = Support.Symbol
module Diag = Support.Diag

type node = {
  n_file : string;
  n_summary : Scan.summary;
  n_deps : string list;
}

type t = {
  nodes : (string, node) Hashtbl.t;
  providers : string Symbol.Table.t;
  order : string list;  (** input order, for determinism *)
}

let manager_error fmt = Diag.error Diag.Manager Support.Loc.dummy fmt

let build units =
  let providers = Symbol.Table.create 64 in
  List.iter
    (fun (file, unit_) ->
      let summary = Scan.scan unit_ in
      Symbol.Set.iter
        (fun name ->
          match Symbol.Table.find_opt providers name with
          | Some other when not (String.equal other file) ->
            manager_error "module %a is defined by both %s and %s" Symbol.pp
              name other file
          | Some _ | None -> Symbol.Table.replace providers name file)
        summary.Scan.defines)
    units;
  let nodes = Hashtbl.create 64 in
  List.iter
    (fun (file, unit_) ->
      let summary = Scan.scan unit_ in
      let deps =
        Symbol.Set.fold
          (fun name acc ->
            match Symbol.Table.find_opt providers name with
            | Some provider when not (String.equal provider file) ->
              provider :: acc
            | Some _ | None -> acc)
          summary.Scan.refers []
        |> List.sort_uniq String.compare
      in
      Hashtbl.replace nodes file
        { n_file = file; n_summary = summary; n_deps = deps })
    units;
  { nodes; providers; order = List.map fst units }

let node t file =
  match Hashtbl.find_opt t.nodes file with
  | Some n -> n
  | None -> manager_error "unknown compilation unit %s" file

let topological t =
  let visited = Hashtbl.create 64 in
  (* 0 = in progress, 1 = done *)
  let out = ref [] in
  let rec visit trail file =
    match Hashtbl.find_opt visited file with
    | Some 1 -> ()
    | Some _ ->
      manager_error "dependency cycle: %s"
        (String.concat " -> " (List.rev (file :: trail)))
    | None ->
      Hashtbl.replace visited file 0;
      List.iter (visit (file :: trail)) (node t file).n_deps;
      Hashtbl.replace visited file 1;
      out := file :: !out
  in
  List.iter (visit []) t.order;
  List.rev !out

let dependents t file =
  List.filter
    (fun other ->
      List.exists (String.equal file) (node t other).n_deps)
    t.order

let cone t file =
  let result = Hashtbl.create 16 in
  let rec grow file =
    List.iter
      (fun dep ->
        if not (Hashtbl.mem result dep) then begin
          Hashtbl.replace result dep ();
          grow dep
        end)
      (dependents t file)
  in
  grow file;
  List.filter (Hashtbl.mem result) t.order

let closure t file =
  let seen = Hashtbl.create 16 in
  let rec visit file =
    List.iter
      (fun dep ->
        if not (Hashtbl.mem seen dep) then begin
          Hashtbl.replace seen dep ();
          visit dep
        end)
      (node t file).n_deps
  in
  visit file;
  List.filter (Hashtbl.mem seen) (topological t)

let ready t ~completed =
  List.filter
    (fun file ->
      (not (completed file)) && List.for_all completed (node t file).n_deps)
    t.order

let levels t =
  let level = Hashtbl.create 64 in
  let order = topological t in
  List.iter
    (fun file ->
      let d =
        List.fold_left
          (fun acc dep -> max acc (1 + Hashtbl.find level dep))
          0 (node t file).n_deps
      in
      Hashtbl.replace level file d)
    order;
  let deepest = Hashtbl.fold (fun _ d acc -> max acc d) level (-1) in
  List.init (deepest + 1) (fun d ->
      List.filter (fun file -> Hashtbl.find level file = d) order)

let width t =
  List.fold_left (fun acc l -> max acc (List.length l)) 0 (levels t)

let provider t name = Symbol.Table.find_opt t.providers name
let files t = t.order
