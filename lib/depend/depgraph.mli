(** The compilation-unit dependency DAG and its topological order. *)

module Symbol := Support.Symbol

type node = {
  n_file : string;
  n_summary : Scan.summary;
  n_deps : string list;  (** files this unit depends on, sorted *)
}

type t

(** [build units] — [units] are (file, parsed source) pairs.  A unit
    depends on the unit defining each of its free module names;
    names defined by no unit (initial basis, external libraries) are
    ignored.  A module name defined by two units is an error
    (phase [Manager]). *)
val build : (string * Lang.Ast.unit_) list -> t

val node : t -> string -> node

(** Files in dependency order (dependencies first).  Raises
    {!Support.Diag.Error} (phase [Manager]) on a dependency cycle,
    naming the files involved. *)
val topological : t -> string list

(** Direct dependents (reverse edges) of a file. *)
val dependents : t -> string -> string list

(** The transitive dependents ("cone") of a file, excluding itself. *)
val cone : t -> string -> string list

(** The transitive {e dependencies} of a file, excluding itself, in
    dependency order — the order a fresh session must load them in. *)
val closure : t -> string -> string list

(** [ready t ~completed] — the files whose dependencies all satisfy
    [completed] but which are not yet [completed] themselves: the next
    wavefront a scheduler may dispatch.  In input order. *)
val ready : t -> completed:(string -> bool) -> string list

(** ASAP wavefronts: level 0 is every file with no dependencies, level
    [d] every file whose deepest dependency chain has length [d].  All
    files of one level are mutually independent. *)
val levels : t -> string list list

(** The widest wavefront of {!levels} — an upper bound on usable build
    parallelism ([0] for the empty graph). *)
val width : t -> int

(** Provider of a module name, if any. *)
val provider : t -> Symbol.t -> string option

val files : t -> string list
