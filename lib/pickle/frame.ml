let magic = "SWP1"
let header_size = 8

(* a frame body is the Buf-encoded message plus its 8-byte CRC trailer;
   anything larger than this is a corrupted length field, not a real
   message *)
let max_body = 1 lsl 30

type msg = { f_kind : int; f_id : string; f_payload : string }

let crc_bytes crc =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 crc;
  Bytes.to_string b

let encode ~kind ~id ~payload =
  let w = Buf.writer () in
  Buf.byte w kind;
  Buf.string w id;
  Buf.string w payload;
  let body = Buf.contents w in
  let crc = crc_bytes (Digestkit.Crc64.of_string body) in
  let header = Bytes.create header_size in
  Bytes.blit_string magic 0 header 0 4;
  Bytes.set_int32_be header 4 (Int32.of_int (String.length body + 8));
  Bytes.to_string header ^ body ^ crc

let body_length header =
  if String.length header <> header_size then
    raise (Buf.Corrupt "frame header truncated");
  if not (String.equal (String.sub header 0 4) magic) then
    raise (Buf.Corrupt "bad frame magic");
  let n = Int32.to_int (String.get_int32_be header 4) in
  if n < 8 || n > max_body then
    raise (Buf.Corrupt (Printf.sprintf "implausible frame length %d" n));
  n

let decode_body body =
  let n = String.length body in
  if n < 8 then raise (Buf.Corrupt "frame body truncated");
  let encoded = String.sub body 0 (n - 8) in
  let trailer = String.sub body (n - 8) 8 in
  if
    not (String.equal trailer (crc_bytes (Digestkit.Crc64.of_string encoded)))
  then raise (Buf.Corrupt "frame CRC mismatch");
  let r = Buf.reader encoded in
  let f_kind = Buf.read_byte r in
  let f_id = Buf.read_string r in
  let f_payload = Buf.read_string r in
  { f_kind; f_id; f_payload }

(* incremental extraction from a receive buffer: both the worker
   supervisor and the build daemon accumulate socket/pipe reads into a
   string and pop complete frames off the front *)
let pop buffer =
  let len = String.length buffer in
  if len < header_size then None
  else
    let body_len = body_length (String.sub buffer 0 header_size) in
    if len < header_size + body_len then None
    else
      let body = String.sub buffer header_size body_len in
      let rest =
        String.sub buffer (header_size + body_len)
          (len - header_size - body_len)
      in
      Some (decode_body body, rest)
