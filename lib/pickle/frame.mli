(** Length-prefixed, CRC-64-trailed message framing for the worker IPC
    protocol.

    A frame is [magic(4) · length(4, big-endian) · body], where the body
    is a {!Buf}-encoded message — a kind byte, an id string, a payload
    string — followed by the CRC-64 (ECMA-182, the same trailer bin
    files carry) of the encoded message.  The format is pure bytes: this
    module never touches a file descriptor, so the parent and the child
    can drive it over any transport.

    Damage of any sort — a bad magic, an implausible length, a CRC
    mismatch, a truncated body — raises {!Buf.Corrupt}: a torn or
    interleaved stream is a checked protocol error, never a wrong
    message. *)

(** The 4-byte frame magic (["SWP1"]). *)
val magic : string

(** Bytes of the fixed header: magic + body length. *)
val header_size : int

type msg = {
  f_kind : int;  (** message kind (the worker protocol's tag space) *)
  f_id : string;  (** the job this message belongs to (may be empty) *)
  f_payload : string;
}

(** [encode ~kind ~id ~payload] — a complete frame, header included. *)
val encode : kind:int -> id:string -> payload:string -> string

(** [body_length header] — the body length announced by a [header_size]
    prefix.  Raises {!Buf.Corrupt} on a bad magic or an implausible
    length. *)
val body_length : string -> int

(** [decode_body body] — verify the CRC-64 trailer, then decode.
    Raises {!Buf.Corrupt} on a mismatch. *)
val decode_body : string -> msg

(** [pop buffer] — extract the first complete frame from an
    accumulation buffer: [Some (msg, rest)] when a whole frame is
    present, [None] when more bytes are needed.  Raises {!Buf.Corrupt}
    as soon as the prefix is provably damaged (bad magic, implausible
    length, CRC mismatch), so a receiver can drop the peer without
    waiting for more input. *)
val pop : string -> (msg * string) option
