module Symbol = Support.Symbol
module Diag = Support.Diag
module Pid = Digestkit.Pid
open Statics.Types

type token =
  | TokGlobal of int
  | TokOwn of int
  | TokExtern of Pid.t * int

let numbering ctx env =
  let order = Statics.Realize.reachable_stamps ctx env in
  let table = Statics.Stamp.Table.create 64 in
  let own = ref [] in
  let next = ref 0 in
  List.iter
    (fun stamp ->
      match stamp with
      | Statics.Stamp.Local _ ->
        Statics.Stamp.Table.add table stamp !next;
        incr next;
        own := stamp :: !own
      | Statics.Stamp.Global _ | Statics.Stamp.External _ -> ())
    order;
  let token stamp =
    match stamp with
    | Statics.Stamp.Global n -> TokGlobal n
    | Statics.Stamp.External (pid, idx) -> TokExtern (pid, idx)
    | Statics.Stamp.Local _ -> (
      match Statics.Stamp.Table.find_opt table stamp with
      | Some idx -> TokOwn idx
      | None ->
        (* a stamp outside the canonical traversal would make the hash
           ill-defined; it indicates a compiler bug *)
        invalid_arg
          (Printf.sprintf "Serial.numbering: unreachable stamp %s"
             (Statics.Stamp.to_string stamp)))
  in
  (token, List.rev !own)

let exported_token ~self stamp =
  match stamp with
  | Statics.Stamp.Global n -> TokGlobal n
  | Statics.Stamp.External (pid, idx) ->
    if Pid.equal pid self then TokOwn idx else TokExtern (pid, idx)
  | Statics.Stamp.Local _ ->
    invalid_arg "Serial.exported_token: local stamp in an exported environment"

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let write_token w = function
  | TokGlobal n ->
    Buf.byte w 0;
    Buf.int w n
  | TokOwn i ->
    Buf.byte w 1;
    Buf.int w i
  | TokExtern (pid, idx) ->
    Buf.byte w 2;
    Buf.pid w pid;
    Buf.int w idx

let write_symbol w sym = Buf.string w (Symbol.name sym)

let rec write_ty w ~token ty =
  match repr ty with
  | Tvar _ ->
    Diag.error Diag.Elaborate Support.Loc.dummy
      "unresolved type variable at compilation-unit boundary"
  | Tgen i ->
    Buf.byte w 0;
    Buf.int w i
  | Tcon (stamp, args) ->
    Buf.byte w 1;
    write_token w (token stamp);
    Buf.list w (write_ty w ~token) args
  | Tarrow (a, b) ->
    Buf.byte w 2;
    write_ty w ~token a;
    write_ty w ~token b
  | Ttuple parts ->
    Buf.byte w 3;
    Buf.list w (write_ty w ~token) parts
  | Terror ->
    (* errored units never reach pickling: the collector raises before
       translate.  A Terror here is a compiler bug, not a user error. *)
    Diag.error Diag.Pickle Support.Loc.dummy
      "error type escaped to a compilation-unit boundary"

let write_scheme w ~token scheme =
  Buf.int w scheme.arity;
  write_ty w ~token scheme.body

let write_condesc w ~token cd =
  write_symbol w cd.cd_name;
  Buf.option w (write_ty w ~token) cd.cd_arg;
  Buf.int w cd.cd_tag;
  Buf.int w cd.cd_span

let write_tycon_info w _ctx ~token info =
  write_symbol w info.tyc_name;
  Buf.int w info.tyc_arity;
  match info.tyc_defn with
  | Abstract -> Buf.byte w 0
  | Alias scheme ->
    Buf.byte w 1;
    write_scheme w ~token scheme
  | Data cds ->
    Buf.byte w 2;
    Buf.list w (write_condesc w ~token) cds

let rec write_addr w addr =
  match addr with
  | AdNone -> Buf.byte w 0
  | AdLvar v ->
    Buf.byte w 1;
    write_symbol w v
  | AdExtern pid ->
    Buf.byte w 2;
    Buf.pid w pid
  | AdPrim p ->
    Buf.byte w 3;
    Buf.string w (Statics.Prim.name p)
  | AdBasisExn name ->
    Buf.byte w 4;
    write_symbol w name
  | AdField (base, field) ->
    Buf.byte w 5;
    write_addr w base;
    write_symbol w field

let write_opt_addr w ~with_addrs addr =
  if with_addrs then write_addr w addr

let rec write_env w ctx ~token ~with_addrs env =
  let wa = write_opt_addr w ~with_addrs in
  fold_components env ~init:()
    ~valf:(fun name info () ->
      Buf.byte w 10;
      write_symbol w name;
      write_scheme w ~token info.vi_scheme;
      (match info.vi_kind with
      | Vplain -> Buf.byte w 0
      | Vcon (stamp, cd) ->
        Buf.byte w 1;
        write_token w (token stamp);
        write_condesc w ~token cd
      | Vexn stamp ->
        Buf.byte w 2;
        write_token w (token stamp));
      wa info.vi_addr)
    ~tycf:(fun name stamp () ->
      Buf.byte w 11;
      write_symbol w name;
      write_token w (token stamp))
    ~strf:(fun name info () ->
      Buf.byte w 12;
      write_symbol w name;
      write_token w (token info.str_stamp);
      write_env w ctx ~token ~with_addrs info.str_env;
      wa info.str_addr)
    ~sigf:(fun name info () ->
      Buf.byte w 13;
      write_symbol w name;
      write_token w (token info.sig_stamp);
      write_env w ctx ~token ~with_addrs info.sig_env;
      Buf.list w (fun s -> write_token w (token s)) info.sig_flex)
    ~fctf:(fun name info () ->
      Buf.byte w 14;
      write_symbol w name;
      write_token w (token info.fct_stamp);
      write_symbol w info.fct_param_name;
      write_token w (token info.fct_param_sig.sig_stamp);
      write_env w ctx ~token ~with_addrs info.fct_param_sig.sig_env;
      Buf.list w (fun s -> write_token w (token s)) info.fct_param_sig.sig_flex;
      Buf.list w (fun s -> write_token w (token s)) info.fct_param_stamps;
      write_env w ctx ~token ~with_addrs info.fct_body;
      Buf.list w (fun s -> write_token w (token s)) info.fct_body_gen;
      wa info.fct_addr);
  (* end-of-environment marker *)
  Buf.byte w 15

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let read_token r =
  match Buf.read_byte r with
  | 0 -> TokGlobal (Buf.read_int r)
  | 1 -> TokOwn (Buf.read_int r)
  | 2 ->
    let pid = Buf.read_pid r in
    let idx = Buf.read_int r in
    TokExtern (pid, idx)
  | b -> raise (Buf.Corrupt (Printf.sprintf "bad stamp token %d" b))

let read_symbol r = Symbol.intern (Buf.read_string r)

let rec read_ty r ~resolve =
  match Buf.read_byte r with
  | 0 -> Tgen (Buf.read_int r)
  | 1 ->
    let stamp = resolve (read_token r) in
    let args = Buf.read_list r (fun () -> read_ty r ~resolve) in
    Tcon (stamp, args)
  | 2 ->
    let a = read_ty r ~resolve in
    let b = read_ty r ~resolve in
    Tarrow (a, b)
  | 3 -> Ttuple (Buf.read_list r (fun () -> read_ty r ~resolve))
  | b -> raise (Buf.Corrupt (Printf.sprintf "bad type tag %d" b))

let read_scheme r ~resolve =
  let arity = Buf.read_int r in
  let body = read_ty r ~resolve in
  { arity; body }

let read_condesc r ~resolve =
  let cd_name = read_symbol r in
  let cd_arg = Buf.read_option r (fun () -> read_ty r ~resolve) in
  let cd_tag = Buf.read_int r in
  let cd_span = Buf.read_int r in
  { cd_name; cd_arg; cd_tag; cd_span }

let read_tycon_info r ~resolve =
  let tyc_name = read_symbol r in
  let tyc_arity = Buf.read_int r in
  let tyc_defn =
    match Buf.read_byte r with
    | 0 -> Abstract
    | 1 -> Alias (read_scheme r ~resolve)
    | 2 -> Data (Buf.read_list r (fun () -> read_condesc r ~resolve))
    | b -> raise (Buf.Corrupt (Printf.sprintf "bad defn tag %d" b))
  in
  { tyc_name; tyc_arity; tyc_defn }

let rec read_addr r =
  match Buf.read_byte r with
  | 0 -> AdNone
  | 1 -> AdLvar (read_symbol r)
  | 2 -> AdExtern (Buf.read_pid r)
  | 3 -> (
    let name = Buf.read_string r in
    match Statics.Prim.of_name name with
    | Some p -> AdPrim p
    | None -> raise (Buf.Corrupt ("unknown primitive " ^ name)))
  | 4 -> AdBasisExn (read_symbol r)
  | 5 ->
    let base = read_addr r in
    let field = read_symbol r in
    AdField (base, field)
  | b -> raise (Buf.Corrupt (Printf.sprintf "bad addr tag %d" b))

let rec read_env r ~resolve =
  let rec loop env =
    match Buf.read_byte r with
    | 10 ->
      let name = read_symbol r in
      let scheme = read_scheme r ~resolve in
      let kind =
        match Buf.read_byte r with
        | 0 -> Vplain
        | 1 ->
          let stamp = resolve (read_token r) in
          let cd = read_condesc r ~resolve in
          Vcon (stamp, cd)
        | 2 -> Vexn (resolve (read_token r))
        | b -> raise (Buf.Corrupt (Printf.sprintf "bad vkind tag %d" b))
      in
      let addr = read_addr r in
      loop (bind_val name { vi_scheme = scheme; vi_kind = kind; vi_addr = addr } env)
    | 11 ->
      let name = read_symbol r in
      let stamp = resolve (read_token r) in
      loop (bind_tycon name stamp env)
    | 12 ->
      let name = read_symbol r in
      let stamp = resolve (read_token r) in
      let sub = read_env r ~resolve in
      let addr = read_addr r in
      loop (bind_str name { str_stamp = stamp; str_env = sub; str_addr = addr } env)
    | 13 ->
      let name = read_symbol r in
      let stamp = resolve (read_token r) in
      let sub = read_env r ~resolve in
      let flex = Buf.read_list r (fun () -> resolve (read_token r)) in
      loop (bind_sig name { sig_stamp = stamp; sig_env = sub; sig_flex = flex } env)
    | 14 ->
      let name = read_symbol r in
      let fct_stamp = resolve (read_token r) in
      let fct_param_name = read_symbol r in
      let sig_stamp = resolve (read_token r) in
      let sig_env = read_env r ~resolve in
      let sig_flex = Buf.read_list r (fun () -> resolve (read_token r)) in
      let fct_param_stamps = Buf.read_list r (fun () -> resolve (read_token r)) in
      let fct_body = read_env r ~resolve in
      let fct_body_gen = Buf.read_list r (fun () -> resolve (read_token r)) in
      let fct_addr = read_addr r in
      loop
        (bind_fct name
           {
             fct_stamp;
             fct_param_name;
             fct_param_sig = { sig_stamp; sig_env; sig_flex };
             fct_param_stamps;
             fct_body;
             fct_body_gen;
             fct_addr;
           }
           env)
    | 15 -> env
    | b -> raise (Buf.Corrupt (Printf.sprintf "bad env tag %d" b))
  in
  loop empty_env
