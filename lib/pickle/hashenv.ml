module Symbol = Support.Symbol
module Pid = Digestkit.Pid
open Statics.Types

(* ------------------------------------------------------------------ *)
(* Whole-environment hashing                                           *)
(* ------------------------------------------------------------------ *)

let m_pid_hashes = Obs.Metrics.counter "hash.pids"

let hash_with ctx ~token ~own env =
  Obs.Metrics.incr m_pid_hashes;
  let w = Buf.writer () in
  (* the definitions of the unit's own stamps are part of the interface *)
  Buf.list w
    (fun stamp ->
      match Statics.Context.find ctx stamp with
      | Some info ->
        Buf.byte w 1;
        Serial.write_tycon_info w ctx ~token info
      | None -> Buf.byte w 0)
    own;
  Serial.write_env w ctx ~token ~with_addrs:false env;
  let md5 = Digestkit.Md5.init () in
  Buf.hash_contents w md5;
  Pid.of_digest (Digestkit.Md5.finish md5)

let hash_env ctx env =
  let token, own = Serial.numbering ctx env in
  hash_with ctx ~token ~own env

(* ------------------------------------------------------------------ *)
(* Per-binding identities                                              *)
(* ------------------------------------------------------------------ *)

type export = {
  ex_env : env;
  ex_static_pid : Pid.t;
  ex_exports : (Symbol.t * Pid.t) list;
  ex_name_statics : (Symbol.t * Pid.t) list;
}

(* the top-level bindings of a unit's environment, in canonical order,
   each as a kind tag + singleton environment *)
let top_bindings env =
  let sorted bindings = List.sort (fun (a, _) (b, _) ->
      String.compare (Symbol.name a) (Symbol.name b))
      (Symbol.Map.bindings bindings)
  in
  List.concat
    [
      List.map
        (fun (n, v) -> ("val", n, bind_val n v empty_env))
        (sorted env.vals);
      List.map
        (fun (n, v) -> ("tyc", n, bind_tycon n v empty_env))
        (sorted env.tycons);
      List.map
        (fun (n, v) -> ("str", n, bind_str n v empty_env))
        (sorted env.strs);
      List.map
        (fun (n, v) -> ("sig", n, bind_sig n v empty_env))
        (sorted env.sigs);
      List.map
        (fun (n, v) -> ("fct", n, bind_fct n v empty_env))
        (sorted env.fcts);
    ]

let binding_pid kind name digest =
  Pid.intrinsic
    (Printf.sprintf "mod:%s:%s:" kind (Symbol.name name) ^ Pid.to_bytes digest)

let dyn_of_binding pid = Pid.intrinsic (Pid.to_bytes pid ^ ":dyn")

let unit_pid name_statics =
  let w = Buffer.create 128 in
  Buffer.add_string w "unit:";
  List.iter
    (fun (name, pid) ->
      Buffer.add_string w (Symbol.name name);
      Buffer.add_string w (Pid.to_bytes pid))
    name_statics;
  Pid.intrinsic (Buffer.contents w)

(* Hash one binding's singleton environment.  [claim] maps stamps owned
   by earlier bindings (or already assigned in this one) to their final
   identity; stamps first reached here are alpha-numbered and appended
   to [claim] afterwards by the caller. *)
let hash_binding ctx ~claim (kind, name, senv) =
  let reachable = Statics.Realize.reachable_stamps ctx senv in
  let own_new = ref [] in
  let alpha = Statics.Stamp.Table.create 16 in
  List.iter
    (fun stamp ->
      match stamp with
      | Statics.Stamp.Local _
        when (not (Statics.Stamp.Table.mem claim stamp))
             && not (Statics.Stamp.Table.mem alpha stamp) ->
        Statics.Stamp.Table.add alpha stamp (List.length !own_new);
        own_new := stamp :: !own_new
      | Statics.Stamp.Local _ | Statics.Stamp.Global _ | Statics.Stamp.External _ -> ())
    reachable;
  let own_new = List.rev !own_new in
  let token stamp =
    match stamp with
    | Statics.Stamp.Global n -> Serial.TokGlobal n
    | Statics.Stamp.External (pid, idx) -> Serial.TokExtern (pid, idx)
    | Statics.Stamp.Local _ -> (
      match Statics.Stamp.Table.find_opt alpha stamp with
      | Some idx -> Serial.TokOwn idx
      | None -> (
        match Statics.Stamp.Table.find_opt claim stamp with
        | Some (owner, idx) -> Serial.TokExtern (owner, idx)
        | None ->
          invalid_arg
            (Printf.sprintf "Hashenv: stamp %s escapes binding %s"
               (Statics.Stamp.to_string stamp) (Symbol.name name))))
  in
  let w = Buf.writer () in
  Buf.string w kind;
  Buf.string w (Symbol.name name);
  let digest_body = hash_with ctx ~token ~own:own_new senv in
  Buf.pid w digest_body;
  let digest = Pid.intrinsic (Buf.contents w) in
  (binding_pid kind name digest, own_new)

let check_distinct_names bindings =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (kind, name, _) ->
      match Hashtbl.find_opt seen (Symbol.name name) with
      | Some other_kind when other_kind <> kind ->
        Support.Diag.error Support.Diag.Elaborate Support.Loc.dummy
          "a compilation unit may not export both a %s and a %s named %a"
          other_kind kind Symbol.pp name
      | _ -> Hashtbl.replace seen (Symbol.name name) kind)
    bindings

let export ctx env =
  let bindings = top_bindings env in
  check_distinct_names bindings;
  (* assign per-binding pids and stamp ownership, in canonical order *)
  let claim : (Pid.t * int) Statics.Stamp.Table.t = Statics.Stamp.Table.create 64 in
  let name_statics =
    List.map
      (fun binding ->
        let pid, own_new = hash_binding ctx ~claim binding in
        List.iteri
          (fun idx stamp -> Statics.Stamp.Table.add claim stamp (pid, idx))
          own_new;
        let _, name, _ = binding in
        (name, pid))
      bindings
  in
  let static_pid = unit_pid name_statics in
  (* rebind owned stamps to their intrinsic identities *)
  let rz =
    Statics.Stamp.Table.fold
      (fun old_stamp (owner, idx) rz ->
        let new_stamp = Statics.Stamp.External (owner, idx) in
        match Statics.Context.find ctx old_stamp with
        | Some info ->
          Statics.Realize.add_tycon_rename rz old_stamp ~arity:info.tyc_arity
            new_stamp
        | None -> Statics.Realize.add_stamp_rename rz old_stamp new_stamp)
      claim Statics.Realize.empty
  in
  Statics.Stamp.Table.iter
    (fun old_stamp (owner, idx) ->
      match Statics.Context.find ctx old_stamp with
      | Some info ->
        Statics.Context.register ctx
          (Statics.Stamp.External (owner, idx))
          (Statics.Realize.subst_tycon_info ctx rz info)
      | None -> ())
    claim;
  let renamed = Statics.Realize.subst_env ctx rz env in
  (* rebase top-level structures/functors onto their dynamic pids *)
  let exports = ref [] in
  let dyn_for name = dyn_of_binding (List.assoc name name_statics) in
  let strs =
    Symbol.Map.mapi
      (fun name info ->
        let pid = dyn_for name in
        exports := (name, pid) :: !exports;
        {
          info with
          str_addr = AdExtern pid;
          str_env = env_with_root_access (AdExtern pid) info.str_env;
        })
      renamed.strs
  in
  let fcts =
    Symbol.Map.mapi
      (fun name info ->
        let pid = dyn_for name in
        exports := (name, pid) :: !exports;
        { info with fct_addr = AdExtern pid })
      renamed.fcts
  in
  let exports =
    List.sort
      (fun (a, _) (b, _) -> String.compare (Symbol.name a) (Symbol.name b))
      !exports
  in
  {
    ex_env = { renamed with strs; fcts };
    ex_static_pid = static_pid;
    ex_exports = exports;
    ex_name_statics = name_statics;
  }

(* ------------------------------------------------------------------ *)
(* Verification                                                        *)
(* ------------------------------------------------------------------ *)

let verify ctx ~name_statics env =
  let bindings = top_bindings env in
  let claimed = List.map snd name_statics in
  let is_claimed pid = List.exists (Pid.equal pid) claimed in
  (* replay the export numbering over the already-exported stamps *)
  let seen = Statics.Stamp.Table.create 64 in
  let ok = ref true in
  List.iter
    (fun ((kind, name, senv) as _binding) ->
      let reachable = Statics.Realize.reachable_stamps ctx senv in
      let alpha = Statics.Stamp.Table.create 16 in
      let own_new = ref [] in
      List.iter
        (fun stamp ->
          match stamp with
          | Statics.Stamp.External (pid, _)
            when is_claimed pid
                 && (not (Statics.Stamp.Table.mem seen stamp))
                 && not (Statics.Stamp.Table.mem alpha stamp) ->
            Statics.Stamp.Table.add alpha stamp (List.length !own_new);
            own_new := stamp :: !own_new
          | Statics.Stamp.External _ | Statics.Stamp.Global _ | Statics.Stamp.Local _ -> ())
        reachable;
      let own_new = List.rev !own_new in
      let token stamp =
        match stamp with
        | Statics.Stamp.Global n -> Serial.TokGlobal n
        | Statics.Stamp.Local _ -> Serial.TokExtern (Pid.intrinsic "local", 0)
        | Statics.Stamp.External (pid, idx) -> (
          match Statics.Stamp.Table.find_opt alpha stamp with
          | Some own_idx -> Serial.TokOwn own_idx
          | None -> Serial.TokExtern (pid, idx))
      in
      let w = Buf.writer () in
      Buf.string w kind;
      Buf.string w (Symbol.name name);
      let digest_body = hash_with ctx ~token ~own:own_new senv in
      Buf.pid w digest_body;
      let recomputed = binding_pid kind name (Pid.intrinsic (Buf.contents w)) in
      List.iter (fun stamp -> Statics.Stamp.Table.replace seen stamp ()) own_new;
      match List.assoc_opt name name_statics with
      | Some claimed_pid when Pid.equal claimed_pid recomputed -> ()
      | Some _ | None -> ok := false)
    bindings;
  if !ok then Some (unit_pid name_statics) else None
