module Symbol = Support.Symbol
module Pid = Digestkit.Pid
module L = Lambda

type t = {
  uf_name : string;
  uf_static_pid : Pid.t;
  uf_env : Statics.Types.env;
  uf_import_statics : (string * Pid.t) list;
  uf_name_statics : (Symbol.t * Pid.t) list;
  uf_import_name_statics : (Symbol.t * Pid.t) list;
  uf_codeunit : Link.Codeunit.t;
}

let magic = "SMLSEP.BIN.4"
let static_magic = "SMLSEP.STA.4"

(* a placeholder codeUnit for static-only views of a unit: the statics
   (env, pids) are real, the code is not there yet *)
let no_code =
  { Link.Codeunit.cu_imports = []; cu_exports = []; cu_code = L.Ltuple [] }

let m_bytes_written = Obs.Metrics.counter "pickle.bytes_written"
let m_bytes_read = Obs.Metrics.counter "pickle.bytes_read"
let m_rehydrations = Obs.Metrics.counter "pickle.rehydrations"

(* ------------------------------------------------------------------ *)
(* Lambda terms                                                        *)
(* ------------------------------------------------------------------ *)

let write_symbol w sym = Buf.string w (Symbol.name sym)
let read_symbol r = Symbol.intern (Buf.read_string r)

let rec write_lambda w (term : L.t) =
  match term with
  | L.Lvar v ->
    Buf.byte w 0;
    write_symbol w v
  | L.Lint n ->
    Buf.byte w 1;
    Buf.int w n
  | L.Lstring s ->
    Buf.byte w 2;
    Buf.string w s
  | L.Limport pid ->
    Buf.byte w 3;
    Buf.pid w pid
  | L.Lprim p ->
    Buf.byte w 4;
    Buf.string w (Statics.Prim.name p)
  | L.Lbasisexn name ->
    Buf.byte w 5;
    write_symbol w name
  | L.Lfn (v, body) ->
    Buf.byte w 6;
    write_symbol w v;
    write_lambda w body
  | L.Lapp (f, x) ->
    Buf.byte w 7;
    write_lambda w f;
    write_lambda w x
  | L.Llet (v, e, body) ->
    Buf.byte w 8;
    write_symbol w v;
    write_lambda w e;
    write_lambda w body
  | L.Lfix (binds, body) ->
    Buf.byte w 9;
    Buf.list w
      (fun (f, x, b) ->
        write_symbol w f;
        write_symbol w x;
        write_lambda w b)
      binds;
    write_lambda w body
  | L.Ltuple parts ->
    Buf.byte w 10;
    Buf.list w (write_lambda w) parts
  | L.Lselect (i, e) ->
    Buf.byte w 11;
    Buf.int w i;
    write_lambda w e
  | L.Lrecord fields ->
    Buf.byte w 12;
    Buf.list w
      (fun (name, v) ->
        write_symbol w name;
        write_lambda w v)
      fields
  | L.Lfield (name, e) ->
    Buf.byte w 13;
    write_symbol w name;
    write_lambda w e
  | L.Lcon0 tag ->
    Buf.byte w 14;
    Buf.int w tag
  | L.Lcon (tag, e) ->
    Buf.byte w 15;
    Buf.int w tag;
    write_lambda w e
  | L.Lcontag e ->
    Buf.byte w 16;
    write_lambda w e
  | L.Lconarg e ->
    Buf.byte w 17;
    write_lambda w e
  | L.Lnewexn (name, has_arg) ->
    Buf.byte w 18;
    write_symbol w name;
    Buf.bool w has_arg
  | L.Lmkexn0 e ->
    Buf.byte w 19;
    write_lambda w e
  | L.Lexnid e ->
    Buf.byte w 20;
    write_lambda w e
  | L.Lexnarg e ->
    Buf.byte w 21;
    write_lambda w e
  | L.Lif (c, t, e) ->
    Buf.byte w 22;
    write_lambda w c;
    write_lambda w t;
    write_lambda w e
  | L.Lraise e ->
    Buf.byte w 23;
    write_lambda w e
  | L.Lhandle (e, v, h) ->
    Buf.byte w 24;
    write_lambda w e;
    write_symbol w v;
    write_lambda w h

let rec read_lambda r : L.t =
  match Buf.read_byte r with
  | 0 -> L.Lvar (read_symbol r)
  | 1 -> L.Lint (Buf.read_int r)
  | 2 -> L.Lstring (Buf.read_string r)
  | 3 -> L.Limport (Buf.read_pid r)
  | 4 -> (
    let name = Buf.read_string r in
    match Statics.Prim.of_name name with
    | Some p -> L.Lprim p
    | None -> raise (Buf.Corrupt ("unknown primitive " ^ name)))
  | 5 -> L.Lbasisexn (read_symbol r)
  | 6 ->
    let v = read_symbol r in
    let body = read_lambda r in
    L.Lfn (v, body)
  | 7 ->
    let f = read_lambda r in
    let x = read_lambda r in
    L.Lapp (f, x)
  | 8 ->
    let v = read_symbol r in
    let e = read_lambda r in
    let body = read_lambda r in
    L.Llet (v, e, body)
  | 9 ->
    let binds =
      Buf.read_list r (fun () ->
          let f = read_symbol r in
          let x = read_symbol r in
          let b = read_lambda r in
          (f, x, b))
    in
    let body = read_lambda r in
    L.Lfix (binds, body)
  | 10 -> L.Ltuple (Buf.read_list r (fun () -> read_lambda r))
  | 11 ->
    let i = Buf.read_int r in
    let e = read_lambda r in
    L.Lselect (i, e)
  | 12 ->
    L.Lrecord
      (Buf.read_list r (fun () ->
           let name = read_symbol r in
           let v = read_lambda r in
           (name, v)))
  | 13 ->
    let name = read_symbol r in
    let e = read_lambda r in
    L.Lfield (name, e)
  | 14 -> L.Lcon0 (Buf.read_int r)
  | 15 ->
    let tag = Buf.read_int r in
    let e = read_lambda r in
    L.Lcon (tag, e)
  | 16 -> L.Lcontag (read_lambda r)
  | 17 -> L.Lconarg (read_lambda r)
  | 18 ->
    let name = read_symbol r in
    let has_arg = Buf.read_bool r in
    L.Lnewexn (name, has_arg)
  | 19 -> L.Lmkexn0 (read_lambda r)
  | 20 -> L.Lexnid (read_lambda r)
  | 21 -> L.Lexnarg (read_lambda r)
  | 22 ->
    let c = read_lambda r in
    let t = read_lambda r in
    let e = read_lambda r in
    L.Lif (c, t, e)
  | 23 -> L.Lraise (read_lambda r)
  | 24 ->
    let e = read_lambda r in
    let v = read_symbol r in
    let h = read_lambda r in
    L.Lhandle (e, v, h)
  | b -> raise (Buf.Corrupt (Printf.sprintf "bad lambda tag %d" b))

(* ------------------------------------------------------------------ *)
(* Units                                                               *)
(* ------------------------------------------------------------------ *)

(* The static part of a unit — everything a dependent needs to compile
   against it (name, pids, own-stamp table, environment) — is pickled
   as one self-contained blob.  A full bin file embeds the blob
   length-prefixed ahead of the codeUnit, so the static view can be
   sliced out of an existing full bin by pure byte surgery
   ({!static_of_full}): no context, no re-pickling. *)
let static_payload ctx uf =
  let w = Buf.writer () in
  Buf.string w uf.uf_name;
  Buf.pid w uf.uf_static_pid;
  Buf.list w
    (fun (name, pid) ->
      Buf.string w name;
      Buf.pid w pid)
    uf.uf_import_statics;
  Buf.list w
    (fun (name, pid) ->
      write_symbol w name;
      Buf.pid w pid)
    uf.uf_name_statics;
  Buf.list w
    (fun (name, pid) ->
      write_symbol w name;
      Buf.pid w pid)
    uf.uf_import_name_statics;
  (* dehydrated own-stamp table: definitions of every stamp owned by
     one of this unit's bindings (per-binding intrinsic owners) *)
  let token = Serial.exported_token ~self:uf.uf_static_pid in
  let owners = List.map snd uf.uf_name_statics in
  let own =
    List.filter
      (fun stamp ->
        match stamp with
        | Statics.Stamp.External (pid, _) ->
          List.exists (Pid.equal pid) owners
        | Statics.Stamp.Global _ | Statics.Stamp.Local _ -> false)
      (Statics.Realize.reachable_stamps ctx uf.uf_env)
  in
  Buf.list w
    (fun stamp ->
      let owner, idx =
        match stamp with
        | Statics.Stamp.External (owner, idx) -> (owner, idx)
        | Statics.Stamp.Global _ | Statics.Stamp.Local _ -> assert false
      in
      Buf.pid w owner;
      Buf.int w idx;
      match Statics.Context.find ctx stamp with
      | Some info ->
        Buf.byte w 1;
        Serial.write_tycon_info w ctx ~token info
      | None -> Buf.byte w 0)
    own;
  Serial.write_env w ctx ~token ~with_addrs:true uf.uf_env;
  Buf.contents w

let read_static_payload ctx blob =
  let r = Buf.reader blob in
  let uf_name = Buf.read_string r in
  let uf_static_pid = Buf.read_pid r in
  let uf_import_statics =
    Buf.read_list r (fun () ->
        let name = Buf.read_string r in
        let pid = Buf.read_pid r in
        (name, pid))
  in
  let uf_name_statics =
    Buf.read_list r (fun () ->
        let name = read_symbol r in
        let pid = Buf.read_pid r in
        (name, pid))
  in
  let uf_import_name_statics =
    Buf.read_list r (fun () ->
        let name = read_symbol r in
        let pid = Buf.read_pid r in
        (name, pid))
  in
  let resolve = function
    | Serial.TokGlobal n -> Statics.Stamp.Global n
    | Serial.TokOwn idx -> Statics.Stamp.External (uf_static_pid, idx)
    | Serial.TokExtern (pid, idx) -> Statics.Stamp.External (pid, idx)
  in
  (* rehydrate the own-stamp table, registering definitions *)
  let entries =
    Buf.read_list r (fun () ->
        let owner = Buf.read_pid r in
        let idx = Buf.read_int r in
        let info =
          match Buf.read_byte r with
          | 0 -> None
          | 1 -> Some (Serial.read_tycon_info r ~resolve)
          | b -> raise (Buf.Corrupt (Printf.sprintf "bad table tag %d" b))
        in
        (owner, idx, info))
  in
  List.iter
    (fun (owner, idx, info) ->
      match info with
      | Some info ->
        Statics.Context.register ctx (Statics.Stamp.External (owner, idx)) info
      | None -> ())
    entries;
  let uf_env = Serial.read_env r ~resolve in
  if not (Buf.at_end r) then raise (Buf.Corrupt "trailing static bytes");
  {
    uf_name;
    uf_static_pid;
    uf_env;
    uf_import_statics;
    uf_name_statics;
    uf_import_name_statics;
    uf_codeunit = no_code;
  }

(* fixed-width big-endian CRC-64 trailer: readers can locate and
   verify it before parsing a single payload byte *)
let seal payload =
  let crc = Digestkit.Crc64.of_string payload in
  let trailer = Bytes.create 8 in
  Bytes.set_int64_be trailer 0 crc;
  payload ^ Bytes.to_string trailer

(* Verify the CRC trailer FIRST: nothing of the payload is parsed —
   let alone registered in a context — before the whole file is known
   to be intact.  Any torn or flipped byte is a checked [Corrupt],
   never a wrong environment. *)
let unseal data =
  if String.length data < 8 then raise (Buf.Corrupt "truncated bin file");
  let payload = String.sub data 0 (String.length data - 8) in
  let declared =
    Bytes.get_int64_be (Bytes.of_string (String.sub data (String.length data - 8) 8)) 0
  in
  if not (Int64.equal declared (Digestkit.Crc64.of_string payload)) then
    raise (Buf.Corrupt "CRC mismatch: bin file is corrupt");
  payload

let write ctx uf =
  Obs.Trace.span ~cat:"pickle" ~args:[ ("unit", uf.uf_name) ] "pickle.write"
  @@ fun () ->
  let w = Buf.writer () in
  Buf.string w magic;
  Buf.string w (static_payload ctx uf);
  (* the codeUnit *)
  Buf.list w (fun pid -> Buf.pid w pid) uf.uf_codeunit.Link.Codeunit.cu_imports;
  Buf.list w
    (fun (name, pid) ->
      write_symbol w name;
      Buf.pid w pid)
    uf.uf_codeunit.Link.Codeunit.cu_exports;
  write_lambda w uf.uf_codeunit.Link.Codeunit.cu_code;
  let bytes = seal (Buf.contents w) in
  Obs.Metrics.add m_bytes_written (String.length bytes);
  bytes

let write_static ctx uf =
  Obs.Trace.span ~cat:"pickle"
    ~args:[ ("unit", uf.uf_name) ]
    "pickle.write_static"
  @@ fun () ->
  let w = Buf.writer () in
  Buf.string w static_magic;
  Buf.string w (static_payload ctx uf);
  let bytes = seal (Buf.contents w) in
  Obs.Metrics.add m_bytes_written (String.length bytes);
  bytes

let static_of_full data =
  let payload = unseal data in
  let r = Buf.reader payload in
  let m = Buf.read_string r in
  if String.equal m static_magic then data
  else if not (String.equal m magic) then raise (Buf.Corrupt "bad magic")
  else begin
    let blob = Buf.read_string r in
    let w = Buf.writer () in
    Buf.string w static_magic;
    Buf.string w blob;
    seal (Buf.contents w)
  end

let read ctx data =
  Obs.Trace.span ~cat:"pickle" "pickle.read" @@ fun () ->
  Obs.Metrics.add m_bytes_read (String.length data);
  Obs.Metrics.incr m_rehydrations;
  let payload = unseal data in
  let r = Buf.reader payload in
  let m = Buf.read_string r in
  if String.equal m static_magic then begin
    let uf = read_static_payload ctx (Buf.read_string r) in
    if not (Buf.at_end r) then raise (Buf.Corrupt "trailing bytes");
    uf
  end
  else if not (String.equal m magic) then raise (Buf.Corrupt "bad magic")
  else begin
    let uf = read_static_payload ctx (Buf.read_string r) in
    let cu_imports = Buf.read_list r (fun () -> Buf.read_pid r) in
    let cu_exports =
      Buf.read_list r (fun () ->
          let name = read_symbol r in
          let pid = Buf.read_pid r in
          (name, pid))
    in
    let cu_code = read_lambda r in
    if not (Buf.at_end r) then raise (Buf.Corrupt "trailing bytes");
    { uf with uf_codeunit = { Link.Codeunit.cu_imports; cu_exports; cu_code } }
  end

let size_of ctx uf = String.length (write ctx uf)
