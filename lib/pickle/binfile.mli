(** The bin-file format: a complete pickled compilation Unit.

    {v
    Unit = { name, static_pid, statenv, import interface pids, codeUnit }
    v}

    Layout: magic, then the {e static blob} as one length-prefixed
    string (unit name, static pid, import-interface list, the own stamp
    table with dehydrated definitions, the environment tree with stubs
    for external references), then the codeUnit (imports, exports,
    code), and a fixed-width CRC-64 trailer guarding against
    corruption.  Reading verifies the CRC {e before parsing anything}
    — a damaged file is a checked {!Buf.Corrupt}, never a wrong
    environment and never a partially-registered context — then checks
    the magic and registers the unit's own type constructors in the
    context ("rehydration", section 4).

    Because the static blob is length-prefixed, the {e static view} of
    a unit — all a dependent needs to compile against it, per the
    paper's statenv/codeUnit factoring — can be sliced out of a full
    bin by pure byte surgery ({!static_of_full}), or written directly
    ({!write_static}) before the unit's code generation has even run.
    Static bins carry their own magic and rehydrate with a {!no_code}
    placeholder codeUnit. *)

type t = {
  uf_name : string;  (** the compilation unit's name (source path) *)
  uf_static_pid : Digestkit.Pid.t;  (** intrinsic pid of the interface *)
  uf_env : Statics.Types.env;  (** exported static environment *)
  uf_import_statics : (string * Digestkit.Pid.t) list;
      (** interface pids of the units this one was compiled against —
          the cutoff-recompilation record *)
  uf_name_statics : (Support.Symbol.t * Digestkit.Pid.t) list;
      (** per-binding interface pids of this unit's exports *)
  uf_import_name_statics : (Support.Symbol.t * Digestkit.Pid.t) list;
      (** per-binding interface pids of the module names this unit
          actually referenced — the selective-recompilation record *)
  uf_codeunit : Link.Codeunit.t;
}

(** The format magic ("SMLSEP.BIN.…").  Changes whenever the layout
    does, so it doubles as the compiler-version component of
    content-addressed cache keys. *)
val magic : string

(** The magic of a static-only bin ("SMLSEP.STA.…"): the static blob
    without a codeUnit. *)
val static_magic : string

(** The placeholder codeUnit carried by a rehydrated static view: empty
    imports/exports, unit code.  Never linked — dependents consume only
    the statics. *)
val no_code : Link.Codeunit.t

(** [write ctx unit] — serialize to bytes. *)
val write : Statics.Context.t -> t -> string

(** [write_static ctx unit] — serialize only the static view (magic
    {!static_magic}); [unit.uf_codeunit] is ignored. *)
val write_static : Statics.Context.t -> t -> string

(** [static_of_full bytes] — slice the static view out of a full bin by
    byte surgery alone: no context, no re-pickling, and byte-for-byte
    what {!write_static} would have produced for the same unit.  A
    static bin passes through unchanged.
    Raises {!Buf.Corrupt} on damage. *)
val static_of_full : string -> string

(** [read ctx bytes] — parse, verify magic + CRC, register the unit's
    own stamps in [ctx], and return the Unit.  Accepts both full and
    static bins; a static bin comes back with {!no_code}.
    Raises {!Buf.Corrupt} on damage. *)
val read : Statics.Context.t -> string -> t

(** [size_of ctx unit] — serialized size in bytes (for benches). *)
val size_of : Statics.Context.t -> t -> int
