(** The bin-file format: a complete pickled compilation Unit.

    {v
    Unit = { name, static_pid, statenv, import interface pids, codeUnit }
    v}

    Layout: magic, unit name, static pid, import-interface list, the own
    stamp table (dehydrated definitions), the environment tree (with
    stubs for external references), the exports, the code, and a
    fixed-width CRC-64 trailer guarding against corruption.  Reading
    verifies the CRC {e before parsing anything} — a damaged file is a
    checked {!Buf.Corrupt}, never a wrong environment and never a
    partially-registered context — then checks the magic and registers
    the unit's own type constructors in the context ("rehydration",
    section 4). *)

type t = {
  uf_name : string;  (** the compilation unit's name (source path) *)
  uf_static_pid : Digestkit.Pid.t;  (** intrinsic pid of the interface *)
  uf_env : Statics.Types.env;  (** exported static environment *)
  uf_import_statics : (string * Digestkit.Pid.t) list;
      (** interface pids of the units this one was compiled against —
          the cutoff-recompilation record *)
  uf_name_statics : (Support.Symbol.t * Digestkit.Pid.t) list;
      (** per-binding interface pids of this unit's exports *)
  uf_import_name_statics : (Support.Symbol.t * Digestkit.Pid.t) list;
      (** per-binding interface pids of the module names this unit
          actually referenced — the selective-recompilation record *)
  uf_codeunit : Link.Codeunit.t;
}

(** The format magic ("SMLSEP.BIN.…").  Changes whenever the layout
    does, so it doubles as the compiler-version component of
    content-addressed cache keys. *)
val magic : string

(** [write ctx unit] — serialize to bytes. *)
val write : Statics.Context.t -> t -> string

(** [read ctx bytes] — parse, verify magic + CRC, register the unit's
    own stamps in [ctx], and return the Unit.
    Raises {!Buf.Corrupt} on damage. *)
val read : Statics.Context.t -> string -> t

(** [size_of ctx unit] — serialized size in bytes (for benches). *)
val size_of : Statics.Context.t -> t -> int
