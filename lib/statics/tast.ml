module Symbol = Support.Symbol

type lvar = Symbol.t

type tpat =
  | TPwild
  | TPvar of lvar
  | TPint of int
  | TPstring of string
  | TPtuple of tpat list
  | TPcon of Types.conrep * tpat option
  | TPexn of Types.addr * tpat option
  | TPref of tpat
  | TPas of lvar * tpat

type texp =
  | TEint of int
  | TEstring of string
  | TEvar of Types.addr
  | TEprim of Prim.t
  | TEcon of Types.conrep * texp option
  | TEconfn of Types.conrep
  | TEexncon of Types.addr * bool
  | TEfn of (tpat * texp) list
  | TEapp of texp * texp
  | TEtuple of texp list
  | TEselect of int * texp
  | TElet of tdec list * texp
  | TEif of texp * texp * texp
  | TEcase of texp * (tpat * texp) list * fail
  | TEraise of texp
  | TEhandle of texp * (tpat * texp) list
  | TEerror

and fail = FailMatch | FailBind

and tdec =
  | TDval of tpat * texp * fail
  | TDrec of (lvar * (tpat * texp) list) list
  | TDexn of lvar * Symbol.t * bool
  | TDstr of lvar * tstr
  | TDfct of lvar * lvar * tstr

and tstr =
  | TSvar of Types.addr
  | TSstruct of tdec list * (Symbol.t * texp) list
  | TSapp of Types.addr * tstr
  | TSthin of tstr * thinning
  | TSlet of tdec list * tstr

and thinning = (Symbol.t * thinitem) list
and thinitem = ThinVal | ThinStr of thinning

let rec pp_addr ppf = function
  | Types.AdNone -> Format.pp_print_string ppf "<none>"
  | Types.AdLvar v -> Format.fprintf ppf "%s" (Symbol.name v)
  | Types.AdExtern pid -> Format.fprintf ppf "@@%s" (Digestkit.Pid.short pid)
  | Types.AdPrim p -> Format.fprintf ppf "%%%s" (Prim.name p)
  | Types.AdBasisExn s -> Format.fprintf ppf "%%exn:%s" (Symbol.name s)
  | Types.AdField (a, f) -> Format.fprintf ppf "%a.%s" pp_addr a (Symbol.name f)

let rec pp_tpat ppf = function
  | TPwild -> Format.pp_print_string ppf "_"
  | TPvar v -> Format.pp_print_string ppf (Symbol.name v)
  | TPint n -> Format.pp_print_int ppf n
  | TPstring s -> Format.fprintf ppf "%S" s
  | TPtuple ps ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_tpat)
      ps
  | TPcon (rep, None) -> Format.fprintf ppf "c%d/%d" rep.Types.rep_tag rep.Types.rep_span
  | TPcon (rep, Some p) ->
    Format.fprintf ppf "c%d/%d(%a)" rep.Types.rep_tag rep.Types.rep_span pp_tpat p
  | TPexn (addr, None) -> Format.fprintf ppf "exn(%a)" pp_addr addr
  | TPexn (addr, Some p) -> Format.fprintf ppf "exn(%a)(%a)" pp_addr addr pp_tpat p
  | TPref p -> Format.fprintf ppf "ref(%a)" pp_tpat p
  | TPas (v, p) -> Format.fprintf ppf "%s as %a" (Symbol.name v) pp_tpat p

let rec pp_texp ppf = function
  | TEint n -> Format.pp_print_int ppf n
  | TEstring s -> Format.fprintf ppf "%S" s
  | TEvar addr -> pp_addr ppf addr
  | TEprim p -> Format.fprintf ppf "%%%s" (Prim.name p)
  | TEcon (rep, None) -> Format.fprintf ppf "c%d" rep.Types.rep_tag
  | TEcon (rep, Some e) -> Format.fprintf ppf "c%d(%a)" rep.Types.rep_tag pp_texp e
  | TEconfn rep -> Format.fprintf ppf "c%d(·)" rep.Types.rep_tag
  | TEexncon (addr, has_arg) ->
    Format.fprintf ppf "exncon(%a%s)" pp_addr addr (if has_arg then "/1" else "")
  | TEfn rules ->
    Format.fprintf ppf "(fn %a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
         (fun ppf (p, e) -> Format.fprintf ppf "%a => %a" pp_tpat p pp_texp e))
      rules
  | TEapp (f, x) -> Format.fprintf ppf "(%a %a)" pp_texp f pp_texp x
  | TEtuple es ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_texp)
      es
  | TEselect (i, e) -> Format.fprintf ppf "#%d %a" i pp_texp e
  | TElet (decs, body) ->
    Format.fprintf ppf "let %a in %a end"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         pp_tdec)
      decs pp_texp body
  | TEif (c, t, e) ->
    Format.fprintf ppf "if %a then %a else %a" pp_texp c pp_texp t pp_texp e
  | TEcase (e, rules, _) ->
    Format.fprintf ppf "case %a of %a" pp_texp e
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
         (fun ppf (p, b) -> Format.fprintf ppf "%a => %a" pp_tpat p pp_texp b))
      rules
  | TEraise e -> Format.fprintf ppf "raise %a" pp_texp e
  | TEerror -> Format.pp_print_string ppf "<error>"
  | TEhandle (e, rules) ->
    Format.fprintf ppf "(%a handle %a)" pp_texp e
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
         (fun ppf (p, b) -> Format.fprintf ppf "%a => %a" pp_tpat p pp_texp b))
      rules

and pp_tdec ppf = function
  | TDval (p, e, _) -> Format.fprintf ppf "val %a = %a" pp_tpat p pp_texp e
  | TDrec binds ->
    Format.fprintf ppf "val rec %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " and ")
         (fun ppf (v, rules) ->
           Format.fprintf ppf "%s = %a" (Symbol.name v) pp_texp (TEfn rules)))
      binds
  | TDexn (v, name, has_arg) ->
    Format.fprintf ppf "exception %s = %s%s" (Symbol.name v) (Symbol.name name)
      (if has_arg then " of _" else "")
  | TDstr (v, str) -> Format.fprintf ppf "structure %s = %a" (Symbol.name v) pp_tstr str
  | TDfct (v, param, body) ->
    Format.fprintf ppf "functor %s(%s) = %a" (Symbol.name v) (Symbol.name param)
      pp_tstr body

and pp_tstr ppf = function
  | TSvar addr -> pp_addr ppf addr
  | TSstruct (decs, fields) ->
    Format.fprintf ppf "struct %a exporting {%a} end"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         pp_tdec)
      decs
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (f, e) -> Format.fprintf ppf "%s = %a" (Symbol.name f) pp_texp e))
      fields
  | TSapp (f, arg) -> Format.fprintf ppf "%a(%a)" pp_addr f pp_tstr arg
  | TSthin (str, _) -> Format.fprintf ppf "thin(%a)" pp_tstr str
  | TSlet (decs, body) ->
    Format.fprintf ppf "let %a in %a end"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         pp_tdec)
      decs pp_tstr body
