type t =
  | Global of int
  | Local of int
  | External of Digestkit.Pid.t * int

(* Atomic so concurrent elaborations on separate domains never mint
   the same Local stamp twice within one domain's session; raw Local
   values never reach bin files (they are alpha-converted at export),
   so the shared counter does not threaten reproducibility. *)
let counter = Atomic.make 0

let fresh () = Local (Atomic.fetch_and_add counter 1 + 1)
let local_counter () = Atomic.get counter

let compare a b =
  match (a, b) with
  | Global x, Global y -> Int.compare x y
  | Global _, (Local _ | External _) -> -1
  | Local _, Global _ -> 1
  | Local x, Local y -> Int.compare x y
  | Local _, External _ -> -1
  | External _, (Global _ | Local _) -> 1
  | External (p, i), External (q, j) ->
    let c = Digestkit.Pid.compare p q in
    if c <> 0 then c else Int.compare i j

let equal a b = compare a b = 0
let hash = Hashtbl.hash

let pp ppf = function
  | Global n -> Format.fprintf ppf "g%d" n
  | Local n -> Format.fprintf ppf "l%d" n
  | External (pid, idx) ->
    Format.fprintf ppf "x%s.%d" (Digestkit.Pid.short pid) idx

let to_string stamp = Format.asprintf "%a" pp stamp

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
