(** Unification with levels (Rémy-style generalization) and alias
    expansion through the compilation context. *)

exception Unify_error of Types.ty * Types.ty
(** The two types that failed to unify (heads after normalization). *)

(** [fresh_tyvar ~level ()] makes an unbound unification variable. *)
val fresh_tyvar : level:int -> unit -> Types.ty

(** [head_normalize ctx ty] follows links and expands top-level type
    abbreviations until the head is a variable, arrow, tuple, or a
    non-alias constructor. *)
val head_normalize : Context.t -> Types.ty -> Types.ty

(** [unify ctx t1 t2] makes the types equal or raises {!Unify_error}.
    Performs the occurs check and level adjustment. *)
val unify : Context.t -> Types.ty -> Types.ty -> unit

(** [poison ctx ty] binds every unification variable reachable from
    [ty] to the error type [Terror].  Called after a reported type
    mismatch so later constraints on the same variables unify silently
    instead of cascading. *)
val poison : Context.t -> Types.ty -> unit

(** [generalize ctx ~level ty] turns into [Tgen] every unification
    variable of [ty] whose level exceeds [level].  Returns the scheme. *)
val generalize : Context.t -> level:int -> Types.ty -> Types.scheme

(** [instantiate ~level scheme] replaces the scheme's bound variables by
    fresh unification variables at [level]. *)
val instantiate : level:int -> Types.scheme -> Types.ty

(** [equal_ty ctx t1 t2] — equality of closed types (no unification
    variables are bound; aliases are expanded).  Used by signature
    matching to check manifest type specs. *)
val equal_ty : Context.t -> Types.ty -> Types.ty -> bool

(** [equal_scheme ctx s1 s2] — alpha-equality of schemes with the same
    arity. *)
val equal_scheme : Context.t -> Types.scheme -> Types.scheme -> bool

(** [more_general ctx general specific] — can [general] be instantiated
    to yield [specific]?  Signature matching checks the actual value's
    scheme is at least as general as the spec's. *)
val more_general : Context.t -> Types.scheme -> Types.scheme -> bool
