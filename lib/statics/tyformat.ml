open Types

let gen_name i =
  if i < 26 then Printf.sprintf "'%c" (Char.chr (Char.code 'a' + i))
  else Printf.sprintf "'a%d" (i - 26)

(* Precedence: 0 = arrow position, 1 = tuple element, 2 = argument. *)
let rec pp_prec ctx prec ppf ty =
  match repr ty with
  | Tvar { contents = Unbound { id; _ } } -> Format.fprintf ppf "'_%d" id
  | Tvar { contents = Link _ } -> assert false
  | Terror -> Format.pp_print_string ppf "<error>"
  | Tgen i -> Format.pp_print_string ppf (gen_name i)
  | Tcon (stamp, args) -> (
    let name =
      match Context.find ctx stamp with
      | Some info -> Support.Symbol.name info.tyc_name
      | None -> Stamp.to_string stamp
    in
    match args with
    | [] -> Format.pp_print_string ppf name
    | [ single ] -> Format.fprintf ppf "%a %s" (pp_prec ctx 2) single name
    | several ->
      Format.fprintf ppf "(%a) %s"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (pp_prec ctx 0))
        several name)
  | Tarrow (a, b) ->
    if prec > 0 then
      Format.fprintf ppf "(%a -> %a)" (pp_prec ctx 1) a (pp_prec ctx 0) b
    else Format.fprintf ppf "%a -> %a" (pp_prec ctx 1) a (pp_prec ctx 0) b
  | Ttuple [] -> Format.pp_print_string ppf "unit"
  | Ttuple parts ->
    if prec > 1 then
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " * ")
           (pp_prec ctx 2))
        parts
    else
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " * ")
        (pp_prec ctx 2) ppf parts

let pp_ty ctx ppf ty = pp_prec ctx 0 ppf ty
let ty_to_string ctx ty = Format.asprintf "%a" (pp_ty ctx) ty
let pp_scheme ctx ppf scheme = pp_ty ctx ppf scheme.body
let scheme_to_string ctx scheme = Format.asprintf "%a" (pp_scheme ctx) scheme
