open Types

exception Unify_error of ty * ty

(* atomic: unification variables are per-compilation, but concurrent
   compiles on separate domains share this id spring *)
let tyvar_counter = Atomic.make 0

let fresh_tyvar ~level () =
  Tvar (ref (Unbound { id = Atomic.fetch_and_add tyvar_counter 1 + 1; level }))

let rec head_normalize ctx ty =
  match repr ty with
  | Tcon (stamp, args) as t -> (
    match Context.find ctx stamp with
    | Some { tyc_defn = Alias scheme; _ } ->
      head_normalize ctx (instantiate_scheme (Array.of_list args) scheme)
    | Some _ | None -> t)
  | t -> t

(* Occurs check and level lowering in one pass. *)
let rec adjust ctx cell_id max_level ty =
  match repr ty with
  | Tvar ({ contents = Unbound { id; level } } as cell) ->
    if id = cell_id then raise (Unify_error (ty, ty))
    else if level > max_level then cell := Unbound { id; level = max_level }
  | Tvar { contents = Link _ } -> assert false (* repr *)
  | Tgen _ -> ()
  | Tcon (stamp, args) -> (
    (* adjust through aliases so hidden occurrences are caught *)
    match Context.find ctx stamp with
    | Some { tyc_defn = Alias scheme; _ } ->
      adjust ctx cell_id max_level
        (instantiate_scheme (Array.of_list args) scheme)
    | Some _ | None -> List.iter (adjust ctx cell_id max_level) args)
  | Tarrow (a, b) ->
    adjust ctx cell_id max_level a;
    adjust ctx cell_id max_level b;
  | Ttuple parts -> List.iter (adjust ctx cell_id max_level) parts
  | Terror -> ()

let rec unify ctx t1 t2 =
  let t1 = head_normalize ctx t1 and t2 = head_normalize ctx t2 in
  match (t1, t2) with
  | Tvar c1, Tvar c2 when c1 == c2 -> ()
  | Tvar ({ contents = Unbound { id; level } } as cell), other
  | other, Tvar ({ contents = Unbound { id; level } } as cell) ->
    adjust ctx id level other;
    cell := Link other
  | Tcon (s1, args1), Tcon (s2, args2) when Stamp.equal s1 s2 ->
    (try List.iter2 (unify ctx) args1 args2
     with Invalid_argument _ -> raise (Unify_error (t1, t2)))
  | Tarrow (a1, b1), Tarrow (a2, b2) ->
    unify ctx a1 a2;
    unify ctx b1 b2
  | Ttuple p1, Ttuple p2 ->
    (try List.iter2 (unify ctx) p1 p2
     with Invalid_argument _ -> raise (Unify_error (t1, t2)))
  (* the error type unifies with anything: it stands for a type the
     elaborator already reported a diagnostic about, so no constraint
     involving it should produce a second error *)
  | Terror, _ | _, Terror -> ()
  | Tgen _, _ | _, Tgen _ ->
    (* schemes are instantiated before unification; a loose Tgen is a
       compiler bug *)
    assert false
  | _ -> raise (Unify_error (t1, t2))

(* After reporting a type error, bind every unification variable still
   reachable from the offending type to the error type, so downstream
   uses of the same variables cannot produce cascading mismatches. *)
let poison ctx ty =
  let rec go ty =
    match head_normalize ctx ty with
    | Tvar ({ contents = Unbound _ } as cell) -> cell := Link Terror
    | Tvar { contents = Link _ } -> assert false (* head_normalize *)
    | Tgen _ | Terror -> ()
    | Tcon (_, args) -> List.iter go args
    | Tarrow (a, b) ->
      go a;
      go b
    | Ttuple parts -> List.iter go parts
  in
  go ty

let generalize ctx ~level ty =
  let table = Hashtbl.create 8 in
  let next = ref 0 in
  let rec go ty =
    match repr ty with
    | Tvar { contents = Unbound { id; level = l } } when l > level -> (
      match Hashtbl.find_opt table id with
      | Some idx -> Tgen idx
      | None ->
        let idx = !next in
        incr next;
        Hashtbl.add table id idx;
        Tgen idx)
    | Tvar _ as v -> v
    | Tgen _ as g -> g
    | Tcon (stamp, args) -> Tcon (stamp, List.map go args)
    | Tarrow (a, b) -> Tarrow (go a, go b)
    | Ttuple parts -> Ttuple (List.map go parts)
    | Terror -> Terror
  in
  ignore ctx;
  let body = go ty in
  { arity = !next; body }

let instantiate ~level scheme =
  if scheme.arity = 0 then scheme.body
  else
    let fresh = Array.init scheme.arity (fun _ -> fresh_tyvar ~level ()) in
    instantiate_scheme fresh scheme

let rec equal_ty ctx t1 t2 =
  let t1 = head_normalize ctx t1 and t2 = head_normalize ctx t2 in
  match (t1, t2) with
  | Tgen i, Tgen j -> i = j
  | Tcon (s1, args1), Tcon (s2, args2) ->
    Stamp.equal s1 s2
    && List.length args1 = List.length args2
    && List.for_all2 (equal_ty ctx) args1 args2
  | Tarrow (a1, b1), Tarrow (a2, b2) -> equal_ty ctx a1 a2 && equal_ty ctx b1 b2
  | Ttuple p1, Ttuple p2 ->
    List.length p1 = List.length p2 && List.for_all2 (equal_ty ctx) p1 p2
  | Tvar c1, Tvar c2 -> c1 == c2
  | Terror, Terror -> true
  | _ -> false

let equal_scheme ctx s1 s2 =
  s1.arity = s2.arity && equal_ty ctx s1.body s2.body

let more_general ctx general specific =
  (* Instantiate [general] with fresh unification variables, freeze
     [specific]'s bound variables as fresh abstract constructors (rigid
     skolems), and try to unify. *)
  let level = 1_000_000 in
  let g = instantiate ~level general in
  let skolems =
    Array.init specific.arity (fun i ->
        let stamp = Stamp.fresh () in
        Context.register ctx stamp
          {
            tyc_name = Support.Symbol.fresh (Printf.sprintf "skolem%d" i);
            tyc_arity = 0;
            tyc_defn = Abstract;
          };
        Tcon (stamp, []))
  in
  let s = instantiate_scheme skolems specific in
  match unify ctx g s with
  | () -> true
  | exception Unify_error _ -> false
