(** Semantic objects of MiniSML's static semantics.

    All the mutually recursive "significant objects" of the paper live
    here: types, type constructors, and the static environments that
    map names to them.  References between significant objects go through
    {!Stamp.t}; the definitions of stamped type constructors are stored
    in a {!Context.t} side table, which is what makes environments
    picklable (recursive datatypes become stamp references, section 4)
    and hashable with alpha-converted stamps (section 5). *)

module Symbol := Support.Symbol

(** Types.  [Tvar] cells exist only during inference; environments store
    schemes whose bound variables are [Tgen] indices. *)
type ty =
  | Tvar of tvar ref
  | Tgen of int  (** bound variable of the enclosing scheme *)
  | Tcon of Stamp.t * ty list
  | Tarrow of ty * ty
  | Ttuple of ty list  (** [unit] is [Ttuple []] *)
  | Terror
      (** the error type: stands for a type the elaborator could not
          determine after reporting a diagnostic.  Unifies with
          anything, so one type error does not cascade. *)

and tvar =
  | Unbound of { id : int; level : int }
  | Link of ty

(** A type scheme: [arity] bound variables [Tgen 0 … Tgen (arity-1)]. *)
type scheme = { arity : int; body : ty }

(** Datatype-constructor description.  [cd_arg], if present, may mention
    [Tgen i] for the datatype's i-th parameter. *)
type condesc = {
  cd_name : Symbol.t;
  cd_arg : ty option;
  cd_tag : int;
  cd_span : int;  (** number of constructors in the datatype *)
}

(** Definition of a stamped type constructor. *)
type defn =
  | Abstract
  | Alias of scheme  (** [type ('a,…) t = ty]; arity = parameter count *)
  | Data of condesc list

type tycon_info = { tyc_name : Symbol.t; tyc_arity : int; tyc_defn : defn }

(** Runtime address of a named entity, resolved during elaboration and
    consumed by the lambda translation. *)
type addr =
  | AdNone  (** no runtime presence (signature bodies, specs) *)
  | AdLvar of Symbol.t  (** a local runtime variable of this unit *)
  | AdExtern of Digestkit.Pid.t  (** an export of another unit *)
  | AdPrim of Prim.t  (** initial-basis primitive *)
  | AdBasisExn of Symbol.t  (** a predefined exception's runtime identity *)
  | AdField of addr * Symbol.t  (** component of a structure value *)

(** Constructor representation used by pattern compilation. *)
type conrep = { rep_tag : int; rep_span : int; rep_has_arg : bool }

(** How a value identifier behaves. *)
type vkind =
  | Vplain  (** ordinary value *)
  | Vcon of Stamp.t * condesc  (** datatype constructor of the stamped tycon *)
  | Vexn of Stamp.t  (** exception constructor; the stamp is its identity *)

type val_info = { vi_scheme : scheme; vi_kind : vkind; vi_addr : addr }

type str_info = { str_stamp : Stamp.t; str_env : env; str_addr : addr }

(** An elaborated signature: a template environment whose [sig_flex]
    stamps are the "flexible" components to be realized by matching. *)
and sig_info = { sig_stamp : Stamp.t; sig_env : env; sig_flex : Stamp.t list }

(** An elaborated functor.  [fct_body] is the result environment in terms
    of [fct_param_stamps] (the instantiated flexible stamps of the
    parameter signature); [fct_body_gen] are the generative stamps the
    body creates, regenerated at each application. *)
and fct_info = {
  fct_stamp : Stamp.t;
  fct_param_name : Symbol.t;
  fct_param_sig : sig_info;
  fct_param_stamps : Stamp.t list;
  fct_body : env;
  fct_body_gen : Stamp.t list;
  fct_addr : addr;
}

and env = {
  vals : val_info Symbol.Map.t;
  tycons : Stamp.t Symbol.Map.t;  (** info lives in the {!Context} *)
  strs : str_info Symbol.Map.t;
  sigs : sig_info Symbol.Map.t;
  fcts : fct_info Symbol.Map.t;
}

val empty_env : env

(** Right-biased union: bindings of the second argument shadow. *)
val env_union : env -> env -> env

val bind_val : Symbol.t -> val_info -> env -> env
val bind_tycon : Symbol.t -> Stamp.t -> env -> env
val bind_str : Symbol.t -> str_info -> env -> env
val bind_sig : Symbol.t -> sig_info -> env -> env
val bind_fct : Symbol.t -> fct_info -> env -> env

(** [monotype ty] is the scheme binding nothing. *)
val monotype : ty -> scheme

(** [instantiate_scheme fresh s] replaces [Tgen i] with [fresh.(i)]. *)
val instantiate_scheme : ty array -> scheme -> ty

(** [conrep_of cd] extracts the runtime representation. *)
val conrep_of : condesc -> conrep

(** Follow [Link]s at the head of a type. *)
val repr : ty -> ty

(** [env_with_root_access root env] rewrites every component's address to
    a field chain hanging off [root]; used when instantiating a functor
    parameter (fields of the parameter variable) and when exporting a
    unit (fields reachable from an external pid). *)
val env_with_root_access : addr -> env -> env

(** Fold over the names bound in an environment, in a canonical order
    (value names, then types, structures, signatures, functors, each
    alphabetically).  Used by hashing and pickling so that both agree. *)
val fold_components :
  env ->
  init:'a ->
  valf:(Symbol.t -> val_info -> 'a -> 'a) ->
  tycf:(Symbol.t -> Stamp.t -> 'a -> 'a) ->
  strf:(Symbol.t -> str_info -> 'a -> 'a) ->
  sigf:(Symbol.t -> sig_info -> 'a -> 'a) ->
  fctf:(Symbol.t -> fct_info -> 'a -> 'a) ->
  'a
