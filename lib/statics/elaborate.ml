module Symbol = Support.Symbol
module Loc = Support.Loc
module Diag = Support.Diag
module A = Lang.Ast
open Types

let err loc fmt = Diag.error Diag.Elaborate loc fmt

type state = {
  ctx : Context.t;
  mutable level : int;
  warn : Loc.t -> string -> unit;
  diags : Diag.collector option;
}

(* non-fatal finding: always goes to the [warn] callback, and — when
   elaborating under a collector — also becomes a structured warning
   with a stable code *)
let warn_diag st ~code loc msg =
  st.warn loc msg;
  match st.diags with
  | None -> ()
  | Some c ->
    Diag.emit c (Diag.make ~severity:Diag.Warning ~code Diag.Elaborate loc msg)

(* report exhaustiveness/redundancy findings for one compiled match *)
let check_match st loc ~warn_inexhaustive tpats =
  List.iter
    (fun finding ->
      match finding with
      | `Inexhaustive ->
        if warn_inexhaustive then
          warn_diag st ~code:"W0001" loc "match nonexhaustive"
      | `Redundant i ->
        warn_diag st ~code:"W0002" loc
          (Printf.sprintf "match rule %d is redundant" (i + 1)))
    (Matchcheck.check tpats)

let fresh_ty st = Unify.fresh_tyvar ~level:st.level ()

let unify_at st loc t1 t2 =
  try Unify.unify st.ctx t1 t2
  with Unify.Unify_error (a, b) ->
    let message =
      Printf.sprintf "type mismatch: %s vs %s"
        (Tyformat.ty_to_string st.ctx a)
        (Tyformat.ty_to_string st.ctx b)
    in
    let d = Diag.make ~code:"E0301" Diag.Elaborate loc message in
    (match st.diags with
    | None -> raise (Diag.Error d)
    | Some c ->
      (* report once, then poison both sides so later constraints on
         the same unification variables unify silently instead of
         producing a cascade of secondary mismatches *)
      Diag.emit c d;
      Unify.poison st.ctx t1;
      Unify.poison st.ctx t2)

(* ------------------------------------------------------------------ *)
(* Name resolution                                                     *)
(* ------------------------------------------------------------------ *)

let resolve_holder env loc (path : A.path) =
  let rec walk env = function
    | [] -> env
    | q :: rest -> (
      match Symbol.Map.find_opt q env.strs with
      | Some info -> walk info.str_env rest
      | None ->
        Diag.error_code ~code:"E0303" Diag.Elaborate loc
          "unbound structure %a" Symbol.pp q)
  in
  walk env path.A.qualifiers

let resolve_str env loc (path : A.path) =
  let holder = resolve_holder env loc path in
  match Symbol.Map.find_opt path.A.base holder.strs with
  | Some info -> info
  | None ->
    Diag.error_code ~code:"E0303" Diag.Elaborate loc "unbound structure %a"
      A.pp_path path

let resolve_val env loc path =
  let holder = resolve_holder env loc path in
  match Symbol.Map.find_opt path.A.base holder.vals with
  | Some info -> info
  | None ->
    Diag.error_code ~code:"E0302" Diag.Elaborate loc "unbound variable %a"
      A.pp_path path

let resolve_tycon env loc path =
  let holder = resolve_holder env loc path in
  match Symbol.Map.find_opt path.A.base holder.tycons with
  | Some stamp -> stamp
  | None ->
    Diag.error_code ~code:"E0304" Diag.Elaborate loc
      "unbound type constructor %a" A.pp_path path

let resolve_fct env loc path =
  let holder = resolve_holder env loc path in
  match Symbol.Map.find_opt path.A.base holder.fcts with
  | Some info -> info
  | None ->
    Diag.error_code ~code:"E0305" Diag.Elaborate loc "unbound functor %a"
      A.pp_path path

let resolve_sig env loc name =
  match Symbol.Map.find_opt name env.sigs with
  | Some info -> info
  | None ->
    Diag.error_code ~code:"E0306" Diag.Elaborate loc "unbound signature %a"
      Symbol.pp name

(* ------------------------------------------------------------------ *)
(* Type expressions                                                    *)
(* ------------------------------------------------------------------ *)

(* [scope] maps explicit type variables; behaviour on an unknown tyvar
   differs between val-declaration scopes (fresh unification variable)
   and rigid binders (error), so callers supply it. *)
let rec elab_ty st env scope (ty : A.ty) =
  match ty.A.ty_desc with
  | A.Tvar name -> scope name ty.A.ty_loc
  | A.Tcon (args, path) ->
    let stamp = resolve_tycon env ty.A.ty_loc path in
    let arity =
      match Context.find st.ctx stamp with
      | Some info -> info.tyc_arity
      | None -> err ty.A.ty_loc "type %a has no definition" A.pp_path path
    in
    if List.length args <> arity then
      err ty.A.ty_loc "type constructor %a expects %d argument(s), got %d"
        A.pp_path path arity (List.length args);
    Tcon (stamp, List.map (elab_ty st env scope) args)
  | A.Tarrow (a, b) -> Tarrow (elab_ty st env scope a, elab_ty st env scope b)
  | A.Ttuple parts -> Ttuple (List.map (elab_ty st env scope) parts)

(* A val-declaration tyvar scope: unknown tyvars become fresh
   unification variables, shared across all annotations in the dec. *)
let val_scope st =
  let table = Symbol.Table.create 4 in
  fun name _loc ->
    match Symbol.Table.find_opt table name with
    | Some ty -> ty
    | None ->
      let ty = fresh_ty st in
      Symbol.Table.add table name ty;
      ty

(* A rigid scope over an explicit binder list: tyvars map to [Tgen]
   indices; anything else is an error. *)
let rigid_scope binders =
  let table = Symbol.Table.create 4 in
  List.iteri (fun i name -> Symbol.Table.replace table name (Tgen i)) binders;
  fun name loc ->
    match Symbol.Table.find_opt table name with
    | Some ty -> ty
    | None -> err loc "unbound type variable '%a" Symbol.pp name

(* Spec-val scope: tyvars are implicitly generalized in order of first
   appearance.  Returns the scope and a counter of distinct tyvars. *)
let specval_scope () =
  let table = Symbol.Table.create 4 in
  let next = ref 0 in
  let scope name _loc =
    match Symbol.Table.find_opt table name with
    | Some ty -> ty
    | None ->
      let ty = Tgen !next in
      incr next;
      Symbol.Table.add table name ty;
      ty
  in
  (scope, next)

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)
(* ------------------------------------------------------------------ *)

type binding = { b_name : Symbol.t; b_lvar : Symbol.t; b_ty : ty }

let con_result_ty st loc info arg_ty_opt =
  (* Instantiate a constructor's scheme and split it into (arg, result). *)
  let inst = Unify.instantiate ~level:st.level info.vi_scheme in
  match (Unify.head_normalize st.ctx inst, arg_ty_opt) with
  | Tarrow (arg, res), Some pat_arg_ty ->
    unify_at st loc arg pat_arg_ty;
    res
  | Tarrow _, None -> err loc "constructor expects an argument"
  | res, None -> res
  | _, Some _ -> err loc "constructor takes no argument"

let rec elab_pat st env scope (pat : A.pat) : Tast.tpat * ty * binding list =
  let loc = pat.A.pat_loc in
  match pat.A.pat_desc with
  | A.Pwild -> (Tast.TPwild, fresh_ty st, [])
  | A.Pint n -> (Tast.TPint n, Basis.int_ty, [])
  | A.Pstring s -> (Tast.TPstring s, Basis.string_ty, [])
  | A.Pvar name -> (
    (* a lone lowercase name is a variable unless it is a constructor *)
    match Symbol.Map.find_opt name env.vals with
    | Some ({ vi_kind = Vcon (_, cd); _ } as info) ->
      let ty = con_result_ty st loc info None in
      (Tast.TPcon (conrep_of cd, None), ty, [])
    | Some ({ vi_kind = Vexn _; _ } as info) ->
      let ty = con_result_ty st loc info None in
      (Tast.TPexn (info.vi_addr, None), ty, [])
    | Some { vi_kind = Vplain; _ } | None ->
      let lvar = Symbol.fresh (Symbol.name name) in
      let ty = fresh_ty st in
      (Tast.TPvar lvar, ty, [ { b_name = name; b_lvar = lvar; b_ty = ty } ]))
  | A.Pcon (path, arg) -> (
    (* [ref] patterns are special: the primitive is not a constructor *)
    let is_ref =
      path.A.qualifiers = [] && String.equal (Symbol.name path.A.base) "ref"
    in
    match (is_ref, arg) with
    | true, Some argp ->
      let targ, argty, binds = elab_pat st env scope argp in
      (Tast.TPref targ, Basis.ref_ty argty, binds)
    | _ -> (
      let info = resolve_val env loc path in
      match info.vi_kind with
      | Vcon (_, cd) ->
        let targ, argty, binds =
          match arg with
          | None -> (None, None, [])
          | Some argp ->
            let t, ty, b = elab_pat st env scope argp in
            (Some t, Some ty, b)
        in
        let ty = con_result_ty st loc info argty in
        (Tast.TPcon (conrep_of cd, targ), ty, binds)
      | Vexn _ ->
        let targ, argty, binds =
          match arg with
          | None -> (None, None, [])
          | Some argp ->
            let t, ty, b = elab_pat st env scope argp in
            (Some t, Some ty, b)
        in
        let ty = con_result_ty st loc info argty in
        (Tast.TPexn (info.vi_addr, targ), ty, binds)
      | Vplain ->
        err loc "%a is not a constructor" A.pp_path path))
  | A.Ptuple pats ->
    let parts = List.map (elab_pat st env scope) pats in
    let tpats = List.map (fun (t, _, _) -> t) parts in
    let tys = List.map (fun (_, ty, _) -> ty) parts in
    let binds = List.concat_map (fun (_, _, b) -> b) parts in
    (Tast.TPtuple tpats, Ttuple tys, binds)
  | A.Plist pats ->
    let elem_ty = fresh_ty st in
    let nil_pat = Tast.TPcon (conrep_of Basis.nil_cd, None) in
    let rec build = function
      | [] -> (nil_pat, [])
      | p :: rest ->
        let tp, ty, binds = elab_pat st env scope p in
        unify_at st p.A.pat_loc ty elem_ty;
        let tail, tail_binds = build rest in
        ( Tast.TPcon (conrep_of Basis.cons_cd, Some (Tast.TPtuple [ tp; tail ])),
          binds @ tail_binds )
    in
    let tpat, binds = build pats in
    (tpat, Basis.list_ty elem_ty, binds)
  | A.Pas (name, inner) ->
    let tinner, ty, binds = elab_pat st env scope inner in
    let lvar = Symbol.fresh (Symbol.name name) in
    ( Tast.TPas (lvar, tinner),
      ty,
      { b_name = name; b_lvar = lvar; b_ty = ty } :: binds )
  | A.Pconstraint (inner, ann) ->
    let tinner, ty, binds = elab_pat st env scope inner in
    let ann_ty = elab_ty st env scope ann in
    unify_at st loc ty ann_ty;
    (tinner, ty, binds)

let check_distinct loc binds =
  let seen = Symbol.Table.create 8 in
  List.iter
    (fun b ->
      if Symbol.Table.mem seen b.b_name then
        err loc "duplicate variable %a in pattern" Symbol.pp b.b_name
      else Symbol.Table.add seen b.b_name ())
    binds

(* ------------------------------------------------------------------ *)
(* Value restriction                                                   *)
(* ------------------------------------------------------------------ *)

let rec non_expansive env (exp : A.exp) =
  match exp.A.exp_desc with
  | A.Eint _ | A.Estring _ | A.Efn _ | A.Eselect _ -> true
  | A.Evar _ -> true
  | A.Etuple parts | A.Elist parts -> List.for_all (non_expansive env) parts
  | A.Econstraint (inner, _) -> non_expansive env inner
  | A.Eapp ({ A.exp_desc = A.Evar path; _ }, arg) -> (
    (* constructor applications are values, except [ref] *)
    match
      Symbol.Map.find_opt path.A.base
        (try (resolve_holder env Loc.dummy path).vals
         with Diag.Error _ -> Symbol.Map.empty)
    with
    | Some { vi_kind = Vcon _; _ } | Some { vi_kind = Vexn _; _ } ->
      non_expansive env arg
    | Some { vi_kind = Vplain; _ } | None -> false)
  | A.Eapp _ | A.Elet _ | A.Eif _ | A.Ecase _ | A.Eandalso _ | A.Eorelse _
  | A.Eraise _ | A.Ehandle _ ->
    false

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let bool_rep b =
  conrep_of (if b then Basis.true_cd else Basis.false_cd)

let rec elab_exp_ st env scope (exp : A.exp) : Tast.texp * ty =
  let loc = exp.A.exp_loc in
  match exp.A.exp_desc with
  | A.Eint n -> (Tast.TEint n, Basis.int_ty)
  | A.Estring s -> (Tast.TEstring s, Basis.string_ty)
  | A.Evar path -> (
    match resolve_val env loc path with
    | exception Diag.Error d when st.diags <> None ->
      (* recover with the error type: every use of the unknown name
         elaborates, but produces no further diagnostics *)
      (match st.diags with Some c -> Diag.emit c d | None -> assert false);
      (Tast.TEerror, Terror)
    | info -> (
    let ty = Unify.instantiate ~level:st.level info.vi_scheme in
    match info.vi_kind with
    | Vplain -> (
      match info.vi_addr with
      | AdPrim p -> (Tast.TEprim p, ty)
      | addr -> (Tast.TEvar addr, ty))
    | Vcon (_, cd) ->
      if cd.cd_arg = None then (Tast.TEcon (conrep_of cd, None), ty)
      else (Tast.TEconfn (conrep_of cd), ty)
    | Vexn _ ->
      let has_arg =
        match Unify.head_normalize st.ctx ty with
        | Tarrow _ -> true
        | _ -> false
      in
      (Tast.TEexncon (info.vi_addr, has_arg), ty)))
  | A.Eselect _ -> err loc "a tuple selector #n must be applied directly"
  | A.Eapp ({ A.exp_desc = A.Eselect n; _ }, arg) -> (
    let targ, arg_ty = elab_exp_ st env scope arg in
    match Unify.head_normalize st.ctx arg_ty with
    | Ttuple parts when List.length parts >= n ->
      (Tast.TEselect (n, targ), List.nth parts (n - 1))
    | Ttuple parts ->
      err loc "#%d applied to a %d-tuple" n (List.length parts)
    | _ ->
      err loc
        "cannot determine the tuple type for #%d; add a type annotation" n)
  | A.Eapp (f, arg) -> (
    let tf, f_ty = elab_exp_ st env scope f in
    let targ, arg_ty = elab_exp_ st env scope arg in
    let res_ty = fresh_ty st in
    unify_at st loc f_ty (Tarrow (arg_ty, res_ty));
    (* saturate constructor applications *)
    match tf with
    | Tast.TEconfn rep -> (Tast.TEcon (rep, Some targ), res_ty)
    | _ -> (Tast.TEapp (tf, targ), res_ty))
  | A.Etuple parts ->
    let elabs = List.map (elab_exp_ st env scope) parts in
    (Tast.TEtuple (List.map fst elabs), Ttuple (List.map snd elabs))
  | A.Elist parts ->
    let elem_ty = fresh_ty st in
    let telems =
      List.map
        (fun p ->
          let t, ty = elab_exp_ st env scope p in
          unify_at st p.A.exp_loc ty elem_ty;
          t)
        parts
    in
    let nil_exp = Tast.TEcon (conrep_of Basis.nil_cd, None) in
    let texp =
      List.fold_right
        (fun hd tail ->
          Tast.TEcon (conrep_of Basis.cons_cd, Some (Tast.TEtuple [ hd; tail ])))
        telems nil_exp
    in
    (texp, Basis.list_ty elem_ty)
  | A.Efn rules ->
    let arg_ty = fresh_ty st in
    let res_ty = fresh_ty st in
    let trules = elab_match st env scope rules arg_ty res_ty in
    (Tast.TEfn trules, Tarrow (arg_ty, res_ty))
  | A.Elet (decs, body) ->
    let delta, tdecs = elab_decs_ st env decs in
    let tbody, ty = elab_exp_ st (env_union env delta) scope body in
    (Tast.TElet (tdecs, tbody), ty)
  | A.Eif (cond, then_, else_) ->
    let tcond, cond_ty = elab_exp_ st env scope cond in
    unify_at st cond.A.exp_loc cond_ty Basis.bool_ty;
    let tthen, then_ty = elab_exp_ st env scope then_ in
    let telse, else_ty = elab_exp_ st env scope else_ in
    unify_at st loc then_ty else_ty;
    (Tast.TEif (tcond, tthen, telse), then_ty)
  | A.Ecase (scrutinee, rules) ->
    let tscrut, scrut_ty = elab_exp_ st env scope scrutinee in
    let res_ty = fresh_ty st in
    let trules = elab_match st env scope rules scrut_ty res_ty in
    (Tast.TEcase (tscrut, trules, Tast.FailMatch), res_ty)
  | A.Eandalso (a, b) ->
    let ta, a_ty = elab_exp_ st env scope a in
    let tb, b_ty = elab_exp_ st env scope b in
    unify_at st a.A.exp_loc a_ty Basis.bool_ty;
    unify_at st b.A.exp_loc b_ty Basis.bool_ty;
    (Tast.TEif (ta, tb, Tast.TEcon (bool_rep false, None)), Basis.bool_ty)
  | A.Eorelse (a, b) ->
    let ta, a_ty = elab_exp_ st env scope a in
    let tb, b_ty = elab_exp_ st env scope b in
    unify_at st a.A.exp_loc a_ty Basis.bool_ty;
    unify_at st b.A.exp_loc b_ty Basis.bool_ty;
    (Tast.TEif (ta, Tast.TEcon (bool_rep true, None), tb), Basis.bool_ty)
  | A.Eraise body ->
    let tbody, body_ty = elab_exp_ st env scope body in
    unify_at st loc body_ty Basis.exn_ty;
    (Tast.TEraise tbody, fresh_ty st)
  | A.Ehandle (body, rules) ->
    let tbody, body_ty = elab_exp_ st env scope body in
    (* handlers re-raise unmatched packets, so inexhaustiveness is the
       norm (SML does not warn here either) *)
    let trules =
      elab_match ~warn_inexhaustive:false st env scope rules Basis.exn_ty
        body_ty
    in
    (Tast.TEhandle (tbody, trules), body_ty)
  | A.Econstraint (body, ann) ->
    let tbody, body_ty = elab_exp_ st env scope body in
    let ann_ty = elab_ty st env scope ann in
    unify_at st loc body_ty ann_ty;
    (tbody, body_ty)

and elab_match ?(warn_inexhaustive = true) st env scope rules arg_ty res_ty =
  let trules =
    List.map
      (fun rule ->
        let tpat, pat_ty, binds = elab_pat st env scope rule.A.rule_pat in
        check_distinct rule.A.rule_pat.A.pat_loc binds;
        unify_at st rule.A.rule_pat.A.pat_loc pat_ty arg_ty;
        let env' =
          List.fold_left
            (fun env b ->
              bind_val b.b_name
                {
                  vi_scheme = monotype b.b_ty;
                  vi_kind = Vplain;
                  vi_addr = AdLvar b.b_lvar;
                }
                env)
            env binds
        in
        let tbody, body_ty = elab_exp_ st env' scope rule.A.rule_exp in
        unify_at st rule.A.rule_exp.A.exp_loc body_ty res_ty;
        (tpat, tbody))
      rules
  in
  (match rules with
  | first :: _ ->
    check_match st first.A.rule_pat.A.pat_loc ~warn_inexhaustive
      (List.map fst trules)
  | [] -> ());
  trules

(* ------------------------------------------------------------------ *)
(* Core declarations                                                   *)
(* ------------------------------------------------------------------ *)

and generalize_binding st env expansive b =
  let scheme =
    if expansive then monotype b.b_ty
    else Unify.generalize st.ctx ~level:st.level b.b_ty
  in
  bind_val b.b_name
    { vi_scheme = scheme; vi_kind = Vplain; vi_addr = AdLvar b.b_lvar }
    env

and elab_dec_ st env (dec : A.dec) : env * Tast.tdec list =
  let loc = dec.A.dec_loc in
  match dec.A.dec_desc with
  | A.Dval (pat, exp) ->
    let scope = val_scope st in
    st.level <- st.level + 1;
    let texp, exp_ty = elab_exp_ st env scope exp in
    let tpat, pat_ty, binds = elab_pat st env scope pat in
    check_distinct loc binds;
    unify_at st loc pat_ty exp_ty;
    st.level <- st.level - 1;
    (match Matchcheck.check [ tpat ] with
    | findings when List.mem `Inexhaustive findings ->
      warn_diag st ~code:"W0003" loc "binding not exhaustive"
    | _ -> ());
    let expansive = not (non_expansive env exp) in
    let delta =
      List.fold_left
        (fun acc b -> generalize_binding st acc expansive b)
        empty_env binds
    in
    (delta, [ Tast.TDval (tpat, texp, Tast.FailBind) ])
  | A.Dvalrec binds -> elab_valrec st env loc binds
  | A.Dfun funbinds ->
    let binds = List.map (desugar_funbind st loc) funbinds in
    elab_valrec st env loc binds
  | A.Dtype typebinds ->
    let delta =
      List.fold_left
        (fun delta tb ->
          let scope = rigid_scope tb.A.typ_tyvars in
          (* later abbreviations may reference earlier ones *)
          let defn_ty = elab_ty st (env_union env delta) scope tb.A.typ_defn in
          let stamp = Stamp.fresh () in
          Context.register st.ctx stamp
            {
              tyc_name = tb.A.typ_name;
              tyc_arity = List.length tb.A.typ_tyvars;
              tyc_defn =
                Alias { arity = List.length tb.A.typ_tyvars; body = defn_ty };
            };
          bind_tycon tb.A.typ_name stamp delta)
        empty_env typebinds
    in
    (delta, [])
  | A.Ddatatype datbinds ->
    (elab_datbinds st env loc datbinds, [])
  | A.Dexception binds ->
    let delta, tdecs =
      List.fold_left
        (fun (delta, tdecs) (name, arg) ->
          let stamp = Stamp.fresh () in
          let lvar = Symbol.fresh (Symbol.name name) in
          let arg_ty =
            Option.map
              (fun ty ->
                elab_ty st env
                  (fun tv l -> err l "type variable '%a in exception" Symbol.pp tv)
                  ty)
              arg
          in
          let body =
            match arg_ty with
            | None -> Basis.exn_ty
            | Some t -> Tarrow (t, Basis.exn_ty)
          in
          let delta =
            bind_val name
              {
                vi_scheme = monotype body;
                vi_kind = Vexn stamp;
                vi_addr = AdLvar lvar;
              }
              delta
          in
          (delta, Tast.TDexn (lvar, name, arg_ty <> None) :: tdecs))
        (empty_env, []) binds
    in
    (delta, List.rev tdecs)
  | A.Dstructure binds ->
    (* [and]-bound structures are simultaneous: each elaborated in the
       original environment *)
    let results =
      List.map
        (fun (name, ascription, body) ->
          let str_env, tstr =
            elab_ascribed_str st env body ascription
          in
          (name, str_env, tstr))
        binds
    in
    List.fold_left
      (fun (delta, tdecs) (name, str_env, tstr) ->
        let lvar = Symbol.fresh (Symbol.name name) in
        let rebased = env_with_root_access (AdLvar lvar) str_env in
        let info =
          { str_stamp = Stamp.fresh (); str_env = rebased; str_addr = AdLvar lvar }
        in
        (bind_str name info delta, tdecs @ [ Tast.TDstr (lvar, tstr) ]))
      (empty_env, []) results
  | A.Dsignature binds ->
    let delta =
      List.fold_left
        (fun delta (name, sigexp) ->
          bind_sig name (elab_sigexp st (env_union env delta) sigexp) delta)
        empty_env binds
    in
    (delta, [])
  | A.Dfunctor binds ->
    List.fold_left
      (fun (delta, tdecs) fb ->
        let info, tdec = elab_funbinding st env fb in
        (bind_fct fb.A.fct_name info delta, tdecs @ [ tdec ]))
      (empty_env, []) binds
  | A.Dlocal (hidden, visible) ->
    let delta1, td1 = elab_decs_ st env hidden in
    let delta2, td2 = elab_decs_ st (env_union env delta1) visible in
    (delta2, td1 @ td2)
  | A.Dopen paths ->
    let delta =
      List.fold_left
        (fun delta path ->
          let info = resolve_str (env_union env delta) loc path in
          env_union delta info.str_env)
        empty_env paths
    in
    (delta, [])

and elab_valrec st env loc binds =
  let scope = val_scope st in
  st.level <- st.level + 1;
  let pre =
    List.map
      (fun (name, rules) ->
        let lvar = Symbol.fresh (Symbol.name name) in
        (name, lvar, fresh_ty st, rules))
      binds
  in
  let env' =
    List.fold_left
      (fun env (name, lvar, ty, _) ->
        bind_val name
          { vi_scheme = monotype ty; vi_kind = Vplain; vi_addr = AdLvar lvar }
          env)
      env pre
  in
  let trecs =
    List.map
      (fun (_, lvar, ty, rules) ->
        let arg_ty = fresh_ty st in
        let res_ty = fresh_ty st in
        let trules = elab_match st env' scope rules arg_ty res_ty in
        unify_at st loc ty (Tarrow (arg_ty, res_ty));
        (lvar, trules))
      pre
  in
  st.level <- st.level - 1;
  let delta =
    List.fold_left
      (fun delta (name, lvar, ty, _) ->
        let scheme = Unify.generalize st.ctx ~level:st.level ty in
        bind_val name
          { vi_scheme = scheme; vi_kind = Vplain; vi_addr = AdLvar lvar }
          delta)
      empty_env pre
  in
  (delta, [ Tast.TDrec trecs ])

(* [fun f p1 … pn = e | …]  ⇒  [val rec f = fn x1 => … => case (x1,…) of …] *)
and desugar_funbind _st loc fb =
  let clauses = fb.A.fb_clauses in
  let first = List.hd clauses in
  let name = first.A.fc_name in
  let arity = List.length first.A.fc_pats in
  List.iter
    (fun clause ->
      if not (Symbol.equal clause.A.fc_name name) then
        err fb.A.fb_loc "clauses of %a disagree on the function name" Symbol.pp
          name;
      if List.length clause.A.fc_pats <> arity then
        err fb.A.fb_loc "clauses of %a disagree on the number of arguments"
          Symbol.pp name)
    clauses;
  ignore loc;
  match (clauses, arity) with
  | [ only ], 1 ->
    (* single clause, single argument: a plain fn *)
    ( name,
      [ { A.rule_pat = List.hd only.A.fc_pats; A.rule_exp = only.A.fc_body } ] )
  | _ ->
    let dummy_loc = fb.A.fb_loc in
    let params =
      List.init arity (fun i -> Symbol.fresh (Printf.sprintf "arg%d" i))
    in
    let tuple_exp =
      match params with
      | [ single ] ->
        { A.exp_desc = A.Evar { A.qualifiers = []; base = single };
          A.exp_loc = dummy_loc }
      | several ->
        {
          A.exp_desc =
            A.Etuple
              (List.map
                 (fun p ->
                   { A.exp_desc = A.Evar { A.qualifiers = []; base = p };
                     A.exp_loc = dummy_loc })
                 several);
          A.exp_loc = dummy_loc;
        }
    in
    let case_rules =
      List.map
        (fun clause ->
          let pat =
            match clause.A.fc_pats with
            | [ single ] -> single
            | several ->
              { A.pat_desc = A.Ptuple several; A.pat_loc = dummy_loc }
          in
          { A.rule_pat = pat; A.rule_exp = clause.A.fc_body })
        clauses
    in
    let body =
      { A.exp_desc = A.Ecase (tuple_exp, case_rules); A.exp_loc = dummy_loc }
    in
    let fn =
      List.fold_right
        (fun p acc ->
          {
            A.exp_desc =
              A.Efn
                [
                  {
                    A.rule_pat =
                      { A.pat_desc = A.Pvar p; A.pat_loc = dummy_loc };
                    A.rule_exp = acc;
                  };
                ];
            A.exp_loc = dummy_loc;
          })
        params body
    in
    (* strip the outermost fn: val rec binds a match *)
    (match fn.A.exp_desc with
    | A.Efn rules -> (name, rules)
    | _ -> assert false)

and elab_datbinds st env loc datbinds =
  (* two-phase for mutual recursion *)
  let stamps =
    List.map
      (fun db ->
        let stamp = Stamp.fresh () in
        (db, stamp))
      datbinds
  in
  let env_with_tycons =
    List.fold_left
      (fun acc (db, stamp) ->
        (* provisionally register so arity checks succeed during
           constructor elaboration *)
        Context.register st.ctx stamp
          {
            tyc_name = db.A.dat_name;
            tyc_arity = List.length db.A.dat_tyvars;
            tyc_defn = Abstract;
          };
        bind_tycon db.A.dat_name stamp acc)
      env stamps
  in
  ignore loc;
  let delta =
    List.fold_left
      (fun delta (db, stamp) ->
        let arity = List.length db.A.dat_tyvars in
        let scope = rigid_scope db.A.dat_tyvars in
        let span = List.length db.A.dat_cons in
        let cds =
          List.mapi
            (fun tag cb ->
              {
                cd_name = cb.A.con_name;
                cd_arg =
                  Option.map (elab_ty st env_with_tycons scope) cb.A.con_arg;
                cd_tag = tag;
                cd_span = span;
              })
            db.A.dat_cons
        in
        (* overwrite the provisional Abstract with the real definition;
           Context.register keeps the first, so remove-and-readd via a
           dedicated path: we registered Abstract above, so we must
           replace it *)
        Context.register_replace st.ctx stamp
          { tyc_name = db.A.dat_name; tyc_arity = arity; tyc_defn = Data cds };
        let result_ty = Tcon (stamp, List.init arity (fun i -> Tgen i)) in
        let delta = bind_tycon db.A.dat_name stamp delta in
        List.fold_left
          (fun delta cd ->
            let body =
              match cd.cd_arg with
              | None -> result_ty
              | Some arg -> Tarrow (arg, result_ty)
            in
            bind_val cd.cd_name
              {
                vi_scheme = { arity; body };
                vi_kind = Vcon (stamp, cd);
                vi_addr = AdNone;
              }
              delta)
          delta cds)
      empty_env stamps
  in
  delta

(* ------------------------------------------------------------------ *)
(* Structure expressions                                               *)
(* ------------------------------------------------------------------ *)

and elab_ascribed_str st env body ascription =
  let str_env, tstr = elab_strexp st env body in
  match ascription with
  | None -> (str_env, tstr)
  | Some (A.Transparent sigexp) ->
    let sig_info = elab_sigexp st env sigexp in
    let _rz, result, thinning =
      Sigmatch.match_signature st.ctx ~loc:sigexp.A.sig_loc sig_info str_env
    in
    (result, Tast.TSthin (tstr, thinning))
  | Some (A.Opaque sigexp) ->
    let sig_info = elab_sigexp st env sigexp in
    let instance, thinning =
      Sigmatch.opaque_ascribe st.ctx ~loc:sigexp.A.sig_loc sig_info str_env
    in
    (instance, Tast.TSthin (tstr, thinning))

and export_fields delta =
  (* runtime record fields of a structure: plain values, exception
     constructors, substructures, functors — everything with a runtime
     presence except static datatype constructors *)
  let fields =
    fold_components delta ~init:[]
      ~valf:(fun name info acc ->
        match info.vi_kind with
        | Vplain -> (
          match info.vi_addr with
          | AdNone -> acc (* no runtime presence *)
          | AdPrim p -> (name, Tast.TEprim p) :: acc
          | addr -> (name, Tast.TEvar addr) :: acc)
        | Vexn _ -> (
          match info.vi_addr with
          | AdNone -> acc
          | addr -> (name, Tast.TEvar addr) :: acc)
        | Vcon _ -> acc)
      ~tycf:(fun _ _ acc -> acc)
      ~strf:(fun name info acc ->
        match info.str_addr with
        | AdNone -> acc
        | addr -> (name, Tast.TEvar addr) :: acc)
      ~sigf:(fun _ _ acc -> acc)
      ~fctf:(fun name info acc ->
        match info.fct_addr with
        | AdNone -> acc
        | addr -> (name, Tast.TEvar addr) :: acc)
  in
  List.rev fields

and elab_strexp st env (strexp : A.strexp) : env * Tast.tstr =
  let loc = strexp.A.str_loc in
  match strexp.A.str_desc with
  | A.Svar path -> (
    let info = resolve_str env loc path in
    match info.str_addr with
    | AdNone ->
      (* a static-only structure (initial basis): synthesize its record
         from the components' absolute addresses *)
      (info.str_env, Tast.TSstruct ([], export_fields info.str_env))
    | addr -> (info.str_env, Tast.TSvar addr))
  | A.Sstruct decs ->
    let delta, tdecs = elab_decs_ st env decs in
    (delta, Tast.TSstruct (tdecs, export_fields delta))
  | A.Sapp (path, arg) ->
    let fct = resolve_fct env loc path in
    let arg_env, targ = elab_strexp st env arg in
    let result, thinning =
      Sigmatch.apply_functor st.ctx ~loc fct arg_env
    in
    (result, Tast.TSapp (fct.fct_addr, Tast.TSthin (targ, thinning)))
  | A.Sascribe (body, ascription) ->
    elab_ascribed_str st env body (Some ascription)
  | A.Slet (decs, body) ->
    let delta, tdecs = elab_decs_ st env decs in
    let body_env, tbody = elab_strexp st (env_union env delta) body in
    (body_env, Tast.TSlet (tdecs, tbody))

(* ------------------------------------------------------------------ *)
(* Signature expressions                                               *)
(* ------------------------------------------------------------------ *)

and elab_sigexp st env (sigexp : A.sigexp) : sig_info =
  let loc = sigexp.A.sig_loc in
  match sigexp.A.sig_desc with
  | A.Gvar name -> resolve_sig env loc name
  | A.Gsig specs ->
    let delta, flex = elab_specs st env specs in
    { sig_stamp = Stamp.fresh (); sig_env = delta; sig_flex = flex }
  | A.Gwhere (base, wherespecs) ->
    let base_info = elab_sigexp st env base in
    List.fold_left
      (fun acc ws ->
        let scope = rigid_scope ws.A.ws_tyvars in
        let body = elab_ty st env scope ws.A.ws_defn in
        let tyfun = { arity = List.length ws.A.ws_tyvars; body } in
        Sigmatch.where_type st.ctx ~loc acc ws.A.ws_path tyfun)
      base_info wherespecs

and elab_specs st env specs =
  List.fold_left
    (fun (delta, flex) spec ->
      let loc = spec.A.spec_loc in
      let env' = env_union env delta in
      match spec.A.spec_desc with
      | A.SPval (name, ty) ->
        let scope, _count = specval_scope () in
        let body = elab_ty st env' scope ty in
        (* count distinct Tgen occurrences for the scheme arity *)
        let rec max_gen acc = function
          | Tgen i -> max acc (i + 1)
          | Tcon (_, args) -> List.fold_left max_gen acc args
          | Tarrow (a, b) -> max_gen (max_gen acc a) b
          | Ttuple parts -> List.fold_left max_gen acc parts
          | Tvar _ | Terror -> acc
        in
        let arity = max_gen 0 body in
        ( bind_val name
            { vi_scheme = { arity; body }; vi_kind = Vplain; vi_addr = AdNone }
            delta,
          flex )
      | A.SPtype (tyvars, name, None) ->
        let stamp = Stamp.fresh () in
        Context.register st.ctx stamp
          {
            tyc_name = name;
            tyc_arity = List.length tyvars;
            tyc_defn = Abstract;
          };
        (bind_tycon name stamp delta, stamp :: flex)
      | A.SPtype (tyvars, name, Some ty) ->
        let scope = rigid_scope tyvars in
        let body = elab_ty st env' scope ty in
        let stamp = Stamp.fresh () in
        Context.register st.ctx stamp
          {
            tyc_name = name;
            tyc_arity = List.length tyvars;
            tyc_defn = Alias { arity = List.length tyvars; body };
          };
        (bind_tycon name stamp delta, flex)
      | A.SPdatatype datbinds ->
        let ddelta = elab_datbinds st env' loc datbinds in
        let new_flex =
          Symbol.Map.fold (fun _ stamp acc -> stamp :: acc) ddelta.tycons []
        in
        (* spec components carry no runtime address *)
        let ddelta =
          { ddelta with
            vals = Symbol.Map.map (fun vi -> { vi with vi_addr = AdNone }) ddelta.vals }
        in
        (env_union delta ddelta, new_flex @ flex)
      | A.SPexception (name, arg) ->
        let stamp = Stamp.fresh () in
        let arg_ty =
          Option.map
            (fun ty ->
              elab_ty st env'
                (fun tv l ->
                  err l "type variable '%a in exception spec" Symbol.pp tv)
                ty)
            arg
        in
        let body =
          match arg_ty with
          | None -> Basis.exn_ty
          | Some t -> Tarrow (t, Basis.exn_ty)
        in
        ( bind_val name
            { vi_scheme = monotype body; vi_kind = Vexn stamp; vi_addr = AdNone }
            delta,
          stamp :: flex )
      | A.SPstructure (name, sigexp) ->
        let inner = elab_sigexp st env' sigexp in
        (* fresh instance so that named signatures can be reused *)
        let instance, fresh = Sigmatch.instantiate st.ctx inner in
        let str_stamp = Stamp.fresh () in
        ( bind_str name
            { str_stamp; str_env = instance; str_addr = AdNone }
            delta,
          (str_stamp :: fresh) @ flex )
      | A.SPinclude sigexp ->
        let inner = elab_sigexp st env' sigexp in
        let instance, fresh = Sigmatch.instantiate st.ctx inner in
        (env_union delta instance, fresh @ flex))
    (empty_env, []) specs

(* ------------------------------------------------------------------ *)
(* Functor declarations                                                *)
(* ------------------------------------------------------------------ *)

and elab_funbinding st env (fb : A.funbinding) =
  let param_sig = elab_sigexp st env fb.A.fct_param_sig in
  let param_instance, param_stamps = Sigmatch.instantiate st.ctx param_sig in
  let fct_stamp = Stamp.fresh () in
  let param_str_stamp = Stamp.fresh () in
  (* everything created from here on inside the body is generative *)
  let lo = Stamp.local_counter () in
  let param_lvar = Symbol.fresh (Symbol.name fb.A.fct_param) in
  let param_rebased = env_with_root_access (AdLvar param_lvar) param_instance in
  let env_body =
    bind_str fb.A.fct_param
      {
        str_stamp = param_str_stamp;
        str_env = param_rebased;
        str_addr = AdLvar param_lvar;
      }
      env
  in
  let body_env, tbody =
    elab_ascribed_str st env_body fb.A.fct_body fb.A.fct_ascription
  in
  let hi = Stamp.local_counter () in
  let body_gen = Realize.reachable_local_stamps st.ctx body_env ~lo ~hi in
  let fct_lvar = Symbol.fresh (Symbol.name fb.A.fct_name) in
  let info =
    {
      fct_stamp;
      fct_param_name = fb.A.fct_param;
      fct_param_sig = param_sig;
      fct_param_stamps = param_stamps;
      fct_body = body_env;
      fct_body_gen = body_gen;
      fct_addr = AdLvar fct_lvar;
    }
  in
  (info, Tast.TDfct (fct_lvar, param_lvar, tbody))

(* ------------------------------------------------------------------ *)
(* Declaration sequences and units                                     *)
(* ------------------------------------------------------------------ *)

and elab_decs_ st env decs =
  let delta, rev_tdecs =
    List.fold_left
      (fun (delta, rev_tdecs) dec ->
        let saved_level = st.level in
        match elab_dec_ st (env_union env delta) dec with
        | d, t -> (env_union delta d, List.rev_append t rev_tdecs)
        | exception Diag.Error d when st.diags <> None ->
          (* declaration-level recovery: report, drop the broken
             declaration's bindings, and continue with the next one *)
          st.level <- saved_level;
          (match st.diags with
          | Some c -> Diag.emit c d
          | None -> assert false);
          (delta, rev_tdecs))
      (empty_env, []) decs
  in
  (delta, List.rev rev_tdecs)

let elab_exp ?(warn = fun _ _ -> ()) ctx env exp =
  let st = { ctx; level = 0; warn; diags = None } in
  elab_exp_ st env (val_scope st) exp

let elab_decs ?(warn = fun _ _ -> ()) ?diags ctx env decs =
  let st = { ctx; level = 0; warn; diags } in
  elab_decs_ st env decs

let rec check_unit_dec (dec : A.dec) =
  match dec.A.dec_desc with
  | A.Dstructure _ | A.Dsignature _ | A.Dfunctor _ -> ()
  | A.Dlocal (_, visible) -> List.iter check_unit_dec visible
  | A.Dopen _ -> ()
  | A.Dval _ | A.Dvalrec _ | A.Dfun _ | A.Dtype _ | A.Ddatatype _
  | A.Dexception _ ->
    Diag.error Diag.Elaborate dec.A.dec_loc
      "separately compiled units may only contain structure, signature and \
       functor declarations (compile core declarations inside a structure)"

let elab_compilation_unit ?warn ?diags ctx env (unit_ : A.unit_) =
  match diags with
  | None ->
    List.iter check_unit_dec unit_.A.unit_decs;
    elab_decs ?warn ctx env unit_.A.unit_decs
  | Some c ->
    (* report every unit-discipline violation, then elaborate the
       well-formed declarations that remain *)
    let ok_decs =
      List.filter
        (fun dec ->
          match check_unit_dec dec with
          | () -> true
          | exception Diag.Error d ->
            Diag.emit c d;
            false)
        unit_.A.unit_decs
    in
    elab_decs ?warn ~diags:c ctx env ok_decs
