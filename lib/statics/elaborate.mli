(** The elaborator: MiniSML abstract syntax → static environments +
    resolved terms.

    Performs Hindley–Milner inference with level-based generalization
    and the value restriction over the core language, and the full
    static semantics of the module language (signature elaboration,
    transparent/opaque ascription, functor declaration and application).

    Without a [diags] collector, all failures raise
    {!Support.Diag.Error} with phase [Elaborate].  With one, the
    elaborator recovers: a failed declaration is reported and skipped,
    a type mismatch is reported once and both sides are poisoned with
    the error type [Terror] (which unifies with anything, so one
    mistake does not cascade), and match-compilation findings are also
    recorded as structured warnings (W0001 nonexhaustive match, W0002
    redundant rule, W0003 nonexhaustive binding). *)

(** The optional [warn] callback receives non-fatal findings — match
    nonexhaustiveness and redundancy — with their source locations. *)

(** [elab_exp ctx env exp] — elaborate a single expression (REPL, tests).
    Returns the resolved term and its inferred type (which may contain
    unresolved unification variables if the expression is polymorphic). *)
val elab_exp :
  ?warn:(Support.Loc.t -> string -> unit) ->
  Context.t ->
  Types.env ->
  Lang.Ast.exp ->
  Tast.texp * Types.ty

(** [elab_decs ctx env decs] — elaborate a declaration sequence.
    Returns the environment *delta* (new bindings only) and the runtime
    declarations. *)
val elab_decs :
  ?warn:(Support.Loc.t -> string -> unit) ->
  ?diags:Support.Diag.collector ->
  Context.t ->
  Types.env ->
  Lang.Ast.dec list ->
  Types.env * Tast.tdec list

(** [elab_compilation_unit ctx env unit] — like {!elab_decs} but
    enforces the paper's discipline for separately compiled units
    (footnote 4): only [structure], [signature] and [functor]
    declarations at top level (plus [local] whose visible part
    satisfies the same rule). *)
val elab_compilation_unit :
  ?warn:(Support.Loc.t -> string -> unit) ->
  ?diags:Support.Diag.collector ->
  Context.t ->
  Types.env ->
  Lang.Ast.unit_ ->
  Types.env * Tast.tdec list
