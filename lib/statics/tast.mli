(** Elaborated (typed, resolved) abstract syntax.

    The elaborator resolves every name to an {!Types.addr}, every
    datatype constructor to its {!Types.conrep}, and alpha-renames all
    runtime bindings to process-unique symbols, so the lambda
    translation needs no environment other than the import map. *)

module Symbol := Support.Symbol

type lvar = Symbol.t

type tpat =
  | TPwild
  | TPvar of lvar
  | TPint of int
  | TPstring of string
  | TPtuple of tpat list
  | TPcon of Types.conrep * tpat option  (** datatype constructor *)
  | TPexn of Types.addr * tpat option  (** exception: runtime identity *)
  | TPref of tpat  (** [ref p] pattern: match the contents *)
  | TPas of lvar * tpat

type texp =
  | TEint of int
  | TEstring of string
  | TEvar of Types.addr
  | TEprim of Prim.t  (** primitive used as a first-class value *)
  | TEcon of Types.conrep * texp option  (** saturated constructor use *)
  | TEconfn of Types.conrep  (** constructor used as a function value *)
  | TEexncon of Types.addr * bool
      (** exception constructor; the flag is [true] if it carries an
          argument (a function value), [false] for a bare packet *)
  | TEfn of (tpat * texp) list  (** [fn match] *)
  | TEapp of texp * texp
  | TEtuple of texp list
  | TEselect of int * texp  (** 1-based tuple projection *)
  | TElet of tdec list * texp
  | TEif of texp * texp * texp
  | TEcase of texp * (tpat * texp) list * fail
  | TEraise of texp
  | TEhandle of texp * (tpat * texp) list
  | TEerror
      (** placeholder for an expression the elaborator reported an
          error for; never reaches translation (the collector raises
          before the translate phase) *)

(** Which standard exception a non-exhaustive match raises. *)
and fail = FailMatch | FailBind

and tdec =
  | TDval of tpat * texp * fail
  | TDrec of (lvar * (tpat * texp) list) list  (** recursive functions *)
  | TDexn of lvar * Symbol.t * bool  (** fresh exception; name, has-arg *)
  | TDstr of lvar * tstr  (** bind a structure value *)
  | TDfct of lvar * lvar * tstr  (** functor: λ param. body *)

(** Structure-level terms. *)
and tstr =
  | TSvar of Types.addr
  | TSstruct of tdec list * (Symbol.t * texp) list
      (** declarations, then the export record: field name → value *)
  | TSapp of Types.addr * tstr  (** functor application *)
  | TSthin of tstr * thinning  (** signature coercion: restrict fields *)
  | TSlet of tdec list * tstr  (** [let decs in strexp end] *)

(** Recursive field restriction produced by signature matching. *)
and thinning = (Symbol.t * thinitem) list

and thinitem =
  | ThinVal  (** keep the field as-is *)
  | ThinStr of thinning  (** keep, recursively restricted *)

val pp_texp : Format.formatter -> texp -> unit
val pp_tdec : Format.formatter -> tdec -> unit
