open Types

type t = {
  tyfuns : scheme Stamp.Map.t;
  renames : Stamp.t Stamp.Map.t;
  (* Fresh alias stamps created for non-eta realizations appearing in
     binding positions, memoised so the same flexible stamp yields the
     same alias stamp throughout one substitution. *)
  alias_memo : Stamp.t Stamp.Table.t;
}

let empty =
  { tyfuns = Stamp.Map.empty; renames = Stamp.Map.empty; alias_memo = Stamp.Table.create 4 }

let eta_tyfun arity stamp =
  { arity; body = Tcon (stamp, List.init arity (fun i -> Tgen i)) }

let add_tyfun rz stamp tyfun =
  { rz with tyfuns = Stamp.Map.add stamp tyfun rz.tyfuns }

let add_tycon_rename rz stamp ~arity stamp' =
  add_tyfun rz stamp (eta_tyfun arity stamp')

let add_stamp_rename rz stamp stamp' =
  { rz with renames = Stamp.Map.add stamp stamp' rz.renames }

let find_tyfun rz stamp = Stamp.Map.find_opt stamp rz.tyfuns

let rename_stamp rz stamp =
  match Stamp.Map.find_opt stamp rz.renames with
  | Some stamp' -> stamp'
  | None -> stamp

let is_empty rz = Stamp.Map.is_empty rz.tyfuns && Stamp.Map.is_empty rz.renames

(* Is this type function just a renaming of a constructor? *)
let eta_target tyfun =
  match tyfun.body with
  | Tcon (stamp, args) ->
    let rec check i = function
      | [] -> i = tyfun.arity
      | Tgen j :: rest when j = i -> check (i + 1) rest
      | _ -> false
    in
    if check 0 args then Some stamp else None
  | _ -> None

let rec subst_ty ctx rz ty =
  match repr ty with
  | Tvar _ as v -> v
  | Tgen _ as g -> g
  | Tcon (stamp, args) -> (
    let args = List.map (subst_ty ctx rz) args in
    match Stamp.Map.find_opt stamp rz.tyfuns with
    | Some tyfun -> instantiate_scheme (Array.of_list args) tyfun
    | None -> Tcon (rename_stamp rz stamp, args))
  | Tarrow (a, b) -> Tarrow (subst_ty ctx rz a, subst_ty ctx rz b)
  | Ttuple parts -> Ttuple (List.map (subst_ty ctx rz) parts)
  | Terror -> Terror

let subst_scheme ctx rz scheme =
  if is_empty rz then scheme
  else { scheme with body = subst_ty ctx rz scheme.body }

let subst_condesc ctx rz cd =
  { cd with cd_arg = Option.map (subst_ty ctx rz) cd.cd_arg }

let subst_tycon_info ctx rz info =
  let defn =
    match info.tyc_defn with
    | Abstract -> Abstract
    | Alias scheme -> Alias (subst_scheme ctx rz scheme)
    | Data cds -> Data (List.map (subst_condesc ctx rz) cds)
  in
  { info with tyc_defn = defn }

let subst_tycon_binding ctx rz stamp =
  match Stamp.Map.find_opt stamp rz.tyfuns with
  | None -> rename_stamp rz stamp
  | Some tyfun -> (
    match eta_target tyfun with
    | Some target -> target
    | None -> (
      match Stamp.Table.find_opt rz.alias_memo stamp with
      | Some alias -> alias
      | None ->
        let alias = Stamp.fresh () in
        let name =
          match Context.find ctx stamp with
          | Some info -> info.tyc_name
          | None -> Support.Symbol.fresh "t"
        in
        Context.register ctx alias
          { tyc_name = name; tyc_arity = tyfun.arity; tyc_defn = Alias tyfun };
        Stamp.Table.add rz.alias_memo stamp alias;
        alias))

let rec subst_env ctx rz env =
  if is_empty rz then env
  else
    {
      vals = Support.Symbol.Map.map (subst_val ctx rz) env.vals;
      tycons = Support.Symbol.Map.map (subst_tycon_binding ctx rz) env.tycons;
      strs = Support.Symbol.Map.map (subst_str ctx rz) env.strs;
      sigs = Support.Symbol.Map.map (subst_sig ctx rz) env.sigs;
      fcts = Support.Symbol.Map.map (subst_fct ctx rz) env.fcts;
    }

and subst_val ctx rz info =
  let kind =
    match info.vi_kind with
    | Vplain -> Vplain
    | Vcon (stamp, cd) ->
      Vcon (subst_tycon_binding ctx rz stamp, subst_condesc ctx rz cd)
    | Vexn stamp -> Vexn (rename_stamp rz stamp)
  in
  { info with vi_scheme = subst_scheme ctx rz info.vi_scheme; vi_kind = kind }

and subst_str ctx rz info =
  {
    info with
    str_stamp = rename_stamp rz info.str_stamp;
    str_env = subst_env ctx rz info.str_env;
  }

and subst_sig ctx rz info =
  let flex =
    List.filter_map
      (fun stamp ->
        match Stamp.Map.find_opt stamp rz.tyfuns with
        | Some tyfun -> eta_target tyfun (* realized-away stamps drop out *)
        | None -> Some (rename_stamp rz stamp))
      info.sig_flex
  in
  {
    sig_stamp = rename_stamp rz info.sig_stamp;
    sig_env = subst_env ctx rz info.sig_env;
    sig_flex = flex;
  }

and subst_fct ctx rz info =
  let map_stamp stamp =
    match Stamp.Map.find_opt stamp rz.tyfuns with
    | Some tyfun -> (
      match eta_target tyfun with Some s -> s | None -> stamp)
    | None -> rename_stamp rz stamp
  in
  {
    info with
    fct_stamp = rename_stamp rz info.fct_stamp;
    fct_param_sig = subst_sig ctx rz info.fct_param_sig;
    fct_param_stamps = List.map map_stamp info.fct_param_stamps;
    fct_body = subst_env ctx rz info.fct_body;
    fct_body_gen = List.map map_stamp info.fct_body_gen;
  }

(* ------------------------------------------------------------------ *)
(* Canonical traversal                                                 *)
(* ------------------------------------------------------------------ *)

(* Shared by hashing, export numbering and generative-stamp collection:
   visit every reachable stamp in deterministic first-encounter order. *)
let traverse ctx env ~on_stamp =
  let visited = Stamp.Table.create 64 in
  let rec visit_stamp stamp =
    if not (Stamp.Table.mem visited stamp) then begin
      Stamp.Table.add visited stamp ();
      on_stamp stamp;
      match Context.find ctx stamp with
      | Some info -> visit_defn info.tyc_defn
      | None -> ()
    end
  and visit_defn = function
    | Abstract -> ()
    | Alias scheme -> visit_ty scheme.body
    | Data cds -> List.iter (fun cd -> Option.iter visit_ty cd.cd_arg) cds
  and visit_ty ty =
    match repr ty with
    | Tvar _ | Tgen _ -> ()
    | Tcon (stamp, args) ->
      visit_stamp stamp;
      List.iter visit_ty args
    | Tarrow (a, b) ->
      visit_ty a;
      visit_ty b
    | Ttuple parts -> List.iter visit_ty parts
    | Terror -> ()
  and visit_val info =
    visit_ty info.vi_scheme.body;
    match info.vi_kind with
    | Vplain -> ()
    | Vcon (stamp, cd) ->
      visit_stamp stamp;
      Option.iter visit_ty cd.cd_arg
    | Vexn stamp -> visit_stamp stamp
  and visit_env env =
    fold_components env ~init:()
      ~valf:(fun _ info () -> visit_val info)
      ~tycf:(fun _ stamp () -> visit_stamp stamp)
      ~strf:(fun _ info () ->
        visit_stamp info.str_stamp;
        visit_env info.str_env)
      ~sigf:(fun _ info () ->
        visit_stamp info.sig_stamp;
        visit_env info.sig_env;
        List.iter visit_stamp info.sig_flex)
      ~fctf:(fun _ info () ->
        visit_stamp info.fct_stamp;
        visit_stamp info.fct_param_sig.sig_stamp;
        visit_env info.fct_param_sig.sig_env;
        List.iter visit_stamp info.fct_param_sig.sig_flex;
        List.iter visit_stamp info.fct_param_stamps;
        visit_env info.fct_body;
        List.iter visit_stamp info.fct_body_gen)
  in
  visit_env env

let reachable_stamps ctx env =
  let acc = ref [] in
  traverse ctx env ~on_stamp:(fun stamp -> acc := stamp :: !acc);
  List.rev !acc

let reachable_local_stamps ctx env ~lo ~hi =
  List.filter
    (function
      | Stamp.Local n -> n > lo && n <= hi
      | Stamp.Global _ | Stamp.External _ -> false)
    (reachable_stamps ctx env)
