module Symbol = Support.Symbol

type ty =
  | Tvar of tvar ref
  | Tgen of int
  | Tcon of Stamp.t * ty list
  | Tarrow of ty * ty
  | Ttuple of ty list
  | Terror

and tvar =
  | Unbound of { id : int; level : int }
  | Link of ty

type scheme = { arity : int; body : ty }

type condesc = {
  cd_name : Symbol.t;
  cd_arg : ty option;
  cd_tag : int;
  cd_span : int;
}

type defn =
  | Abstract
  | Alias of scheme
  | Data of condesc list

type tycon_info = { tyc_name : Symbol.t; tyc_arity : int; tyc_defn : defn }

type addr =
  | AdNone
  | AdLvar of Symbol.t
  | AdExtern of Digestkit.Pid.t
  | AdPrim of Prim.t
  | AdBasisExn of Symbol.t
  | AdField of addr * Symbol.t

type conrep = { rep_tag : int; rep_span : int; rep_has_arg : bool }

type vkind =
  | Vplain
  | Vcon of Stamp.t * condesc
  | Vexn of Stamp.t

type val_info = { vi_scheme : scheme; vi_kind : vkind; vi_addr : addr }
type str_info = { str_stamp : Stamp.t; str_env : env; str_addr : addr }
and sig_info = { sig_stamp : Stamp.t; sig_env : env; sig_flex : Stamp.t list }

and fct_info = {
  fct_stamp : Stamp.t;
  fct_param_name : Symbol.t;
  fct_param_sig : sig_info;
  fct_param_stamps : Stamp.t list;
  fct_body : env;
  fct_body_gen : Stamp.t list;
  fct_addr : addr;
}

and env = {
  vals : val_info Symbol.Map.t;
  tycons : Stamp.t Symbol.Map.t;
  strs : str_info Symbol.Map.t;
  sigs : sig_info Symbol.Map.t;
  fcts : fct_info Symbol.Map.t;
}

let empty_env =
  {
    vals = Symbol.Map.empty;
    tycons = Symbol.Map.empty;
    strs = Symbol.Map.empty;
    sigs = Symbol.Map.empty;
    fcts = Symbol.Map.empty;
  }

let env_union a b =
  let right _ _ y = Some y in
  {
    vals = Symbol.Map.union right a.vals b.vals;
    tycons = Symbol.Map.union right a.tycons b.tycons;
    strs = Symbol.Map.union right a.strs b.strs;
    sigs = Symbol.Map.union right a.sigs b.sigs;
    fcts = Symbol.Map.union right a.fcts b.fcts;
  }

let bind_val name info env = { env with vals = Symbol.Map.add name info env.vals }

let bind_tycon name stamp env =
  { env with tycons = Symbol.Map.add name stamp env.tycons }

let bind_str name info env = { env with strs = Symbol.Map.add name info env.strs }
let bind_sig name info env = { env with sigs = Symbol.Map.add name info env.sigs }
let bind_fct name info env = { env with fcts = Symbol.Map.add name info env.fcts }
let monotype ty = { arity = 0; body = ty }

let rec repr ty =
  match ty with
  | Tvar ({ contents = Link inner } as cell) ->
    let res = repr inner in
    (* path compression *)
    cell := Link res;
    res
  | _ -> ty

let instantiate_scheme fresh scheme =
  if Array.length fresh <> scheme.arity then
    invalid_arg "Types.instantiate_scheme: arity mismatch";
  let rec go ty =
    match repr ty with
    | Tgen i -> fresh.(i)
    | Tvar _ as v -> v
    | Tcon (stamp, args) -> Tcon (stamp, List.map go args)
    | Tarrow (a, b) -> Tarrow (go a, go b)
    | Ttuple parts -> Ttuple (List.map go parts)
    | Terror -> Terror
  in
  if scheme.arity = 0 then scheme.body else go scheme.body

let conrep_of cd =
  { rep_tag = cd.cd_tag; rep_span = cd.cd_span; rep_has_arg = cd.cd_arg <> None }

let rec env_with_root_access root env =
  let reval name info =
    match info.vi_kind with
    | Vcon _ -> info (* constructors have no runtime field *)
    | Vplain | Vexn _ -> { info with vi_addr = AdField (root, name) }
  in
  let restr name info =
    let self = AdField (root, name) in
    {
      info with
      str_addr = self;
      str_env = env_with_root_access self info.str_env;
    }
  in
  let refct name info = { info with fct_addr = AdField (root, name) } in
  {
    env with
    vals = Symbol.Map.mapi reval env.vals;
    strs = Symbol.Map.mapi restr env.strs;
    fcts = Symbol.Map.mapi refct env.fcts;
  }

let fold_components env ~init ~valf ~tycf ~strf ~sigf ~fctf =
  (* Symbol.Map folds in key order, which is interning order, not
     alphabetical; sort explicitly so the canonical order is stable
     across processes. *)
  let sorted bindings =
    List.sort (fun (a, _) (b, _) -> String.compare (Symbol.name a) (Symbol.name b)) bindings
  in
  let acc = init in
  let acc =
    List.fold_left (fun acc (n, v) -> valf n v acc) acc
      (sorted (Symbol.Map.bindings env.vals))
  in
  let acc =
    List.fold_left (fun acc (n, v) -> tycf n v acc) acc
      (sorted (Symbol.Map.bindings env.tycons))
  in
  let acc =
    List.fold_left (fun acc (n, v) -> strf n v acc) acc
      (sorted (Symbol.Map.bindings env.strs))
  in
  let acc =
    List.fold_left (fun acc (n, v) -> sigf n v acc) acc
      (sorted (Symbol.Map.bindings env.sigs))
  in
  List.fold_left (fun acc (n, v) -> fctf n v acc) acc
    (sorted (Symbol.Map.bindings env.fcts))
