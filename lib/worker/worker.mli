(** Supervised out-of-process compile workers.

    The paper's factored model makes each unit compile a pure function
    of its job value — which means a compile can run in a forked child
    process with nothing but a byte pipe in each direction, and a
    compiler defect triggered by one unit (a segfault, runaway
    elaboration, resource exhaustion) costs that unit alone instead of
    the whole build.  This module supplies the supervision machinery;
    it knows nothing about compilation — the caller provides a
    {!proto} saying how to serve a request in the child and how to
    translate failures into its own exception vocabulary.

    The supervisor (the parent process) enforces:

    - a per-job wall-clock timeout: a hung child (runaway unification,
      an elaboration loop) is SIGKILLed and the job fails with
      {!Timed_out} — no retry, a deterministic hang would only burn
      the timeout again;
    - liveness via heartbeats: the child ticks on a SIGALRM timer even
      mid-compile, so a wedged process (stuck without consuming its
      job's time productively) is detected and killed;
    - crash detection via EOF + [waitpid]: a child that dies
      (segfault, OOM kill, nonzero exit) is observed immediately, its
      in-flight job is retried on a fresh worker, and after
      [w_crash_limit] crashes the job is {e quarantined} — failed with
      {!Crashed} so a keep-going build poisons its dependent cone
      instead of retrying forever;
    - restart with capped, jittered exponential backoff; a pool whose
      workers die [w_spawn_limit] times in a row before completing
      their handshake is declared dead ({!Pool_down} — builds abort
      with a distinct exit code).

    All messages are CRC-64-trailed frames ({!Pickle.Frame}); a torn
    or corrupted stream is treated as a child malfunction (kill +
    crash accounting), never a wrong result.  Lifecycle events flow
    into [lib/obs]: [worker.spawns]/[restarts]/[kills]/[crashes]/
    [timeouts]/[quarantined] counters, [worker.ipc_bytes_in]/[out],
    the [worker.pool] gauge, and trace instants per event.  When
    tracing is enabled, children ship their own buffered trace events
    back over the pipe (a dedicated frame kind, flushed on job receipt
    and before every reply); the HELLO handshake carries the child's
    clock epoch so the supervisor corrects timestamps before merging —
    one Chrome trace covers the parent and every child.  A child that
    dies mid-job contributes a synthetic span marked [truncated]
    covering dispatch-to-death.

    The pool must be driven from the main domain of a process with no
    other domains running (forking with live domains is unsafe); the
    [Workers] scheduler backend guarantees this by multiplexing the
    pool with [select] instead of spawning a domain pool. *)

(** Injected child misbehaviour, for testing the supervisor: what the
    child does when it receives (or, for [Chaos_nostart], before it
    greets at all).  Keyed by job id; ["*"] matches every job. *)
type chaos =
  | Chaos_crash  (** SIGKILL itself on receiving the job *)
  | Chaos_hang  (** loop forever, heartbeats still ticking *)
  | Chaos_exit of int  (** exit with the given status *)
  | Chaos_wedge  (** block SIGALRM and loop: heartbeats stop *)
  | Chaos_nostart  (** die before the HELLO handshake *)

type config = {
  w_jobs : int;  (** pool size (child processes) *)
  w_timeout_s : float;  (** per-job wall-clock budget *)
  w_heartbeat_s : float;  (** child heartbeat interval *)
  w_crash_limit : int;
      (** quarantine a job after this many child crashes (default 2) *)
  w_spawn_limit : int;
      (** consecutive pre-handshake deaths before {!Pool_down} *)
  w_backoff_s : float;  (** restart backoff base *)
  w_backoff_cap_s : float;  (** restart backoff cap *)
  w_chaos : (string * chaos) list;  (** injected misbehaviour *)
}

(** The environment variable {!chaos_of_env} parses
    ([SMLSEP_WORKER_CHAOS]). *)
val chaos_env_var : string

(** Parse the chaos hook from the environment: a comma-separated list
    of [mode:unit] entries — [crash:u1.sml,hang:u2.sml,exit=3:u3.sml,
    wedge:u4.sml,nostart] ([nostart] needs no unit: it applies to every
    spawn).  Unknown entries are ignored. *)
val chaos_of_env : unit -> (string * chaos) list

(** [default_config ?jobs ()] — [jobs] workers (default 2), 30 s
    timeout, 0.25 s heartbeat, crash limit 2, spawn limit 3, backoff
    0.05 s capped at 1 s, chaos from {!chaos_of_env}. *)
val default_config : ?jobs:int -> unit -> config

(** Why the supervisor failed a job. *)
type failure =
  | Crashed of { wf_attempts : int; wf_detail : string }
      (** the child died while holding the job, [wf_attempts] times —
          the job is quarantined *)
  | Timed_out of { wf_timeout_s : float }
      (** the job exceeded its wall-clock budget and the child was
          killed *)

(** The pool cannot make progress: workers die before completing their
    handshake faster than the spawn limit allows.  Builds abort with
    exit code 4. *)
exception Pool_down of string

(** How the generic supervisor talks to the caller's domain:
    [p_handler] runs {e in the child} (request payload to response
    payload; exceptions become error replies via [p_encode_exn]);
    [p_decode_exn] rebuilds the exception {e in the parent};
    [p_fail] translates a supervision {!failure} into the caller's
    exception vocabulary (the IRM mints E0701/E0702 diagnostics).

    [p_handler] may call [notify payload] at most once, mid-job, to
    ship an intermediate result back early — the pipelined scheduler
    uses this to release a unit's static view before code generation.
    The frame travels the same pipe as the reply (FIFO: it always
    arrives first) and surfaces as a {!Static} event from
    {!next_event}.  Handlers that never notify behave exactly as
    before. *)
type proto = {
  p_handler : notify:(string -> unit) -> id:string -> string -> string;
  p_encode_exn : exn -> string;
  p_decode_exn : string -> exn;
  p_fail : id:string -> failure -> exn;
}

(** What the pool reports back: a job completion, or a mid-job
    notification from a child's [notify].  A [Static] event never
    settles the job — its [Done] still follows (or a crash/timeout
    failure does). *)
type event =
  | Done of string * (string, exn) result
  | Static of string * string

type t

(** [create config proto] — a pool of up to [config.w_jobs] supervised
    child processes.  Children are spawned lazily, on demand.  Ignores
    SIGPIPE for the calling process (a worker dying mid-write must be
    an observable error, not a parent death). *)
val create : config -> proto -> t

(** [submit t ~id payload] — queue a job.  Ids must be unique among
    in-flight jobs. *)
val submit : t -> id:string -> string -> unit

(** Jobs submitted but not yet returned by {!next}. *)
val pending : t -> int

(** [slot_busy t] — seconds each of the [w_jobs] slots has spent
    holding a dispatched job (including jobs that ended in a crash,
    timeout or quarantine), for scheduler-efficiency reporting. *)
val slot_busy : t -> float array

(** [pump t] — one nonblocking supervision turn: spawn due workers,
    dispatch queued jobs, drain whatever the children have written, and
    enforce heartbeat/timeout deadlines.  Never blocks.  Raises
    {!Pool_down} exactly as {!next_event} would.  For callers embedding
    the pool in their own event loop (the remote executor's socket
    reactor); interactive callers use {!next_event}. *)
val pump : t -> unit

(** [poll_event t] — a ready event, if {!pump} produced one.  Never
    blocks. *)
val poll_event : t -> event option

(** [next_event t] — block until the pool has something to report: a
    job finishing (successfully, with a handler error, or by
    supervision: crash quarantine or timeout), or a mid-job [notify]
    from a child.  Raises {!Pool_down} if the pool dies entirely, and
    [Invalid_argument] if nothing is pending. *)
val next_event : t -> event

(** [next t] — like {!next_event} but returns only completions,
    silently discarding {!Static} notifications.  For callers whose
    handlers never notify. *)
val next : t -> string * (string, exn) result

(** Kill every child and reap it.  Idempotent. *)
val shutdown : t -> unit
