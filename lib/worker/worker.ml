module Frame = Pickle.Frame

type chaos =
  | Chaos_crash
  | Chaos_hang
  | Chaos_exit of int
  | Chaos_wedge
  | Chaos_nostart

type config = {
  w_jobs : int;
  w_timeout_s : float;
  w_heartbeat_s : float;
  w_crash_limit : int;
  w_spawn_limit : int;
  w_backoff_s : float;
  w_backoff_cap_s : float;
  w_chaos : (string * chaos) list;
}

let chaos_env_var = "SMLSEP_WORKER_CHAOS"

let chaos_of_env () =
  match Sys.getenv_opt chaos_env_var with
  | None | Some "" -> []
  | Some spec ->
    String.split_on_char ',' spec
    |> List.filter_map (fun entry ->
           match String.split_on_char ':' (String.trim entry) with
           | [ "crash"; unit_ ] -> Some (unit_, Chaos_crash)
           | [ "hang"; unit_ ] -> Some (unit_, Chaos_hang)
           | [ "wedge"; unit_ ] -> Some (unit_, Chaos_wedge)
           | [ "nostart" ] | [ "nostart"; _ ] -> Some ("*", Chaos_nostart)
           | [ mode; unit_ ]
             when String.length mode > 5
                  && String.equal (String.sub mode 0 5) "exit=" -> (
             match
               int_of_string_opt
                 (String.sub mode 5 (String.length mode - 5))
             with
             | Some n -> Some (unit_, Chaos_exit n)
             | None -> None)
           | _ -> None)

let default_config ?(jobs = 2) () =
  {
    w_jobs = max 1 jobs;
    w_timeout_s = 30.;
    w_heartbeat_s = 0.25;
    w_crash_limit = 2;
    w_spawn_limit = 3;
    w_backoff_s = 0.05;
    w_backoff_cap_s = 1.0;
    w_chaos = chaos_of_env ();
  }

type failure =
  | Crashed of { wf_attempts : int; wf_detail : string }
  | Timed_out of { wf_timeout_s : float }

exception Pool_down of string

type proto = {
  p_handler : notify:(string -> unit) -> id:string -> string -> string;
  p_encode_exn : exn -> string;
  p_decode_exn : string -> exn;
  p_fail : id:string -> failure -> exn;
}

type event =
  | Done of string * (string, exn) result
  | Static of string * string

let m_spawns = Obs.Metrics.counter "worker.spawns"
let m_restarts = Obs.Metrics.counter "worker.restarts"
let m_kills = Obs.Metrics.counter "worker.kills"
let m_crashes = Obs.Metrics.counter "worker.crashes"
let m_timeouts = Obs.Metrics.counter "worker.timeouts"
let m_quarantined = Obs.Metrics.counter "worker.quarantined"
let m_ipc_out = Obs.Metrics.counter "worker.ipc_bytes_out"
let m_ipc_in = Obs.Metrics.counter "worker.ipc_bytes_in"
let g_pool = Obs.Metrics.gauge "worker.pool"

(* message kinds of the frame protocol *)
let k_hello = 0
let k_heartbeat = 1
let k_request = 2
let k_response = 3
let k_error = 4
let k_trace = 5  (* child -> parent: a drained trace-event batch *)
let k_static = 6  (* child -> parent: mid-job static-view notification *)

(* how long without a heartbeat before a worker counts as wedged *)
let hb_grace cfg = 4. *. cfg.w_heartbeat_s

(* ------------------------------------------------------------------ *)
(* EINTR-safe I/O (the child's SIGALRM heartbeats interrupt syscalls)   *)
(* ------------------------------------------------------------------ *)

let rec write_all fd b off len =
  if len > 0 then
    match Unix.write fd b off len with
    | n -> write_all fd b (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b off len

let write_frame fd frame =
  write_all fd (Bytes.of_string frame) 0 (String.length frame)

let rec read_some fd b off len =
  match Unix.read fd b off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_some fd b off len

(* read exactly [len] bytes; [None] on EOF *)
let read_exact fd len =
  let b = Bytes.create len in
  let rec go off =
    if off = len then Some (Bytes.to_string b)
    else
      match read_some fd b off (len - off) with
      | 0 -> None
      | n -> go (off + n)
  in
  go 0

let read_frame fd =
  match read_exact fd Frame.header_size with
  | None -> None
  | Some header -> (
    match read_exact fd (Frame.body_length header) with
    | None -> None
    | Some body -> Some (Frame.decode_body body))

(* ------------------------------------------------------------------ *)
(* The child                                                           *)
(* ------------------------------------------------------------------ *)

let chaos_for cfg id =
  match List.assoc_opt id cfg.w_chaos with
  | Some c -> Some c
  | None -> List.assoc_opt "*" cfg.w_chaos

let rec sleep_forever () =
  (try Unix.sleepf 3600. with Unix.Unix_error (Unix.EINTR, _, _) -> ());
  sleep_forever ()

let child_act cfg id =
  match chaos_for cfg id with
  | None | Some Chaos_nostart -> ()
  | Some Chaos_crash -> Unix.kill (Unix.getpid ()) Sys.sigkill
  | Some (Chaos_exit n) -> Unix._exit n
  | Some Chaos_hang ->
    (* heartbeats keep flowing from the SIGALRM handler: only the
       wall-clock job timeout can end this *)
    sleep_forever ()
  | Some Chaos_wedge ->
    (* heartbeats stop too: the supervisor must detect the silence *)
    ignore (Unix.sigprocmask Unix.SIG_BLOCK [ Sys.sigalrm ]);
    sleep_forever ()

(* frame writes must not interleave with the heartbeat the SIGALRM
   handler writes, or the stream tears mid-frame *)
let with_alarm_blocked f =
  let old = Unix.sigprocmask Unix.SIG_BLOCK [ Sys.sigalrm ] in
  Fun.protect
    ~finally:(fun () -> ignore (Unix.sigprocmask Unix.SIG_SETMASK old))
    f

(* ship the child's buffered trace events to the supervisor.  Called
   before every reply (flush-on-result) and on job receipt, so a child
   that later crashes has already flushed everything up to its current
   job — the supervisor loses at most the spans of the dying compile,
   which it stands in for with a [truncated] span. *)
let flush_trace send =
  if Obs.Trace.enabled () then
    match Obs.Trace.drain_wire () with
    | "" -> ()
    | payload -> (
      try
        with_alarm_blocked (fun () ->
            write_frame send (Frame.encode ~kind:k_trace ~id:"" ~payload))
      with Unix.Unix_error _ -> ())

let child_loop cfg proto ~recv ~send =
  (match List.assoc_opt "*" cfg.w_chaos with
  | Some Chaos_nostart -> Unix._exit 7
  | _ -> ());
  (* the fork copied the parent's trace buffer (and enabled flag): drop
     the inherited events — the parent already owns them — and re-base
     this process's clock.  The HELLO carries the new epoch so the
     supervisor can correct the offset when it injects our events. *)
  if Obs.Trace.enabled () then Obs.Trace.reset ();
  Sys.set_signal Sys.sigalrm
    (Sys.Signal_handle
       (fun _ ->
         try write_frame send (Frame.encode ~kind:k_heartbeat ~id:"" ~payload:"")
         with Unix.Unix_error _ -> ()));
  ignore
    (Unix.setitimer Unix.ITIMER_REAL
       {
         Unix.it_interval = cfg.w_heartbeat_s;
         it_value = cfg.w_heartbeat_s;
       });
  with_alarm_blocked (fun () ->
      write_frame send
        (Frame.encode ~kind:k_hello ~id:""
           ~payload:(Printf.sprintf "%h" (Obs.Trace.epoch_s ()))));
  let rec serve () =
    match read_frame recv with
    | None -> Unix._exit 0 (* parent closed the pipe: orderly shutdown *)
    | Some { Frame.f_kind; f_id; f_payload } when f_kind = k_request ->
      flush_trace send;
      child_act cfg f_id;
      (* mid-job notification channel: the handler may release the job's
         static view early.  The pipe is FIFO, so the notification frame
         always precedes the job's own response frame. *)
      let notify payload =
        flush_trace send;
        with_alarm_blocked (fun () ->
            write_frame send (Frame.encode ~kind:k_static ~id:f_id ~payload))
      in
      let reply =
        match proto.p_handler ~notify ~id:f_id f_payload with
        | payload -> Frame.encode ~kind:k_response ~id:f_id ~payload
        | exception exn ->
          Frame.encode ~kind:k_error ~id:f_id
            ~payload:(proto.p_encode_exn exn)
      in
      flush_trace send;
      with_alarm_blocked (fun () -> write_frame send reply);
      serve ()
    | Some _ -> Unix._exit 8 (* protocol violation *)
  in
  try serve () with _ -> Unix._exit 9

(* ------------------------------------------------------------------ *)
(* The supervisor                                                      *)
(* ------------------------------------------------------------------ *)

type child = {
  ch_pid : int;
  ch_send : Unix.file_descr;  (** requests out *)
  ch_recv : Unix.file_descr;  (** replies and heartbeats in *)
  mutable ch_pending : string;  (** inbound bytes short of a frame *)
  mutable ch_hello : bool;
  mutable ch_job : (string * string) option;
  mutable ch_job_t0 : float;  (** when the running job was dispatched *)
  mutable ch_job_deadline : float;
  mutable ch_hb_deadline : float;
  mutable ch_offset_us : float;
      (** child trace epoch minus ours, in microseconds *)
}

type slot = Live of child | Down of float  (** earliest respawn time *)

type t = {
  cfg : config;
  proto : proto;
  slots : slot array;
  restarts : int array;  (** spawns per slot, for the backoff exponent *)
  sb_busy : float array;  (** seconds each slot has spent holding a job *)
  queue : (string * string) Queue.t;
  results : event Queue.t;
  crashes : (string, int) Hashtbl.t;  (** per-job crash attempts *)
  mutable spawn_failures : int;  (** consecutive pre-handshake deaths *)
  mutable inflight : int;
  backoff : Support.Backoff.t;
  mutable closed : bool;
}

let create cfg proto =
  (* a worker dying mid-write must surface as EPIPE on our write, not
     kill the supervisor outright *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let jobs = max 1 cfg.w_jobs in
  Obs.Metrics.set g_pool jobs;
  {
    cfg = { cfg with w_jobs = jobs };
    proto;
    slots = Array.make jobs (Down 0.);
    restarts = Array.make jobs 0;
    sb_busy = Array.make jobs 0.;
    queue = Queue.create ();
    results = Queue.create ();
    crashes = Hashtbl.create 16;
    spawn_failures = 0;
    inflight = 0;
    backoff =
      Support.Backoff.create ~base_s:cfg.w_backoff_s
        ~cap_s:cfg.w_backoff_cap_s ();
    closed = false;
  }

let rec reap pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap pid
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> Unix.WEXITED 0

let status_detail = function
  | Unix.WEXITED n -> Printf.sprintf "exited with status %d" n
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let spawn t i =
  let req_read, req_write = Unix.pipe () in
  let res_read, res_write = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    close_quietly req_write;
    close_quietly res_read;
    (* drop the other workers' pipe ends, or a sibling holding the
       write end open would defeat this worker's EOF detection *)
    Array.iter
      (function
        | Live c ->
          close_quietly c.ch_send;
          close_quietly c.ch_recv
        | Down _ -> ())
      t.slots;
    child_loop t.cfg t.proto ~recv:req_read ~send:res_write
  | pid ->
    close_quietly req_read;
    close_quietly res_write;
    Obs.Metrics.incr m_spawns;
    if t.restarts.(i) > 0 then begin
      Obs.Metrics.incr m_restarts;
      Obs.Trace.instant ~cat:"worker"
        ~args:[ ("slot", string_of_int i); ("pid", string_of_int pid) ]
        "worker.restart"
    end
    else
      Obs.Trace.instant ~cat:"worker"
        ~args:[ ("slot", string_of_int i); ("pid", string_of_int pid) ]
        "worker.spawn";
    t.restarts.(i) <- t.restarts.(i) + 1;
    t.slots.(i) <-
      Live
        {
          ch_pid = pid;
          ch_send = req_write;
          ch_recv = res_read;
          ch_pending = "";
          ch_hello = false;
          ch_job = None;
          ch_job_t0 = 0.;
          ch_job_deadline = infinity;
          ch_hb_deadline = Unix.gettimeofday () +. hb_grace t.cfg;
          ch_offset_us = 0.;
        }

(* take the slot down and schedule its respawn with capped, jittered
   exponential backoff — restarts after a crash storm must neither
   retry in lock-step nor grow unboundedly sparse *)
let retire t i c =
  close_quietly c.ch_send;
  close_quietly c.ch_recv;
  let delay =
    Support.Backoff.delay t.backoff ~attempt:(max 0 (t.restarts.(i) - 1))
  in
  t.slots.(i) <- Down (Unix.gettimeofday () +. delay)

(* a child died while holding [id]: retry the job on a fresh worker, or
   quarantine it once it has crashed workers [w_crash_limit] times *)
let account_crash t ~id ~payload ~detail =
  t.inflight <- t.inflight - 1;
  Obs.Metrics.incr m_crashes;
  let attempts = 1 + Option.value ~default:0 (Hashtbl.find_opt t.crashes id) in
  Hashtbl.replace t.crashes id attempts;
  Obs.Trace.instant ~cat:"worker"
    ~args:[ ("unit", id); ("detail", detail) ]
    "worker.crash";
  if attempts >= t.cfg.w_crash_limit then begin
    Obs.Metrics.incr m_quarantined;
    Obs.Trace.instant ~cat:"worker" ~args:[ ("unit", id) ] "worker.quarantine";
    Queue.push
      (Done
         ( id,
           Error
             (t.proto.p_fail ~id
                (Crashed { wf_attempts = attempts; wf_detail = detail })) ))
      t.results
  end
  else Queue.push (id, payload) t.queue

(* a child died before its handshake: it never did any work, so this is
   the pool failing to start, not a job crashing it *)
let account_nostart t ~detail =
  t.spawn_failures <- t.spawn_failures + 1;
  if t.spawn_failures >= t.cfg.w_spawn_limit then
    raise
      (Pool_down
         (Printf.sprintf
            "%d consecutive workers died before their handshake (last one %s)"
            t.spawn_failures detail))

(* the job died with its child.  Account the slot's busy time, and —
   since the child's last trace batch went down with it — stand in a
   [truncated] span covering dispatch-to-death, so the merged trace
   still shows where the quarantined unit's time went. *)
let salvage t i c ~detail =
  match c.ch_job with
  | None -> ()
  | Some (id, _) ->
    let now = Unix.gettimeofday () in
    t.sb_busy.(i) <- t.sb_busy.(i) +. Float.max 0. (now -. c.ch_job_t0);
    if Obs.Trace.enabled () then
      Obs.Trace.record_span ~cat:"worker"
        ~args:
          [
            ("unit", id);
            ("truncated", "true");
            ("detail", detail);
            ("pid", string_of_int c.ch_pid);
          ]
        ~start_s:c.ch_job_t0 "build.compile_job"

(* the child's pipe hit EOF (or a read error): it died on its own *)
let on_eof t i c =
  let detail = status_detail (reap c.ch_pid) in
  salvage t i c ~detail;
  retire t i c;
  match c.ch_job with
  | Some (id, payload) -> account_crash t ~id ~payload ~detail
  | None -> if not c.ch_hello then account_nostart t ~detail

let kill_child c =
  Obs.Metrics.incr m_kills;
  (try Unix.kill c.ch_pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (reap c.ch_pid)

let on_timeout t i c =
  kill_child c;
  Obs.Metrics.incr m_timeouts;
  salvage t i c ~detail:"timed out";
  retire t i c;
  match c.ch_job with
  | Some (id, _) ->
    t.inflight <- t.inflight - 1;
    Obs.Trace.instant ~cat:"worker" ~args:[ ("unit", id) ] "worker.timeout";
    Queue.push
      (Done
         ( id,
           Error
             (t.proto.p_fail ~id
                (Timed_out { wf_timeout_s = t.cfg.w_timeout_s })) ))
      t.results
  | None -> assert false (* only busy workers have job deadlines *)

let on_heartbeat_lost t i c =
  kill_child c;
  let detail = "went silent (heartbeat lost; killed)" in
  salvage t i c ~detail;
  retire t i c;
  match c.ch_job with
  | Some (id, payload) -> account_crash t ~id ~payload ~detail
  | None -> if not c.ch_hello then account_nostart t ~detail

(* a live child speaking garbage (bad magic, CRC mismatch) is as dead
   to us as a crashed one *)
let on_malfunction t i c detail =
  kill_child c;
  salvage t i c ~detail;
  retire t i c;
  match c.ch_job with
  | Some (id, payload) -> account_crash t ~id ~payload ~detail
  | None -> if not c.ch_hello then account_nostart t ~detail

let handle_msg t i c msg =
  let now = Unix.gettimeofday () in
  match msg.Frame.f_kind with
  | k when k = k_hello ->
    c.ch_hello <- true;
    t.spawn_failures <- 0;
    (* the HELLO carries the child's trace epoch: the offset between
       its clock origin and ours corrects every event it later ships *)
    (match float_of_string_opt msg.Frame.f_payload with
    | Some child_epoch ->
      c.ch_offset_us <- (child_epoch -. Obs.Trace.epoch_s ()) *. 1e6
    | None -> ());
    c.ch_hb_deadline <- now +. hb_grace t.cfg
  | k when k = k_heartbeat -> c.ch_hb_deadline <- now +. hb_grace t.cfg
  | k when k = k_trace ->
    c.ch_hb_deadline <- now +. hb_grace t.cfg;
    if Obs.Trace.enabled () then
      ignore
        (Obs.Trace.inject ~pid:c.ch_pid ~offset_us:c.ch_offset_us
           msg.Frame.f_payload)
  | k when k = k_static -> (
    c.ch_hb_deadline <- now +. hb_grace t.cfg;
    (* the job stays held: a notification is mid-job progress, not a
       completion — crash accounting and the timeout still apply *)
    match c.ch_job with
    | Some (id, _) when String.equal id msg.Frame.f_id ->
      Queue.push (Static (id, msg.Frame.f_payload)) t.results
    | Some _ | None ->
      on_malfunction t i c "sent a notification for a job it was not given")
  | k when k = k_response || k = k_error -> (
    match c.ch_job with
    | Some (id, _) when String.equal id msg.Frame.f_id ->
      c.ch_job <- None;
      c.ch_job_deadline <- infinity;
      t.sb_busy.(i) <- t.sb_busy.(i) +. Float.max 0. (now -. c.ch_job_t0);
      t.inflight <- t.inflight - 1;
      Hashtbl.remove t.crashes id;
      let result =
        if k = k_response then Ok msg.Frame.f_payload
        else
          Error
            (match t.proto.p_decode_exn msg.Frame.f_payload with
            | exn -> exn
            | exception _ ->
              Failure ("undecodable worker error for " ^ id))
      in
      Queue.push (Done (id, result)) t.results
    | Some _ | None ->
      on_malfunction t i c "replied to a job it was not given")
  | _ -> on_malfunction t i c "sent an unknown message kind"

let rec parse_frames t i c =
  match Frame.pop c.ch_pending with
  | exception Pickle.Buf.Corrupt _ ->
    on_malfunction t i c "sent a corrupt frame"
  | None -> ()
  | Some (msg, rest) -> (
    c.ch_pending <- rest;
    handle_msg t i c msg;
    (* the slot may have been retired by a malfunction above *)
    match t.slots.(i) with
    | Live c' when c' == c -> parse_frames t i c
    | Live _ | Down _ -> ())

let chunk_size = 65536

let on_readable t i c =
  let chunk = Bytes.create chunk_size in
  match read_some c.ch_recv chunk 0 chunk_size with
  | 0 -> on_eof t i c
  | exception Unix.Unix_error _ -> on_eof t i c
  | n ->
    Obs.Metrics.add m_ipc_in n;
    c.ch_pending <- c.ch_pending ^ Bytes.sub_string chunk 0 n;
    parse_frames t i c

(* spawn due workers and hand queued jobs to idle, greeted ones *)
let dispatch t =
  let now = Unix.gettimeofday () in
  Array.iteri
    (fun i slot ->
      match slot with
      | Down at when (not (Queue.is_empty t.queue)) && at <= now -> spawn t i
      | Down _ | Live _ -> ())
    t.slots;
  Array.iteri
    (fun i slot ->
      match slot with
      | Live c when c.ch_hello && c.ch_job = None && not (Queue.is_empty t.queue)
        -> (
        let id, payload = Queue.pop t.queue in
        let frame = Frame.encode ~kind:k_request ~id ~payload in
        match write_frame c.ch_send frame with
        | () ->
          Obs.Metrics.add m_ipc_out (String.length frame);
          c.ch_job <- Some (id, payload);
          c.ch_job_t0 <- now;
          t.inflight <- t.inflight + 1;
          c.ch_job_deadline <- now +. t.cfg.w_timeout_s;
          c.ch_hb_deadline <- now +. hb_grace t.cfg
        | exception Unix.Unix_error _ ->
          (* died while idle: the job was never delivered, so requeue it
             without crash accounting *)
          Queue.push (id, payload) t.queue;
          let detail = status_detail (reap c.ch_pid) in
          ignore detail;
          retire t i c)
      | Live _ | Down _ -> ())
    t.slots

let expire t =
  let now = Unix.gettimeofday () in
  Array.iteri
    (fun i slot ->
      match slot with
      | Live c ->
        if c.ch_job <> None && now >= c.ch_job_deadline then on_timeout t i c
        else if
          (c.ch_job <> None || not c.ch_hello) && now >= c.ch_hb_deadline
        then on_heartbeat_lost t i c
      | Down _ -> ())
    t.slots

let pending t = Queue.length t.queue + t.inflight + Queue.length t.results
let slot_busy t = Array.copy t.sb_busy

let submit t ~id payload =
  if t.closed then invalid_arg "Worker.submit: pool is shut down";
  Queue.push (id, payload) t.queue

(* one nonblocking supervision turn: spawn/dispatch, drain readable
   pipes, enforce deadlines.  The remote executor drives the pool this
   way from inside its socket reactor, where blocking in [next_event]
   would starve the connections. *)
let pump t =
  if t.closed then invalid_arg "Worker.pump: pool is shut down";
  if pending t > 0 then begin
    dispatch t;
    let fds =
      Array.fold_left
        (fun acc -> function Live c -> c.ch_recv :: acc | Down _ -> acc)
        [] t.slots
    in
    if fds <> [] then begin
      let readable, _, _ =
        try Unix.select fds [] [] 0.
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      Array.iteri
        (fun i slot ->
          match slot with
          | Live c when List.memq c.ch_recv readable -> (
            match t.slots.(i) with
            | Live c' when c' == c -> on_readable t i c
            | Live _ | Down _ -> ())
          | Live _ | Down _ -> ())
        t.slots
    end;
    expire t
  end

let poll_event t =
  if t.closed then invalid_arg "Worker.poll_event: pool is shut down";
  if Queue.is_empty t.results then None else Some (Queue.pop t.results)

let next_event t =
  if t.closed then invalid_arg "Worker.next_event: pool is shut down";
  if pending t = 0 then invalid_arg "Worker.next_event: no job pending";
  while Queue.is_empty t.results do
    dispatch t;
    let now = Unix.gettimeofday () in
    let deadline = ref infinity in
    let fds = ref [] in
    Array.iter
      (function
        | Live c ->
          fds := c.ch_recv :: !fds;
          if c.ch_job <> None then
            deadline := Float.min !deadline c.ch_job_deadline;
          if c.ch_job <> None || not c.ch_hello then
            deadline := Float.min !deadline c.ch_hb_deadline
        | Down at ->
          if not (Queue.is_empty t.queue) then
            deadline := Float.min !deadline at)
      t.slots;
    if !fds = [] && !deadline = infinity then
      raise (Pool_down "no live workers and nothing left to wait for");
    let timeout =
      if !deadline = infinity then -1. else Float.max 0.005 (!deadline -. now)
    in
    let readable, _, _ =
      try Unix.select !fds [] [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    Array.iteri
      (fun i slot ->
        match slot with
        | Live c when List.memq c.ch_recv readable -> (
          (* the slot may have been retired while handling an earlier fd *)
          match t.slots.(i) with
          | Live c' when c' == c -> on_readable t i c
          | Live _ | Down _ -> ())
        | Live _ | Down _ -> ())
      t.slots;
    expire t
  done;
  Queue.pop t.results

(* completion-only view for callers that installed no split: with no
   notifying handler there are no [Static] events to skip *)
let rec next t =
  match next_event t with
  | Done (id, result) -> (id, result)
  | Static _ -> next t

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    Array.iteri
      (fun i slot ->
        match slot with
        | Live c ->
          (* no graceful drain: children hold no state worth flushing,
             and a chaos-hung child would never honour the EOF *)
          (try Unix.kill c.ch_pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (reap c.ch_pid);
          close_quietly c.ch_send;
          close_quietly c.ch_recv;
          t.slots.(i) <- Down 0.
        | Down _ -> ())
      t.slots
  end
