module Symbol = Support.Symbol
module Types = Statics.Types

type session = { ctx : Statics.Context.t; basis : Types.env }

let new_session () =
  let ctx = Statics.Context.create () in
  Statics.Basis.register ctx;
  { ctx; basis = Statics.Basis.env () }

let context session = session.ctx
let basis_env session = session.basis

let env_of_units session units =
  List.fold_left
    (fun env (uf : Pickle.Binfile.t) -> Types.env_union env uf.uf_env)
    session.basis units
  |> fun env ->
  ignore session;
  env

(* The unit's runtime export record: one field per top-level structure
   and functor, referencing the lvar the declaration bound. *)
let runtime_export_fields (delta : Types.env) =
  let fields = ref [] in
  Symbol.Map.iter
    (fun name info -> fields := (name, Statics.Tast.TEvar info.Types.str_addr) :: !fields)
    delta.Types.strs;
  Symbol.Map.iter
    (fun name info -> fields := (name, Statics.Tast.TEvar info.Types.fct_addr) :: !fields)
    delta.Types.fcts;
  List.sort
    (fun (a, _) (b, _) -> String.compare (Symbol.name a) (Symbol.name b))
    !fields

let m_units = Obs.Metrics.counter "compile.units"
let m_failed_units = Obs.Metrics.counter "compile.failed_units"
let m_diag_errors = Obs.Metrics.counter "diag.errors"
let m_diag_warnings = Obs.Metrics.counter "diag.warnings"

let compile ?(optimize = true) ?warn ?diags ?on_static session ~name ~source
    ~imports =
  Obs.Trace.span ~cat:"compile" ~args:[ ("unit", name) ] "compile.unit"
  @@ fun () ->
  (* stage spans for the pipelined split are recorded retroactively from
     clock reads taken inside the compile.unit span, so they nest
     cleanly within it on the trace track (record_span keeps them out
     of the phase collector, so they never feed profile EWMAs) *)
  let stage_start = Unix.gettimeofday () in
  (* generated binder names restart from zero for every unit, making
     the emitted bin bytes a function of (source, imports) alone —
     independent of session history, build order, or which domain runs
     the compile.  Binders never escape a unit's own lambda term, so
     cross-unit reuse of a name is harmless. *)
  Support.Symbol.with_fresh_scope @@ fun () ->
  let phase p f = Obs.Trace.span ~cat:"compile" ~args:[ ("unit", name) ] p f in
  let env = env_of_units session imports in
  (* recovery mode: the front end accumulates into [diags] instead of
     raising on the first error.  A unit with parse errors skips
     elaboration (a partially recovered AST would only produce
     confusing secondary type errors); a unit with elaboration errors
     stops before translation, so the error type never reaches a
     pickled interface.  Either way the whole batch is raised as
     {!Support.Diag.Errors}. *)
  let unit_failed c =
    Obs.Metrics.incr m_failed_units;
    Obs.Metrics.add m_diag_errors (Support.Diag.error_count c);
    Obs.Metrics.add m_diag_warnings (Support.Diag.warning_count c);
    raise (Support.Diag.Errors (Support.Diag.diags c))
  in
  let check_front_end () =
    match diags with
    | Some c when Support.Diag.has_errors c -> unit_failed c
    | _ -> ()
  in
  let unit_ =
    try phase "parse" (fun () -> Lang.Parser.parse_unit ?diags ~file:name source)
    with Support.Diag.Errors _ as e -> (
      (* the collector hit its error limit mid-phase *)
      match diags with Some c -> unit_failed c | None -> raise e)
  in
  check_front_end ();
  let delta, tdecs =
    try
      phase "elaborate" (fun () ->
          Statics.Elaborate.elab_compilation_unit ?warn ?diags session.ctx env
            unit_)
    with Support.Diag.Errors _ as e -> (
      match diags with Some c -> unit_failed c | None -> raise e)
  in
  check_front_end ();
  (match diags with
  | Some c -> Obs.Metrics.add m_diag_warnings (Support.Diag.warning_count c)
  | None -> ());
  let fields = runtime_export_fields delta in
  let export = phase "hash" (fun () -> Pickle.Hashenv.export session.ctx delta) in
  (* the selective-recompilation record: of the module names this unit
     referenced, which import provided each and at what interface pid.
     Scanned before translation: the scan needs only the parsed AST, and
     running it here completes the unit's *static* part — everything a
     dependent needs is fixed from this point on. *)
  let summary = phase "scan" (fun () -> Depend.Scan.scan unit_) in
  let uf_import_name_statics =
    List.concat_map
      (fun (uf : Pickle.Binfile.t) ->
        List.filter
          (fun (modname, _) ->
            Symbol.Set.mem modname summary.Depend.Scan.refers)
          uf.uf_name_statics)
      imports
  in
  let assemble codeunit =
    {
      Pickle.Binfile.uf_name = name;
      uf_static_pid = export.ex_static_pid;
      uf_env = export.ex_env;
      uf_import_statics =
        List.map
          (fun (uf : Pickle.Binfile.t) -> (uf.uf_name, uf.uf_static_pid))
          imports;
      uf_name_statics = export.ex_name_statics;
      uf_import_name_statics;
      uf_codeunit = codeunit;
    }
  in
  (* The pipelined-phase hook: the static part (interface, pids, env) is
     complete, code generation has not started.  A scheduler can release
     this view to dependents and overlap their compiles with this unit's
     translate/simplify.  Sound because the export pid is a function of
     the elaborated interface alone — codegen cannot change it. *)
  (match on_static with
  | Some notify ->
    notify (assemble Pickle.Binfile.no_code);
    Obs.Trace.record_span ~cat:"compile"
      ~args:[ ("unit", name); ("stage", "static") ]
      ~start_s:stage_start "compile.static"
  | None -> ());
  let codegen_start = Unix.gettimeofday () in
  let code = phase "translate" (fun () -> Translate.unit_code tdecs fields) in
  let code =
    if optimize then phase "simplify" (fun () -> Simplify.term code) else code
  in
  let codeunit = Link.Codeunit.make ~exports:export.ex_exports code in
  (match on_static with
  | Some _ ->
    Obs.Trace.record_span ~cat:"compile"
      ~args:[ ("unit", name); ("stage", "codegen") ]
      ~start_s:codegen_start "compile.codegen"
  | None -> ());
  Obs.Metrics.incr m_units;
  assemble codeunit

let load session bytes = Pickle.Binfile.read session.ctx bytes
let save session unit_ = Pickle.Binfile.write session.ctx unit_
let save_static session unit_ = Pickle.Binfile.write_static session.ctx unit_
let execute ?output ?bin_path unit_ dynenv =
  Link.Linker.execute ?output ~unit_name:unit_.Pickle.Binfile.uf_name ?bin_path
    unit_.Pickle.Binfile.uf_codeunit dynenv
