module Symbol = Support.Symbol
module Types = Statics.Types

type session = { ctx : Statics.Context.t; basis : Types.env }

let new_session () =
  let ctx = Statics.Context.create () in
  Statics.Basis.register ctx;
  { ctx; basis = Statics.Basis.env () }

let context session = session.ctx
let basis_env session = session.basis

let env_of_units session units =
  List.fold_left
    (fun env (uf : Pickle.Binfile.t) -> Types.env_union env uf.uf_env)
    session.basis units
  |> fun env ->
  ignore session;
  env

(* The unit's runtime export record: one field per top-level structure
   and functor, referencing the lvar the declaration bound. *)
let runtime_export_fields (delta : Types.env) =
  let fields = ref [] in
  Symbol.Map.iter
    (fun name info -> fields := (name, Statics.Tast.TEvar info.Types.str_addr) :: !fields)
    delta.Types.strs;
  Symbol.Map.iter
    (fun name info -> fields := (name, Statics.Tast.TEvar info.Types.fct_addr) :: !fields)
    delta.Types.fcts;
  List.sort
    (fun (a, _) (b, _) -> String.compare (Symbol.name a) (Symbol.name b))
    !fields

let m_units = Obs.Metrics.counter "compile.units"

let compile ?(optimize = true) ?warn session ~name ~source ~imports =
  Obs.Trace.span ~cat:"compile" ~args:[ ("unit", name) ] "compile.unit"
  @@ fun () ->
  (* generated binder names restart from zero for every unit, making
     the emitted bin bytes a function of (source, imports) alone —
     independent of session history, build order, or which domain runs
     the compile.  Binders never escape a unit's own lambda term, so
     cross-unit reuse of a name is harmless. *)
  Support.Symbol.with_fresh_scope @@ fun () ->
  let phase p f = Obs.Trace.span ~cat:"compile" ~args:[ ("unit", name) ] p f in
  let env = env_of_units session imports in
  let unit_ =
    phase "parse" (fun () -> Lang.Parser.parse_unit ~file:name source)
  in
  let delta, tdecs =
    phase "elaborate" (fun () ->
        Statics.Elaborate.elab_compilation_unit ?warn session.ctx env unit_)
  in
  let fields = runtime_export_fields delta in
  let export = phase "hash" (fun () -> Pickle.Hashenv.export session.ctx delta) in
  let code = phase "translate" (fun () -> Translate.unit_code tdecs fields) in
  let code =
    if optimize then phase "simplify" (fun () -> Simplify.term code) else code
  in
  let codeunit = Link.Codeunit.make ~exports:export.ex_exports code in
  Obs.Metrics.incr m_units;
  (* the selective-recompilation record: of the module names this unit
     referenced, which import provided each and at what interface pid *)
  let summary = phase "scan" (fun () -> Depend.Scan.scan unit_) in
  let uf_import_name_statics =
    List.concat_map
      (fun (uf : Pickle.Binfile.t) ->
        List.filter
          (fun (modname, _) ->
            Symbol.Set.mem modname summary.Depend.Scan.refers)
          uf.uf_name_statics)
      imports
  in
  {
    Pickle.Binfile.uf_name = name;
    uf_static_pid = export.ex_static_pid;
    uf_env = export.ex_env;
    uf_import_statics =
      List.map
        (fun (uf : Pickle.Binfile.t) -> (uf.uf_name, uf.uf_static_pid))
        imports;
    uf_name_statics = export.ex_name_statics;
    uf_import_name_statics;
    uf_codeunit = codeunit;
  }

let load session bytes = Pickle.Binfile.read session.ctx bytes
let save session unit_ = Pickle.Binfile.write session.ctx unit_
let execute ?output unit_ dynenv =
  Link.Linker.execute ?output unit_.Pickle.Binfile.uf_codeunit dynenv
