(** The visible compiler (sections 3, 6 and 7 of the paper): separate
    compilation and type-safe linkage exposed as ordinary functions.

    {v
      compile : source × statenv → Unit
      execute : codeUnit × dynenv → dynenv
    v}

    A {!session} owns the compilation context (the stamp-indexed object
    table) and the layered static environment of everything loaded so
    far.  Compiling a unit:

    + elaborates it against the basis plus its imports' interfaces,
    + hashes the exported environment into the unit's intrinsic
      (static) pid, rebinding provisional stamps to intrinsic ones,
    + derives a dynamic pid for each exported module,
    + translates the code to a closed lambda term abstracted over its
      imports, and
    + records the interface pids of the units it was compiled against —
      the information cutoff recompilation needs. *)

type session

(** A fresh session: the context holds only the initial basis. *)
val new_session : unit -> session

val context : session -> Statics.Context.t

(** The basis environment of the session. *)
val basis_env : session -> Statics.Types.env

(** [compile session ~name ~source ~imports] — compile one unit.
    [imports] are the already-compiled units whose exports the source
    may reference, in scope order.  [optimize] (default [true]) runs
    the lambda simplifier over the unit's code.

    Without [diags], raises {!Support.Diag.Error} on the first
    front-end failure (fail-fast).  With a [diags] collector, the
    lexer, parser and elaborator recover and accumulate every
    diagnostic they can; if any is an error the whole batch is raised
    as {!Support.Diag.Errors} before translation, so a broken unit
    still reports all its problems in one compile and the error type
    never escapes into a pickled interface.

    [on_static] is the pipelined-phase hook: it fires once, after
    elaboration, hashing and the dependency scan but before
    translate/simplify, with the unit's {e static view} (the real
    interface, pids and environment over a {!Pickle.Binfile.no_code}
    placeholder).  The export pid is a function of the elaborated
    interface alone, so a scheduler may release this view to dependents
    and overlap their compiles with this unit's code generation.  The
    hook runs inside the unit's fresh-name scope — it must not compile
    anything itself. *)
val compile :
  ?optimize:bool ->
  ?warn:(Support.Loc.t -> string -> unit) ->
  ?diags:Support.Diag.collector ->
  ?on_static:(Pickle.Binfile.t -> unit) ->
  session ->
  name:string ->
  source:string ->
  imports:Pickle.Binfile.t list ->
  Pickle.Binfile.t

(** [load session bytes] — rehydrate a bin file into the session
    (registers its type constructors).  Raises {!Pickle.Buf.Corrupt} on
    a damaged file. *)
val load : session -> string -> Pickle.Binfile.t

(** [save session unit] — pickle a unit to bytes. *)
val save : session -> Pickle.Binfile.t -> string

(** [save_static session unit] — pickle only the unit's static view
    ({!Pickle.Binfile.write_static}); the codeUnit is ignored. *)
val save_static : session -> Pickle.Binfile.t -> string

(** [execute ?output unit dynenv] — run the unit's code with its imports
    satisfied from [dynenv]; returns [dynenv] plus the unit's exports.
    The linker verifies every import pid first (type-safe linkage). *)
val execute :
  ?output:(string -> unit) ->
  ?bin_path:string ->
  Pickle.Binfile.t ->
  Link.Linker.dynenv ->
  Link.Linker.dynenv

(** [env_of_units units] — the layered static environment exporting all
    of [units]' interfaces (later units shadow); what a dependent unit
    is compiled against. *)
val env_of_units : session -> Pickle.Binfile.t list -> Statics.Types.env
