module Symbol = Support.Symbol
module Types = Statics.Types
module Value = Dynamics.Value

type t = {
  ctx : Statics.Context.t;
  mutable senv : Types.env;
  mutable values : Value.t Symbol.Map.t;
  mutable imports : Value.t Digestkit.Pid.Map.t;
  output : string -> unit;
}

type outcome = { bindings : string list; warnings : string list }

let create ?(output = print_string) () =
  let ctx = Statics.Context.create () in
  Statics.Basis.register ctx;
  {
    ctx;
    senv = Statics.Basis.env ();
    values = Symbol.Map.empty;
    imports = Digestkit.Pid.Map.empty;
    output;
  }

let context t = t.ctx
let env t = t.senv

(* lvars bound by a declaration's runtime part *)
let runtime_binders (delta : Types.env) =
  let acc = ref [] in
  let add = function Types.AdLvar v -> acc := v :: !acc | _ -> () in
  Symbol.Map.iter (fun _ info -> add info.Types.vi_addr) delta.Types.vals;
  Symbol.Map.iter (fun _ info -> add info.Types.str_addr) delta.Types.strs;
  Symbol.Map.iter (fun _ info -> add info.Types.fct_addr) delta.Types.fcts;
  List.sort_uniq Symbol.compare !acc

let parse_input input =
  match
    Support.Diag.guard (fun () -> Lang.Parser.parse_decs ~file:"<repl>" input)
  with
  | Ok decs when decs <> [] -> decs
  | Ok _ | Error _ ->
    (* treat as an expression bound to [it] *)
    let exp = Lang.Parser.parse_exp ~file:"<repl>" input in
    [
      {
        Lang.Ast.dec_desc =
          Lang.Ast.Dval
            ( { Lang.Ast.pat_desc = Lang.Ast.Pvar (Symbol.intern "it");
                pat_loc = exp.Lang.Ast.exp_loc },
              exp );
        dec_loc = exp.Lang.Ast.exp_loc;
      };
    ]

let describe_bindings t delta =
  let lines = ref [] in
  let value_of addr =
    match addr with
    | Types.AdLvar v -> Symbol.Map.find_opt v t.values
    | _ -> None
  in
  Symbol.Map.iter
    (fun name (info : Types.val_info) ->
      match info.vi_kind with
      | Types.Vcon _ -> ()
      | Types.Vexn _ ->
        lines := Printf.sprintf "exception %s" (Symbol.name name) :: !lines
      | Types.Vplain ->
        let ty = Statics.Tyformat.scheme_to_string t.ctx info.vi_scheme in
        let shown =
          match value_of info.vi_addr with
          | Some v -> Printval.print t.ctx info.vi_scheme.Types.body v
          | None -> "-"
        in
        lines :=
          Printf.sprintf "val %s = %s : %s" (Symbol.name name) shown ty
          :: !lines)
    delta.Types.vals;
  Symbol.Map.iter
    (fun name _ ->
      lines := Printf.sprintf "structure %s" (Symbol.name name) :: !lines)
    delta.Types.strs;
  Symbol.Map.iter
    (fun name _ ->
      lines := Printf.sprintf "signature %s" (Symbol.name name) :: !lines)
    delta.Types.sigs;
  Symbol.Map.iter
    (fun name _ ->
      lines := Printf.sprintf "functor %s" (Symbol.name name) :: !lines)
    delta.Types.fcts;
  Symbol.Map.iter
    (fun name _ ->
      lines := Printf.sprintf "type %s" (Symbol.name name) :: !lines)
    delta.Types.tycons;
  List.rev !lines

let eval t input =
  Obs.Trace.span ~cat:"repl" "repl.eval" @@ fun () ->
  let phase p f = Obs.Trace.span ~cat:"repl" p f in
  let decs = phase "parse" (fun () -> parse_input input) in
  let warnings = ref [] in
  let warn loc msg =
    warnings :=
      Format.asprintf "%a: warning: %s" Support.Loc.pp loc msg :: !warnings
  in
  let delta, tdecs =
    phase "elaborate" (fun () ->
        Statics.Elaborate.elab_decs ~warn t.ctx t.senv decs)
  in
  let binders = runtime_binders delta in
  let record =
    phase "translate" (fun () ->
        Translate.tdecs tdecs
          (Lambda.Lrecord (List.map (fun v -> (v, Lambda.Lvar v)) binders)))
  in
  let rt = Dynamics.Eval.runtime ~output:t.output ~imports:t.imports () in
  (match phase "execute" (fun () -> Dynamics.Eval.eval rt t.values record) with
  | Value.Vrecord fields ->
    Symbol.Map.iter
      (fun v value -> t.values <- Symbol.Map.add v value t.values)
      fields
  | _ -> assert false);
  t.senv <- Types.env_union t.senv delta;
  { bindings = describe_bindings t delta; warnings = List.rev !warnings }

let use t (uf : Pickle.Binfile.t) dynenv =
  t.senv <- Types.env_union t.senv uf.Pickle.Binfile.uf_env;
  t.imports <-
    Digestkit.Pid.Map.union (fun _ _ v -> Some v) t.imports dynenv
