(** A minimal JSON tree: enough to emit Chrome traces, metric dumps and
    bench reports, and to parse them back in tests.

    No dependency on third-party JSON libraries: the telemetry layer
    must stay a leaf so every other library can link against it. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string v] — compact (single-line) rendering.  Strings are
    escaped per RFC 8259; non-finite floats render as [null]. *)
val to_string : t -> string

(** [to_buffer buf v] — same, into an existing buffer. *)
val to_buffer : Buffer.t -> t -> unit

(** [to_canonical_string v] — like {!to_string} with every object's
    keys sorted (recursively): structurally equal documents render
    byte-identically.  Machine-readable envelopes (metric dumps, the
    profile report) emit through this, so their output is stable
    across runs and backends. *)
val to_canonical_string : t -> string

exception Parse_error of string

(** [parse s] — parse one JSON value (surrounding whitespace allowed).
    Raises {!Parse_error} on malformed input or trailing garbage. *)
val parse : string -> t

(** [member key v] — field lookup in an [Obj], [None] otherwise. *)
val member : string -> t -> t option
