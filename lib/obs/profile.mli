(** The persistent build profile store.

    Every build records, per unit: its outcome, the structured cause of
    its recompilation (with culprit imports), its scheduler timestamps,
    its per-phase compile durations, and the interface pids of its
    imports.  The store keeps a bounded history of whole builds plus a
    rolling per-unit aggregate (EWMA + max of compile time) across all
    builds — the duration feed a profile-guided critical-path scheduler
    needs (ROADMAP item 4), and the database behind [irm explain] and
    [irm profile].

    Persistence mirrors the cache index: a CRC-64-trailed snapshot
    ([<dir>/store]) plus a journal of CRC-prefixed build records
    ([<dir>/journal]), both written only through the atomic-commit
    protocol ({!Vfs.commit}).  A crash anywhere leaves a state that
    loads as a prefix of the true history; anything that fails its CRC
    or does not parse is dropped — a damaged store is an empty store,
    never an error. *)

(** One unit's record within one build. *)
type unit_profile = {
  up_unit : string;
  up_outcome : string;
      (** [recompiled], [cutoff], [cache], [loaded], [failed] or
          [skipped] *)
  up_cause : string option;
      (** why it was recompiled ([source-changed],
          [import-pid-changed], [evicted], [corrupt-entry],
          [first-build], [forced]); [None] for up-to-date units *)
  up_culprits : string list;
      (** for [import-pid-changed]: the imports whose pid changed; for
          [skipped]: the failed root *)
  up_start_s : float;  (** seconds after build start it was prepared *)
  up_wall_s : float;  (** staleness check to merged result *)
  up_phases : (string * float) list;
      (** per-phase compile seconds ([parse], [elaborate], …) *)
  up_imports : (string * string) list;
      (** (direct dependency, its interface pid in hex; [""] unknown) *)
  up_priority : float;
      (** the critical-path priority the scheduler dispatched under (0
          on wavefront builds; records from before scheduling existed
          read back as 0) *)
}

(** One whole build. *)
type build_profile = {
  bp_id : int;  (** monotonically increasing across the store's life *)
  bp_policy : string;
  bp_backend : string;
  bp_wall_s : float;
  bp_jobs : int;
  bp_slot_busy_s : float list;  (** execute seconds per scheduler slot *)
  bp_schedule : string;
      (** [wavefront] or [critical-path]; old records read back as
          [wavefront] *)
  bp_static_releases : int;
      (** units whose static view was released to dependents before
          their code generation finished *)
  bp_units : unit_profile list;  (** in build order *)
}

(** The rolling per-unit aggregate, fed only by actual compiles
    ([recompiled]/[cutoff] outcomes). *)
type agg = {
  ag_builds : int;  (** compiles aggregated *)
  ag_ewma_s : float;  (** exponentially weighted moving average *)
  ag_max_s : float;
  ag_last_s : float;
  ag_phases : (string * float) list;  (** per-phase EWMA seconds *)
}

type t

(** Default directory, [".irm-profile"]. *)
val default_dir : string

(** [load ?dir fs] — open the store rooted at [dir], replaying the
    snapshot and journal (damaged state degrades to empty). *)
val load : ?dir:string -> Vfs.fs -> t

(** The id the next recorded build will get. *)
val next_id : t -> int

(** [record t build] — append the build to the journal (crash-safely),
    fold it into the history and aggregates, and compact the journal
    into the snapshot when it has grown enough. *)
val record : t -> build_profile -> unit

(** Retained builds, oldest first. *)
val builds : t -> build_profile list

(** The most recent build, if any. *)
val last : t -> build_profile option

val find_unit : build_profile -> string -> unit_profile option

(** [aggregate t unit] — the unit's rolling compile-time aggregate. *)
val aggregate : t -> string -> agg option

(** [known t unit] — whether the store has ever seen [unit] produce a
    usable result; tells an [evicted] bin apart from a
    [first-build]. *)
val known : t -> string -> bool

(** On-disk size of the snapshot + journal, in bytes. *)
val store_bytes : t -> int

(** [critical_path b] — the import chain with the largest total unit
    wall time, dependency-first: the build's lower bound no matter how
    many slots run. *)
val critical_path : build_profile -> unit_profile list

(** [efficiency b] — busy slot-seconds over available slot-seconds in
    [0, 1]; [None] when the build recorded no wall time. *)
val efficiency : build_profile -> float option
