type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to buf f =
  if Float.is_finite f then begin
    let s = Printf.sprintf "%.12g" f in
    Buffer.add_string buf s;
    (* "1." or "1" are not but "1.0" is round-trippable JSON syntax *)
    if String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s then
      Buffer.add_string buf ".0"
  end
  else Buffer.add_string buf "null"

let rec to_buffer buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> float_to buf f
  | String s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf key;
        Buffer.add_char buf ':';
        to_buffer buf value)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* canonical form: object keys sorted recursively, so two structurally
   equal documents render byte-identically no matter how their field
   lists were assembled *)
let rec canonical v =
  match v with
  | Obj fields ->
    Obj
      (List.map (fun (k, v) -> (k, canonical v)) fields
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))
  | List items -> List (List.map canonical items)
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> v

let to_canonical_string v = to_string (canonical v)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some got when got = ch -> advance c
  | Some got -> fail "expected %c at offset %d, got %c" ch c.pos got
  | None -> fail "expected %c, got end of input" ch

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail "bad literal at offset %d" c.pos

let utf8_of_code buf code =
  (* enough for \uXXXX escapes: the BMP, no surrogate pairing *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
      | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
      | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
      | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
      | Some (('"' | '\\' | '/') as ch) -> advance c; Buffer.add_char buf ch; go ()
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.src then fail "truncated \\u escape";
        let hex = String.sub c.src c.pos 4 in
        c.pos <- c.pos + 4;
        (match int_of_string_opt ("0x" ^ hex) with
        | Some code -> utf8_of_code buf code
        | None -> fail "bad \\u escape %S" hex);
        go ()
      | Some ch -> fail "bad escape \\%c" ch
      | None -> fail "unterminated escape")
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  while match peek c with Some ch when is_num_char ch -> true | _ -> false do
    advance c
  done;
  let text = String.sub c.src start (c.pos - start) in
  match int_of_string_opt text with
  | Some n -> Int n
  | None -> (
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail "bad number %S at offset %d" text start)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [ parse_value c ] in
      skip_ws c;
      while peek c = Some ',' do
        advance c;
        items := parse_value c :: !items;
        skip_ws c
      done;
      expect c ']';
      List (List.rev !items)
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let value = parse_value c in
        (key, value)
      in
      let fields = ref [ field () ] in
      skip_ws c;
      while peek c = Some ',' do
        advance c;
        fields := field () :: !fields;
        skip_ws c
      done;
      expect c '}';
      Obj (List.rev !fields)
    end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail "unexpected %c at offset %d" ch c.pos

let parse s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail "trailing garbage at offset %d" c.pos;
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
