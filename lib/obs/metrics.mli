(** Named build metrics: monotonic counters and gauges.

    A metric is registered once by name ({!counter} and {!gauge} are
    idempotent) and lives for the whole process; instrumented modules
    keep the handle in a top-level binding so the hot path is a single
    mutable-field update.  {!reset} zeroes values between builds without
    losing registrations.

    The metric names used across the pipeline (see README,
    "Observability"):

    {v
    compile.units          units compiled (front end ran end to end)
    build.recompiled       units recompiled by the last IRM builds
    build.loaded           units loaded up to date from bin files
    build.cutoff_hits      recompiles whose interface pid was unchanged
    pickle.bytes_written   bin-file bytes produced
    pickle.bytes_read      bin-file bytes parsed
    pickle.rehydrations    environments rehydrated from bin files
    hash.pids              intrinsic interface pids computed
    simplify.passes        lambda-simplifier passes run
    simplify.rewrites      lambda nodes eliminated by the simplifier
    vm.instructions        bytecode VM instructions executed
    v} *)

type t

(** [counter name] — find or register a monotonic counter.
    Raises [Invalid_argument] if [name] is registered as a gauge. *)
val counter : string -> t

(** [gauge name] — find or register a gauge (free to move down).
    Raises [Invalid_argument] if [name] is registered as a counter. *)
val gauge : string -> t

val name : t -> string
val value : t -> int

val incr : t -> unit

(** [add m n] — raises [Invalid_argument] for negative [n] on a
    counter; counters are monotonic. *)
val add : t -> int -> unit

(** [set m v] — gauges only; raises [Invalid_argument] on a counter. *)
val set : t -> int -> unit

(** [find name] — current value of a registered metric. *)
val find : string -> int option

(** [snapshot ()] — all registered metrics, sorted by name. *)
val snapshot : unit -> (string * int) list

(** [reset ()] — zero every value; registrations survive. *)
val reset : unit -> unit

(** [to_json ()] — [{"metric name": value, ...}], sorted by name. *)
val to_json : unit -> Json.t

val pp : Format.formatter -> unit -> unit
