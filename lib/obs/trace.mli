(** Phase-level tracing: nestable timed spans over the whole pipeline.

    Tracing is off by default and a disabled {!span} is a no-op wrapper
    around its thunk — no clock reads, no allocation beyond the closure
    at the call site — so instrumentation can stay in hot paths
    permanently.  When enabled, completed spans accumulate in memory;
    {!to_chrome} renders them in Chrome [trace_event] format (load the
    file in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto})
    and {!pp_tree} as an indented tree with durations for terminals. *)

type event = {
  ev_name : string;
  ev_cat : string;  (** Chrome-trace category, e.g. ["compile"] *)
  ev_start_us : float;  (** microseconds since {!enable} *)
  ev_dur_us : float;
  ev_depth : int;  (** nesting depth at entry; 0 = top level *)
  ev_args : (string * string) list;
}

val enable : unit -> unit
(** Start collecting; clears previously collected spans. *)

val disable : unit -> unit
val enabled : unit -> bool

(** [reset ()] — drop collected spans (tracing stays enabled/disabled
    as it was); re-bases the trace clock. *)
val reset : unit -> unit

(** [span ?cat ?args name f] — run [f ()] inside a timed span.  The
    span is recorded even when [f] raises (and the exception is
    re-raised).  When tracing is disabled this is exactly [f ()]. *)
val span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** [instant ?cat ?args name] — a zero-duration marker. *)
val instant : ?cat:string -> ?args:(string * string) list -> string -> unit

(** [events ()] — completed spans in chronological (entry) order. *)
val events : unit -> event list

(** [to_chrome ()] — the collected trace as a Chrome [trace_event]
    JSON object: [{"traceEvents": [...], "displayTimeUnit": "ms"}],
    one complete ("ph":"X") event per span. *)
val to_chrome : unit -> Json.t

(** [write_chrome path] — [to_chrome], serialized to [path]. *)
val write_chrome : string -> unit

(** [pp_tree ppf ()] — spans as an indented tree with durations. *)
val pp_tree : Format.formatter -> unit -> unit
