(** Phase-level tracing: nestable timed spans over the whole pipeline.

    Tracing is off by default and a disabled {!span} is a no-op wrapper
    around its thunk — no clock reads, no allocation beyond the closure
    at the call site — so instrumentation can stay in hot paths
    permanently.  When enabled, completed spans accumulate in memory;
    {!to_chrome} renders them in Chrome [trace_event] format (load the
    file in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto})
    and {!pp_tree} as an indented tree with durations for terminals.

    Spans carry a (pid, tid) pair: tid is the recording domain, pid 0
    means "this process".  Worker children record into their own buffer
    and ship it to the supervisor over the frame IPC ({!drain_wire} /
    {!inject}), which re-bases their clock by the epoch offset
    exchanged at the handshake and tags them with the child's OS pid —
    so one Chrome trace spans the parent, its domains, and every child,
    including crashed ones. *)

type event = {
  ev_name : string;
  ev_cat : string;  (** Chrome-trace category, e.g. ["compile"] *)
  ev_start_us : float;  (** microseconds since {!enable} *)
  ev_dur_us : float;
  ev_depth : int;  (** nesting depth at entry; 0 = top level *)
  ev_pid : int;  (** 0 = this process; a worker child's OS pid *)
  ev_tid : int;  (** the recording domain's id *)
  ev_args : (string * string) list;
}

val enable : unit -> unit
(** Start collecting; clears previously collected spans. *)

val disable : unit -> unit
val enabled : unit -> bool

(** [reset ()] — drop collected spans (tracing stays enabled/disabled
    as it was); re-bases the trace clock. *)
val reset : unit -> unit

(** [set_cap n] — keep only the most recent [n] completed spans,
    dropping the oldest as new ones land; [0] (the default) is
    unbounded.  A long-running daemon sets a cap so its trace buffer
    cannot grow without limit across thousands of requests. *)
val set_cap : int -> unit

(** [epoch_s ()] — the trace clock's origin, in [Unix.gettimeofday]
    seconds.  Exchanged at the worker handshake so the supervisor can
    correct a child's clock offset. *)
val epoch_s : unit -> float

(** [span ?cat ?args name f] — run [f ()] inside a timed span.  The
    span is recorded even when [f] raises (and the exception is
    re-raised).  When tracing is disabled this is exactly [f ()]
    (unless a {!record_phases} collector is active on this domain). *)
val span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** [instant ?cat ?args name] — a zero-duration marker. *)
val instant : ?cat:string -> ?args:(string * string) list -> string -> unit

(** [record_span ?cat ?args ~start_s name f] — record a span after the
    fact: it started at [start_s] (absolute [Unix.gettimeofday]
    seconds) and ends now.  Used by the worker supervisor to stand in a
    [truncated] span for a job whose child died before flushing. *)
val record_span :
  ?cat:string -> ?args:(string * string) list -> start_s:float -> string -> unit

(** [record_phases f] — run [f ()] collecting the (name, seconds) of
    every span that completes inside it on this domain, {e whether or
    not} tracing is enabled; repeated names are summed.  Collectors
    nest (the innermost wins).  This is how compile jobs report
    per-phase durations to the profile store on untraced builds. *)
val record_phases : (unit -> 'a) -> 'a * (string * float) list

(** [events ()] — completed spans in chronological order (by start
    time, entry order breaking ties). *)
val events : unit -> event list

(** [drain_wire ()] — remove every completed event and serialize the
    batch for the frame IPC ([""] when empty).  Called in worker
    children to flush their buffer to the supervisor. *)
val drain_wire : unit -> string

(** [inject ~pid ~offset_us wire] — parse a {!drain_wire} batch from a
    child, shift every timestamp by [offset_us] (the child/parent epoch
    difference), tag the events with the child's [pid], and append them
    to this process's trace.  Returns the number of events injected;
    malformed input injects nothing (a misbehaving child must not break
    the build).  No-op when tracing is disabled. *)
val inject : pid:int -> offset_us:float -> string -> int

(** [to_chrome ()] — the collected trace as a Chrome [trace_event]
    JSON object: [{"traceEvents": [...], "displayTimeUnit": "ms"}],
    one complete ("ph":"X") event per span.  Events carry their
    process's pid (1 for this process) and domain tid. *)
val to_chrome : unit -> Json.t

(** [write_chrome path] — [to_chrome], serialized to [path]. *)
val write_chrome : string -> unit

(** [pp_tree ppf ()] — spans as an indented tree with durations. *)
val pp_tree : Format.formatter -> unit -> unit
