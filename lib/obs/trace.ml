type event = {
  ev_name : string;
  ev_cat : string;
  ev_start_us : float;
  ev_dur_us : float;
  ev_depth : int;
  ev_args : (string * string) list;
}

(* entry order doubles as chronology: the clock may be too coarse to
   order back-to-back spans, a sequence number is not *)
type pending = { p_event : event; p_seq : int }

(* Spans may be opened from worker domains during parallel builds: the
   sequence counter is atomic, the completed list is locked, and the
   nesting depth is domain-local so each domain's spans indent
   against their own stack. *)
let on = Atomic.make false
let epoch = ref 0.0
let depth_key = Domain.DLS.new_key (fun () -> ref 0)
let next_seq = Atomic.make 0
let lock = Mutex.create ()
let completed : pending list ref = ref [] (* reverse completion order *)

let enabled () = Atomic.get on

let now_us () = (Unix.gettimeofday () -. !epoch) *. 1e6

let reset () =
  Mutex.protect lock (fun () -> completed := []);
  Domain.DLS.get depth_key := 0;
  Atomic.set next_seq 0;
  epoch := Unix.gettimeofday ()

let enable () =
  reset ();
  Atomic.set on true

let disable () = Atomic.set on false

let record ev seq =
  Mutex.protect lock (fun () ->
      completed := { p_event = ev; p_seq = seq } :: !completed)

let span ?(cat = "") ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let seq = Atomic.fetch_and_add next_seq 1 in
    let start = now_us () in
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    depth := d + 1;
    let finish () =
      depth := d;
      record
        {
          ev_name = name;
          ev_cat = cat;
          ev_start_us = start;
          ev_dur_us = now_us () -. start;
          ev_depth = d;
          ev_args = args;
        }
        seq
    in
    match f () with
    | result ->
      finish ();
      result
    | exception exn ->
      finish ();
      raise exn
  end

let instant ?(cat = "") ?(args = []) name =
  if Atomic.get on then begin
    let seq = Atomic.fetch_and_add next_seq 1 in
    record
      {
        ev_name = name;
        ev_cat = cat;
        ev_start_us = now_us ();
        ev_dur_us = 0.0;
        ev_depth = !(Domain.DLS.get depth_key);
        ev_args = args;
      }
      seq
  end

let events () =
  let pending = Mutex.protect lock (fun () -> !completed) in
  List.sort (fun a b -> compare a.p_seq b.p_seq) pending
  |> List.map (fun p -> p.p_event)

let chrome_event ev =
  let base =
    [
      ("name", Json.String ev.ev_name);
      ("cat", Json.String (if ev.ev_cat = "" then "smlsep" else ev.ev_cat));
      ("ph", Json.String (if ev.ev_dur_us = 0.0 then "i" else "X"));
      ("ts", Json.Float ev.ev_start_us);
      ("dur", Json.Float ev.ev_dur_us);
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
    ]
  in
  let args =
    match ev.ev_args with
    | [] -> []
    | args ->
      [
        ( "args",
          Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) args) );
      ]
  in
  Json.Obj (base @ args)

let to_chrome () =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map chrome_event (events ())));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_chrome path =
  let oc = open_out_bin path in
  output_string oc (Json.to_string (to_chrome ()));
  output_char oc '\n';
  close_out oc

let pp_tree ppf () =
  List.iter
    (fun ev ->
      Format.fprintf ppf "%s%-*s %8.3f ms%s@."
        (String.make (2 * ev.ev_depth) ' ')
        (max 1 (32 - (2 * ev.ev_depth)))
        ev.ev_name (ev.ev_dur_us /. 1000.)
        (match ev.ev_args with
        | [] -> ""
        | args ->
          "  ["
          ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) args)
          ^ "]"))
    (events ())
