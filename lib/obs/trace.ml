type event = {
  ev_name : string;
  ev_cat : string;
  ev_start_us : float;
  ev_dur_us : float;
  ev_depth : int;
  ev_pid : int; (* 0 = this process; a worker child's OS pid otherwise *)
  ev_tid : int;
  ev_args : (string * string) list;
}

(* the clock may be too coarse to order back-to-back spans, a sequence
   number is not: events sort by (start, seq), so same-process spans
   keep their entry order and injected child events interleave by
   timestamp *)
type pending = { p_event : event; p_seq : int }

(* Spans may be opened from worker domains during parallel builds: the
   sequence counter is atomic, the completed list is locked, and the
   nesting depth is domain-local so each domain's spans indent
   against their own stack. *)
let on = Atomic.make false
let epoch = ref 0.0
let depth_key = Domain.DLS.new_key (fun () -> ref 0)
let next_seq = Atomic.make 0
let lock = Mutex.create ()
let completed : pending list ref = ref [] (* reverse completion order *)

(* a long-running daemon traces forever: bound the buffer so it holds
   the most recent [cap] events instead of growing without limit.
   0 = unbounded (the one-shot CLI default). *)
let cap = Atomic.make 0
let buffered = ref 0 (* length of [completed]; guarded by [lock] *)

let set_cap n = Atomic.set cap (max 0 n)

let trim_locked () =
  let c = Atomic.get cap in
  if c > 0 && !buffered > c then begin
    (* [completed] is newest-first: keep the first [c] *)
    let rec take n = function
      | x :: tl when n > 0 -> x :: take (n - 1) tl
      | _ -> []
    in
    completed := take c !completed;
    buffered := c
  end

let enabled () = Atomic.get on
let epoch_s () = !epoch

let now_us () = (Unix.gettimeofday () -. !epoch) *. 1e6

let reset () =
  Mutex.protect lock (fun () ->
      completed := [];
      buffered := 0);
  Domain.DLS.get depth_key := 0;
  Atomic.set next_seq 0;
  epoch := Unix.gettimeofday ()

let enable () =
  reset ();
  Atomic.set on true

let disable () = Atomic.set on false

let record ev seq =
  Mutex.protect lock (fun () ->
      completed := { p_event = ev; p_seq = seq } :: !completed;
      incr buffered;
      trim_locked ())

let tid () = (Domain.self () :> int)

(* ------------------------------------------------------------------ *)
(* Phase collection                                                    *)
(*                                                                     *)
(* [record_phases] captures the (name, duration) of every span that    *)
(* completes inside its thunk even when tracing is globally off — the  *)
(* profile store needs per-phase durations on every build, not only    *)
(* traced ones.  The collector is domain-local, so a compile running   *)
(* on a worker domain observes exactly its own spans.                  *)
(* ------------------------------------------------------------------ *)

let phases_key :
    (string * float) list ref option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let note_phase name dur_s =
  match !(Domain.DLS.get phases_key) with
  | None -> ()
  | Some acc -> acc := (name, dur_s) :: !acc

let record_phases f =
  let cell = Domain.DLS.get phases_key in
  let saved = !cell in
  let acc = ref [] in
  cell := Some acc;
  match f () with
  | result ->
    cell := saved;
    (* aggregate repeated phase names, first-seen order *)
    let order = ref [] and sums = Hashtbl.create 8 in
    List.iter
      (fun (name, dur) ->
        (match Hashtbl.find_opt sums name with
        | None ->
          order := name :: !order;
          Hashtbl.add sums name dur
        | Some prev -> Hashtbl.replace sums name (prev +. dur)))
      (List.rev !acc);
    (result, List.rev_map (fun name -> (name, Hashtbl.find sums name)) !order)
  | exception exn ->
    cell := saved;
    raise exn

let span ?(cat = "") ?(args = []) name f =
  let collecting = !(Domain.DLS.get phases_key) <> None in
  let tracing = Atomic.get on in
  if not (tracing || collecting) then f ()
  else begin
    let seq = if tracing then Atomic.fetch_and_add next_seq 1 else 0 in
    let start = now_us () in
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    depth := d + 1;
    let finish () =
      depth := d;
      let dur_us = now_us () -. start in
      if collecting then note_phase name (dur_us /. 1e6);
      if tracing then
        record
          {
            ev_name = name;
            ev_cat = cat;
            ev_start_us = start;
            ev_dur_us = dur_us;
            ev_depth = d;
            ev_pid = 0;
            ev_tid = tid ();
            ev_args = args;
          }
          seq
    in
    match f () with
    | result ->
      finish ();
      result
    | exception exn ->
      finish ();
      raise exn
  end

let instant ?(cat = "") ?(args = []) name =
  if Atomic.get on then begin
    let seq = Atomic.fetch_and_add next_seq 1 in
    record
      {
        ev_name = name;
        ev_cat = cat;
        ev_start_us = now_us ();
        ev_dur_us = 0.0;
        ev_depth = !(Domain.DLS.get depth_key);
        ev_pid = 0;
        ev_tid = tid ();
        ev_args = args;
      }
      seq
  end

(* a span whose start was observed out of band (a worker job the
   supervisor watched die): recorded after the fact, ending now *)
let record_span ?(cat = "") ?(args = []) ~start_s name =
  if Atomic.get on then begin
    let seq = Atomic.fetch_and_add next_seq 1 in
    let start_us = (start_s -. !epoch) *. 1e6 in
    record
      {
        ev_name = name;
        ev_cat = cat;
        ev_start_us = start_us;
        ev_dur_us = Float.max 0.0 (now_us () -. start_us);
        ev_depth = 0;
        ev_pid = 0;
        ev_tid = tid ();
        ev_args = args;
      }
      seq
  end

let events () =
  let pending = Mutex.protect lock (fun () -> !completed) in
  List.sort
    (fun a b ->
      match compare a.p_event.ev_start_us b.p_event.ev_start_us with
      | 0 -> compare a.p_seq b.p_seq
      | c -> c)
    pending
  |> List.map (fun p -> p.p_event)

(* ------------------------------------------------------------------ *)
(* Cross-process transport                                             *)
(*                                                                     *)
(* Worker children buffer events exactly like the parent and ship them *)
(* over the frame IPC as a JSON array ([lib/obs] cannot use            *)
(* [Pickle.Buf]: pickle depends on obs).  The parent re-bases their    *)
(* clocks by the epoch offset exchanged at the HELLO handshake and     *)
(* tags them with the child's OS pid.                                  *)
(* ------------------------------------------------------------------ *)

let wire_event ev =
  Json.Obj
    [
      ("name", Json.String ev.ev_name);
      ("cat", Json.String ev.ev_cat);
      ("ts", Json.Float ev.ev_start_us);
      ("dur", Json.Float ev.ev_dur_us);
      ("depth", Json.Int ev.ev_depth);
      ("tid", Json.Int ev.ev_tid);
      ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) ev.ev_args));
    ]

(* remove and serialize every completed event (oldest first); [""] when
   there is nothing to ship *)
let drain_wire () =
  let drained =
    Mutex.protect lock (fun () ->
        let evs = !completed in
        completed := [];
        buffered := 0;
        evs)
  in
  match drained with
  | [] -> ""
  | evs ->
    let evs =
      List.sort (fun a b -> compare a.p_seq b.p_seq) evs
      |> List.map (fun p -> p.p_event)
    in
    Json.to_string (Json.List (List.map wire_event evs))

let num_of = function
  | Some (Json.Float f) -> f
  | Some (Json.Int n) -> float_of_int n
  | _ -> 0.0

let int_of = function Some (Json.Int n) -> n | _ -> 0

let str_of = function Some (Json.String s) -> s | _ -> ""

let inject ~pid ~offset_us wire =
  if wire = "" || not (Atomic.get on) then 0
  else
    match Json.parse wire with
    | Json.List items ->
      List.iter
        (fun item ->
          let args =
            match Json.member "args" item with
            | Some (Json.Obj fields) ->
              List.filter_map
                (fun (k, v) ->
                  match v with Json.String s -> Some (k, s) | _ -> None)
                fields
            | _ -> []
          in
          record
            {
              ev_name = str_of (Json.member "name" item);
              ev_cat = str_of (Json.member "cat" item);
              ev_start_us = num_of (Json.member "ts" item) +. offset_us;
              ev_dur_us = num_of (Json.member "dur" item);
              ev_depth = int_of (Json.member "depth" item);
              ev_pid = pid;
              ev_tid = int_of (Json.member "tid" item);
              ev_args = args;
            }
            (Atomic.fetch_and_add next_seq 1))
        items;
      List.length items
    | _ -> 0
    | exception Json.Parse_error _ -> 0

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let chrome_event ev =
  let base =
    [
      ("name", Json.String ev.ev_name);
      ("cat", Json.String (if ev.ev_cat = "" then "smlsep" else ev.ev_cat));
      ("ph", Json.String (if ev.ev_dur_us = 0.0 then "i" else "X"));
      ("ts", Json.Float ev.ev_start_us);
      ("dur", Json.Float ev.ev_dur_us);
      ("pid", Json.Int (if ev.ev_pid = 0 then 1 else ev.ev_pid));
      ("tid", Json.Int (ev.ev_tid + 1));
    ]
  in
  let args =
    match ev.ev_args with
    | [] -> []
    | args ->
      [
        ( "args",
          Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) args) );
      ]
  in
  Json.Obj (base @ args)

let to_chrome () =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map chrome_event (events ())));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_chrome path =
  let oc = open_out_bin path in
  output_string oc (Json.to_string (to_chrome ()));
  output_char oc '\n';
  close_out oc

let pp_tree ppf () =
  List.iter
    (fun ev ->
      Format.fprintf ppf "%s%-*s %8.3f ms%s@."
        (String.make (2 * ev.ev_depth) ' ')
        (max 1 (32 - (2 * ev.ev_depth)))
        ev.ev_name (ev.ev_dur_us /. 1000.)
        (match ev.ev_args with
        | [] -> ""
        | args ->
          "  ["
          ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) args)
          ^ "]"))
    (events ())
