type event = {
  ev_name : string;
  ev_cat : string;
  ev_start_us : float;
  ev_dur_us : float;
  ev_depth : int;
  ev_args : (string * string) list;
}

(* entry order doubles as chronology: the clock may be too coarse to
   order back-to-back spans, a sequence number is not *)
type pending = { p_event : event; p_seq : int }

let on = ref false
let epoch = ref 0.0
let depth = ref 0
let next_seq = ref 0
let completed : pending list ref = ref [] (* reverse completion order *)

let enabled () = !on

let now_us () = (Unix.gettimeofday () -. !epoch) *. 1e6

let reset () =
  completed := [];
  depth := 0;
  next_seq := 0;
  epoch := Unix.gettimeofday ()

let enable () =
  reset ();
  on := true

let disable () = on := false

let record ev seq = completed := { p_event = ev; p_seq = seq } :: !completed

let span ?(cat = "") ?(args = []) name f =
  if not !on then f ()
  else begin
    let seq = !next_seq in
    Stdlib.incr next_seq;
    let start = now_us () in
    let d = !depth in
    depth := d + 1;
    let finish () =
      depth := d;
      record
        {
          ev_name = name;
          ev_cat = cat;
          ev_start_us = start;
          ev_dur_us = now_us () -. start;
          ev_depth = d;
          ev_args = args;
        }
        seq
    in
    match f () with
    | result ->
      finish ();
      result
    | exception exn ->
      finish ();
      raise exn
  end

let instant ?(cat = "") ?(args = []) name =
  if !on then begin
    let seq = !next_seq in
    Stdlib.incr next_seq;
    record
      {
        ev_name = name;
        ev_cat = cat;
        ev_start_us = now_us ();
        ev_dur_us = 0.0;
        ev_depth = !depth;
        ev_args = args;
      }
      seq
  end

let events () =
  List.sort (fun a b -> compare a.p_seq b.p_seq) !completed
  |> List.map (fun p -> p.p_event)

let chrome_event ev =
  let base =
    [
      ("name", Json.String ev.ev_name);
      ("cat", Json.String (if ev.ev_cat = "" then "smlsep" else ev.ev_cat));
      ("ph", Json.String (if ev.ev_dur_us = 0.0 then "i" else "X"));
      ("ts", Json.Float ev.ev_start_us);
      ("dur", Json.Float ev.ev_dur_us);
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
    ]
  in
  let args =
    match ev.ev_args with
    | [] -> []
    | args ->
      [
        ( "args",
          Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) args) );
      ]
  in
  Json.Obj (base @ args)

let to_chrome () =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map chrome_event (events ())));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_chrome path =
  let oc = open_out_bin path in
  output_string oc (Json.to_string (to_chrome ()));
  output_char oc '\n';
  close_out oc

let pp_tree ppf () =
  List.iter
    (fun ev ->
      Format.fprintf ppf "%s%-*s %8.3f ms%s@."
        (String.make (2 * ev.ev_depth) ' ')
        (max 1 (32 - (2 * ev.ev_depth)))
        ev.ev_name (ev.ev_dur_us /. 1000.)
        (match ev.ev_args with
        | [] -> ""
        | args ->
          "  ["
          ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) args)
          ^ "]"))
    (events ())
