module Crc64 = Digestkit.Crc64

let default_dir = ".irm-profile"
let version = "smlsep-profile-store/1"

(* bounded history: builds retained in full; older ones survive only in
   the per-unit aggregates *)
let history_limit = 16

(* compact the journal into the snapshot past this many appended builds *)
let journal_limit = 8

(* EWMA smoothing: how fast the rolling estimate chases the last build *)
let alpha = 0.3

type unit_profile = {
  up_unit : string;
  up_outcome : string;
      (** recompiled | cutoff | cache | loaded | failed | skipped *)
  up_cause : string option;  (** structured rebuild cause, stale units only *)
  up_culprits : string list;
  up_start_s : float;  (** seconds after build start the unit was prepared *)
  up_wall_s : float;
  up_phases : (string * float) list;
  up_imports : (string * string) list;  (** (dep, interface pid hex) *)
  up_priority : float;
      (** the critical-path priority the scheduler dispatched under
          (0 on wavefront builds and for pre-scheduling records) *)
}

type build_profile = {
  bp_id : int;
  bp_policy : string;
  bp_backend : string;
  bp_wall_s : float;
  bp_jobs : int;
  bp_slot_busy_s : float list;
  bp_schedule : string;  (** [wavefront] or [critical-path] *)
  bp_static_releases : int;
      (** units whose static view was released before codegen finished *)
  bp_units : unit_profile list;
}

type agg = {
  ag_builds : int;  (** compiles aggregated (recompiled or cutoff) *)
  ag_ewma_s : float;
  ag_max_s : float;
  ag_last_s : float;
  ag_phases : (string * float) list;  (** per-phase EWMA seconds *)
}

type t = {
  fs : Vfs.fs;
  dir : string;
  mutable next_id : int;
  mutable builds : build_profile list;  (** newest first, bounded *)
  aggregates : (string, agg) Hashtbl.t;
  mutable journal : string;
  mutable journal_records : int;
}

let store_path t = Filename.concat t.dir "store"
let journal_path t = Filename.concat t.dir "journal"

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

exception Damaged

let jstr = function Json.String s -> s | _ -> raise Damaged
let jint = function Json.Int n -> n | _ -> raise Damaged

let jnum = function
  | Json.Float f -> f
  | Json.Int n -> float_of_int n
  | _ -> raise Damaged

let jlist = function Json.List l -> l | _ -> raise Damaged
let jobj = function Json.Obj fields -> fields | _ -> raise Damaged

let field name v =
  match Json.member name v with Some x -> x | None -> raise Damaged

(* fields added after stores already existed read back with a default,
   so an old snapshot/journal replays without damage *)
let opt_field name ~default of_json v =
  match Json.member name v with Some x -> of_json x | None -> default

let pairs_json xs = Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) xs)
let pairs_of_json v = List.map (fun (k, v) -> (k, jnum v)) (jobj v)

let unit_json u =
  Json.Obj
    [
      ("name", Json.String u.up_unit);
      ("outcome", Json.String u.up_outcome);
      ( "cause",
        match u.up_cause with Some c -> Json.String c | None -> Json.Null );
      ("culprits", Json.List (List.map (fun c -> Json.String c) u.up_culprits));
      ("start_s", Json.Float u.up_start_s);
      ("wall_s", Json.Float u.up_wall_s);
      ("phases", pairs_json u.up_phases);
      ( "imports",
        Json.Obj (List.map (fun (d, p) -> (d, Json.String p)) u.up_imports) );
      ("priority", Json.Float u.up_priority);
    ]

let unit_of_json v =
  {
    up_unit = jstr (field "name" v);
    up_outcome = jstr (field "outcome" v);
    up_cause =
      (match field "cause" v with
      | Json.Null -> None
      | Json.String c -> Some c
      | _ -> raise Damaged);
    up_culprits = List.map jstr (jlist (field "culprits" v));
    up_start_s = jnum (field "start_s" v);
    up_wall_s = jnum (field "wall_s" v);
    up_phases = pairs_of_json (field "phases" v);
    up_imports = List.map (fun (d, p) -> (d, jstr p)) (jobj (field "imports" v));
    up_priority = opt_field "priority" ~default:0. jnum v;
  }

let build_json b =
  Json.Obj
    [
      ("id", Json.Int b.bp_id);
      ("policy", Json.String b.bp_policy);
      ("backend", Json.String b.bp_backend);
      ("wall_s", Json.Float b.bp_wall_s);
      ("jobs", Json.Int b.bp_jobs);
      ("slot_busy_s", Json.List (List.map (fun s -> Json.Float s) b.bp_slot_busy_s));
      ("schedule", Json.String b.bp_schedule);
      ("static_releases", Json.Int b.bp_static_releases);
      ("units", Json.List (List.map unit_json b.bp_units));
    ]

let build_of_json v =
  {
    bp_id = jint (field "id" v);
    bp_policy = jstr (field "policy" v);
    bp_backend = jstr (field "backend" v);
    bp_wall_s = jnum (field "wall_s" v);
    bp_jobs = jint (field "jobs" v);
    bp_slot_busy_s = List.map jnum (jlist (field "slot_busy_s" v));
    bp_schedule = opt_field "schedule" ~default:"wavefront" jstr v;
    bp_static_releases = opt_field "static_releases" ~default:0 jint v;
    bp_units = List.map unit_of_json (jlist (field "units" v));
  }

let agg_json a =
  Json.Obj
    [
      ("builds", Json.Int a.ag_builds);
      ("ewma_s", Json.Float a.ag_ewma_s);
      ("max_s", Json.Float a.ag_max_s);
      ("last_s", Json.Float a.ag_last_s);
      ("phases", pairs_json a.ag_phases);
    ]

let agg_of_json v =
  {
    ag_builds = jint (field "builds" v);
    ag_ewma_s = jnum (field "ewma_s" v);
    ag_max_s = jnum (field "max_s" v);
    ag_last_s = jnum (field "last_s" v);
    ag_phases = pairs_of_json (field "phases" v);
  }

(* ------------------------------------------------------------------ *)
(* Persistence: CRC-trailed snapshot + journal, like the cache index   *)
(*                                                                     *)
(* The snapshot ([store]) is two lines — the state as canonical JSON,  *)
(* then the CRC-64 of that line; the journal is one line per recorded  *)
(* build, each [crc64-hex SP build-json].  Both files are only ever    *)
(* written through the atomic-commit protocol, so a crash leaves       *)
(* either the old or the new content in full.  Anything that fails its *)
(* CRC or does not parse is dropped: a damaged store degrades to an    *)
(* empty history, never an error.                                      *)
(* ------------------------------------------------------------------ *)

let crc_hex s = Printf.sprintf "%Lx" (Crc64.of_string s)

let rolled_agg prev wall_s phases =
  match prev with
  | None ->
    {
      ag_builds = 1;
      ag_ewma_s = wall_s;
      ag_max_s = wall_s;
      ag_last_s = wall_s;
      ag_phases = phases;
    }
  | Some a ->
    let roll old now = ((1.0 -. alpha) *. old) +. (alpha *. now) in
    let phase_ewma =
      (* phases seen before roll; brand-new phases enter at face value *)
      let prev_tbl = Hashtbl.create 8 in
      List.iter (fun (n, v) -> Hashtbl.replace prev_tbl n v) a.ag_phases;
      List.map
        (fun (n, now) ->
          match Hashtbl.find_opt prev_tbl n with
          | Some old -> (n, roll old now)
          | None -> (n, now))
        phases
    in
    {
      ag_builds = a.ag_builds + 1;
      ag_ewma_s = roll a.ag_ewma_s wall_s;
      ag_max_s = Float.max a.ag_max_s wall_s;
      ag_last_s = wall_s;
      ag_phases = phase_ewma;
    }

(* only actual compiles feed the rolling estimate: loads and cache hits
   say nothing about how long the unit takes to compile *)
let apply_build t b =
  t.next_id <- max t.next_id (b.bp_id + 1);
  t.builds <-
    (let kept = b :: t.builds in
     List.filteri (fun i _ -> i < history_limit) kept);
  List.iter
    (fun u ->
      match u.up_outcome with
      | "recompiled" | "cutoff" ->
        Hashtbl.replace t.aggregates u.up_unit
          (rolled_agg (Hashtbl.find_opt t.aggregates u.up_unit) u.up_wall_s
             u.up_phases)
      | _ -> ())
    b.bp_units

let snapshot_content t =
  let state =
    Json.Obj
      [
        ("version", Json.String version);
        ("next_id", Json.Int t.next_id);
        ( "aggregates",
          Json.Obj
            (Hashtbl.fold (fun u a acc -> (u, agg_json a) :: acc) t.aggregates []
            |> List.sort (fun (a, _) (b, _) -> String.compare a b)) );
        ("builds", Json.List (List.rev_map build_json t.builds));
      ]
  in
  let line = Json.to_canonical_string state in
  line ^ "\n" ^ crc_hex line ^ "\n"

let load_snapshot t =
  match t.fs.Vfs.fs_read (store_path t) with
  | None -> ()
  | Some content -> (
    match String.split_on_char '\n' content with
    | line :: crc :: _ when String.trim crc = crc_hex line -> (
      try
        let v = Json.parse line in
        if jstr (field "version" v) <> version then raise Damaged;
        t.next_id <- max 1 (jint (field "next_id" v));
        List.iter
          (fun (u, a) -> Hashtbl.replace t.aggregates u (agg_of_json a))
          (jobj (field "aggregates" v));
        (* snapshot stores oldest first; [builds] is newest first *)
        t.builds <- List.rev_map build_of_json (jlist (field "builds" v))
      with Damaged | Json.Parse_error _ ->
        t.next_id <- 1;
        t.builds <- [];
        Hashtbl.reset t.aggregates)
    | _ -> ())

let load_journal t =
  match t.fs.Vfs.fs_read (journal_path t) with
  | None -> ()
  | Some content ->
    let lines = String.split_on_char '\n' content in
    List.iter
      (fun line ->
        match String.index_opt line ' ' with
        | Some sp ->
          let crc = String.sub line 0 sp in
          let body = String.sub line (sp + 1) (String.length line - sp - 1) in
          if String.equal crc (crc_hex body) then (
            try apply_build t (build_of_json (Json.parse body))
            with Damaged | Json.Parse_error _ -> ())
        | None -> ())
      lines;
    t.journal <- content;
    t.journal_records <- List.length lines

let load ?(dir = default_dir) fs =
  let t =
    {
      fs;
      dir;
      next_id = 1;
      builds = [];
      aggregates = Hashtbl.create 32;
      journal = "";
      journal_records = 0;
    }
  in
  load_snapshot t;
  load_journal t;
  t

(* write the snapshot, then retire the journal; a crash in between is
   safe — replaying the old journal over the new snapshot is idempotent
   (same build ids, same aggregates... applied twice would double the
   EWMA roll, so replay guards on the id being new) *)
let compact t =
  Vfs.commit t.fs (store_path t) (snapshot_content t);
  t.fs.Vfs.fs_remove (journal_path t);
  t.journal <- "";
  t.journal_records <- 0

let record t b =
  let line = Json.to_canonical_string (build_json b) in
  let next = t.journal ^ crc_hex line ^ " " ^ line ^ "\n" in
  Vfs.commit t.fs (journal_path t) next;
  t.journal <- next;
  t.journal_records <- t.journal_records + 1;
  apply_build t b;
  if t.journal_records > journal_limit then compact t

let next_id t = t.next_id
let last t = match t.builds with [] -> None | b :: _ -> Some b
let builds t = List.rev t.builds
let aggregate t unit_ = Hashtbl.find_opt t.aggregates unit_

(* has the store ever seen this unit produce a result?  (used to tell
   an [evicted] bin apart from a [first-build]) *)
let known t unit_ =
  Hashtbl.mem t.aggregates unit_
  || List.exists
       (fun b ->
         List.exists
           (fun u ->
             String.equal u.up_unit unit_
             && (match u.up_outcome with
                | "recompiled" | "cutoff" | "cache" | "loaded" -> true
                | _ -> false))
           b.bp_units)
       t.builds

let store_bytes t =
  let size path =
    match t.fs.Vfs.fs_read path with Some s -> String.length s | None -> 0
  in
  size (store_path t) + size (journal_path t)

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let find_unit b name =
  List.find_opt (fun u -> String.equal u.up_unit name) b.bp_units

(* the longest wall-clock chain through the build's import DAG: what
   bounds the build below no matter how many slots run *)
let critical_path b =
  let by_name = Hashtbl.create 32 in
  List.iter (fun u -> Hashtbl.replace by_name u.up_unit u) b.bp_units;
  let memo : (string, float * unit_profile list) Hashtbl.t =
    Hashtbl.create 32
  in
  let rec chain u =
    match Hashtbl.find_opt memo u.up_unit with
    | Some c -> c
    | None ->
      (* builds come from a DAG, so recursion terminates; seed the memo
         to be safe against a damaged store with an import cycle *)
      Hashtbl.replace memo u.up_unit (u.up_wall_s, [ u ]);
      let best =
        List.fold_left
          (fun acc (dep, _) ->
            match Hashtbl.find_opt by_name dep with
            | Some d when not (String.equal d.up_unit u.up_unit) ->
              let total, path = chain d in
              (match acc with
              | Some (best_total, _) when best_total >= total -> acc
              | _ -> Some (total, path))
            | Some _ | None -> acc)
          None u.up_imports
      in
      let c =
        match best with
        | None -> (u.up_wall_s, [ u ])
        | Some (total, path) -> (total +. u.up_wall_s, path @ [ u ])
      in
      Hashtbl.replace memo u.up_unit c;
      c
  in
  let best =
    List.fold_left
      (fun acc u ->
        let total, path = chain u in
        match acc with
        | Some (best_total, _) when best_total >= total -> acc
        | _ -> Some (total, path))
      None b.bp_units
  in
  match best with None -> [] | Some (_, path) -> path

(* busy slot-seconds over available slot-seconds: 1.0 means every slot
   compiled the whole time, low values mean the DAG (or the tail) left
   slots idle *)
let efficiency b =
  let busy = List.fold_left ( +. ) 0.0 b.bp_slot_busy_s in
  let total = float_of_int (max 1 b.bp_jobs) *. b.bp_wall_s in
  if total <= 0.0 then None else Some (Float.min 1.0 (busy /. total))
