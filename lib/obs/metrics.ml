type kind = Counter | Gauge

type t = { m_name : string; m_kind : kind; mutable m_value : int }

let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let register name kind =
  match Hashtbl.find_opt registry name with
  | Some m when m.m_kind = kind -> m
  | Some _ ->
    invalid_arg
      (Printf.sprintf "Obs.Metrics: %s already registered with another kind"
         name)
  | None ->
    let m = { m_name = name; m_kind = kind; m_value = 0 } in
    Hashtbl.add registry name m;
    m

let counter name = register name Counter
let gauge name = register name Gauge

let name m = m.m_name
let value m = m.m_value

let incr m = m.m_value <- m.m_value + 1

let add m n =
  if n < 0 && m.m_kind = Counter then
    invalid_arg
      (Printf.sprintf "Obs.Metrics: counter %s cannot decrease" m.m_name);
  m.m_value <- m.m_value + n

let set m v =
  match m.m_kind with
  | Gauge -> m.m_value <- v
  | Counter ->
    invalid_arg (Printf.sprintf "Obs.Metrics: %s is a counter, not a gauge" m.m_name)

let find name = Option.map value (Hashtbl.find_opt registry name)

let snapshot () =
  Hashtbl.fold (fun name m acc -> (name, m.m_value) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () = Hashtbl.iter (fun _ m -> m.m_value <- 0) registry

let to_json () =
  Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) (snapshot ()))

let pp ppf () =
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-24s %d@." name v)
    (snapshot ())
