type kind = Counter | Gauge

type t = { m_name : string; m_kind : kind; m_value : int Atomic.t }

(* Values are atomics so worker domains can bump counters from inside
   parallel builds without losing updates; the registry itself is
   locked (registration is rare — module initialization, mostly). *)
let lock = Mutex.create ()
let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let register name kind =
  Mutex.protect lock @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some m when m.m_kind = kind -> m
  | Some _ ->
    invalid_arg
      (Printf.sprintf "Obs.Metrics: %s already registered with another kind"
         name)
  | None ->
    let m = { m_name = name; m_kind = kind; m_value = Atomic.make 0 } in
    Hashtbl.add registry name m;
    m

let counter name = register name Counter
let gauge name = register name Gauge

let name m = m.m_name
let value m = Atomic.get m.m_value

let incr m = ignore (Atomic.fetch_and_add m.m_value 1)

let add m n =
  if n < 0 && m.m_kind = Counter then
    invalid_arg
      (Printf.sprintf "Obs.Metrics: counter %s cannot decrease" m.m_name);
  ignore (Atomic.fetch_and_add m.m_value n)

let set m v =
  match m.m_kind with
  | Gauge -> Atomic.set m.m_value v
  | Counter ->
    invalid_arg (Printf.sprintf "Obs.Metrics: %s is a counter, not a gauge" m.m_name)

let find name =
  let m = Mutex.protect lock (fun () -> Hashtbl.find_opt registry name) in
  Option.map value m

let snapshot () =
  let entries =
    Mutex.protect lock (fun () ->
        Hashtbl.fold (fun name m acc -> (name, Atomic.get m.m_value) :: acc)
          registry [])
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries

let reset () =
  Mutex.protect lock (fun () ->
      Hashtbl.iter (fun _ m -> Atomic.set m.m_value 0) registry)

let to_json () =
  Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) (snapshot ()))

(* the dump is deterministic: [snapshot] sorts by name, and the column
   width depends only on the set of registered names — byte-stable
   across runs and backends with the same instrumentation linked in *)
let pp ppf () =
  let entries = snapshot () in
  let width =
    List.fold_left (fun w (name, _) -> max w (String.length name)) 24 entries
  in
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-*s %d@." width name v)
    entries
