type fs = {
  fs_read : string -> string option;
  fs_write : string -> string -> unit;
  fs_mtime : string -> int option;
  fs_remove : string -> unit;
  fs_rename : string -> string -> unit;
  fs_list : unit -> string list;
}

exception Fault of { fault_op : string; fault_path : string; fault_transient : bool }
exception Crash of { crash_op : string; crash_path : string }

let memory () =
  let files : (string, string * int) Hashtbl.t = Hashtbl.create 64 in
  let clock = ref 0 in
  {
    fs_read = (fun path -> Option.map fst (Hashtbl.find_opt files path));
    fs_write =
      (fun path content ->
        incr clock;
        Hashtbl.replace files path (content, !clock));
    fs_mtime = (fun path -> Option.map snd (Hashtbl.find_opt files path));
    fs_remove = (fun path -> Hashtbl.remove files path);
    fs_rename =
      (fun src dst ->
        match Hashtbl.find_opt files src with
        | None -> raise (Sys_error (Printf.sprintf "rename: %s not found" src))
        | Some (content, _) ->
          (* a rename is a single table mutation: it either happens or it
             does not — never a torn in-between, mirroring POSIX rename *)
          incr clock;
          Hashtbl.remove files src;
          Hashtbl.replace files dst (content, !clock));
    fs_list =
      (fun () ->
        Hashtbl.fold (fun path _ acc -> path :: acc) files []
        |> List.sort String.compare);
  }

let touch fs path =
  match fs.fs_read path with
  | Some content -> fs.fs_write path content
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Atomic commit protocol                                              *)
(* ------------------------------------------------------------------ *)

let commit_path path = path ^ ".#commit"

let is_commit_temp path =
  let suffix = ".#commit" in
  let n = String.length path and k = String.length suffix in
  n >= k && String.equal (String.sub path (n - k) k) suffix

let commit fs path content =
  let tmp = commit_path path in
  fs.fs_write tmp content;
  fs.fs_rename tmp path

(* ------------------------------------------------------------------ *)
(* The host file system                                                *)
(* ------------------------------------------------------------------ *)

let real ~dir =
  let join path = Filename.concat dir path in
  let rec ensure d =
    if not (Sys.file_exists d) then begin
      ensure (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  let read path =
    let full = join path in
    if Sys.file_exists full && not (Sys.is_directory full) then begin
      let ic = open_in_bin full in
      let n = in_channel_length ic in
      let content = really_input_string ic n in
      close_in ic;
      Some content
    end
    else None
  in
  let write path content =
    let full = join path in
    ensure (Filename.dirname full);
    (* write-temp/rename so a crash mid-write never leaves a torn file
       under the final name — the same guarantee {!memory} gives *)
    let tmp = full ^ ".#tmp" in
    let oc = open_out_bin tmp in
    output_string oc content;
    close_out oc;
    Sys.rename tmp full
  in
  let mtime path =
    let full = join path in
    if Sys.file_exists full then
      Some (int_of_float (Unix.stat full).Unix.st_mtime)
    else None
  in
  let remove path =
    (* already-missing files are fine: removal is idempotent *)
    try Sys.remove (join path) with Sys_error _ -> ()
  in
  let rename src dst =
    let full_dst = join dst in
    ensure (Filename.dirname full_dst);
    Sys.rename (join src) full_dst
  in
  let list () =
    let rec walk prefix acc =
      let dirpath = if prefix = "" then dir else Filename.concat dir prefix in
      Array.fold_left
        (fun acc entry ->
          let rel = if prefix = "" then entry else Filename.concat prefix entry in
          let full = Filename.concat dir rel in
          if Sys.is_directory full then walk rel acc else rel :: acc)
        acc (Sys.readdir dirpath)
    in
    if Sys.file_exists dir then List.sort String.compare (walk "" []) else []
  in
  {
    fs_read = read;
    fs_write = write;
    fs_mtime = mtime;
    fs_remove = remove;
    fs_rename = rename;
    fs_list = list;
  }

(* ------------------------------------------------------------------ *)
(* Deterministic fault injection                                       *)
(* ------------------------------------------------------------------ *)

type fault =
  | Write_fail of int
  | Write_torn of int * int
  | Write_crash of int * int
  | Read_corrupt of int
  | Remove_fail of int
  | Rename_fail of int

let fault_name = function
  | Write_fail n -> Printf.sprintf "write-fail@%d" n
  | Write_torn (n, k) -> Printf.sprintf "write-torn@%d/%d" n k
  | Write_crash (n, k) -> Printf.sprintf "write-crash@%d/%d" n k
  | Read_corrupt n -> Printf.sprintf "read-corrupt@%d" n
  | Remove_fail n -> Printf.sprintf "remove-fail@%d" n
  | Rename_fail n -> Printf.sprintf "rename-fail@%d" n

type op = { op_kind : string; op_path : string; op_fault : string option }

type injector = {
  i_lock : Mutex.t;
  mutable i_log : op list;  (** newest first *)
  mutable i_reads : int;
  mutable i_writes : int;
  mutable i_removes : int;
  mutable i_renames : int;
  mutable i_fired : int;
  mutable i_crashed : bool;
  i_plan : fault list;
}

let oplog inj = Mutex.protect inj.i_lock (fun () -> List.rev inj.i_log)
let writes inj = Mutex.protect inj.i_lock (fun () -> inj.i_writes)
let faults_fired inj = Mutex.protect inj.i_lock (fun () -> inj.i_fired)
let crashed inj = Mutex.protect inj.i_lock (fun () -> inj.i_crashed)

(* flip one byte of [content], deterministically from [salt] *)
let corrupt_content ~salt content =
  if String.length content = 0 then content
  else begin
    let bytes = Bytes.of_string content in
    let i = salt mod Bytes.length bytes in
    Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 0x5A));
    Bytes.to_string bytes
  end

let faulty ?(only = fun _ -> true) ~plan fs =
  let inj =
    {
      i_lock = Mutex.create ();
      i_log = [];
      i_reads = 0;
      i_writes = 0;
      i_removes = 0;
      i_renames = 0;
      i_fired = 0;
      i_crashed = false;
      i_plan = plan;
    }
  in
  (* count the op (if its path is eligible) and return the fault the
     plan schedules for it, logging either way.  Once a crash fault has
     fired the "process" is dead: nothing further reaches the backing
     store — every subsequent operation just raises {!Crash} again. *)
  let step kind path pick =
    Mutex.protect inj.i_lock (fun () ->
        if inj.i_crashed then
          raise (Crash { crash_op = kind; crash_path = path });
        let fault =
          if only path then begin
            let nth = pick () in
            List.find_opt
              (fun f ->
                match (kind, f) with
                | "write", (Write_fail n | Write_torn (n, _) | Write_crash (n, _))
                  -> n = nth
                | "read", Read_corrupt n -> n = nth
                | "remove", Remove_fail n -> n = nth
                | "rename", Rename_fail n -> n = nth
                | _ -> false)
              inj.i_plan
          end
          else None
        in
        if fault <> None then inj.i_fired <- inj.i_fired + 1;
        inj.i_log <-
          { op_kind = kind; op_path = path; op_fault = Option.map fault_name fault }
          :: inj.i_log;
        fault)
  in
  let wrapped =
    {
      fs_read =
        (fun path ->
          let fault =
            step "read" path (fun () ->
                inj.i_reads <- inj.i_reads + 1;
                inj.i_reads)
          in
          let result = fs.fs_read path in
          match fault with
          | Some (Read_corrupt n) ->
            Option.map (corrupt_content ~salt:n) result
          | _ -> result);
      fs_write =
        (fun path content ->
          let fault =
            step "write" path (fun () ->
                inj.i_writes <- inj.i_writes + 1;
                inj.i_writes)
          in
          match fault with
          | Some (Write_fail _) ->
            raise
              (Fault
                 { fault_op = "write"; fault_path = path; fault_transient = true })
          | Some (Write_torn (_, k)) ->
            fs.fs_write path (String.sub content 0 (min k (String.length content)))
          | Some (Write_crash (_, k)) ->
            (* the dying process got k bytes onto disk, then vanished *)
            fs.fs_write path (String.sub content 0 (min k (String.length content)));
            Mutex.protect inj.i_lock (fun () -> inj.i_crashed <- true);
            raise (Crash { crash_op = "write"; crash_path = path })
          | _ -> fs.fs_write path content);
      fs_mtime =
        (fun path ->
          Mutex.protect inj.i_lock (fun () ->
              if inj.i_crashed then
                raise (Crash { crash_op = "mtime"; crash_path = path }));
          fs.fs_mtime path);
      fs_remove =
        (fun path ->
          let fault =
            step "remove" path (fun () ->
                inj.i_removes <- inj.i_removes + 1;
                inj.i_removes)
          in
          match fault with
          | Some (Remove_fail _) ->
            raise
              (Fault
                 { fault_op = "remove"; fault_path = path; fault_transient = true })
          | _ -> fs.fs_remove path);
      fs_rename =
        (fun src dst ->
          let fault =
            step "rename" src (fun () ->
                inj.i_renames <- inj.i_renames + 1;
                inj.i_renames)
          in
          match fault with
          | Some (Rename_fail _) ->
            raise
              (Fault
                 { fault_op = "rename"; fault_path = src; fault_transient = true })
          | _ -> fs.fs_rename src dst);
      fs_list =
        (fun () ->
          Mutex.protect inj.i_lock (fun () ->
              if inj.i_crashed then
                raise (Crash { crash_op = "list"; crash_path = "" }));
          fs.fs_list ());
    }
  in
  (wrapped, inj)

let seeded_plan ~seed ~ops =
  let state = Random.State.make [| seed; ops; 0x5EED |] in
  let ops = max 1 ops in
  let n_faults = 1 + Random.State.int state 4 in
  List.init n_faults (fun _ ->
      let at = 1 + Random.State.int state ops in
      match Random.State.int state 6 with
      | 0 -> Write_fail at
      | 1 -> Write_torn (at, Random.State.int state 64)
      | 2 -> Write_crash (at, Random.State.int state 64)
      | 3 -> Read_corrupt at
      | 4 -> Remove_fail at
      | _ -> Rename_fail at)
