(** File-system abstraction for the compilation manager.

    The IRM only needs read/write/mtime/remove/rename, so it works over
    an abstract {!fs} record.  Three implementations:

    - {!memory}: an in-memory store with a *logical clock* (every write
      bumps it), giving the recompilation benches deterministic,
      race-free timestamps;
    - {!real}: the host file system (used by the [irm] command-line
      tool);
    - {!faulty}: a deterministic fault-injection wrapper over any other
      [fs], used by the crash-recovery test harness. *)

type fs = {
  fs_read : string -> string option;
  fs_write : string -> string -> unit;
  fs_mtime : string -> int option;  (** [None] if absent *)
  fs_remove : string -> unit;  (** idempotent: missing files are fine *)
  fs_rename : string -> string -> unit;
      (** atomic move, overwriting the destination — never torn *)
  fs_list : unit -> string list;  (** all known paths under the root *)
}

(** An injected failure: the operation did not happen (or, for a
    remove/rename, may be retried).  [fault_transient] faults succeed
    when retried — {!Sched}'s bounded retry loop keys on it. *)
exception Fault of { fault_op : string; fault_path : string; fault_transient : bool }

(** A simulated process death in the middle of an operation: for a
    write, a prefix of the bytes may already be on disk.  Never retry
    this — the harness catches it and restarts from the disk state the
    "dead" process left behind. *)
exception Crash of { crash_op : string; crash_path : string }

(** A fresh in-memory file system. *)
val memory : unit -> fs

(** [touch fs path] rewrites a file with its current content, bumping
    its timestamp — the classic way to provoke a timestamp-based
    rebuild. *)
val touch : fs -> string -> unit

(** [commit fs path content] — the atomic-commit protocol: write
    [content] to {!commit_path}[ path], then rename it over [path].
    A crash before the rename leaves [path] untouched (the orphan temp
    file is reclaimed by recovery/gc passes); after it, the new content
    is fully in place.  There is no in-between. *)
val commit : fs -> string -> string -> unit

(** [commit_path path] — the temp-file name [commit] stages into
    ([path ^ ".#commit"]). *)
val commit_path : string -> string

(** [is_commit_temp path] — recognizes staging files left behind by a
    crashed {!commit}. *)
val is_commit_temp : string -> bool

(** The host file system rooted at [dir] (paths are joined to it).
    [fs_write] is atomic (write-temp/rename); [fs_remove] ignores
    already-missing files; [fs_mtime] is wall-clock seconds; [fs_list]
    enumerates [dir] recursively. *)
val real : dir:string -> fs

(** {1 Deterministic fault injection} *)

(** One scheduled failure.  Indices are 1-based per operation class
    (counted over eligible paths only — see [faulty]'s [only]):
    [Write_fail n] makes the [n]-th write raise a transient {!Fault};
    [Write_torn (n, k)] silently truncates the [n]-th write after [k]
    bytes; [Write_crash (n, k)] truncates after [k] bytes and raises
    {!Crash}; [Read_corrupt n] flips one byte of the [n]-th read's
    result; [Remove_fail n] / [Rename_fail n] raise a transient
    {!Fault}. *)
type fault =
  | Write_fail of int
  | Write_torn of int * int
  | Write_crash of int * int
  | Read_corrupt of int
  | Remove_fail of int
  | Rename_fail of int

val fault_name : fault -> string

(** One logged operation: its class, its path, and the name of the
    fault that fired on it (if any). *)
type op = { op_kind : string; op_path : string; op_fault : string option }

(** The mutable state behind a {!faulty} wrapper: per-class operation
    counters and the op-log. *)
type injector

(** [faulty ?only ~plan fs] — a wrapper over [fs] that injects the
    failures scheduled in [plan], deterministically: the same plan over
    the same operation sequence fires the same faults.  [only] filters
    which paths are counted and eligible (default: all).  Thread-safe;
    every operation is appended to the op-log. *)
val faulty : ?only:(string -> bool) -> plan:fault list -> fs -> fs * injector

(** The operations seen so far, oldest first. *)
val oplog : injector -> op list

(** Eligible writes counted so far. *)
val writes : injector -> int

(** How many scheduled faults actually fired. *)
val faults_fired : injector -> int

(** Whether a [Write_crash] fault has fired.  Once it has, the wrapper
    behaves like a dead process: every further operation raises
    {!Crash} and nothing reaches the backing store — restart from the
    backing [fs] to model the post-crash recovery. *)
val crashed : injector -> bool

(** [seeded_plan ~seed ~ops] — a small deterministic fault plan with
    injection points drawn from [1..ops].  Same seed, same plan. *)
val seeded_plan : seed:int -> ops:int -> fault list
