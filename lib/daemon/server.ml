module Frame = Pickle.Frame
module Driver = Irm.Driver
module Diag = Support.Diag
module Relink = Link.Relink

exception Already_running of string

type config = {
  d_dir : string;
  d_state_dir : string;
  d_groups : string list;
  d_watch : bool;
  d_poll_s : float;
  d_client_timeout_s : float;
  d_cache : bool;
  d_policy : string;
  d_jobs : int;
  d_hot_swap : bool;
  d_swap_budget_s : float;
  d_epoch_history : int;
  d_log : string -> unit;
}

let default_config ~dir =
  {
    d_dir = dir;
    d_state_dir = Protocol.default_state_dir;
    d_groups = [];
    d_watch = false;
    d_poll_s = 0.5;
    d_client_timeout_s = 30.;
    d_cache = false;
    d_policy = "cutoff";
    d_jobs = 1;
    d_hot_swap = false;
    d_swap_budget_s = 30.;
    d_epoch_history = 4;
    d_log = prerr_endline;
  }

let m_connections = Obs.Metrics.counter "daemon.connections"
let m_requests = Obs.Metrics.counter "daemon.requests"
let m_builds = Obs.Metrics.counter "daemon.builds"
let m_sweeps = Obs.Metrics.counter "daemon.watch_sweeps"
let m_dirty = Obs.Metrics.counter "daemon.watch_dirty"
let m_dropped = Obs.Metrics.counter "daemon.clients_dropped"
let g_clients = Obs.Metrics.gauge "daemon.clients"

type conn = {
  c_fd : Unix.file_descr;
  mutable c_in : string;
  mutable c_out : string;
  mutable c_hello : bool;
  mutable c_close_after_flush : bool;
  mutable c_last_io : float;
  mutable c_alive : bool;
}

(* warm per-group state: the manager (and its compilation session)
   lives as long as the daemon does *)
type group_state = {
  g_group : string;
  g_mgr : Driver.t;
  g_watch : Watch.t;
  mutable g_sources : string list;
  mutable g_dirty : string list;  (** dirty since the last build (lazy mode) *)
  mutable g_builds : int;
  mutable g_opts : Protocol.build_opts;  (** what watch rebuilds replay *)
  mutable g_live : Relink.t option;  (** the hot-swap epochs, once live *)
  mutable g_last_swap : (string, string) result option;
      (** outcome of the latest reconciliation, for [Swap] responses *)
}

type t = {
  cfg : config;
  fs : Vfs.fs;
  listen_fd : Unix.file_descr;
  sock_path : string;
  pid_path : string;
  profile : Obs.Profile.t;
  mutable cache : Cache.t option;
  groups : (string, group_state) Hashtbl.t;
  mutable conns : conn list;
  mutable running : bool;
  mutable stopping : bool;  (** shutdown answered; draining output *)
  mutable served : int;
  mutable sweeps : int;
  mutable dirty_total : int;
  started : float;
  mutable next_sweep : float;
}

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let default_opts cfg group =
  {
    Protocol.b_group = group;
    b_policy = cfg.d_policy;
    b_jobs = cfg.d_jobs;
    b_cache = cfg.d_cache;
    b_keep_going = false;
    b_werror = false;
    b_max_errors = None;
    b_error_json = false;
    b_schedule = "wavefront";
  }

let group_state t group =
  match Hashtbl.find_opt t.groups group with
  | Some g -> g
  | None ->
    let g =
      {
        g_group = group;
        g_mgr = Driver.create t.fs;
        g_watch = Watch.create t.fs;
        g_sources = [];
        g_dirty = [];
        g_builds = 0;
        g_opts = default_opts t.cfg group;
        g_live = None;
        g_last_swap = None;
      }
    in
    Hashtbl.replace t.groups group g;
    g

let policy_of = function
  | "cutoff" -> Some Driver.Cutoff
  | "timestamp" -> Some Driver.Timestamp
  | "selective" -> Some Driver.Selective
  | _ -> None

let backend_of jobs = if jobs <= 1 then Driver.Serial else Driver.Parallel jobs

(* [auto] resolves against the daemon's warm profile store, mirroring
   the CLI's in-process default *)
let schedule_of t = function
  | "wavefront" -> Some Driver.Wavefront
  | "critical-path" -> Some Driver.Critical_path
  | "auto" ->
    Some
      (if Obs.Profile.builds t.profile = [] then Driver.Wavefront
       else Driver.Critical_path)
  | _ -> None

let cache_of t enabled =
  if not enabled then None
  else
    match t.cache with
    | Some _ as c -> c
    | None ->
      let c =
        Cache.create ~dir:Cache.default_dir ~budget_bytes:Cache.default_budget
          t.fs
      in
      t.cache <- Some c;
      Some c

(* a one-shot `irm build` may hold the advisory lock; wait briefly for
   it to finish before giving up with its diagnostic *)
let acquire_lock t =
  let rec go n =
    match Lock.acquire ~dir:t.cfg.d_dir with
    | lock -> lock
    | exception Lock.Held _ when n > 0 ->
      Unix.sleepf 0.05;
      go (n - 1)
  in
  go 20

(* every handler returns the response plus the diag-frame payloads to
   stream ahead of it *)
let ok out = ({ Protocol.r_code = 0; r_out = out; r_err = "" }, [])

(* the same exception → (stderr, exit code) mapping the CLI's [guarded]
   applies, rendered into a response instead of printed.
   [Driver.Interrupted] deliberately passes through: it is the daemon
   being told to die, not a request failing. *)
let guard ~json f =
  let plain ?(code = 1) err = ({ Protocol.r_code = code; r_out = ""; r_err = err }, []) in
  let diags ds =
    if json then
      ( { Protocol.r_code = 1; r_out = ""; r_err = "" },
        [
          Obs.Json.to_string (Irm.Introspect.diagnostics_envelope ds) ^ "\n";
        ] )
    else
      plain
        (String.concat ""
           (List.map (fun d -> Diag.to_string d ^ "\n") ds))
  in
  match Diag.guard_all f with
  | Ok resp -> resp
  | Error ds -> diags ds
  | exception Lock.Held { lock_path; holder } ->
    plain
      (Printf.sprintf
         "the build lock %s is held by pid %s — another build is running in \
          this directory; retry when it finishes\n"
         lock_path holder)
  | exception Pickle.Buf.Corrupt msg ->
    diags [ Diag.make Diag.Pickle Support.Loc.dummy msg ]
  | exception Vfs.Crash { crash_op; crash_path } ->
    plain ~code:3
      (Printf.sprintf
         "simulated crash during %s of %s — on-disk state is safe\n" crash_op
         crash_path)
  | exception Vfs.Fault { fault_op; fault_path; _ } ->
    plain
      (Printf.sprintf "injected fault persisted: %s of %s failed\n" fault_op
         fault_path)
  | exception Sys_error msg -> plain (msg ^ "\n")
  | exception Worker.Pool_down msg ->
    plain ~code:4
      (Printf.sprintf
         "build aborted: the compile worker pool died entirely (%s)\n" msg)

(* ------------------------------------------------------------------ *)
(* Hot-swap reconciliation                                             *)
(* ------------------------------------------------------------------ *)

let m_swaps_ok = Obs.Metrics.counter "daemon.swaps"
let m_swaps_rolled_back = Obs.Metrics.counter "daemon.swap_rollbacks"

let swap_desc (o : Relink.outcome) =
  match o.o_kind with
  | Relink.Null ->
    Printf.sprintf "null swap: epoch %d unchanged, nothing relinked" o.o_epoch
  | Relink.Impl ->
    Printf.sprintf "impl swap: epoch %d rebound in place, relinked [%s]"
      o.o_epoch
      (String.concat ", " o.o_relinked)
  | Relink.Epoch_bump ->
    Printf.sprintf "epoch swap: now serving epoch %d, relinked [%s]" o.o_epoch
      (String.concat ", " o.o_relinked)

(* after a clean build, diff the rebuilt units against the live epoch
   and swap them in transactionally.  A failed swap (seal violation,
   relink conflict, abort, a unit raising during relink) rolls back —
   the old epoch keeps serving — and is reported, never fatal. *)
let reconcile t g ~abort_check =
  let outcome =
    match
      let units = Driver.link_snapshot g.g_mgr in
      match g.g_live with
      | None ->
        let live = Relink.create ~history:t.cfg.d_epoch_history () in
        Relink.baseline live ~units;
        g.g_live <- Some live;
        Printf.sprintf "hot-swap baseline: epoch 0 live (%d units)"
          (List.length units)
      | Some live ->
        swap_desc
          (Relink.swap ?abort_check ~budget_s:t.cfg.d_swap_budget_s live
             ~units)
    with
    | desc -> Ok desc
    | exception Diag.Error d -> Error (String.trim (Diag.to_string d))
    | exception Diag.Errors ds ->
      Error
        (String.concat "; "
           (List.map (fun d -> String.trim (Diag.to_string d)) ds))
    | exception Relink.Swap_aborted reason ->
      Error
        (Printf.sprintf "swap aborted: %s — rolled back to the prior epoch"
           reason)
    | exception Dynamics.Eval.Sml_raise packet ->
      Error
        (Printf.sprintf
           "swap aborted: a unit raised %s during relink — rolled back to \
            the prior epoch"
           (Dynamics.Value.to_string packet))
    | exception Dynamics.Eval.Sml_exit code ->
      Error
        (Printf.sprintf
           "swap aborted: a unit called exit %d during relink — rolled back \
            to the prior epoch"
           code)
  in
  (match outcome with
  | Ok desc ->
    Obs.Metrics.incr m_swaps_ok;
    t.cfg.d_log (Printf.sprintf "daemon: %s %s" g.g_group desc)
  | Error msg ->
    Obs.Metrics.incr m_swaps_rolled_back;
    t.cfg.d_log (Printf.sprintf "daemon: %s swap failed: %s" g.g_group msg));
  g.g_last_swap <- Some outcome;
  outcome

let serve_build ?abort_check t opts ~and_run =
  let open Protocol in
  match (policy_of opts.b_policy, schedule_of t opts.b_schedule) with
  | None, _ ->
    ( { r_code = 2; r_out = ""; r_err = Printf.sprintf "unknown policy %S\n" opts.b_policy },
      [] )
  | _, None ->
    ( {
        r_code = 2;
        r_out = "";
        r_err = Printf.sprintf "unknown schedule %S\n" opts.b_schedule;
      },
      [] )
  | Some policy, Some schedule ->
    guard ~json:opts.b_error_json (fun () ->
        let g = group_state t opts.b_group in
        let sources = Irm.Group.load t.fs opts.b_group in
        if sources = [] then
          Diag.error Diag.Manager Support.Loc.dummy
            "group file %s lists no sources" opts.b_group;
        let lock = acquire_lock t in
        Fun.protect ~finally:(fun () -> Lock.release lock) @@ fun () ->
        Obs.Metrics.incr m_builds;
        let stats =
          Driver.build
            ~backend:(backend_of opts.b_jobs)
            ~schedule
            ?cache:(Option.map Cache.ops (cache_of t opts.b_cache)) ~profile:t.profile
            ~keep_going:opts.b_keep_going ~werror:opts.b_werror
            ?max_errors:opts.b_max_errors g.g_mgr ~policy ~sources
        in
        g.g_sources <- sources;
        g.g_builds <- g.g_builds + 1;
        g.g_dirty <- [];
        g.g_opts <- opts;
        Watch.track g.g_watch (opts.b_group :: sources);
        let diag =
          Irm.Introspect.report_diagnostics ~source_of:t.fs.Vfs.fs_read
            ~json:opts.b_error_json stats
        in
        let diag_frames = if opts.b_error_json then [ diag.out ] else [] in
        (* a clean build under --hot-swap reconciles the live epoch;
           a failed swap rolls back and lands on stderr, never fatal *)
        let swap_err =
          if t.cfg.d_hot_swap && diag.code = 0 then
            match reconcile t g ~abort_check with
            | Ok _ -> ""
            | Error msg -> msg ^ "\n"
          else ""
        in
        if and_run then begin
          (* `irm run` prints no listing: diagnostics, then the program *)
          if diag.code <> 0 then
            ({ r_code = diag.code; r_out = ""; r_err = diag.err }, diag_frames)
          else
            match g.g_live with
            | Some live when t.cfg.d_hot_swap && swap_err = "" ->
              (* serve from the live epoch: pin it, replay the captured
                 per-unit output, unpin — byte-identical to a clean
                 restart at the epoch's state, and an epoch swap landing
                 between two runs never tears one *)
              let buf = Buffer.create 256 in
              let pinned = Relink.pin live in
              Fun.protect
                ~finally:(fun () -> Relink.unpin live pinned)
                (fun () ->
                  Relink.replay pinned ~output:(Buffer.add_string buf));
              ({ r_code = 0; r_out = Buffer.contents buf; r_err = "" },
               diag_frames)
            | _ -> (
              let buf = Buffer.create 256 in
              match
                Driver.run ~output:(Buffer.add_string buf) g.g_mgr ~sources
              with
              | _ ->
                ({ r_code = 0; r_out = Buffer.contents buf; r_err = swap_err },
                 diag_frames)
              | exception Dynamics.Eval.Sml_raise packet ->
                ( {
                    r_code = 1;
                    r_out = Buffer.contents buf;
                    r_err =
                      swap_err
                      ^ Printf.sprintf "uncaught exception: %s\n"
                          (Dynamics.Value.to_string packet);
                  },
                  diag_frames )
              | exception Dynamics.Eval.Sml_exit code ->
                ( { r_code = code; r_out = Buffer.contents buf; r_err = swap_err },
                  diag_frames ))
        end
        else
          let listing =
            if opts.b_error_json then ""
            else Irm.Introspect.build_listing g.g_mgr stats
          in
          ({ r_code = diag.code; r_out = listing; r_err = diag.err ^ swap_err },
           diag_frames))

let live_conns t = List.filter (fun c -> c.c_alive) t.conns

(* the per-group hot-swap fields of the status envelope: the serving
   epoch ([null] before the baseline), how many epoch records are
   retained, and the swap counters *)
let group_swap_json g =
  let open Obs.Json in
  match g.g_live with
  | None ->
    [
      ("epoch", Null);
      ("epochs", Int 0);
      ( "swaps",
        Obj
          [
            ("null", Int 0);
            ("impl", Int 0);
            ("epoch", Int 0);
            ("rollbacks", Int 0);
          ] );
    ]
  | Some live ->
    let c = Relink.counters live in
    [
      ("epoch", Int (Relink.current_epoch live));
      ("epochs", Int (List.length (Relink.epochs live)));
      ( "swaps",
        Obj
          [
            ("null", Int c.Relink.c_null);
            ("impl", Int c.Relink.c_impl);
            ("epoch", Int c.Relink.c_epoch);
            ("rollbacks", Int c.Relink.c_rollbacks);
          ] );
    ]

let status_json t =
  let open Obs.Json in
  let tracked =
    Hashtbl.fold
      (fun _ g acc -> acc + List.length (Watch.tracked g.g_watch))
      t.groups 0
  in
  let groups =
    Hashtbl.fold
      (fun _ g acc ->
        Obj
          ([
             ("group", String g.g_group);
             ("units", Int (List.length g.g_sources));
             ("builds", Int g.g_builds);
             ("dirty", List (List.map (fun f -> String f) g.g_dirty));
           ]
          @ group_swap_json g)
        :: acc)
      t.groups []
  in
  Obj
    [
      ("version", String Protocol.version);
      ("pid", Int (Unix.getpid ()));
      ("uptime_s", Float (Unix.gettimeofday () -. t.started));
      ("served", Int t.served);
      ("clients", Int (List.length (live_conns t)));
      ("hot_swap", Bool t.cfg.d_hot_swap);
      ( "watch",
        Obj
          [
            ("eager", Bool t.cfg.d_watch);
            ("poll_s", Float t.cfg.d_poll_s);
            ("tracked", Int tracked);
            ("sweeps", Int t.sweeps);
            ("dirty_total", Int t.dirty_total);
          ] );
      ("groups", List groups);
    ]

(* ------------------------------------------------------------------ *)
(* Hot-swap requests                                                   *)
(* ------------------------------------------------------------------ *)

(* [Swap]/[Epochs] with an empty group name resolve against the
   daemon's live groups when that is unambiguous *)
let resolve_group t group =
  if group <> "" then Ok group
  else
    match Hashtbl.fold (fun k _ acc -> k :: acc) t.groups [] with
    | [ g ] -> Ok g
    | [] -> Error "no group is live in this daemon; name one explicitly\n"
    | gs ->
      Error
        (Printf.sprintf "multiple groups are live (%s); name one explicitly\n"
           (String.concat ", " (List.sort String.compare gs)))

let epochs_json t g =
  let open Obs.Json in
  let history =
    match g.g_live with
    | None -> []
    | Some live ->
      List.map
        (fun (e : Relink.epoch_info) ->
          Obj
            [
              ("id", Int e.Relink.ei_id);
              ("state", String e.ei_state);
              ("pins", Int e.ei_pins);
              ("units", Int e.ei_units);
              ("cause", String e.ei_cause);
            ])
        (Relink.epochs live)
  in
  Obj
    ([
       ("version", String Protocol.version);
       ("group", String g.g_group);
       ("hot_swap", Bool t.cfg.d_hot_swap);
     ]
    @ group_swap_json g
    @ [ ("history", List history) ])

let render_epochs g =
  let buf = Buffer.create 256 in
  (match g.g_live with
  | None ->
    Buffer.add_string buf
      (Printf.sprintf "group %s: no live epochs (no clean build yet)\n"
         g.g_group)
  | Some live ->
    let c = Relink.counters live in
    Buffer.add_string buf
      (Printf.sprintf
         "group %s: serving epoch %d — swaps: %d null / %d impl / %d epoch \
          / %d rollbacks\n"
         g.g_group
         (Relink.current_epoch live)
         c.Relink.c_null c.Relink.c_impl c.Relink.c_epoch
         c.Relink.c_rollbacks);
    List.iter
      (fun (e : Relink.epoch_info) ->
        Buffer.add_string buf
          (Printf.sprintf "  epoch %-3d %-8s pins %-2d units %-3d %s\n"
             e.Relink.ei_id e.ei_state e.ei_pins e.ei_units e.ei_cause))
      (Relink.epochs live));
  Buffer.contents buf

let serve_epochs t ~group ~json =
  match resolve_group t group with
  | Error msg -> ({ Protocol.r_code = 2; r_out = ""; r_err = msg }, [])
  | Ok group ->
    let g = group_state t group in
    if json then ok (Obs.Json.to_canonical_string (epochs_json t g) ^ "\n")
    else ok (render_epochs g)

let serve_swap ?abort_check t ~group ~unit_ =
  let open Protocol in
  if not t.cfg.d_hot_swap then
    ( {
        r_code = 2;
        r_out = "";
        r_err = "hot swap is disabled: start the daemon with --hot-swap\n";
      },
      [] )
  else
    match resolve_group t group with
    | Error msg -> ({ r_code = 2; r_out = ""; r_err = msg }, [])
    | Ok group ->
      guard ~json:false (fun () ->
          let sources = Irm.Group.load t.fs group in
          if unit_ <> "" && not (List.mem unit_ sources) then
            Diag.error Diag.Manager Support.Loc.dummy
              "unit %s is not in group %s" unit_ group;
          let g = group_state t group in
          let opts = { g.g_opts with b_group = group } in
          let resp, frames = serve_build ?abort_check t opts ~and_run:false in
          if resp.r_code <> 0 then (resp, frames)
          else
            match g.g_last_swap with
            | Some (Ok desc) ->
              let prefix = if unit_ = "" then "" else unit_ ^ ": " in
              ({ r_code = 0; r_out = prefix ^ desc ^ "\n"; r_err = "" },
               frames)
            | Some (Error msg) ->
              ({ r_code = 1; r_out = ""; r_err = msg ^ "\n" }, frames)
            | None ->
              ( {
                  r_code = 2;
                  r_out = "";
                  r_err = "no swap was attempted (is hot swap live?)\n";
                },
                frames ))

let serve_request ?abort_check t req =
  t.served <- t.served + 1;
  Obs.Metrics.incr m_requests;
  match req with
  | Protocol.Build opts -> serve_build ?abort_check t opts ~and_run:false
  | Protocol.Run opts -> serve_build ?abort_check t opts ~and_run:true
  | Protocol.Explain { e_unit; e_json } ->
    guard ~json:false (fun () ->
        let r =
          Irm.Introspect.explain t.profile ~unit_name:e_unit ~json:e_json
        in
        ({ Protocol.r_code = r.code; r_out = r.out; r_err = r.err }, []))
  | Protocol.Profile { p_json; p_top } ->
    guard ~json:false (fun () ->
        let r =
          Irm.Introspect.profile_report t.profile ~json:p_json ~top:p_top
        in
        ({ Protocol.r_code = r.code; r_out = r.out; r_err = r.err }, []))
  | Protocol.Status ->
    ok (Obs.Json.to_canonical_string (status_json t) ^ "\n")
  | Protocol.Shutdown ->
    t.stopping <- true;
    ok ""
  | Protocol.Swap { s_group; s_unit } ->
    serve_swap ?abort_check t ~group:s_group ~unit_:s_unit
  | Protocol.Epochs { ep_group; ep_json } ->
    serve_epochs t ~group:ep_group ~json:ep_json

(* ------------------------------------------------------------------ *)
(* Connection plumbing                                                 *)
(* ------------------------------------------------------------------ *)

let send conn ~kind ~id ~payload =
  conn.c_out <- conn.c_out ^ Frame.encode ~kind ~id ~payload

let drop t conn =
  if conn.c_alive then begin
    conn.c_alive <- false;
    conn.c_in <- "";
    conn.c_out <- "";
    (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
    Obs.Metrics.set g_clients (List.length (live_conns t))
  end

(* mid-swap (or mid-build) client disconnect detection: a requesting
   client hanging up aborts a pending swap.  MSG_PEEK — pipelined
   request bytes mean the peer is alive, only EOF or a broken socket
   counts as gone. *)
let client_gone conn () =
  if not conn.c_alive then Some "client disconnected mid-swap"
  else
    let probe = Bytes.create 1 in
    match Unix.recv conn.c_fd probe 0 1 [ Unix.MSG_PEEK ] with
    | 0 -> Some "client disconnected mid-swap"
    | _ -> None
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      None
    | exception Unix.Unix_error _ -> Some "client connection broke mid-swap"

let handle_msg t conn (msg : Frame.msg) =
  if not conn.c_hello then
    if msg.f_kind = Protocol.k_hello then
      if String.equal msg.f_payload Protocol.version then begin
        conn.c_hello <- true;
        send conn ~kind:Protocol.k_hello ~id:msg.f_id
          ~payload:Protocol.version
      end
      else begin
        send conn ~kind:Protocol.k_error ~id:msg.f_id
          ~payload:
            (Printf.sprintf "version mismatch: daemon %s, client %s"
               Protocol.version msg.f_payload);
        conn.c_close_after_flush <- true
      end
    else begin
      send conn ~kind:Protocol.k_error ~id:msg.f_id
        ~payload:"expected a HELLO frame";
      conn.c_close_after_flush <- true
    end
  else if msg.f_kind = Protocol.k_request then begin
    match Protocol.decode_request msg.f_payload with
    | exception Pickle.Buf.Corrupt reason ->
      send conn ~kind:Protocol.k_error ~id:msg.f_id
        ~payload:("undecodable request: " ^ reason)
    | req ->
      let resp, diags =
        Obs.Trace.span ~cat:"daemon"
          ~args:[ ("id", msg.f_id) ]
          "daemon.request"
          (fun () -> serve_request ~abort_check:(client_gone conn) t req)
      in
      List.iter
        (fun payload -> send conn ~kind:Protocol.k_diag ~id:msg.f_id ~payload)
        diags;
      send conn ~kind:Protocol.k_response ~id:msg.f_id
        ~payload:(Protocol.encode_response resp)
  end
  else
    send conn ~kind:Protocol.k_error ~id:msg.f_id
      ~payload:(Printf.sprintf "unexpected frame kind %d" msg.f_kind)

(* a client feeding us garbage gets a best-effort error frame and a
   close — never an exception out of the reactor *)
let rec parse_conn t conn =
  if conn.c_alive && not conn.c_close_after_flush then
    match Frame.pop conn.c_in with
    | exception Pickle.Buf.Corrupt reason ->
      conn.c_in <- "";
      send conn ~kind:Protocol.k_error ~id:""
        ~payload:("corrupt frame: " ^ reason);
      conn.c_close_after_flush <- true
    | None -> ()
    | Some (msg, rest) ->
      conn.c_in <- rest;
      handle_msg t conn msg;
      parse_conn t conn

let read_conn t conn =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Unix.read conn.c_fd chunk 0 (Bytes.length chunk) with
    | 0 -> drop t conn
    | n ->
      conn.c_in <- conn.c_in ^ Bytes.sub_string chunk 0 n;
      conn.c_last_io <- Unix.gettimeofday ();
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> drop t conn
  in
  go ();
  if conn.c_alive then parse_conn t conn

let flush_conn t conn =
  let rec go () =
    if conn.c_alive && conn.c_out <> "" then
      match
        Unix.write_substring conn.c_fd conn.c_out 0 (String.length conn.c_out)
      with
      | n ->
        conn.c_out <- String.sub conn.c_out n (String.length conn.c_out - n);
        conn.c_last_io <- Unix.gettimeofday ();
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> drop t conn
  in
  go ();
  if conn.c_alive && conn.c_out = "" && conn.c_close_after_flush then
    drop t conn

let accept_conns t =
  let rec go () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      Obs.Metrics.incr m_connections;
      t.conns <-
        {
          c_fd = fd;
          c_in = "";
          c_out = "";
          c_hello = false;
          c_close_after_flush = false;
          c_last_io = Unix.gettimeofday ();
          c_alive = true;
        }
        :: t.conns;
      Obs.Metrics.set g_clients (List.length (live_conns t));
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

(* the watchdog: a client holding half a frame, or not draining its
   response, past the timeout is wedged — drop it, exactly as the
   worker supervisor drops a silent child *)
let drop_wedged t =
  let now = Unix.gettimeofday () in
  List.iter
    (fun conn ->
      if
        conn.c_alive
        && (conn.c_in <> "" || conn.c_out <> "" || not conn.c_hello)
        && now -. conn.c_last_io > t.cfg.d_client_timeout_s
      then begin
        Obs.Metrics.incr m_dropped;
        t.cfg.d_log
          (Printf.sprintf "daemon: dropped a wedged client (idle %.1fs)"
             (now -. conn.c_last_io));
        drop t conn
      end)
    t.conns

(* ------------------------------------------------------------------ *)
(* Watch sweeps                                                        *)
(* ------------------------------------------------------------------ *)

(* the dependent cone the dirty files invalidate, via the dependency
   graph (parse errors are tolerated: a broken source still maps to
   itself) *)
let dirty_cone t g dirty =
  if List.exists (String.equal g.g_group) dirty then g.g_sources
  else if
    (* a tracked unit was deleted: its exports vanish from the parse,
       so the rebuilt dependency graph can no longer name its
       dependents — invalidate the whole group rather than silently
       under-reporting the deleted unit's cone *)
    List.exists
      (fun f ->
        List.mem f g.g_sources && t.fs.Vfs.fs_read f = None)
      dirty
  then g.g_sources
  else
    match
      let parsed =
        List.map
          (fun file ->
            let source =
              Option.value ~default:"" (t.fs.Vfs.fs_read file)
            in
            let scan_diags = Diag.collector ~unit_name:file () in
            match
              Lang.Parser.parse_unit ~diags:scan_diags ~file source
            with
            | unit_ -> (file, unit_)
            | exception Diag.Errors _ ->
              (file, { Lang.Ast.unit_file = file; unit_decs = [] }))
          g.g_sources
      in
      Depend.Depgraph.build parsed
    with
    | graph ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun f ->
          if List.mem f g.g_sources then begin
            Hashtbl.replace seen f ();
            List.iter
              (fun d -> Hashtbl.replace seen d ())
              (Depend.Depgraph.cone graph f)
          end)
        dirty;
      List.filter (Hashtbl.mem seen) g.g_sources
    | exception _ -> dirty

let sweep t =
  t.next_sweep <- Unix.gettimeofday () +. t.cfg.d_poll_s;
  Hashtbl.iter
    (fun _ g ->
      if Watch.tracked g.g_watch <> [] then begin
        t.sweeps <- t.sweeps + 1;
        Obs.Metrics.incr m_sweeps;
        let dirty = Watch.sweep g.g_watch in
        if dirty <> [] then begin
          Obs.Metrics.add m_dirty (List.length dirty);
          t.dirty_total <- t.dirty_total + List.length dirty;
          let cone = dirty_cone t g dirty in
          t.cfg.d_log
            (Printf.sprintf "daemon: %s dirty [%s] -> cone [%s]" g.g_group
               (String.concat ", " dirty)
               (String.concat ", " cone));
          if t.cfg.d_watch then begin
            let resp, _ = serve_build t g.g_opts ~and_run:false in
            t.cfg.d_log
              (Printf.sprintf "daemon: watch rebuild of %s (exit %d)\n%s%s"
                 g.g_group resp.Protocol.r_code resp.Protocol.r_out
                 resp.Protocol.r_err)
          end
          else
            g.g_dirty <-
              List.sort_uniq String.compare (g.g_dirty @ cone)
        end
      end)
    t.groups

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let mkdir_p path =
  try Unix.mkdir path 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | Unix.Unix_error (Unix.ENOENT, _, _) ->
    let parent = Filename.dirname path in
    if parent <> path then begin
      (try Unix.mkdir parent 0o755 with Unix.Unix_error _ -> ());
      try Unix.mkdir path 0o755 with Unix.Unix_error _ -> ()
    end

let create cfg =
  let sock_path =
    Protocol.socket_path ~dir:cfg.d_dir ~state_dir:cfg.d_state_dir
  in
  let pid_path = Protocol.pid_path ~dir:cfg.d_dir ~state_dir:cfg.d_state_dir in
  mkdir_p (Filename.dirname sock_path);
  (* a live daemon on the socket wins; a stale socket file is swept *)
  if Sys.file_exists sock_path then begin
    match Client.connect ~state_dir:cfg.d_state_dir ~dir:cfg.d_dir () with
    | Some c ->
      Client.close c;
      raise (Already_running sock_path)
    | None -> ( try Unix.unlink sock_path with Unix.Unix_error _ -> ())
    | exception _ -> raise (Already_running sock_path)
  end;
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX sock_path);
  Unix.listen listen_fd 16;
  Unix.set_nonblock listen_fd;
  Out_channel.with_open_bin pid_path (fun oc ->
      Printf.fprintf oc "%d\n" (Unix.getpid ()));
  (* bound the trace buffer: the daemon traces across thousands of
     requests, the one-shot CLI does not *)
  Obs.Trace.set_cap 50_000;
  let fs = Vfs.real ~dir:cfg.d_dir in
  let t =
    {
      cfg;
      fs;
      listen_fd;
      sock_path;
      pid_path;
      profile = Obs.Profile.load fs;
      cache = None;
      groups = Hashtbl.create 4;
      conns = [];
      running = true;
      stopping = false;
      served = 0;
      sweeps = 0;
      dirty_total = 0;
      started = Unix.gettimeofday ();
      next_sweep = Unix.gettimeofday () +. cfg.d_poll_s;
    }
  in
  (* pre-warm: build and track every startup group so the first client
     request already hits warm state *)
  List.iter
    (fun group ->
      let resp, _ = serve_build t (default_opts cfg group) ~and_run:false in
      cfg.d_log
        (Printf.sprintf "daemon: startup build of %s (exit %d)" group
           resp.Protocol.r_code))
    cfg.d_groups;
  t

let running t = t.running

let stop t =
  if t.running then begin
    t.running <- false;
    List.iter (fun conn -> drop t conn) t.conns;
    t.conns <- [];
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.unlink t.sock_path with Unix.Unix_error _ -> ());
    try Unix.unlink t.pid_path with Unix.Unix_error _ -> ()
  end

let step ?(timeout_s = 0.2) t =
  if t.running then begin
    let now = Unix.gettimeofday () in
    if now >= t.next_sweep then sweep t;
    drop_wedged t;
    t.conns <- live_conns t;
    if t.stopping && List.for_all (fun c -> c.c_out = "") t.conns then stop t
    else begin
      let reads = t.listen_fd :: List.map (fun c -> c.c_fd) t.conns in
      let writes =
        List.filter_map
          (fun c -> if c.c_out <> "" then Some c.c_fd else None)
          t.conns
      in
      let wait =
        Float.max 0. (Float.min timeout_s (t.next_sweep -. now))
      in
      match Unix.select reads writes [] wait with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | rs, ws, _ ->
        if List.memq t.listen_fd rs then accept_conns t;
        List.iter
          (fun conn ->
            if conn.c_alive && List.memq conn.c_fd rs then read_conn t conn)
          t.conns;
        (* requests processed above queued output: push it now rather
           than waiting for the next select round *)
        List.iter
          (fun conn ->
            if conn.c_alive && (conn.c_out <> "" || List.memq conn.c_fd ws)
            then flush_conn t conn)
          t.conns
    end
  end

let run t =
  match
    while t.running do
      step t
    done
  with
  | () -> stop t
  | exception exn ->
    stop t;
    raise exn
