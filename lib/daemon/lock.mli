(** Advisory build lock.

    The profile journal and the cache journal are append-only files
    with in-process buffering: a daemon and a stray [irm build] running
    in the same project directory could interleave appends and corrupt
    both.  This lock serializes them — the daemon takes it for the
    duration of each build request, a one-shot [irm build] for the
    duration of its build — and the second acquirer gets a clear
    diagnostic naming the holder instead of silent corruption.

    Implemented with [Unix.lockf] (POSIX advisory record locking) over
    a lock file next to the stores, so it works on any host file
    system and evaporates with the holding process: a crashed build
    never leaves a stale lock behind. *)

(** The lock file's name, relative to the project root. *)
val lock_file : string

(** Raised when the lock is already held; [holder] is the pid recorded
    by the current owner (best effort — [""] if unreadable). *)
exception Held of { lock_path : string; holder : string }

type t

(** [acquire ~dir] — take the lock for project root [dir], or raise
    {!Held}.  Non-blocking: contention is an immediate, explicit
    failure, never a silent wait. *)
val acquire : dir:string -> t

(** [release t] — drop the lock.  Idempotent. *)
val release : t -> unit

(** [with_lock ~dir f] — {!acquire}, run [f ()], always {!release}. *)
val with_lock : dir:string -> (unit -> 'a) -> 'a
