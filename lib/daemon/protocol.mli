(** The compile-server wire protocol.

    Requests and responses travel as {!Pickle.Frame} messages — the
    same CRC-64-trailed framing the worker IPC uses — over a Unix
    domain socket.  The daemon's tag space is disjoint from the worker
    protocol's so a frame aimed at the wrong peer is an immediate
    protocol error, not a misread.

    Conversation shape: the client opens with a {!k_hello} frame whose
    payload is {!version}; the daemon answers in kind (a mismatch gets
    {!k_error} and a close).  Each request then goes out as one
    {!k_request} frame with a client-chosen id; the daemon replies with
    zero or more {!k_diag} frames (streamed diagnostic envelopes) and
    exactly one {!k_response} frame, all echoing the request id — so a
    client may pipeline requests and match responses as they
    interleave.  {!k_error} frames carry a human-readable reason for
    protocol-level failures. *)

(** Protocol version, exchanged at HELLO: ["smlsep-daemon/2"] (v2
    added the hot-swap requests {!request.Swap} and {!request.Epochs}
    and the epoch fields in the status envelope). *)
val version : string

(** {2 Frame kinds} *)

val k_hello : int
val k_request : int
val k_response : int
val k_diag : int
val k_error : int

(** {2 Where a daemon lives}

    Paths are relative to the project root; the state directory name is
    deliberately short — Unix socket paths are limited to ~100 bytes. *)

val default_state_dir : string

val socket_path : dir:string -> state_dir:string -> string
val pid_path : dir:string -> state_dir:string -> string
val log_path : dir:string -> state_dir:string -> string

(** {2 Requests} *)

type build_opts = {
  b_group : string;  (** group file, relative to the daemon's root *)
  b_policy : string;  (** [cutoff], [timestamp] or [selective] *)
  b_jobs : int;
  b_cache : bool;
  b_keep_going : bool;
  b_werror : bool;
  b_max_errors : int option;
  b_error_json : bool;  (** diagnostics as the [smlsep-diag/1] envelope *)
  b_schedule : string;  (** [wavefront] or [critical-path] *)
}

type request =
  | Build of build_opts
  | Run of build_opts  (** build, then execute; program output in [r_out] *)
  | Explain of { e_unit : string; e_json : bool }
  | Profile of { p_json : bool; p_top : int }
  | Status  (** daemon self-description, always JSON *)
  | Shutdown
  | Swap of { s_group : string; s_unit : string }
      (** rebuild [s_group] and hot-swap the result into the live
          dynenv; the response describes the swap outcome for
          [s_unit]'s group (requires a [--hot-swap] daemon) *)
  | Epochs of { ep_group : string; ep_json : bool }
      (** inspect the live epoch history of [ep_group] *)

type response = {
  r_code : int;  (** the exit code the client should exit with *)
  r_out : string;  (** bytes for the client's stdout *)
  r_err : string;  (** bytes for the client's stderr *)
}

(** Codecs for the frame payloads.  Decoders raise {!Pickle.Buf.Corrupt}
    on damage or an unknown tag. *)

val encode_request : request -> string
val decode_request : string -> request
val encode_response : response -> string
val decode_response : string -> response
