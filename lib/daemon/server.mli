(** The compile server: a long-running daemon holding warm build state.

    One process owns a project directory: per group file it retains an
    {!Irm.Driver} manager (and with it the compilation session —
    interned symbols, rehydrated static environments, pid-keyed
    dynenvs), the journaled cache index, and the [.irm-profile] store,
    so a rebuild request pays only for what actually changed — no
    process startup, no session rehydration, no cache-index replay.

    The server is a {e step-driven reactor}: {!step} runs one
    [select]/accept/read/process/write iteration and returns, {!run}
    loops it until shutdown.  Tests drive {!step} directly (no forked
    daemon needed); the CLI daemonizes and calls {!run}.  Requests are
    processed inline and FIFO — a build request occupies the loop for
    its duration; concurrent clients' requests queue and their
    responses interleave by request id.  Client misbehaviour never
    takes the daemon down: a corrupt frame gets a best-effort
    {!Protocol.k_error} and a close, a version mismatch likewise, and a
    wedged client (half a frame, or a response it never drains) is
    dropped at [d_client_timeout_s] — the watchdog discipline of
    {!Worker}, applied to clients.

    A polling {!Watch} sweep runs between requests: dirty files are
    mapped to their dependent cone and either rebuilt eagerly
    ([d_watch]) or left to invalidate the next build lazily (the
    staleness check re-derives the cone from disk).  Builds take the
    advisory {!Lock} for their duration, so a stray one-shot
    [irm build] in the same directory serializes against the daemon
    instead of interleaving journal writes. *)

exception Already_running of string

type config = {
  d_dir : string;  (** project root *)
  d_state_dir : string;  (** socket/pid/log directory, default [.irm-daemon] *)
  d_groups : string list;  (** groups to build and track at startup *)
  d_watch : bool;  (** rebuild dirty cones eagerly *)
  d_poll_s : float;  (** watch sweep interval *)
  d_client_timeout_s : float;  (** drop a wedged client after this *)
  d_cache : bool;  (** attach the content-addressed unit cache *)
  d_policy : string;  (** policy for startup and watch rebuilds *)
  d_jobs : int;  (** jobs for startup and watch rebuilds *)
  d_hot_swap : bool;
      (** keep a live {!Link.Relink} dynenv per group: every clean
          build reconciles it transactionally (impl swaps in place,
          interface changes bump an epoch), and [Run] requests replay
          the pinned epoch instead of re-executing *)
  d_swap_budget_s : float;  (** watchdog: abort a swap exceeding this *)
  d_epoch_history : int;  (** retained non-current epoch records *)
  d_log : string -> unit;  (** daemon-side log line sink *)
}

val default_config : dir:string -> config

type t

(** [create cfg] — bind the socket, write the pid file, pre-build and
    track [cfg.d_groups].  Raises {!Already_running} if a live daemon
    already owns the socket (a stale socket file from a dead daemon is
    swept and rebound). *)
val create : config -> t

(** [step ?timeout_s t] — one reactor iteration: wait up to
    [timeout_s] (default 0.2) for socket activity or the next watch
    deadline, then accept/read/process/write what is ready. *)
val step : ?timeout_s:float -> t -> unit

(** Still serving?  Becomes false after a [Shutdown] request has been
    answered and drained, or after {!stop}. *)
val running : t -> bool

(** [run t] — {!step} until {!running} is false, then clean up
    (close connections, unlink socket and pid file).  An
    {!Irm.Driver.Interrupted} raised by a signal handler also cleans
    up, then re-raises for the caller's exit-code handling. *)
val run : t -> unit

(** [stop t] — stop serving and clean up now.  Idempotent; called
    automatically at the end of {!run}. *)
val stop : t -> unit
