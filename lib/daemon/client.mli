(** Client side of the compile-server socket protocol.

    [connect] distinguishes "no daemon is listening" (a normal
    condition — the CLI falls back to an in-process build) from a
    daemon that is present but misbehaving (a {!Protocol_error}):
    absence is [None], damage is an exception.

    All I/O is blocking with a deadline: a daemon that stops responding
    mid-request raises {!Timeout} rather than hanging the client. *)

exception Protocol_error of string
exception Timeout of string

type t

(** [connect ?state_dir ?timeout_s ~dir ()] — dial the daemon of
    project root [dir] and perform the HELLO/version handshake.
    [None] when no daemon is listening (no socket, nobody accepting, or
    a stale socket file).  Raises {!Protocol_error} on a version
    mismatch or a corrupt handshake. *)
val connect :
  ?state_dir:string -> ?timeout_s:float -> dir:string -> unit -> t option

(** What {!probe} found behind the daemon's state files. *)
type probe =
  | Live of t  (** a daemon answered the handshake; connection yours *)
  | Stale of int option
      (** leftovers of a dead daemon (the recorded pid, if readable,
          is not running) — the stale socket and pid files have been
          removed *)
  | Unresponsive of int
      (** the recorded pid is alive but its socket is not answering
          (likely mid-build); nothing was cleaned *)
  | Absent  (** no socket, no pid file: nothing ever ran here *)

(** [probe ?state_dir ?timeout_s ~dir ()] — like {!connect}, but
    diagnoses instead of shrugging: a SIGKILL'd daemon's leftovers are
    detected by checking the recorded pid (signal 0) and swept, with a
    short default budget (2 s) so `daemon status` never hangs on a
    corpse.  Raises {!Protocol_error} as {!connect} does (a live daemon
    speaking another protocol version is neither stale nor absent). *)
val probe :
  ?state_dir:string -> ?timeout_s:float -> dir:string -> unit -> probe

(** [request ?timeout_s ?on_diag t req] — send one request and wait for
    its response.  Diagnostic frames streamed before the response are
    handed to [on_diag] (the [smlsep-diag/1] JSON envelope, one per
    call) as they arrive.  [timeout_s] (default 600) bounds the wait —
    builds run inside the daemon, so the budget is generous. *)
val request :
  ?timeout_s:float ->
  ?on_diag:(string -> unit) ->
  t ->
  Protocol.request ->
  Protocol.response

val close : t -> unit
