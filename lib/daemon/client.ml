module Frame = Pickle.Frame

exception Protocol_error of string
exception Timeout of string

type t = {
  fd : Unix.file_descr;
  mutable buffer : string;  (** received, unparsed bytes *)
  mutable next_id : int;
  mutable closed : bool;
}

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* EINTR-safe blocking write of a whole frame *)
let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* read more bytes into the buffer, waiting at most until [deadline];
   returns false on EOF.  The deadline always surfaces as [Timeout]:
   the select retries around EINTR (a stray signal mid-HELLO must not
   escape as a raw [Unix_error]), and an EOF observed at or past the
   deadline is reported as the timeout it raced — a half-open peer
   (accepts, never writes) and a peer that dies exactly at the budget
   boundary both read as "did not respond in time". *)
let fill t ~deadline =
  let rec wait () =
    let budget = deadline -. Unix.gettimeofday () in
    if budget <= 0. then raise (Timeout "daemon did not respond in time");
    match Unix.select [ t.fd ] [] [] budget with
    | [], _, _ -> raise (Timeout "daemon did not respond in time")
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  wait ();
  let chunk = Bytes.create 65536 in
  match Unix.read t.fd chunk 0 (Bytes.length chunk) with
  | 0 ->
    if Unix.gettimeofday () >= deadline then
      raise (Timeout "daemon did not respond in time")
    else false
  | n ->
    t.buffer <- t.buffer ^ Bytes.sub_string chunk 0 n;
    true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> true

let rec next_frame t ~deadline =
  match Frame.pop t.buffer with
  | Some (msg, rest) ->
    t.buffer <- rest;
    msg
  | None ->
    if fill t ~deadline then next_frame t ~deadline
    else raise (Protocol_error "daemon closed the connection")
  | exception Pickle.Buf.Corrupt msg ->
    close t;
    raise (Protocol_error ("corrupt frame from daemon: " ^ msg))

let handshake t ~timeout_s =
  write_all t.fd
    (Frame.encode ~kind:Protocol.k_hello ~id:"" ~payload:Protocol.version);
  let deadline = Unix.gettimeofday () +. timeout_s in
  let msg = next_frame t ~deadline in
  if msg.Frame.f_kind = Protocol.k_error then
    raise (Protocol_error msg.Frame.f_payload);
  if msg.Frame.f_kind <> Protocol.k_hello then
    raise (Protocol_error "daemon did not answer the handshake");
  if not (String.equal msg.Frame.f_payload Protocol.version) then
    raise
      (Protocol_error
         (Printf.sprintf "daemon speaks %s, this client speaks %s"
            msg.Frame.f_payload Protocol.version))

let connect ?(state_dir = Protocol.default_state_dir) ?(timeout_s = 10.) ~dir
    () =
  let path = Protocol.socket_path ~dir ~state_dir in
  if not (Sys.file_exists path) then None
  else
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () ->
      let t = { fd; buffer = ""; next_id = 0; closed = false } in
      (match handshake t ~timeout_s with
      | () -> Some t
      | exception exn ->
        close t;
        raise exn)
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
      (* a socket file with nobody behind it: a dead daemon's leftover *)
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None
    | exception exn ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise exn

type probe =
  | Live of t
  | Stale of int option
  | Unresponsive of int
  | Absent

(* [probe] exists so `irm daemon status` can tell a SIGKILL'd daemon
   from a live one without hanging: a dead daemon leaves its pid and
   socket files behind, and connecting to the leftover socket fails
   fast (ECONNREFUSED) — so check the recorded pid with signal 0 and
   sweep the leftovers when nobody is home.  A pid that is alive but
   whose socket never answers is reported, not cleaned: it may be
   wedged mid-build and its files are still its own. *)
let probe ?(state_dir = Protocol.default_state_dir) ?(timeout_s = 2.) ~dir ()
    =
  let sock = Protocol.socket_path ~dir ~state_dir in
  let pidp = Protocol.pid_path ~dir ~state_dir in
  let pid =
    match In_channel.with_open_bin pidp In_channel.input_all with
    | contents -> int_of_string_opt (String.trim contents)
    | exception Sys_error _ -> None
  in
  (* a SIGKILL'd daemon may linger as a zombie until its reaper gets to
     it, and kill(pid, 0) succeeds on zombies — consult /proc state
     where available so the corpse still reads as dead *)
  let zombie p =
    match
      In_channel.with_open_bin
        (Printf.sprintf "/proc/%d/stat" p)
        In_channel.input_all
    with
    | stat -> (
      (* state is the first field after the parenthesised comm, which
         may itself contain spaces — split after the last ')' *)
      match String.rindex_opt stat ')' with
      | Some i when i + 2 < String.length stat -> stat.[i + 2] = 'Z'
      | _ -> false)
    | exception Sys_error _ -> false
  in
  let pid_alive =
    match pid with
    | None -> false
    | Some p -> (
      match Unix.kill p 0 with
      | () -> not (zombie p)
      | exception Unix.Unix_error (Unix.EPERM, _, _) -> true
      | exception Unix.Unix_error _ -> false)
  in
  let sweep () =
    (try Unix.unlink sock with Unix.Unix_error _ -> ());
    try Unix.unlink pidp with Unix.Unix_error _ -> ()
  in
  let dead () =
    if pid_alive then Unresponsive (Option.get pid)
    else if Sys.file_exists sock || pid <> None then begin
      sweep ();
      Stale pid
    end
    else Absent
  in
  match connect ~state_dir ~timeout_s ~dir () with
  | Some c -> Live c
  | None -> dead ()
  | exception Timeout _ -> dead ()

let request ?(timeout_s = 600.) ?(on_diag = fun _ -> ()) t req =
  if t.closed then raise (Protocol_error "connection is closed");
  t.next_id <- t.next_id + 1;
  let id = string_of_int t.next_id in
  write_all t.fd
    (Frame.encode ~kind:Protocol.k_request ~id
       ~payload:(Protocol.encode_request req));
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec wait () =
    let msg = next_frame t ~deadline in
    if msg.Frame.f_kind = Protocol.k_error then begin
      close t;
      raise (Protocol_error msg.Frame.f_payload)
    end
    else if not (String.equal msg.Frame.f_id id) then
      (* a response to an earlier, abandoned request: drop it *)
      wait ()
    else if msg.Frame.f_kind = Protocol.k_diag then begin
      on_diag msg.Frame.f_payload;
      wait ()
    end
    else if msg.Frame.f_kind = Protocol.k_response then
      Protocol.decode_response msg.Frame.f_payload
    else raise (Protocol_error "daemon sent an unexpected frame kind")
  in
  wait ()
