(* per-file fingerprint from the last sweep: the mtime observed and the
   content digest ("" = the file was absent) *)
type mark = { mk_mtime : int option; mk_digest : string }

type t = {
  fs : Vfs.fs;
  mutable files : string list;  (** tracking order *)
  marks : (string, mark) Hashtbl.t;
}

let digest_of fs file =
  match fs.Vfs.fs_read file with
  | Some content -> Digestkit.Md5.digest_string content
  | None -> ""

let mark_of fs file =
  { mk_mtime = fs.Vfs.fs_mtime file; mk_digest = digest_of fs file }

let create fs = { fs; files = []; marks = Hashtbl.create 16 }

let track t files =
  let keep = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace keep f ()) files;
  Hashtbl.iter
    (fun f _ -> if not (Hashtbl.mem keep f) then Hashtbl.remove t.marks f)
    (Hashtbl.copy t.marks);
  List.iter
    (fun f ->
      if not (Hashtbl.mem t.marks f) then
        Hashtbl.replace t.marks f (mark_of t.fs f))
    files;
  t.files <- files

let tracked t = t.files

let sweep t =
  (* mtimes have one-second granularity: an mtime equal to the current
     second may still be mid-edit, so only strictly-past mtimes take
     the no-read fast path *)
  let now = int_of_float (Unix.gettimeofday ()) in
  List.filter
    (fun file ->
      match Hashtbl.find_opt t.marks file with
      | None -> false (* untracked: track() races a sweep; ignore *)
      | Some mark -> (
        let mtime = t.fs.Vfs.fs_mtime file in
        let settled =
          match mtime with Some m -> m < now | None -> true
        in
        if settled && mark.mk_mtime = mtime && mark.mk_digest <> "" then false
        else
          let digest = digest_of t.fs file in
          let changed = not (String.equal digest mark.mk_digest) in
          if changed || mark.mk_mtime <> mtime then
            Hashtbl.replace t.marks file { mk_mtime = mtime; mk_digest = digest };
          changed))
    t.files
