let lock_file = ".irm-lock"

exception Held of { lock_path : string; holder : string }

type t = { l_fd : Unix.file_descr; l_path : string; mutable l_released : bool }

let read_holder path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> String.trim contents
  | exception Sys_error _ -> ""

(* POSIX record locks never conflict with their own process, so a
   second acquire from the same process would silently succeed — track
   held paths locally and refuse those too *)
let held_local : (string, unit) Hashtbl.t = Hashtbl.create 4
let local_mutex = Mutex.create ()

let acquire ~dir =
  let path = Filename.concat dir lock_file in
  Mutex.protect local_mutex (fun () ->
      if Hashtbl.mem held_local path then
        raise
          (Held { lock_path = path; holder = string_of_int (Unix.getpid ()) }));
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 in
  match Unix.lockf fd Unix.F_TLOCK 0 with
  | () ->
    (* record who holds it, for the diagnostic the loser prints *)
    ignore (Unix.lseek fd 0 Unix.SEEK_SET);
    (try Unix.ftruncate fd 0 with Unix.Unix_error _ -> ());
    let pid = string_of_int (Unix.getpid ()) ^ "\n" in
    ignore (Unix.write_substring fd pid 0 (String.length pid));
    Mutex.protect local_mutex (fun () -> Hashtbl.replace held_local path ());
    { l_fd = fd; l_path = path; l_released = false }
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
    Unix.close fd;
    raise (Held { lock_path = path; holder = read_holder path })

let release t =
  if not t.l_released then begin
    t.l_released <- true;
    Mutex.protect local_mutex (fun () -> Hashtbl.remove held_local t.l_path);
    (* dropping the fd drops the lockf lock *)
    try Unix.close t.l_fd with Unix.Unix_error _ -> ()
  end

let with_lock ~dir f =
  let t = acquire ~dir in
  Fun.protect ~finally:(fun () -> release t) f
