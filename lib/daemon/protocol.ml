module Buf = Pickle.Buf

let version = "smlsep-daemon/2"

(* disjoint from the worker protocol's 0..5 tag space *)
let k_hello = 16
let k_request = 17
let k_response = 18
let k_diag = 19
let k_error = 20

let default_state_dir = ".irm-daemon"

let join dir path =
  if Filename.is_relative path then Filename.concat dir path else path

let socket_path ~dir ~state_dir = Filename.concat (join dir state_dir) "sock"
let pid_path ~dir ~state_dir = Filename.concat (join dir state_dir) "pid"
let log_path ~dir ~state_dir = Filename.concat (join dir state_dir) "log"

type build_opts = {
  b_group : string;
  b_policy : string;
  b_jobs : int;
  b_cache : bool;
  b_keep_going : bool;
  b_werror : bool;
  b_max_errors : int option;
  b_error_json : bool;
  b_schedule : string;
}

type request =
  | Build of build_opts
  | Run of build_opts
  | Explain of { e_unit : string; e_json : bool }
  | Profile of { p_json : bool; p_top : int }
  | Status
  | Shutdown
  | Swap of { s_group : string; s_unit : string }
  | Epochs of { ep_group : string; ep_json : bool }

type response = { r_code : int; r_out : string; r_err : string }

let write_opts w o =
  Buf.string w o.b_group;
  Buf.string w o.b_policy;
  Buf.int w o.b_jobs;
  Buf.bool w o.b_cache;
  Buf.bool w o.b_keep_going;
  Buf.bool w o.b_werror;
  Buf.option w (Buf.int w) o.b_max_errors;
  Buf.bool w o.b_error_json;
  Buf.string w o.b_schedule

let read_opts r =
  let b_group = Buf.read_string r in
  let b_policy = Buf.read_string r in
  let b_jobs = Buf.read_int r in
  let b_cache = Buf.read_bool r in
  let b_keep_going = Buf.read_bool r in
  let b_werror = Buf.read_bool r in
  let b_max_errors = Buf.read_option r (fun () -> Buf.read_int r) in
  let b_error_json = Buf.read_bool r in
  let b_schedule = Buf.read_string r in
  {
    b_group;
    b_policy;
    b_jobs;
    b_cache;
    b_keep_going;
    b_werror;
    b_max_errors;
    b_error_json;
    b_schedule;
  }

let encode_request req =
  let w = Buf.writer () in
  (match req with
  | Build opts ->
    Buf.byte w 0;
    write_opts w opts
  | Run opts ->
    Buf.byte w 1;
    write_opts w opts
  | Explain { e_unit; e_json } ->
    Buf.byte w 2;
    Buf.string w e_unit;
    Buf.bool w e_json
  | Profile { p_json; p_top } ->
    Buf.byte w 3;
    Buf.bool w p_json;
    Buf.int w p_top
  | Status -> Buf.byte w 4
  | Shutdown -> Buf.byte w 5
  | Swap { s_group; s_unit } ->
    Buf.byte w 6;
    Buf.string w s_group;
    Buf.string w s_unit
  | Epochs { ep_group; ep_json } ->
    Buf.byte w 7;
    Buf.string w ep_group;
    Buf.bool w ep_json);
  Buf.contents w

let decode_request payload =
  let r = Buf.reader payload in
  match Buf.read_byte r with
  | 0 -> Build (read_opts r)
  | 1 -> Run (read_opts r)
  | 2 ->
    let e_unit = Buf.read_string r in
    let e_json = Buf.read_bool r in
    Explain { e_unit; e_json }
  | 3 ->
    let p_json = Buf.read_bool r in
    let p_top = Buf.read_int r in
    Profile { p_json; p_top }
  | 4 -> Status
  | 5 -> Shutdown
  | 6 ->
    let s_group = Buf.read_string r in
    let s_unit = Buf.read_string r in
    Swap { s_group; s_unit }
  | 7 ->
    let ep_group = Buf.read_string r in
    let ep_json = Buf.read_bool r in
    Epochs { ep_group; ep_json }
  | tag -> raise (Buf.Corrupt (Printf.sprintf "unknown request tag %d" tag))

let encode_response resp =
  let w = Buf.writer () in
  Buf.int w resp.r_code;
  Buf.string w resp.r_out;
  Buf.string w resp.r_err;
  Buf.contents w

let decode_response payload =
  let r = Buf.reader payload in
  let r_code = Buf.read_int r in
  let r_out = Buf.read_string r in
  let r_err = Buf.read_string r in
  { r_code; r_out; r_err }
