(** Polling file watcher: an mtime-then-digest sweep.

    No OS-specific notification APIs — the daemon polls, which works on
    every file system the {!Vfs} abstraction does (including the
    in-memory one the tests use).  Each sweep takes the cheap path
    first: a file whose mtime is unchanged {e and} safely in the past
    is assumed clean without reading it.  A file modified within the
    current second is always re-read and content-hashed (MD5), because
    second-granularity mtimes cannot distinguish two edits inside the
    same tick — so an edit is never missed, at the cost of hashing
    freshly-touched files for one extra sweep.

    The watcher only reports {e which} files changed; mapping dirty
    files to the dependent cone and deciding eager-vs-lazy rebuild is
    the server's job. *)

type t

val create : Vfs.fs -> t

(** [track t files] — replace the watched set.  Newly tracked files are
    primed silently (they will not be reported dirty until they change
    {e after} this call); files no longer listed are forgotten. *)
val track : t -> string list -> unit

val tracked : t -> string list

(** [sweep t] — poll every tracked file; returns the files whose
    content changed (or appeared/disappeared) since the last sweep, in
    tracking order. *)
val sweep : t -> string list
