(** Hand-written lexer for MiniSML.

    SML comments nest; string literals support the escapes
    backslash-n, -t, -backslash, -quote and decimal (backslash-ddd).
    Negative integer literals are written with [~] as in SML (e.g. [~3]). *)

type t

(** [make ~file source] lexes the whole of [source].  Without [diags]
    the first lexical error raises {!Support.Diag.Error}; with a
    collector, errors are recorded and scanning resumes one character
    past the failure point. *)
val make : ?diags:Support.Diag.collector -> file:string -> string -> t

(** Current token (EOF once exhausted). *)
val peek : t -> Token.t

(** Location of the current token. *)
val loc : t -> Support.Loc.t

(** Token after the current one, without advancing. *)
val peek2 : t -> Token.t

(** Consume the current token and return it. *)
val next : t -> Token.t

(** [all ~file source] is the full token stream with locations, EOF last.
    Mainly for tests and the dependency scanner. *)
val all :
  ?diags:Support.Diag.collector ->
  file:string -> string -> (Token.t * Support.Loc.t) list
