(** Recursive-descent parser for MiniSML.

    Infix expressions follow SML's default fixities:
    {v
      7  * / div mod          (left)
      6  + - ^                (left)
      5  :: @                 (right)
      4  = <> < > <= >=       (left)
      3  :=                   (left)
    v}
    with [andalso] binding tighter than [orelse], both below the table,
    and [handle]/type constraints weakest.  Match constructs ([fn],
    [case], [handle]) extend as far right as possible, as in SML. *)

(** [parse_unit ~file source] parses a whole compilation unit.
    Without [diags], the first syntax error raises
    {!Support.Diag.Error}.  With a collector, the parser reports the
    error, synchronizes at the next declaration keyword (or a scope
    delimiter), and keeps parsing, so one broken declaration still
    yields the rest of the file's diagnostics. *)
val parse_unit :
  ?diags:Support.Diag.collector -> file:string -> string -> Ast.unit_

(** [parse_exp ~file source] parses a single expression followed by EOF;
    used by the REPL and tests. *)
val parse_exp : file:string -> string -> Ast.exp

(** [parse_decs ~file source] parses a declaration sequence followed by
    EOF; used by the REPL.  [diags] enables the same recovery as
    {!parse_unit}. *)
val parse_decs :
  ?diags:Support.Diag.collector -> file:string -> string -> Ast.dec list
