module Loc = Support.Loc
module Diag = Support.Diag

type t = {
  tokens : (Token.t * Loc.t) array;
  mutable pos : int;
}

(* The scanner proper: a cursor over the source string tracking
   line/column. *)
type cursor = {
  file : string;
  src : string;
  mutable offset : int;
  mutable line : int;
  mutable col : int;
}

let cursor_pos cur = { Loc.line = cur.line; col = cur.col; offset = cur.offset }

let at_end cur = cur.offset >= String.length cur.src
let current cur = cur.src.[cur.offset]

let advance cur =
  (if current cur = '\n' then begin
     cur.line <- cur.line + 1;
     cur.col <- 0
   end
   else cur.col <- cur.col + 1);
  cur.offset <- cur.offset + 1

let lex_error cur fmt =
  let pos = cursor_pos cur in
  Diag.error Diag.Lex (Loc.make cur.file pos pos) fmt

let is_digit ch = ch >= '0' && ch <= '9'

let is_id_start ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')

let is_id_char ch = is_id_start ch || is_digit ch || ch = '_' || ch = '\''

(* Skip whitespace and (nested) comments; raise on unterminated comment. *)
let rec skip_trivia cur =
  if at_end cur then ()
  else
    match current cur with
    | ' ' | '\t' | '\r' | '\n' ->
      advance cur;
      skip_trivia cur
    | '(' when cur.offset + 1 < String.length cur.src
               && cur.src.[cur.offset + 1] = '*' ->
      let start = cursor_pos cur in
      advance cur;
      advance cur;
      skip_comment cur start 1;
      skip_trivia cur
    | _ -> ()

and skip_comment cur start depth =
  if depth = 0 then ()
  else if at_end cur then
    Diag.error Diag.Lex (Loc.make cur.file start start) "unterminated comment"
  else if
    current cur = '('
    && cur.offset + 1 < String.length cur.src
    && cur.src.[cur.offset + 1] = '*'
  then begin
    advance cur;
    advance cur;
    skip_comment cur start (depth + 1)
  end
  else if
    current cur = '*'
    && cur.offset + 1 < String.length cur.src
    && cur.src.[cur.offset + 1] = ')'
  then begin
    advance cur;
    advance cur;
    skip_comment cur start (depth - 1)
  end
  else begin
    advance cur;
    skip_comment cur start depth
  end

let lex_int cur ~negative =
  let buf = Buffer.create 8 in
  while (not (at_end cur)) && is_digit (current cur) do
    Buffer.add_char buf (current cur);
    advance cur
  done;
  let magnitude = int_of_string (Buffer.contents buf) in
  Token.INT (if negative then -magnitude else magnitude)

let lex_string cur =
  advance cur (* opening quote *);
  let buf = Buffer.create 16 in
  let rec loop () =
    if at_end cur then lex_error cur "unterminated string literal"
    else
      match current cur with
      | '"' ->
        advance cur;
        Token.STRING (Buffer.contents buf)
      | '\\' ->
        advance cur;
        if at_end cur then lex_error cur "unterminated escape"
        else begin
          (match current cur with
          | 'n' ->
            Buffer.add_char buf '\n';
            advance cur
          | 't' ->
            Buffer.add_char buf '\t';
            advance cur
          | '\\' ->
            Buffer.add_char buf '\\';
            advance cur
          | '"' ->
            Buffer.add_char buf '"';
            advance cur
          | ch when is_digit ch ->
            (* \ddd decimal escape *)
            let d = Buffer.create 3 in
            for _ = 1 to 3 do
              if at_end cur || not (is_digit (current cur)) then
                lex_error cur "bad decimal escape"
              else begin
                Buffer.add_char d (current cur);
                advance cur
              end
            done;
            let code = int_of_string (Buffer.contents d) in
            if code > 255 then lex_error cur "escape out of range"
            else Buffer.add_char buf (Char.chr code)
          | ch -> lex_error cur "unknown escape '\\%c'" ch);
          loop ()
        end
      | '\n' -> lex_error cur "newline in string literal"
      | ch ->
        Buffer.add_char buf ch;
        advance cur;
        loop ()
  in
  loop ()

let lex_word cur =
  let buf = Buffer.create 12 in
  while (not (at_end cur)) && is_id_char (current cur) do
    Buffer.add_char buf (current cur);
    advance cur
  done;
  let word = Buffer.contents buf in
  match Token.keyword word with Some tok -> tok | None -> Token.ID word

let lex_tyvar cur =
  advance cur (* the quote *);
  let buf = Buffer.create 4 in
  while (not (at_end cur)) && is_id_char (current cur) do
    Buffer.add_char buf (current cur);
    advance cur
  done;
  if Buffer.length buf = 0 then lex_error cur "empty type variable"
  else Token.TYVAR (Buffer.contents buf)

(* Longest-match scanning of symbolic tokens. *)
let lex_symbolic cur =
  let two =
    if cur.offset + 1 < String.length cur.src then
      Some (String.sub cur.src cur.offset 2)
    else None
  in
  let take2 tok =
    advance cur;
    advance cur;
    tok
  in
  let take1 tok =
    advance cur;
    tok
  in
  match two with
  | Some "=>" -> take2 Token.DARROW
  | Some "->" -> take2 Token.ARROW
  | Some ":>" -> take2 Token.COLONGT
  | Some ":=" -> take2 Token.ASSIGN
  | Some "<=" -> take2 Token.LESSEQ
  | Some ">=" -> take2 Token.GREATEREQ
  | Some "<>" -> take2 Token.NOTEQ
  | Some "::" -> take2 Token.CONS
  | _ -> (
    match current cur with
    | '(' -> take1 Token.LPAREN
    | ')' -> take1 Token.RPAREN
    | '[' -> take1 Token.LBRACKET
    | ']' -> take1 Token.RBRACKET
    | ',' -> take1 Token.COMMA
    | ';' -> take1 Token.SEMI
    | '_' -> take1 Token.UNDERSCORE
    | '|' -> take1 Token.BAR
    | '=' -> take1 Token.EQUAL
    | ':' -> take1 Token.COLON
    | '.' -> take1 Token.DOT
    | '*' -> take1 Token.STAR
    | '+' -> take1 Token.PLUS
    | '-' -> take1 Token.MINUS
    | '/' -> take1 Token.SLASH
    | '^' -> take1 Token.CARET
    | '<' -> take1 Token.LESS
    | '>' -> take1 Token.GREATER
    | '@' -> take1 Token.AT
    | '!' -> take1 Token.BANG
    | '#' -> take1 Token.HASH
    | ch -> lex_error cur "illegal character '%c'" ch)

let scan_token cur =
  let start = cursor_pos cur in
  let tok =
    match current cur with
    | '"' -> lex_string cur
    | '\'' -> lex_tyvar cur
    | '~' ->
      advance cur;
      if (not (at_end cur)) && is_digit (current cur) then
        lex_int cur ~negative:true
      else lex_error cur "'~' must begin a negative integer literal"
    | ch when is_digit ch -> lex_int cur ~negative:false
    | ch when is_id_start ch -> lex_word cur
    | _ -> lex_symbolic cur
  in
  (tok, Loc.make cur.file start (cursor_pos cur))

let all ?diags ~file src =
  let cur = { file; src; offset = 0; line = 1; col = 0 } in
  let eof acc =
    let p = cursor_pos cur in
    List.rev ((Token.EOF, Loc.make file p p) :: acc)
  in
  let rec loop acc =
    match
      skip_trivia cur;
      if at_end cur then None else Some (scan_token cur)
    with
    | None -> eof acc
    | Some tok -> loop (tok :: acc)
    | exception Diag.Error d -> (
      (* recovery: report the bad token and resynchronize one character
         past the failure point so scanning always makes progress *)
      match diags with
      | None -> raise (Diag.Error d)
      | Some c ->
        Diag.emit c d;
        if at_end cur then eof acc
        else begin
          advance cur;
          loop acc
        end)
  in
  loop []

let make ?diags ~file src =
  { tokens = Array.of_list (all ?diags ~file src); pos = 0 }

let peek lexer = fst lexer.tokens.(lexer.pos)
let loc lexer = snd lexer.tokens.(lexer.pos)

let peek2 lexer =
  if lexer.pos + 1 < Array.length lexer.tokens then
    fst lexer.tokens.(lexer.pos + 1)
  else Token.EOF

let next lexer =
  let tok = peek lexer in
  if lexer.pos + 1 < Array.length lexer.tokens then lexer.pos <- lexer.pos + 1;
  tok
