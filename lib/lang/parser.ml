module Symbol = Support.Symbol
module Loc = Support.Loc
module Diag = Support.Diag
open Ast

type state = { lx : Lexer.t; diags : Diag.collector option }

let err st fmt = Diag.error Diag.Parse (Lexer.loc st.lx) fmt

let starts_dec = function
  | Token.VAL | Token.FUN | Token.TYPE | Token.DATATYPE | Token.EXCEPTION
  | Token.STRUCTURE | Token.SIGNATURE | Token.FUNCTOR | Token.LOCAL
  | Token.OPEN ->
    true
  | _ -> false

(* Error recovery: skip tokens until something that can plausibly
   follow a broken declaration — the start of the next declaration, a
   scope delimiter the enclosing construct is waiting for, or EOF.
   [parse_dec] always consumes its leading keyword before it can fail,
   so each recovery round makes progress. *)
let sync_to_dec st =
  let rec skip () =
    match Lexer.peek st.lx with
    | Token.EOF | Token.IN | Token.END -> ()
    | tok when starts_dec tok -> ()
    | _ ->
      ignore (Lexer.next st.lx);
      skip ()
  in
  skip ()

let expect st tok =
  let got = Lexer.peek st.lx in
  if got = tok then ignore (Lexer.next st.lx)
  else
    err st "expected '%s' but found '%s'" (Token.to_string tok)
      (Token.to_string got)

let accept st tok =
  if Lexer.peek st.lx = tok then begin
    ignore (Lexer.next st.lx);
    true
  end
  else false

let expect_id st what =
  match Lexer.peek st.lx with
  | Token.ID name ->
    ignore (Lexer.next st.lx);
    Symbol.intern name
  | tok -> err st "expected %s but found '%s'" what (Token.to_string tok)

(* A dotted path: ID (. ID)* *)
let parse_path st =
  let first = expect_id st "an identifier" in
  let rec loop acc =
    if Lexer.peek st.lx = Token.DOT then begin
      ignore (Lexer.next st.lx);
      let next = expect_id st "an identifier after '.'" in
      loop (next :: acc)
    end
    else acc
  in
  match loop [ first ] with
  | [] -> assert false
  | base :: rev_quals -> { qualifiers = List.rev rev_quals; base }

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let rec parse_ty st =
  let left = parse_ty_tuple st in
  if accept st Token.ARROW then
    let right = parse_ty st in
    { ty_desc = Tarrow (left, right); ty_loc = Loc.merge left.ty_loc right.ty_loc }
  else left

and parse_ty_tuple st =
  let first = parse_ty_app st in
  if Lexer.peek st.lx = Token.STAR then begin
    let rec loop acc =
      if accept st Token.STAR then loop (parse_ty_app st :: acc)
      else List.rev acc
    in
    let parts = loop [ first ] in
    let last = List.nth parts (List.length parts - 1) in
    { ty_desc = Ttuple parts; ty_loc = Loc.merge first.ty_loc last.ty_loc }
  end
  else first

(* Postfix type application: [int list], [('a,'b) pair t]. *)
and parse_ty_app st =
  let rec post arg =
    match Lexer.peek st.lx with
    | Token.ID _ ->
      let loc = Lexer.loc st.lx in
      let path = parse_path st in
      post { ty_desc = Tcon ([ arg ], path); ty_loc = Loc.merge arg.ty_loc loc }
    | _ -> arg
  in
  post (parse_ty_atom st)

and parse_ty_atom st =
  let loc = Lexer.loc st.lx in
  match Lexer.peek st.lx with
  | Token.TYVAR name ->
    ignore (Lexer.next st.lx);
    { ty_desc = Tvar (Symbol.intern name); ty_loc = loc }
  | Token.ID _ ->
    let path = parse_path st in
    { ty_desc = Tcon ([], path); ty_loc = loc }
  | Token.LPAREN ->
    ignore (Lexer.next st.lx);
    let first = parse_ty st in
    if accept st Token.COMMA then begin
      (* parenthesised argument sequence: (ty, ty, …) longtycon *)
      let rec loop acc =
        let ty = parse_ty st in
        if accept st Token.COMMA then loop (ty :: acc) else List.rev (ty :: acc)
      in
      let args = first :: loop [] in
      expect st Token.RPAREN;
      let path_loc = Lexer.loc st.lx in
      let path = parse_path st in
      { ty_desc = Tcon (args, path); ty_loc = Loc.merge loc path_loc }
    end
    else begin
      expect st Token.RPAREN;
      first
    end
  | tok -> err st "expected a type but found '%s'" (Token.to_string tok)

let parse_tyvar_seq st =
  (* Empty, single ['a], or parenthesised [('a, 'b)]. *)
  match Lexer.peek st.lx with
  | Token.TYVAR name ->
    ignore (Lexer.next st.lx);
    [ Symbol.intern name ]
  | Token.LPAREN when (match Lexer.peek2 st.lx with Token.TYVAR _ -> true | _ -> false) ->
    ignore (Lexer.next st.lx);
    let rec loop acc =
      match Lexer.peek st.lx with
      | Token.TYVAR name ->
        ignore (Lexer.next st.lx);
        let acc = Symbol.intern name :: acc in
        if accept st Token.COMMA then loop acc else List.rev acc
      | tok -> err st "expected a type variable but found '%s'" (Token.to_string tok)
    in
    let tyvars = loop [] in
    expect st Token.RPAREN;
    tyvars
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)
(* ------------------------------------------------------------------ *)

let rec parse_pat st =
  let pat = parse_pat_cons st in
  if accept st Token.COLON then
    let ty = parse_ty st in
    { pat_desc = Pconstraint (pat, ty); pat_loc = Loc.merge pat.pat_loc ty.ty_loc }
  else pat

(* [::] is right-associative. *)
and parse_pat_cons st =
  let left = parse_pat_app st in
  if accept st Token.CONS then
    let right = parse_pat_cons st in
    let loc = Loc.merge left.pat_loc right.pat_loc in
    {
      pat_desc =
        Pcon
          ( path_of_string "::",
            Some { pat_desc = Ptuple [ left; right ]; pat_loc = loc } );
      pat_loc = loc;
    }
  else left

(* Constructor application: a path followed by an atomic pattern.
   Whether the head really is a constructor is decided in elaboration. *)
and parse_pat_app st =
  match Lexer.peek st.lx with
  | Token.ID _ ->
    let loc = Lexer.loc st.lx in
    let path = parse_path st in
    (* [x as pat] *)
    if path.qualifiers = [] && accept st Token.AS then
      let pat = parse_pat st in
      { pat_desc = Pas (path.base, pat); pat_loc = Loc.merge loc pat.pat_loc }
    else if starts_atomic_pat (Lexer.peek st.lx) then
      let arg = parse_pat_atom st in
      { pat_desc = Pcon (path, Some arg); pat_loc = Loc.merge loc arg.pat_loc }
    else if path.qualifiers = [] then { pat_desc = Pvar path.base; pat_loc = loc }
    else { pat_desc = Pcon (path, None); pat_loc = loc }
  | _ -> parse_pat_atom st

and starts_atomic_pat = function
  | Token.ID _ | Token.INT _ | Token.STRING _ | Token.UNDERSCORE
  | Token.LPAREN | Token.LBRACKET ->
    true
  | _ -> false

and parse_pat_atom st =
  let loc = Lexer.loc st.lx in
  match Lexer.peek st.lx with
  | Token.UNDERSCORE ->
    ignore (Lexer.next st.lx);
    { pat_desc = Pwild; pat_loc = loc }
  | Token.INT n ->
    ignore (Lexer.next st.lx);
    { pat_desc = Pint n; pat_loc = loc }
  | Token.STRING s ->
    ignore (Lexer.next st.lx);
    { pat_desc = Pstring s; pat_loc = loc }
  | Token.ID _ ->
    let path = parse_path st in
    if path.qualifiers = [] then { pat_desc = Pvar path.base; pat_loc = loc }
    else { pat_desc = Pcon (path, None); pat_loc = loc }
  | Token.LPAREN ->
    ignore (Lexer.next st.lx);
    if accept st Token.RPAREN then { pat_desc = Ptuple []; pat_loc = loc }
    else begin
      let first = parse_pat st in
      if accept st Token.COMMA then begin
        let rec loop acc =
          let pat = parse_pat st in
          if accept st Token.COMMA then loop (pat :: acc)
          else List.rev (pat :: acc)
        in
        let pats = first :: loop [] in
        expect st Token.RPAREN;
        { pat_desc = Ptuple pats; pat_loc = loc }
      end
      else begin
        expect st Token.RPAREN;
        first
      end
    end
  | Token.LBRACKET ->
    ignore (Lexer.next st.lx);
    if accept st Token.RBRACKET then { pat_desc = Plist []; pat_loc = loc }
    else begin
      let rec loop acc =
        let pat = parse_pat st in
        if accept st Token.COMMA then loop (pat :: acc) else List.rev (pat :: acc)
      in
      let pats = loop [] in
      expect st Token.RBRACKET;
      { pat_desc = Plist pats; pat_loc = loc }
    end
  | tok -> err st "expected a pattern but found '%s'" (Token.to_string tok)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

type assoc = Left | Right

(* SML default fixities for the operators MiniSML supports. *)
let infix_of_token = function
  | Token.STAR -> Some ("*", 7, Left)
  | Token.SLASH -> Some ("/", 7, Left)
  | Token.ID "div" -> Some ("div", 7, Left)
  | Token.ID "mod" -> Some ("mod", 7, Left)
  | Token.PLUS -> Some ("+", 6, Left)
  | Token.MINUS -> Some ("-", 6, Left)
  | Token.CARET -> Some ("^", 6, Left)
  | Token.CONS -> Some ("::", 5, Right)
  | Token.AT -> Some ("@", 5, Right)
  | Token.EQUAL -> Some ("=", 4, Left)
  | Token.NOTEQ -> Some ("<>", 4, Left)
  | Token.LESS -> Some ("<", 4, Left)
  | Token.GREATER -> Some (">", 4, Left)
  | Token.LESSEQ -> Some ("<=", 4, Left)
  | Token.GREATEREQ -> Some (">=", 4, Left)
  | Token.ASSIGN -> Some (":=", 3, Left)
  | _ -> None

let starts_atomic_exp = function
  | Token.ID _ | Token.INT _ | Token.STRING _ | Token.LPAREN | Token.LBRACKET
  | Token.LET | Token.HASH | Token.BANG | Token.OP ->
    true
  | _ -> false

let mkapp f arg =
  { exp_desc = Eapp (f, arg); exp_loc = Loc.merge f.exp_loc arg.exp_loc }

let binop name left right =
  let loc = Loc.merge left.exp_loc right.exp_loc in
  let f = { exp_desc = Evar (path_of_string name); exp_loc = loc } in
  mkapp f { exp_desc = Etuple [ left; right ]; exp_loc = loc }

let rec parse_exp_ st =
  let exp = parse_orelse st in
  (* Postfix: handle, type constraint; both weakest, left to right. *)
  let rec post exp =
    match Lexer.peek st.lx with
    | Token.HANDLE ->
      ignore (Lexer.next st.lx);
      let rules = parse_match st in
      post { exp_desc = Ehandle (exp, rules); exp_loc = exp.exp_loc }
    | Token.COLON ->
      ignore (Lexer.next st.lx);
      let ty = parse_ty st in
      post
        {
          exp_desc = Econstraint (exp, ty);
          exp_loc = Loc.merge exp.exp_loc ty.ty_loc;
        }
    | _ -> exp
  in
  post exp

and parse_orelse st =
  let left = parse_andalso st in
  if accept st Token.ORELSE then
    let right = parse_orelse st in
    { exp_desc = Eorelse (left, right); exp_loc = Loc.merge left.exp_loc right.exp_loc }
  else left

and parse_andalso st =
  let left = parse_infix st 1 in
  if accept st Token.ANDALSO then
    let right = parse_andalso st in
    { exp_desc = Eandalso (left, right); exp_loc = Loc.merge left.exp_loc right.exp_loc }
  else left

(* Precedence climbing over the fixity table. *)
and parse_infix st min_prec =
  let rec loop left =
    match infix_of_token (Lexer.peek st.lx) with
    | Some (name, prec, assoc) when prec >= min_prec ->
      ignore (Lexer.next st.lx);
      let next_min = match assoc with Left -> prec + 1 | Right -> prec in
      let right = parse_infix_operand st next_min in
      let combined =
        if name = "::" then
          let loc = Loc.merge left.exp_loc right.exp_loc in
          mkapp
            { exp_desc = Evar (path_of_string "::"); exp_loc = loc }
            { exp_desc = Etuple [ left; right ]; exp_loc = loc }
        else binop name left right
      in
      loop combined
    | _ -> left
  in
  loop (parse_operand st)

and parse_infix_operand st min_prec =
  (* The right operand of an infix: either another infix chain or a
     right-extending special form. *)
  match Lexer.peek st.lx with
  | Token.IF | Token.CASE | Token.FN | Token.RAISE -> parse_special st
  | _ -> parse_infix st min_prec

(* An operand: a special form (which extends maximally right) or an
   application of atomic expressions. *)
and parse_operand st =
  match Lexer.peek st.lx with
  | Token.IF | Token.CASE | Token.FN | Token.RAISE -> parse_special st
  | _ -> parse_app st

and parse_special st =
  let loc = Lexer.loc st.lx in
  match Lexer.peek st.lx with
  | Token.IF ->
    ignore (Lexer.next st.lx);
    let cond = parse_exp_ st in
    expect st Token.THEN;
    let then_ = parse_exp_ st in
    expect st Token.ELSE;
    let else_ = parse_exp_ st in
    { exp_desc = Eif (cond, then_, else_); exp_loc = Loc.merge loc else_.exp_loc }
  | Token.CASE ->
    ignore (Lexer.next st.lx);
    let scrutinee = parse_exp_ st in
    expect st Token.OF;
    let rules = parse_match st in
    { exp_desc = Ecase (scrutinee, rules); exp_loc = loc }
  | Token.FN ->
    ignore (Lexer.next st.lx);
    let rules = parse_match st in
    { exp_desc = Efn rules; exp_loc = loc }
  | Token.RAISE ->
    ignore (Lexer.next st.lx);
    let exp = parse_exp_ st in
    { exp_desc = Eraise exp; exp_loc = Loc.merge loc exp.exp_loc }
  | tok -> err st "expected an expression but found '%s'" (Token.to_string tok)

and parse_match st =
  let rec loop acc =
    let pat = parse_pat st in
    expect st Token.DARROW;
    let exp = parse_exp_ st in
    let acc = { rule_pat = pat; rule_exp = exp } :: acc in
    if accept st Token.BAR then loop acc else List.rev acc
  in
  loop []

and parse_app st =
  let head = parse_atom st in
  let rec loop f =
    let tok = Lexer.peek st.lx in
    (* [div]/[mod] lex as identifiers but are infix: stop application *)
    if starts_atomic_exp tok && infix_of_token tok = None then
      loop (mkapp f (parse_atom st))
    else f
  in
  loop head

and parse_atom st =
  let loc = Lexer.loc st.lx in
  match Lexer.peek st.lx with
  | Token.INT n ->
    ignore (Lexer.next st.lx);
    { exp_desc = Eint n; exp_loc = loc }
  | Token.STRING s ->
    ignore (Lexer.next st.lx);
    { exp_desc = Estring s; exp_loc = loc }
  | Token.ID _ ->
    let path = parse_path st in
    { exp_desc = Evar path; exp_loc = loc }
  | Token.BANG ->
    (* dereference: [!e] is [! e] *)
    ignore (Lexer.next st.lx);
    let arg = parse_atom st in
    mkapp { exp_desc = Evar (path_of_string "!"); exp_loc = loc } arg
  | Token.OP ->
    ignore (Lexer.next st.lx);
    let name =
      match Lexer.peek st.lx with
      | Token.ID name ->
        ignore (Lexer.next st.lx);
        name
      | tok -> (
        match infix_of_token tok with
        | Some (name, _, _) ->
          ignore (Lexer.next st.lx);
          name
        | None -> err st "expected an operator after 'op'")
    in
    { exp_desc = Evar (path_of_string name); exp_loc = loc }
  | Token.HASH -> (
    ignore (Lexer.next st.lx);
    match Lexer.peek st.lx with
    | Token.INT n when n >= 1 ->
      ignore (Lexer.next st.lx);
      { exp_desc = Eselect n; exp_loc = loc }
    | _ -> err st "expected a positive integer after '#'")
  | Token.LET ->
    ignore (Lexer.next st.lx);
    let decs = parse_dec_seq st in
    expect st Token.IN;
    (* SML allows [let … in e1; e2; … end]; a sequence evaluates each
       expression and returns the last. *)
    let first = parse_exp_ st in
    let rec seq acc =
      if accept st Token.SEMI then seq (parse_exp_ st :: acc) else List.rev acc
    in
    let exps = first :: seq [] in
    expect st Token.END;
    let body =
      match exps with
      | [ single ] -> single
      | several -> sequence_exps several
    in
    { exp_desc = Elet (decs, body); exp_loc = loc }
  | Token.LPAREN ->
    ignore (Lexer.next st.lx);
    if accept st Token.RPAREN then { exp_desc = Etuple []; exp_loc = loc }
    else begin
      let first = parse_exp_ st in
      match Lexer.peek st.lx with
      | Token.COMMA ->
        let rec loop acc =
          if accept st Token.COMMA then loop (parse_exp_ st :: acc)
          else List.rev acc
        in
        let exps = first :: loop [] in
        expect st Token.RPAREN;
        { exp_desc = Etuple exps; exp_loc = loc }
      | Token.SEMI ->
        (* parenthesised sequence: (e1; e2; …) *)
        let rec loop acc =
          if accept st Token.SEMI then loop (parse_exp_ st :: acc)
          else List.rev acc
        in
        let exps = first :: loop [] in
        expect st Token.RPAREN;
        sequence_exps exps
      | _ ->
        expect st Token.RPAREN;
        first
    end
  | Token.LBRACKET ->
    ignore (Lexer.next st.lx);
    if accept st Token.RBRACKET then { exp_desc = Elist []; exp_loc = loc }
    else begin
      let rec loop acc =
        let exp = parse_exp_ st in
        if accept st Token.COMMA then loop (exp :: acc) else List.rev (exp :: acc)
      in
      let exps = loop [] in
      expect st Token.RBRACKET;
      { exp_desc = Elist exps; exp_loc = loc }
    end
  | tok -> err st "expected an expression but found '%s'" (Token.to_string tok)

(* (e1; e2; …; en) evaluates left to right, discarding all but the last. *)
and sequence_exps exps =
  match exps with
  | [] -> assert false
  | [ last ] -> last
  | first :: rest ->
    let rest_exp = sequence_exps rest in
    let loc = Loc.merge first.exp_loc rest_exp.exp_loc in
    {
      exp_desc =
        Elet
          ( [ { dec_desc = Dval ({ pat_desc = Pwild; pat_loc = first.exp_loc }, first);
                dec_loc = first.exp_loc } ],
            rest_exp );
      exp_loc = loc;
    }

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

and parse_dec_seq st =
  let rec loop acc =
    if accept st Token.SEMI then loop acc
    else if starts_dec (Lexer.peek st.lx) then begin
      match parse_dec st with
      | dec -> loop (dec :: acc)
      | exception Diag.Error d when st.diags <> None -> (
        match st.diags with
        | None -> assert false
        | Some c ->
          Diag.emit c d;
          sync_to_dec st;
          loop acc)
    end
    else List.rev acc
  in
  loop []

and parse_dec st =
  let loc = Lexer.loc st.lx in
  let desc =
    match Lexer.peek st.lx with
    | Token.VAL ->
      ignore (Lexer.next st.lx);
      if accept st Token.REC then Dvalrec (parse_valrec_binds st)
      else begin
        let pat = parse_pat st in
        expect st Token.EQUAL;
        let exp = parse_exp_ st in
        Dval (pat, exp)
      end
    | Token.FUN ->
      ignore (Lexer.next st.lx);
      Dfun (parse_funbinds st)
    | Token.TYPE ->
      ignore (Lexer.next st.lx);
      Dtype (parse_typebinds st)
    | Token.DATATYPE ->
      ignore (Lexer.next st.lx);
      Ddatatype (parse_datbinds st)
    | Token.EXCEPTION ->
      ignore (Lexer.next st.lx);
      Dexception (parse_exnbinds st)
    | Token.STRUCTURE ->
      ignore (Lexer.next st.lx);
      Dstructure (parse_strbinds st)
    | Token.SIGNATURE ->
      ignore (Lexer.next st.lx);
      Dsignature (parse_sigbinds st)
    | Token.FUNCTOR ->
      ignore (Lexer.next st.lx);
      Dfunctor (parse_funbindings st)
    | Token.LOCAL ->
      ignore (Lexer.next st.lx);
      let hidden = parse_dec_seq st in
      expect st Token.IN;
      let visible = parse_dec_seq st in
      expect st Token.END;
      Dlocal (hidden, visible)
    | Token.OPEN ->
      ignore (Lexer.next st.lx);
      let rec loop acc =
        match Lexer.peek st.lx with
        | Token.ID _ -> loop (parse_path st :: acc)
        | _ -> List.rev acc
      in
      let paths = loop [] in
      if paths = [] then err st "expected a structure path after 'open'"
      else Dopen paths
    | tok -> err st "expected a declaration but found '%s'" (Token.to_string tok)
  in
  { dec_desc = desc; dec_loc = loc }

and parse_valrec_binds st =
  let rec loop acc =
    let name = expect_id st "a function name" in
    expect st Token.EQUAL;
    expect st Token.FN;
    let rules = parse_match st in
    let acc = (name, rules) :: acc in
    if accept st Token.AND then begin
      (* allow [and rec] noise to be absent; SML writes plain [and] *)
      ignore (accept st Token.REC);
      loop acc
    end
    else List.rev acc
  in
  loop []

and parse_funbinds st =
  let rec bind_loop acc =
    let loc = Lexer.loc st.lx in
    let rec clause_loop clauses =
      let name = expect_id st "a function name" in
      let rec pats acc =
        if starts_atomic_pat (Lexer.peek st.lx) then
          pats (parse_pat_atom st :: acc)
        else List.rev acc
      in
      let pats = pats [] in
      if pats = [] then err st "function clause needs at least one argument";
      (* optional result type constraint on the clause *)
      let result_ty =
        if accept st Token.COLON then Some (parse_ty st) else None
      in
      expect st Token.EQUAL;
      let body = parse_exp_ st in
      let body =
        match result_ty with
        | None -> body
        | Some ty ->
          { exp_desc = Econstraint (body, ty); exp_loc = body.exp_loc }
      in
      let clauses = { fc_name = name; fc_pats = pats; fc_body = body } :: clauses in
      if accept st Token.BAR then clause_loop clauses else List.rev clauses
    in
    let clauses = clause_loop [] in
    let acc = { fb_clauses = clauses; fb_loc = loc } :: acc in
    if accept st Token.AND then bind_loop acc else List.rev acc
  in
  bind_loop []

and parse_typebinds st =
  let rec loop acc =
    let tyvars = parse_tyvar_seq st in
    let name = expect_id st "a type name" in
    expect st Token.EQUAL;
    let defn = parse_ty st in
    let acc = { typ_tyvars = tyvars; typ_name = name; typ_defn = defn } :: acc in
    if accept st Token.AND then loop acc else List.rev acc
  in
  loop []

and parse_datbinds st =
  let rec loop acc =
    let tyvars = parse_tyvar_seq st in
    let name = expect_id st "a datatype name" in
    expect st Token.EQUAL;
    let rec cons acc =
      let con_name = expect_id st "a constructor name" in
      let con_arg = if accept st Token.OF then Some (parse_ty st) else None in
      let acc = { con_name; con_arg } :: acc in
      if accept st Token.BAR then cons acc else List.rev acc
    in
    let cons = cons [] in
    let acc = { dat_tyvars = tyvars; dat_name = name; dat_cons = cons } :: acc in
    if accept st Token.AND then loop acc else List.rev acc
  in
  loop []

and parse_exnbinds st =
  let rec loop acc =
    let name = expect_id st "an exception name" in
    let arg = if accept st Token.OF then Some (parse_ty st) else None in
    let acc = (name, arg) :: acc in
    if accept st Token.AND then loop acc else List.rev acc
  in
  loop []

and parse_strbinds st =
  let rec loop acc =
    let name = expect_id st "a structure name" in
    let ascription = parse_opt_ascription st in
    expect st Token.EQUAL;
    let body = parse_strexp st in
    let acc = (name, ascription, body) :: acc in
    if accept st Token.AND then loop acc else List.rev acc
  in
  loop []

and parse_opt_ascription st =
  if accept st Token.COLON then Some (Transparent (parse_sigexp st))
  else if accept st Token.COLONGT then Some (Opaque (parse_sigexp st))
  else None

and parse_sigbinds st =
  let rec loop acc =
    let name = expect_id st "a signature name" in
    expect st Token.EQUAL;
    let body = parse_sigexp st in
    let acc = (name, body) :: acc in
    if accept st Token.AND then loop acc else List.rev acc
  in
  loop []

and parse_funbindings st =
  let rec loop acc =
    let fct_name = expect_id st "a functor name" in
    expect st Token.LPAREN;
    let fct_param = expect_id st "a functor parameter name" in
    expect st Token.COLON;
    let fct_param_sig = parse_sigexp st in
    expect st Token.RPAREN;
    let fct_ascription = parse_opt_ascription st in
    expect st Token.EQUAL;
    let fct_body = parse_strexp st in
    let acc =
      { fct_name; fct_param; fct_param_sig; fct_ascription; fct_body } :: acc
    in
    if accept st Token.AND then loop acc else List.rev acc
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Structure and signature expressions                                 *)
(* ------------------------------------------------------------------ *)

and parse_strexp st =
  let base = parse_strexp_base st in
  let rec post str =
    if accept st Token.COLON then
      post { str_desc = Sascribe (str, Transparent (parse_sigexp st)); str_loc = str.str_loc }
    else if accept st Token.COLONGT then
      post { str_desc = Sascribe (str, Opaque (parse_sigexp st)); str_loc = str.str_loc }
    else str
  in
  post base

and parse_strexp_base st =
  let loc = Lexer.loc st.lx in
  match Lexer.peek st.lx with
  | Token.STRUCT ->
    ignore (Lexer.next st.lx);
    let decs = parse_dec_seq st in
    expect st Token.END;
    { str_desc = Sstruct decs; str_loc = loc }
  | Token.LET ->
    ignore (Lexer.next st.lx);
    let decs = parse_dec_seq st in
    expect st Token.IN;
    let body = parse_strexp st in
    expect st Token.END;
    { str_desc = Slet (decs, body); str_loc = loc }
  | Token.ID _ ->
    let path = parse_path st in
    if Lexer.peek st.lx = Token.LPAREN then begin
      ignore (Lexer.next st.lx);
      let arg = parse_strexp st in
      expect st Token.RPAREN;
      { str_desc = Sapp (path, arg); str_loc = loc }
    end
    else { str_desc = Svar path; str_loc = loc }
  | tok ->
    err st "expected a structure expression but found '%s'" (Token.to_string tok)

and parse_sigexp st =
  let base = parse_sigexp_base st in
  (* repeated [where type tyvars longtycon = ty] refinements *)
  let rec post sigexp =
    if Lexer.peek st.lx = Token.WHERE then begin
      ignore (Lexer.next st.lx);
      expect st Token.TYPE;
      let rec specs acc =
        let ws_tyvars = parse_tyvar_seq st in
        let ws_path = parse_path st in
        expect st Token.EQUAL;
        let ws_defn = parse_ty st in
        let acc = { ws_tyvars; ws_path; ws_defn } :: acc in
        (* [where type … and type …] chains *)
        if Lexer.peek st.lx = Token.AND && Lexer.peek2 st.lx = Token.TYPE then begin
          ignore (Lexer.next st.lx);
          ignore (Lexer.next st.lx);
          specs acc
        end
        else List.rev acc
      in
      let ws = specs [] in
      post { sig_desc = Gwhere (sigexp, ws); sig_loc = sigexp.sig_loc }
    end
    else sigexp
  in
  post base

and parse_sigexp_base st =
  let loc = Lexer.loc st.lx in
  match Lexer.peek st.lx with
  | Token.SIG ->
    ignore (Lexer.next st.lx);
    let rec specs acc =
      if accept st Token.SEMI then specs acc
      else
        match Lexer.peek st.lx with
        | Token.VAL | Token.TYPE | Token.DATATYPE | Token.EXCEPTION
        | Token.STRUCTURE | Token.INCLUDE ->
          specs (parse_spec st :: acc)
        | _ -> List.rev acc
    in
    let specs = specs [] in
    expect st Token.END;
    { sig_desc = Gsig specs; sig_loc = loc }
  | Token.ID name ->
    ignore (Lexer.next st.lx);
    { sig_desc = Gvar (Symbol.intern name); sig_loc = loc }
  | tok ->
    err st "expected a signature expression but found '%s'" (Token.to_string tok)

and parse_spec st =
  let loc = Lexer.loc st.lx in
  let desc =
    match Lexer.peek st.lx with
    | Token.VAL ->
      ignore (Lexer.next st.lx);
      let name = expect_id st "a value name" in
      expect st Token.COLON;
      let ty = parse_ty st in
      SPval (name, ty)
    | Token.TYPE ->
      ignore (Lexer.next st.lx);
      let tyvars = parse_tyvar_seq st in
      let name = expect_id st "a type name" in
      let defn = if accept st Token.EQUAL then Some (parse_ty st) else None in
      SPtype (tyvars, name, defn)
    | Token.DATATYPE ->
      ignore (Lexer.next st.lx);
      SPdatatype (parse_datbinds st)
    | Token.EXCEPTION ->
      ignore (Lexer.next st.lx);
      let name = expect_id st "an exception name" in
      let arg = if accept st Token.OF then Some (parse_ty st) else None in
      SPexception (name, arg)
    | Token.STRUCTURE ->
      ignore (Lexer.next st.lx);
      let name = expect_id st "a structure name" in
      expect st Token.COLON;
      let sigexp = parse_sigexp st in
      SPstructure (name, sigexp)
    | Token.INCLUDE ->
      ignore (Lexer.next st.lx);
      SPinclude (parse_sigexp st)
    | tok -> err st "expected a specification but found '%s'" (Token.to_string tok)
  in
  { spec_desc = desc; spec_loc = loc }

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let parse_unit ?diags ~file source =
  let st = { lx = Lexer.make ?diags ~file source; diags } in
  (* in recovery mode a stray top-level token (e.g. an unmatched 'end')
     is reported once, skipped to the next declaration, and parsing
     resumes; fail-fast mode raises as before *)
  let rec toplevel acc =
    let acc = acc @ parse_dec_seq st in
    match (Lexer.peek st.lx, diags) with
    | Token.EOF, _ -> acc
    | tok, None ->
      err st "expected a declaration but found '%s'" (Token.to_string tok)
    | tok, Some c ->
      Diag.error_into c Diag.Parse (Lexer.loc st.lx)
        "expected a declaration but found '%s'" (Token.to_string tok);
      ignore (Lexer.next st.lx);
      sync_to_dec st;
      (* sync stops at IN/END for the sake of nested recovery; at top
         level those are just more stray tokens *)
      (match Lexer.peek st.lx with
      | Token.IN | Token.END -> ignore (Lexer.next st.lx)
      | _ -> ());
      toplevel acc
  in
  { unit_file = file; unit_decs = toplevel [] }

let parse_exp ~file source =
  let st = { lx = Lexer.make ~file source; diags = None } in
  let exp = parse_exp_ st in
  (match Lexer.peek st.lx with
  | Token.EOF -> ()
  | tok -> err st "trailing input: '%s'" (Token.to_string tok));
  exp

let parse_decs ?diags ~file source =
  let st = { lx = Lexer.make ?diags ~file source; diags } in
  let decs = parse_dec_seq st in
  (match Lexer.peek st.lx with
  | Token.EOF -> ()
  | tok ->
    (match diags with
    | None -> err st "expected a declaration but found '%s'" (Token.to_string tok)
    | Some c ->
      Diag.error_into c Diag.Parse (Lexer.loc st.lx)
        "expected a declaration but found '%s'" (Token.to_string tok)));
  decs
