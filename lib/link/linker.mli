(** Type-safe linkage and execution (sections 3 and 5 of the paper).

    The dynamic environment maps dynamic pids to run-time values.
    Because a pid is derived from the hash of the exporting unit's
    static interface, "link-time type checking" reduces to pid lookup:
    a unit compiled against a stale interface asks for a pid nobody
    exports, and the makefile bug is caught here instead of causing a
    wrong execution. *)

type dynenv = Dynamics.Value.t Digestkit.Pid.Map.t

val empty : dynenv

(** [check cu dynenv] verifies every import of [cu] is present.
    Raises {!Support.Diag.Error} (phase [Link], code [E0601]) listing
    the missing pids otherwise.  [unit_name] and [bin_path], when
    known, are carried on the diagnostic so the error names the
    offending unit rather than an empty location. *)
val check :
  ?unit_name:string -> ?bin_path:string -> Codeunit.t -> dynenv -> unit

(** [execute ?output cu dynenv] — {!check}, run the unit's code, and
    return [dynenv] extended with the unit's exports.  [output]
    receives [print]ed strings. *)
val execute :
  ?output:(string -> unit) ->
  ?unit_name:string ->
  ?bin_path:string ->
  Codeunit.t -> dynenv -> dynenv

(** [export_values cu dynenv] — the record of values the unit exports,
    keyed by source name, extracted after {!execute} (for the REPL and
    tests). *)
val export_values : Codeunit.t -> dynenv -> (Support.Symbol.t * Dynamics.Value.t) list
