module Pid = Digestkit.Pid
module Diag = Support.Diag

type unit_src = {
  u_name : string;
  u_static_pid : Pid.t;
  u_cu : Codeunit.t;
  u_fingerprint : string;
}

type kind = Null | Impl | Epoch_bump

type outcome = { o_kind : kind; o_epoch : int; o_relinked : string list }

exception Swap_aborted of string

(* what the epoch remembers about each linked unit: enough to re-check
   its recorded imports, diff its exported surface, and replay its
   captured output without touching the unit's code again *)
type view = {
  v_name : string;
  v_static_pid : Pid.t;
  v_exports : Pid.t list;
  v_imports : Pid.t list;
  v_fingerprint : string;
  v_output : string;
}

type state = Current | Draining | Retired

type epoch = {
  ep_id : int;
  ep_cause : string;
  mutable ep_views : view list;  (** link order *)
  mutable ep_env : Linker.dynenv;
  mutable ep_pins : int;
  mutable ep_state : state;
}

type t = {
  eh_history : int;
  mutable epochs : epoch list;  (** newest first; the head is current *)
  mutable swaps_null : int;
  mutable swaps_impl : int;
  mutable swaps_epoch : int;
  mutable rollbacks : int;
}

type pinned = {
  pn_epoch : int;
  pn_env : Linker.dynenv;
  pn_outputs : (string * string) list;
}

type epoch_info = {
  ei_id : int;
  ei_state : string;
  ei_pins : int;
  ei_units : int;
  ei_cause : string;
}

type counters = {
  c_null : int;
  c_impl : int;
  c_epoch : int;
  c_rollbacks : int;
}

let m_swaps = Obs.Metrics.counter "relink.swaps"
let m_rollbacks = Obs.Metrics.counter "relink.rollbacks"

let create ?(history = 4) () =
  {
    eh_history = max 0 history;
    epochs = [];
    swaps_null = 0;
    swaps_impl = 0;
    swaps_epoch = 0;
    rollbacks = 0;
  }

let live t = t.epochs <> []

let current t =
  match t.epochs with
  | ep :: _ -> ep
  | [] -> invalid_arg "Relink: no baseline epoch"

let current_epoch t = (current t).ep_id
let env t = (current t).ep_env

let seal_error ~unit_name fmt =
  Format.kasprintf
    (fun message ->
      raise
        (Diag.Error
           (Diag.make ~code:"E0801" ~unit_name Diag.Link Support.Loc.dummy
              ("seal-violation: " ^ message))))
    fmt

let conflict_error ~unit_name fmt =
  Format.kasprintf
    (fun message ->
      raise
        (Diag.Error
           (Diag.make ~code:"E0802" ~unit_name Diag.Link Support.Loc.dummy
              ("relink-conflict: " ^ message))))
    fmt

let view_of u output =
  {
    v_name = u.u_name;
    v_static_pid = u.u_static_pid;
    v_exports = List.map snd u.u_cu.Codeunit.cu_exports;
    v_imports = u.u_cu.Codeunit.cu_imports;
    v_fingerprint = u.u_fingerprint;
    v_output = output;
  }

(* execute one unit against [env], capturing what it prints *)
let execute u env =
  let buf = Buffer.create 64 in
  let env =
    Linker.execute ~output:(Buffer.add_string buf) ~unit_name:u.u_name u.u_cu
      env
  in
  (env, view_of u (Buffer.contents buf))

let baseline t ~units =
  if live t then invalid_arg "Relink.baseline: already live";
  let env, views =
    List.fold_left
      (fun (env, views) u ->
        let env, v = execute u env in
        (env, v :: views))
      (Linker.empty, []) units
  in
  t.epochs <-
    [
      {
        ep_id = 0;
        ep_cause = "baseline";
        ep_views = List.rev views;
        ep_env = env;
        ep_pins = 0;
        ep_state = Current;
      };
    ]

(* ------------------------------------------------------------------ *)
(* Pins and epoch lifecycle                                            *)
(* ------------------------------------------------------------------ *)

(* retire drained non-current epochs (drop their environments) and
   bound the history to [eh_history] non-current records; a pinned
   epoch is never dropped *)
let prune t =
  List.iteri
    (fun i ep ->
      if i > 0 && ep.ep_pins = 0 && ep.ep_state <> Retired then begin
        ep.ep_state <- Retired;
        ep.ep_env <- Linker.empty;
        ep.ep_views <- []
      end)
    t.epochs;
  let rec bound kept = function
    | [] -> []
    | ep :: rest ->
      if kept = 0 then ep :: bound 1 rest (* the current epoch *)
      else if kept <= t.eh_history then ep :: bound (kept + 1) rest
      else if ep.ep_state = Retired then bound kept rest
      else ep :: bound (kept + 1) rest (* pinned past the bound: keep *)
  in
  t.epochs <- bound 0 t.epochs

let pin t =
  let ep = current t in
  ep.ep_pins <- ep.ep_pins + 1;
  {
    pn_epoch = ep.ep_id;
    pn_env = ep.ep_env;
    pn_outputs = List.map (fun v -> (v.v_name, v.v_output)) ep.ep_views;
  }

let pinned_epoch p = p.pn_epoch

let unpin t p =
  List.iter
    (fun ep ->
      if ep.ep_id = p.pn_epoch && ep.ep_pins > 0 then
        ep.ep_pins <- ep.ep_pins - 1)
    t.epochs;
  prune t

let replay p ~output =
  List.iter (fun (_, chunk) -> output chunk) p.pn_outputs

let state_name = function
  | Current -> "current"
  | Draining -> "draining"
  | Retired -> "retired"

let epochs t =
  List.map
    (fun ep ->
      {
        ei_id = ep.ep_id;
        ei_state = state_name ep.ep_state;
        ei_pins = ep.ep_pins;
        ei_units = List.length ep.ep_views;
        ei_cause = ep.ep_cause;
      })
    t.epochs

let counters t =
  {
    c_null = t.swaps_null;
    c_impl = t.swaps_impl;
    c_epoch = t.swaps_epoch;
    c_rollbacks = t.rollbacks;
  }

(* ------------------------------------------------------------------ *)
(* The swap transaction                                                *)
(* ------------------------------------------------------------------ *)

let pid_set pids = List.fold_left (fun s p -> Pid.Set.add p s) Pid.Set.empty pids

(* the staged surface must be exactly the union of the declared export
   interfaces: anything else is an internal binding leaking across the
   swap boundary *)
let check_surface ~unit_name views env =
  let declared =
    List.fold_left
      (fun s v -> List.fold_left (fun s p -> Pid.Set.add p s) s v.v_exports)
      Pid.Set.empty views
  in
  let surface = Pid.Map.fold (fun p _ s -> Pid.Set.add p s) env Pid.Set.empty in
  let leaked = Pid.Set.diff surface declared in
  if not (Pid.Set.is_empty leaked) then
    seal_error ~unit_name
      "%d binding(s) beyond the declared export interfaces would leak into \
       the dynenv surface: %s"
      (Pid.Set.cardinal leaked)
      (String.concat ", " (List.map Pid.short (Pid.Set.elements leaked)))

(* a unit whose interface pid did not change must present the same
   exported surface — opaque ascription seals its internals *)
let check_seal ~old_view u =
  let old_set = pid_set old_view.v_exports in
  let new_set = pid_set (List.map snd u.u_cu.Codeunit.cu_exports) in
  if not (Pid.Set.equal old_set new_set) then
    seal_error ~unit_name:u.u_name
      "interface pid %s is unchanged but the exported surface differs \
       (old: %s; new: %s)"
      (Pid.short u.u_static_pid)
      (String.concat ", " (List.map Pid.short (Pid.Set.elements old_set)))
      (String.concat ", " (List.map Pid.short (Pid.Set.elements new_set)))

(* every live importer's recorded import pids must still resolve in the
   staged table *)
let check_importers views env =
  List.iter
    (fun v ->
      List.iter
        (fun pid ->
          if not (Pid.Map.mem pid env) then
            conflict_error ~unit_name:v.v_name
              "live unit %s imports pid %s, which the staged swap no longer \
               provides"
              v.v_name (Pid.short pid))
        v.v_imports)
    views

let swap ?on_step ?(budget_s = 30.) ?abort_check t ~units =
  let cur = current t in
  let old_views = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace old_views v.v_name v) cur.ep_views;
  let old_view u = Hashtbl.find_opt old_views u.u_name in
  let rebuilt u =
    match old_view u with
    | None -> true (* a new unit joined the group *)
    | Some v -> not (String.equal v.v_fingerprint u.u_fingerprint)
  in
  let removed =
    let names = Hashtbl.create 16 in
    List.iter (fun u -> Hashtbl.replace names u.u_name ()) units;
    List.filter (fun v -> not (Hashtbl.mem names v.v_name)) cur.ep_views
  in
  let changed = List.filter rebuilt units in
  if changed = [] && removed = [] then begin
    t.swaps_null <- t.swaps_null + 1;
    Obs.Metrics.incr m_swaps;
    { o_kind = Null; o_epoch = cur.ep_id; o_relinked = [] }
  end
  else begin
    let deadline = Unix.gettimeofday () +. budget_s in
    let step name =
      (match abort_check with
      | Some check -> (
        match check () with
        | Some reason -> raise (Swap_aborted reason)
        | None -> ())
      | None -> ());
      if Unix.gettimeofday () > deadline then
        raise
          (Swap_aborted
             (Printf.sprintf "watchdog: swap exceeded its %.1fs budget"
                budget_s));
      match on_step with Some f -> f name | None -> ()
    in
    let pid_stable u =
      match old_view u with
      | Some v -> Pid.equal v.v_static_pid u.u_static_pid
      | None -> false
    in
    let impl_only = removed = [] && List.for_all pid_stable changed in
    match
      if impl_only then begin
        (* cutoff says dependents' bins are untouched: rebind the
           changed units' export pids in place, same epoch *)
        step "begin";
        step "stage";
        let staged_env, staged_views =
          List.fold_left
            (fun (env, views) u ->
              let env, v = execute u env in
              (env, v :: views))
            (cur.ep_env, []) changed
        in
        let staged_views = List.rev staged_views in
        step "verify";
        let changed_names = Hashtbl.create 8 in
        List.iter
          (fun u -> Hashtbl.replace changed_names u.u_name ())
          changed;
        check_importers
          (List.filter
             (fun v -> not (Hashtbl.mem changed_names v.v_name))
             cur.ep_views)
          staged_env;
        step "seal";
        List.iter
          (fun u ->
            match old_view u with
            | Some v -> check_seal ~old_view:v u
            | None -> ())
          changed;
        let merged_views =
          List.map
            (fun v ->
              match
                List.find_opt
                  (fun nv -> String.equal nv.v_name v.v_name)
                  staged_views
              with
              | Some nv -> nv
              | None -> v)
            cur.ep_views
        in
        check_surface
          ~unit_name:(match changed with u :: _ -> u.u_name | [] -> "")
          merged_views staged_env;
        step "commit";
        (* every mutation lives below this line: an abort at any step
           above observes the old epoch untouched *)
        cur.ep_env <- staged_env;
        cur.ep_views <- merged_views;
        t.swaps_impl <- t.swaps_impl + 1;
        {
          o_kind = Impl;
          o_epoch = cur.ep_id;
          o_relinked = List.map (fun u -> u.u_name) changed;
        }
      end
      else begin
        (* an interface pid changed (or the unit set did): build the
           next epoch.  The relink set is the importing cone — the
           pid-level transitive dependents of every rebuilt unit —
           because re-executing a unit may change the values under its
           (even unchanged) export pids, and a clean restart at the new
           state would see those values everywhere downstream. *)
        step "begin";
        let providers = Hashtbl.create 32 in
        List.iter
          (fun u ->
            List.iter
              (fun (_, pid) -> Hashtbl.replace providers pid u.u_name)
              u.u_cu.Codeunit.cu_exports)
          units;
        let relink = Hashtbl.create 16 in
        List.iter
          (fun u ->
            let stale =
              rebuilt u
              || List.exists
                   (fun pid ->
                     match Hashtbl.find_opt providers pid with
                     | Some name -> Hashtbl.mem relink name
                     | None -> false)
                   u.u_cu.Codeunit.cu_imports
            in
            if stale then Hashtbl.replace relink u.u_name ())
          units;
        step "stage";
        let staged_env, staged_views =
          List.fold_left
            (fun (env, views) u ->
              if Hashtbl.mem relink u.u_name then
                let env, v = execute u env in
                (env, v :: views)
              else
                match old_view u with
                | None ->
                  (* unreachable: an unknown unit is always relinked *)
                  conflict_error ~unit_name:u.u_name
                    "unit %s has no live view to carry across the swap"
                    u.u_name
                | Some v ->
                  (* carried across: its recorded imports must still
                     resolve, and its bindings and captured output move
                     over verbatim *)
                  List.iter
                    (fun pid ->
                      if not (Pid.Map.mem pid env) then
                        conflict_error ~unit_name:v.v_name
                          "unit %s carried across the swap imports pid %s, \
                           which epoch %d no longer provides"
                          v.v_name (Pid.short pid) (cur.ep_id + 1))
                    v.v_imports;
                  let env =
                    List.fold_left
                      (fun env pid ->
                        match Pid.Map.find_opt pid cur.ep_env with
                        | Some value -> Pid.Map.add pid value env
                        | None ->
                          conflict_error ~unit_name:v.v_name
                            "unit %s exports pid %s, absent from the epoch \
                             it is carried from"
                            v.v_name (Pid.short pid))
                      env v.v_exports
                  in
                  (env, v :: views))
            (Linker.empty, []) units
        in
        let staged_views = List.rev staged_views in
        step "verify";
        check_importers staged_views staged_env;
        step "seal";
        List.iter
          (fun u ->
            match old_view u with
            | Some v when Pid.equal v.v_static_pid u.u_static_pid ->
              check_seal ~old_view:v u
            | _ -> ())
          units;
        check_surface
          ~unit_name:(match changed with u :: _ -> u.u_name | [] -> "")
          staged_views staged_env;
        step "commit";
        let relinked =
          List.filter_map
            (fun u ->
              if Hashtbl.mem relink u.u_name then Some u.u_name else None)
            units
        in
        let next =
          {
            ep_id = cur.ep_id + 1;
            ep_cause =
              Printf.sprintf "epoch swap: relinked [%s]"
                (String.concat ", " relinked);
            ep_views = staged_views;
            ep_env = staged_env;
            ep_pins = 0;
            ep_state = Current;
          }
        in
        (* every mutation lives below this line *)
        cur.ep_state <- Draining;
        t.epochs <- next :: t.epochs;
        t.swaps_epoch <- t.swaps_epoch + 1;
        prune t;
        { o_kind = Epoch_bump; o_epoch = next.ep_id; o_relinked = relinked }
      end
    with
    | outcome ->
      Obs.Metrics.incr m_swaps;
      outcome
    | exception exn ->
      t.rollbacks <- t.rollbacks + 1;
      Obs.Metrics.incr m_rollbacks;
      raise exn
  end
