module Pid = Digestkit.Pid
module Symbol = Support.Symbol
module Diag = Support.Diag

type dynenv = Dynamics.Value.t Pid.Map.t

let empty = Pid.Map.empty

let m_executions = Obs.Metrics.counter "link.executions"

let check cu dynenv =
  Obs.Trace.span ~cat:"link" "link.verify_imports" @@ fun () ->
  let missing =
    List.filter (fun pid -> not (Pid.Map.mem pid dynenv)) cu.Codeunit.cu_imports
  in
  if missing <> [] then
    Diag.error Diag.Link Support.Loc.dummy
      "unsatisfied imports (stale or missing units): %s"
      (String.concat ", " (List.map Pid.short missing))

let execute ?output cu dynenv =
  check cu dynenv;
  Obs.Trace.span ~cat:"link" "link.execute" @@ fun () ->
  Obs.Metrics.incr m_executions;
  let rt = Dynamics.Eval.runtime ?output ~imports:dynenv () in
  match Dynamics.Eval.run rt cu.Codeunit.cu_code with
  | Dynamics.Value.Vrecord fields ->
    List.fold_left
      (fun dynenv (name, pid) ->
        match Symbol.Map.find_opt name fields with
        | Some value -> Pid.Map.add pid value dynenv
        | None ->
          Diag.error Diag.Link Support.Loc.dummy
            "unit's code did not produce export %a" Symbol.pp name)
      dynenv cu.Codeunit.cu_exports
  | v ->
    Diag.error Diag.Link Support.Loc.dummy
      "unit's code produced %s instead of an export record"
      (Dynamics.Value.to_string v)

let export_values cu dynenv =
  List.filter_map
    (fun (name, pid) ->
      Option.map (fun v -> (name, v)) (Pid.Map.find_opt pid dynenv))
    cu.Codeunit.cu_exports
