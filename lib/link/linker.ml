module Pid = Digestkit.Pid
module Symbol = Support.Symbol
module Diag = Support.Diag

type dynenv = Dynamics.Value.t Pid.Map.t

let empty = Pid.Map.empty

let m_executions = Obs.Metrics.counter "link.executions"

(* link diagnostics have no source location; carrying the unit (and,
   when the manager knows it, the bin path) makes "stale import" errors
   name the offending unit instead of printing an empty location *)
let link_error ?unit_name ?bin_path fmt =
  Format.kasprintf
    (fun message ->
      let message =
        match bin_path with
        | Some path -> Printf.sprintf "%s (bin: %s)" message path
        | None -> message
      in
      raise
        (Diag.Error
           (Diag.make ~code:"E0601" ?unit_name Diag.Link Support.Loc.dummy
              message)))
    fmt

let check ?unit_name ?bin_path cu dynenv =
  Obs.Trace.span ~cat:"link" "link.verify_imports" @@ fun () ->
  let missing =
    List.filter (fun pid -> not (Pid.Map.mem pid dynenv)) cu.Codeunit.cu_imports
  in
  if missing <> [] then
    link_error ?unit_name ?bin_path
      "unsatisfied imports (stale or missing units): %s"
      (String.concat ", " (List.map Pid.short missing))

let execute ?output ?unit_name ?bin_path cu dynenv =
  check ?unit_name ?bin_path cu dynenv;
  Obs.Trace.span ~cat:"link" "link.execute" @@ fun () ->
  Obs.Metrics.incr m_executions;
  let rt = Dynamics.Eval.runtime ?output ~imports:dynenv () in
  match Dynamics.Eval.run rt cu.Codeunit.cu_code with
  | Dynamics.Value.Vrecord fields ->
    List.fold_left
      (fun dynenv (name, pid) ->
        match Symbol.Map.find_opt name fields with
        | Some value -> Pid.Map.add pid value dynenv
        | None ->
          link_error ?unit_name ?bin_path
            "unit's code did not produce export %s" (Symbol.name name))
      dynenv cu.Codeunit.cu_exports
  | v ->
    link_error ?unit_name ?bin_path
      "unit's code produced %s instead of an export record"
      (Dynamics.Value.to_string v)

let export_values cu dynenv =
  List.filter_map
    (fun (name, pid) ->
      Option.map (fun v -> (name, v)) (Pid.Map.find_opt pid dynenv))
    cu.Codeunit.cu_exports
