(** Live relinking: hot-swap rebuilt units into a running dynenv.

    The paper's type-safe linkage checks import pids once, at link
    time.  This module extends the guarantee to {e re}-linking a live
    system, in two regimes keyed by the cutoff argument:

    - {b Impl swap} — the rebuilt unit's interface pid is unchanged, so
      dependents' bins are untouched and the swap is an in-place
      binding replacement under the same export pids.  Dependents keep
      the values they captured at their own link time; re-binding the
      export pids affects future lookups only.  Before commit, every
      live unit's recorded import pids are re-checked against the
      staged table.
    - {b Epoch swap} — an interface pid changed (or units were added or
      removed).  The current epoch is left draining and a new one is
      built: the {e importing cone} of every rebuilt unit — the
      transitive pid-level dependents — re-executes against the new
      bindings, while units outside the cone carry their bindings and
      captured output across unchanged.  In-flight requests that
      {!pin}ned the old epoch finish against it; drained epochs retire
      (their environments dropped) under a bounded history.

    Every swap is transactional: staging happens against shadow state,
    the named steps [begin]/[stage]/[verify]/[seal]/[commit] are
    announced through [on_step], and the live structure mutates only
    after the last announcement — an abort, link failure, watchdog
    timeout, or client disconnect at {e any} step rolls back to exactly
    the prior state.

    Two diagnostics guard the boundary (both phase [Link]):
    - [E0802] {e relink-conflict} — a live unit's recorded import pid
      would no longer be satisfied after the swap;
    - [E0801] {e seal-violation} — a unit whose interface pid is
      unchanged altered its exported surface, or the swap would leak
      bindings beyond the declared export interface into the reachable
      dynenv surface (opaque ascription must seal internals across the
      swap boundary). *)

(** What the builder hands the relinker, one per unit in link
    (topological) order: identity, code, and a fingerprint of the bin
    bytes that changes iff the unit was rebuilt to different output. *)
type unit_src = {
  u_name : string;
  u_static_pid : Digestkit.Pid.t;  (** intrinsic pid of the interface *)
  u_cu : Codeunit.t;
  u_fingerprint : string;  (** digest of the unit's bin bytes *)
}

type kind =
  | Null  (** nothing changed; no steps run, nothing mutated *)
  | Impl  (** in-place rebinding, same epoch *)
  | Epoch_bump  (** new epoch; old one drains *)

type outcome = {
  o_kind : kind;
  o_epoch : int;  (** the epoch serving after the swap *)
  o_relinked : string list;  (** units re-executed, in link order *)
}

(** Raised when a swap rolls back without a diagnostic: [abort_check]
    asked for it, the watchdog budget ran out, or [on_step] itself
    raised.  The string says why. *)
exception Swap_aborted of string

type t

(** [create ?history ()] — a relinker retaining at most [history]
    (default 4) non-current epoch records for inspection. *)
val create : ?history:int -> unit -> t

(** Has {!baseline} established epoch 0? *)
val live : t -> bool

(** [baseline t ~units] — execute every unit in order, capturing each
    unit's printed output, and install the result as epoch 0.  Raises
    [Invalid_argument] if already live; any execution failure leaves
    [t] untouched. *)
val baseline : t -> units:unit_src list -> unit

(** [swap ?on_step ?budget_s ?abort_check t ~units] — reconcile the
    rebuilt unit list against the current epoch.

    [on_step] hears each transaction step name just before it runs;
    the commit mutations happen strictly after the last call, so a
    crash injected at any step observes the old state intact.
    [abort_check] is polled at every step: returning [Some reason]
    (e.g. the requesting client disconnected) aborts and rolls back.
    [budget_s] (default 30) is the watchdog: a swap exceeding it
    aborts.

    Raises {!Swap_aborted}, or {!Support.Diag.Error} with [E0801],
    [E0802] or [E0601] — in every case the prior epoch keeps serving
    and the rollback is counted. *)
val swap :
  ?on_step:(string -> unit) ->
  ?budget_s:float ->
  ?abort_check:(unit -> string option) ->
  t ->
  units:unit_src list ->
  outcome

val current_epoch : t -> int

(** The current epoch's dynenv (for the REPL and tests). *)
val env : t -> Linker.dynenv

(** An immutable snapshot an in-flight request holds: epoch swaps never
    disturb it, and the epoch it names cannot retire while pinned. *)
type pinned

val pin : t -> pinned
val pinned_epoch : pinned -> int

(** [unpin t p] — release; a drained non-current epoch retires. *)
val unpin : t -> pinned -> unit

(** [replay p ~output] — emit the pinned epoch's program output: the
    captured per-unit chunks in link order, byte-identical to a clean
    restart at that epoch's state. *)
val replay : pinned -> output:(string -> unit) -> unit

type epoch_info = {
  ei_id : int;
  ei_state : string;  (** [current], [draining] or [retired] *)
  ei_pins : int;
  ei_units : int;
  ei_cause : string;  (** [baseline] or the swap that created it *)
}

(** Newest first; bounded by [history]. *)
val epochs : t -> epoch_info list

type counters = {
  c_null : int;
  c_impl : int;
  c_epoch : int;
  c_rollbacks : int;
}

val counters : t -> counters
