(** The Incremental Recompilation Manager (section 8).

    Three recompilation policies over the same dependency DAG:

    - {!Timestamp} — classical [make]: a unit is recompiled when its
      source is newer than its bin file {e or any dependency was
      recompiled}; changes cascade through the whole dependent cone.
    - {!Cutoff} — the paper's contribution: a unit is recompiled when
      its source is newer than its bin file or the {e interface pid} of
      some import differs from the one recorded at compile time.
      Because an implementation-only change leaves the exporting unit's
      intrinsic pid unchanged, the cascade is cut off immediately.
    - {!Selective} — the finer-grained variant the paper's section 2
      discusses under "smart recompilation": interface pids are kept
      {e per exported module}, and a dependent recompiles only when a
      module it actually references changed — so it survives interface
      changes to sibling modules of the same unit.

    All policies produce correct builds (bin files carrying the same
    interface pids as a from-scratch build); they differ only in how
    much they recompile — exactly the comparison the evaluation benches
    measure.

    Orthogonally to the policy, [build] takes a {!backend} — compile
    jobs of independent units can run on a pool of worker domains
    ({!Sched}) — and an optional content-addressed {!Cache.t} that is
    consulted before every compile, under every policy.  Because a
    compiled unit is a pure function of (source, import interface
    pids), both are sound: parallel builds are byte-identical to serial
    ones, and cache hits are byte-identical to recompiles. *)

type policy = Timestamp | Cutoff | Selective

val policy_name : policy -> string

(** Where compile jobs run — re-exported from {!Sched.backend}.
    [Workers] runs every compile in a supervised child process
    ({!Worker}): crash isolation, per-unit timeouts, and quarantine
    diagnostics ([E0701]/[E0702]), byte-identical to [Serial]. *)
type backend = Sched.backend =
  | Serial
  | Parallel of int
  | Workers of Worker.config
  | Remote of Remote.Fleet.config

(** How the scheduler orders ready compiles.  [Wavefront] dispatches in
    build order as dependencies complete (the classical wavefront).
    [Critical_path] additionally:

    - ranks ready units by the length of the longest downstream chain,
      with per-unit compile times estimated from the profile store's
      rolling EWMA (1 s for never-compiled units — an absent or damaged
      store degrades to longest-chain-by-depth, never an error), so the
      units bounding the build from below start first; and
    - pipelines each compile into {e static} and {e codegen} stages: a
      unit's static view (interface, pids, environment — fixed once
      elaboration and hashing finish) is released to dependents
      immediately, so their compiles overlap with its code generation.
      Sound per the paper's statenv/codeUnit factoring: dependents
      consume only the statics, and the export pid cannot change after
      elaboration.

    Either way the resulting bins, diagnostics, and failed/skipped
    partitions are byte-identical to a serial build: the schedule
    steers only {e when} work starts, never what it computes. *)
type schedule = Wavefront | Critical_path

(** [wavefront] or [critical-path]. *)
val schedule_name : schedule -> string

(** Why a unit was recompiled — derived from the very comparisons the
    policy's staleness decision makes, so the attribution cannot drift
    from the behaviour. *)
type cause =
  | First_build  (** no bin file and the unit was never seen complete *)
  | Evicted
      (** no bin file, but the profile store has seen the unit build —
          someone removed its output *)
  | Corrupt_entry  (** the bin file exists but fails to rehydrate *)
  | Source_changed  (** the source is newer than the bin *)
  | Import_pid_changed of string list
      (** an import's interface changed; names the culprit imports
          (under [Selective], the providers of the changed modules) *)
  | Forced of string * string list
      (** recompiled without an interface-level reason: the policy
          forced it.  The string says why ([timestamp-cascade],
          [dependency-set-changed]); the list names the deps involved *)

(** The kebab-case wire name: [first-build], [evicted], [corrupt-entry],
    [source-changed], [import-pid-changed] or [forced]. *)
val cause_name : cause -> string

(** The imports a cause blames ([[]] for the self-inflicted ones). *)
val cause_culprits : cause -> string list

(** The [Forced] reason, if any. *)
val cause_detail : cause -> string option

type stats = {
  st_order : string list;  (** topological build order *)
  st_recompiled : string list;
  st_loaded : string list;  (** up to date, loaded from bin *)
  st_cache_hits : string list;
      (** stale, but the exact bytes were in the unit cache *)
  st_cutoff_hits : string list;
      (** recompiled but interface unchanged, so the cascade stopped
          (always empty under [Timestamp]) *)
  st_failed : (string * Support.Diag.t list) list;
      (** units whose compile failed, with their structured diagnostics
          (only non-empty under [keep_going]) *)
  st_skipped : (string * string) list;
      (** units not attempted because a dependency failed, with the
          culprit (only non-empty under [keep_going]) *)
  st_policy : policy;  (** the policy this build ran under *)
  st_backend : backend;  (** the backend this build ran under *)
  st_wall_s : float;  (** wall-clock seconds for the whole build *)
  st_unit_times : (string * float) list;
      (** wall-clock seconds per unit from staleness check to merged
          result, in build order (spans overlap under [Parallel]) *)
  st_build_id : int;
      (** from the profile store when one was given, else a
          process-local counter *)
  st_jobs : int;  (** execution slots the scheduler actually used *)
  st_slot_busy_s : float list;
      (** seconds each slot spent holding a job; [busy / (jobs * wall)]
          is the scheduler efficiency *)
  st_causes : (string * cause) list;
      (** every stale unit with why it was recompiled, in build order *)
  st_schedule : schedule;  (** the schedule this build ran under *)
  st_static_releases : int;
      (** units whose static view was released to dependents before
          their code generation finished *)
}

type t

(** Raised out of a build when a signal (SIGINT/SIGTERM) asked the
    process to stop: the scheduler treats it as fatal — it aborts the
    wavefront immediately, {e even under} [keep_going] — and the driver
    records the partial build (only the units that finished) into the
    profile store before re-raising, so interrupted builds still show
    up in [irm profile].  The string names the signal. *)
exception Interrupted of string

(** [create fs] — a manager over a file system; owns a compilation
    session that persists across builds.  The session — and with it the
    interned symbols, rehydrated static environments, and the bin-byte
    identity of every unit loaded so far — is retained across builds:
    re-entering [build] on a warm manager skips rehydration for every
    unit whose bin bytes are unchanged on disk.  A long-running daemon
    holds one manager per group for exactly this reason. *)
val create : Vfs.fs -> t

val session : t -> Sepcomp.Compile.session

(** The build order recorded by the last successful {!build} ([[]]
    before the first). *)
val last_order : t -> string list

(** [build ?backend ?cache ?retries ?backoff_s t ~policy ~sources] —
    bring every unit up to date.  Bin files are written next to sources
    with extension [.bin], always through the atomic-commit protocol
    ({!Vfs.commit}) so a crash mid-build never leaves a torn bin under
    its final name.  [backend] (default {!Serial}) says where compile
    jobs run; the resulting bin files are byte-identical either way.
    [schedule] (default {!Wavefront}) says in what order ready compiles
    dispatch — {!Critical_path} adds profile-guided priorities and the
    pipelined static/codegen phase split, again without changing any
    output byte.
    [cache], when given, is probed before every compile and fed after
    every compile.  [profile], when given, records the whole build —
    per-unit outcomes, causes, phase durations, import pids, slot
    occupancy — into the persistent profile store ({!Obs.Profile});
    it also lets the driver tell an [Evicted] bin apart from a
    [First_build].  Transient file-system faults ({!Vfs.Fault} with
    [fault_transient]) are retried up to [retries] times (default 2)
    with exponential backoff starting at [backoff_s] seconds.
    Raises {!Support.Diag.Error} on missing sources, cycles, or compile
    errors — under [Parallel] the error reported is the one a serial
    left-to-right build would have raised.

    With [keep_going] (default false) compile errors no longer raise:
    each unit compiles under a diagnostics collector (front-end recovery
    on), a failed unit lands in {!stats.st_failed} with every diagnostic
    it produced, its dependent cone lands in {!stats.st_skipped}
    (poison propagation — those units are not attempted), and every
    unit {e not} reachable from a failure still builds.  Because a
    compiled unit is a pure function of (source, import pids), the
    failed/skipped partitions and the diagnostics are identical under
    every backend, in deterministic (serial build) order.  [werror]
    promotes warnings to errors at emission time; [max_errors] bounds
    the diagnostics collected per unit. *)
val build :
  ?backend:backend ->
  ?schedule:schedule ->
  ?cache:Cache.ops ->
  ?profile:Obs.Profile.t ->
  ?retries:int ->
  ?backoff_s:float ->
  ?keep_going:bool ->
  ?werror:bool ->
  ?max_errors:int ->
  t ->
  policy:policy ->
  sources:string list ->
  stats

(** [unit_of t file] — the Unit of [file] after the last build. *)
val unit_of : t -> string -> Pickle.Binfile.t

(** [link_snapshot t] — one {!Link.Relink.unit_src} per unit of the
    last build, in link order: name, interface pid, code, and a
    fingerprint of the unit's bin bytes.  This is what the daemon's
    hot-swap reconciliation diffs against the live epoch after every
    rebuild. *)
val link_snapshot : t -> Link.Relink.unit_src list

(** What a {!recover} pass found on disk. *)
type recovery = {
  rv_intact : string list;  (** bins that rehydrate cleanly *)
  rv_quarantined : string list;
      (** damaged bins, set aside as [<file>.bin.quarantined] — the
          next build recompiles them instead of aborting *)
  rv_missing : string list;  (** sources with no bin at all *)
  rv_temps_swept : int;
      (** staging files of interrupted atomic commits removed *)
}

(** [recover t ~sources] — the crash-recovery pass: sweep staging files
    left by interrupted commits, validate every bin file (CRC + unit
    name) in a scratch session, and quarantine the damaged ones so the
    next {!build} schedules their recompilation.  After [recover], a
    crashed build is indistinguishable from a cold (or partially warm)
    cache: [build] converges to exactly the state a fault-free build
    would have produced. *)
val recover : t -> sources:string list -> recovery

val pp_recovery : Format.formatter -> recovery -> unit

(** [run ?output t ~sources] — execute every unit of the last build in
    dependency order (the order recorded by that build — sources are
    re-parsed only if [sources] differs from the last build's set);
    returns the final dynamic environment. *)
val run : ?output:(string -> unit) -> t -> sources:string list -> Link.Linker.dynenv

(** [outcome_of stats file] — ["recompiled"], ["loaded"], ["cache"]
    (stale but served from the unit cache), ["cutoff"] (recompiled,
    interface unchanged), ["failed"], ["skipped"] or ["unknown"]. *)
val outcome_of : stats -> string -> string

(** [summary_line stats] — the one-line
    ["N recompiled / M loaded / C cache / K cutoff (policy, backend, T ms)"]
    digest; a [" / F failed / S skipped"] segment appears when either
    partition is non-empty. *)
val summary_line : stats -> string

(** [pp_report ppf stats] — per-unit outcomes and timings, the
    diagnostics of failed units, then the summary line. *)
val pp_report : Format.formatter -> stats -> unit

(** [diag_json d] — one diagnostic as a JSON object (severity, phase,
    code, file, line, col, message, unit). *)
val diag_json : Support.Diag.t -> Obs.Json.t

(** [report_json stats] — the same report as JSON: policy, backend,
    wall time, the breakdown counts (including failed/skipped), one
    object per unit in build order, and a [diagnostics] array with
    every failed unit's diagnostics in deterministic order. *)
val report_json : stats -> Obs.Json.t
