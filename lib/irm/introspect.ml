module P = Obs.Profile

type rendered = { out : string; err : string; code : int }

let no_builds =
  {
    out = "";
    err = "no recorded builds: run `irm build` (without --no-profile) first\n";
    code = 1;
  }

(* units of the last build that [unit_] dragged along: dependents whose
   recorded cause blames it, and units skipped because it failed *)
let poisoned_by b unit_ =
  List.filter_map
    (fun v ->
      if String.equal v.P.up_unit unit_ then None
      else if List.exists (String.equal unit_) v.P.up_culprits then
        Some
          ( v.P.up_unit,
            if String.equal v.P.up_outcome "skipped" then "skipped"
            else Option.value ~default:"rebuilt" v.P.up_cause )
      else None)
    b.P.bp_units

let opt_json of_value = function
  | Some v -> of_value v
  | None -> Obs.Json.Null

let history_json = function
  | None -> Obs.Json.Null
  | Some a ->
    Obs.Json.Obj
      [
        ("builds", Obs.Json.Int a.P.ag_builds);
        ("ewma_s", Obs.Json.Float a.P.ag_ewma_s);
        ("max_s", Obs.Json.Float a.P.ag_max_s);
        ("last_s", Obs.Json.Float a.P.ag_last_s);
        ( "phases",
          Obs.Json.Obj
            (List.map (fun (n, s) -> (n, Obs.Json.Float s)) a.P.ag_phases) );
      ]

let diagnostics_envelope ?(failed = []) ?(skipped = []) diags =
  Obs.Json.Obj
    [
      ("version", Obs.Json.String "smlsep-diag/1");
      ("failed", Obs.Json.List (List.map (fun f -> Obs.Json.String f) failed));
      ("skipped", Obs.Json.List (List.map (fun f -> Obs.Json.String f) skipped));
      ("diagnostics", Obs.Json.List (List.map Driver.diag_json diags));
    ]

let build_listing mgr stats =
  let buf = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun file ->
      match Driver.outcome_of stats file with
      | ("failed" | "skipped") as outcome ->
        pr "%-24s %s  [%s]\n" file (String.make 8 '-') outcome
      | outcome ->
        let unit_ = Driver.unit_of mgr file in
        let tag =
          match outcome with
          | "cutoff" -> "recompiled (interface unchanged)"
          | "loaded" -> "up to date"
          | "cache" -> "from cache"
          | other -> other
        in
        pr "%-24s %s  [%s]\n" file
          (Digestkit.Pid.short unit_.Pickle.Binfile.uf_static_pid)
          tag)
    stats.Driver.st_order;
  pr "%s\n" (Driver.summary_line stats);
  Buffer.contents buf

let report_diagnostics ~source_of ~json stats =
  let failed = stats.Driver.st_failed in
  let skipped = stats.Driver.st_skipped in
  let code = if failed = [] && skipped = [] then 0 else 1 in
  if json then
    {
      out =
        Obs.Json.to_string
          (diagnostics_envelope ~failed:(List.map fst failed)
             ~skipped:(List.map fst skipped)
             (List.concat_map snd failed))
        ^ "\n";
      err = "";
      code;
    }
  else
    let buf = Buffer.create 256 in
    List.iter
      (fun (_, ds) ->
        List.iter
          (fun d ->
            Buffer.add_string buf
              (Format.asprintf "%a" (Support.Diag.render ~source_of) d))
          ds)
      failed;
    List.iter
      (fun (file, culprit) ->
        Buffer.add_string buf
          (Printf.sprintf "%s: skipped: dependency %s failed\n" file culprit))
      skipped;
    { out = ""; err = Buffer.contents buf; code }

let explain p ~unit_name ~json =
  match P.last p with
  | None -> no_builds
  | Some b -> (
    match P.find_unit b unit_name with
    | None ->
      {
        out = "";
        err =
          Printf.sprintf
            "unit %s is not part of the last recorded build (build %d)\n"
            unit_name b.P.bp_id;
        code = 1;
      }
    | Some u ->
      let poisoned = poisoned_by b unit_name in
      let agg = P.aggregate p unit_name in
      if json then
        {
          out =
            Obs.Json.to_canonical_string
              (Obs.Json.Obj
                 [
                   ("version", Obs.Json.String "smlsep-profile/1");
                   ("unit", Obs.Json.String unit_name);
                   ("build", Obs.Json.Int b.P.bp_id);
                   ("policy", Obs.Json.String b.P.bp_policy);
                   ("outcome", Obs.Json.String u.P.up_outcome);
                   ("cause", opt_json (fun c -> Obs.Json.String c) u.P.up_cause);
                   ( "culprits",
                     Obs.Json.List
                       (List.map (fun c -> Obs.Json.String c) u.P.up_culprits)
                   );
                   ("wall_s", Obs.Json.Float u.P.up_wall_s);
                   ( "phases",
                     Obs.Json.Obj
                       (List.map
                          (fun (n, s) -> (n, Obs.Json.Float s))
                          u.P.up_phases) );
                   ( "imports",
                     Obs.Json.Obj
                       (List.map
                          (fun (d, pid) -> (d, Obs.Json.String pid))
                          u.P.up_imports) );
                   ( "poisoned",
                     Obs.Json.List
                       (List.map
                          (fun (n, via) ->
                            Obs.Json.Obj
                              [
                                ("unit", Obs.Json.String n);
                                ("via", Obs.Json.String via);
                              ])
                          poisoned) );
                   ("history", history_json agg);
                 ])
            ^ "\n";
          err = "";
          code = 0;
        }
      else begin
        let buf = Buffer.create 256 in
        let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
        pr "%s  (build %d, %s policy, %s)\n" unit_name b.P.bp_id b.P.bp_policy
          b.P.bp_backend;
        pr "  outcome   %s\n" u.P.up_outcome;
        (match u.P.up_cause with
        | Some c ->
          pr "  cause     %s%s\n" c
            (match u.P.up_culprits with
            | [] -> ""
            | cs -> "  (" ^ String.concat ", " cs ^ ")")
        | None -> pr "  cause     up to date\n");
        pr "  wall      %.2f ms\n" (1000. *. u.P.up_wall_s);
        (match u.P.up_phases with
        | [] -> ()
        | phases ->
          pr "  phases    %s\n"
            (String.concat ", "
               (List.map
                  (fun (n, s) -> Printf.sprintf "%s %.2f ms" n (1000. *. s))
                  phases)));
        (match agg with
        | Some a ->
          pr "  history   %d compiles, ewma %.2f ms, max %.2f ms\n"
            a.P.ag_builds
            (1000. *. a.P.ag_ewma_s)
            (1000. *. a.P.ag_max_s)
        | None -> ());
        (match poisoned with
        | [] -> pr "  poisoned  nothing\n"
        | ps ->
          pr "  poisoned  %s\n"
            (String.concat ", "
               (List.map (fun (n, via) -> Printf.sprintf "%s (%s)" n via) ps)));
        { out = Buffer.contents buf; err = ""; code = 0 }
      end)

let profile_envelope p b ~top =
  let open Obs.Json in
  let count outcome =
    List.length
      (List.filter (fun u -> String.equal u.P.up_outcome outcome) b.P.bp_units)
  in
  let causes =
    List.fold_left
      (fun acc u ->
        match u.P.up_cause with
        | None -> acc
        | Some c -> (
          match List.assoc_opt c acc with
          | Some n -> (c, n + 1) :: List.remove_assoc c acc
          | None -> (c, 1) :: acc))
      [] b.P.bp_units
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let compiled =
    List.filter
      (fun u ->
        String.equal u.P.up_outcome "recompiled"
        || String.equal u.P.up_outcome "cutoff")
      b.P.bp_units
  in
  let top_units =
    List.filteri
      (fun i _ -> i < top)
      (List.sort (fun a b -> compare b.P.up_wall_s a.P.up_wall_s) compiled)
  in
  let unit_brief u =
    Obj [ ("unit", String u.P.up_unit); ("wall_s", Float u.P.up_wall_s) ]
  in
  let unit_json u =
    Obj
      [
        ("unit", String u.P.up_unit);
        ("outcome", String u.P.up_outcome);
        ("cause", opt_json (fun c -> String c) u.P.up_cause);
        ("culprits", List (List.map (fun c -> String c) u.P.up_culprits));
        ("wall_s", Float u.P.up_wall_s);
        ("priority", Float u.P.up_priority);
        ("phases", Obj (List.map (fun (n, s) -> (n, Float s)) u.P.up_phases));
      ]
  in
  ( causes,
    top_units,
    Obj
      [
        ("version", String "smlsep-profile/1");
        ( "build",
          Obj
            [
              ("id", Int b.P.bp_id);
              ("policy", String b.P.bp_policy);
              ("backend", String b.P.bp_backend);
              ("wall_s", Float b.P.bp_wall_s);
              ("jobs", Int b.P.bp_jobs);
              ("schedule", String b.P.bp_schedule);
              ("static_releases", Int b.P.bp_static_releases);
              ("efficiency", opt_json (fun e -> Float e) (P.efficiency b));
              ( "counts",
                Obj
                  [
                    ("recompiled", Int (count "recompiled"));
                    ("cutoff", Int (count "cutoff"));
                    ("cache", Int (count "cache"));
                    ("loaded", Int (count "loaded"));
                    ("failed", Int (count "failed"));
                    ("skipped", Int (count "skipped"));
                  ] );
            ] );
        ("causes", Obj (List.map (fun (c, n) -> (c, Int n)) causes));
        ("critical_path", List (List.map unit_brief (P.critical_path b)));
        ("top", List (List.map unit_brief top_units));
        ("units", List (List.map unit_json b.P.bp_units));
        ( "store",
          Obj
            [
              ("builds", Int (List.length (P.builds p)));
              ("bytes", Int (P.store_bytes p));
            ] );
      ] )

let profile_report p ~json ~top =
  match P.last p with
  | None -> no_builds
  | Some b ->
    let causes, top_units, envelope = profile_envelope p b ~top in
    if json then
      { out = Obs.Json.to_canonical_string envelope ^ "\n"; err = ""; code = 0 }
    else begin
      let buf = Buffer.create 256 in
      let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      pr "build %d  (%s policy, %s, %.1f ms wall, %d jobs, %s schedule)\n"
        b.P.bp_id b.P.bp_policy b.P.bp_backend
        (1000. *. b.P.bp_wall_s)
        b.P.bp_jobs b.P.bp_schedule;
      if b.P.bp_static_releases > 0 then
        pr "  pipelined      %d static views released early\n"
          b.P.bp_static_releases;
      (match P.efficiency b with
      | Some e -> pr "  efficiency     %.0f%% of slot time busy\n" (100. *. e)
      | None -> ());
      (match causes with
      | [] -> pr "  causes         nothing rebuilt\n"
      | cs ->
        pr "  causes         %s\n"
          (String.concat ", "
             (List.map (fun (c, n) -> Printf.sprintf "%s %d" c n) cs)));
      (match P.critical_path b with
      | [] -> ()
      | path ->
        pr "  critical path  %s  (%.2f ms)\n"
          (String.concat " -> " (List.map (fun u -> u.P.up_unit) path))
          (1000. *. List.fold_left (fun acc u -> acc +. u.P.up_wall_s) 0. path));
      if top_units <> [] then begin
        pr "  slowest units:\n";
        List.iter
          (fun u ->
            pr "    %-28s %8.2f ms\n" u.P.up_unit (1000. *. u.P.up_wall_s))
          top_units
      end;
      pr "  store          %d builds retained, %d bytes\n"
        (List.length (P.builds p))
        (P.store_bytes p);
      { out = Buffer.contents buf; err = ""; code = 0 }
    end
