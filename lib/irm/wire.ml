module Diag = Support.Diag
module Loc = Support.Loc
module Buf = Pickle.Buf

type job = {
  j_name : string;
  j_source : string;
  j_closure : (string * string) list;
  j_imports : string list;
  j_collect : bool;
  j_werror : bool;
  j_limit : int option;
  j_build : int;
  j_split : bool;
}

type kind = Recompiled | Loaded | Cache_hit

type result = {
  r_kind : kind;
  r_bytes : string;
  r_phases : (string * float) list;
}

let manager_error fmt = Diag.error Diag.Manager Loc.dummy fmt

(* [execute] may run on a worker domain or in a forked child.  It
   touches nothing but the job: a brand-new session is rehydrated from
   the closure bytes, the unit is compiled against its direct imports,
   and the pickled bytes are the result.  Because generated binder
   names are scoped per compile (Symbol.with_fresh_scope) the bytes are
   a pure function of (source, closure) — identical no matter which
   domain, process, or how many, ran the job.  The serial backend runs
   this very function inline, so Serial, Parallel and Workers builds
   agree byte-for-byte by construction. *)
let execute ?notify job =
  Obs.Trace.span ~cat:"compile"
    ~args:[ ("unit", job.j_name); ("build", string_of_int job.j_build) ]
    "build.compile_job"
  @@ fun () ->
  (* time the two manager-side segments by hand and collect the compile
     phases ("parse", "elaborate", …) through the phase collector —
     durations flow back in the result even on untraced builds, feeding
     the profile store *)
  let t0 = Unix.gettimeofday () in
  let session = Sepcomp.Compile.new_session () in
  let units = Hashtbl.create 16 in
  List.iter
    (fun (dep, bytes) ->
      Hashtbl.replace units dep (Sepcomp.Compile.load session bytes))
    job.j_closure;
  let imports =
    List.map
      (fun dep ->
        match Hashtbl.find_opt units dep with
        | Some unit_ -> unit_
        | None ->
          manager_error "dependency %s of %s missing from closure" dep
            job.j_name)
      job.j_imports
  in
  let diags =
    if job.j_collect || job.j_werror then
      Some
        (Diag.collector ?limit:job.j_limit ~werror:job.j_werror
           ~unit_name:job.j_name ())
    else None
  in
  let rehydrate_s = Unix.gettimeofday () -. t0 in
  (* the pipelined split: when the scheduler asked for it, ship the
     unit's static view (pickled with the static-only magic) the moment
     elaboration/hashing fixes it, then keep generating code.  The
     compile itself records the [compile.static]/[compile.codegen]
     stage spans, nested inside its compile.unit span, so a merged
     trace shows dependents overlapping this unit's codegen. *)
  let on_static =
    match notify with
    | Some fire when job.j_split ->
      Some
        (fun static_view ->
          fire (Sepcomp.Compile.save_static session static_view))
    | Some _ | None -> None
  in
  let unit_, phases =
    Obs.Trace.record_phases (fun () ->
        Sepcomp.Compile.compile ?diags ?on_static session ~name:job.j_name
          ~source:job.j_source ~imports)
  in
  (* the collector also sees the enclosing compile.unit span — drop it,
     it is the sum of the phases, not one of them *)
  let phases =
    List.filter (fun (n, _) -> not (String.equal n "compile.unit")) phases
  in
  let t1 = Unix.gettimeofday () in
  let r_bytes = Sepcomp.Compile.save session unit_ in
  let save_s = Unix.gettimeofday () -. t1 in
  {
    r_kind = Recompiled;
    r_bytes;
    r_phases = (("rehydrate", rehydrate_s) :: phases) @ [ ("save", save_s) ];
  }

exception Child_failure of string

let () =
  Printexc.register_printer (function
    | Child_failure msg -> Some msg
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Wire codecs                                                         *)
(* ------------------------------------------------------------------ *)

let encode_job job =
  let w = Buf.writer () in
  Buf.string w job.j_name;
  Buf.string w job.j_source;
  Buf.list w
    (fun (dep, bytes) ->
      Buf.string w dep;
      Buf.string w bytes)
    job.j_closure;
  Buf.list w (Buf.string w) job.j_imports;
  Buf.bool w job.j_collect;
  Buf.bool w job.j_werror;
  Buf.option w (Buf.int w) job.j_limit;
  Buf.int w job.j_build;
  Buf.bool w job.j_split;
  Buf.contents w

let decode_job payload =
  let r = Buf.reader payload in
  let j_name = Buf.read_string r in
  let j_source = Buf.read_string r in
  let j_closure =
    Buf.read_list r (fun () ->
        let dep = Buf.read_string r in
        let bytes = Buf.read_string r in
        (dep, bytes))
  in
  let j_imports = Buf.read_list r (fun () -> Buf.read_string r) in
  let j_collect = Buf.read_bool r in
  let j_werror = Buf.read_bool r in
  let j_limit = Buf.read_option r (fun () -> Buf.read_int r) in
  let j_build = Buf.read_int r in
  let j_split = Buf.read_bool r in
  {
    j_name;
    j_source;
    j_closure;
    j_imports;
    j_collect;
    j_werror;
    j_limit;
    j_build;
    j_split;
  }

let kind_byte = function Recompiled -> 0 | Loaded -> 1 | Cache_hit -> 2

let kind_of_byte = function
  | 0 -> Recompiled
  | 1 -> Loaded
  | 2 -> Cache_hit
  | b -> raise (Buf.Corrupt (Printf.sprintf "unknown result kind %d" b))

let encode_result result =
  let w = Buf.writer () in
  Buf.byte w (kind_byte result.r_kind);
  Buf.string w result.r_bytes;
  (* Buf has no float form: hex float strings ("%h") round-trip exactly *)
  Buf.list w
    (fun (name, s) ->
      Buf.string w name;
      Buf.string w (Printf.sprintf "%h" s))
    result.r_phases;
  Buf.contents w

let decode_result payload =
  let r = Buf.reader payload in
  let r_kind = kind_of_byte (Buf.read_byte r) in
  let r_bytes = Buf.read_string r in
  let r_phases =
    Buf.read_list r (fun () ->
        let name = Buf.read_string r in
        let s = Buf.read_string r in
        match float_of_string_opt s with
        | Some f -> (name, f)
        | None ->
          raise (Buf.Corrupt (Printf.sprintf "bad phase duration %S" s)))
  in
  { r_kind; r_bytes; r_phases }

(* [Diag.Error] the exception shadows [Diag.Error] the severity; the
   annotations let type-directed disambiguation pick the severity *)
let severity_byte (s : Diag.severity) =
  match s with Error -> 0 | Warning -> 1 | Note -> 2

let severity_of_byte b : Diag.severity =
  match b with
  | 0 -> Error
  | 1 -> Warning
  | 2 -> Note
  | b -> raise (Buf.Corrupt (Printf.sprintf "unknown severity %d" b))

let phase_byte = function
  | Diag.Lex -> 0
  | Diag.Parse -> 1
  | Diag.Elaborate -> 2
  | Diag.Translate -> 3
  | Diag.Pickle -> 4
  | Diag.Link -> 5
  | Diag.Execute -> 6
  | Diag.Manager -> 7

let phase_of_byte = function
  | 0 -> Diag.Lex
  | 1 -> Diag.Parse
  | 2 -> Diag.Elaborate
  | 3 -> Diag.Translate
  | 4 -> Diag.Pickle
  | 5 -> Diag.Link
  | 6 -> Diag.Execute
  | 7 -> Diag.Manager
  | b -> raise (Buf.Corrupt (Printf.sprintf "unknown phase %d" b))

let write_pos w (p : Loc.pos) =
  Buf.int w p.Loc.line;
  Buf.int w p.Loc.col;
  Buf.int w p.Loc.offset

let read_pos r =
  let line = Buf.read_int r in
  let col = Buf.read_int r in
  let offset = Buf.read_int r in
  { Loc.line; col; offset }

(* [Diag.pp] distinguishes dummy locations by physical equality, so the
   wire form records dummy-ness explicitly and decodes it back to the
   one true [Loc.dummy] — a round-tripped diagnostic renders exactly as
   the original would have *)
let write_diag w (d : Diag.t) =
  Buf.byte w (severity_byte d.Diag.severity);
  Buf.byte w (phase_byte d.Diag.phase);
  Buf.string w d.Diag.code;
  Buf.bool w (d.Diag.loc == Loc.dummy);
  Buf.string w d.Diag.loc.Loc.file;
  write_pos w d.Diag.loc.Loc.start_pos;
  write_pos w d.Diag.loc.Loc.end_pos;
  Buf.string w d.Diag.message;
  Buf.option w (Buf.string w) d.Diag.unit_name

let read_diag r =
  let severity = severity_of_byte (Buf.read_byte r) in
  let phase = phase_of_byte (Buf.read_byte r) in
  let code = Buf.read_string r in
  let is_dummy = Buf.read_bool r in
  let file = Buf.read_string r in
  let start_pos = read_pos r in
  let end_pos = read_pos r in
  let loc = if is_dummy then Loc.dummy else { Loc.file; start_pos; end_pos } in
  let message = Buf.read_string r in
  let unit_name = Buf.read_option r (fun () -> Buf.read_string r) in
  { Diag.severity; phase; code; loc; message; unit_name }

let encode_exn exn =
  let w = Buf.writer () in
  (match exn with
  | Diag.Error d ->
    Buf.byte w 0;
    write_diag w d
  | Diag.Errors ds ->
    Buf.byte w 1;
    Buf.list w (write_diag w) ds
  | exn ->
    Buf.byte w 2;
    Buf.string w (Printexc.to_string exn));
  Buf.contents w

let decode_exn payload =
  let r = Buf.reader payload in
  match Buf.read_byte r with
  | 0 -> Diag.Error (read_diag r)
  | 1 -> Diag.Errors (Buf.read_list r (fun () -> read_diag r))
  | 2 -> Child_failure (Buf.read_string r)
  | b -> raise (Buf.Corrupt (Printf.sprintf "unknown exception tag %d" b))

(* ------------------------------------------------------------------ *)
(* The worker protocol                                                 *)
(* ------------------------------------------------------------------ *)

let fail_diag ~id = function
  | Worker.Crashed { wf_attempts; wf_detail } ->
    Diag.Error
      (Diag.make ~code:"E0701" ~unit_name:id Diag.Manager Loc.dummy
         (Printf.sprintf
            "compiler crashed while compiling %s (%s); unit quarantined \
             after %d attempts"
            id wf_detail wf_attempts))
  | Worker.Timed_out { wf_timeout_s } ->
    Diag.Error
      (Diag.make ~code:"E0702" ~unit_name:id Diag.Manager Loc.dummy
         (Printf.sprintf
            "compile of %s exceeded its %gs timeout and was killed" id
            wf_timeout_s))

(* the fleet's failure vocabulary, one code per network failure class:
   E0703 — the executors could not be reached (or stopped answering)
   despite retries; E0704 — a peer spoke protocol damage.  The unit is
   failed, not lost: keep-going builds poison only its cone. *)
let remote_fail ~id = function
  | Remote.Fleet.Unreachable { rf_attempts; rf_detail } ->
    Diag.Error
      (Diag.make ~code:"E0703" ~unit_name:id Diag.Manager Loc.dummy
         (Printf.sprintf
            "remote executors unreachable while compiling %s (%s); gave up \
             after %d attempts"
            id rf_detail rf_attempts))
  | Remote.Fleet.Protocol { rf_detail } ->
    Diag.Error
      (Diag.make ~code:"E0704" ~unit_name:id Diag.Manager Loc.dummy
         (Printf.sprintf "remote protocol error while compiling %s: %s" id
            rf_detail))

let proto () =
  {
    Worker.p_handler =
      (fun ~notify ~id:_ payload ->
        encode_result (execute ~notify (decode_job payload)));
    p_encode_exn = encode_exn;
    p_decode_exn = decode_exn;
    p_fail = (fun ~id failure -> fail_diag ~id failure);
  }

let codec () =
  {
    Sched.c_proto = proto ();
    c_encode_job = encode_job;
    c_decode_result = decode_result;
  }
