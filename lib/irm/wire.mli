(** The compile job, its result, and their wire forms.

    The paper's factored model makes compiling a unit a pure function
    of [(source, import closure bytes)] — this module holds that job
    value, the [execute] function every backend runs (inline for
    [Serial]/[Parallel], in a forked child for [Workers]), and the
    {!Pickle.Buf} codecs that move jobs, results, and exceptions across
    the process boundary.  Because [execute] is the same function
    everywhere and the codecs are lossless, the [Workers] backend is
    byte-identical to [Serial] by construction. *)

module Diag = Support.Diag

(** What [execute] needs to compile one unit without touching any
    shared state. *)
type job = {
  j_name : string;
  j_source : string;
  j_closure : (string * string) list;  (** (file, bin bytes), dep order *)
  j_imports : string list;  (** direct dependencies, scope order *)
  j_collect : bool;  (** compile under a diagnostics collector *)
  j_werror : bool;  (** promote warnings to errors *)
  j_limit : int option;  (** collector error limit *)
  j_build : int;  (** the build id, for cross-process trace correlation *)
  j_split : bool;  (** release the static view mid-compile via [notify] *)
}

type kind = Recompiled | Loaded | Cache_hit

type result = {
  r_kind : kind;
  r_bytes : string;  (** the unit's (possibly new) bin bytes *)
  r_phases : (string * float) list;
      (** per-phase seconds: [rehydrate], the compile phases ([parse],
          [elaborate], …) and [save]; collected even on untraced builds
          and fed to the profile store *)
}

(** Compile a job in a brand-new session.  Pure: the resulting bytes
    are a function of (source, closure) alone, identical no matter
    which domain — or which process — ran the job.

    With [notify] and [j_split] set, the unit's static view (pickled
    via {!Sepcomp.Compile.save_static}) is handed to [notify] the
    moment elaboration and hashing fix it — before translate/simplify —
    and the compile records [compile.static]/[compile.codegen] stage
    spans nested inside its compile.unit span.  The returned result is
    unaffected. *)
val execute : ?notify:(string -> unit) -> job -> result

(** A failure the child could not express as diagnostics (its message
    is the child-side [Printexc.to_string]).  Renders as the bare
    message, so a worker-reported [Stack_overflow] prints exactly as an
    in-process one would. *)
exception Child_failure of string

(** {1 Wire codecs} *)

val encode_job : job -> string
val decode_job : string -> job

val encode_result : result -> string
val decode_result : string -> result

(** Exception transport: {!Diag.Error} and {!Diag.Errors} cross the
    boundary losslessly (dummy locations decode back to the physical
    {!Support.Loc.dummy}, preserving rendering); anything else decodes
    as {!Child_failure}. *)
val encode_exn : exn -> string

val decode_exn : string -> exn

(** The worker protocol: [p_handler] decodes a job, runs {!execute},
    and encodes the result; [p_fail] mints the supervision diagnostics
    — [E0701] (compiler crash, unit quarantined) and [E0702] (compile
    timeout). *)
val proto : unit -> Worker.proto

(** The remote fleet's failure translator: [E0703] (remote executors
    unreachable after retries) and [E0704] (remote protocol damage).
    [Driver.build] installs it on every [Remote] backend. *)
val remote_fail : id:string -> Remote.Fleet.failure -> exn

(** The scheduler codec for the [Workers] backend. *)
val codec : unit -> (job, result) Sched.codec
