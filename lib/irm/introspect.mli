(** Rendering for [irm explain] and [irm profile], factored out of the
    CLI so the build daemon can serve the same requests over the
    socket: both front ends produce byte-identical reports because they
    run this one implementation.

    Renderers return the finished text instead of printing, split into
    the stdout and stderr streams plus the exit code the report calls
    for — the CLI writes the two streams to its own fds, the daemon
    ships them to the client in the response frame. *)

(** A finished report: what belongs on stdout, what belongs on stderr,
    and the process exit code. *)
type rendered = { out : string; err : string; code : int }

(** [explain p ~unit_name ~json] — why [unit_name] was rebuilt in the
    last recorded build: outcome, cause and culprits, wall time and
    phases, the units it poisoned downstream, and its compile-time
    history.  [json] renders the [smlsep-profile/1] envelope
    (canonical form) instead of text.  Exit code 1 (with the reason on
    [err]) when nothing is recorded or the unit is not part of the
    last build. *)
val explain : Obs.Profile.t -> unit_name:string -> json:bool -> rendered

(** [diagnostics_envelope ?failed ?skipped diags] — the machine-readable
    [smlsep-diag/1] envelope (validated in CI against
    [schemas/diagnostics.schema.json]). *)
val diagnostics_envelope :
  ?failed:string list ->
  ?skipped:string list ->
  Support.Diag.t list ->
  Obs.Json.t

(** [build_listing mgr stats] — the per-unit
    ["<file> <pid> [tag]"] listing plus the summary line that
    [irm build] prints on stdout in text mode. *)
val build_listing : Driver.t -> Driver.stats -> string

(** [report_diagnostics ~source_of ~json stats] — a build's
    failed/skipped partitions, rendered: [json] puts the
    [smlsep-diag/1] envelope on [out], text puts human-readable
    diagnostics with source excerpts (via [source_of]) on [err].
    [code] is 1 when either partition is non-empty, 0 otherwise. *)
val report_diagnostics :
  source_of:(string -> string option) ->
  json:bool ->
  Driver.stats ->
  rendered

(** [profile_report p ~json ~top] — the last recorded build's summary:
    counts, rebuild causes, critical path, [top] slowest units,
    scheduler efficiency and store occupancy.  [json] renders the
    [smlsep-profile/1] envelope (canonical form). *)
val profile_report : Obs.Profile.t -> json:bool -> top:int -> rendered
