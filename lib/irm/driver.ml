module Diag = Support.Diag
module Pid = Digestkit.Pid

type policy = Timestamp | Cutoff | Selective

let policy_name = function
  | Timestamp -> "timestamp"
  | Cutoff -> "cutoff"
  | Selective -> "selective"

type stats = {
  st_order : string list;
  st_recompiled : string list;
  st_loaded : string list;
  st_cutoff_hits : string list;
  st_policy : policy;
  st_wall_s : float;
  st_unit_times : (string * float) list;
}

let m_recompiled = Obs.Metrics.counter "build.recompiled"
let m_loaded = Obs.Metrics.counter "build.loaded"
let m_cutoff_hits = Obs.Metrics.counter "build.cutoff_hits"

type t = {
  fs : Vfs.fs;
  session : Sepcomp.Compile.session;
  units : (string, Pickle.Binfile.t) Hashtbl.t;  (** last build's results *)
}

let create fs = { fs; session = Sepcomp.Compile.new_session (); units = Hashtbl.create 32 }
let session t = t.session

let manager_error fmt = Diag.error Diag.Manager Support.Loc.dummy fmt
let bin_path file = file ^ ".bin"

let read_source t file =
  match t.fs.Vfs.fs_read file with
  | Some content -> content
  | None -> manager_error "source file %s not found" file

(* Try to read the unit's previous bin file; damaged files count as
   absent (forcing recompilation) rather than failing the build. *)
let read_bin t file =
  match t.fs.Vfs.fs_read (bin_path file) with
  | None -> None
  | Some bytes -> (
    match Pickle.Binfile.read (Sepcomp.Compile.context t.session) bytes with
    | unit_ -> Some unit_
    | exception Pickle.Buf.Corrupt _ -> None)

let build t ~policy ~sources =
  Obs.Trace.span ~cat:"build"
    ~args:[ ("policy", policy_name policy) ]
    "build"
  @@ fun () ->
  let build_start = Unix.gettimeofday () in
  let parsed =
    Obs.Trace.span ~cat:"build" "build.scan_sources" @@ fun () ->
    List.map
      (fun file ->
        (file, Lang.Parser.parse_unit ~file (read_source t file)))
      sources
  in
  let graph = Depend.Depgraph.build parsed in
  let order = Depend.Depgraph.topological graph in
  Hashtbl.reset t.units;
  let recompiled = ref [] in
  let loaded = ref [] in
  let cutoff_hits = ref [] in
  let unit_times = ref [] in
  let was_recompiled file = List.exists (String.equal file) !recompiled in
  List.iter
    (fun file ->
      let unit_start = Unix.gettimeofday () in
      let deps = (Depend.Depgraph.node graph file).Depend.Depgraph.n_deps in
      let imports =
        List.map
          (fun dep ->
            match Hashtbl.find_opt t.units dep with
            | Some unit_ -> unit_
            | None -> manager_error "dependency %s of %s was not built" dep file)
          deps
      in
      let src_mtime =
        match t.fs.Vfs.fs_mtime file with
        | Some time -> time
        | None -> manager_error "source file %s not found" file
      in
      let previous = read_bin t file in
      let source_newer =
        match t.fs.Vfs.fs_mtime (bin_path file) with
        | Some bin_time -> src_mtime > bin_time
        | None -> true
      in
      let stale =
        match (previous, source_newer) with
        | None, _ | _, true -> true
        | Some prev, false -> (
          match policy with
          | Timestamp ->
            (* classical make: any recompiled dependency cascades *)
            List.exists was_recompiled deps
          | Cutoff ->
            (* recompile only if some import's *interface* changed *)
            let recorded = prev.Pickle.Binfile.uf_import_statics in
            List.length recorded <> List.length deps
            || not
                 (List.for_all
                    (fun dep ->
                      match
                        ( List.assoc_opt dep recorded,
                          Hashtbl.find_opt t.units dep )
                      with
                      | Some old_pid, Some current ->
                        Pid.equal old_pid current.Pickle.Binfile.uf_static_pid
                      | _ -> false)
                    deps)
          | Selective ->
            (* recompile only if a *referenced module* changed: compare
               the recorded per-name pids against the providers' current
               per-name pids *)
            let current_name_pid modname =
              List.fold_left
                (fun acc dep ->
                  match acc with
                  | Some _ -> acc
                  | None -> (
                    match Hashtbl.find_opt t.units dep with
                    | Some current ->
                      List.assoc_opt modname
                        current.Pickle.Binfile.uf_name_statics
                    | None -> None))
                None deps
            in
            (* the dependency *set* changing still forces a recompile *)
            List.length prev.Pickle.Binfile.uf_import_statics
              <> List.length deps
            || not
                 (List.for_all
                    (fun (modname, old_pid) ->
                      match current_name_pid modname with
                      | Some now -> Pid.equal old_pid now
                      | None -> false)
                    prev.Pickle.Binfile.uf_import_name_statics))
      in
      (if stale then begin
         let unit_ =
           Sepcomp.Compile.compile t.session ~name:file
             ~source:(read_source t file) ~imports
         in
         t.fs.Vfs.fs_write (bin_path file)
           (Sepcomp.Compile.save t.session unit_);
         Hashtbl.replace t.units file unit_;
         recompiled := file :: !recompiled;
         match previous with
         | Some prev
           when Pid.equal prev.Pickle.Binfile.uf_static_pid
                  unit_.Pickle.Binfile.uf_static_pid ->
           cutoff_hits := file :: !cutoff_hits;
           Obs.Trace.instant ~cat:"build" ~args:[ ("unit", file) ]
             "build.cutoff_hit"
         | _ -> ()
       end
       else
         match previous with
         | Some prev ->
           Hashtbl.replace t.units file prev;
           loaded := file :: !loaded
         | None -> assert false);
      unit_times := (file, Unix.gettimeofday () -. unit_start) :: !unit_times)
    order;
  Obs.Metrics.add m_recompiled (List.length !recompiled);
  Obs.Metrics.add m_loaded (List.length !loaded);
  Obs.Metrics.add m_cutoff_hits (List.length !cutoff_hits);
  {
    st_order = order;
    st_recompiled = List.rev !recompiled;
    st_loaded = List.rev !loaded;
    st_cutoff_hits = List.rev !cutoff_hits;
    st_policy = policy;
    st_wall_s = Unix.gettimeofday () -. build_start;
    st_unit_times = List.rev !unit_times;
  }

let unit_of t file =
  match Hashtbl.find_opt t.units file with
  | Some unit_ -> unit_
  | None -> manager_error "unit %s has not been built" file

let run ?output t ~sources =
  Obs.Trace.span ~cat:"build" "build.run" @@ fun () ->
  (* execute in the order of the last build *)
  let parsed =
    List.map
      (fun file -> (file, Lang.Parser.parse_unit ~file (read_source t file)))
      sources
  in
  let graph = Depend.Depgraph.build parsed in
  let order = Depend.Depgraph.topological graph in
  List.fold_left
    (fun dynenv file ->
      Sepcomp.Compile.execute ?output (unit_of t file) dynenv)
    Link.Linker.empty order

(* ------------------------------------------------------------------ *)
(* Build reports                                                       *)
(* ------------------------------------------------------------------ *)

let outcome_of stats file =
  let mem xs = List.exists (String.equal file) xs in
  if mem stats.st_cutoff_hits then "cutoff"
  else if mem stats.st_recompiled then "recompiled"
  else if mem stats.st_loaded then "loaded"
  else "unknown"

let summary_line stats =
  Printf.sprintf "%d recompiled / %d loaded / %d cutoff (%s policy, %.1f ms)"
    (List.length stats.st_recompiled)
    (List.length stats.st_loaded)
    (List.length stats.st_cutoff_hits)
    (policy_name stats.st_policy)
    (1000. *. stats.st_wall_s)

let pp_report ppf stats =
  Format.fprintf ppf "build report (%s policy)@." (policy_name stats.st_policy);
  List.iter
    (fun file ->
      let ms =
        match List.assoc_opt file stats.st_unit_times with
        | Some s -> 1000. *. s
        | None -> 0.
      in
      Format.fprintf ppf "  %-28s %-10s %8.2f ms@." file
        (outcome_of stats file) ms)
    stats.st_order;
  Format.fprintf ppf "  %s@." (summary_line stats)

let report_json stats =
  Obs.Json.Obj
    [
      ("policy", Obs.Json.String (policy_name stats.st_policy));
      ("wall_s", Obs.Json.Float stats.st_wall_s);
      ("recompiled", Obs.Json.Int (List.length stats.st_recompiled));
      ("loaded", Obs.Json.Int (List.length stats.st_loaded));
      ("cutoff_hits", Obs.Json.Int (List.length stats.st_cutoff_hits));
      ( "units",
        Obs.Json.List
          (List.map
             (fun file ->
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.String file);
                   ("outcome", Obs.Json.String (outcome_of stats file));
                   ( "wall_s",
                     match List.assoc_opt file stats.st_unit_times with
                     | Some s -> Obs.Json.Float s
                     | None -> Obs.Json.Null );
                 ])
             stats.st_order) );
    ]
