module Diag = Support.Diag
module Pid = Digestkit.Pid

type policy = Timestamp | Cutoff | Selective

let policy_name = function
  | Timestamp -> "timestamp"
  | Cutoff -> "cutoff"
  | Selective -> "selective"

type backend = Sched.backend =
  | Serial
  | Parallel of int
  | Workers of Worker.config
  | Remote of Remote.Fleet.config

(* how the scheduler orders ready work.  [Wavefront] is the plain FIFO
   wavefront; [Critical_path] ranks ready units by the length of the
   longest downstream chain (estimated from the profile store's EWMA
   compile times) and pipelines each compile's static/codegen phases so
   dependents start against a unit's static view while its code is
   still being generated.  Outcomes are byte-identical either way — the
   schedule steers only when work starts. *)
type schedule = Wavefront | Critical_path

let schedule_name = function
  | Wavefront -> "wavefront"
  | Critical_path -> "critical-path"

(* why a unit was recompiled.  Derived from the exact comparisons the
   policies make for the staleness decision itself — the cause is the
   decision, not a parallel reconstruction that could drift. *)
type cause =
  | First_build
  | Evicted
  | Corrupt_entry
  | Source_changed
  | Import_pid_changed of string list
  | Forced of string * string list

let cause_name = function
  | First_build -> "first-build"
  | Evicted -> "evicted"
  | Corrupt_entry -> "corrupt-entry"
  | Source_changed -> "source-changed"
  | Import_pid_changed _ -> "import-pid-changed"
  | Forced _ -> "forced"

let cause_culprits = function
  | Import_pid_changed culprits | Forced (_, culprits) -> culprits
  | First_build | Evicted | Corrupt_entry | Source_changed -> []

let cause_detail = function Forced (reason, _) -> Some reason | _ -> None

type stats = {
  st_order : string list;
  st_recompiled : string list;
  st_loaded : string list;
  st_cache_hits : string list;
  st_cutoff_hits : string list;
  st_failed : (string * Diag.t list) list;
  st_skipped : (string * string) list;
  st_policy : policy;
  st_backend : backend;
  st_wall_s : float;
  st_unit_times : (string * float) list;
  st_build_id : int;
  st_jobs : int;
  st_slot_busy_s : float list;
  st_causes : (string * cause) list;
  st_schedule : schedule;
  st_static_releases : int;
}

let m_recompiled = Obs.Metrics.counter "build.recompiled"
let m_loaded = Obs.Metrics.counter "build.loaded"
let m_cutoff_hits = Obs.Metrics.counter "build.cutoff_hits"
let m_cache_hits = Obs.Metrics.counter "build.cache_hits"
let m_failed = Obs.Metrics.counter "build.failed"
let m_skipped = Obs.Metrics.counter "build.skipped"

exception Interrupted of string

type t = {
  fs : Vfs.fs;
  session : Sepcomp.Compile.session;
  units : (string, Pickle.Binfile.t) Hashtbl.t;  (** last build's results *)
  bin_bytes : (string, string) Hashtbl.t;
      (** last build's bin bytes — the closures shipped to workers *)
  retained : (string, string * Pickle.Binfile.t) Hashtbl.t;
      (** warm state surviving across builds: file → (bin bytes, the
          unit rehydrated from them).  When a later build reads the same
          bytes back it reuses the rehydrated unit instead of unpickling
          again — the daemon's warm-rebuild win.  Never trusted blindly:
          entries are keyed by exact byte equality with what is on
          disk. *)
  mutable last_order : string list;  (** build order of the last build *)
}

let create fs =
  {
    fs;
    session = Sepcomp.Compile.new_session ();
    units = Hashtbl.create 32;
    bin_bytes = Hashtbl.create 32;
    retained = Hashtbl.create 32;
    last_order = [];
  }

let session t = t.session
let last_order t = t.last_order

let manager_error fmt = Diag.error Diag.Manager Support.Loc.dummy fmt
let bin_path file = file ^ ".bin"

let read_source t file =
  match t.fs.Vfs.fs_read file with
  | Some content -> content
  | None -> manager_error "source file %s not found" file

(* Rehydrate bin bytes into the manager's session, short-circuiting through
   the retained table: if this exact byte string was already loaded for
   this file in an earlier build (the session is created once per
   driver, so its interned state is still valid), reuse the unit.
   Raises [Pickle.Buf.Corrupt] exactly like [Sepcomp.Compile.load]. *)
let rehydrate t file bytes =
  match Hashtbl.find_opt t.retained file with
  | Some (prev_bytes, unit_) when String.equal prev_bytes bytes -> unit_
  | Some _ | None ->
    let unit_ = Sepcomp.Compile.load t.session bytes in
    Hashtbl.replace t.retained file (bytes, unit_);
    unit_

(* Try to read the unit's previous bin file; damaged files force a
   recompilation (with a distinct cause) rather than failing the
   build. *)
let read_bin t file =
  match t.fs.Vfs.fs_read (bin_path file) with
  | None -> `Absent
  | Some bytes -> (
    match rehydrate t file bytes with
    | unit_ -> `Ok (unit_, bytes)
    | exception Pickle.Buf.Corrupt _ -> `Corrupt)

(* ------------------------------------------------------------------ *)
(* Scheduler plumbing                                                  *)
(* ------------------------------------------------------------------ *)

(* the compile job, its result, and the pure [execute] every backend
   runs live in {!Wire}, next to their wire codecs; the aliases keep
   this file's construction sites unchanged *)
type job = Wire.job = {
  j_name : string;
  j_source : string;
  j_closure : (string * string) list;  (** (file, bin bytes), dep order *)
  j_imports : string list;  (** direct dependencies, scope order *)
  j_collect : bool;  (** compile under a diagnostics collector *)
  j_werror : bool;  (** promote warnings to errors *)
  j_limit : int option;  (** collector error limit *)
  j_build : int;  (** build id, for cross-process trace correlation *)
  j_split : bool;  (** release the static view mid-compile *)
}

type kind = Wire.kind = Recompiled | Loaded | Cache_hit

type result = Wire.result = {
  r_kind : kind;
  r_bytes : string;  (** the unit's (possibly new) bin bytes *)
  r_phases : (string * float) list;  (** per-phase compile seconds *)
}

let execute job = Wire.execute job

(* per-unit bookkeeping recorded by [prepare] for [complete] *)
type prep = {
  p_prev_pid : Pid.t option;
  p_key : string option;  (** cache key, when a cache is attached *)
  p_start : float;
  p_cause : cause option;  (** why the unit is stale; [None] = fresh *)
}

(* builds not recorded to a profile store still get distinct ids for
   trace correlation *)
let ephemeral_build_id = Atomic.make 1

(* transient injected faults (and nothing else) are worth retrying *)
let transient_fault = function
  | Vfs.Fault { fault_transient; _ } -> fault_transient
  | _ -> false

let outcome_of stats file =
  let mem xs = List.exists (String.equal file) xs in
  if List.mem_assoc file stats.st_failed then "failed"
  else if List.mem_assoc file stats.st_skipped then "skipped"
  else if mem stats.st_cutoff_hits then "cutoff"
  else if mem stats.st_recompiled then "recompiled"
  else if mem stats.st_cache_hits then "cache"
  else if mem stats.st_loaded then "loaded"
  else "unknown"

let build ?(backend = Serial) ?(schedule = Wavefront) ?cache ?profile
    ?(retries = 2) ?(backoff_s = 0.001) ?(keep_going = false)
    ?(werror = false) ?max_errors t ~policy ~sources =
  let build_id =
    match profile with
    | Some p -> Obs.Profile.next_id p
    | None -> Atomic.fetch_and_add ephemeral_build_id 1
  in
  Obs.Trace.span ~cat:"build"
    ~args:
      [
        ("policy", policy_name policy);
        ("backend", Sched.backend_name backend);
        ("schedule", schedule_name schedule);
        ("build", string_of_int build_id);
      ]
    "build"
  @@ fun () ->
  let build_start = Unix.gettimeofday () in
  let parsed =
    Obs.Trace.span ~cat:"build" "build.scan_sources" @@ fun () ->
    List.map
      (fun file ->
        let source = read_source t file in
        let unit_ =
          if keep_going then
            (* throwaway recovery parse: the dependency scan must survive
               broken sources, whose diagnostics then surface as failed
               compile jobs (compiles are pure, so the job re-derives
               exactly the same diagnostics) instead of aborting the
               whole build before anything was scheduled *)
            let scan_diags = Diag.collector ~unit_name:file () in
            match Lang.Parser.parse_unit ~diags:scan_diags ~file source with
            | unit_ -> unit_
            | exception Diag.Errors _ ->
              { Lang.Ast.unit_file = file; unit_decs = [] }
          else Lang.Parser.parse_unit ~file source
        in
        (file, unit_))
      sources
  in
  let graph = Depend.Depgraph.build parsed in
  let order = Depend.Depgraph.topological graph in
  Hashtbl.reset t.units;
  Hashtbl.reset t.bin_bytes;
  let deps_of file = (Depend.Depgraph.node graph file).Depend.Depgraph.n_deps in
  (* units whose bin file was rewritten this build (compiled or filled
     from the cache) — what the Timestamp cascade propagates *)
  let changed = Hashtbl.create 16 in
  let preps : (string, prep) Hashtbl.t = Hashtbl.create 16 in
  let results : (string, result * float) Hashtbl.t = Hashtbl.create 16 in
  (* critical-path priorities: rank every unit by the length of the
     longest chain from it to a sink, with per-unit compile times
     estimated from the profile store's EWMA aggregate (1 s for units
     never compiled — a damaged or absent store degrades to uniform
     estimates, i.e. longest-chain-by-depth, never an error).  The
     reversed topological order makes one pass suffice: every
     dependent's length is already known when a unit is visited. *)
  let priorities : (string, float) Hashtbl.t = Hashtbl.create 16 in
  (match schedule with
  | Wavefront -> ()
  | Critical_path ->
    let est file =
      match Option.bind profile (fun p -> Obs.Profile.aggregate p file) with
      | Some a -> Float.max 1e-6 a.Obs.Profile.ag_ewma_s
      | None -> 1.0
    in
    let dependents = Hashtbl.create 16 in
    List.iter
      (fun file ->
        List.iter
          (fun dep ->
            Hashtbl.replace dependents dep
              (file
              :: Option.value ~default:[] (Hashtbl.find_opt dependents dep)))
          (deps_of file))
      order;
    List.iter
      (fun file ->
        let downstream =
          List.fold_left
            (fun acc d ->
              Float.max acc
                (Option.value ~default:0. (Hashtbl.find_opt priorities d)))
            0.
            (Option.value ~default:[] (Hashtbl.find_opt dependents file))
        in
        Hashtbl.replace priorities file (est file +. downstream))
      (List.rev order));
  let priority_of file =
    Option.value ~default:0. (Hashtbl.find_opt priorities file)
  in
  (* the pipelined split: a compile's static view arrives mid-job;
     registering it in [t.units]/[t.bin_bytes] is exactly what unblocks
     dependents — their [prepare] reads pids from [t.units] and their
     closures ship the registered bytes.  Marking [changed] here keeps
     the Timestamp cascade identical to the unsplit build (the full
     result re-marks it later, idempotently).  A static bin rehydrates
     with a [no_code] placeholder; the full unit and bytes overwrite
     both tables when the job completes. *)
  let static_releases = ref 0 in
  let split =
    match schedule with
    | Wavefront -> None
    | Critical_path ->
      Some
        {
          Sched.sp_execute = (fun ~notify job -> Wire.execute ~notify job);
          sp_on_static =
            (fun file payload ->
              match rehydrate t file payload with
              | unit_ ->
                Hashtbl.replace t.units file unit_;
                Hashtbl.replace t.bin_bytes file payload;
                Hashtbl.replace changed file ();
                incr static_releases
              | exception Pickle.Buf.Corrupt _ ->
                (* cannot happen: in-process payloads are the compiler's
                   own bytes and the worker pipe is CRC-framed *)
                ());
        }
  in
  let unit_of_dep file dep =
    match Hashtbl.find_opt t.units dep with
    | Some unit_ -> unit_
    | None -> manager_error "dependency %s of %s was not built" dep file
  in
  let cache_key file source =
    Option.map
      (fun _ ->
        Cache.key ~version:Pickle.Binfile.magic ~name:file ~source
          ~import_pids:
            (List.map
               (fun dep -> (unit_of_dep file dep).Pickle.Binfile.uf_static_pid)
               (deps_of file)))
      cache
  in
  (* why a unit with an intact, not-source-newer bin is stale under the
     policy ([None] = up to date).  The [Some]/[None] decision is the
     policy's staleness predicate, verbatim; the payload attributes it. *)
  let stale_cause deps prev =
    let recorded = Hashtbl.create 8 in
    List.iter
      (fun (dep, pid) -> Hashtbl.replace recorded dep pid)
      prev.Pickle.Binfile.uf_import_statics;
    (* a dep with no recorded pid, or not (yet) built, counts as changed *)
    let pid_changed dep =
      match (Hashtbl.find_opt recorded dep, Hashtbl.find_opt t.units dep) with
      | Some old_pid, Some current ->
        not (Pid.equal old_pid current.Pickle.Binfile.uf_static_pid)
      | _ -> true
    in
    let dep_set_changed =
      List.length prev.Pickle.Binfile.uf_import_statics <> List.length deps
    in
    match policy with
    | Timestamp -> (
      (* classical make: any rewritten dependency cascades.  When the
         rewrite left every interface pid intact the rebuild is pure
         policy imprecision — attributed as a forced cascade, naming
         the rewritten deps *)
      match List.filter (Hashtbl.mem changed) deps with
      | [] -> None
      | cascaded -> (
        match List.filter pid_changed cascaded with
        | [] -> Some (Forced ("timestamp-cascade", cascaded))
        | culprits -> Some (Import_pid_changed culprits)))
    | Cutoff -> (
      (* recompile only if some import's *interface* changed *)
      if dep_set_changed then Some (Forced ("dependency-set-changed", deps))
      else
        match List.filter pid_changed deps with
        | [] -> None
        | culprits -> Some (Import_pid_changed culprits))
    | Selective ->
      (* recompile only if a *referenced module* changed: compare the
         recorded per-name pids against the providers' current per-name
         pids (first provider in dependency order wins, as in scope) *)
      let current = Hashtbl.create 16 in
      let provider = Hashtbl.create 16 in
      List.iter
        (fun dep ->
          match Hashtbl.find_opt t.units dep with
          | Some unit_ ->
            List.iter
              (fun (modname, pid) ->
                if not (Hashtbl.mem current modname) then begin
                  Hashtbl.add current modname pid;
                  Hashtbl.add provider modname dep
                end)
              unit_.Pickle.Binfile.uf_name_statics
          | None -> ())
        deps;
      (* the dependency *set* changing still forces a recompile *)
      if dep_set_changed then Some (Forced ("dependency-set-changed", deps))
      else (
        match
          List.filter
            (fun (modname, old_pid) ->
              match Hashtbl.find_opt current modname with
              | Some now -> not (Pid.equal old_pid now)
              | None -> true)
            prev.Pickle.Binfile.uf_import_name_statics
        with
        | [] -> None
        | changed_mods ->
          (* culprit = the unit providing the changed module *)
          Some
            (Import_pid_changed
               (List.sort_uniq String.compare
                  (List.map
                     (fun (modname, _) ->
                       Option.value
                         ~default:(Support.Symbol.name modname)
                         (Hashtbl.find_opt provider modname))
                     changed_mods))))
  in
  (* [prepare] runs on the calling domain once every dependency of
     [file] completed: staleness check, then cache probe, and only if
     both miss does the node become a compile job. *)
  let prepare file =
    let p_start = Unix.gettimeofday () in
    let deps = deps_of file in
    let source = read_source t file in
    let src_mtime =
      match t.fs.Vfs.fs_mtime file with
      | Some time -> time
      | None -> manager_error "source file %s not found" file
    in
    let bin_state = read_bin t file in
    let previous =
      match bin_state with
      | `Ok prev -> Some prev
      | `Corrupt | `Absent -> None
    in
    let source_newer =
      match t.fs.Vfs.fs_mtime (bin_path file) with
      | Some bin_time -> src_mtime > bin_time
      | None -> true
    in
    let cause =
      match bin_state with
      | `Corrupt -> Some Corrupt_entry
      | `Absent ->
        (* the profile store remembers whether this unit ever built
           before: a bin it has seen complete was evicted, anything
           else is a first build *)
        Some
          (match profile with
          | Some p when Obs.Profile.known p file -> Evicted
          | Some _ | None -> First_build)
      | `Ok (prev, _) ->
        if source_newer then Some Source_changed else stale_cause deps prev
    in
    let stale = cause <> None in
    let key = cache_key file source in
    Hashtbl.replace preps file
      {
        p_prev_pid =
          Option.map (fun (u, _) -> u.Pickle.Binfile.uf_static_pid) previous;
        p_key = key;
        p_start;
        p_cause = cause;
      };
    let compile_job () =
      Sched.Run
        {
          j_name = file;
          j_source = source;
          j_closure =
            List.map
              (fun dep ->
                match Hashtbl.find_opt t.bin_bytes dep with
                | Some bytes -> (dep, bytes)
                | None ->
                  manager_error "dependency %s of %s was not built" dep file)
              (Depend.Depgraph.closure graph file);
          j_imports = deps;
          j_collect = keep_going;
          j_werror = werror;
          j_limit = max_errors;
          j_build = build_id;
          j_split = (schedule = Critical_path);
        }
    in
    if not stale then begin
      match previous with
      | Some (prev, bytes) ->
        Hashtbl.replace t.units file prev;
        Hashtbl.replace t.bin_bytes file bytes;
        Sched.Done { r_kind = Loaded; r_bytes = bytes; r_phases = [] }
      | None -> assert false
    end
    else
      match (cache, key) with
      | Some c, Some k -> (
        match c.Cache.o_find k with
        | None -> compile_job ()
        | Some bytes -> (
          (* validate by rehydrating; corrupt entries degrade to a miss *)
          match rehydrate t file bytes with
          | exception Pickle.Buf.Corrupt _ ->
            c.Cache.o_invalidate k;
            compile_job ()
          | unit_ ->
            if String.equal unit_.Pickle.Binfile.uf_name file then
              Sched.Done { r_kind = Cache_hit; r_bytes = bytes; r_phases = [] }
            else begin
              c.Cache.o_invalidate k;
              compile_job ()
            end))
      | _ -> compile_job ()
  in
  (* [complete] merges a result back on the calling domain: rehydrate
     into the manager's session, write the bin file, feed the cache. *)
  let complete file result =
    let prep = Hashtbl.find preps file in
    (match result.r_kind with
    | Loaded -> ()
    | Recompiled | Cache_hit ->
      let unit_ = rehydrate t file result.r_bytes in
      (* atomic commit: a crash mid-write must never leave a torn bin
         under the final name — at worst an orphan staging file that
         [recover] sweeps up *)
      Vfs.commit t.fs (bin_path file) result.r_bytes;
      Hashtbl.replace t.units file unit_;
      Hashtbl.replace t.bin_bytes file result.r_bytes;
      Hashtbl.replace changed file ();
      if result.r_kind = Recompiled then begin
        (match (cache, prep.p_key) with
        | Some c, Some k -> c.Cache.o_store k result.r_bytes
        | _ -> ());
        match prep.p_prev_pid with
        | Some old when Pid.equal old unit_.Pickle.Binfile.uf_static_pid ->
          Obs.Trace.instant ~cat:"build"
            ~args:[ ("unit", file) ]
            "build.cutoff_hit"
        | _ -> ()
      end);
    Hashtbl.replace results file
      (result, Unix.gettimeofday () -. prep.p_start);
    result
  in
  (* the Remote backend gets the supervision-failure translator here,
     so fleet exhaustion surfaces as E0703/E0704 diagnostics exactly as
     worker crashes surface as E0701/E0702 *)
  let backend =
    match backend with
    | Sched.Remote cfg ->
      Sched.Remote { cfg with Remote.Fleet.r_fail = Wire.remote_fail }
    | (Sched.Serial | Sched.Parallel _ | Sched.Workers _) as b -> b
  in
  let codec =
    match backend with
    | Sched.Workers _ | Sched.Remote _ -> Some (Wire.codec ())
    | Sched.Serial | Sched.Parallel _ -> None
  in
  (* a signal arriving mid-build raises [Interrupted] out of a node
     callback; the partial build still lands in the profile store (only
     the units that actually finished), so `irm profile` shows what an
     interrupted build managed to do before it died *)
  let record_partial reason =
    match profile with
    | None -> ()
    | Some p ->
      let cutoff_of file prep =
        match (prep.p_prev_pid, Hashtbl.find_opt t.units file) with
        | Some old, Some unit_ ->
          Pid.equal old unit_.Pickle.Binfile.uf_static_pid
        | _ -> false
      in
      let bp_units =
        List.filter_map
          (fun file ->
            match (Hashtbl.find_opt preps file, Hashtbl.find_opt results file)
            with
            | Some prep, Some (res, wall) ->
              Some
                {
                  Obs.Profile.up_unit = file;
                  up_outcome =
                    (match res.r_kind with
                    | Loaded -> "loaded"
                    | Cache_hit -> "cache"
                    | Recompiled ->
                      if cutoff_of file prep then "cutoff" else "recompiled");
                  up_cause = Option.map cause_name prep.p_cause;
                  up_culprits =
                    Option.value ~default:[]
                      (Option.map cause_culprits prep.p_cause);
                  up_start_s = prep.p_start -. build_start;
                  up_wall_s = wall;
                  up_phases = res.r_phases;
                  up_imports =
                    List.map
                      (fun dep ->
                        ( dep,
                          match Hashtbl.find_opt t.units dep with
                          | Some u -> Pid.to_hex u.Pickle.Binfile.uf_static_pid
                          | None -> "" ))
                      (deps_of file);
                  up_priority = priority_of file;
                }
            | _ -> None)
          order
      in
      Obs.Trace.instant ~cat:"build"
        ~args:[ ("reason", reason) ]
        "build.interrupted";
      Obs.Profile.record p
        {
          Obs.Profile.bp_id = build_id;
          bp_policy = policy_name policy;
          bp_backend = Sched.backend_name backend;
          bp_wall_s = Unix.gettimeofday () -. build_start;
          bp_jobs = Sched.jobs backend;
          bp_slot_busy_s = [];
          bp_schedule = schedule_name schedule;
          bp_static_releases = !static_releases;
          bp_units;
        }
  in
  let outcomes =
    try
      Sched.run ~retries ~backoff_s ~retryable:transient_fault ~keep_going
        ~fatal:(function Interrupted _ -> true | _ -> false)
        ?codec
        ?priority:
          (match schedule with
          | Wavefront -> None
          | Critical_path -> Some priority_of)
        ?split backend ~order ~deps:deps_of ~prepare ~execute ~complete
    with Interrupted reason as exn ->
      record_partial reason;
      raise exn
  in
  (* without [keep_going], Sched.run raised if any node failed, so every
     node completed; with it, failed and skipped nodes have no entry in
     [results] and land in their own partitions below *)
  let outcome_tbl = Hashtbl.create 16 in
  List.iter (fun (f, o) -> Hashtbl.replace outcome_tbl f o) outcomes;
  let failed =
    List.filter_map
      (fun f ->
        match Hashtbl.find_opt outcome_tbl f with
        | Some (Sched.Failed exn) ->
          let ds =
            match Diag.of_exn exn with
            | Some ds -> ds
            | None ->
              (* a non-diagnostic exception (injected fault that exhausted
                 its retries, …) still yields a structured diagnostic *)
              [
                Diag.make ~unit_name:f Diag.Manager Support.Loc.dummy
                  (Printexc.to_string exn);
              ]
          in
          Some (f, ds)
        | _ -> None)
      order
  in
  let skipped =
    List.filter_map
      (fun f ->
        match Hashtbl.find_opt outcome_tbl f with
        | Some (Sched.Skipped culprit) -> Some (f, culprit)
        | _ -> None)
      order
  in
  let kind_of file =
    Option.map (fun (r, _) -> r.r_kind) (Hashtbl.find_opt results file)
  in
  let recompiled = List.filter (fun f -> kind_of f = Some Recompiled) order in
  let loaded = List.filter (fun f -> kind_of f = Some Loaded) order in
  let cache_hits = List.filter (fun f -> kind_of f = Some Cache_hit) order in
  let cutoff_hits =
    List.filter
      (fun f ->
        match (Hashtbl.find preps f).p_prev_pid with
        | Some old ->
          Pid.equal old (Hashtbl.find t.units f).Pickle.Binfile.uf_static_pid
        | None -> false)
      recompiled
  in
  t.last_order <- order;
  Obs.Metrics.add m_recompiled (List.length recompiled);
  Obs.Metrics.add m_loaded (List.length loaded);
  Obs.Metrics.add m_cutoff_hits (List.length cutoff_hits);
  Obs.Metrics.add m_cache_hits (List.length cache_hits);
  Obs.Metrics.add m_failed (List.length failed);
  Obs.Metrics.add m_skipped (List.length skipped);
  let slots = Sched.last_slots () in
  let stats =
    {
      st_order = order;
      st_recompiled = recompiled;
      st_loaded = loaded;
      st_cache_hits = cache_hits;
      st_cutoff_hits = cutoff_hits;
      st_failed = failed;
      st_skipped = skipped;
      st_policy = policy;
      st_backend = backend;
      st_wall_s = Unix.gettimeofday () -. build_start;
      st_unit_times =
        List.filter_map
          (fun f ->
            Option.map (fun (_, s) -> (f, s)) (Hashtbl.find_opt results f))
          order;
      st_build_id = build_id;
      st_jobs =
        (match slots with
        | Some s -> s.Sched.sl_jobs
        | None -> Sched.jobs backend);
      st_slot_busy_s =
        (match slots with
        | Some s -> Array.to_list s.Sched.sl_busy_s
        | None -> []);
      st_causes =
        List.filter_map
          (fun f ->
            Option.bind (Hashtbl.find_opt preps f) (fun p ->
                Option.map (fun c -> (f, c)) p.p_cause))
          order;
      st_schedule = schedule;
      st_static_releases = !static_releases;
    }
  in
  (* fold the build into the profile store (crash-safe journal append) *)
  (match profile with
  | None -> ()
  | Some p ->
    let skipped_tbl = Hashtbl.create 8 in
    List.iter (fun (f, c) -> Hashtbl.replace skipped_tbl f c) skipped;
    let bp_units =
      List.map
        (fun file ->
          let prep = Hashtbl.find_opt preps file in
          let res = Hashtbl.find_opt results file in
          let cause = Option.bind prep (fun pr -> pr.p_cause) in
          {
            Obs.Profile.up_unit = file;
            up_outcome = outcome_of stats file;
            up_cause = Option.map cause_name cause;
            up_culprits =
              (match Hashtbl.find_opt skipped_tbl file with
              | Some culprit -> [ culprit ]
              | None ->
                Option.value ~default:[] (Option.map cause_culprits cause));
            up_start_s =
              (match prep with
              | Some pr -> pr.p_start -. build_start
              | None -> 0.);
            up_wall_s =
              (match res with Some (_, s) -> s | None -> 0.);
            up_phases = (match res with Some (r, _) -> r.r_phases | None -> []);
            up_imports =
              List.map
                (fun dep ->
                  ( dep,
                    match Hashtbl.find_opt t.units dep with
                    | Some u -> Pid.to_hex u.Pickle.Binfile.uf_static_pid
                    | None -> "" ))
                (deps_of file);
            up_priority = priority_of file;
          })
        order
    in
    Obs.Profile.record p
      {
        Obs.Profile.bp_id = build_id;
        bp_policy = policy_name policy;
        bp_backend = Sched.backend_name backend;
        bp_wall_s = stats.st_wall_s;
        bp_jobs = stats.st_jobs;
        bp_slot_busy_s = stats.st_slot_busy_s;
        bp_schedule = schedule_name schedule;
        bp_static_releases = !static_releases;
        bp_units;
      });
  stats

let unit_of t file =
  match Hashtbl.find_opt t.units file with
  | Some unit_ -> unit_
  | None -> manager_error "unit %s has not been built" file

let link_snapshot t =
  List.map
    (fun file ->
      let unit_ = unit_of t file in
      let fingerprint =
        match Hashtbl.find_opt t.bin_bytes file with
        | Some bytes -> Digestkit.Md5.digest_string bytes
        | None -> ""
      in
      {
        Link.Relink.u_name = file;
        u_static_pid = unit_.Pickle.Binfile.uf_static_pid;
        u_cu = unit_.Pickle.Binfile.uf_codeunit;
        u_fingerprint = fingerprint;
      })
    t.last_order

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                      *)
(* ------------------------------------------------------------------ *)

type recovery = {
  rv_intact : string list;
  rv_quarantined : string list;
  rv_missing : string list;
  rv_temps_swept : int;
}

let m_quarantined = Obs.Metrics.counter "build.quarantined"

let quarantine_path file = bin_path file ^ ".quarantined"

let recover t ~sources =
  Obs.Trace.span ~cat:"build" "build.recover" @@ fun () ->
  (* sweep staging files left behind by interrupted atomic commits *)
  let temps = List.filter Vfs.is_commit_temp (t.fs.Vfs.fs_list ()) in
  List.iter t.fs.Vfs.fs_remove temps;
  let intact = ref [] and quarantined = ref [] and missing = ref [] in
  List.iter
    (fun file ->
      match t.fs.Vfs.fs_read (bin_path file) with
      | None -> missing := file :: !missing
      | Some bytes -> (
        (* validate in a scratch session so a damaged file cannot
           register anything in the manager's context *)
        let ok =
          match Sepcomp.Compile.load (Sepcomp.Compile.new_session ()) bytes with
          | unit_ -> String.equal unit_.Pickle.Binfile.uf_name file
          | exception Pickle.Buf.Corrupt _ -> false
        in
        if ok then intact := file :: !intact
        else begin
          (* set the damaged bin aside (for postmortems) so the next
             build sees it as absent and recompiles the unit instead of
             aborting the wavefront *)
          (try t.fs.Vfs.fs_rename (bin_path file) (quarantine_path file) with
          | Vfs.Fault _ | Sys_error _ -> t.fs.Vfs.fs_remove (bin_path file));
          Obs.Metrics.incr m_quarantined;
          quarantined := file :: !quarantined
        end))
    sources;
  {
    rv_intact = List.rev !intact;
    rv_quarantined = List.rev !quarantined;
    rv_missing = List.rev !missing;
    rv_temps_swept = List.length temps;
  }

let pp_recovery ppf r =
  Format.fprintf ppf "intact      %d@.quarantined %d%s@.missing     \
                      %d@.temps swept %d@."
    (List.length r.rv_intact)
    (List.length r.rv_quarantined)
    (match r.rv_quarantined with
    | [] -> ""
    | files -> "  (" ^ String.concat ", " files ^ ")")
    (List.length r.rv_missing) r.rv_temps_swept

let run ?output t ~sources =
  Obs.Trace.span ~cat:"build" "build.run" @@ fun () ->
  (* execute in the order recorded by the last build; only if the
     requested sources differ from that build do we fall back to
     re-deriving the order from the dependency graph *)
  let same_sources =
    List.sort String.compare sources
    = List.sort String.compare t.last_order
  in
  let order =
    if same_sources then t.last_order
    else
      let parsed =
        List.map
          (fun file ->
            (file, Lang.Parser.parse_unit ~file (read_source t file)))
          sources
      in
      Depend.Depgraph.topological (Depend.Depgraph.build parsed)
  in
  List.fold_left
    (fun dynenv file ->
      Sepcomp.Compile.execute ?output (unit_of t file) dynenv)
    Link.Linker.empty order

(* ------------------------------------------------------------------ *)
(* Build reports                                                       *)
(* ------------------------------------------------------------------ *)

let summary_line stats =
  let broken =
    match (List.length stats.st_failed, List.length stats.st_skipped) with
    | 0, 0 -> ""
    | f, s -> Printf.sprintf " / %d failed / %d skipped" f s
  in
  Printf.sprintf
    "%d recompiled / %d loaded / %d cache / %d cutoff%s (%s policy, %s, %.1f \
     ms)"
    (List.length stats.st_recompiled)
    (List.length stats.st_loaded)
    (List.length stats.st_cache_hits)
    (List.length stats.st_cutoff_hits)
    broken
    (policy_name stats.st_policy)
    (Sched.backend_name stats.st_backend)
    (1000. *. stats.st_wall_s)

(* report paths iterate every unit; index the per-unit lists once
   instead of List.assoc-ing each lookup *)
let times_index stats =
  let tbl = Hashtbl.create (List.length stats.st_unit_times) in
  List.iter (fun (file, s) -> Hashtbl.replace tbl file s) stats.st_unit_times;
  tbl

let outcome_index stats =
  let tbl = Hashtbl.create (List.length stats.st_order) in
  let mark outcome files =
    List.iter
      (fun file ->
        if not (Hashtbl.mem tbl file) then Hashtbl.add tbl file outcome)
      files
  in
  mark "failed" (List.map fst stats.st_failed);
  mark "skipped" (List.map fst stats.st_skipped);
  mark "cutoff" stats.st_cutoff_hits;
  mark "recompiled" stats.st_recompiled;
  mark "cache" stats.st_cache_hits;
  mark "loaded" stats.st_loaded;
  fun file -> Option.value ~default:"unknown" (Hashtbl.find_opt tbl file)

let pp_report ppf stats =
  let times = times_index stats in
  let outcome = outcome_index stats in
  Format.fprintf ppf "build report (%s policy, %s)@."
    (policy_name stats.st_policy)
    (Sched.backend_name stats.st_backend);
  List.iter
    (fun file ->
      let ms =
        match Hashtbl.find_opt times file with
        | Some s -> 1000. *. s
        | None -> 0.
      in
      Format.fprintf ppf "  %-28s %-10s %8.2f ms@." file (outcome file) ms)
    stats.st_order;
  List.iter
    (fun (_, ds) -> List.iter (fun d -> Format.fprintf ppf "  %a@." Diag.pp d) ds)
    stats.st_failed;
  List.iter
    (fun (file, culprit) ->
      Format.fprintf ppf "  %s: skipped: dependency %s failed@." file culprit)
    stats.st_skipped;
  Format.fprintf ppf "  %s@." (summary_line stats)

(* structured diagnostics as JSON — lives here rather than in Support
   because the support layer does not depend on Obs *)
let diag_json (d : Diag.t) =
  let open Obs.Json in
  Obj
    [
      ("severity", String (Diag.severity_name d.Diag.severity));
      ("phase", String (Diag.phase_id d.Diag.phase));
      ("code", String d.Diag.code);
      ("file", String d.Diag.loc.Support.Loc.file);
      ("line", Int d.Diag.loc.Support.Loc.start_pos.Support.Loc.line);
      ("col", Int d.Diag.loc.Support.Loc.start_pos.Support.Loc.col);
      ("message", String d.Diag.message);
      ( "unit",
        match d.Diag.unit_name with Some u -> String u | None -> Null );
    ]

let report_json stats =
  let times = times_index stats in
  let outcome = outcome_index stats in
  Obs.Json.Obj
    [
      ("policy", Obs.Json.String (policy_name stats.st_policy));
      ("backend", Obs.Json.String (Sched.backend_name stats.st_backend));
      ("wall_s", Obs.Json.Float stats.st_wall_s);
      ("recompiled", Obs.Json.Int (List.length stats.st_recompiled));
      ("loaded", Obs.Json.Int (List.length stats.st_loaded));
      ("cache_hits", Obs.Json.Int (List.length stats.st_cache_hits));
      ("cutoff_hits", Obs.Json.Int (List.length stats.st_cutoff_hits));
      ("failed", Obs.Json.Int (List.length stats.st_failed));
      ("skipped", Obs.Json.Int (List.length stats.st_skipped));
      ( "diagnostics",
        Obs.Json.List
          (List.concat_map
             (fun (_, ds) -> List.map diag_json ds)
             stats.st_failed) );
      ( "units",
        Obs.Json.List
          (List.map
             (fun file ->
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.String file);
                   ("outcome", Obs.Json.String (outcome file));
                   ( "wall_s",
                     match Hashtbl.find_opt times file with
                     | Some s -> Obs.Json.Float s
                     | None -> Obs.Json.Null );
                 ])
             stats.st_order) );
    ]
