(** Interned identifiers.

    All identifiers appearing in MiniSML source code are interned into
    symbols so that comparison is O(1) and symbol tables can be keyed by a
    dense integer.  Interning is global and append-only; symbols are never
    garbage collected (the compiler runs batch-style, as in SML/NJ). *)

type t

(** [intern s] returns the unique symbol for the string [s]. *)
val intern : string -> t

(** [name sym] is the string [sym] was interned from. *)
val name : t -> string

(** [id sym] is a dense non-negative integer unique to [sym]. *)
val id : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** [fresh base] interns a symbol guaranteed not to collide with any
    source-written identifier, by embedding a serial number.  Used for
    generated bindings in the elaborator and lambda translation.  The
    serial counter is domain-local, so concurrent compilations on
    separate domains draw independent sequences. *)
val fresh : string -> t

(** [with_fresh_scope f] runs [f] with this domain's fresh-symbol
    counter reset to zero, restoring it afterwards.  Wrapping the
    compilation of one unit in a scope makes every generated name a
    deterministic function of the unit alone — the property that makes
    bin files byte-reproducible regardless of compilation order or
    which domain ran the compile. *)
val with_fresh_scope : (unit -> 'a) -> 'a

(** Finite maps and sets keyed by symbols. *)
module Map : Map.S with type key = t
module Set : Set.S with type elt = t

(** Mutable hash tables keyed by symbols. *)
module Table : Hashtbl.S with type key = t
