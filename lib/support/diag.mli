(** Compiler diagnostics.

    All front-end and elaboration failures are reported through a single
    exception carrying a located, phase-tagged message, so that drivers
    (smlc, irm, the REPL, tests) handle every compiler error uniformly. *)

type phase = Lex | Parse | Elaborate | Translate | Pickle | Link | Execute | Manager

type t = { phase : phase; loc : Loc.t; message : string }

exception Error of t

(** [error phase loc fmt ...] raises {!Error} with a formatted message. *)
val error : phase -> Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val phase_name : phase -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [guard f] runs [f ()] and converts an {!Error} into [Result.Error]. *)
val guard : (unit -> 'a) -> ('a, t) result
