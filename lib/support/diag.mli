(** Structured compiler diagnostics.

    A diagnostic carries a severity, the phase that produced it, a
    stable machine-readable code, a source location, and optionally
    the compilation unit it belongs to.  Phases that cannot recover
    raise {!Error} (one diagnostic) or {!Errors} (a batch); phases
    that can recover accumulate diagnostics into a {!collector} and
    keep going, raising {!Errors} only once the unit's work is done
    (or the collector's limit is hit). *)

type severity = Error | Warning | Note

type phase =
  | Lex
  | Parse
  | Elaborate
  | Translate
  | Pickle
  | Link
  | Execute
  | Manager

type t = {
  severity : severity;
  phase : phase;
  code : string;  (** stable code, e.g. ["E0301"] or ["W0001"] *)
  loc : Loc.t;
  message : string;
  unit_name : string option;  (** owning compilation unit, if known *)
}

exception Error of t
exception Errors of t list

(** The human-readable error label of a phase (["type error"], …). *)
val phase_name : phase -> string

(** The stable machine-readable name of a phase (["elaborate"], …),
    used in JSON diagnostics. *)
val phase_id : phase -> string
val severity_name : severity -> string

val default_code : severity -> phase -> string
(** The generic code for a phase ([E0100] lex, [E0200] parse, [E0300]
    elaborate, …, [W0000]/[N0000] for warnings and notes). *)

val make :
  ?severity:severity -> ?code:string -> ?unit_name:string ->
  phase -> Loc.t -> string -> t

val error : phase -> Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Format a message and raise {!Error} with the phase's default code. *)

val error_code :
  code:string -> ?unit_name:string -> phase -> Loc.t ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [error], with an explicit stable code (and optional unit name). *)

val pp : Format.formatter -> t -> unit
(** One-line rendering: [file:line.col-col: <label>: <message> [CODE]].
    Diagnostics at {!Loc.dummy} with a unit name print the unit name in
    the location field instead. *)

val to_string : t -> string

val pp_excerpt : source:string -> Format.formatter -> t -> unit
(** Given the unit's source text, print the offending line with a caret
    underline.  No-op for {!Loc.dummy} locations. *)

val render :
  ?source_of:(string -> string option) -> Format.formatter -> t -> unit
(** One-line rendering followed by a source excerpt when [source_of]
    can resolve the diagnostic's file to its text. *)

(** {1 Collectors} *)

type collector

val default_limit : int

val collector :
  ?limit:int -> ?werror:bool -> ?unit_name:string -> unit -> collector
(** A fresh collector.  [limit] bounds the number of errors accumulated
    before {!emit} gives up by raising {!Errors} (default
    {!default_limit}); [werror] promotes warnings to errors at emission
    time; [unit_name] is stamped onto diagnostics that lack one. *)

val emit : collector -> t -> unit
(** Record a diagnostic.  Raises {!Errors} with everything collected so
    far if this error brings the collector to its limit. *)

val error_into :
  collector -> phase -> Loc.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Format a message and {!emit} it as an error (does not raise unless
    the limit is hit). *)

val diags : collector -> t list
(** Everything collected, in emission order. *)

val error_count : collector -> int
val warning_count : collector -> int
val has_errors : collector -> bool

val raise_if_errors : collector -> unit
(** Raise {!Errors} with all collected diagnostics if any error was
    emitted; return unit otherwise. *)

(** {1 Exception plumbing} *)

val of_exn : exn -> t list option
(** Diagnostics carried by {!Error}/{!Errors}, [None] for other
    exceptions. *)

val guard : (unit -> 'a) -> ('a, t) result
(** Run a computation, catching {!Error} (and the first diagnostic of
    an {!Errors} batch) as [Error d]. *)

val guard_all : (unit -> 'a) -> ('a, t list) result
(** Like {!guard} but preserves the whole batch. *)
