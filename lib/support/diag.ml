type phase = Lex | Parse | Elaborate | Translate | Pickle | Link | Execute | Manager
type t = { phase : phase; loc : Loc.t; message : string }

exception Error of t

let phase_name = function
  | Lex -> "lexical error"
  | Parse -> "syntax error"
  | Elaborate -> "type error"
  | Translate -> "translation error"
  | Pickle -> "pickle error"
  | Link -> "link error"
  | Execute -> "runtime error"
  | Manager -> "compilation manager error"

let error phase loc fmt =
  Format.kasprintf
    (fun message -> raise (Error { phase; loc; message }))
    fmt

let pp ppf d =
  Format.fprintf ppf "%a: %s: %s" Loc.pp d.loc (phase_name d.phase) d.message

let to_string d = Format.asprintf "%a" pp d

let guard f =
  match f () with v -> Ok v | exception Error d -> Result.Error d
