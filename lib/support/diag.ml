type severity = Error | Warning | Note

type phase = Lex | Parse | Elaborate | Translate | Pickle | Link | Execute | Manager

type t = {
  severity : severity;
  phase : phase;
  code : string;
  loc : Loc.t;
  message : string;
  unit_name : string option;
}

exception Error of t
exception Errors of t list

let phase_id = function
  | Lex -> "lex"
  | Parse -> "parse"
  | Elaborate -> "elaborate"
  | Translate -> "translate"
  | Pickle -> "pickle"
  | Link -> "link"
  | Execute -> "execute"
  | Manager -> "manager"

let phase_name = function
  | Lex -> "lexical error"
  | Parse -> "syntax error"
  | Elaborate -> "type error"
  | Translate -> "translation error"
  | Pickle -> "pickle error"
  | Link -> "link error"
  | Execute -> "runtime error"
  | Manager -> "compilation manager error"

let severity_name : severity -> string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

(* Stable error codes: one block of the code space per phase, with
   [x00] as the phase's generic code.  Specific diagnostics override
   the generic code at the emission site; the block assignment itself
   is part of the tool's machine-readable interface and must not be
   renumbered. *)
let default_code (severity : severity) phase =
  match severity with
  | Warning -> "W0000"
  | Note -> "N0000"
  | Error -> (
    match phase with
    | Lex -> "E0100"
    | Parse -> "E0200"
    | Elaborate -> "E0300"
    | Translate -> "E0400"
    | Pickle -> "E0500"
    | Link -> "E0600"
    | Execute -> "E0700"
    | Manager -> "E0800")

let make ?(severity = (Error : severity)) ?code ?unit_name phase loc message =
  let code =
    match code with Some c -> c | None -> default_code severity phase
  in
  { severity; phase; code; loc; message; unit_name }

let error phase loc fmt =
  Format.kasprintf
    (fun message -> raise (Error (make phase loc message)))
    fmt

let error_code ~code ?unit_name phase loc fmt =
  Format.kasprintf
    (fun message -> raise (Error (make ~code ?unit_name phase loc message)))
    fmt

let pp ppf d =
  let label =
    match d.severity with
    | Error -> phase_name d.phase
    | Warning -> "warning"
    | Note -> "note"
  in
  (match (d.loc == Loc.dummy, d.unit_name) with
  | true, Some unit_name -> Format.fprintf ppf "%s" unit_name
  | _ -> Format.fprintf ppf "%a" Loc.pp d.loc);
  Format.fprintf ppf ": %s: %s [%s]" label d.message d.code

let to_string d = Format.asprintf "%a" pp d

(* ------------------------------------------------------------------ *)
(* Source excerpts                                                     *)
(* ------------------------------------------------------------------ *)

(* the line of [source] containing [offset], without its newline *)
let line_at source offset =
  let len = String.length source in
  let offset = min (max offset 0) len in
  let start =
    match String.rindex_from_opt source (max 0 (offset - 1)) '\n' with
    | Some i when i < offset -> i + 1
    | Some _ | None -> 0
  in
  let stop =
    match String.index_from_opt source offset '\n' with
    | Some i -> i
    | None -> len
  in
  if stop >= start then String.sub source start (stop - start) else ""

let pp_excerpt ~source ppf d =
  if d.loc != Loc.dummy then begin
    let { Loc.start_pos; end_pos; _ } = d.loc in
    let line = line_at source start_pos.Loc.offset in
    let gutter = string_of_int start_pos.Loc.line in
    let width =
      (* at least one caret, clipped to the excerpted line *)
      if end_pos.Loc.line = start_pos.Loc.line then
        max 1 (end_pos.Loc.col - start_pos.Loc.col)
      else max 1 (String.length line - start_pos.Loc.col)
    in
    let width = max 1 (min width (max 1 (String.length line - start_pos.Loc.col))) in
    Format.fprintf ppf "  %s | %s@." gutter line;
    Format.fprintf ppf "  %s | %s%s@."
      (String.make (String.length gutter) ' ')
      (String.make (min start_pos.Loc.col (String.length line)) ' ')
      (String.make width '^')
  end

let render ?source_of ppf d =
  Format.fprintf ppf "%a@." pp d;
  match source_of with
  | None -> ()
  | Some lookup -> (
    if d.loc != Loc.dummy then
      match lookup d.loc.Loc.file with
      | Some source -> pp_excerpt ~source ppf d
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Collectors                                                          *)
(* ------------------------------------------------------------------ *)

type collector = {
  mutable rev_diags : t list;
  mutable n_errors : int;
  mutable n_warnings : int;
  limit : int;
  werror : bool;
  unit_name : string option;
}

let default_limit = 64

let collector ?(limit = default_limit) ?(werror = false) ?unit_name () =
  {
    rev_diags = [];
    n_errors = 0;
    n_warnings = 0;
    limit = max 1 limit;
    werror;
    unit_name;
  }

let diags c = List.rev c.rev_diags
let error_count c = c.n_errors
let warning_count c = c.n_warnings
let has_errors c = c.n_errors > 0

let too_many c =
  make ~code:"E0001" ?unit_name:c.unit_name Manager Loc.dummy
    (Printf.sprintf "too many errors (%d); giving up on this unit" c.limit)

let emit c d =
  (* --warn-error: promote at collection time, keeping the warning's
     own code so tooling can still identify the finding *)
  let d =
    if c.werror && d.severity = Warning then { d with severity = Error } else d
  in
  let d =
    match d.unit_name with
    | Some _ -> d
    | None -> { d with unit_name = c.unit_name }
  in
  (match d.severity with
  | Error -> c.n_errors <- c.n_errors + 1
  | Warning -> c.n_warnings <- c.n_warnings + 1
  | Note -> ());
  c.rev_diags <- d :: c.rev_diags;
  if d.severity = Error && c.n_errors >= c.limit then begin
    c.rev_diags <- too_many c :: c.rev_diags;
    c.n_errors <- c.n_errors + 1;
    raise (Errors (diags c))
  end

let error_into c phase loc fmt =
  Format.kasprintf
    (fun message -> emit c (make ?unit_name:c.unit_name phase loc message))
    fmt

let raise_if_errors c = if has_errors c then raise (Errors (diags c))

(* ------------------------------------------------------------------ *)
(* Exception plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let of_exn = function
  | Error d -> Some [ d ]
  | Errors ds -> Some ds
  | _ -> None

let guard f =
  match f () with
  | v -> Ok v
  | exception Error d -> Result.Error d
  | exception Errors (d :: _) -> Result.Error d
  | exception Errors [] ->
    Result.Error (make Manager Loc.dummy "empty diagnostic bundle")

let guard_all f =
  match f () with
  | v -> Ok v
  | exception Error d -> Result.Error [ d ]
  | exception Errors ds -> Result.Error ds
