(** Capped, jittered exponential backoff.

    One policy shared by every retry loop in the tree — the scheduler's
    node-callback retries, the worker pool's crash-restart delays, and
    the remote fabric's redials.  All three need the same shape: delays
    that grow exponentially with the attempt number, saturate at a cap,
    and carry enough jitter that independent agents retrying the same
    flaky resource do not wake in lock-step and collide again.

    A value of this type owns its RNG, so callers with a deterministic
    seed (tests, chaos harnesses) get a reproducible delay sequence
    while production callers default to self-initialised randomness.
    The module computes delays; sleeping is the caller's business. *)

type t

(** [create ?seed ~base_s ~cap_s ()] — delays start at [base_s] seconds
    and saturate at [cap_s].  Without [seed] the jitter source is
    self-initialised. *)
val create : ?seed:int -> base_s:float -> cap_s:float -> unit -> t

(** [delay t ~attempt] is the suggested sleep before retry number
    [attempt] (0-based): [min cap_s (base_s * 2^min(attempt,16))]
    scaled by a uniform jitter factor in [0.5, 1.5).  A non-positive
    [base_s] yields [0.] — backoff disabled. *)
val delay : t -> attempt:int -> float
