type t = { base_s : float; cap_s : float; rng : Random.State.t }

let create ?seed ~base_s ~cap_s () =
  let rng =
    match seed with
    | Some s -> Random.State.make [| s; 0xB0FF |]
    | None -> Random.State.make_self_init ()
  in
  { base_s; cap_s; rng }

(* the exponent is clamped so the power-of-two never overflows long
   before the cap would have flattened it anyway *)
let delay t ~attempt =
  if t.base_s <= 0. then 0.
  else begin
    let base = t.base_s *. float_of_int (1 lsl min (max 0 attempt) 16) in
    let jitter = 0.5 +. Random.State.float t.rng 1.0 in
    Float.min t.cap_s base *. jitter
  end
