type t = { id : int; name : string }

(* The intern table is shared by every domain (symbols must have one
   identity process-wide), so lookups and insertions are serialized.
   The critical section is a hash lookup plus, rarely, an insert. *)
let lock = Mutex.create ()
let table : (string, t) Hashtbl.t = Hashtbl.create 1024
let next = ref 0

let intern name =
  Mutex.protect lock @@ fun () ->
  match Hashtbl.find_opt table name with
  | Some sym -> sym
  | None ->
    let sym = { id = !next; name } in
    incr next;
    Hashtbl.add table name sym;
    sym

let name sym = sym.name
let id sym = sym.id
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash sym = sym.id
let pp ppf sym = Format.pp_print_string ppf sym.name

(* The fresh counter is domain-local: a compilation running on a worker
   domain numbers its generated binders independently of every other
   domain, so two concurrent compiles cannot perturb each other's
   sequences.  Fresh names only need to be distinct *within* one
   compiled term (binders never cross unit boundaries); cross-domain
   reuse of a name resolves to the same interned symbol and is
   harmless. *)
let fresh_key = Domain.DLS.new_key (fun () -> ref 0)

let fresh base =
  let counter = Domain.DLS.get fresh_key in
  incr counter;
  (* '%' cannot appear in a source identifier, so this never collides. *)
  intern (Printf.sprintf "%s%%%d" base !counter)

let with_fresh_scope f =
  let counter = Domain.DLS.get fresh_key in
  let saved = !counter in
  counter := 0;
  Fun.protect ~finally:(fun () -> counter := saved) f

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
