(** Content-addressed compiled-unit cache.

    The paper's pids make a compiled unit a pure function of
    [(source, import interface pids, compiler version)] — so that
    triple, hashed, is a sound address for the resulting bin bytes.
    Looking a unit up by content generalizes the paper's cutoff across
    {e builds, branches and checkouts}: any edit that is later reverted,
    any sibling checkout compiling the same sources against the same
    interfaces, hits instead of recompiling.

    The store lives on a {!Vfs.fs} (in-memory for tests, the real file
    system for the CLI) under a directory:

    {v
      <dir>/index            snapshot: one line per entry (key size last-used)
      <dir>/journal          records appended since the snapshot:
                               + key size last-used   (stored)
                               - key                  (dropped)
                               @ key last-used        (recency touch)
      <dir>/objects/<key>    the bin bytes
    v}

    Every persistent mutation is crash-safe: object bytes and both
    metadata files are only written through {!Vfs.commit}
    (write-temp/rename), and an object is committed {e before} the
    journal learns its key — so a crash anywhere leaves either a
    consistent cache or an orphaned object that {!gc} reclaims, never
    an index entry pointing at torn bytes.

    Eviction is LRU by a logical clock persisted in the index: when the
    byte total exceeds the budget, least-recently-used entries are
    dropped.  A corrupt index, journal or object is never an error —
    damaged state degrades to misses (the consumer must still validate
    the bytes it gets back, e.g. by un-pickling them, and report
    {!invalidate} on failure). *)

type t

(** Cumulative totals and current occupancy. *)
type stats = {
  cs_entries : int;
  cs_bytes : int;  (** object bytes currently stored *)
  cs_budget : int;
  cs_hits : int;  (** process-lifetime counters, all instances *)
  cs_misses : int;
  cs_evictions : int;
  cs_stores : int;
  cs_invalidated : int;
      (** entries dropped by {!invalidate} — corrupt or mismatched
          cache hits degraded to misses *)
}

(** Default directory ([".irm-cache"]) and budget (64 MiB). *)
val default_dir : string

val default_budget : int

(** [create ?dir ?budget_bytes fs] — open (or lazily initialize) a
    cache rooted at [dir] on [fs]. *)
val create : ?dir:string -> ?budget_bytes:int -> Vfs.fs -> t

(** [key ~version ~name ~source ~import_pids] — the content address of
    one compilation: compiler version, unit name, full source text and
    the {e sorted} import interface pids.  Stable across builds and
    processes. *)
val key :
  version:string ->
  name:string ->
  source:string ->
  import_pids:Digestkit.Pid.t list ->
  string

(** [find t key] — the stored bytes, bumping the entry's recency;
    [None] counts a miss, [Some] a hit. *)
val find : t -> string -> string option

(** [store t key bytes] — insert (or refresh) an entry, then evict
    least-recently-used entries until the budget holds.  An entry
    larger than the whole budget is not stored. *)
val store : t -> string -> string -> unit

(** [invalidate t key] — drop an entry whose bytes failed validation
    downstream (corrupt object).  Not counted as an eviction. *)
val invalidate : t -> string -> unit

(** A cache viewed as its three operations.  The driver builds against
    this record rather than {!t}, so a local store, a remote
    read-through composite (Remote.Cache_client), or a test double all
    plug in uniformly. *)
type ops = {
  o_find : string -> string option;
  o_store : string -> string -> unit;
  o_invalidate : string -> unit;
}

(** [ops t] — the obvious projection of a local cache. *)
val ops : t -> ops

(** What one {!gc} pass did. *)
type gc_report = {
  gc_evicted : int;  (** LRU evictions forced by the budget *)
  gc_orphans : int;
      (** orphaned objects and stale commit-staging files removed *)
  gc_reclaimed_bytes : int;  (** bytes freed by removing orphans *)
}

(** [gc t] — re-enforce the budget, compact the journal into the index
    snapshot, and reclaim orphans: objects the index does not know
    (a store that crashed between the object commit and the index
    update) and staging files left by interrupted commits. *)
val gc : t -> gc_report

(** [clear t] — drop every entry. *)
val clear : t -> unit

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
val pp_gc_report : Format.formatter -> gc_report -> unit
