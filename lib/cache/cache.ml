module Pid = Digestkit.Pid
module Md5 = Digestkit.Md5

let default_dir = ".irm-cache"
let default_budget = 64 * 1024 * 1024

(* compact the journal back into the index snapshot past this many
   appended records *)
let journal_limit = 512

let m_hits = Obs.Metrics.counter "cache.hits"
let m_misses = Obs.Metrics.counter "cache.misses"
let m_evictions = Obs.Metrics.counter "cache.evictions"
let m_stores = Obs.Metrics.counter "cache.stores"
let m_orphans = Obs.Metrics.counter "cache.orphans_reclaimed"
let m_invalidated = Obs.Metrics.counter "cache.invalidated"
let g_bytes = Obs.Metrics.gauge "cache.bytes"
let g_entries = Obs.Metrics.gauge "cache.entries"

type entry = { mutable e_size : int; mutable e_used : int }

type t = {
  fs : Vfs.fs;
  dir : string;
  budget : int;
  entries : (string, entry) Hashtbl.t;
  mutable clock : int;  (** logical LRU clock, persisted in the index *)
  mutable bytes : int;
  mutable journal : string;  (** records appended since the last snapshot *)
  mutable journal_records : int;
}

type stats = {
  cs_entries : int;
  cs_bytes : int;
  cs_budget : int;
  cs_hits : int;
  cs_misses : int;
  cs_evictions : int;
  cs_stores : int;
  cs_invalidated : int;
}

type gc_report = {
  gc_evicted : int;
  gc_orphans : int;
  gc_reclaimed_bytes : int;
}

let index_path t = Filename.concat t.dir "index"
let journal_path t = Filename.concat t.dir "journal"
let objects_dir t = Filename.concat t.dir "objects"
let object_path t key = Filename.concat (objects_dir t) key

(* keys are hex digests, but never trust the index: a key that could
   escape the objects directory is ignored *)
let key_ok key =
  key <> ""
  && String.for_all
       (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
       key

(* ------------------------------------------------------------------ *)
(* Persistence: snapshot index + journal                               *)
(*                                                                     *)
(* The index is a compacted snapshot ([key size used] lines); the      *)
(* journal holds the records appended since ([+ key size used],        *)
(* [- key], [@ key used]).  Both are only ever written through the     *)
(* atomic-commit protocol, and replay is idempotent, so a crash        *)
(* anywhere leaves a state that loads as some prefix of the true       *)
(* history — at worst an entry degrades to a miss or an object is      *)
(* orphaned for [gc] to reclaim.  Anything that does not parse is      *)
(* dropped silently: a damaged cache is an empty cache, never an       *)
(* error.                                                              *)
(* ------------------------------------------------------------------ *)

let apply_add t key size used =
  (match Hashtbl.find_opt t.entries key with
  | Some old -> t.bytes <- t.bytes - old.e_size
  | None -> ());
  Hashtbl.replace t.entries key { e_size = size; e_used = used };
  t.bytes <- t.bytes + size;
  t.clock <- max t.clock used

let apply_del t key =
  match Hashtbl.find_opt t.entries key with
  | Some entry ->
    Hashtbl.remove t.entries key;
    t.bytes <- t.bytes - entry.e_size
  | None -> ()

let apply_touch t key used =
  match Hashtbl.find_opt t.entries key with
  | Some entry ->
    entry.e_used <- used;
    t.clock <- max t.clock used
  | None -> ()

let load_index t =
  match t.fs.Vfs.fs_read (index_path t) with
  | None -> ()
  | Some content ->
    String.split_on_char '\n' content
    |> List.iter (fun line ->
           match String.split_on_char ' ' (String.trim line) with
           | [ key; size; used ] when key_ok key -> (
             match (int_of_string_opt size, int_of_string_opt used) with
             | Some size, Some used when size >= 0 -> apply_add t key size used
             | _ -> ())
           | _ -> ())

let load_journal t =
  match t.fs.Vfs.fs_read (journal_path t) with
  | None -> ()
  | Some content ->
    let records = String.split_on_char '\n' content in
    List.iter
      (fun line ->
        match String.split_on_char ' ' (String.trim line) with
        | [ "+"; key; size; used ] when key_ok key -> (
          match (int_of_string_opt size, int_of_string_opt used) with
          | Some size, Some used when size >= 0 -> apply_add t key size used
          | _ -> ())
        | [ "-"; key ] when key_ok key -> apply_del t key
        | [ "@"; key; used ] when key_ok key -> (
          match int_of_string_opt used with
          | Some used -> apply_touch t key used
          | None -> ())
        | _ -> ())
      records;
    t.journal <- content;
    t.journal_records <- List.length records

let snapshot_content t =
  let buf = Buffer.create 256 in
  Hashtbl.iter
    (fun key entry ->
      Buffer.add_string buf
        (Printf.sprintf "%s %d %d\n" key entry.e_size entry.e_used))
    t.entries;
  Buffer.contents buf

(* write the snapshot, then retire the journal.  A crash in between is
   safe: replaying the old journal over the new snapshot is idempotent *)
let compact t =
  Vfs.commit t.fs (index_path t) (snapshot_content t);
  t.fs.Vfs.fs_remove (journal_path t);
  t.journal <- "";
  t.journal_records <- 0

let append_journal t record =
  let next = t.journal ^ record ^ "\n" in
  Vfs.commit t.fs (journal_path t) next;
  t.journal <- next;
  t.journal_records <- t.journal_records + 1;
  if t.journal_records > journal_limit then compact t

let publish t =
  Obs.Metrics.set g_bytes t.bytes;
  Obs.Metrics.set g_entries (Hashtbl.length t.entries)

let create ?(dir = default_dir) ?(budget_bytes = default_budget) fs =
  let t =
    {
      fs;
      dir;
      budget = max 0 budget_bytes;
      entries = Hashtbl.create 64;
      clock = 0;
      bytes = 0;
      journal = "";
      journal_records = 0;
    }
  in
  load_index t;
  load_journal t;
  publish t;
  t

let key ~version ~name ~source ~import_pids =
  let ctx = Md5.init () in
  Md5.feed_string ctx "smlsep-cache/1\n";
  Md5.feed_string ctx version;
  Md5.feed_string ctx "\x00";
  Md5.feed_string ctx name;
  Md5.feed_string ctx "\x00";
  Md5.feed_string ctx source;
  Md5.feed_string ctx "\x00";
  List.iter
    (fun pid -> Md5.feed_string ctx (Pid.to_bytes pid))
    (List.sort_uniq Pid.compare import_pids);
  Md5.hex (Md5.finish ctx)

(* Drop an entry: the index forgets it first (journal record), then the
   object goes.  If the removal fails or the process dies in between,
   the object is merely orphaned — [gc] reclaims it later. *)
let drop t key =
  match Hashtbl.find_opt t.entries key with
  | None -> ()
  | Some _ ->
    append_journal t (Printf.sprintf "- %s" key);
    apply_del t key;
    (try t.fs.Vfs.fs_remove (object_path t key) with
    | Vfs.Fault _ | Sys_error _ -> ())

(* evict least-recently-used entries until the budget holds *)
let enforce_budget t =
  let evicted = ref 0 in
  while t.bytes > t.budget && Hashtbl.length t.entries > 0 do
    let victim =
      Hashtbl.fold
        (fun key entry acc ->
          match acc with
          | Some (_, best) when best.e_used <= entry.e_used -> acc
          | Some _ | None -> Some (key, entry))
        t.entries None
    in
    match victim with
    | Some (key, _) ->
      drop t key;
      incr evicted;
      Obs.Metrics.incr m_evictions
    | None -> ()
  done;
  !evicted

let touch t key entry =
  t.clock <- t.clock + 1;
  entry.e_used <- t.clock;
  append_journal t (Printf.sprintf "@ %s %d" key t.clock)

let find t key =
  let result =
    match Hashtbl.find_opt t.entries key with
    | None -> None
    | Some entry -> (
      match t.fs.Vfs.fs_read (object_path t key) with
      | Some bytes when String.length bytes = entry.e_size ->
        touch t key entry;
        Some bytes
      | Some _ | None ->
        (* object missing or truncated behind our back (a crashed
           store, a concurrent eviction): degrade to a miss *)
        drop t key;
        None)
  in
  (match result with
  | Some _ -> Obs.Metrics.incr m_hits
  | None -> Obs.Metrics.incr m_misses);
  publish t;
  result

(* Store: object bytes are committed before the index learns the key.
   A crash between the two leaves an orphan object — invisible to
   lookups, reclaimed by [gc] — never an index entry pointing at
   missing or torn bytes. *)
let store t key bytes =
  let size = String.length bytes in
  if size <= t.budget then begin
    drop t key;
    Vfs.commit t.fs (object_path t key) bytes;
    t.clock <- t.clock + 1;
    append_journal t (Printf.sprintf "+ %s %d %d" key size t.clock);
    apply_add t key size t.clock;
    Obs.Metrics.incr m_stores;
    ignore (enforce_budget t);
    publish t
  end

let invalidate t key =
  if Hashtbl.mem t.entries key then Obs.Metrics.incr m_invalidated;
  drop t key;
  publish t

type ops = {
  o_find : string -> string option;
  o_store : string -> string -> unit;
  o_invalidate : string -> unit;
}

let ops t =
  { o_find = find t; o_store = store t; o_invalidate = invalidate t }

let gc t =
  let evicted = enforce_budget t in
  compact t;
  (* reclaim orphans: objects the index does not know (a store that
     crashed between object commit and index update) and staging files
     left by interrupted commits *)
  let objects_prefix = objects_dir t ^ "/" in
  let dir_prefix = t.dir ^ "/" in
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.equal (String.sub s 0 (String.length prefix)) prefix
  in
  let orphans = ref 0 in
  let reclaimed = ref 0 in
  List.iter
    (fun path ->
      let orphan_object =
        starts_with objects_prefix path
        && (not (Vfs.is_commit_temp path))
        && not
             (Hashtbl.mem t.entries
                (String.sub path (String.length objects_prefix)
                   (String.length path - String.length objects_prefix)))
      in
      let stale_temp = starts_with dir_prefix path && Vfs.is_commit_temp path in
      if orphan_object || stale_temp then begin
        (match t.fs.Vfs.fs_read path with
        | Some bytes -> reclaimed := !reclaimed + String.length bytes
        | None -> ());
        incr orphans;
        Obs.Metrics.incr m_orphans;
        t.fs.Vfs.fs_remove path
      end)
    (t.fs.Vfs.fs_list ());
  publish t;
  { gc_evicted = evicted; gc_orphans = !orphans; gc_reclaimed_bytes = !reclaimed }

let clear t =
  let keys = Hashtbl.fold (fun key _ acc -> key :: acc) t.entries [] in
  List.iter (drop t) keys;
  compact t;
  publish t

let stats t =
  {
    cs_entries = Hashtbl.length t.entries;
    cs_bytes = t.bytes;
    cs_budget = t.budget;
    cs_hits = Obs.Metrics.value m_hits;
    cs_misses = Obs.Metrics.value m_misses;
    cs_evictions = Obs.Metrics.value m_evictions;
    cs_stores = Obs.Metrics.value m_stores;
    cs_invalidated = Obs.Metrics.value m_invalidated;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "entries   %d@.bytes     %d / %d budget@.hits      %d@.misses    \
     %d@.evictions %d@.stores    %d@.invalidated %d@."
    s.cs_entries s.cs_bytes s.cs_budget s.cs_hits s.cs_misses s.cs_evictions
    s.cs_stores s.cs_invalidated

let pp_gc_report ppf r =
  Format.fprintf ppf "evicted   %d@.orphans   %d@.reclaimed %d bytes@."
    r.gc_evicted r.gc_orphans r.gc_reclaimed_bytes
