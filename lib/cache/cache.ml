module Pid = Digestkit.Pid
module Md5 = Digestkit.Md5

let default_dir = ".irm-cache"
let default_budget = 64 * 1024 * 1024

let m_hits = Obs.Metrics.counter "cache.hits"
let m_misses = Obs.Metrics.counter "cache.misses"
let m_evictions = Obs.Metrics.counter "cache.evictions"
let m_stores = Obs.Metrics.counter "cache.stores"
let g_bytes = Obs.Metrics.gauge "cache.bytes"
let g_entries = Obs.Metrics.gauge "cache.entries"

type entry = { mutable e_size : int; mutable e_used : int }

type t = {
  fs : Vfs.fs;
  dir : string;
  budget : int;
  entries : (string, entry) Hashtbl.t;
  mutable clock : int;  (** logical LRU clock, persisted in the index *)
  mutable bytes : int;
}

type stats = {
  cs_entries : int;
  cs_bytes : int;
  cs_budget : int;
  cs_hits : int;
  cs_misses : int;
  cs_evictions : int;
  cs_stores : int;
}

let index_path t = Filename.concat t.dir "index"
let object_path t key = Filename.concat (Filename.concat t.dir "objects") key

(* keys are hex digests, but never trust the index: a key that could
   escape the objects directory is ignored *)
let key_ok key =
  key <> ""
  && String.for_all
       (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
       key

(* The index is plain lines of [key size last-used]; anything that does
   not parse is dropped silently — a damaged cache is an empty cache,
   never an error. *)
let load_index t =
  match t.fs.Vfs.fs_read (index_path t) with
  | None -> ()
  | Some content ->
    String.split_on_char '\n' content
    |> List.iter (fun line ->
           match String.split_on_char ' ' (String.trim line) with
           | [ key; size; used ] when key_ok key -> (
             match (int_of_string_opt size, int_of_string_opt used) with
             | Some size, Some used when size >= 0 ->
               Hashtbl.replace t.entries key { e_size = size; e_used = used };
               t.bytes <- t.bytes + size;
               t.clock <- max t.clock used
             | _ -> ())
           | _ -> ())

let save_index t =
  let buf = Buffer.create 256 in
  Hashtbl.iter
    (fun key entry ->
      Buffer.add_string buf
        (Printf.sprintf "%s %d %d\n" key entry.e_size entry.e_used))
    t.entries;
  t.fs.Vfs.fs_write (index_path t) (Buffer.contents buf)

let publish t =
  Obs.Metrics.set g_bytes t.bytes;
  Obs.Metrics.set g_entries (Hashtbl.length t.entries)

let create ?(dir = default_dir) ?(budget_bytes = default_budget) fs =
  let t =
    {
      fs;
      dir;
      budget = max 0 budget_bytes;
      entries = Hashtbl.create 64;
      clock = 0;
      bytes = 0;
    }
  in
  load_index t;
  publish t;
  t

let key ~version ~name ~source ~import_pids =
  let ctx = Md5.init () in
  Md5.feed_string ctx "smlsep-cache/1\n";
  Md5.feed_string ctx version;
  Md5.feed_string ctx "\x00";
  Md5.feed_string ctx name;
  Md5.feed_string ctx "\x00";
  Md5.feed_string ctx source;
  Md5.feed_string ctx "\x00";
  List.iter
    (fun pid -> Md5.feed_string ctx (Pid.to_bytes pid))
    (List.sort_uniq Pid.compare import_pids);
  Md5.hex (Md5.finish ctx)

let drop t key =
  match Hashtbl.find_opt t.entries key with
  | None -> ()
  | Some entry ->
    Hashtbl.remove t.entries key;
    t.bytes <- t.bytes - entry.e_size;
    t.fs.Vfs.fs_remove (object_path t key)

(* evict least-recently-used entries until the budget holds *)
let enforce_budget t =
  while t.bytes > t.budget && Hashtbl.length t.entries > 0 do
    let victim =
      Hashtbl.fold
        (fun key entry acc ->
          match acc with
          | Some (_, best) when best.e_used <= entry.e_used -> acc
          | Some _ | None -> Some (key, entry))
        t.entries None
    in
    match victim with
    | Some (key, _) ->
      drop t key;
      Obs.Metrics.incr m_evictions
    | None -> ()
  done

let touch t entry =
  t.clock <- t.clock + 1;
  entry.e_used <- t.clock

let find t key =
  let result =
    match Hashtbl.find_opt t.entries key with
    | None -> None
    | Some entry -> (
      match t.fs.Vfs.fs_read (object_path t key) with
      | Some bytes when String.length bytes = entry.e_size ->
        touch t entry;
        save_index t;
        Some bytes
      | Some _ | None ->
        (* object missing or truncated behind our back: degrade to miss *)
        drop t key;
        save_index t;
        None)
  in
  (match result with
  | Some _ -> Obs.Metrics.incr m_hits
  | None -> Obs.Metrics.incr m_misses);
  publish t;
  result

let store t key bytes =
  let size = String.length bytes in
  if size <= t.budget then begin
    drop t key;
    t.fs.Vfs.fs_write (object_path t key) bytes;
    let entry = { e_size = size; e_used = 0 } in
    touch t entry;
    Hashtbl.replace t.entries key entry;
    t.bytes <- t.bytes + size;
    Obs.Metrics.incr m_stores;
    enforce_budget t;
    save_index t;
    publish t
  end

let invalidate t key =
  drop t key;
  save_index t;
  publish t

let gc t =
  enforce_budget t;
  save_index t;
  publish t

let clear t =
  let keys = Hashtbl.fold (fun key _ acc -> key :: acc) t.entries [] in
  List.iter (drop t) keys;
  save_index t;
  publish t

let stats t =
  {
    cs_entries = Hashtbl.length t.entries;
    cs_bytes = t.bytes;
    cs_budget = t.budget;
    cs_hits = Obs.Metrics.value m_hits;
    cs_misses = Obs.Metrics.value m_misses;
    cs_evictions = Obs.Metrics.value m_evictions;
    cs_stores = Obs.Metrics.value m_stores;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "entries   %d@.bytes     %d / %d budget@.hits      %d@.misses    \
     %d@.evictions %d@.stores    %d@."
    s.cs_entries s.cs_bytes s.cs_budget s.cs_hits s.cs_misses s.cs_evictions
    s.cs_stores
