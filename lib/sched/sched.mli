(** DAG-aware wavefront scheduler over an OCaml 5 domain pool.

    The paper makes compiling a unit a pure function of
    [(source, import interface pids)] — which is exactly the licence a
    build system needs to run independent units concurrently.  This
    module supplies the generic machinery: it walks a dependency DAG in
    wavefront order, dispatching every node whose dependencies have all
    completed, and guarantees a {e deterministic} outcome regardless of
    completion order:

    - node work is split into three phases — [prepare] and [complete]
      always run on the calling domain (they may touch shared, unlocked
      state such as the manager's session), while [execute] may run on
      a worker domain and must only touch the job value it was given;
    - results are reported back as they arrive, but the final outcome
      list is in the caller's node order;
    - failures are deterministic: every node whose dependencies
      succeeded is still attempted, and the error raised is the one
      belonging to the {e earliest failed node in the given order} —
      the same error a serial left-to-right run would have raised.
      Nodes downstream of a failure are skipped.

    The scheduler knows nothing about compilation; [Irm.Driver] plugs
    staleness checks and cache probes into [prepare], isolated compile
    sessions into [execute], and session merging into [complete]. *)

(** How to run a build.  [Serial] executes everything on the calling
    domain (no domains are spawned); [Parallel n] uses [n] worker
    domains ([n <= 1] degrades to [Serial]); [Workers cfg] runs every
    [execute] in a supervised child {e process} from a pool of
    [cfg.w_jobs] ({!Worker}) — crash isolation, per-job timeouts, and
    quarantine, at the price of serializing jobs and results through a
    {!codec}.  [Workers] never spawns domains (forking with live
    domains is unsafe); the pool is multiplexed with [select] from the
    calling domain.  [Remote cfg] dispatches the same encoded jobs to a
    fleet of executor daemons over sockets ({!Remote.Fleet}) — per-job
    deadlines, retry, hedged re-dispatch, quarantine, and graceful
    degradation to local execution when every executor is gone; like
    [Workers], it multiplexes from the calling domain and requires the
    [codec]. *)
type backend =
  | Serial
  | Parallel of int
  | Workers of Worker.config
  | Remote of Remote.Fleet.config

val backend_name : backend -> string

(** The machine's recommended worker count
    ({!Domain.recommended_domain_count}). *)
val default_jobs : unit -> int

(** [jobs backend] — the worker count a backend stands for ([Serial]
    is 1). *)
val jobs : backend -> int

(** What [prepare] decided for a node: either hand a job to a worker,
    or finish the node immediately with a result (already up to date,
    cache hit, …). *)
type ('job, 'result) action = Run of 'job | Done of 'result

(** How the [Workers] backend moves jobs across the process boundary:
    [c_encode_job]/[c_decode_result] frame the payloads, and [c_proto]
    is the child-side handler plus exception transport handed to
    {!Worker.create}.  The other backends ignore it. *)
type ('job, 'result) codec = {
  c_proto : Worker.proto;
  c_encode_job : 'job -> string;
  c_decode_result : string -> 'result;
}

(** The pipelined static/codegen phase split.

    A compile's {e static} result (elaborated interface + export pid)
    is all a dependent needs to start; the codeUnit is only consumed at
    link time.  With a split installed, [sp_execute] replaces [execute]
    and may call [notify payload] once, mid-job, as soon as the static
    part is done; the scheduler routes the payload back to the calling
    domain, runs [sp_on_static node payload] there (register the static
    view wherever [prepare] will look for it), and from that moment
    treats the node's static gate as open — dependents dispatch and
    overlap their compiles with the dependency's code generation.

    Determinism is preserved: [complete] still only runs once every
    dependency {e finished}, and if a dependency fails after releasing
    its static view, any speculatively-computed dependent result is
    discarded and the dependent finishes [Skipped] — exactly what a
    serial run, which would never have attempted it, reports.  Under
    the [Workers] backend [sp_execute] is not used (the child-side
    [p_handler] performs the job and sends the notification in-band);
    [sp_on_static] is used by every backend. *)
type ('job, 'result) split = {
  sp_execute : notify:(string -> unit) -> 'job -> 'result;
  sp_on_static : string -> string -> unit;
}

(** A node's fate in the outcome list. *)
type 'result outcome =
  | Completed of 'result
  | Failed of exn  (** [prepare], [execute] or [complete] raised *)
  | Skipped of string  (** a dependency failed; names the culprit *)

(** Slot accounting for one run: how long each execution slot (domain,
    worker process, or the calling domain for [Serial]) spent holding a
    job versus the run's wall time.  [busy / (jobs * wall)] is the
    scheduler-efficiency figure the profile report prints. *)
type slots = {
  sl_jobs : int;
  sl_busy_s : float array;  (** one entry per slot *)
  sl_wall_s : float;
}

(** The accounting of the most recent {!run} on this domain, if any. *)
val last_slots : unit -> slots option

(** [run ?retries ?backoff_s ?retryable backend ~order ~deps ~prepare
    ~execute ~complete] — schedule every node of [order] (a topological
    order: dependencies before dependents; [deps] must only name nodes
    in [order]).

    When a callback raises an exception for which [retryable] returns
    true (default: never), it is re-invoked up to [retries] more times
    (default 0), sleeping [min backoff_cap_s (backoff_s * 2^attempt)]
    seconds scaled by a uniform jitter in [0.5, 1.5) in between —
    bounded recovery from transient faults without poisoning the node's
    dependent cone, and without several domains retrying a shared flaky
    resource in lock-step.

    The [Workers] backend additionally requires [codec]
    ([Invalid_argument] otherwise); [execute] then runs {e in the child
    process} via [codec.c_proto.p_handler], and supervision failures
    (crash quarantine, timeout, {!Worker.Pool_down}) surface exactly
    like [execute] exceptions — [Failed] outcomes poisoning the
    dependent cone, or [Pool_down] aborting the build.

    For each node, once its dependencies completed: [prepare node] runs
    on the calling domain; a [Run job] is handed to a worker which runs
    [execute job]; the result (from the worker or directly from
    [Done]) is passed to [complete node result] on the calling domain.
    Completion order across independent nodes is unspecified — both
    callbacks must not depend on it.

    Returns outcomes in [order].  If any node failed, raises that
    node's exception — choosing the earliest failed node in [order],
    exactly as a serial run would.  With [keep_going] (default false)
    no exception is raised: failures stay in the outcome list as
    [Failed], their dependent cones as [Skipped], and every node not
    downstream of a failure still runs.

    Exceptions for which [fatal] returns true (default: none) are never
    demoted to a [Failed] outcome: they abort the run immediately and
    re-raise, {e even under} [keep_going].  This is how a signal-driven
    interrupt cuts through a keep-going build instead of being recorded
    as one more unit failure.  Worker pools and domain pools are still
    shut down on the way out.

    [priority] (default: constant [0.]) ranks the ready queue: among
    dispatchable nodes the one with the {e highest} priority starts
    first — feed it critical-path lengths to shrink the makespan.
    Equal priorities dispatch in caller order, so the default is
    exactly the plain wavefront and no priority map can ever perturb
    outcomes: priorities steer only {e when} work starts, never what it
    computes.  Dispatch is slot-paced (at most [jobs backend] jobs in
    flight), so a node becoming ready late still outranks queued
    lower-priority work.

    [split] (default: none) enables the pipelined static/codegen phase
    split — see {!type:split}. *)
val run :
  ?retries:int ->
  ?backoff_s:float ->
  ?backoff_cap_s:float ->
  ?retryable:(exn -> bool) ->
  ?keep_going:bool ->
  ?fatal:(exn -> bool) ->
  ?codec:('job, 'result) codec ->
  ?priority:(string -> float) ->
  ?split:('job, 'result) split ->
  backend ->
  order:string list ->
  deps:(string -> string list) ->
  prepare:(string -> ('job, 'result) action) ->
  execute:('job -> 'result) ->
  complete:(string -> 'result -> 'result) ->
  (string * 'result outcome) list
