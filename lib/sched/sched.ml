type backend =
  | Serial
  | Parallel of int
  | Workers of Worker.config
  | Remote of Remote.Fleet.config

let backend_name = function
  | Serial -> "serial"
  | Parallel n -> Printf.sprintf "parallel-%d" n
  | Workers cfg -> Printf.sprintf "workers-%d" (max 1 cfg.Worker.w_jobs)
  | Remote cfg ->
    Printf.sprintf "remote-%d" (List.length cfg.Remote.Fleet.r_execs)

let default_jobs () = Domain.recommended_domain_count ()

let jobs = function
  | Serial -> 1
  | Parallel n -> max 1 n
  | Workers cfg -> max 1 cfg.Worker.w_jobs
  | Remote cfg ->
    (* a degraded fleet still runs one local compile at a time *)
    max 1
      (List.length cfg.Remote.Fleet.r_execs * max 1 cfg.Remote.Fleet.r_slots)

type ('job, 'result) action = Run of 'job | Done of 'result

type ('job, 'result) codec = {
  c_proto : Worker.proto;
  c_encode_job : 'job -> string;
  c_decode_result : string -> 'result;
}

(* the pipelined static/codegen phase split: [sp_execute] replaces
   [execute] and may call [notify] once, mid-job, with the unit's
   pickled static view; [sp_on_static] consumes that payload on the
   calling domain, after which the node's dependents become
   dispatchable without waiting for the job's result *)
type ('job, 'result) split = {
  sp_execute : notify:(string -> unit) -> 'job -> 'result;
  sp_on_static : string -> string -> unit;
}

type 'result outcome =
  | Completed of 'result
  | Failed of exn
  | Skipped of string

type slots = { sl_jobs : int; sl_busy_s : float array; sl_wall_s : float }

(* the most recent run's slot accounting; builds are driven from the
   main domain, so a plain ref suffices *)
let last_slots_ref : slots option ref = ref None
let last_slots () = !last_slots_ref

let m_dispatched = Obs.Metrics.counter "sched.dispatched"
let m_inline = Obs.Metrics.counter "sched.inline"
let m_retries = Obs.Metrics.counter "sched.retries"
let m_static_releases = Obs.Metrics.counter "sched.static_releases"
let g_jobs = Obs.Metrics.gauge "sched.jobs"

(* the ready queue: highest priority first, and — the determinism
   anchor — caller order among equals.  Whatever the priority map says,
   ties can never perturb dispatch order away from the serial order. *)
module Ready = Set.Make (struct
  type t = float * int * string

  let compare (pa, sa, na) (pb, sb, nb) =
    match Float.compare pb pa with
    | 0 -> ( match Int.compare sa sb with 0 -> String.compare na nb | c -> c)
    | c -> c
end)

(* Per-node scheduling state, driven entirely by the calling domain.
   Two gates: [ns_staticw] counts dependencies whose *static* view is
   still unreleased and gates prepare/dispatch; [ns_waiting] counts
   unfinished dependencies and gates complete/settle.  Without the
   phase split a dependency only releases its static view when it
   finishes, so the gates coincide and this degenerates to the plain
   wavefront. *)
type 'result node_state = {
  ns_seq : int;  (** caller-order index — the deterministic tie-break *)
  ns_priority : float;
  mutable ns_staticw : int;  (** deps whose static view is unreleased *)
  mutable ns_waiting : int;  (** unfinished dependencies *)
  mutable ns_poisoned : string option;
      (** some upstream failure reached this node (the name is the first
          poison to arrive — a dispatch guard only; the reported culprit
          is recomputed deterministically at skip time) *)
  mutable ns_started : bool;  (** prepared (and possibly dispatched) *)
  mutable ns_static_done : bool;  (** own static view released *)
  mutable ns_held : ('result, exn) result option;
      (** an execute result that arrived while dependencies were still
          unfinished — settled (or discarded, if a dependency then
          fails) when the final gate opens *)
  mutable ns_outcome : 'result outcome option;
}

let run ?(retries = 0) ?(backoff_s = 0.001) ?(backoff_cap_s = 1.0)
    ?(retryable = fun _ -> false) ?(keep_going = false)
    ?(fatal = fun _ -> false) ?codec ?priority ?split backend ~order ~deps
    ~prepare ~execute ~complete =
  Obs.Trace.span ~cat:"sched"
    ~args:[ ("backend", backend_name backend) ]
    "sched.run"
  @@ fun () ->
  (* bounded retry with exponential backoff around every node callback:
     transient faults (a flaky file system, a racing process) get
     [retries] more chances before poisoning the node's cone.  The sleep
     is capped and jittered — several domains retrying the same flaky
     resource must not wake in lock-step and collide again. *)
  let attempt f x =
    let bo = Support.Backoff.create ~base_s:backoff_s ~cap_s:backoff_cap_s () in
    let rec go k =
      match f x with
      | v -> v
      | exception e when k < retries && retryable e ->
        Obs.Metrics.incr m_retries;
        let d = Support.Backoff.delay bo ~attempt:k in
        if d > 0. then Unix.sleepf d;
        go (k + 1)
    in
    go 0
  in
  let prepare = attempt prepare
  and complete node = attempt (complete node) in
  let exec ~notify job =
    match split with
    | None -> attempt execute job
    | Some sp -> attempt (sp.sp_execute ~notify) job
  in
  let prio = match priority with None -> fun _ -> 0. | Some f -> f in
  let workers = min (jobs backend) (max 1 (List.length order)) in
  Obs.Metrics.set g_jobs workers;
  (* per-slot busy time: how long each execution slot held a job, for
     the profile report's scheduler-efficiency figure.  The Workers
     backend reads it off the pool instead. *)
  let run_t0 = Unix.gettimeofday () in
  let busy = ref (Array.make workers 0.) in
  let bump i d = !busy.(i) <- !busy.(i) +. Float.max 0. d in
  let states : (string, 'r node_state) Hashtbl.t =
    Hashtbl.create (List.length order)
  in
  let dependents : (string, string list) Hashtbl.t =
    Hashtbl.create (List.length order)
  in
  List.iteri
    (fun seq node ->
      let ds = deps node in
      Hashtbl.replace states node
        {
          ns_seq = seq;
          ns_priority = prio node;
          ns_staticw = List.length ds;
          ns_waiting = List.length ds;
          ns_poisoned = None;
          ns_started = false;
          ns_static_done = false;
          ns_held = None;
          ns_outcome = None;
        };
      List.iter
        (fun dep ->
          Hashtbl.replace dependents dep
            (node :: Option.value ~default:[] (Hashtbl.find_opt dependents dep)))
        ds)
    order;
  let dependents_of node =
    Option.value ~default:[] (Hashtbl.find_opt dependents node)
  in
  let remaining = ref (List.length order) in
  let ready = ref Ready.empty in
  let push node st =
    ready := Ready.add (st.ns_priority, st.ns_seq, node) !ready
  in
  (* jobs handed to a slot (domain or worker process) and not yet
     resolved; the pump dispatches from the ready queue only while this
     is below [workers], so late-arriving high-priority nodes are never
     stuck behind a long FIFO of already-queued low-priority ones *)
  let inflight = ref 0 in
  (* worker plumbing — only used by the parallel backend *)
  let lock = Mutex.create () in
  let work_ready = Condition.create () in
  let result_ready = Condition.create () in
  let job_queue = Queue.create () in
  let event_queue = Queue.create () in
  let quit = ref false in
  (* the Workers backend routes jobs to a process pool created at the
     bottom of this function; [start] is mutually recursive with the
     bookkeeping, so it reaches the pool through this knot *)
  let worker_mode =
    match backend with Workers _ | Remote _ -> true | Serial | Parallel _ -> false
  in
  let pool_submit =
    ref (fun _node _job -> invalid_arg "Sched.run: worker pool not started")
  in
  let worker_loop slot =
    let rec loop () =
      Mutex.lock lock;
      while Queue.is_empty job_queue && not !quit do
        Condition.wait work_ready lock
      done;
      if Queue.is_empty job_queue then Mutex.unlock lock
      else begin
        let node, job = Queue.pop job_queue in
        Mutex.unlock lock;
        (* the static notification crosses back to the calling domain as
           an event — [sp_on_static] touches shared state and must not
           run here *)
        let notify payload =
          Mutex.protect lock (fun () ->
              Queue.push (node, `Static payload) event_queue;
              Condition.signal result_ready)
        in
        let t0 = Unix.gettimeofday () in
        let result =
          match exec ~notify job with
          | result -> Ok result
          | exception exn -> Error exn
        in
        bump slot (Unix.gettimeofday () -. t0);
        Mutex.protect lock (fun () ->
            Queue.push (node, `Result result) event_queue;
            Condition.signal result_ready);
        loop ()
      end
    in
    loop ()
  in
  (* ---- main-domain scheduling (shared by all backends) ---- *)
  (* which failed root a skipped node blames.  Evaluated only once every
     dependency has finished, so it is a function of the final outcome
     classes alone — the earliest failed root in caller order — and can
     never depend on completion timing.  (First-poisoner-wins would
     report whichever failure happened to land first, which differs
     between serial and parallel runs.) *)
  let skip_root node =
    let best = ref None in
    List.iter
      (fun dep ->
        let root =
          match (Hashtbl.find states dep).ns_outcome with
          | Some (Failed _) -> Some dep
          | Some (Skipped r) -> Some r
          | Some (Completed _) | None -> None
        in
        match root with
        | Some r -> (
          let seq = (Hashtbl.find states r).ns_seq in
          match !best with
          | Some (bseq, _) when bseq <= seq -> ()
          | Some _ | None -> best := Some (seq, r))
        | None -> ())
      (deps node);
    match !best with
    | Some (_, r) -> r
    | None -> assert false (* only poisoned nodes are skipped *)
  in
  let rec release_static node =
    let state = Hashtbl.find states node in
    if not state.ns_static_done then begin
      state.ns_static_done <- true;
      List.iter
        (fun dependent ->
          let dstate = Hashtbl.find states dependent in
          dstate.ns_staticw <- dstate.ns_staticw - 1;
          if
            dstate.ns_staticw = 0 && (not dstate.ns_started)
            && dstate.ns_poisoned = None
            && dstate.ns_outcome = None
          then push dependent dstate)
        (dependents_of node)
    end
  and finish node outcome =
    let state = Hashtbl.find states node in
    state.ns_outcome <- Some outcome;
    state.ns_held <- None;
    decr remaining;
    let culprit =
      match outcome with
      | Completed _ -> None
      | Failed _ -> Some node
      | Skipped root -> Some root
    in
    let down = dependents_of node in
    (match culprit with
    | Some root ->
      List.iter
        (fun dependent ->
          let dstate = Hashtbl.find states dependent in
          if dstate.ns_poisoned = None then dstate.ns_poisoned <- Some root)
        down
    | None -> ());
    (* finishing releases the static view, if nothing did so earlier;
       poison is marked first so a failed dependency never pushes its
       dependents into the ready queue *)
    release_static node;
    List.iter
      (fun dependent ->
        let dstate = Hashtbl.find states dependent in
        dstate.ns_waiting <- dstate.ns_waiting - 1;
        if dstate.ns_waiting = 0 && dstate.ns_outcome = None then
          match dstate.ns_poisoned with
          | Some _ ->
            (* a dependency failed after this node was (speculatively)
               dispatched on its static view: any held or still-running
               result is discarded — exactly what a serial run, which
               would never have attempted the node, observes *)
            finish dependent (Skipped (skip_root dependent))
          | None -> (
            match dstate.ns_held with
            | Some (Ok result) ->
              dstate.ns_held <- None;
              settle dependent result
            | Some (Error exn) ->
              dstate.ns_held <- None;
              fail dependent exn
            | None -> ()))
      down
  (* an exception the caller declared fatal (a signal-driven interrupt,
     not a unit failure) aborts the whole run immediately — even under
     [keep_going], which only shields per-unit failures.  The raise
     unwinds through the Fun.protect below, so pools still join. *)
  and fail node exn =
    if fatal exn then raise exn else finish node (Failed exn)
  and settle node result =
    match complete node result with
    | result -> finish node (Completed result)
    | exception exn -> fail node exn
  (* an execute result arrived.  With the split a node may resolve
     before its dependencies finished — hold the result until the final
     gate opens (complete must observe every dependency's completion),
     or discard it if a dependency fails in the meantime. *)
  and arrive node res =
    (match res with Error exn when fatal exn -> raise exn | _ -> ());
    let state = Hashtbl.find states node in
    if state.ns_outcome = None then
      if state.ns_waiting > 0 then state.ns_held <- Some res
      else
        match res with
        | Ok result -> settle node result
        | Error exn -> fail node exn
  and on_static node payload =
    (match split with
    | Some sp -> sp.sp_on_static node payload
    | None -> ());
    Obs.Metrics.incr m_static_releases;
    release_static node
  and start node =
    let state = Hashtbl.find states node in
    state.ns_started <- true;
    match prepare node with
    | exception exn -> fail node exn
    | Done result ->
      Obs.Metrics.incr m_inline;
      arrive node (Ok result)
    | Run job ->
      if worker_mode then begin
        (* even a 1-worker pool goes out of process: isolation, not
           parallelism, is what this backend buys *)
        Obs.Metrics.incr m_dispatched;
        incr inflight;
        !pool_submit node job
      end
      else if workers <= 1 then begin
        let t0 = Unix.gettimeofday () in
        let result =
          match exec ~notify:(fun payload -> on_static node payload) job with
          | result -> Ok result
          | exception exn -> Error exn
        in
        bump 0 (Unix.gettimeofday () -. t0);
        arrive node result
      end
      else begin
        Obs.Metrics.incr m_dispatched;
        incr inflight;
        Mutex.protect lock (fun () ->
            Queue.push (node, job) job_queue;
            Condition.signal work_ready)
      end
  in
  (* the pump: hand the best ready node to a free slot, repeatedly.
     Inline execution (Serial) resolves synchronously, so this loop
     alone drives a whole serial build; the parallel backends re-pump
     after every drained event. *)
  let rec pump () =
    if (not (Ready.is_empty !ready)) && !inflight < workers then begin
      let ((_, _, node) as top) = Ready.min_elt !ready in
      ready := Ready.remove top !ready;
      let state = Hashtbl.find states node in
      if
        state.ns_outcome = None && state.ns_poisoned = None
        && not state.ns_started
      then start node;
      pump ()
    end
  in
  List.iter
    (fun node ->
      let state = Hashtbl.find states node in
      if state.ns_staticw = 0 then push node state)
    order;
  (match backend with
  | (Workers _ | Remote _) as bk ->
    let codec =
      match codec with
      | Some c -> c
      | None ->
        invalid_arg "Sched.run: the Workers and Remote backends need a codec"
    in
    (* the worker pool and the executor fleet share one surface —
       submit / next_event / slot_busy / shutdown over Worker.event —
       so a single loop drives both *)
    let submit, next_ev, slot_busy_of, teardown =
      match bk with
      | Workers cfg ->
        let pool = Worker.create cfg codec.c_proto in
        ( (fun node payload -> Worker.submit pool ~id:node payload),
          (fun () -> Worker.next_event pool),
          (fun () -> Worker.slot_busy pool),
          fun () -> Worker.shutdown pool )
      | Remote cfg ->
        let fleet = Remote.Fleet.create cfg codec.c_proto in
        ( (fun node payload -> Remote.Fleet.submit fleet ~id:node payload),
          (fun () -> Remote.Fleet.next_event fleet),
          (fun () -> Remote.Fleet.slot_busy fleet),
          fun () -> Remote.Fleet.shutdown fleet )
      | Serial | Parallel _ -> assert false
    in
    pool_submit := (fun node job -> submit node (codec.c_encode_job job));
    Fun.protect ~finally:teardown @@ fun () ->
    pump ();
    while !remaining > 0 do
      (match next_ev () with
      | Worker.Done (node, res) -> (
        decr inflight;
        match res with
        | Ok payload -> (
          match codec.c_decode_result payload with
          | result -> arrive node (Ok result)
          | exception exn -> arrive node (Error exn))
        | Error exn -> arrive node (Error exn))
      | Worker.Static (node, payload) -> on_static node payload);
      pump ()
    done;
    busy := slot_busy_of ()
  | Serial | Parallel _ ->
    if workers <= 1 then pump ()
    else begin
      let pool =
        List.init workers (fun i -> Domain.spawn (fun () -> worker_loop i))
      in
      Fun.protect ~finally:(fun () ->
          Mutex.protect lock (fun () ->
              quit := true;
              Condition.broadcast work_ready);
          List.iter Domain.join pool)
      @@ fun () ->
      pump ();
      while !remaining > 0 do
        let batch =
          Mutex.protect lock (fun () ->
              while Queue.is_empty event_queue do
                Condition.wait result_ready lock
              done;
              let batch = ref [] in
              while not (Queue.is_empty event_queue) do
                batch := Queue.pop event_queue :: !batch
              done;
              List.rev !batch)
        in
        List.iter
          (fun (node, event) ->
            match event with
            | `Static payload -> on_static node payload
            | `Result res ->
              decr inflight;
              arrive node res)
          batch;
        pump ()
      done
    end);
  last_slots_ref :=
    Some
      {
        sl_jobs = Array.length !busy;
        sl_busy_s = Array.copy !busy;
        sl_wall_s = Unix.gettimeofday () -. run_t0;
      };
  let outcomes =
    List.map
      (fun node ->
        match (Hashtbl.find states node).ns_outcome with
        | Some outcome -> (node, outcome)
        | None -> assert false (* every node is finished by now *))
      order
  in
  (* deterministic failure: raise for the earliest failed node in
     [order], exactly as a serial left-to-right run would have.  Under
     [keep_going] the caller reads failures out of the outcome list
     instead; every node not downstream of a failure has still run. *)
  if not keep_going then
    (match
       List.find_opt (function _, Failed _ -> true | _ -> false) outcomes
     with
    | Some (_, Failed exn) -> raise exn
    | Some _ | None -> ());
  outcomes
