type backend = Serial | Parallel of int | Workers of Worker.config

let backend_name = function
  | Serial -> "serial"
  | Parallel n -> Printf.sprintf "parallel-%d" n
  | Workers cfg -> Printf.sprintf "workers-%d" (max 1 cfg.Worker.w_jobs)

let default_jobs () = Domain.recommended_domain_count ()

let jobs = function
  | Serial -> 1
  | Parallel n -> max 1 n
  | Workers cfg -> max 1 cfg.Worker.w_jobs

type ('job, 'result) action = Run of 'job | Done of 'result

type ('job, 'result) codec = {
  c_proto : Worker.proto;
  c_encode_job : 'job -> string;
  c_decode_result : string -> 'result;
}

type 'result outcome =
  | Completed of 'result
  | Failed of exn
  | Skipped of string

type slots = { sl_jobs : int; sl_busy_s : float array; sl_wall_s : float }

(* the most recent run's slot accounting; builds are driven from the
   main domain, so a plain ref suffices *)
let last_slots_ref : slots option ref = ref None
let last_slots () = !last_slots_ref

let m_dispatched = Obs.Metrics.counter "sched.dispatched"
let m_inline = Obs.Metrics.counter "sched.inline"
let m_retries = Obs.Metrics.counter "sched.retries"
let g_jobs = Obs.Metrics.gauge "sched.jobs"

(* per-node scheduling state, driven entirely by the calling domain *)
type 'result node_state = {
  mutable ns_waiting : int;  (** unfinished dependencies *)
  mutable ns_poisoned : string option;  (** a failed dependency's name *)
  mutable ns_outcome : 'result outcome option;
}

let run ?(retries = 0) ?(backoff_s = 0.001) ?(backoff_cap_s = 1.0)
    ?(retryable = fun _ -> false) ?(keep_going = false)
    ?(fatal = fun _ -> false) ?codec backend ~order ~deps ~prepare ~execute
    ~complete =
  Obs.Trace.span ~cat:"sched"
    ~args:[ ("backend", backend_name backend) ]
    "sched.run"
  @@ fun () ->
  (* bounded retry with exponential backoff around every node callback:
     transient faults (a flaky file system, a racing process) get
     [retries] more chances before poisoning the node's cone.  The sleep
     is capped and jittered — several domains retrying the same flaky
     resource must not wake in lock-step and collide again. *)
  let attempt f x =
    let rec go k =
      match f x with
      | v -> v
      | exception e when k < retries && retryable e ->
        Obs.Metrics.incr m_retries;
        if backoff_s > 0. then begin
          let base = backoff_s *. float_of_int (1 lsl min k 16) in
          let jitter =
            0.5 +. Random.State.float (Random.State.make_self_init ()) 1.0
          in
          Unix.sleepf (Float.min backoff_cap_s base *. jitter)
        end;
        go (k + 1)
    in
    go 0
  in
  let prepare = attempt prepare
  and execute = attempt execute
  and complete node = attempt (complete node) in
  let workers = min (jobs backend) (max 1 (List.length order)) in
  Obs.Metrics.set g_jobs workers;
  (* per-slot busy time: how long each execution slot held a job, for
     the profile report's scheduler-efficiency figure.  The Workers
     backend reads it off the pool instead. *)
  let run_t0 = Unix.gettimeofday () in
  let busy = ref (Array.make workers 0.) in
  let bump i d = !busy.(i) <- !busy.(i) +. Float.max 0. d in
  let states : (string, 'r node_state) Hashtbl.t =
    Hashtbl.create (List.length order)
  in
  let dependents : (string, string list) Hashtbl.t =
    Hashtbl.create (List.length order)
  in
  List.iter
    (fun node ->
      let ds = deps node in
      Hashtbl.replace states node
        { ns_waiting = List.length ds; ns_poisoned = None; ns_outcome = None };
      List.iter
        (fun dep ->
          Hashtbl.replace dependents dep
            (node :: Option.value ~default:[] (Hashtbl.find_opt dependents dep)))
        ds)
    order;
  let remaining = ref (List.length order) in
  (* worker plumbing — only used by the parallel backend *)
  let lock = Mutex.create () in
  let work_ready = Condition.create () in
  let result_ready = Condition.create () in
  let job_queue = Queue.create () in
  let result_queue = Queue.create () in
  let quit = ref false in
  let dispatch node job =
    Obs.Metrics.incr m_dispatched;
    Mutex.protect lock (fun () ->
        Queue.push (node, job) job_queue;
        Condition.signal work_ready)
  in
  (* the Workers backend routes jobs to a process pool created at the
     bottom of this function; [start] is mutually recursive with the
     bookkeeping, so it reaches the pool through this knot *)
  let worker_mode = match backend with Workers _ -> true | _ -> false in
  let pool_submit =
    ref (fun _node _job -> invalid_arg "Sched.run: worker pool not started")
  in
  let worker_loop slot =
    let rec loop () =
      Mutex.lock lock;
      while Queue.is_empty job_queue && not !quit do
        Condition.wait work_ready lock
      done;
      if Queue.is_empty job_queue then Mutex.unlock lock
      else begin
        let node, job = Queue.pop job_queue in
        Mutex.unlock lock;
        let t0 = Unix.gettimeofday () in
        let result =
          match execute job with
          | result -> Ok result
          | exception exn -> Error exn
        in
        bump slot (Unix.gettimeofday () -. t0);
        Mutex.protect lock (fun () ->
            Queue.push (node, result) result_queue;
            Condition.signal result_ready);
        loop ()
      end
    in
    loop ()
  in
  (* ---- main-domain scheduling (shared by both backends) ---- *)
  let rec finish node outcome =
    let state = Hashtbl.find states node in
    state.ns_outcome <- Some outcome;
    decr remaining;
    let culprit =
      match outcome with
      | Completed _ -> None
      | Failed _ -> Some node
      | Skipped root -> Some root
    in
    List.iter
      (fun dependent ->
        let dstate = Hashtbl.find states dependent in
        (match culprit with
        | Some root when dstate.ns_poisoned = None ->
          dstate.ns_poisoned <- Some root
        | Some _ | None -> ());
        dstate.ns_waiting <- dstate.ns_waiting - 1;
        if dstate.ns_waiting = 0 then
          match dstate.ns_poisoned with
          | Some root -> finish dependent (Skipped root)
          | None -> start dependent)
      (Option.value ~default:[] (Hashtbl.find_opt dependents node))
  (* an exception the caller declared fatal (a signal-driven interrupt,
     not a unit failure) aborts the whole run immediately — even under
     [keep_going], which only shields per-unit failures.  The raise
     unwinds through the Fun.protect below, so pools still join. *)
  and fail node exn =
    if fatal exn then raise exn else finish node (Failed exn)
  and settle node result =
    match complete node result with
    | result -> finish node (Completed result)
    | exception exn -> fail node exn
  and start node =
    match prepare node with
    | exception exn -> fail node exn
    | Done result ->
      Obs.Metrics.incr m_inline;
      settle node result
    | Run job ->
      if worker_mode then begin
        (* even a 1-worker pool goes out of process: isolation, not
           parallelism, is what this backend buys *)
        Obs.Metrics.incr m_dispatched;
        !pool_submit node job
      end
      else if workers <= 1 then begin
        let t0 = Unix.gettimeofday () in
        let result =
          match execute job with
          | result -> Ok result
          | exception exn -> Error exn
        in
        bump 0 (Unix.gettimeofday () -. t0);
        match result with
        | Ok result -> settle node result
        | Error exn -> fail node exn
      end
      else dispatch node job
  in
  let initially_ready =
    List.filter (fun node -> (Hashtbl.find states node).ns_waiting = 0) order
  in
  (match backend with
  | Workers cfg ->
    let codec =
      match codec with
      | Some c -> c
      | None -> invalid_arg "Sched.run: the Workers backend requires a codec"
    in
    let pool = Worker.create cfg codec.c_proto in
    pool_submit :=
      (fun node job -> Worker.submit pool ~id:node (codec.c_encode_job job));
    Fun.protect ~finally:(fun () -> Worker.shutdown pool) @@ fun () ->
    List.iter start initially_ready;
    while !remaining > 0 do
      let node, res = Worker.next pool in
      match res with
      | Ok payload -> (
        match codec.c_decode_result payload with
        | result -> settle node result
        | exception exn -> fail node exn)
      | Error exn -> fail node exn
    done;
    busy := Worker.slot_busy pool
  | Serial | Parallel _ ->
  if workers <= 1 then List.iter start initially_ready
  else begin
    let pool =
      List.init workers (fun i -> Domain.spawn (fun () -> worker_loop i))
    in
    Fun.protect ~finally:(fun () ->
        Mutex.protect lock (fun () ->
            quit := true;
            Condition.broadcast work_ready);
        List.iter Domain.join pool)
    @@ fun () ->
    List.iter start initially_ready;
    while !remaining > 0 do
      let batch =
        Mutex.protect lock (fun () ->
            while Queue.is_empty result_queue do
              Condition.wait result_ready lock
            done;
            let batch = ref [] in
            while not (Queue.is_empty result_queue) do
              batch := Queue.pop result_queue :: !batch
            done;
            List.rev !batch)
      in
      List.iter
        (fun (node, result) ->
          match result with
          | Ok result -> settle node result
          | Error exn -> fail node exn)
        batch
    done
  end);
  last_slots_ref :=
    Some
      {
        sl_jobs = Array.length !busy;
        sl_busy_s = Array.copy !busy;
        sl_wall_s = Unix.gettimeofday () -. run_t0;
      };
  let outcomes =
    List.map
      (fun node ->
        match (Hashtbl.find states node).ns_outcome with
        | Some outcome -> (node, outcome)
        | None -> assert false (* every node is finished by now *))
      order
  in
  (* deterministic failure: raise for the earliest failed node in
     [order], exactly as a serial left-to-right run would have.  Under
     [keep_going] the caller reads failures out of the outcome list
     instead; every node not downstream of a failure has still run. *)
  if not keep_going then
    (match
       List.find_opt (function _, Failed _ -> true | _ -> false) outcomes
     with
    | Some (_, Failed exn) -> raise exn
    | Some _ | None -> ());
  outcomes
