structure IntOrd = struct type elem = int fun less (a, b) = a < b end
