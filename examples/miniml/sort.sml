functor Sort (O : ORD) = struct
fun insert (x, nil) = [x]
  | insert (x, y :: ys) = if O.less (x, y) then x :: y :: ys else y :: insert (x, ys)
fun sort nil = nil | sort (x :: xs) = insert (x, sort xs)
end
