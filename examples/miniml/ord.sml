signature ORD = sig type elem val less : elem * elem -> bool end
