structure Main = struct
structure S = Sort(IntOrd)
fun digits xs = let fun go (acc, l) = case l of nil => acc | x :: r => go (acc * 10 + x, r) in go (0, xs) end
val answer = digits (S.sort [3, 1, 2])
val banner = print (intToString answer)
end
