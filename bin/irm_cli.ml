(* irm — the Incremental Recompilation Manager as a command-line tool.

     irm build sources.cm --policy cutoff --trace build.json --stats
     irm build sources.cm --jobs 4 --cache
     irm run sources.cm
     irm stats sources.cm
     irm deps sources.cm
     irm recover sources.cm
     irm cache stats | gc | clear
     irm explain sort.sml
     irm profile --json

   A group file lists source paths, one per line; dependency order is
   computed automatically (section 8 of the paper).  --jobs picks the
   worker-domain count (independent units compile concurrently; the
   resulting bin files are byte-identical to a serial build); --cache
   keeps a content-addressed store of compiled units so any previously
   seen (source, imports) pair is reused instead of recompiled.
   --trace writes a Chrome trace_event file (open in chrome://tracing
   or Perfetto); --stats prints the per-unit build report and the
   metric counters.

   Every build is recorded into the persistent profile store
   (.irm-profile, disable with --no-profile): per-unit outcomes,
   structured rebuild causes with culprit imports, phase durations and
   slot occupancy.  `irm explain UNIT` answers "why did this unit
   rebuild, what did it drag with it, and what does it usually cost";
   `irm profile` prints the last build's critical path, slowest units
   and scheduler efficiency (--json emits the smlsep-profile/1
   envelope, schema schemas/profile.schema.json).

   --fault-seed wraps the file system in the deterministic
   fault-injection layer (for exercising crash safety: a simulated
   crash exits with code 3 and an intact on-disk state; rerunning
   without faults recovers).  `irm recover` quarantines damaged bin
   files and sweeps staging files so the next build recompiles exactly
   what was lost.

   `irm daemon start` launches the compile server: a long-running
   process holding warm build state (sessions, cache index, profile
   store) behind a Unix socket in .irm-daemon/.  --daemon on build,
   run, explain and profile routes the request there — falling back to
   in-process execution when nobody is listening — and --watch makes
   the daemon rebuild the dependent cone of changed files as its
   polling watcher sees them. *)

(* SIGINT/SIGTERM abort the build via Driver.Interrupted, which the
   driver treats as fatal even under --keep-going: partial results are
   recorded into the profile store and [guarded] maps it to exit 130 *)
let install_interrupt () =
  let handler name =
    Sys.Signal_handle (fun _ -> raise (Irm.Driver.Interrupted name))
  in
  Sys.set_signal Sys.sigint (handler "SIGINT");
  Sys.set_signal Sys.sigterm (handler "SIGTERM")

let parse_policy = function
  | "cutoff" -> Ok Irm.Driver.Cutoff
  | "timestamp" -> Ok Irm.Driver.Timestamp
  | "selective" -> Ok Irm.Driver.Selective
  | other -> Error (`Msg (Printf.sprintf "unknown policy %S" other))

let with_manager ?fault_seed ?(fault_ops = 32) dir group f =
  let fs = Vfs.real ~dir in
  let fs =
    match fault_seed with
    | None -> fs
    | Some seed ->
      let plan = Vfs.seeded_plan ~seed ~ops:fault_ops in
      Printf.eprintf "fault injection: seed %d over %d ops — plan [%s]\n%!"
        seed fault_ops
        (String.concat "; " (List.map Vfs.fault_name plan));
      fst (Vfs.faulty ~plan fs)
  in
  let sources = Irm.Group.load fs group in
  let mgr = Irm.Driver.create fs in
  f fs mgr sources

let backend_of_jobs jobs =
  if jobs <= 1 then Irm.Driver.Serial else Irm.Driver.Parallel jobs

(* --schedule=auto: critical-path once the profile store has a recorded
   build to estimate from, classical wavefront otherwise (including
   under --no-profile, where there are no estimates to be had) *)
let resolve_schedule ?profile = function
  | `Wavefront -> Irm.Driver.Wavefront
  | `Critical_path -> Irm.Driver.Critical_path
  | `Auto -> (
    match profile with
    | Some p when Obs.Profile.builds p <> [] -> Irm.Driver.Critical_path
    | Some _ | None -> Irm.Driver.Wavefront)

let schedule_string = function
  | `Auto -> "auto"
  | `Wavefront -> "wavefront"
  | `Critical_path -> "critical-path"

let parse_remote_addr s =
  match Remote.Transport.parse_addr s with
  | Ok addr -> addr
  | Error msg ->
    Support.Diag.error Support.Diag.Manager Support.Loc.dummy "--remote: %s"
      msg

(* --remote beats --workers beats --jobs: the more isolated backend is
   always the explicit opt-in *)
let backend_of ~jobs ~workers ~worker_timeout ?(remotes = [])
    ?(remote_timeout = 30.) ?(remote_fallback = true) () =
  if remotes <> [] then
    Irm.Driver.Remote
      {
        (Remote.Fleet.default_config
           ~execs:(List.map parse_remote_addr remotes))
        with
        Remote.Fleet.r_job_timeout_s = remote_timeout;
        r_local_fallback = remote_fallback;
      }
  else if workers > 0 then
    Irm.Driver.Workers
      { (Worker.default_config ~jobs:workers ()) with
        Worker.w_timeout_s = worker_timeout }
  else backend_of_jobs jobs

(* --remote-cache: read through the shared cache service, with the
   local cache (when --cache is also on) in front.  The client degrades
   to local-only by itself when the service is unreachable, so the ops
   never fail the build. *)
let cache_ops_of cache = function
  | None -> Option.map Cache.ops cache
  | Some addr_s ->
    let addr = parse_remote_addr addr_s in
    Some
      (Remote.Cache_client.ops
         (Remote.Cache_client.create
            ?local:(Option.map Cache.ops cache)
            addr))

let profile_of fs no_profile profile_dir =
  if no_profile then None else Some (Obs.Profile.load ~dir:profile_dir fs)

let cache_of fs enabled cache_dir budget_mb =
  if enabled then
    Some
      (Cache.create ~dir:cache_dir
         ~budget_bytes:(budget_mb * 1024 * 1024)
         fs)
  else None

(* the telemetry envelope: enable tracing when requested, run, then
   write the trace file and print the metric counters — through
   Fun.protect, so an interrupted build still flushes its trace *)
let with_obs trace stats f =
  if trace <> None then Obs.Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Option.iter
        (fun path ->
          Obs.Trace.write_chrome path;
          Printf.eprintf "trace written to %s (%d spans)\n" path
            (List.length (Obs.Trace.events ())))
        trace;
      if stats then Format.printf "metrics:@.%a%!" Obs.Metrics.pp ())
    f

let guarded ?(error_format = `Text) f =
  let report ds =
    match error_format with
    | `Text -> List.iter (fun d -> prerr_endline (Support.Diag.to_string d)) ds
    | `Json ->
      print_endline
        (Obs.Json.to_string (Irm.Introspect.diagnostics_envelope ds))
  in
  match Support.Diag.guard_all f with
  | Ok code -> code
  | Error ds ->
    report ds;
    1
  | exception Irm.Driver.Interrupted reason ->
    Printf.eprintf
      "interrupted by %s — partial results are recorded; rerun to converge\n"
      reason;
    130
  | exception Daemon.Lock.Held { lock_path; holder } ->
    Printf.eprintf
      "the build lock %s is held by pid %s — another build (or the daemon) \
       is running in this directory; retry when it finishes\n"
      lock_path holder;
    1
  | exception Daemon.Server.Already_running sock ->
    Printf.eprintf "a daemon is already serving this directory (socket %s)\n"
      sock;
    1
  | exception Daemon.Client.Protocol_error msg ->
    Printf.eprintf "daemon protocol error: %s\n" msg;
    1
  | exception Daemon.Client.Timeout msg ->
    Printf.eprintf "daemon timeout: %s\n" msg;
    1
  | exception Pickle.Buf.Corrupt msg ->
    report [ Support.Diag.make Support.Diag.Pickle Support.Loc.dummy msg ];
    1
  | exception Dynamics.Eval.Sml_raise packet ->
    Printf.eprintf "uncaught exception: %s\n" (Dynamics.Value.to_string packet);
    1
  | exception Dynamics.Eval.Sml_exit code -> code
  | exception Vfs.Crash { crash_op; crash_path } ->
    Printf.eprintf
      "simulated crash during %s of %s — on-disk state is safe; rerun \
       (optionally `irm recover`) to converge\n"
      crash_op crash_path;
    3
  | exception Vfs.Fault { fault_op; fault_path; _ } ->
    Printf.eprintf "injected fault persisted: %s of %s failed\n" fault_op
      fault_path;
    1
  | exception Sys_error msg ->
    prerr_endline msg;
    1
  | exception Worker.Pool_down msg ->
    Printf.eprintf
      "build aborted: the compile worker pool died entirely (%s)\n" msg;
    4

let require_sources group sources =
  if sources = [] then
    Support.Diag.error Support.Diag.Manager Support.Loc.dummy
      "group file %s lists no sources" group

(* print a rendered report on the process's own streams *)
let emit (r : Irm.Introspect.rendered) =
  print_string r.Irm.Introspect.out;
  prerr_string r.Irm.Introspect.err;
  r.Irm.Introspect.code

(* render a build's failed/skipped partitions: structured diagnostics
   with source excerpts on stderr (text) or the JSON envelope on stdout;
   returns the exit code the partitions call for *)
let report_diagnostics fs error_format (stats : Irm.Driver.stats) =
  emit
    (Irm.Introspect.report_diagnostics ~source_of:fs.Vfs.fs_read
       ~json:(error_format = `Json) stats)

let build_units ~backend ~schedule ?cache ?profile ~keep_going ~werror
    ?max_errors ~error_format fs mgr policy sources =
  let stats =
    Irm.Driver.build ~backend ~schedule ?cache ?profile ~keep_going ~werror
      ?max_errors mgr ~policy ~sources
  in
  if error_format = `Text then
    print_string (Irm.Introspect.build_listing mgr stats);
  let code = report_diagnostics fs error_format stats in
  (stats, code)

(* --daemon: hand the request to a listening compile server; fall back
   to in-process execution when nobody is there *)
let daemon_client ~use_daemon dir =
  if not use_daemon then None
  else
    match Daemon.Client.connect ~dir () with
    | Some _ as c -> c
    | None ->
      Printf.eprintf "irm: no daemon is listening in %s; running in-process\n%!"
        dir;
      None

let finish_daemon c req =
  Fun.protect ~finally:(fun () -> Daemon.Client.close c) @@ fun () ->
  let resp = Daemon.Client.request ~on_diag:print_string c req in
  print_string resp.Daemon.Protocol.r_out;
  prerr_string resp.Daemon.Protocol.r_err;
  resp.Daemon.Protocol.r_code

let pp_cache_stats = function
  | Some cache -> Format.printf "cache:@.%a" Cache.pp_stats (Cache.stats cache)
  | None -> ()

(* build options as the daemon protocol carries them; process-only
   features (--workers, --fault-seed, --trace, --stats) stay local *)
let daemon_build_opts group policy schedule jobs use_cache keep_going werror
    max_errors error_format =
  {
    Daemon.Protocol.b_group = group;
    b_policy = Irm.Driver.policy_name policy;
    b_jobs = jobs;
    b_cache = use_cache;
    b_keep_going = keep_going;
    b_werror = werror;
    b_max_errors = max_errors;
    b_error_json = (error_format = `Json);
    (* [auto] travels as-is: the daemon resolves it against its own warm
       profile store *)
    b_schedule = schedule_string schedule;
  }

(* --workers forks, --fault-seed wraps the daemon's real fs, --remote
   owns its own connections — all strictly in-process features, so they
   win over --daemon *)
let daemon_routable ~use_daemon ~workers ~fault_seed ?(remotes = []) () =
  if use_daemon && (workers > 0 || fault_seed <> None || remotes <> []) then begin
    Printf.eprintf
      "irm: --workers, --remote and --fault-seed are in-process features; \
       ignoring --daemon\n%!";
    false
  end
  else use_daemon

let build_cmd_impl dir group policy schedule jobs workers worker_timeout
    remotes remote_cache remote_timeout no_remote_fallback use_cache cache_dir
    budget_mb no_profile profile_dir trace stats_flag fault_seed fault_ops
    keep_going werror max_errors error_format use_daemon =
  guarded ~error_format (fun () ->
      let use_daemon =
        daemon_routable ~use_daemon ~workers ~fault_seed ~remotes ()
      in
      match daemon_client ~use_daemon dir with
      | Some c ->
        finish_daemon c
          (Daemon.Protocol.Build
             (daemon_build_opts group policy schedule jobs use_cache keep_going
                werror max_errors error_format))
      | None ->
        install_interrupt ();
        with_manager ?fault_seed ~fault_ops dir group (fun fs mgr sources ->
            require_sources group sources;
            Daemon.Lock.with_lock ~dir @@ fun () ->
            let cache = cache_of fs use_cache cache_dir budget_mb in
            let profile = profile_of fs no_profile profile_dir in
            let schedule = resolve_schedule ?profile schedule in
            with_obs trace stats_flag (fun () ->
                let stats, code =
                  build_units
                    ~backend:
                      (backend_of ~jobs ~workers ~worker_timeout ~remotes
                         ~remote_timeout
                         ~remote_fallback:(not no_remote_fallback) ())
                    ~schedule
                    ?cache:(cache_ops_of cache remote_cache)
                    ?profile ~keep_going ~werror ?max_errors ~error_format fs
                    mgr policy sources
                in
                if stats_flag then begin
                  Format.printf "%a" Irm.Driver.pp_report stats;
                  pp_cache_stats cache
                end;
                code)))

let run_cmd_impl dir group policy schedule jobs workers worker_timeout remotes
    remote_cache remote_timeout no_remote_fallback use_cache cache_dir
    budget_mb no_profile profile_dir trace stats_flag fault_seed fault_ops
    keep_going werror max_errors error_format use_daemon =
  guarded ~error_format (fun () ->
      let use_daemon =
        daemon_routable ~use_daemon ~workers ~fault_seed ~remotes ()
      in
      match daemon_client ~use_daemon dir with
      | Some c ->
        finish_daemon c
          (Daemon.Protocol.Run
             (daemon_build_opts group policy schedule jobs use_cache keep_going
                werror max_errors error_format))
      | None ->
        install_interrupt ();
        with_manager ?fault_seed ~fault_ops dir group (fun fs mgr sources ->
            require_sources group sources;
            Daemon.Lock.with_lock ~dir @@ fun () ->
            let cache = cache_of fs use_cache cache_dir budget_mb in
            let profile = profile_of fs no_profile profile_dir in
            let schedule = resolve_schedule ?profile schedule in
            with_obs trace stats_flag (fun () ->
                let stats =
                  Irm.Driver.build
                    ~backend:
                      (backend_of ~jobs ~workers ~worker_timeout ~remotes
                         ~remote_timeout
                         ~remote_fallback:(not no_remote_fallback) ())
                    ~schedule
                    ?cache:(cache_ops_of cache remote_cache)
                    ?profile ~keep_going ~werror ?max_errors mgr ~policy
                    ~sources
                in
                let code = report_diagnostics fs error_format stats in
                (* failed or skipped units have no bin to execute — report
                   the diagnostics and stop before running anything *)
                if code = 0 then ignore (Irm.Driver.run mgr ~sources);
                if stats_flag then begin
                  Format.printf "%a" Irm.Driver.pp_report stats;
                  pp_cache_stats cache
                end;
                code)))

let stats_cmd_impl dir group policy schedule jobs workers worker_timeout
    remotes remote_cache remote_timeout no_remote_fallback use_cache cache_dir
    budget_mb no_profile profile_dir trace json keep_going werror max_errors =
  guarded (fun () ->
      install_interrupt ();
      with_manager dir group (fun fs mgr sources ->
          require_sources group sources;
          Daemon.Lock.with_lock ~dir @@ fun () ->
          let cache = cache_of fs use_cache cache_dir budget_mb in
          let profile = profile_of fs no_profile profile_dir in
          let schedule = resolve_schedule ?profile schedule in
          with_obs trace false (fun () ->
              let stats =
                Irm.Driver.build
                  ~backend:
                    (backend_of ~jobs ~workers ~worker_timeout ~remotes
                       ~remote_timeout
                       ~remote_fallback:(not no_remote_fallback) ())
                  ~schedule
                  ?cache:(cache_ops_of cache remote_cache)
                  ?profile ~keep_going ~werror ?max_errors mgr ~policy ~sources
              in
              if json then
                print_endline
                  (Obs.Json.to_string
                     (Obs.Json.Obj
                        [
                          ("build", Irm.Driver.report_json stats);
                          ("metrics", Obs.Metrics.to_json ());
                        ]))
              else begin
                Format.printf "%a" Irm.Driver.pp_report stats;
                Format.printf "metrics:@.%a" Obs.Metrics.pp ()
              end;
              if stats.Irm.Driver.st_failed = [] then 0 else 1)))

let deps_cmd_impl dir group dot =
  guarded (fun () ->
      with_manager dir group (fun fs _mgr sources ->
          let parsed =
            List.map
              (fun file ->
                match fs.Vfs.fs_read file with
                | Some src -> (file, Lang.Parser.parse_unit ~file src)
                | None ->
                  Support.Diag.error Support.Diag.Manager Support.Loc.dummy
                    "source file %s not found" file)
              sources
          in
          let graph = Depend.Depgraph.build parsed in
          let order = Depend.Depgraph.topological graph in
          if dot then begin
            print_endline "digraph deps {";
            print_endline "  rankdir=BT;";
            List.iter
              (fun file ->
                let node = Depend.Depgraph.node graph file in
                if node.Depend.Depgraph.n_deps = [] then
                  Printf.printf "  %S;\n" file
                else
                  List.iter
                    (fun dep -> Printf.printf "  %S -> %S;\n" file dep)
                    node.Depend.Depgraph.n_deps)
              order;
            print_endline "}"
          end
          else
            List.iter
              (fun file ->
                let node = Depend.Depgraph.node graph file in
                Printf.printf "%s: %s\n" file
                  (String.concat " " node.Depend.Depgraph.n_deps))
              order;
          0))

let recover_cmd_impl dir group =
  guarded (fun () ->
      with_manager dir group (fun _fs mgr sources ->
          require_sources group sources;
          let report = Irm.Driver.recover mgr ~sources in
          Format.printf "%a" Irm.Driver.pp_recovery report;
          0))

let cache_cmd_impl dir cache_dir budget_mb action =
  guarded (fun () ->
      let fs = Vfs.real ~dir in
      let cache =
        Cache.create ~dir:cache_dir
          ~budget_bytes:(budget_mb * 1024 * 1024)
          fs
      in
      (match action with
      | `Stats -> ()
      | `Gc ->
        let report = Cache.gc cache in
        Format.printf "gc:@.%a" Cache.pp_gc_report report
      | `Clear -> Cache.clear cache);
      Format.printf "%a" Cache.pp_stats (Cache.stats cache);
      0)

(* ------------------------------------------------------------------ *)
(* Build introspection: explain and profile (rendering lives in
   Irm.Introspect, shared with the daemon)                             *)
(* ------------------------------------------------------------------ *)

let explain_cmd_impl dir profile_dir unit_ json use_daemon =
  guarded (fun () ->
      match daemon_client ~use_daemon dir with
      | Some c ->
        finish_daemon c
          (Daemon.Protocol.Explain { e_unit = unit_; e_json = json })
      | None ->
        let fs = Vfs.real ~dir in
        let p = Obs.Profile.load ~dir:profile_dir fs in
        emit (Irm.Introspect.explain p ~unit_name:unit_ ~json))

let profile_cmd_impl dir profile_dir json top use_daemon =
  guarded (fun () ->
      match daemon_client ~use_daemon dir with
      | Some c ->
        finish_daemon c (Daemon.Protocol.Profile { p_json = json; p_top = top })
      | None ->
        let fs = Vfs.real ~dir in
        let p = Obs.Profile.load ~dir:profile_dir fs in
        emit (Irm.Introspect.profile_report p ~json ~top))

(* ------------------------------------------------------------------ *)
(* The compile server: daemon start / stop / status                    *)
(* ------------------------------------------------------------------ *)

let daemon_config dir state_dir groups watch poll_s client_timeout use_cache
    policy jobs hot_swap log =
  {
    Daemon.Server.d_dir = dir;
    d_state_dir = state_dir;
    d_groups = groups;
    d_watch = watch;
    d_poll_s = poll_s;
    d_client_timeout_s = client_timeout;
    d_cache = use_cache;
    d_policy = Irm.Driver.policy_name policy;
    d_jobs = jobs;
    d_hot_swap = hot_swap;
    d_swap_budget_s = 30.;
    d_epoch_history = 4;
    d_log = log;
  }

let daemon_start_impl dir state_dir groups watch poll_s client_timeout
    use_cache policy jobs hot_swap foreground =
  guarded (fun () ->
      if foreground then begin
        let server =
          Daemon.Server.create
            (daemon_config dir state_dir groups watch poll_s client_timeout
               use_cache policy jobs hot_swap prerr_endline)
        in
        install_interrupt ();
        Daemon.Server.run server;
        0
      end
      else begin
        let log_path = Daemon.Protocol.log_path ~dir ~state_dir in
        (try Unix.mkdir (Filename.dirname log_path) 0o755
         with Unix.Unix_error _ -> ());
        (* daemonize.  Forking is safe here: no domain has been spawned
           yet, and the daemon's own Parallel domains are born after *)
        match Unix.fork () with
        | 0 ->
          ignore (Unix.setsid ());
          let log_fd =
            Unix.openfile log_path
              [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
              0o644
          in
          let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
          Unix.dup2 devnull Unix.stdin;
          Unix.dup2 log_fd Unix.stdout;
          Unix.dup2 log_fd Unix.stderr;
          Unix.close devnull;
          Unix.close log_fd;
          let code =
            guarded (fun () ->
                let server =
                  Daemon.Server.create
                    (daemon_config dir state_dir groups watch poll_s
                       client_timeout use_cache policy jobs hot_swap
                       (fun line -> Printf.eprintf "%s\n%!" line))
                in
                install_interrupt ();
                Daemon.Server.run server;
                0)
          in
          Stdlib.exit code
        | child ->
          (* parent: hand back once the daemon answers its socket (or
             died trying) *)
          let deadline = Unix.gettimeofday () +. 10. in
          let rec await () =
            match Unix.waitpid [ Unix.WNOHANG ] child with
            | pid, status when pid = child ->
              Printf.eprintf "daemon exited at startup (%s); see %s\n"
                (match status with
                | Unix.WEXITED n -> Printf.sprintf "exit %d" n
                | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
                | Unix.WSTOPPED n -> Printf.sprintf "stopped by signal %d" n)
                log_path;
              1
            | _ -> (
              match Daemon.Client.connect ~state_dir ~dir () with
              | Some c ->
                Daemon.Client.close c;
                Printf.printf "daemon started (pid %d), socket %s\n" child
                  (Daemon.Protocol.socket_path ~dir ~state_dir);
                0
              | None ->
                if Unix.gettimeofday () > deadline then begin
                  Printf.eprintf "daemon did not come up within 10s; see %s\n"
                    log_path;
                  1
                end
                else begin
                  Unix.sleepf 0.1;
                  await ()
                end)
          in
          await ()
      end)

let daemon_stop_impl dir state_dir =
  guarded (fun () ->
      match Daemon.Client.connect ~state_dir ~dir () with
      | Some c ->
        let resp = Daemon.Client.request c Daemon.Protocol.Shutdown in
        Daemon.Client.close c;
        print_endline "daemon stopped";
        resp.Daemon.Protocol.r_code
      | None -> (
        (* nobody answering the socket: fall back to the pid file *)
        let pid_path = Daemon.Protocol.pid_path ~dir ~state_dir in
        let no_daemon () =
          prerr_endline "no daemon is serving this directory";
          1
        in
        match In_channel.with_open_bin pid_path In_channel.input_all with
        | exception Sys_error _ -> no_daemon ()
        | contents -> (
          match int_of_string_opt (String.trim contents) with
          | None -> no_daemon ()
          | Some pid -> (
            match Unix.kill pid Sys.sigterm with
            | () ->
              Printf.printf "sent SIGTERM to daemon pid %d\n" pid;
              0
            | exception Unix.Unix_error _ -> no_daemon ()))))

let daemon_status_impl dir state_dir json =
  guarded (fun () ->
      (* probe, don't connect: a SIGKILL'd daemon must report as stale
         (and have its leftovers swept), not hang out the client timeout *)
      match Daemon.Client.probe ~state_dir ~dir () with
      | Daemon.Client.Absent ->
        prerr_endline "no daemon is serving this directory";
        1
      | Daemon.Client.Stale (Some pid) ->
        Printf.eprintf
          "daemon is stale (pid %d dead); removed its socket and pid files\n"
          pid;
        1
      | Daemon.Client.Stale None ->
        prerr_endline
          "daemon is stale (no live process); removed its socket and pid \
           files";
        1
      | Daemon.Client.Unresponsive pid ->
        Printf.eprintf
          "daemon (pid %d) is alive but not answering its socket — likely \
           mid-build; retry, or `irm daemon stop`\n"
          pid;
        1
      | Daemon.Client.Live c ->
        let resp = Daemon.Client.request c Daemon.Protocol.Status in
        Daemon.Client.close c;
        if json then print_string resp.Daemon.Protocol.r_out
        else begin
          let j = Obs.Json.parse resp.Daemon.Protocol.r_out in
          let str k v =
            match Obs.Json.member k v with
            | Some (Obs.Json.String s) -> s
            | _ -> "?"
          in
          let int_ k v =
            match Obs.Json.member k v with Some (Obs.Json.Int n) -> n | _ -> 0
          in
          let float_ k v =
            match Obs.Json.member k v with
            | Some (Obs.Json.Float f) -> f
            | Some (Obs.Json.Int n) -> float_of_int n
            | _ -> 0.
          in
          Printf.printf "daemon %s  (pid %d, up %.1fs)\n" (str "version" j)
            (int_ "pid" j) (float_ "uptime_s" j);
          Printf.printf "  served    %d requests, %d clients connected\n"
            (int_ "served" j) (int_ "clients" j);
          (match Obs.Json.member "watch" j with
          | Some w ->
            Printf.printf
              "  watch     %s, poll %.2fs: %d files tracked, %d sweeps, %d \
               dirty\n"
              (match Obs.Json.member "eager" w with
              | Some (Obs.Json.Bool true) -> "eager"
              | _ -> "lazy")
              (float_ "poll_s" w) (int_ "tracked" w) (int_ "sweeps" w)
              (int_ "dirty_total" w)
          | None -> ());
          (match Obs.Json.member "hot_swap" j with
          | Some (Obs.Json.Bool true) -> Printf.printf "  hot-swap  on\n"
          | _ -> ());
          match Obs.Json.member "groups" j with
          | Some (Obs.Json.List gs) ->
            List.iter
              (fun g ->
                let epoch =
                  match Obs.Json.member "epoch" g with
                  | Some (Obs.Json.Int n) -> Printf.sprintf ", epoch %d" n
                  | _ -> ""
                in
                let swaps =
                  match Obs.Json.member "swaps" g with
                  | Some s ->
                    let n k =
                      match Obs.Json.member k s with
                      | Some (Obs.Json.Int v) -> v
                      | _ -> 0
                    in
                    if n "null" + n "impl" + n "epoch" + n "rollbacks" = 0
                    then ""
                    else
                      Printf.sprintf
                        " — swaps: %d null / %d impl / %d epoch / %d \
                         rollbacks"
                        (n "null") (n "impl") (n "epoch") (n "rollbacks")
                  | None -> ""
                in
                Printf.printf "  group     %s: %d units, %d builds%s%s\n"
                  (str "group" g) (int_ "units" g) (int_ "builds" g) epoch
                  swaps)
              gs
          | _ -> ()
        end;
        resp.Daemon.Protocol.r_code)

(* `irm swap UNIT`: ask the daemon to rebuild and hot-swap the unit's
   group, reporting which regime the swap took *)
let swap_impl dir state_dir group unit_ =
  guarded (fun () ->
      match Daemon.Client.connect ~state_dir ~dir () with
      | None ->
        prerr_endline
          "no daemon is serving this directory (hot swap needs `irm daemon \
           start --hot-swap`)";
        1
      | Some c ->
        finish_daemon c
          (Daemon.Protocol.Swap { s_group = group; s_unit = unit_ }))

let daemon_epochs_impl dir state_dir group json =
  guarded (fun () ->
      match Daemon.Client.connect ~state_dir ~dir () with
      | None ->
        prerr_endline "no daemon is serving this directory";
        1
      | Some c ->
        finish_daemon c
          (Daemon.Protocol.Epochs { ep_group = group; ep_json = json }))


(* ------------------------------------------------------------------ *)
(* The build fabric's services: remote executor and shared cache       *)
(* ------------------------------------------------------------------ *)

(* both services run in the foreground: the reactor loops on its own
   socket until SIGINT/SIGTERM asks it to stop.  Neither spawns
   domains, so serve-exec's worker pool can still fork children. *)
let serve_until_signalled ~stop ~run =
  let handler = Sys.Signal_handle (fun _ -> stop ()) in
  Sys.set_signal Sys.sigint handler;
  Sys.set_signal Sys.sigterm handler;
  run ();
  0

let serve_exec_impl listen exec_jobs worker_timeout =
  guarded (fun () ->
      let addr = parse_remote_addr listen in
      let mode =
        if exec_jobs <= 0 then Remote.Exec.Inline
        else
          Remote.Exec.Pool
            { (Worker.default_config ~jobs:exec_jobs ()) with
              Worker.w_timeout_s = worker_timeout }
      in
      let exec = Remote.Exec.create ~mode addr (Irm.Wire.proto ()) in
      Printf.eprintf "irm: executor serving on %s (%s)\n%!"
        (Remote.Transport.addr_to_string (Remote.Exec.addr exec))
        (if exec_jobs <= 0 then "inline"
         else Printf.sprintf "%d worker processes" exec_jobs);
      serve_until_signalled
        ~stop:(fun () -> Remote.Exec.stop exec)
        ~run:(fun () -> Remote.Exec.run exec))

let serve_cache_impl dir listen shards budget_mb cache_dir =
  guarded (fun () ->
      let addr = parse_remote_addr listen in
      let fs = Vfs.real ~dir in
      let srv =
        Remote.Cached.create ~shards
          ~budget_bytes:(budget_mb * 1024 * 1024)
          ~dir:cache_dir addr fs
      in
      Printf.eprintf "irm: cache service serving on %s (%d shards under %s)\n%!"
        (Remote.Transport.addr_to_string (Remote.Cached.addr srv))
        shards cache_dir;
      serve_until_signalled
        ~stop:(fun () -> Remote.Cached.stop srv)
        ~run:(fun () -> Remote.Cached.run srv))

open Cmdliner

let dir_arg =
  Arg.(
    value & opt dir "."
    & info [ "C"; "directory" ] ~docv:"DIR" ~doc:"Project root directory.")

let group_arg =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"GROUP" ~doc:"Group file listing the source files.")

let policy_arg =
  let policy_conv =
    Arg.conv ~docv:"POLICY"
      ( parse_policy,
        fun ppf p -> Format.pp_print_string ppf (Irm.Driver.policy_name p) )
  in
  Arg.(
    value & opt policy_conv Irm.Driver.Cutoff
    & info [ "p"; "policy" ] ~docv:"POLICY"
        ~doc:
          "Recompilation policy: $(b,cutoff) (interface pids), \
           $(b,selective) (per-module interface pids) or $(b,timestamp) \
           (classical make).")

let schedule_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("auto", `Auto);
             ("wavefront", `Wavefront);
             ("critical-path", `Critical_path);
           ])
        `Auto
    & info [ "schedule" ] ~docv:"SCHED"
        ~doc:
          "How ready compiles are ordered.  $(b,wavefront) dispatches in \
           build order as dependencies complete.  $(b,critical-path) \
           starts the units with the longest downstream chains first — \
           per-unit durations estimated from the profile store's rolling \
           averages — and pipelines each compile into static and codegen \
           stages, releasing a unit's interfaces to dependents before its \
           code generation finishes.  $(b,auto) (the default) picks \
           $(b,critical-path) once the profile store has recorded a \
           build, $(b,wavefront) otherwise.  Bin files, diagnostics and \
           failure partitions are byte-identical under every schedule.")

let jobs_arg =
  Arg.(
    value
    & opt int (Sched.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Number of worker domains compiling independent units \
           concurrently (default: the machine's recommended domain \
           count).  $(docv) <= 1 builds serially; the bin files are \
           byte-identical either way.")

let workers_arg =
  Arg.(
    value & opt int 0
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Compile every unit in one of $(docv) supervised child \
           $(i,processes) instead of in-process domains (overrides \
           $(b,--jobs)).  A compiler crash or hang then costs that unit \
           alone: crashed units are retried on a fresh worker and \
           quarantined as $(b,E0701) after repeated crashes, hung units \
           are killed at $(b,--worker-timeout) and failed as \
           $(b,E0702).  Bin files are byte-identical to an in-process \
           build.  0 (the default) disables worker processes.")

let worker_timeout_arg =
  Arg.(
    value & opt float 30.
    & info [ "worker-timeout" ] ~docv:"SEC"
        ~doc:
          "Wall-clock budget per unit compile under $(b,--workers); a \
           child exceeding it is killed and the unit fails with \
           $(b,E0702) (default 30s).")

let remote_arg =
  Arg.(
    value & opt_all string []
    & info [ "remote" ] ~docv:"ADDR"
        ~doc:
          "Dispatch compiles to the remote executor at $(docv) \
           ($(b,unix:PATH), $(b,tcp:HOST:PORT), or a bare socket path; \
           repeatable — the fleet load-balances across every executor, \
           overriding $(b,--workers) and $(b,--jobs)).  Jobs carry \
           per-deadline retries and hedged re-dispatch; an executor that \
           keeps failing is quarantined, and when every executor is gone \
           the build degrades to local compiles with a warning — \
           byte-identical output, never a lost build.")

let remote_cache_arg =
  Arg.(
    value & opt (some string) None
    & info [ "remote-cache" ] ~docv:"ADDR"
        ~doc:
          "Read compiled units through the shared cache service at \
           $(docv) (see $(b,irm serve-cache)), with the local cache \
           (under $(b,--cache)) in front.  An unreachable service \
           degrades to local-only operation with a warning.")

let remote_timeout_arg =
  Arg.(
    value & opt float 30.
    & info [ "remote-timeout" ] ~docv:"SEC"
        ~doc:
          "Network deadline per dispatched compile under $(b,--remote); \
           an unanswered job is re-dispatched to another executor \
           (default 30s).")

let no_remote_fallback_arg =
  Arg.(
    value & flag
    & info [ "no-remote-fallback" ]
        ~doc:
          "Fail units with $(b,E0703)/$(b,E0704) instead of compiling \
           them locally when every remote executor is unreachable — for \
           builds that must not degrade silently.")

let cache_flag_arg =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:
          "Reuse compiled units from the content-addressed unit cache \
           (keyed by source, import interface pids and compiler \
           version) and store every fresh compile into it.")

let cache_dir_arg =
  Arg.(
    value & opt string Cache.default_dir
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Cache directory, relative to the project root.")

let cache_budget_arg =
  Arg.(
    value
    & opt int (Cache.default_budget / (1024 * 1024))
    & info [ "cache-budget" ] ~docv:"MIB"
        ~doc:
          "Cache size budget in MiB; least-recently-used units are \
           evicted beyond it.")

let profile_dir_arg =
  Arg.(
    value & opt string Obs.Profile.default_dir
    & info [ "profile-dir" ] ~docv:"DIR"
        ~doc:"Profile store directory, relative to the project root.")

let no_profile_arg =
  Arg.(
    value & flag
    & info [ "no-profile" ]
        ~doc:
          "Do not record this build into the persistent profile store \
           (and forgo eviction detection, $(b,irm explain) and \
           $(b,irm profile) data for it).")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"OUT"
        ~doc:
          "Write a Chrome trace_event JSON file of the build's phase \
           spans to $(docv) (open in chrome://tracing or Perfetto).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print the per-unit build report and the metric counters.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the report as JSON instead of text.")

let fault_seed_arg =
  Arg.(
    value & opt (some int) None
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:
          "Inject deterministic file-system faults from the plan seeded \
           by $(docv) (crash-safety testing).  A simulated crash exits \
           with code 3, leaving a safe on-disk state; rerun without this \
           flag to recover.")

let fault_ops_arg =
  Arg.(
    value & opt int 32
    & info [ "fault-ops" ] ~docv:"N"
        ~doc:
          "Spread the injection points of $(b,--fault-seed) over the \
           first $(docv) operations per class (default 32).")

let keep_going_arg =
  Arg.(
    value & flag
    & info [ "k"; "keep-going" ]
        ~doc:
          "Do not stop at the first broken unit: collect structured \
           diagnostics per unit, skip only the units downstream of a \
           failure (poison propagation), and still build every unit not \
           reachable from one.  The failed/skipped partitions and the \
           diagnostics are deterministic — identical for any \
           $(b,--jobs).")

let werror_arg =
  Arg.(
    value & flag
    & info [ "warn-error" ]
        ~doc:
          "Promote warnings (nonexhaustive match, redundant rule, …) to \
           errors.")

let max_errors_arg =
  Arg.(
    value & opt (some int) None
    & info [ "max-errors" ] ~docv:"N"
        ~doc:
          "Stop collecting after $(docv) errors per unit (default \
           64).")

let error_format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "error-format" ] ~docv:"FMT"
        ~doc:
          "How to report diagnostics: $(b,text) (human-readable, with \
           source excerpts, on stderr) or $(b,json) (one machine-readable \
           envelope on stdout, schema $(i,schemas/diagnostics.schema.json)).")

let daemon_flag_arg =
  Arg.(
    value & flag
    & info [ "daemon" ]
        ~doc:
          "Route the request to a running compile server (started with \
           $(b,irm daemon start)), reusing its warm build state; falls \
           back to in-process execution when no daemon is listening.  \
           In-process features ($(b,--workers), $(b,--fault-seed), \
           $(b,--trace), $(b,--stats)) are not routed.")

let exits =
  [
    Cmd.Exit.info 0 ~doc:"on success.";
    Cmd.Exit.info 1
      ~doc:"on reported diagnostics (compile, link or runtime errors).";
    Cmd.Exit.info 2 ~doc:"on command-line usage errors.";
    Cmd.Exit.info 3
      ~doc:
        "on a simulated crash under $(b,--fault-seed); the on-disk state \
         is safe and a rerun converges.";
    Cmd.Exit.info 4
      ~doc:
        "when the worker pool under $(b,--workers) died entirely \
         (workers kept dying before doing any work) and the build was \
         aborted.";
    Cmd.Exit.info 130
      ~doc:
        "when interrupted by SIGINT or SIGTERM; the partial build is \
         recorded in the profile store and a rerun converges.";
  ]

let build_cmd =
  Cmd.v
    (Cmd.info "build" ~exits
       ~doc:"bring every unit of the group up to date")
    Term.(
      const build_cmd_impl $ dir_arg $ group_arg $ policy_arg $ schedule_arg
      $ jobs_arg
      $ workers_arg $ worker_timeout_arg $ remote_arg $ remote_cache_arg
      $ remote_timeout_arg $ no_remote_fallback_arg
      $ cache_flag_arg $ cache_dir_arg
      $ cache_budget_arg $ no_profile_arg $ profile_dir_arg $ trace_arg
      $ stats_arg $ fault_seed_arg $ fault_ops_arg $ keep_going_arg
      $ werror_arg $ max_errors_arg $ error_format_arg $ daemon_flag_arg)

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~exits
       ~doc:"build, then execute all units in dependency order")
    Term.(
      const run_cmd_impl $ dir_arg $ group_arg $ policy_arg $ schedule_arg
      $ jobs_arg
      $ workers_arg $ worker_timeout_arg $ remote_arg $ remote_cache_arg
      $ remote_timeout_arg $ no_remote_fallback_arg
      $ cache_flag_arg $ cache_dir_arg
      $ cache_budget_arg $ no_profile_arg $ profile_dir_arg $ trace_arg
      $ stats_arg $ fault_seed_arg $ fault_ops_arg $ keep_going_arg
      $ werror_arg $ max_errors_arg $ error_format_arg $ daemon_flag_arg)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~exits
       ~doc:"build, then print the per-unit report and metric counters")
    Term.(
      const stats_cmd_impl $ dir_arg $ group_arg $ policy_arg $ schedule_arg
      $ jobs_arg
      $ workers_arg $ worker_timeout_arg $ remote_arg $ remote_cache_arg
      $ remote_timeout_arg $ no_remote_fallback_arg
      $ cache_flag_arg $ cache_dir_arg
      $ cache_budget_arg $ no_profile_arg $ profile_dir_arg $ trace_arg
      $ json_arg $ keep_going_arg $ werror_arg $ max_errors_arg)

let cache_action_arg =
  let actions = [ ("stats", `Stats); ("gc", `Gc); ("clear", `Clear) ] in
  Arg.(
    required
    & pos 0 (some (enum actions)) None
    & info [] ~docv:"ACTION"
        ~doc:
          "$(b,stats) prints occupancy and counters, $(b,gc) re-enforces \
           the size budget, $(b,clear) drops every entry.")

let cache_cmd =
  Cmd.v
    (Cmd.info "cache" ~exits
       ~doc:"inspect or maintain the content-addressed unit cache")
    Term.(
      const cache_cmd_impl $ dir_arg $ cache_dir_arg $ cache_budget_arg
      $ cache_action_arg)

let dot_arg =
  Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of text.")

let deps_cmd =
  Cmd.v
    (Cmd.info "deps" ~exits ~doc:"print the computed dependency graph")
    Term.(const deps_cmd_impl $ dir_arg $ group_arg $ dot_arg)

let recover_cmd =
  Cmd.v
    (Cmd.info "recover" ~exits
       ~doc:
         "quarantine damaged bin files and sweep interrupted-commit \
          staging files, so the next build recompiles exactly what was \
          lost")
    Term.(const recover_cmd_impl $ dir_arg $ group_arg)

let unit_arg =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"UNIT"
        ~doc:"The unit's source path, as listed in the group file.")

let top_arg =
  Arg.(
    value & opt int 5
    & info [ "top" ] ~docv:"N"
        ~doc:"How many of the slowest compiled units to list (default 5).")

let explain_cmd =
  Cmd.v
    (Cmd.info "explain" ~exits
       ~doc:
         "explain a unit's last build: why it was recompiled (with the \
          culprit imports), what it poisoned downstream, its phase \
          timings and its compile-time history")
    Term.(
      const explain_cmd_impl $ dir_arg $ profile_dir_arg $ unit_arg $ json_arg
      $ daemon_flag_arg)

let profile_cmd =
  Cmd.v
    (Cmd.info "profile" ~exits
       ~doc:
         "report on the last recorded build: critical path, slowest \
          units, scheduler efficiency, and the rebuild-cause breakdown \
          ($(b,--json) emits the smlsep-profile/1 envelope)")
    Term.(
      const profile_cmd_impl $ dir_arg $ profile_dir_arg $ json_arg $ top_arg
      $ daemon_flag_arg)

let state_dir_arg =
  Arg.(
    value
    & opt string Daemon.Protocol.default_state_dir
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:
          "Daemon state directory (socket, pid file, log), relative to \
           the project root.  Kept short by default: Unix socket paths \
           are limited to roughly 100 bytes.")

let watch_arg =
  Arg.(
    value & flag
    & info [ "watch" ]
        ~doc:
          "Rebuild the dependent cone of changed files eagerly as the \
           polling watcher sees them, instead of leaving them to \
           invalidate the next requested build.")

let poll_arg =
  Arg.(
    value & opt float 0.5
    & info [ "poll" ] ~docv:"SEC"
        ~doc:
          "Watcher sweep interval: tracked files are re-checked by mtime \
           and content digest every $(docv) seconds (default 0.5).")

let client_timeout_arg =
  Arg.(
    value & opt float 30.
    & info [ "client-timeout" ] ~docv:"SEC"
        ~doc:
          "Drop a client stuck mid-frame (or not draining its response) \
           after $(docv) seconds of silence (default 30).")

let foreground_arg =
  Arg.(
    value & flag
    & info [ "foreground" ]
        ~doc:
          "Serve in the foreground instead of daemonizing: log to stderr, \
           stop on Ctrl-C.")

let daemon_groups_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"GROUP"
        ~doc:
          "Group files to build at startup and keep under the file \
           watcher.  Later $(b,build --daemon) requests add their groups \
           too.")

let hot_swap_arg =
  Arg.(
    value & flag
    & info [ "hot-swap" ]
        ~doc:
          "Keep a live, epoch-versioned dynamic environment per group: \
           every clean rebuild is hot-swapped into it transactionally \
           (an implementation-only change rebinds one unit in place; an \
           interface change bumps an epoch and relinks the importing \
           cone), and $(b,run --daemon) replays the live epoch instead \
           of re-executing.  Inspect with $(b,irm daemon epochs), drive \
           by hand with $(b,irm swap).")

let daemon_start_cmd =
  Cmd.v
    (Cmd.info "start" ~exits
       ~doc:
         "start the compile server for this directory: warm build state \
          behind the Unix socket $(i,.irm-daemon/sock)")
    Term.(
      const daemon_start_impl $ dir_arg $ state_dir_arg $ daemon_groups_arg
      $ watch_arg $ poll_arg $ client_timeout_arg $ cache_flag_arg
      $ policy_arg $ jobs_arg $ hot_swap_arg $ foreground_arg)

let daemon_stop_cmd =
  Cmd.v
    (Cmd.info "stop" ~exits
       ~doc:
         "ask the daemon to shut down cleanly (falls back to SIGTERM via \
          the pid file when the socket does not answer)")
    Term.(const daemon_stop_impl $ dir_arg $ state_dir_arg)

let daemon_status_cmd =
  Cmd.v
    (Cmd.info "status" ~exits
       ~doc:
         "report the daemon's uptime, served requests, connected clients, \
          epochs and watched groups ($(b,--json) emits the smlsep-daemon/2 \
          status envelope, schema $(i,schemas/daemon.schema.json)).  A \
          SIGKILL'd daemon reports as stale and its leftover socket/pid \
          files are swept.")
    Term.(const daemon_status_impl $ dir_arg $ state_dir_arg $ json_arg)

let epochs_group_arg =
  Arg.(
    value & opt string ""
    & info [ "group" ] ~docv:"GROUP"
        ~doc:
          "Group whose epochs to inspect (default: the daemon's sole live \
           group).")

let daemon_epochs_cmd =
  Cmd.v
    (Cmd.info "epochs" ~exits
       ~doc:
         "inspect the live dynenv epochs of a $(b,--hot-swap) daemon: \
          which epoch serves, which are draining behind pinned in-flight \
          requests, which retired, and the swap counters")
    Term.(
      const daemon_epochs_impl $ dir_arg $ state_dir_arg $ epochs_group_arg
      $ json_arg)

let daemon_cmd =
  Cmd.group
    (Cmd.info "daemon" ~exits
       ~doc:
         "the compile server: a build daemon holding warm sessions, cache \
          index and profile store behind a Unix socket")
    [ daemon_start_cmd; daemon_stop_cmd; daemon_status_cmd; daemon_epochs_cmd ]

let swap_unit_arg =
  Arg.(
    value & pos 0 string ""
    & info [] ~docv:"UNIT"
        ~doc:
          "Source file to swap (must belong to the group; omit to swap \
           whatever the rebuild produced).")

let swap_group_arg =
  Arg.(
    value & opt string ""
    & info [ "group" ] ~docv:"GROUP"
        ~doc:
          "Group to rebuild and swap (default: the daemon's sole live \
           group).")

let swap_cmd =
  Cmd.v
    (Cmd.info "swap" ~exits
       ~doc:
         "rebuild a unit's group in the $(b,--hot-swap) daemon and relink \
          the result into the live dynamic environment: a pid-stable \
          rebuild rebinds the unit in place, an interface change bumps an \
          epoch and relinks the importing cone; any failure rolls back to \
          the prior epoch ($(b,E0801) seal-violation, $(b,E0802) \
          relink-conflict)")
    Term.(const swap_impl $ dir_arg $ state_dir_arg $ swap_group_arg
          $ swap_unit_arg)

let listen_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:
          "Address to serve on: $(b,unix:PATH), $(b,tcp:HOST:PORT) \
           (port 0 picks an ephemeral port, printed at startup), or a \
           bare socket path.")

let exec_jobs_arg =
  Arg.(
    value & opt int (Sched.default_jobs ())
    & info [ "exec-jobs" ] ~docv:"N"
        ~doc:
          "Size of the executor's supervised worker-process pool \
           (default: the machine's recommended domain count).  0 \
           compiles inline in the reactor — single-job, for tests.")

let shards_arg =
  Arg.(
    value & opt int 4
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Independent cache shards, split by key prefix: each has its \
           own directory, journal and LRU budget (default 4).")

let serve_exec_cmd =
  Cmd.v
    (Cmd.info "serve-exec" ~exits
       ~doc:
         "serve a remote compile executor: a supervised worker pool \
          behind a socket, dispatching jobs from $(b,build --remote) \
          clients (crashes and hangs surface as $(b,E0701)/$(b,E0702) \
          exactly as under $(b,--workers))")
    Term.(
      const serve_exec_impl $ listen_arg $ exec_jobs_arg $ worker_timeout_arg)

let serve_cache_cmd =
  Cmd.v
    (Cmd.info "serve-cache" ~exits
       ~doc:
         "serve the shared unit-cache: a sharded content-addressed \
          store behind a socket, read and fed by $(b,build \
          --remote-cache) clients on any machine (objects commit before \
          their index records, so an acknowledged put is durably \
          readable)")
    Term.(
      const serve_cache_impl $ dir_arg $ listen_arg $ shards_arg
      $ cache_budget_arg $ cache_dir_arg)

let cmd =
  Cmd.group
    (Cmd.info "irm" ~exits
       ~doc:"incremental recompilation manager for MiniSML")
    [
      build_cmd;
      run_cmd;
      stats_cmd;
      deps_cmd;
      recover_cmd;
      cache_cmd;
      explain_cmd;
      profile_cmd;
      swap_cmd;
      daemon_cmd;
      serve_exec_cmd;
      serve_cache_cmd;
    ]

(* standardized exit codes (documented under EXIT STATUS in --help):
   0 success, 1 diagnostics, 2 usage errors, 3 simulated crash,
   4 worker pool death, 130 interrupted.
   cmdliner reports parse errors as Exit.cli_error (124); fold them
   into the documented usage code. *)
let () =
  let code = Cmd.eval' ~term_err:2 cmd in
  exit (if code = Cmd.Exit.cli_error then 2 else code)
