(* irm — the Incremental Recompilation Manager as a command-line tool.

     irm build sources.cm --policy cutoff --trace build.json --stats
     irm build sources.cm --jobs 4 --cache
     irm run sources.cm
     irm stats sources.cm
     irm deps sources.cm
     irm recover sources.cm
     irm cache stats | gc | clear
     irm explain sort.sml
     irm profile --json

   A group file lists source paths, one per line; dependency order is
   computed automatically (section 8 of the paper).  --jobs picks the
   worker-domain count (independent units compile concurrently; the
   resulting bin files are byte-identical to a serial build); --cache
   keeps a content-addressed store of compiled units so any previously
   seen (source, imports) pair is reused instead of recompiled.
   --trace writes a Chrome trace_event file (open in chrome://tracing
   or Perfetto); --stats prints the per-unit build report and the
   metric counters.

   Every build is recorded into the persistent profile store
   (.irm-profile, disable with --no-profile): per-unit outcomes,
   structured rebuild causes with culprit imports, phase durations and
   slot occupancy.  `irm explain UNIT` answers "why did this unit
   rebuild, what did it drag with it, and what does it usually cost";
   `irm profile` prints the last build's critical path, slowest units
   and scheduler efficiency (--json emits the smlsep-profile/1
   envelope, schema schemas/profile.schema.json).

   --fault-seed wraps the file system in the deterministic
   fault-injection layer (for exercising crash safety: a simulated
   crash exits with code 3 and an intact on-disk state; rerunning
   without faults recovers).  `irm recover` quarantines damaged bin
   files and sweeps staging files so the next build recompiles exactly
   what was lost. *)

let parse_policy = function
  | "cutoff" -> Ok Irm.Driver.Cutoff
  | "timestamp" -> Ok Irm.Driver.Timestamp
  | "selective" -> Ok Irm.Driver.Selective
  | other -> Error (`Msg (Printf.sprintf "unknown policy %S" other))

let with_manager ?fault_seed ?(fault_ops = 32) dir group f =
  let fs = Vfs.real ~dir in
  let fs =
    match fault_seed with
    | None -> fs
    | Some seed ->
      let plan = Vfs.seeded_plan ~seed ~ops:fault_ops in
      Printf.eprintf "fault injection: seed %d over %d ops — plan [%s]\n%!"
        seed fault_ops
        (String.concat "; " (List.map Vfs.fault_name plan));
      fst (Vfs.faulty ~plan fs)
  in
  let sources = Irm.Group.load fs group in
  let mgr = Irm.Driver.create fs in
  f fs mgr sources

let backend_of_jobs jobs =
  if jobs <= 1 then Irm.Driver.Serial else Irm.Driver.Parallel jobs

(* --workers beats --jobs: process isolation is an explicit opt-in *)
let backend_of ~jobs ~workers ~worker_timeout =
  if workers > 0 then
    Irm.Driver.Workers
      { (Worker.default_config ~jobs:workers ()) with
        Worker.w_timeout_s = worker_timeout }
  else backend_of_jobs jobs

let profile_of fs no_profile profile_dir =
  if no_profile then None else Some (Obs.Profile.load ~dir:profile_dir fs)

let cache_of fs enabled cache_dir budget_mb =
  if enabled then
    Some
      (Cache.create ~dir:cache_dir
         ~budget_bytes:(budget_mb * 1024 * 1024)
         fs)
  else None

(* the telemetry envelope: enable tracing when requested, run, then
   write the trace file and print the metric counters *)
let with_obs trace stats f =
  if trace <> None then Obs.Trace.enable ();
  let code = f () in
  Option.iter
    (fun path ->
      Obs.Trace.write_chrome path;
      Printf.eprintf "trace written to %s (%d spans)\n" path
        (List.length (Obs.Trace.events ())))
    trace;
  if stats then Format.printf "metrics:@.%a" Obs.Metrics.pp ();
  code

(* the machine-readable diagnostics envelope (--error-format=json),
   validated in CI against schemas/diagnostics.schema.json *)
let diagnostics_envelope ?(failed = []) ?(skipped = []) diags =
  Obs.Json.Obj
    [
      ("version", Obs.Json.String "smlsep-diag/1");
      ("failed", Obs.Json.List (List.map (fun f -> Obs.Json.String f) failed));
      ( "skipped",
        Obs.Json.List (List.map (fun f -> Obs.Json.String f) skipped) );
      ("diagnostics", Obs.Json.List (List.map Irm.Driver.diag_json diags));
    ]

let guarded ?(error_format = `Text) f =
  let report ds =
    match error_format with
    | `Text -> List.iter (fun d -> prerr_endline (Support.Diag.to_string d)) ds
    | `Json -> print_endline (Obs.Json.to_string (diagnostics_envelope ds))
  in
  match Support.Diag.guard_all f with
  | Ok code -> code
  | Error ds ->
    report ds;
    1
  | exception Pickle.Buf.Corrupt msg ->
    report [ Support.Diag.make Support.Diag.Pickle Support.Loc.dummy msg ];
    1
  | exception Dynamics.Eval.Sml_raise packet ->
    Printf.eprintf "uncaught exception: %s\n" (Dynamics.Value.to_string packet);
    1
  | exception Dynamics.Eval.Sml_exit code -> code
  | exception Vfs.Crash { crash_op; crash_path } ->
    Printf.eprintf
      "simulated crash during %s of %s — on-disk state is safe; rerun \
       (optionally `irm recover`) to converge\n"
      crash_op crash_path;
    3
  | exception Vfs.Fault { fault_op; fault_path; _ } ->
    Printf.eprintf "injected fault persisted: %s of %s failed\n" fault_op
      fault_path;
    1
  | exception Sys_error msg ->
    prerr_endline msg;
    1
  | exception Worker.Pool_down msg ->
    Printf.eprintf
      "build aborted: the compile worker pool died entirely (%s)\n" msg;
    4

let require_sources group sources =
  if sources = [] then
    Support.Diag.error Support.Diag.Manager Support.Loc.dummy
      "group file %s lists no sources" group

(* render a build's failed/skipped partitions: structured diagnostics
   with source excerpts on stderr (text) or the JSON envelope on stdout;
   returns the exit code the partitions call for *)
let report_diagnostics fs error_format (stats : Irm.Driver.stats) =
  let failed = stats.Irm.Driver.st_failed in
  let skipped = stats.Irm.Driver.st_skipped in
  (match error_format with
  | `Json ->
    print_endline
      (Obs.Json.to_string
         (diagnostics_envelope ~failed:(List.map fst failed)
            ~skipped:(List.map fst skipped)
            (List.concat_map snd failed)))
  | `Text ->
    let source_of file = fs.Vfs.fs_read file in
    List.iter
      (fun (_, ds) ->
        List.iter
          (fun d -> Format.eprintf "%a" (Support.Diag.render ~source_of) d)
          ds)
      failed;
    List.iter
      (fun (file, culprit) ->
        Format.eprintf "%s: skipped: dependency %s failed@." file culprit)
      skipped);
  if failed = [] && skipped = [] then 0 else 1

let build_units ~backend ?cache ?profile ~keep_going ~werror ?max_errors
    ~error_format fs mgr policy sources =
  let stats =
    Irm.Driver.build ~backend ?cache ?profile ~keep_going ~werror ?max_errors
      mgr ~policy ~sources
  in
  if error_format = `Text then begin
    List.iter
      (fun file ->
        match Irm.Driver.outcome_of stats file with
        | "failed" | "skipped" ->
          Printf.printf "%-24s %s  [%s]\n" file (String.make 8 '-')
            (Irm.Driver.outcome_of stats file)
        | outcome ->
          let unit_ = Irm.Driver.unit_of mgr file in
          let tag =
            match outcome with
            | "cutoff" -> "recompiled (interface unchanged)"
            | "loaded" -> "up to date"
            | "cache" -> "from cache"
            | other -> other
          in
          Printf.printf "%-24s %s  [%s]\n" file
            (Digestkit.Pid.short unit_.Pickle.Binfile.uf_static_pid)
            tag)
      stats.Irm.Driver.st_order;
    print_endline (Irm.Driver.summary_line stats)
  end;
  let code = report_diagnostics fs error_format stats in
  (stats, code)

let pp_cache_stats = function
  | Some cache -> Format.printf "cache:@.%a" Cache.pp_stats (Cache.stats cache)
  | None -> ()

let build_cmd_impl dir group policy jobs workers worker_timeout use_cache
    cache_dir budget_mb no_profile profile_dir trace stats_flag fault_seed
    fault_ops keep_going werror max_errors error_format =
  guarded ~error_format (fun () ->
      with_manager ?fault_seed ~fault_ops dir group (fun fs mgr sources ->
          require_sources group sources;
          let cache = cache_of fs use_cache cache_dir budget_mb in
          let profile = profile_of fs no_profile profile_dir in
          with_obs trace stats_flag (fun () ->
              let stats, code =
                build_units
                  ~backend:(backend_of ~jobs ~workers ~worker_timeout)
                  ?cache ?profile ~keep_going ~werror ?max_errors ~error_format
                  fs mgr policy sources
              in
              if stats_flag then begin
                Format.printf "%a" Irm.Driver.pp_report stats;
                pp_cache_stats cache
              end;
              code)))

let run_cmd_impl dir group policy jobs workers worker_timeout use_cache
    cache_dir budget_mb no_profile profile_dir trace stats_flag fault_seed
    fault_ops keep_going werror max_errors error_format =
  guarded ~error_format (fun () ->
      with_manager ?fault_seed ~fault_ops dir group (fun fs mgr sources ->
          require_sources group sources;
          let cache = cache_of fs use_cache cache_dir budget_mb in
          let profile = profile_of fs no_profile profile_dir in
          with_obs trace stats_flag (fun () ->
              let stats =
                Irm.Driver.build
                  ~backend:(backend_of ~jobs ~workers ~worker_timeout)
                  ?cache ?profile ~keep_going ~werror ?max_errors mgr ~policy
                  ~sources
              in
              let code = report_diagnostics fs error_format stats in
              (* failed or skipped units have no bin to execute — report
                 the diagnostics and stop before running anything *)
              if code = 0 then ignore (Irm.Driver.run mgr ~sources);
              if stats_flag then begin
                Format.printf "%a" Irm.Driver.pp_report stats;
                pp_cache_stats cache
              end;
              code)))

let stats_cmd_impl dir group policy jobs workers worker_timeout use_cache
    cache_dir budget_mb no_profile profile_dir trace json keep_going werror
    max_errors =
  guarded (fun () ->
      with_manager dir group (fun fs mgr sources ->
          require_sources group sources;
          let cache = cache_of fs use_cache cache_dir budget_mb in
          let profile = profile_of fs no_profile profile_dir in
          with_obs trace false (fun () ->
              let stats =
                Irm.Driver.build
                  ~backend:(backend_of ~jobs ~workers ~worker_timeout)
                  ?cache ?profile ~keep_going ~werror ?max_errors mgr ~policy
                  ~sources
              in
              if json then
                print_endline
                  (Obs.Json.to_string
                     (Obs.Json.Obj
                        [
                          ("build", Irm.Driver.report_json stats);
                          ("metrics", Obs.Metrics.to_json ());
                        ]))
              else begin
                Format.printf "%a" Irm.Driver.pp_report stats;
                Format.printf "metrics:@.%a" Obs.Metrics.pp ()
              end;
              if stats.Irm.Driver.st_failed = [] then 0 else 1)))

let deps_cmd_impl dir group dot =
  guarded (fun () ->
      with_manager dir group (fun fs _mgr sources ->
          let parsed =
            List.map
              (fun file ->
                match fs.Vfs.fs_read file with
                | Some src -> (file, Lang.Parser.parse_unit ~file src)
                | None ->
                  Support.Diag.error Support.Diag.Manager Support.Loc.dummy
                    "source file %s not found" file)
              sources
          in
          let graph = Depend.Depgraph.build parsed in
          let order = Depend.Depgraph.topological graph in
          if dot then begin
            print_endline "digraph deps {";
            print_endline "  rankdir=BT;";
            List.iter
              (fun file ->
                let node = Depend.Depgraph.node graph file in
                if node.Depend.Depgraph.n_deps = [] then
                  Printf.printf "  %S;\n" file
                else
                  List.iter
                    (fun dep -> Printf.printf "  %S -> %S;\n" file dep)
                    node.Depend.Depgraph.n_deps)
              order;
            print_endline "}"
          end
          else
            List.iter
              (fun file ->
                let node = Depend.Depgraph.node graph file in
                Printf.printf "%s: %s\n" file
                  (String.concat " " node.Depend.Depgraph.n_deps))
              order;
          0))

let recover_cmd_impl dir group =
  guarded (fun () ->
      with_manager dir group (fun _fs mgr sources ->
          require_sources group sources;
          let report = Irm.Driver.recover mgr ~sources in
          Format.printf "%a" Irm.Driver.pp_recovery report;
          0))

let cache_cmd_impl dir cache_dir budget_mb action =
  guarded (fun () ->
      let fs = Vfs.real ~dir in
      let cache =
        Cache.create ~dir:cache_dir
          ~budget_bytes:(budget_mb * 1024 * 1024)
          fs
      in
      (match action with
      | `Stats -> ()
      | `Gc ->
        let report = Cache.gc cache in
        Format.printf "gc:@.%a" Cache.pp_gc_report report
      | `Clear -> Cache.clear cache);
      Format.printf "%a" Cache.pp_stats (Cache.stats cache);
      0)

(* ------------------------------------------------------------------ *)
(* Build introspection: explain and profile                            *)
(* ------------------------------------------------------------------ *)

module P = Obs.Profile

(* units of the last build that [unit_] dragged along: dependents whose
   recorded cause blames it, and units skipped because it failed *)
let poisoned_by b unit_ =
  List.filter_map
    (fun v ->
      if String.equal v.P.up_unit unit_ then None
      else if List.exists (String.equal unit_) v.P.up_culprits then
        Some
          ( v.P.up_unit,
            if String.equal v.P.up_outcome "skipped" then "skipped"
            else Option.value ~default:"rebuilt" v.P.up_cause )
      else None)
    b.P.bp_units

let opt_json of_value = function
  | Some v -> of_value v
  | None -> Obs.Json.Null

let history_json = function
  | None -> Obs.Json.Null
  | Some a ->
    Obs.Json.Obj
      [
        ("builds", Obs.Json.Int a.P.ag_builds);
        ("ewma_s", Obs.Json.Float a.P.ag_ewma_s);
        ("max_s", Obs.Json.Float a.P.ag_max_s);
        ("last_s", Obs.Json.Float a.P.ag_last_s);
        ( "phases",
          Obs.Json.Obj
            (List.map (fun (n, s) -> (n, Obs.Json.Float s)) a.P.ag_phases) );
      ]

let explain_cmd_impl dir profile_dir unit_ json =
  guarded (fun () ->
      let fs = Vfs.real ~dir in
      let p = P.load ~dir:profile_dir fs in
      match P.last p with
      | None ->
        prerr_endline
          "no recorded builds: run `irm build` (without --no-profile) first";
        1
      | Some b -> (
        match P.find_unit b unit_ with
        | None ->
          Printf.eprintf "unit %s is not part of the last recorded build \
                          (build %d)\n"
            unit_ b.P.bp_id;
          1
        | Some u ->
          let poisoned = poisoned_by b unit_ in
          let agg = P.aggregate p unit_ in
          if json then
            print_endline
              (Obs.Json.to_canonical_string
                 (Obs.Json.Obj
                    [
                      ("version", Obs.Json.String "smlsep-profile/1");
                      ("unit", Obs.Json.String unit_);
                      ("build", Obs.Json.Int b.P.bp_id);
                      ("policy", Obs.Json.String b.P.bp_policy);
                      ("outcome", Obs.Json.String u.P.up_outcome);
                      ( "cause",
                        opt_json (fun c -> Obs.Json.String c) u.P.up_cause );
                      ( "culprits",
                        Obs.Json.List
                          (List.map
                             (fun c -> Obs.Json.String c)
                             u.P.up_culprits) );
                      ("wall_s", Obs.Json.Float u.P.up_wall_s);
                      ( "phases",
                        Obs.Json.Obj
                          (List.map
                             (fun (n, s) -> (n, Obs.Json.Float s))
                             u.P.up_phases) );
                      ( "imports",
                        Obs.Json.Obj
                          (List.map
                             (fun (d, pid) -> (d, Obs.Json.String pid))
                             u.P.up_imports) );
                      ( "poisoned",
                        Obs.Json.List
                          (List.map
                             (fun (n, via) ->
                               Obs.Json.Obj
                                 [
                                   ("unit", Obs.Json.String n);
                                   ("via", Obs.Json.String via);
                                 ])
                             poisoned) );
                      ("history", history_json agg);
                    ]))
          else begin
            Printf.printf "%s  (build %d, %s policy, %s)\n" unit_ b.P.bp_id
              b.P.bp_policy b.P.bp_backend;
            Printf.printf "  outcome   %s\n" u.P.up_outcome;
            (match u.P.up_cause with
            | Some c ->
              Printf.printf "  cause     %s%s\n" c
                (match u.P.up_culprits with
                | [] -> ""
                | cs -> "  (" ^ String.concat ", " cs ^ ")")
            | None -> print_endline "  cause     up to date");
            Printf.printf "  wall      %.2f ms\n" (1000. *. u.P.up_wall_s);
            (match u.P.up_phases with
            | [] -> ()
            | phases ->
              Printf.printf "  phases    %s\n"
                (String.concat ", "
                   (List.map
                      (fun (n, s) -> Printf.sprintf "%s %.2f ms" n (1000. *. s))
                      phases)));
            (match agg with
            | Some a ->
              Printf.printf
                "  history   %d compiles, ewma %.2f ms, max %.2f ms\n"
                a.P.ag_builds
                (1000. *. a.P.ag_ewma_s)
                (1000. *. a.P.ag_max_s)
            | None -> ());
            (match poisoned with
            | [] -> print_endline "  poisoned  nothing"
            | ps ->
              Printf.printf "  poisoned  %s\n"
                (String.concat ", "
                   (List.map
                      (fun (n, via) -> Printf.sprintf "%s (%s)" n via)
                      ps)))
          end;
          0))

let profile_envelope p b ~top =
  let open Obs.Json in
  let count outcome =
    List.length
      (List.filter
         (fun u -> String.equal u.P.up_outcome outcome)
         b.P.bp_units)
  in
  let causes =
    List.fold_left
      (fun acc u ->
        match u.P.up_cause with
        | None -> acc
        | Some c -> (
          match List.assoc_opt c acc with
          | Some n -> (c, n + 1) :: List.remove_assoc c acc
          | None -> (c, 1) :: acc))
      [] b.P.bp_units
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let compiled =
    List.filter
      (fun u ->
        String.equal u.P.up_outcome "recompiled"
        || String.equal u.P.up_outcome "cutoff")
      b.P.bp_units
  in
  let top_units =
    List.filteri
      (fun i _ -> i < top)
      (List.sort (fun a b -> compare b.P.up_wall_s a.P.up_wall_s) compiled)
  in
  let unit_brief u =
    Obj [ ("unit", String u.P.up_unit); ("wall_s", Float u.P.up_wall_s) ]
  in
  let unit_json u =
    Obj
      [
        ("unit", String u.P.up_unit);
        ("outcome", String u.P.up_outcome);
        ("cause", opt_json (fun c -> String c) u.P.up_cause);
        ("culprits", List (List.map (fun c -> String c) u.P.up_culprits));
        ("wall_s", Float u.P.up_wall_s);
        ("phases", Obj (List.map (fun (n, s) -> (n, Float s)) u.P.up_phases));
      ]
  in
  ( causes,
    top_units,
    Obj
      [
        ("version", String "smlsep-profile/1");
        ( "build",
          Obj
            [
              ("id", Int b.P.bp_id);
              ("policy", String b.P.bp_policy);
              ("backend", String b.P.bp_backend);
              ("wall_s", Float b.P.bp_wall_s);
              ("jobs", Int b.P.bp_jobs);
              ("efficiency", opt_json (fun e -> Float e) (P.efficiency b));
              ( "counts",
                Obj
                  [
                    ("recompiled", Int (count "recompiled"));
                    ("cutoff", Int (count "cutoff"));
                    ("cache", Int (count "cache"));
                    ("loaded", Int (count "loaded"));
                    ("failed", Int (count "failed"));
                    ("skipped", Int (count "skipped"));
                  ] );
            ] );
        ("causes", Obj (List.map (fun (c, n) -> (c, Int n)) causes));
        ("critical_path", List (List.map unit_brief (P.critical_path b)));
        ("top", List (List.map unit_brief top_units));
        ("units", List (List.map unit_json b.P.bp_units));
        ( "store",
          Obj
            [
              ("builds", Int (List.length (P.builds p)));
              ("bytes", Int (P.store_bytes p));
            ] );
      ] )

let profile_cmd_impl dir profile_dir json top =
  guarded (fun () ->
      let fs = Vfs.real ~dir in
      let p = P.load ~dir:profile_dir fs in
      match P.last p with
      | None ->
        prerr_endline
          "no recorded builds: run `irm build` (without --no-profile) first";
        1
      | Some b ->
        let causes, top_units, envelope = profile_envelope p b ~top in
        if json then print_endline (Obs.Json.to_canonical_string envelope)
        else begin
          Printf.printf "build %d  (%s policy, %s, %.1f ms wall, %d jobs)\n"
            b.P.bp_id b.P.bp_policy b.P.bp_backend
            (1000. *. b.P.bp_wall_s)
            b.P.bp_jobs;
          (match P.efficiency b with
          | Some e -> Printf.printf "  efficiency     %.0f%% of slot time busy\n" (100. *. e)
          | None -> ());
          (match causes with
          | [] -> print_endline "  causes         nothing rebuilt"
          | cs ->
            Printf.printf "  causes         %s\n"
              (String.concat ", "
                 (List.map (fun (c, n) -> Printf.sprintf "%s %d" c n) cs)));
          (match P.critical_path b with
          | [] -> ()
          | path ->
            Printf.printf "  critical path  %s  (%.2f ms)\n"
              (String.concat " -> " (List.map (fun u -> u.P.up_unit) path))
              (1000.
              *. List.fold_left (fun acc u -> acc +. u.P.up_wall_s) 0. path));
          if top_units <> [] then begin
            print_endline "  slowest units:";
            List.iter
              (fun u ->
                Printf.printf "    %-28s %8.2f ms\n" u.P.up_unit
                  (1000. *. u.P.up_wall_s))
              top_units
          end;
          Printf.printf "  store          %d builds retained, %d bytes\n"
            (List.length (P.builds p))
            (P.store_bytes p)
        end;
        0)

open Cmdliner

let dir_arg =
  Arg.(
    value & opt dir "."
    & info [ "C"; "directory" ] ~docv:"DIR" ~doc:"Project root directory.")

let group_arg =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"GROUP" ~doc:"Group file listing the source files.")

let policy_arg =
  let policy_conv =
    Arg.conv ~docv:"POLICY"
      ( parse_policy,
        fun ppf p -> Format.pp_print_string ppf (Irm.Driver.policy_name p) )
  in
  Arg.(
    value & opt policy_conv Irm.Driver.Cutoff
    & info [ "p"; "policy" ] ~docv:"POLICY"
        ~doc:
          "Recompilation policy: $(b,cutoff) (interface pids), \
           $(b,selective) (per-module interface pids) or $(b,timestamp) \
           (classical make).")

let jobs_arg =
  Arg.(
    value
    & opt int (Sched.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Number of worker domains compiling independent units \
           concurrently (default: the machine's recommended domain \
           count).  $(docv) <= 1 builds serially; the bin files are \
           byte-identical either way.")

let workers_arg =
  Arg.(
    value & opt int 0
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Compile every unit in one of $(docv) supervised child \
           $(i,processes) instead of in-process domains (overrides \
           $(b,--jobs)).  A compiler crash or hang then costs that unit \
           alone: crashed units are retried on a fresh worker and \
           quarantined as $(b,E0701) after repeated crashes, hung units \
           are killed at $(b,--worker-timeout) and failed as \
           $(b,E0702).  Bin files are byte-identical to an in-process \
           build.  0 (the default) disables worker processes.")

let worker_timeout_arg =
  Arg.(
    value & opt float 30.
    & info [ "worker-timeout" ] ~docv:"SEC"
        ~doc:
          "Wall-clock budget per unit compile under $(b,--workers); a \
           child exceeding it is killed and the unit fails with \
           $(b,E0702) (default 30s).")

let cache_flag_arg =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:
          "Reuse compiled units from the content-addressed unit cache \
           (keyed by source, import interface pids and compiler \
           version) and store every fresh compile into it.")

let cache_dir_arg =
  Arg.(
    value & opt string Cache.default_dir
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Cache directory, relative to the project root.")

let cache_budget_arg =
  Arg.(
    value
    & opt int (Cache.default_budget / (1024 * 1024))
    & info [ "cache-budget" ] ~docv:"MIB"
        ~doc:
          "Cache size budget in MiB; least-recently-used units are \
           evicted beyond it.")

let profile_dir_arg =
  Arg.(
    value & opt string Obs.Profile.default_dir
    & info [ "profile-dir" ] ~docv:"DIR"
        ~doc:"Profile store directory, relative to the project root.")

let no_profile_arg =
  Arg.(
    value & flag
    & info [ "no-profile" ]
        ~doc:
          "Do not record this build into the persistent profile store \
           (and forgo eviction detection, $(b,irm explain) and \
           $(b,irm profile) data for it).")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"OUT"
        ~doc:
          "Write a Chrome trace_event JSON file of the build's phase \
           spans to $(docv) (open in chrome://tracing or Perfetto).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print the per-unit build report and the metric counters.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the report as JSON instead of text.")

let fault_seed_arg =
  Arg.(
    value & opt (some int) None
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:
          "Inject deterministic file-system faults from the plan seeded \
           by $(docv) (crash-safety testing).  A simulated crash exits \
           with code 3, leaving a safe on-disk state; rerun without this \
           flag to recover.")

let fault_ops_arg =
  Arg.(
    value & opt int 32
    & info [ "fault-ops" ] ~docv:"N"
        ~doc:
          "Spread the injection points of $(b,--fault-seed) over the \
           first $(docv) operations per class (default 32).")

let keep_going_arg =
  Arg.(
    value & flag
    & info [ "k"; "keep-going" ]
        ~doc:
          "Do not stop at the first broken unit: collect structured \
           diagnostics per unit, skip only the units downstream of a \
           failure (poison propagation), and still build every unit not \
           reachable from one.  The failed/skipped partitions and the \
           diagnostics are deterministic — identical for any \
           $(b,--jobs).")

let werror_arg =
  Arg.(
    value & flag
    & info [ "warn-error" ]
        ~doc:
          "Promote warnings (nonexhaustive match, redundant rule, …) to \
           errors.")

let max_errors_arg =
  Arg.(
    value & opt (some int) None
    & info [ "max-errors" ] ~docv:"N"
        ~doc:
          "Stop collecting after $(docv) errors per unit (default \
           64).")

let error_format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "error-format" ] ~docv:"FMT"
        ~doc:
          "How to report diagnostics: $(b,text) (human-readable, with \
           source excerpts, on stderr) or $(b,json) (one machine-readable \
           envelope on stdout, schema $(i,schemas/diagnostics.schema.json)).")

let exits =
  [
    Cmd.Exit.info 0 ~doc:"on success.";
    Cmd.Exit.info 1
      ~doc:"on reported diagnostics (compile, link or runtime errors).";
    Cmd.Exit.info 2 ~doc:"on command-line usage errors.";
    Cmd.Exit.info 3
      ~doc:
        "on a simulated crash under $(b,--fault-seed); the on-disk state \
         is safe and a rerun converges.";
    Cmd.Exit.info 4
      ~doc:
        "when the worker pool under $(b,--workers) died entirely \
         (workers kept dying before doing any work) and the build was \
         aborted.";
  ]

let build_cmd =
  Cmd.v
    (Cmd.info "build" ~exits
       ~doc:"bring every unit of the group up to date")
    Term.(
      const build_cmd_impl $ dir_arg $ group_arg $ policy_arg $ jobs_arg
      $ workers_arg $ worker_timeout_arg $ cache_flag_arg $ cache_dir_arg
      $ cache_budget_arg $ no_profile_arg $ profile_dir_arg $ trace_arg
      $ stats_arg $ fault_seed_arg $ fault_ops_arg $ keep_going_arg
      $ werror_arg $ max_errors_arg $ error_format_arg)

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~exits
       ~doc:"build, then execute all units in dependency order")
    Term.(
      const run_cmd_impl $ dir_arg $ group_arg $ policy_arg $ jobs_arg
      $ workers_arg $ worker_timeout_arg $ cache_flag_arg $ cache_dir_arg
      $ cache_budget_arg $ no_profile_arg $ profile_dir_arg $ trace_arg
      $ stats_arg $ fault_seed_arg $ fault_ops_arg $ keep_going_arg
      $ werror_arg $ max_errors_arg $ error_format_arg)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~exits
       ~doc:"build, then print the per-unit report and metric counters")
    Term.(
      const stats_cmd_impl $ dir_arg $ group_arg $ policy_arg $ jobs_arg
      $ workers_arg $ worker_timeout_arg $ cache_flag_arg $ cache_dir_arg
      $ cache_budget_arg $ no_profile_arg $ profile_dir_arg $ trace_arg
      $ json_arg $ keep_going_arg $ werror_arg $ max_errors_arg)

let cache_action_arg =
  let actions = [ ("stats", `Stats); ("gc", `Gc); ("clear", `Clear) ] in
  Arg.(
    required
    & pos 0 (some (enum actions)) None
    & info [] ~docv:"ACTION"
        ~doc:
          "$(b,stats) prints occupancy and counters, $(b,gc) re-enforces \
           the size budget, $(b,clear) drops every entry.")

let cache_cmd =
  Cmd.v
    (Cmd.info "cache" ~exits
       ~doc:"inspect or maintain the content-addressed unit cache")
    Term.(
      const cache_cmd_impl $ dir_arg $ cache_dir_arg $ cache_budget_arg
      $ cache_action_arg)

let dot_arg =
  Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of text.")

let deps_cmd =
  Cmd.v
    (Cmd.info "deps" ~exits ~doc:"print the computed dependency graph")
    Term.(const deps_cmd_impl $ dir_arg $ group_arg $ dot_arg)

let recover_cmd =
  Cmd.v
    (Cmd.info "recover" ~exits
       ~doc:
         "quarantine damaged bin files and sweep interrupted-commit \
          staging files, so the next build recompiles exactly what was \
          lost")
    Term.(const recover_cmd_impl $ dir_arg $ group_arg)

let unit_arg =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"UNIT"
        ~doc:"The unit's source path, as listed in the group file.")

let top_arg =
  Arg.(
    value & opt int 5
    & info [ "top" ] ~docv:"N"
        ~doc:"How many of the slowest compiled units to list (default 5).")

let explain_cmd =
  Cmd.v
    (Cmd.info "explain" ~exits
       ~doc:
         "explain a unit's last build: why it was recompiled (with the \
          culprit imports), what it poisoned downstream, its phase \
          timings and its compile-time history")
    Term.(
      const explain_cmd_impl $ dir_arg $ profile_dir_arg $ unit_arg $ json_arg)

let profile_cmd =
  Cmd.v
    (Cmd.info "profile" ~exits
       ~doc:
         "report on the last recorded build: critical path, slowest \
          units, scheduler efficiency, and the rebuild-cause breakdown \
          ($(b,--json) emits the smlsep-profile/1 envelope)")
    Term.(const profile_cmd_impl $ dir_arg $ profile_dir_arg $ json_arg $ top_arg)

let cmd =
  Cmd.group
    (Cmd.info "irm" ~exits
       ~doc:"incremental recompilation manager for MiniSML")
    [
      build_cmd;
      run_cmd;
      stats_cmd;
      deps_cmd;
      recover_cmd;
      cache_cmd;
      explain_cmd;
      profile_cmd;
    ]

(* standardized exit codes (documented under EXIT STATUS in --help):
   0 success, 1 diagnostics, 2 usage errors, 3 simulated crash,
   4 worker pool death.
   cmdliner reports parse errors as Exit.cli_error (124); fold them
   into the documented usage code. *)
let () =
  let code = Cmd.eval' ~term_err:2 cmd in
  exit (if code = Cmd.Exit.cli_error then 2 else code)
