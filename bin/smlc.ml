(* smlc — compile a single MiniSML compilation unit to a bin file,
   optionally loading previously compiled bin files as imports, and
   optionally executing the result.

     smlc foo.sml --import lib.sml.bin --run *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  content

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let compile_one source_path import_paths run verbose trace stats =
  if trace <> None then Obs.Trace.enable ();
  let session = Sepcomp.Compile.new_session () in
  let imports =
    List.map
      (fun path -> Sepcomp.Compile.load session (read_file path))
      import_paths
  in
  let source = read_file source_path in
  let warn loc msg =
    Printf.eprintf "%s: warning: %s\n" (Support.Loc.to_string loc) msg
  in
  let unit_ =
    Sepcomp.Compile.compile ~warn session ~name:source_path ~source ~imports
  in
  let bin_path = source_path ^ ".bin" in
  write_file bin_path (Sepcomp.Compile.save session unit_);
  if verbose then begin
    Printf.printf "%s\n" bin_path;
    Printf.printf "  static pid: %s\n"
      (Digestkit.Pid.to_hex unit_.Pickle.Binfile.uf_static_pid);
    List.iter
      (fun (name, pid) ->
        Printf.printf "  export %s @ %s\n"
          (Support.Symbol.name name)
          (Digestkit.Pid.short pid))
      unit_.Pickle.Binfile.uf_codeunit.Link.Codeunit.cu_exports;
    List.iter
      (fun (name, pid) ->
        Printf.printf "  compiled against %s @ %s\n" name
          (Digestkit.Pid.short pid))
      unit_.Pickle.Binfile.uf_import_statics
  end;
  if run then begin
    let dynenv =
      List.fold_left
        (fun dynenv import -> Sepcomp.Compile.execute import dynenv)
        Link.Linker.empty imports
    in
    ignore (Sepcomp.Compile.execute unit_ dynenv)
  end;
  Option.iter
    (fun path ->
      Obs.Trace.write_chrome path;
      Printf.eprintf "trace written to %s (%d spans)\n" path
        (List.length (Obs.Trace.events ())))
    trace;
  if stats then Format.printf "metrics:@.%a" Obs.Metrics.pp ();
  0

let main source_path import_paths run verbose trace stats =
  match
    Support.Diag.guard (fun () ->
        compile_one source_path import_paths run verbose trace stats)
  with
  | Ok code -> code
  | Error d ->
    prerr_endline (Support.Diag.to_string d);
    1
  | exception Pickle.Buf.Corrupt msg ->
    prerr_endline
      (Support.Diag.to_string
         {
           Support.Diag.phase = Support.Diag.Pickle;
           loc = Support.Loc.dummy;
           message = msg;
         });
    1
  | exception Dynamics.Eval.Sml_raise packet ->
    Printf.eprintf "uncaught exception: %s\n" (Dynamics.Value.to_string packet);
    1
  | exception Dynamics.Eval.Sml_exit code -> code
  | exception Sys_error msg ->
    prerr_endline msg;
    1

open Cmdliner

let source_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE" ~doc:"MiniSML source file.")

let imports_arg =
  Arg.(
    value & opt_all file []
    & info [ "i"; "import" ] ~docv:"BIN"
        ~doc:"Bin file of an already-compiled unit this one imports. Repeatable.")

let run_arg =
  Arg.(value & flag & info [ "run" ] ~doc:"Execute the unit after compiling it.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print pids and imports.")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"OUT"
        ~doc:
          "Write a Chrome trace_event JSON file of the compile's phase \
           spans to $(docv) (open in chrome://tracing or Perfetto).")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print the metric counters.")

let cmd =
  let doc = "compile a MiniSML compilation unit (separate compilation)" in
  Cmd.v
    (Cmd.info "smlc" ~doc)
    Term.(
      const main $ source_arg $ imports_arg $ run_arg $ verbose_arg
      $ trace_arg $ stats_arg)

let () = exit (Cmd.eval' cmd)
