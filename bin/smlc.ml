(* smlc — compile a single MiniSML compilation unit to a bin file,
   optionally loading previously compiled bin files as imports, and
   optionally executing the result.

     smlc foo.sml --import lib.sml.bin --run
     smlc foo.sml --cache

   With --cache, the unit's content address (source × import interface
   pids × compiler version) is looked up in the unit cache first; a hit
   writes the cached bin file without compiling, a miss compiles and
   stores the result. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  content

(* atomic: a crash mid-write must never leave a torn bin file under the
   final name (same write-temp/rename protocol as Vfs.real) *)
let write_file path content =
  let tmp = path ^ ".#tmp" in
  let oc = open_out_bin tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

(* compile in a supervised child process (--workers): the job carries
   the source and the import bins, the child replies with the bin bytes
   — byte-identical to the in-process compile, but a compiler crash or
   hang costs an E0701/E0702 diagnostic instead of the process *)
let compile_supervised ~worker_timeout ~werror ~max_errors ~source_path ~source
    ~import_bins =
  let job =
    {
      Irm.Wire.j_name = source_path;
      j_source = source;
      j_closure = import_bins;
      j_imports = List.map fst import_bins;
      j_collect = true;
      j_werror = werror;
      j_limit = max_errors;
      j_build = 0;
      j_split = false;
    }
  in
  let pool =
    Worker.create
      { (Worker.default_config ~jobs:1 ()) with Worker.w_timeout_s = worker_timeout }
      (Irm.Wire.proto ())
  in
  Fun.protect ~finally:(fun () -> Worker.shutdown pool) @@ fun () ->
  Worker.submit pool ~id:source_path (Irm.Wire.encode_job job);
  match Worker.next pool with
  | _, Ok payload -> (Irm.Wire.decode_result payload).Irm.Wire.r_bytes
  | _, Error exn -> raise exn

let compile_one diags source_path import_paths run verbose use_cache cache_dir
    trace stats workers worker_timeout werror max_errors =
  if trace <> None then Obs.Trace.enable ();
  let session = Sepcomp.Compile.new_session () in
  let import_bins =
    List.map (fun path -> (path, read_file path)) import_paths
  in
  let imports =
    List.map
      (fun (_, bytes) -> Sepcomp.Compile.load session bytes)
      import_bins
  in
  let source = read_file source_path in
  let cache =
    if use_cache then Some (Cache.create ~dir:cache_dir (Vfs.real ~dir:"."))
    else None
  in
  let key =
    Option.map
      (fun _ ->
        Cache.key ~version:Pickle.Binfile.magic ~name:source_path ~source
          ~import_pids:
            (List.map (fun u -> u.Pickle.Binfile.uf_static_pid) imports))
      cache
  in
  let cached =
    match (cache, key) with
    | Some c, Some k -> (
      match Cache.find c k with
      | None -> None
      | Some bytes -> (
        (* a corrupt entry is a miss, never an error *)
        match Sepcomp.Compile.load session bytes with
        | unit_ -> Some (unit_, bytes)
        | exception Pickle.Buf.Corrupt _ ->
          Cache.invalidate c k;
          None))
    | _ -> None
  in
  let unit_, bytes =
    match cached with
    | Some (unit_, bytes) ->
      if verbose then Printf.printf "%s: from cache\n" source_path;
      (unit_, bytes)
    | None ->
      let unit_, bytes =
        if workers then begin
          let bytes =
            compile_supervised ~worker_timeout ~werror ~max_errors
              ~source_path ~source ~import_bins
          in
          (Sepcomp.Compile.load session bytes, bytes)
        end
        else
          let unit_ =
            Sepcomp.Compile.compile ~diags session ~name:source_path ~source
              ~imports
          in
          (unit_, Sepcomp.Compile.save session unit_)
      in
      (match (cache, key) with
      | Some c, Some k -> Cache.store c k bytes
      | _ -> ());
      (unit_, bytes)
  in
  let bin_path = source_path ^ ".bin" in
  write_file bin_path bytes;
  if verbose then begin
    Printf.printf "%s\n" bin_path;
    Printf.printf "  static pid: %s\n"
      (Digestkit.Pid.to_hex unit_.Pickle.Binfile.uf_static_pid);
    List.iter
      (fun (name, pid) ->
        Printf.printf "  export %s @ %s\n"
          (Support.Symbol.name name)
          (Digestkit.Pid.short pid))
      unit_.Pickle.Binfile.uf_codeunit.Link.Codeunit.cu_exports;
    List.iter
      (fun (name, pid) ->
        Printf.printf "  compiled against %s @ %s\n" name
          (Digestkit.Pid.short pid))
      unit_.Pickle.Binfile.uf_import_statics
  end;
  if run then begin
    let dynenv =
      List.fold_left
        (fun dynenv import -> Sepcomp.Compile.execute import dynenv)
        Link.Linker.empty imports
    in
    ignore (Sepcomp.Compile.execute unit_ dynenv)
  end;
  Option.iter
    (fun path ->
      Obs.Trace.write_chrome path;
      Printf.eprintf "trace written to %s (%d spans)\n" path
        (List.length (Obs.Trace.events ())))
    trace;
  if stats then Format.printf "metrics:@.%a" Obs.Metrics.pp ();
  0

(* diagnostics rendering: human-readable with source excerpts on stderr,
   or the machine-readable envelope (schemas/diagnostics.schema.json) on
   stdout.  In json mode the envelope is always printed, even when empty,
   so callers can parse stdout unconditionally. *)
let report_diags source_path error_format ~failed ds =
  match error_format with
  | `Json ->
    print_endline
      (Obs.Json.to_string
         (Obs.Json.Obj
            [
              ("version", Obs.Json.String "smlsep-diag/1");
              ( "failed",
                Obs.Json.List
                  (if failed then [ Obs.Json.String source_path ] else []) );
              ("skipped", Obs.Json.List []);
              ( "diagnostics",
                Obs.Json.List (List.map Irm.Driver.diag_json ds) );
            ]))
  | `Text ->
    let source_of file =
      if Sys.file_exists file then Some (read_file file) else None
    in
    List.iter
      (fun d -> Format.eprintf "%a" (Support.Diag.render ~source_of) d)
      ds

let main source_path import_paths run verbose use_cache cache_dir trace stats
    workers worker_timeout werror max_errors error_format =
  (* the whole compile runs under one collector: the front end recovers
     and every diagnostic of the unit is reported in a single run *)
  let diags =
    Support.Diag.collector ?limit:max_errors ~werror ~unit_name:source_path ()
  in
  match
    Support.Diag.guard_all (fun () ->
        compile_one diags source_path import_paths run verbose use_cache
          cache_dir trace stats workers worker_timeout werror max_errors)
  with
  | Ok code ->
    (* surviving diagnostics are warnings/notes *)
    report_diags source_path error_format ~failed:false
      (Support.Diag.diags diags);
    code
  | Error ds ->
    report_diags source_path error_format ~failed:true ds;
    1
  | exception Pickle.Buf.Corrupt msg ->
    report_diags source_path error_format ~failed:true
      [ Support.Diag.make Support.Diag.Pickle Support.Loc.dummy msg ];
    1
  | exception Dynamics.Eval.Sml_raise packet ->
    Printf.eprintf "uncaught exception: %s\n" (Dynamics.Value.to_string packet);
    1
  | exception Dynamics.Eval.Sml_exit code -> code
  | exception Sys_error msg ->
    prerr_endline msg;
    1
  | exception Worker.Pool_down msg ->
    Printf.eprintf
      "compile aborted: the worker pool died entirely (%s)\n" msg;
    4

open Cmdliner

let source_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE" ~doc:"MiniSML source file.")

let imports_arg =
  Arg.(
    value & opt_all file []
    & info [ "i"; "import" ] ~docv:"BIN"
        ~doc:"Bin file of an already-compiled unit this one imports. Repeatable.")

let run_arg =
  Arg.(value & flag & info [ "run" ] ~doc:"Execute the unit after compiling it.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print pids and imports.")

let cache_flag_arg =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:
          "Look the unit up in the content-addressed unit cache before \
           compiling, and store fresh compiles into it.")

let cache_dir_arg =
  Arg.(
    value & opt string Cache.default_dir
    & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Cache directory.")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"OUT"
        ~doc:
          "Write a Chrome trace_event JSON file of the compile's phase \
           spans to $(docv) (open in chrome://tracing or Perfetto).")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print the metric counters.")

let workers_arg =
  Arg.(
    value & flag
    & info [ "workers" ]
        ~doc:
          "Compile in a supervised child process: a compiler crash is \
           reported as $(b,E0701) and a hang is killed at \
           $(b,--worker-timeout) and reported as $(b,E0702), instead of \
           taking the process down.  The bin file is byte-identical to \
           an in-process compile.")

let worker_timeout_arg =
  Arg.(
    value & opt float 30.
    & info [ "worker-timeout" ] ~docv:"SEC"
        ~doc:
          "Wall-clock budget for the compile under $(b,--workers) \
           (default 30s).")

let werror_arg =
  Arg.(
    value & flag
    & info [ "warn-error" ]
        ~doc:
          "Promote warnings (nonexhaustive match, redundant rule, …) to \
           errors.")

let max_errors_arg =
  Arg.(
    value & opt (some int) None
    & info [ "max-errors" ] ~docv:"N"
        ~doc:"Stop collecting after $(docv) errors (default 64).")

let error_format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "error-format" ] ~docv:"FMT"
        ~doc:
          "How to report diagnostics: $(b,text) (human-readable, with \
           source excerpts, on stderr) or $(b,json) (one machine-readable \
           envelope on stdout, schema $(i,schemas/diagnostics.schema.json)).")

let exits =
  [
    Cmd.Exit.info 0 ~doc:"on success.";
    Cmd.Exit.info 1
      ~doc:"on reported diagnostics (compile, link or runtime errors).";
    Cmd.Exit.info 2 ~doc:"on command-line usage errors.";
    Cmd.Exit.info 3 ~doc:"on a simulated crash (fault injection).";
    Cmd.Exit.info 4
      ~doc:
        "when the worker pool under $(b,--workers) died entirely and \
         the compile was aborted.";
  ]

let cmd =
  let doc = "compile a MiniSML compilation unit (separate compilation)" in
  Cmd.v
    (Cmd.info "smlc" ~doc ~exits)
    Term.(
      const main $ source_arg $ imports_arg $ run_arg $ verbose_arg
      $ cache_flag_arg $ cache_dir_arg $ trace_arg $ stats_arg $ workers_arg
      $ worker_timeout_arg $ werror_arg $ max_errors_arg $ error_format_arg)

(* standardized exit codes (documented under EXIT STATUS in --help):
   cmdliner reports parse errors as Exit.cli_error (124); fold them into
   the documented usage code. *)
let () =
  let code = Cmd.eval' ~term_err:2 cmd in
  exit (if code = Cmd.Exit.cli_error then 2 else code)
