(* repl — the interactive read-eval-print loop, built on the visible
   compiler.  Compiled units can be brought into the session with
   the :use directive:

     $ repl
     - val x = 21 * 2;
     val x = 42 : int
     - :use lib.sml.bin
     - Lib.helper x;

   Input ends at a line whose last non-space character is ';' (the
   semicolon itself is not part of the program text). *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  content

let strip_semi line =
  let line = String.trim line in
  if String.length line > 0 && line.[String.length line - 1] = ';' then
    Some (String.sub line 0 (String.length line - 1))
  else None

let main trace stats =
  if trace <> None then Obs.Trace.enable ();
  let repl = Sepcomp.Interactive.create () in
  let dynenv = ref Link.Linker.empty in
  let buffer = Buffer.create 256 in
  let prompt () =
    print_string (if Buffer.length buffer = 0 then "- " else "= ");
    flush stdout
  in
  let handle_input input =
    match Support.Diag.guard (fun () -> Sepcomp.Interactive.eval repl input) with
    | Ok outcome ->
      List.iter prerr_endline outcome.Sepcomp.Interactive.warnings;
      List.iter print_endline outcome.Sepcomp.Interactive.bindings
    | Error d -> prerr_endline (Support.Diag.to_string d)
    | exception Dynamics.Eval.Sml_raise packet ->
      Printf.eprintf "uncaught exception: %s\n"
        (Dynamics.Value.to_string packet)
  in
  let handle_use path =
    match
      Support.Diag.guard (fun () ->
          let unit_ =
            Pickle.Binfile.read (Sepcomp.Interactive.context repl)
              (read_file path)
          in
          dynenv := Sepcomp.Compile.execute unit_ !dynenv;
          Sepcomp.Interactive.use repl unit_ !dynenv;
          unit_)
    with
    | Ok unit_ ->
      Printf.printf "[loaded %s @ %s]\n" unit_.Pickle.Binfile.uf_name
        (Digestkit.Pid.short unit_.Pickle.Binfile.uf_static_pid)
    | Error d -> prerr_endline (Support.Diag.to_string d)
    | exception Sys_error msg -> prerr_endline msg
    | exception Pickle.Buf.Corrupt msg ->
      prerr_endline
        (Support.Diag.to_string
           (Support.Diag.make Support.Diag.Pickle Support.Loc.dummy msg))
  in
  print_endline "MiniSML interactive loop (:use <file.bin> loads a unit, ctrl-D exits)";
  let rec loop () =
    prompt ();
    match input_line stdin with
    | exception End_of_file -> print_newline ()
    | line ->
      let trimmed = String.trim line in
      if Buffer.length buffer = 0 && String.length trimmed > 4
         && String.sub trimmed 0 4 = ":use"
      then begin
        handle_use (String.trim (String.sub trimmed 4 (String.length trimmed - 4)));
        loop ()
      end
      else begin
        (match strip_semi line with
        | Some last ->
          Buffer.add_string buffer last;
          let input = Buffer.contents buffer in
          Buffer.clear buffer;
          if String.trim input <> "" then handle_input input
        | None ->
          Buffer.add_string buffer line;
          Buffer.add_char buffer '\n');
        loop ()
      end
  in
  loop ();
  Option.iter
    (fun path ->
      Obs.Trace.write_chrome path;
      Printf.eprintf "trace written to %s (%d spans)\n" path
        (List.length (Obs.Trace.events ())))
    trace;
  if stats then Format.eprintf "metrics:@.%a" Obs.Metrics.pp ();
  0

open Cmdliner

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"OUT"
        ~doc:
          "On exit, write a Chrome trace_event JSON file of the \
           session's phase spans to $(docv).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"On exit, print the metric counters to stderr.")

let cmd =
  let doc = "interactive MiniSML session over the visible compiler" in
  Cmd.v (Cmd.info "repl" ~doc) Term.(const main $ trace_arg $ stats_arg)

let () = exit (Cmd.eval' cmd)
