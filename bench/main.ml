(* Benchmark harness: regenerates every measured claim of the paper's
   evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for
   paper-vs-measured).

   Experiments:
     E1  figure 1: functor elaboration cost          (bechamel)
     E2  section 3 worked example                    (golden walkthrough)
     E3  hash+pickle overhead vs compile time        (project-scale timing)
     E4  pid collision probabilities                 (analytic + empirical)
     E5  cutoff vs timestamp recompilation counts    (table)
     E6  sharing preservation in pickled envs        (table)
     E7  statenv representation census               (table)
     E8  intrinsic-pid invariance under edit classes (counts)
     E9  IRM build latency: null/touch/impl/iface    (timing)
     E10 simplifier ablation: code sizes            (table)
     E11 alpha-conversion ablation                  (counts)
     E12 interpreter vs bytecode VM                 (bechamel)
     E13 parallel build speedup over domains        (timing)
     E14 unit-cache hit rates, warm-from-clean      (timing + counts)
     E15 atomic-commit overhead vs raw writes       (timing)
     E16 keep-going/diagnostics overhead, clean DAG (timing)
     E17 worker-backend overhead vs in-process domains (timing + counts)
     E18 observability overhead on a clean parallel build (timing)
     E19 compile server: warm vs cold rebuilds, client throughput (timing)
     E20 critical-path scheduling vs wavefront on synthetic DAGs (timing)
     E21 distributed fabric: remote executors + shared cache (timing + counts)
     E22 hot-swap latency vs full restart, 0/4 pinned clients (timing)
*)

module Gen = Workload.Gen
module Driver = Irm.Driver
module Pid = Digestkit.Pid
module J = Obs.Json

let section title =
  Printf.printf "\n==== %s ====\n%!" title

(* ------------------------------------------------------------------ *)
(* Machine-readable results: BENCH_sepcomp.json                        *)
(*                                                                     *)
(* Schema (see README, "Observability"):                               *)
(*   { "schema": "smlsep-bench/10", "quick": bool,                     *)
(*     "experiments": {                                                *)
(*       "build_times":      [{scale,units,lines,policy,build_s,       *)
(*                             hash_s,dehydrate_s,rehydrate_s,         *)
(*                             overhead_ratio}],                       *)
(*       "recompile_counts": [{topology,edit,policy,recompiled,        *)
(*                             cutoff_hits,total,cutoff_hit_rate}],    *)
(*       "build_latency":    [{scenario,policy,median_s,recompiled}],  *)
(*       "pickle_sizes":     [{depth,bytes}],                          *)
(*       "parallel_speedup": [{units,lines,width,cores,jobs,serial_s,  *)
(*                             parallel_s,speedup}],                   *)
(*       "cache_hit_rate":   [{scenario,units,recompiled,cache_hits,   *)
(*                             hit_rate,wall_s}],                      *)
(*       "atomic_overhead":  [{group,units,reps,raw_s,atomic_s,        *)
(*                             overhead_ratio}],                       *)
(*       "keepgoing_overhead": [{topology,units,reps,failfast_s,       *)
(*                             keepgoing_s,overhead_ratio}],           *)
(*       "worker_overhead":  [{units,lines,jobs,workers_s,domains_s,   *)
(*                             overhead_ratio,spawns,ipc_bytes_out,    *)
(*                             ipc_bytes_in}],                         *)
(*       "compile_server":   [{scenario,units,lines,cold_s,warm_s,     *)
(*                             speedup} | {scenario,clients,requests,  *)
(*                             wall_s,requests_per_s}],                *)
(*       "critical_path":    [{scenario,nodes,jobs,wavefront_s,        *)
(*                             critical_path_s,improvement,            *)
(*                             wavefront_eff,critical_path_eff}],      *)
(*       "remote_fabric":    [{scenario,execs,units,wall_s,speedup} |  *)
(*                            {scenario,phase,units,cache_hits,        *)
(*                             hit_rate,wall_s} |                      *)
(*                            {scenario,units,serial_s,degraded_s,     *)
(*                             overhead_ratio}],                       *)
(*       "hot_swap":         [{edit,pins,units,swap_s,restart_s,       *)
(*                             speedup}] },                            *)
(*     "metrics": { <Obs.Metrics counters> } }                         *)
(* ------------------------------------------------------------------ *)

let quick = ref false
let out_path = ref "BENCH_sepcomp.json"

let tbl_build_times : J.t list ref = ref []
let tbl_recompile : J.t list ref = ref []
let tbl_latency : J.t list ref = ref []
let tbl_pickle_sizes : J.t list ref = ref []
let tbl_parallel : J.t list ref = ref []
let tbl_cache : J.t list ref = ref []
let tbl_atomic : J.t list ref = ref []
let tbl_keepgoing : J.t list ref = ref []
let tbl_worker : J.t list ref = ref []
let tbl_obs : J.t list ref = ref []
let tbl_server : J.t list ref = ref []
let tbl_sched : J.t list ref = ref []
let tbl_fabric : J.t list ref = ref []
let tbl_swap : J.t list ref = ref []

let record tbl row = tbl := row :: !tbl

let write_results () =
  let doc =
    J.Obj
      [
        ("schema", J.String "smlsep-bench/10");
        ("quick", J.Bool !quick);
        ( "experiments",
          J.Obj
            [
              ("build_times", J.List (List.rev !tbl_build_times));
              ("recompile_counts", J.List (List.rev !tbl_recompile));
              ("build_latency", J.List (List.rev !tbl_latency));
              ("pickle_sizes", J.List (List.rev !tbl_pickle_sizes));
              ("parallel_speedup", J.List (List.rev !tbl_parallel));
              ("cache_hit_rate", J.List (List.rev !tbl_cache));
              ("atomic_overhead", J.List (List.rev !tbl_atomic));
              ("keepgoing_overhead", J.List (List.rev !tbl_keepgoing));
              ("worker_overhead", J.List (List.rev !tbl_worker));
              ("observability_overhead", J.List (List.rev !tbl_obs));
              ("compile_server", J.List (List.rev !tbl_server));
              ("critical_path", J.List (List.rev !tbl_sched));
              ("remote_fabric", J.List (List.rev !tbl_fabric));
              ("hot_swap", J.List (List.rev !tbl_swap));
            ] );
        ("metrics", Obs.Metrics.to_json ());
      ]
  in
  let oc = open_out_bin !out_path in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "results written to %s\n" !out_path

(* ------------------------------------------------------------------ *)
(* Bechamel wrapper                                                    *)
(* ------------------------------------------------------------------ *)

let run_bechamel ~name cases =
  let open Bechamel in
  let tests =
    List.map (fun (n, f) -> Test.make ~name:n (Staged.stage f)) cases
  in
  let grouped = Test.make_grouped ~name ~fmt:"%s/%s" tests in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun test_name ols acc -> (test_name, ols) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (test_name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> est
        | Some [] | None -> nan
      in
      Printf.printf "  %-44s %12.0f ns/run\n" test_name ns)
    rows

(* wall-clock timing for project-scale flows; median of [n] runs *)
let time_median ?n f =
  let n = match n with Some n -> n | None -> if !quick then 1 else 3 in
  let samples =
    List.init n (fun _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. t0)
  in
  List.nth (List.sort compare samples) (n / 2)

(* ------------------------------------------------------------------ *)
(* E1: figure 1 — functor elaboration                                  *)
(* ------------------------------------------------------------------ *)

let figure1_source =
  "signature PARTIAL_ORDER = sig type elem val less : elem * elem -> bool \
   end\n\
   signature SORT = sig type t val sort : t list -> t list end\n\
   functor TopSort (P : PARTIAL_ORDER) : SORT = struct\n\
   type t = P.elem\n\
   fun insert (x, nil) = [x]\n\
  \  | insert (x, y :: ys) = if P.less (x, y) then x :: y :: ys else y :: \
   insert (x, ys)\n\
   fun sort nil = nil | sort (x :: xs) = insert (x, sort xs)\n\
   end\n\
   structure Factors : PARTIAL_ORDER = struct type elem = int fun less (i, \
   j) = j mod i = 0 end\n\
   structure FSort : SORT = TopSort(Factors)"

let e1 () =
  section "E1: figure 1 — transparent functor application (paper fig. 1)";
  (* correctness first: FSort.t = int must propagate *)
  let session = Sepcomp.Compile.new_session () in
  let unit_ =
    Sepcomp.Compile.compile session ~name:"fig1.sml" ~source:figure1_source
      ~imports:[]
  in
  Printf.printf "figure 1 compiles; interface pid %s\n"
    (Pid.short unit_.Pickle.Binfile.uf_static_pid);
  let repl = Sepcomp.Interactive.create ~output:ignore () in
  let dynenv = Sepcomp.Compile.execute unit_ Link.Linker.empty in
  Sepcomp.Interactive.use repl unit_ dynenv;
  let outcome = Sepcomp.Interactive.eval repl "FSort.sort [6, 2, 3]" in
  List.iter
    (fun line -> Printf.printf "transparent propagation: %s\n" line)
    outcome.Sepcomp.Interactive.bindings;
  run_bechamel ~name:"e1"
    [
      ( "compile figure-1 unit",
        fun () ->
          let s = Sepcomp.Compile.new_session () in
          ignore
            (Sepcomp.Compile.compile s ~name:"fig1.sml" ~source:figure1_source
               ~imports:[]) );
      ( "parse figure-1 unit",
        fun () -> ignore (Lang.Parser.parse_unit ~file:"fig1.sml" figure1_source)
      );
    ]

(* ------------------------------------------------------------------ *)
(* E2: section 3 worked example                                        *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section "E2: section 3 worked example (val a = x+y; val b = x+2*z)";
  (* The paper's source has top-level vals; units carry modules, so the
     environment { x=3, y=4, z=5 } becomes a structure, as does the
     dependent { a, b }. *)
  let session = Sepcomp.Compile.new_session () in
  let env_unit =
    Sepcomp.Compile.compile session ~name:"env.sml"
      ~source:"structure Env = struct val x = 3 val y = 4 val z = 5 end"
      ~imports:[]
  in
  let ab_unit =
    Sepcomp.Compile.compile session ~name:"ab.sml"
      ~source:
        "structure AB = struct val a = Env.x + Env.y val b = Env.x + 2 * \
         Env.z end"
      ~imports:[ env_unit ]
  in
  let cu = ab_unit.Pickle.Binfile.uf_codeunit in
  Printf.printf "imports (paper: [pid_x; pid_y; pid_z], here per-module): %d pid(s)\n"
    (List.length cu.Link.Codeunit.cu_imports);
  Printf.printf "exports (paper: [pid_a; pid_b], here the AB module): %s\n"
    (String.concat ", "
       (List.map
          (fun (n, p) -> Support.Symbol.name n ^ "@" ^ Pid.short p)
          cu.Link.Codeunit.cu_exports));
  let dynenv = Sepcomp.Compile.execute env_unit Link.Linker.empty in
  let dynenv = Sepcomp.Compile.execute ab_unit dynenv in
  let _, pid = List.hd cu.Link.Codeunit.cu_exports in
  (match Pid.Map.find pid dynenv with
  | Dynamics.Value.Vrecord fields ->
    let get name =
      match Support.Symbol.Map.find (Support.Symbol.intern name) fields with
      | Dynamics.Value.Vint n -> n
      | _ -> assert false
    in
    Printf.printf "execution: a = %d (paper: 7), b = %d (paper: 13)\n" (get "a")
      (get "b")
  | _ -> assert false);
  run_bechamel ~name:"e2"
    [
      ( "compile+link+execute the two units",
        fun () ->
          let s = Sepcomp.Compile.new_session () in
          let e =
            Sepcomp.Compile.compile s ~name:"env.sml"
              ~source:"structure Env = struct val x = 3 val y = 4 val z = 5 end"
              ~imports:[]
          in
          let ab =
            Sepcomp.Compile.compile s ~name:"ab.sml"
              ~source:
                "structure AB = struct val a = Env.x + Env.y val b = Env.x + \
                 2 * Env.z end"
              ~imports:[ e ]
          in
          let d = Sepcomp.Compile.execute e Link.Linker.empty in
          ignore (Sepcomp.Compile.execute ab d) );
    ]

(* ------------------------------------------------------------------ *)
(* E3: hash + dehydrate/rehydrate overhead vs compilation              *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section "E3: hash + pickle overhead relative to compilation (paper sec. 6)";
  (* the paper's workload is 65k lines over ~200 units (~325 lines per
     unit); we sweep unit sizes towards that shape *)
  let scales =
    if !quick then [ (30, 40, "small") ]
    else [ (30, 40, "small"); (60, 120, "medium"); (48, 330, "paper-shaped") ]
  in
  List.iter
    (fun (units, lines_per_unit, label) ->
      let fs = Vfs.memory () in
      let project =
        Gen.create fs
          (Gen.Random_dag { units; max_deps = 4; seed = 7 })
          (Gen.sized_profile ~lines:lines_per_unit)
      in
      let sources = Gen.sources project in
      let lines = Gen.total_lines project in
      (* full build from scratch, repeatedly *)
      let build_time =
        time_median (fun () ->
            List.iter (fun f -> fs.Vfs.fs_remove (f ^ ".bin")) sources;
            let mgr = Driver.create fs in
            ignore (Driver.build mgr ~policy:Driver.Cutoff ~sources))
      in
      (* isolate hashing, pickling and unpickling over the built units *)
      let mgr = Driver.create fs in
      ignore (Driver.build mgr ~policy:Driver.Cutoff ~sources);
      let session = Driver.session mgr in
      let ctx = Sepcomp.Compile.context session in
      let units_built = List.map (Driver.unit_of mgr) sources in
      let hash_time =
        time_median (fun () ->
            List.iter
              (fun (u : Pickle.Binfile.t) ->
                ignore
                  (Pickle.Hashenv.verify ctx ~name_statics:u.uf_name_statics
                     u.uf_env))
              units_built)
      in
      (* the paper measures dehydration/rehydration of the *static
         environment* (machine code writing is ordinary compilation
         output); serialize just the statenv both ways *)
      let dehydrate (u : Pickle.Binfile.t) =
        let w = Pickle.Buf.writer () in
        Pickle.Serial.write_env w ctx
          ~token:(Pickle.Serial.exported_token ~self:u.uf_static_pid)
          ~with_addrs:true u.uf_env;
        (u.uf_static_pid, Pickle.Buf.contents w)
      in
      let pickle_time =
        time_median (fun () -> List.iter (fun u -> ignore (dehydrate u)) units_built)
      in
      let envs = List.map dehydrate units_built in
      let unpickle_time =
        time_median (fun () ->
            List.iter
              (fun (self, bytes) ->
                let resolve = function
                  | Pickle.Serial.TokGlobal n -> Statics.Stamp.Global n
                  | Pickle.Serial.TokOwn i -> Statics.Stamp.External (self, i)
                  | Pickle.Serial.TokExtern (p, i) -> Statics.Stamp.External (p, i)
                in
                ignore (Pickle.Serial.read_env (Pickle.Buf.reader bytes) ~resolve))
              envs)
      in
      let overhead = hash_time +. pickle_time +. unpickle_time in
      record tbl_build_times
        (J.Obj
           [
             ("scale", J.String label);
             ("units", J.Int units);
             ("lines", J.Int lines);
             ("policy", J.String (Driver.policy_name Driver.Cutoff));
             ("build_s", J.Float build_time);
             ("hash_s", J.Float hash_time);
             ("dehydrate_s", J.Float pickle_time);
             ("rehydrate_s", J.Float unpickle_time);
             ("overhead_ratio", J.Float (overhead /. build_time));
           ]);
      Printf.printf
        "%-13s %4d units %6d lines | compile %7.3fs  hash %7.4fs  dehydrate \
         %7.4fs  rehydrate %7.4fs | overhead/compile = %5.2f%% (paper: ~1%%)\n"
        label units lines build_time hash_time pickle_time unpickle_time
        (100. *. overhead /. build_time))
    scales

(* ------------------------------------------------------------------ *)
(* E4: pid collision probabilities                                     *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section "E4: pid collision probability (paper sec. 5: 2^13 pids, 2^-102)";
  (* analytic birthday bound: P ≈ n(n-1)/2 · 2^-b *)
  let n = 8192. (* 2^13, the paper's figure *) in
  Printf.printf "analytic, n = 2^13 pids:\n";
  List.iter
    (fun bits ->
      let log2p =
        (Float.log2 (n *. (n -. 1.) /. 2.)) -. float_of_int bits
      in
      Printf.printf "  %3d-bit pids: P(collision) = 2^%.1f\n" bits log2p)
    [ 16; 32; 64; 128 ];
  (* empirical with truncated pids: expected collisions C(n,2)/2^b *)
  Printf.printf "empirical, truncated intrinsic pids (MD5 prefixes):\n";
  List.iter
    (fun (bits, count) ->
      let seen = Hashtbl.create count in
      let collisions = ref 0 in
      for i = 0 to count - 1 do
        let pid = Pid.intrinsic (Printf.sprintf "unit-%d" i) in
        let v = Pid.truncated_bits pid bits in
        if Hashtbl.mem seen v then incr collisions else Hashtbl.add seen v ()
      done;
      let expected =
        float_of_int count *. float_of_int (count - 1) /. 2.
        /. Float.pow 2. (float_of_int bits)
      in
      Printf.printf "  %2d-bit pids, n = %5d: %4d collisions (birthday bound \
                     predicts %.1f)\n"
        bits count !collisions expected)
    [ (12, 512); (16, 2048); (20, 8192); (24, 8192) ]

(* ------------------------------------------------------------------ *)
(* E5: cutoff vs timestamp recompilation counts                        *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5: recompilation counts, cutoff vs timestamp (the paper's motivation)";
  let topologies =
    if !quick then
      [
        ("chain-16", Gen.Chain 16);
        ("dag-24", Gen.Random_dag { units = 24; max_deps = 3; seed = 11 });
      ]
    else
      [
        ("chain-16", Gen.Chain 16);
        ("fanout-15", Gen.Fanout 15);
        ("diamond-7", Gen.Diamond 7);
        ("dag-24", Gen.Random_dag { units = 24; max_deps = 3; seed = 11 });
      ]
  in
  Printf.printf "%-11s %-13s | %-18s | %-18s | %-9s | cutoff wins by\n"
    "topology" "edit" "timestamp rebuilds" "cutoff rebuilds" "selective";
  List.iter
    (fun (topo_label, topology) ->
      List.iter
        (fun edit ->
          let count policy =
            let fs = Vfs.memory () in
            let project = Gen.create fs topology Gen.default_profile in
            let sources = Gen.sources project in
            let mgr = Driver.create fs in
            let _ = Driver.build mgr ~policy ~sources in
            (* edit the unit everything depends on: the maximal cone *)
            Gen.edit project (Gen.base_file project) edit;
            let stats = Driver.build mgr ~policy ~sources in
            let recompiled = List.length stats.Driver.st_recompiled in
            let cutoff_hits = List.length stats.Driver.st_cutoff_hits in
            let total = List.length sources in
            record tbl_recompile
              (J.Obj
                 [
                   ("topology", J.String topo_label);
                   ("edit", J.String (Gen.edit_name edit));
                   ("policy", J.String (Driver.policy_name policy));
                   ("recompiled", J.Int recompiled);
                   ("cutoff_hits", J.Int cutoff_hits);
                   ("total", J.Int total);
                   ( "cutoff_hit_rate",
                     J.Float
                       (if recompiled = 0 then 0.
                        else float_of_int cutoff_hits /. float_of_int recompiled)
                   );
                 ]);
            (recompiled, total)
          in
          let ts, total = count Driver.Timestamp in
          let co, _ = count Driver.Cutoff in
          let se, _ = count Driver.Selective in
          Printf.printf "%-11s %-13s | %7d / %-8d | %7d / %-8d | %9d | %dx\n"
            topo_label (Gen.edit_name edit) ts total co total se
            (if co = 0 then ts else ts / co))
        [ Gen.Touch; Gen.Impl_change; Gen.Iface_change ])
    topologies

(* ------------------------------------------------------------------ *)
(* E6: sharing preservation in pickled environments                    *)
(* ------------------------------------------------------------------ *)

(* Fully expanding aliases measures what a sharing-oblivious pickler
   would write: exponential in the nesting depth. *)
let rec expanded_size ctx ty =
  match Statics.Unify.head_normalize ctx ty with
  | Statics.Types.Tcon (_, args) ->
    List.fold_left (fun acc t -> acc + expanded_size ctx t) 1 args
  | Statics.Types.Tarrow (a, b) ->
    1 + expanded_size ctx a + expanded_size ctx b
  | Statics.Types.Ttuple parts ->
    List.fold_left (fun acc t -> acc + expanded_size ctx t) 1 parts
  | Statics.Types.Tvar _ | Statics.Types.Tgen _ | Statics.Types.Terror -> 1

let e6 () =
  section "E6: DAG sharing in pickled environments (paper sec. 4)";
  Printf.printf "%-6s | %-14s | %-22s\n" "depth"
    "bin size (B)" "sharing-oblivious nodes";
  List.iter
    (fun depth ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf "structure Deep = struct\n";
      Buffer.add_string buf "  type t0 = int\n";
      for i = 1 to depth do
        Buffer.add_string buf
          (Printf.sprintf "  type t%d = t%d * t%d\n" i (i - 1) (i - 1))
      done;
      Buffer.add_string buf
        (Printf.sprintf "  val witness = fn (x : t%d) => x\nend\n" depth);
      let session = Sepcomp.Compile.new_session () in
      let unit_ =
        Sepcomp.Compile.compile session ~name:"deep.sml"
          ~source:(Buffer.contents buf) ~imports:[]
      in
      let ctx = Sepcomp.Compile.context session in
      let size = Pickle.Binfile.size_of ctx unit_ in
      record tbl_pickle_sizes
        (J.Obj [ ("depth", J.Int depth); ("bytes", J.Int size) ]);
      (* the deepest alias, fully expanded *)
      let deep_ty =
        let str =
          Support.Symbol.Map.find (Support.Symbol.intern "Deep")
            unit_.Pickle.Binfile.uf_env.Statics.Types.strs
        in
        let stamp =
          Support.Symbol.Map.find
            (Support.Symbol.intern (Printf.sprintf "t%d" depth))
            str.Statics.Types.str_env.Statics.Types.tycons
        in
        Statics.Types.Tcon (stamp, [])
      in
      Printf.printf "%-6d | %-14d | %d\n" depth size
        (expanded_size (Sepcomp.Compile.context session) deep_ty))
    [ 2; 4; 8; 12; 16 ]

(* ------------------------------------------------------------------ *)
(* E7: statenv representation census                                   *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7: static-environment representation census (paper: 36 datatypes, 115 variants, 193 record types)";
  (* our semantic-object family, counted from lib/statics/types.ml and
     the stamp/pickle layers it relies on *)
  let census =
    [
      ("Types.ty", `Variants 5);
      ("Types.tvar", `Variants 2);
      ("Types.scheme", `Record 2);
      ("Types.condesc", `Record 4);
      ("Types.defn", `Variants 3);
      ("Types.tycon_info", `Record 3);
      ("Types.addr", `Variants 6);
      ("Types.conrep", `Record 3);
      ("Types.vkind", `Variants 3);
      ("Types.val_info", `Record 3);
      ("Types.str_info", `Record 3);
      ("Types.sig_info", `Record 3);
      ("Types.fct_info", `Record 7);
      ("Types.env", `Record 5);
      ("Stamp.t", `Variants 3);
      ("Serial.token", `Variants 3);
      ("Binfile.t", `Record 5);
      ("Codeunit.t", `Record 3);
      ("Lambda.t", `Variants 25);
    ]
  in
  let datatypes = List.length census in
  let variants =
    List.fold_left
      (fun acc (_, k) -> match k with `Variants n -> acc + n | `Record _ -> acc)
      0 census
  in
  let record_fields =
    List.fold_left
      (fun acc (_, k) -> match k with `Record n -> acc + n | `Variants _ -> acc)
      0 census
  in
  List.iter
    (fun (name, k) ->
      match k with
      | `Variants n -> Printf.printf "  %-18s %2d variants\n" name n
      | `Record n -> Printf.printf "  %-18s %2d fields\n" name n)
    census;
  Printf.printf
    "total: %d types, %d variants, %d record fields (paper's compiler: 36 \
     datatypes / 115 variants / 193 record types — a full SML front end is \
     bigger, same order of shape)\n"
    datatypes variants record_fields;
  (* and the live context after building a project *)
  let fs = Vfs.memory () in
  let project =
    Gen.create fs
      (Gen.Random_dag { units = 24; max_deps = 3; seed = 3 })
      Gen.rich_profile
  in
  let mgr = Driver.create fs in
  let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources:(Gen.sources project) in
  let ctx = Sepcomp.Compile.context (Driver.session mgr) in
  let stamped =
    List.fold_left
      (fun acc file ->
        let u = Driver.unit_of mgr file in
        acc
        + List.length (Statics.Realize.reachable_stamps ctx u.Pickle.Binfile.uf_env))
      0 (Gen.sources project)
  in
  Printf.printf
    "after building 24 rich synthetic units: %d registered tycons, %d \
     reachable stamped objects across unit interfaces\n"
    (Statics.Context.size ctx) stamped

(* ------------------------------------------------------------------ *)
(* E8: intrinsic-pid invariance under edit classes                     *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8: intrinsic-pid changes per edit class (10 edits each)";
  List.iter
    (fun edit ->
      let fs = Vfs.memory () in
      let project = Gen.create fs (Gen.Chain 3) Gen.default_profile in
      let sources = Gen.sources project in
      let victim = Gen.base_file project in
      let mgr = Driver.create fs in
      let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources in
      let changes = ref 0 in
      let last = ref (Driver.unit_of mgr victim).Pickle.Binfile.uf_static_pid in
      for _ = 1 to 10 do
        Gen.edit project victim edit;
        let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources in
        let now = (Driver.unit_of mgr victim).Pickle.Binfile.uf_static_pid in
        if not (Pid.equal now !last) then incr changes;
        last := now
      done;
      Printf.printf "  %-13s: %2d/10 pid changes (expected %s)\n"
        (Gen.edit_name edit) !changes
        (match edit with
        | Gen.Touch | Gen.Impl_change -> "0"
        | Gen.Iface_change -> "10"))
    [ Gen.Touch; Gen.Impl_change; Gen.Iface_change ]

(* ------------------------------------------------------------------ *)
(* E9: IRM build latency                                               *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "E9: IRM build latency by scenario (32-unit DAG)";
  let make_project () =
    let fs = Vfs.memory () in
    let project =
      Gen.create fs
        (Gen.Random_dag { units = 32; max_deps = 3; seed = 23 })
        Gen.default_profile
    in
    (fs, project)
  in
  Printf.printf "%-14s | %-10s | %-12s | recompiled\n" "scenario" "policy"
    "median (ms)";
  List.iter
    (fun policy ->
      List.iter
        (fun (label, prepare) ->
          let fs, project = make_project () in
          let sources = Gen.sources project in
          let mgr = Driver.create fs in
          let _ = Driver.build mgr ~policy ~sources in
          let recompiled = ref 0 in
          let t =
            time_median (fun () ->
                prepare fs project;
                let stats = Driver.build mgr ~policy ~sources in
                recompiled := List.length stats.Driver.st_recompiled)
          in
          record tbl_latency
            (J.Obj
               [
                 ("scenario", J.String label);
                 ("policy", J.String (Driver.policy_name policy));
                 ("median_s", J.Float t);
                 ("recompiled", J.Int !recompiled);
               ]);
          Printf.printf "%-14s | %-10s | %12.2f | %d\n" label
            (Driver.policy_name policy) (1000. *. t) !recompiled)
        [
          ("null build", fun _ _ -> ());
          ("touch", fun _ p -> Gen.edit p (Gen.middle_file p) Gen.Touch);
          ( "impl change",
            fun _ p -> Gen.edit p (Gen.middle_file p) Gen.Impl_change );
          ( "iface change",
            fun _ p -> Gen.edit p (Gen.middle_file p) Gen.Iface_change );
        ])
    [ Driver.Timestamp; Driver.Cutoff; Driver.Selective ]

(* ------------------------------------------------------------------ *)
(* E10: simplifier ablation                                            *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section "E10 (ablation): lambda simplifier effect on code size";
  let sample name source =
    let session = Sepcomp.Compile.new_session () in
    let plain =
      Sepcomp.Compile.compile ~optimize:false session ~name ~source ~imports:[]
    in
    let opt =
      Sepcomp.Compile.compile ~optimize:true session ~name ~source ~imports:[]
    in
    let before = Lambda.size plain.Pickle.Binfile.uf_codeunit.Link.Codeunit.cu_code in
    let after = Lambda.size opt.Pickle.Binfile.uf_codeunit.Link.Codeunit.cu_code in
    Printf.printf "  %-24s %6d -> %6d nodes  (-%d%%)\n" name before after
      (100 * (before - after) / max before 1);
    (* bin sizes shrink accordingly *)
    let ctx = Sepcomp.Compile.context session in
    Printf.printf "  %-24s %6d -> %6d bin bytes\n" ""
      (Pickle.Binfile.size_of ctx plain)
      (Pickle.Binfile.size_of ctx opt)
  in
  sample "figure-1 unit" figure1_source;
  let fs = Vfs.memory () in
  let project = Gen.create fs (Gen.Chain 1) (Gen.sized_profile ~lines:120) in
  (match fs.Vfs.fs_read (Gen.base_file project) with
  | Some source -> sample "synthetic 120-line unit" source
  | None -> ())

(* ------------------------------------------------------------------ *)
(* E11: alpha-conversion ablation                                      *)
(* ------------------------------------------------------------------ *)

(* Hash with *raw* provisional stamp numbers instead of alpha indices:
   the strawman the paper's section 5 rules out ("the pids are
   independent of the pid-assignment algorithm" only with
   alpha-conversion). *)
let raw_hash ctx env =
  let token = function
    | Statics.Stamp.Global n -> Pickle.Serial.TokGlobal n
    | Statics.Stamp.Local n -> Pickle.Serial.TokOwn n (* raw, not alpha *)
    | Statics.Stamp.External (p, i) -> Pickle.Serial.TokExtern (p, i)
  in
  let w = Pickle.Buf.writer () in
  Pickle.Serial.write_env w ctx ~token ~with_addrs:false env;
  Pid.intrinsic (Pickle.Buf.contents w)

let e11 () =
  section "E11 (ablation): hashing without alpha-converted stamps";
  let source =
    "structure S = struct datatype t = A | B of int fun pick n = if n = 0 \
     then A else B n end"
  in
  let trials = 5 in
  let alpha_stable = ref 0 and raw_stable = ref 0 in
  let session = Sepcomp.Compile.new_session () in
  let ctx = Sepcomp.Compile.context session in
  let reference_alpha = ref None and reference_raw = ref None in
  for _ = 1 to trials do
    (* re-elaborate the same source; provisional stamp values differ
       every time, the interface does not *)
    let env = Sepcomp.Compile.basis_env session in
    let unit_ = Lang.Parser.parse_unit ~file:"s.sml" source in
    let delta, _ = Statics.Elaborate.elab_compilation_unit ctx env unit_ in
    let alpha = Pickle.Hashenv.hash_env ctx delta in
    let raw = raw_hash ctx delta in
    (match !reference_alpha with
    | None -> reference_alpha := Some alpha
    | Some r -> if Pid.equal r alpha then incr alpha_stable);
    match !reference_raw with
    | None -> reference_raw := Some raw
    | Some r -> if Pid.equal r raw then incr raw_stable
  done;
  Printf.printf
    "recompiling identical source %d times:\n\
    \  alpha-converted hash stable %d/%d times (cutoff works)\n\
    \  raw-stamp hash       stable %d/%d times (every rebuild would cascade)\n"
    trials !alpha_stable (trials - 1) !raw_stable (trials - 1)

(* ------------------------------------------------------------------ *)
(* E12: execution backends — tree-walker vs bytecode VM                *)
(* ------------------------------------------------------------------ *)

let lambda_of_exp ?(decs = "") src =
  let ctx = Statics.Context.create () in
  Statics.Basis.register ctx;
  let env = Statics.Basis.env () in
  let delta, tdecs =
    if decs = "" then (Statics.Types.empty_env, [])
    else
      Statics.Elaborate.elab_decs ctx env
        (Lang.Parser.parse_decs ~file:"bench.sml" decs)
  in
  let env = Statics.Types.env_union env delta in
  let texp, _ =
    Statics.Elaborate.elab_exp ctx env (Lang.Parser.parse_exp ~file:"b.sml" src)
  in
  Simplify.term (Translate.tdecs tdecs (Translate.texp texp))

let e12 () =
  section "E12: execution backends — interpreter vs bytecode VM";
  let programs =
    [
      ( "fib 22",
        lambda_of_exp
          ~decs:"fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)"
          "fib 22" );
      ( "insertion sort, 150 elems",
        lambda_of_exp
          ~decs:
            "fun insert (x, nil) = [x]\n\
            \  | insert (x, y :: ys) = if x < y then x :: y :: ys else y :: \
             insert (x, ys)\n\
             fun sort nil = nil | sort (x :: xs) = insert (x, sort xs)\n\
             fun mk n = if n = 0 then nil else (n * 37) mod 101 :: mk (n - 1)\n\
             fun len xs = case xs of nil => 0 | _ :: r => 1 + len r"
          "len (sort (mk 150))" );
      ( "closure churn",
        lambda_of_exp
          ~decs:
            "fun compose f g x = f (g x)\n\
             fun iter n f = if n = 0 then f else iter (n - 1) (compose f (fn \
             x => x + 1))"
          "(iter 200 (fn x => x)) 0" );
    ]
  in
  List.iter
    (fun (name, code) ->
      let program = Dynamics.Vm.compile code in
      run_bechamel ~name:("e12/" ^ name)
        [
          ( "interpreter",
            fun () ->
              let rt =
                Dynamics.Eval.runtime ~output:ignore
                  ~imports:Digestkit.Pid.Map.empty ()
              in
              ignore (Dynamics.Eval.run rt code) );
          ( "bytecode vm",
            fun () ->
              ignore
                (Dynamics.Vm.run ~output:ignore ~imports:Digestkit.Pid.Map.empty
                   program) );
        ];
      Printf.printf "  (%d lambda nodes -> %d instructions)\n"
        (Lambda.size code) (Dynamics.Vm.program_length program))
    programs

(* ------------------------------------------------------------------ *)
(* E13: parallel build speedup                                         *)
(* ------------------------------------------------------------------ *)

let e13 () =
  section "E13: parallel build speedup (wavefront scheduler over domains)";
  (* from-clean builds of a wide 64-unit DAG with compile-dominated
     units; serial and parallel run the same per-unit isolated-session
     pipeline, so the comparison isolates scheduling, not code paths *)
  let units = 64 in
  let fs = Vfs.memory () in
  let project =
    Gen.create fs
      (Gen.Random_dag { units; max_deps = 3; seed = 31 })
      (Gen.sized_profile ~lines:160)
  in
  let sources = Gen.sources project in
  let lines = Gen.total_lines project in
  let parsed =
    List.map
      (fun f -> (f, Lang.Parser.parse_unit ~file:f (Option.get (fs.Vfs.fs_read f))))
      sources
  in
  let width = Depend.Depgraph.width (Depend.Depgraph.build parsed) in
  let time_build backend =
    time_median (fun () ->
        List.iter (fun f -> fs.Vfs.fs_remove (f ^ ".bin")) sources;
        let mgr = Driver.create fs in
        ignore (Driver.build ~backend mgr ~policy:Driver.Cutoff ~sources))
  in
  let serial_s = time_build Driver.Serial in
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "%d units, %d lines, widest wavefront %d; available cores: %d\n" units
    lines width cores;
  if cores = 1 then
    print_endline
      "(single-core machine: parallel backends can only lose here — the \
       speedup column measures scheduling overhead, not parallelism)";
  Printf.printf "%-10s | %10s | speedup\n" "backend" "median (s)";
  Printf.printf "%-10s | %10.3f | %6.2fx\n" "serial" serial_s 1.0;
  let jobs_list = if !quick then [ 2; 4 ] else [ 2; 4; 8 ] in
  List.iter
    (fun jobs ->
      let parallel_s = time_build (Driver.Parallel jobs) in
      let speedup = serial_s /. parallel_s in
      record tbl_parallel
        (J.Obj
           [
             ("units", J.Int units);
             ("lines", J.Int lines);
             ("width", J.Int width);
             ("cores", J.Int cores);
             ("jobs", J.Int jobs);
             ("serial_s", J.Float serial_s);
             ("parallel_s", J.Float parallel_s);
             ("speedup", J.Float speedup);
           ]);
      Printf.printf "%-10s | %10.3f | %6.2fx\n"
        (Printf.sprintf "--jobs %d" jobs)
        parallel_s speedup)
    jobs_list

(* ------------------------------------------------------------------ *)
(* E14: unit-cache hit rates                                           *)
(* ------------------------------------------------------------------ *)

let e14 () =
  section "E14: content-addressed unit cache — hit rates and warm rebuilds";
  let units = 48 in
  let fs = Vfs.memory () in
  let project =
    Gen.create fs
      (Gen.Random_dag { units; max_deps = 3; seed = 41 })
      Gen.default_profile
  in
  let sources = Gen.sources project in
  let total = List.length sources in
  let clean () = List.iter (fun f -> fs.Vfs.fs_remove (f ^ ".bin")) sources in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  Printf.printf "%d units\n" units;
  Printf.printf "%-18s | recompiled | cache hits | hit rate | wall (ms)\n"
    "scenario";
  let row scenario (stats : Driver.stats) wall_s =
    let recompiled = List.length stats.Driver.st_recompiled in
    let hits = List.length stats.Driver.st_cache_hits in
    let hit_rate = float_of_int hits /. float_of_int total in
    record tbl_cache
      (J.Obj
         [
           ("scenario", J.String scenario);
           ("units", J.Int total);
           ("recompiled", J.Int recompiled);
           ("cache_hits", J.Int hits);
           ("hit_rate", J.Float hit_rate);
           ("wall_s", J.Float wall_s);
         ]);
    Printf.printf "%-18s | %10d | %10d | %7.0f%% | %9.2f\n" scenario recompiled
      hits (100. *. hit_rate) (1000. *. wall_s)
  in
  (* cold: empty cache, everything compiles and is stored *)
  let cold, cold_s =
    timed (fun () ->
        Driver.build ~cache:(Cache.ops (Cache.create fs)) (Driver.create fs)
          ~policy:Driver.Cutoff ~sources)
  in
  row "cold build" cold cold_s;
  (* warm from clean: bins wiped, fresh manager, fresh cache handle over
     the same store — a new process finding a populated cache *)
  clean ();
  let warm, warm_s =
    timed (fun () ->
        Driver.build ~cache:(Cache.ops (Cache.create fs)) (Driver.create fs)
          ~policy:Driver.Cutoff ~sources)
  in
  row "warm from-clean" warm warm_s;
  (* steady-state manager: edit one implementation, then revert it — the
     edit misses (new content), the revert hits (content seen before) *)
  let mgr = Driver.create fs in
  let cache = Cache.create fs in
  let _ = Driver.build ~cache:(Cache.ops cache) mgr ~policy:Driver.Cutoff ~sources in
  let victim = Gen.middle_file project in
  let original = Option.get (fs.Vfs.fs_read victim) in
  Gen.edit project victim Gen.Impl_change;
  let edited, edited_s =
    timed (fun () -> Driver.build ~cache:(Cache.ops cache) mgr ~policy:Driver.Cutoff ~sources)
  in
  row "impl edit (miss)" edited edited_s;
  fs.Vfs.fs_write victim original;
  let reverted, reverted_s =
    timed (fun () -> Driver.build ~cache:(Cache.ops cache) mgr ~policy:Driver.Cutoff ~sources)
  in
  row "revert (hit)" reverted reverted_s;
  Printf.printf "warm-from-clean rebuild is %.1fx faster than cold\n"
    (cold_s /. warm_s)

(* ------------------------------------------------------------------ *)
(* E15: atomic-commit overhead vs raw writes                           *)
(* ------------------------------------------------------------------ *)

(* an fs that defeats the commit protocol: staged content goes straight
   to the final name and the publishing rename becomes a no-op — the
   build does raw, non-crash-safe writes *)
let rawify fs =
  let final path =
    String.sub path 0 (String.length path - String.length ".#commit")
  in
  {
    fs with
    Vfs.fs_write =
      (fun path content ->
        if Vfs.is_commit_temp path then fs.Vfs.fs_write (final path) content
        else fs.Vfs.fs_write path content);
    Vfs.fs_rename =
      (fun src dst ->
        if Vfs.is_commit_temp src && String.equal (final src) dst then ()
        else fs.Vfs.fs_rename src dst);
  }

let e15 () =
  section "E15: atomic-commit overhead vs raw writes";
  (* the example group, loaded into a memory fs so both variants pay
     identical (deterministic) I/O costs; a generated group stands in
     when the examples are not on disk *)
  let fs = Vfs.memory () in
  let group, sources =
    match
      let real = Vfs.real ~dir:"examples/miniml" in
      let sources = Irm.Group.load real "sources.cm" in
      List.iter
        (fun f ->
          match real.Vfs.fs_read f with
          | Some content -> fs.Vfs.fs_write f content
          | None -> failwith f)
        sources;
      sources
    with
    | sources -> ("examples/miniml", sources)
    | exception _ ->
      let project = Gen.create fs (Gen.Diamond 2) Gen.default_profile in
      ("diamond-8", Gen.sources project)
  in
  let units = List.length sources in
  let reps = if !quick then 11 else 41 in
  let clean () = List.iter (fun f -> fs.Vfs.fs_remove (f ^ ".bin")) sources in
  let median samples =
    let a = List.sort compare samples in
    List.nth a (List.length a / 2)
  in
  let time_build fs' =
    clean ();
    let t0 = Unix.gettimeofday () in
    let _ = Driver.build (Driver.create fs') ~policy:Driver.Cutoff ~sources in
    Unix.gettimeofday () -. t0
  in
  (* warm up, then interleave the variants so drift hits both medians *)
  let raw_fs = rawify fs in
  for _ = 1 to 3 do
    ignore (time_build fs)
  done;
  let pairs = List.init reps (fun _ -> (time_build raw_fs, time_build fs)) in
  let raw_s = median (List.map fst pairs) in
  let atomic_s = median (List.map snd pairs) in
  let overhead = (atomic_s -. raw_s) /. raw_s in
  record tbl_atomic
    (J.Obj
       [
         ("group", J.String group);
         ("units", J.Int units);
         ("reps", J.Int reps);
         ("raw_s", J.Float raw_s);
         ("atomic_s", J.Float atomic_s);
         ("overhead_ratio", J.Float overhead);
       ]);
  Printf.printf
    "%s (%d units, median of %d from-clean builds)\n\
     raw writes    %8.3f ms\n\
     atomic commit %8.3f ms\n\
     overhead      %+7.2f%%  (crash safety budget: < 5%%)\n"
    group units reps (1000. *. raw_s) (1000. *. atomic_s) (100. *. overhead)

(* ------------------------------------------------------------------ *)
(* E16: keep-going/diagnostics overhead on a clean build               *)
(* ------------------------------------------------------------------ *)

(* keep-going adds a recovery-mode pre-parse of every source and a
   diagnostic collector per compile; on an error-free DAG both are pure
   bookkeeping, so their cost is the whole price of the feature for the
   common (clean) case *)
let e16 () =
  section "E16: keep-going/diagnostics overhead on a clean build";
  let fs = Vfs.memory () in
  let project =
    Gen.create fs
      (Gen.Random_dag { units = 16; max_deps = 3; seed = 7 })
      Gen.default_profile
  in
  let sources = Gen.sources project in
  let units = List.length sources in
  let reps = if !quick then 11 else 41 in
  let clean () = List.iter (fun f -> fs.Vfs.fs_remove (f ^ ".bin")) sources in
  let median samples =
    let a = List.sort compare samples in
    List.nth a (List.length a / 2)
  in
  let time_build ~keep_going =
    clean ();
    let t0 = Unix.gettimeofday () in
    let _ =
      Driver.build (Driver.create fs) ~keep_going ~policy:Driver.Cutoff
        ~sources
    in
    Unix.gettimeofday () -. t0
  in
  (* warm up, then interleave the variants so drift hits both medians *)
  for _ = 1 to 3 do
    ignore (time_build ~keep_going:false)
  done;
  let pairs =
    List.init reps (fun _ ->
        (time_build ~keep_going:false, time_build ~keep_going:true))
  in
  let failfast_s = median (List.map fst pairs) in
  let keepgoing_s = median (List.map snd pairs) in
  let overhead = (keepgoing_s -. failfast_s) /. failfast_s in
  record tbl_keepgoing
    (J.Obj
       [
         ("topology", J.String "random-dag-16");
         ("units", J.Int units);
         ("reps", J.Int reps);
         ("failfast_s", J.Float failfast_s);
         ("keepgoing_s", J.Float keepgoing_s);
         ("overhead_ratio", J.Float overhead);
       ]);
  Printf.printf
    "random-dag-16 (%d units, median of %d from-clean builds)\n\
     fail-fast     %8.3f ms\n\
     keep-going    %8.3f ms\n\
     overhead      %+7.2f%%  (diagnostics budget: < 2%%)\n"
    units reps (1000. *. failfast_s) (1000. *. keepgoing_s) (100. *. overhead)

(* ------------------------------------------------------------------ *)
(* E17: worker-backend overhead vs in-process domains                  *)
(* ------------------------------------------------------------------ *)

(* the supervised out-of-process backend pays fork+exec-free spawns,
   framed IPC and pickled units on every compile; on a clean build of a
   healthy DAG that is the whole price of crash isolation.  NOTE: this
   experiment must run before anything spawns a domain (OCaml 5 forbids
   Unix.fork once other domains have been created), so main () calls it
   ahead of E13 and the workers variant is measured before the domains
   variant below. *)
let e17 () =
  section "E17: worker-backend overhead vs in-process domains (clean build)";
  let units = 32 in
  let jobs = 4 in
  let fs = Vfs.memory () in
  let project =
    Gen.create fs
      (Gen.Random_dag { units; max_deps = 3; seed = 31 })
      (Gen.sized_profile ~lines:160)
  in
  let sources = Gen.sources project in
  let lines = Gen.total_lines project in
  let time_build backend =
    time_median (fun () ->
        List.iter (fun f -> fs.Vfs.fs_remove (f ^ ".bin")) sources;
        let mgr = Driver.create fs in
        ignore (Driver.build ~backend mgr ~policy:Driver.Cutoff ~sources))
  in
  let metric name = Option.value ~default:0 (Obs.Metrics.find name) in
  let workers_backend =
    Driver.Workers { (Worker.default_config ~jobs ()) with Worker.w_chaos = [] }
  in
  (* spawn count and IPC volume from one dedicated build, so the counts
     describe a single clean build rather than a median's worth *)
  let spawns0 = metric "worker.spawns" in
  let out0 = metric "worker.ipc_bytes_out" in
  let in0 = metric "worker.ipc_bytes_in" in
  List.iter (fun f -> fs.Vfs.fs_remove (f ^ ".bin")) sources;
  ignore
    (Driver.build ~backend:workers_backend (Driver.create fs)
       ~policy:Driver.Cutoff ~sources);
  let spawns = metric "worker.spawns" - spawns0 in
  let ipc_out = metric "worker.ipc_bytes_out" - out0 in
  let ipc_in = metric "worker.ipc_bytes_in" - in0 in
  let workers_s = time_build workers_backend in
  let domains_s = time_build (Driver.Parallel jobs) in
  let overhead = (workers_s -. domains_s) /. domains_s in
  record tbl_worker
    (J.Obj
       [
         ("units", J.Int units);
         ("lines", J.Int lines);
         ("jobs", J.Int jobs);
         ("workers_s", J.Float workers_s);
         ("domains_s", J.Float domains_s);
         ("overhead_ratio", J.Float overhead);
         ("spawns", J.Int spawns);
         ("ipc_bytes_out", J.Int ipc_out);
         ("ipc_bytes_in", J.Int ipc_in);
       ]);
  Printf.printf
    "%d units, %d lines, %d jobs (from-clean medians)\n\
     in-process domains %8.3f ms\n\
     worker processes   %8.3f ms\n\
     overhead           %+7.2f%%  (isolation budget: < 15%%)\n\
     per clean build: %d worker spawns, %d B IPC out, %d B IPC in\n"
    units lines jobs (1000. *. domains_s) (1000. *. workers_s)
    (100. *. overhead) spawns ipc_out ipc_in

(* ------------------------------------------------------------------ *)
(* E18: observability overhead on a clean parallel build               *)
(* ------------------------------------------------------------------ *)

(* the introspection layer's whole price on the hot path: per-phase
   duration collection in every compile job, the end-of-build profile
   record (snapshot + journal through Vfs.commit), and full span
   tracing.  All of it rides an otherwise-unchanged clean parallel
   build, so the ratio is the overhead a user pays for [--trace] plus
   the always-on profile store. *)
let e18 () =
  section "E18: observability overhead (clean parallel build)";
  let units = 32 in
  let jobs = 4 in
  let fs = Vfs.memory () in
  let project =
    Gen.create fs
      (Gen.Random_dag { units; max_deps = 3; seed = 47 })
      (Gen.sized_profile ~lines:160)
  in
  let sources = Gen.sources project in
  let lines = Gen.total_lines project in
  let clean () = List.iter (fun f -> fs.Vfs.fs_remove (f ^ ".bin")) sources in
  let backend = Driver.Parallel jobs in
  let baseline_s =
    time_median (fun () ->
        clean ();
        ignore (Driver.build ~backend (Driver.create fs) ~policy:Driver.Cutoff ~sources))
  in
  (* instrumented: profile store recording + full tracing *)
  let trace_events = ref 0 in
  let profile_bytes = ref 0 in
  let instrumented_s =
    time_median (fun () ->
        clean ();
        let profile = Obs.Profile.load fs in
        Obs.Trace.enable ();
        ignore
          (Driver.build ~backend ~profile (Driver.create fs)
             ~policy:Driver.Cutoff ~sources);
        trace_events := List.length (Obs.Trace.events ());
        Obs.Trace.disable ();
        profile_bytes := Obs.Profile.store_bytes profile)
  in
  let overhead = (instrumented_s -. baseline_s) /. baseline_s in
  record tbl_obs
    (J.Obj
       [
         ("units", J.Int units);
         ("lines", J.Int lines);
         ("jobs", J.Int jobs);
         ("baseline_s", J.Float baseline_s);
         ("instrumented_s", J.Float instrumented_s);
         ("overhead_ratio", J.Float overhead);
         ("trace_events", J.Int !trace_events);
         ("profile_store_bytes", J.Int !profile_bytes);
       ]);
  Printf.printf
    "%d units, %d lines, %d jobs (from-clean medians)\n\
     bare build            %8.3f ms\n\
     profile store + trace %8.3f ms\n\
     overhead              %+7.2f%%  (observability budget: < 5%%)\n\
     per instrumented build: %d trace events, %d B profile store\n"
    units lines jobs (1000. *. baseline_s) (1000. *. instrumented_s)
    (100. *. overhead) !trace_events !profile_bytes

(* ------------------------------------------------------------------ *)
(* E19: compile server — warm vs cold rebuilds, client throughput      *)
(* ------------------------------------------------------------------ *)

(* the daemon's value proposition measured directly: a resident process
   keeps interned symbols, rehydrated static environments and the cache
   index alive across builds, so a rebuild skips the one-shot tool's
   start-from-bins rehydration.  Cold = a fresh manager per build (what
   plain [irm build] pays after process start); warm = the same builds
   through the daemon socket, HELLO/request round-trip included.
   NOTE: forks the daemon and the throughput clients, so main () must
   call this before anything spawns a domain (fork-after-domains is
   forbidden) — in particular before E17's in-process domains leg. *)
let e19 () =
  section "E19: compile server — warm vs cold rebuilds, client throughput";
  let units = if !quick then 12 else 24 in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    | _ -> Unix.unlink path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "smlsep-e19-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  let fs = Vfs.real ~dir in
  let project =
    Gen.create fs
      (Gen.Random_dag { units; max_deps = 3; seed = 59 })
      (Gen.sized_profile ~lines:120)
  in
  let sources = Gen.sources project in
  let lines = Gen.total_lines project in
  fs.Vfs.fs_write "sources.cm" (String.concat "\n" sources ^ "\n");
  (* seed the artifacts so every measured build is a rebuild *)
  ignore (Driver.build (Driver.create fs) ~policy:Driver.Cutoff ~sources);
  (* fork the daemon before any domain exists in this process *)
  let daemon_pid =
    match Unix.fork () with
    | 0 ->
      (try
         let cfg =
           {
             (Daemon.Server.default_config ~dir) with
             Daemon.Server.d_log = ignore;
             d_watch = false;
             d_poll_s = 3600.;
           }
         in
         Daemon.Server.run (Daemon.Server.create cfg)
       with _ -> ());
      (* _exit: never run the parent's at_exit/flushing in the child *)
      Unix._exit 0
    | pid -> pid
  in
  let connect () =
    let deadline = Unix.gettimeofday () +. 10. in
    let rec go () =
      match Daemon.Client.connect ~dir () with
      | Some c -> c
      | None ->
        if Unix.gettimeofday () > deadline then
          failwith "e19: daemon never came up"
        else begin
          Unix.sleepf 0.05;
          go ()
        end
    in
    go ()
  in
  let build_req =
    Daemon.Protocol.Build
      {
        Daemon.Protocol.b_group = "sources.cm";
        b_policy = "cutoff";
        b_jobs = 1;
        b_cache = false;
        b_keep_going = false;
        b_werror = false;
        b_max_errors = None;
        b_error_json = false;
        b_schedule = "wavefront";
      }
  in
  let warm_request c =
    let r = Daemon.Client.request c build_req in
    if r.Daemon.Protocol.r_code <> 0 then failwith "e19: daemon build failed"
  in
  let c = connect () in
  warm_request c (* prime the daemon's warm state *);
  let cold_null_s =
    time_median (fun () ->
        ignore (Driver.build (Driver.create fs) ~policy:Driver.Cutoff ~sources))
  in
  let warm_null_s = time_median (fun () -> warm_request c) in
  (* an implementation edit per sample; mtimes pushed past the 1 s
     file-system granularity so every policy layer sees each edit *)
  let stamp = ref (Unix.gettimeofday ()) in
  let edit () =
    Gen.edit project (Gen.middle_file project) Gen.Impl_change;
    stamp := !stamp +. 5.;
    Unix.utimes (Filename.concat dir (Gen.middle_file project)) !stamp !stamp
  in
  let cold_edit_s =
    time_median (fun () ->
        edit ();
        ignore (Driver.build (Driver.create fs) ~policy:Driver.Cutoff ~sources))
  in
  let warm_edit_s =
    time_median (fun () ->
        edit ();
        warm_request c)
  in
  Daemon.Client.close c;
  let row scenario cold warm =
    record tbl_server
      (J.Obj
         [
           ("scenario", J.String scenario);
           ("units", J.Int units);
           ("lines", J.Int lines);
           ("cold_s", J.Float cold);
           ("warm_s", J.Float warm);
           ("speedup", J.Float (cold /. warm));
         ])
  in
  row "null_rebuild" cold_null_s warm_null_s;
  row "impl_edit_rebuild" cold_edit_s warm_edit_s;
  (* throughput: N client processes hammering null rebuilds
     concurrently — real CLI clients are separate processes, and forked
     children keep this experiment domain-free.  The daemon serves them
     one at a time, so this measures socket and scheduling overhead
     under contention, not parallel compilation *)
  let requests_per_client = if !quick then 5 else 20 in
  let throughput n =
    let t0 = Unix.gettimeofday () in
    let kids =
      List.init n (fun _ ->
          match Unix.fork () with
          | 0 ->
            (try
               let cl = connect () in
               for _ = 1 to requests_per_client do
                 warm_request cl
               done;
               Daemon.Client.close cl;
               Unix._exit 0
             with _ -> Unix._exit 1)
          | pid -> pid)
    in
    List.iter
      (fun pid ->
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> ()
        | _ -> failwith "e19: throughput client failed")
      kids;
    let wall = Unix.gettimeofday () -. t0 in
    let total = n * requests_per_client in
    let rps = float_of_int total /. wall in
    record tbl_server
      (J.Obj
         [
           ("scenario", J.String "throughput");
           ("clients", J.Int n);
           ("requests", J.Int total);
           ("wall_s", J.Float wall);
           ("requests_per_s", J.Float rps);
         ]);
    (wall, rps)
  in
  let rates = List.map (fun n -> (n, throughput n)) [ 1; 4; 8 ] in
  (* clean shutdown: ask nicely over the socket, then reap the child *)
  let stop = connect () in
  ignore (Daemon.Client.request stop Daemon.Protocol.Shutdown);
  Daemon.Client.close stop;
  ignore (Unix.waitpid [] daemon_pid);
  rm_rf dir;
  Printf.printf
    "%d units, %d lines (medians; daemon round-trip included in warm)\n\
     null rebuild   cold %8.3f ms   warm %8.3f ms   speedup %5.2fx\n\
     impl rebuild   cold %8.3f ms   warm %8.3f ms   speedup %5.2fx\n"
    units lines (1000. *. cold_null_s) (1000. *. warm_null_s)
    (cold_null_s /. warm_null_s)
    (1000. *. cold_edit_s) (1000. *. warm_edit_s)
    (cold_edit_s /. warm_edit_s);
  List.iter
    (fun (n, (wall, rps)) ->
      Printf.printf
        "  %d client%s  %3d null builds in %7.3f s   %8.1f req/s\n"
        n
        (if n = 1 then " " else "s")
        (n * requests_per_client) wall rps)
    rates

(* ------------------------------------------------------------------ *)
(* E20: critical-path scheduling vs wavefront on synthetic DAGs        *)
(* ------------------------------------------------------------------ *)

(* Drives Sched.run directly with sleep jobs, so the measured makespan
   is pure scheduling: the same DAG, the same per-node durations, once
   dispatched in caller order (wavefront) and once ranked by exact
   critical-path length with the static/codegen split on — the
   idealized version of what `irm build --schedule=critical-path`
   computes from profile-store estimates.  The DAGs are seeded and
   skewed (a few heavy long chains among many light nodes, listed
   late in caller order), the regime where dispatch order moves the
   makespan at all. *)
let e20 () =
  section "E20: critical-path scheduling vs wavefront (synthetic DAGs)";
  let jobs = 4 in
  let scale = if !quick then 0.4 else 1.0 in
  let run ~schedule ~order ~deps ~duration =
    (* the paper's factoring: the static part (parse/elaborate/hash) is
       the cheap prefix, codegen the bulk *)
    let static_s n = 0.4 *. duration n in
    let codegen_s n = 0.6 *. duration n in
    let priority =
      match schedule with
      | `Wavefront -> None
      | `Critical_path ->
        let dependents = Hashtbl.create 64 in
        List.iter
          (fun n -> List.iter (fun d -> Hashtbl.add dependents d n) (deps n))
          order;
        let cp = Hashtbl.create 64 in
        List.iter
          (fun n ->
            let down =
              List.fold_left
                (fun acc d -> Float.max acc (Hashtbl.find cp d))
                0.
                (Hashtbl.find_all dependents n)
            in
            Hashtbl.replace cp n (duration n +. down))
          (List.rev order);
        Some (fun n -> Hashtbl.find cp n)
    in
    let split =
      match schedule with
      | `Wavefront -> None
      | `Critical_path ->
        Some
          {
            Sched.sp_execute =
              (fun ~notify n ->
                Unix.sleepf (static_s n);
                notify "";
                Unix.sleepf (codegen_s n);
                n);
            sp_on_static = (fun _ _ -> ());
          }
    in
    let t0 = Unix.gettimeofday () in
    let outcomes =
      Sched.run ?priority ?split (Sched.Parallel jobs) ~order ~deps
        ~prepare:(fun n -> Sched.Run n)
        ~execute:(fun n ->
          Unix.sleepf (duration n);
          n)
        ~complete:(fun _ r -> r)
    in
    let wall = Unix.gettimeofday () -. t0 in
    if List.length outcomes <> List.length order then
      failwith "e20: lost outcomes";
    let eff =
      match Sched.last_slots () with
      | Some s ->
        Array.fold_left ( +. ) 0. s.Sched.sl_busy_s
        /. (float_of_int s.Sched.sl_jobs *. s.Sched.sl_wall_s)
      | None -> nan
    in
    (wall, eff)
  in
  (* deep: one heavy spine chain behind a fringe of light independent
     units that come first in caller order *)
  let deep ~seed =
    let rng = Random.State.make [| seed |] in
    let depth = 10 and fringe = 36 in
    let spine i = Printf.sprintf "spine%02d" i in
    let order =
      List.init fringe (Printf.sprintf "light%02d") @ List.init depth spine
    in
    let deps n =
      match String.sub n 0 5 with
      | "spine" when n <> spine 0 ->
        [ spine (int_of_string (String.sub n 5 2) - 1) ]
      | _ -> []
    in
    let duration = Hashtbl.create 64 in
    List.iter
      (fun n ->
        let base = if String.sub n 0 5 = "spine" then 0.030 else 0.006 in
        let jitter = 0.8 +. Random.State.float rng 0.4 in
        Hashtbl.replace duration n (base *. jitter *. scale))
      order;
    (order, deps, Hashtbl.find duration)
  in
  (* wide: independent chains of skewed length, shortest first in
     caller order, so the wavefront discovers the long poles last *)
  let wide ~seed =
    let rng = Random.State.make [| seed |] in
    let chains = 8 in
    let node c i = Printf.sprintf "c%d_%02d" c i in
    let order =
      List.concat
        (List.init chains (fun c -> List.init (c + 1) (node (c + 1))))
    in
    let deps n =
      let c = int_of_string (String.sub n 1 1) in
      let i = int_of_string (String.sub n 3 2) in
      if i = 0 then [] else [ node c (i - 1) ]
    in
    let duration = Hashtbl.create 64 in
    List.iter
      (fun n ->
        let jitter = 0.8 +. Random.State.float rng 0.4 in
        Hashtbl.replace duration n (0.024 *. jitter *. scale))
      order;
    (order, deps, Hashtbl.find duration)
  in
  List.iter
    (fun (scenario, (order, deps, duration)) ->
      let wf_s, wf_eff = run ~schedule:`Wavefront ~order ~deps ~duration in
      let cp_s, cp_eff = run ~schedule:`Critical_path ~order ~deps ~duration in
      let improvement = (wf_s -. cp_s) /. wf_s in
      record tbl_sched
        (J.Obj
           [
             ("scenario", J.String scenario);
             ("nodes", J.Int (List.length order));
             ("jobs", J.Int jobs);
             ("wavefront_s", J.Float wf_s);
             ("critical_path_s", J.Float cp_s);
             ("improvement", J.Float improvement);
             ("wavefront_eff", J.Float wf_eff);
             ("critical_path_eff", J.Float cp_eff);
           ]);
      Printf.printf
        "%-10s %2d nodes, %d jobs: wavefront %7.1f ms (eff %3.0f%%)   \
         critical-path %7.1f ms (eff %3.0f%%)   %+.0f%%\n"
        scenario (List.length order) jobs (1000. *. wf_s) (100. *. wf_eff)
        (1000. *. cp_s) (100. *. cp_eff)
        (100. *. improvement))
    [ ("deep-skew", deep ~seed:7); ("wide-skew", wide ~seed:21) ]

(* ------------------------------------------------------------------ *)
(* E21: distributed fabric — remote executors + shared cache           *)
(* ------------------------------------------------------------------ *)

(* the fabric's three headline figures: makespan as executors are
   added (1/2/4, each a separate forked process hosting its own worker
   pool), shared-cache hit rate for a second builder warming from the
   service, and what degraded mode costs when every executor is dead
   (dial failures, quarantine, then local fallback).
   NOTE: forks executor and cache-service processes, so main () must
   call this before anything spawns a domain (fork-after-domains is
   forbidden). *)
let e21 () =
  section "E21: distributed fabric — remote executors + shared cache";
  let units = if !quick then 10 else 20 in
  let lines = if !quick then 60 else 120 in
  let topology = Gen.Random_dag { units; max_deps = 3; seed = 83 } in
  let profile = Gen.sized_profile ~lines in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    | _ -> Unix.unlink path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  let tmp name =
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "smlsep-e21-%s-%d" name (Unix.getpid ()))
    in
    rm_rf path;
    path
  in
  let fresh_project name =
    let dir = tmp name in
    Unix.mkdir dir 0o755;
    let fs = Vfs.real ~dir in
    let project = Gen.create fs topology profile in
    (fs, Gen.sources project)
  in
  let await_sock path =
    let rec go n =
      if not (Sys.file_exists path) && n < 200 then begin
        Unix.sleepf 0.01;
        go (n + 1)
      end
    in
    go 0
  in
  (* fork one executor process hosting a 2-worker pool *)
  let spawn_exec i =
    let path = tmp (Printf.sprintf "exec%d" i) ^ ".sock" in
    let addr = Remote.Transport.Unix_sock path in
    match Unix.fork () with
    | 0 ->
      (try
         Remote.Exec.run
           (Remote.Exec.create
              ~mode:(Remote.Exec.Pool (Worker.default_config ~jobs:2 ()))
              addr (Irm.Wire.proto ()))
       with _ -> ());
      Unix._exit 0
    | pid ->
      await_sock path;
      (pid, addr)
  in
  let reap pid =
    (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
    try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  (* serial baseline *)
  let fs0, sources0 = fresh_project "serial" in
  let serial_s, _ =
    time (fun () ->
        Driver.build (Driver.create fs0) ~policy:Driver.Cutoff
          ~sources:sources0)
  in
  Printf.printf "  %-28s %8.3f s\n%!" "serial baseline" serial_s;
  (* makespan at 1 / 2 / 4 executors, cold every time *)
  List.iter
    (fun n_execs ->
      let workers = List.init n_execs spawn_exec in
      let execs = List.map snd workers in
      Fun.protect ~finally:(fun () -> List.iter (fun (p, _) -> reap p) workers)
      @@ fun () ->
      let fs, sources = fresh_project (Printf.sprintf "remote%d" n_execs) in
      let cfg =
        { (Remote.Fleet.default_config ~execs) with Remote.Fleet.r_log = ignore }
      in
      let wall_s, _ =
        time (fun () ->
            Driver.build (Driver.create fs)
              ~backend:(Driver.Remote cfg) ~policy:Driver.Cutoff ~sources)
      in
      Printf.printf "  %-28s %8.3f s  (%.2fx vs serial)\n%!"
        (Printf.sprintf "%d executor%s" n_execs
           (if n_execs = 1 then "" else "s"))
        wall_s (serial_s /. wall_s);
      record tbl_fabric
        (J.Obj
           [
             ("scenario", J.String "makespan");
             ("execs", J.Int n_execs);
             ("units", J.Int units);
             ("wall_s", J.Float wall_s);
             ("speedup", J.Float (serial_s /. wall_s));
           ]))
    [ 1; 2; 4 ];
  (* shared cache: a cold builder populates the service, a second
     builder on another "machine" warms from it *)
  let cache_sock = tmp "cache" ^ ".sock" in
  let cache_dir = tmp "cache-store" in
  Unix.mkdir cache_dir 0o755;
  let cache_pid =
    match Unix.fork () with
    | 0 ->
      (try
         Remote.Cached.run
           (Remote.Cached.create ~shards:4 ~dir:"."
              (Remote.Transport.Unix_sock cache_sock)
              (Vfs.real ~dir:cache_dir))
       with _ -> ());
      Unix._exit 0
    | pid ->
      await_sock cache_sock;
      pid
  in
  Fun.protect ~finally:(fun () -> reap cache_pid) @@ fun () ->
  let cached_build name =
    let fs, sources = fresh_project name in
    let client =
      Remote.Cache_client.create ~log:ignore
        (Remote.Transport.Unix_sock cache_sock)
    in
    Fun.protect ~finally:(fun () -> Remote.Cache_client.close client)
    @@ fun () ->
    let wall_s, stats =
      time (fun () ->
          Driver.build (Driver.create fs)
            ~cache:(Remote.Cache_client.ops client) ~policy:Driver.Cutoff
            ~sources)
    in
    (wall_s, List.length stats.Driver.st_cache_hits)
  in
  List.iter
    (fun (phase, name) ->
      let wall_s, hits = cached_build name in
      let hit_rate = float_of_int hits /. float_of_int units in
      Printf.printf "  %-28s %8.3f s  (%d/%d service hits)\n%!"
        (Printf.sprintf "shared cache, %s" phase)
        wall_s hits units;
      record tbl_fabric
        (J.Obj
           [
             ("scenario", J.String "shared-cache");
             ("phase", J.String phase);
             ("units", J.Int units);
             ("cache_hits", J.Int hits);
             ("hit_rate", J.Float hit_rate);
             ("wall_s", J.Float wall_s);
           ]))
    [ ("cold", "cache-cold"); ("warm", "cache-warm") ];
  (* degraded mode: every executor dead — dial failures, quarantine,
     local fallback; the build completes, this is what it costs *)
  let fs, sources = fresh_project "degraded" in
  let dead = Remote.Transport.Unix_sock (tmp "nobody" ^ ".sock") in
  let cfg =
    {
      (Remote.Fleet.default_config ~execs:[ dead ]) with
      Remote.Fleet.r_log = ignore;
      r_dial_timeout_s = 0.5;
      r_backoff_s = 0.005;
      r_backoff_cap_s = 0.05;
    }
  in
  let degraded_s, _ =
    time (fun () ->
        Driver.build (Driver.create fs)
          ~backend:(Driver.Remote cfg) ~policy:Driver.Cutoff ~sources)
  in
  Printf.printf "  %-28s %8.3f s  (%.2fx serial)\n%!" "degraded (all dead)"
    degraded_s
    (degraded_s /. serial_s);
  record tbl_fabric
    (J.Obj
       [
         ("scenario", J.String "degraded");
         ("units", J.Int units);
         ("serial_s", J.Float serial_s);
         ("degraded_s", J.Float degraded_s);
         ("overhead_ratio", J.Float (degraded_s /. serial_s));
       ])

(* ------------------------------------------------------------------ *)
(* E22: hot-swap latency vs full restart                               *)
(* ------------------------------------------------------------------ *)

let e22 () =
  let units = if !quick then 32 else 96 in
  section
    (Printf.sprintf
       "E22: hot-swap latency vs full restart (live relinking, %d-unit DAG)"
       units);
  let module Relink = Link.Relink in
  Printf.printf "%-6s | pins | %-10s | %-12s | speedup\n" "edit" "swap (ms)"
    "restart (ms)";
  List.iter
    (fun pins ->
      List.iter
        (fun (label, edit) ->
          let fs = Vfs.memory () in
          let project =
            Gen.create fs
              (Gen.Random_dag { units; max_deps = 3; seed = 29 })
              Gen.default_profile
          in
          let sources = Gen.sources project in
          let mgr = Driver.create fs in
          let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources in
          let live = Relink.create () in
          Relink.baseline live ~units:(Driver.link_snapshot mgr);
          (* in-flight clients holding the old epoch across the swap *)
          let held = List.init pins (fun _ -> Relink.pin live) in
          let swap_s =
            time_median (fun () ->
                (match edit with
                | Some e -> Gen.edit project (Gen.middle_file project) e
                | None -> ());
                let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources in
                ignore (Relink.swap live ~units:(Driver.link_snapshot mgr)))
          in
          List.iter (fun p -> Relink.unpin live p) held;
          (* the alternative: restart the process — rebuild the manager
             from the bins on disk and re-execute everything *)
          let restart_s =
            time_median (fun () ->
                let cold = Driver.create fs in
                let _ = Driver.build cold ~policy:Driver.Cutoff ~sources in
                ignore (Driver.run ~output:ignore cold ~sources))
          in
          let speedup = if swap_s > 0. then restart_s /. swap_s else 0. in
          record tbl_swap
            (J.Obj
               [
                 ("edit", J.String label);
                 ("pins", J.Int pins);
                 ("units", J.Int (Gen.size project));
                 ("swap_s", J.Float swap_s);
                 ("restart_s", J.Float restart_s);
                 ("speedup", J.Float speedup);
               ]);
          Printf.printf "%-6s | %4d | %10.2f | %12.2f | %6.2fx\n" label pins
            (1000. *. swap_s) (1000. *. restart_s) speedup)
        [
          ("null", None);
          ("impl", Some Gen.Impl_change);
          ("iface", Some Gen.Iface_change);
        ])
    [ 0; 4 ]

let parse_args () =
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        go rest
    | "--out" :: path :: rest ->
        out_path := path;
        go rest
    | [ "--out" ] ->
        Printf.eprintf "usage: %s [--quick] [--out FILE]\n  --out needs a file\n"
          Sys.argv.(0);
        exit 2
    | arg :: _ ->
        Printf.eprintf "usage: %s [--quick] [--out FILE]\n  unknown argument %s\n"
          Sys.argv.(0) arg;
        exit 2
  in
  go (List.tl (Array.to_list Sys.argv))

let () =
  parse_args ();
  print_endline "smlsep benchmark harness — reproduces the paper's evaluation";
  if !quick then
    print_endline "(quick mode: fewer repetitions, micro-benchmarks skipped)";
  (* e1/e12 are bechamel micro-benchmark suites: slow and not part of the
     JSON report, so quick mode skips them. *)
  if not !quick then e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  if not !quick then e12 ();
  (* E19 forks the daemon and its clients, E21 forks executor and
     cache-service processes, and E17 forks worker processes, so all
     three must run before anything creates a domain
     (fork-after-domains is forbidden).  E17's own domains variant
     makes it the last safe moment to fork, hence E19/E21 first. *)
  e19 ();
  e21 ();
  e17 ();
  e13 ();
  e14 ();
  e15 ();
  e16 ();
  e18 ();
  e20 ();
  e22 ();
  write_results ();
  Printf.printf "\nwrote %s\ndone.\n" !out_path
