#!/usr/bin/env python3
"""Validate a diagnostics envelope against schemas/diagnostics.schema.json.

Self-contained (stdlib only): the JSON Schema subset lives in
jsonschema_lite.py, shared with validate_profile.py.  Exits 0 when the
document conforms, 1 with a message when not.

    validate_diagnostics.py <schema.json> <document.json>
"""

import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from jsonschema_lite import Invalid, validate


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    with open(sys.argv[1]) as fp:
        schema = json.load(fp)
    with open(sys.argv[2]) as fp:
        document = json.load(fp)
    try:
        validate(document, schema, schema)
    except Invalid as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        sys.exit(1)
    diags = document.get("diagnostics", [])
    print(
        f"valid {schema.get('$id', 'schema')}: "
        f"{len(document.get('failed', []))} failed, "
        f"{len(document.get('skipped', []))} skipped, "
        f"{len(diags)} diagnostic(s)"
    )


if __name__ == "__main__":
    main()
