#!/usr/bin/env python3
"""Validate a diagnostics envelope against schemas/diagnostics.schema.json.

Self-contained (stdlib only): implements the subset of JSON Schema
draft-07 that the diagnostics schema uses — type, enum, const, pattern,
required, additionalProperties, items, $ref into #/definitions, and
minimum.  Exits 0 when the document conforms, 1 with a message when not.

    validate_diagnostics.py <schema.json> <document.json>
"""

import json
import re
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def type_ok(value, names):
    if isinstance(names, str):
        names = [names]
    for name in names:
        expected = TYPES[name]
        if isinstance(value, expected):
            # bool is an int in Python; don't let it satisfy "integer"
            if name in ("integer", "number") and isinstance(value, bool):
                continue
            return True
    return False


class Invalid(Exception):
    pass


def validate(value, schema, root, path="$"):
    if "$ref" in schema:
        ref = schema["$ref"]
        if not ref.startswith("#/"):
            raise Invalid(f"{path}: unsupported $ref {ref}")
        target = root
        for part in ref[2:].split("/"):
            target = target[part]
        return validate(value, target, root, path)
    if "const" in schema and value != schema["const"]:
        raise Invalid(f"{path}: expected const {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        raise Invalid(f"{path}: {value!r} not one of {schema['enum']}")
    if "type" in schema and not type_ok(value, schema["type"]):
        raise Invalid(f"{path}: expected {schema['type']}, got {type(value).__name__}")
    if "pattern" in schema:
        if not isinstance(value, str) or not re.search(schema["pattern"], value):
            raise Invalid(f"{path}: {value!r} does not match {schema['pattern']!r}")
    if "minimum" in schema:
        if isinstance(value, (int, float)) and value < schema["minimum"]:
            raise Invalid(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        props = schema.get("properties", {})
        for name in schema.get("required", []):
            if name not in value:
                raise Invalid(f"{path}: missing required property {name!r}")
        for name, item in value.items():
            if name in props:
                validate(item, props[name], root, f"{path}.{name}")
            elif schema.get("additionalProperties", True) is False:
                raise Invalid(f"{path}: unexpected property {name!r}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], root, f"{path}[{i}]")


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    with open(sys.argv[1]) as fp:
        schema = json.load(fp)
    with open(sys.argv[2]) as fp:
        document = json.load(fp)
    try:
        validate(document, schema, schema)
    except Invalid as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        sys.exit(1)
    diags = document.get("diagnostics", [])
    print(
        f"valid {schema.get('$id', 'schema')}: "
        f"{len(document.get('failed', []))} failed, "
        f"{len(document.get('skipped', []))} skipped, "
        f"{len(diags)} diagnostic(s)"
    )


if __name__ == "__main__":
    main()
