#!/usr/bin/env python3
"""Validate a build profile envelope against schemas/profile.schema.json.

Schema validation (stdlib only, via jsonschema_lite.py) plus the
cross-object invariants a schema can't express:

  - the cause histogram equals the per-unit causes
  - critical_path and top reference units from the units array
  - top is sorted slowest-first
  - counts tally with the per-unit outcomes
  - a wavefront build released no static views early and ranked every
    unit at priority 0 (priorities only exist under critical-path)

Exits 0 when the document conforms, 1 with a message when not.

    validate_profile.py <schema.json> <document.json>
"""

import json
import os
import sys
from collections import Counter

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from jsonschema_lite import Invalid, validate


def cross_checks(doc):
    units = doc["units"]
    names = {u["unit"] for u in units}
    histogram = Counter(u["cause"] for u in units if u["cause"] is not None)
    if dict(histogram) != doc["causes"]:
        raise Invalid(
            f"$.causes: histogram {doc['causes']} does not match "
            f"per-unit causes {dict(histogram)}"
        )
    for field in ("critical_path", "top"):
        for i, entry in enumerate(doc[field]):
            if entry["unit"] not in names:
                raise Invalid(f"$.{field}[{i}]: unknown unit {entry['unit']!r}")
    walls = [entry["wall_s"] for entry in doc["top"]]
    if walls != sorted(walls, reverse=True):
        raise Invalid("$.top: not sorted slowest-first")
    outcomes = Counter(u["outcome"] for u in units)
    counts = doc["build"]["counts"]
    for outcome, n in counts.items():
        # "recompiled" in counts excludes cutoff hits, which pp reports
        # separately; outcome_of already splits them the same way
        if outcomes.get(outcome, 0) != n:
            raise Invalid(
                f"$.build.counts.{outcome}: {n} but units array has "
                f"{outcomes.get(outcome, 0)}"
            )
    if doc["build"]["schedule"] == "wavefront":
        if doc["build"]["static_releases"] != 0:
            raise Invalid(
                "$.build.static_releases: non-zero under the wavefront "
                "schedule"
            )
        for i, u in enumerate(units):
            if u["priority"] != 0:
                raise Invalid(
                    f"$.units[{i}].priority: non-zero under the wavefront "
                    "schedule"
                )


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    with open(sys.argv[1]) as fp:
        schema = json.load(fp)
    with open(sys.argv[2]) as fp:
        document = json.load(fp)
    try:
        validate(document, schema, schema)
        cross_checks(document)
    except Invalid as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        sys.exit(1)
    build = document["build"]
    print(
        f"valid {schema.get('$id', 'schema')}: build {build['id']} "
        f"({build['policy']}, {build['backend']}, {build['schedule']} "
        f"schedule, {build['static_releases']} static release(s)), "
        f"{len(document['units'])} unit(s), "
        f"causes {document['causes']}, "
        f"store {document['store']['builds']} build(s) / "
        f"{document['store']['bytes']} bytes"
    )


if __name__ == "__main__":
    main()
