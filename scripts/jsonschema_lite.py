"""A stdlib-only validator for the subset of JSON Schema draft-07 the
repo's schemas use: type, enum, const, pattern, required,
additionalProperties (boolean or schema), items, $ref into
#/definitions, minimum and maximum.

Shared by validate_diagnostics.py and validate_profile.py so both CLIs
check their envelopes against the same semantics.  Raises Invalid with
a $-rooted path on the first violation.
"""

import re

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


class Invalid(Exception):
    pass


def type_ok(value, names):
    if isinstance(names, str):
        names = [names]
    for name in names:
        expected = TYPES[name]
        if isinstance(value, expected):
            # bool is an int in Python; don't let it satisfy "integer"
            if name in ("integer", "number") and isinstance(value, bool):
                continue
            return True
    return False


def validate(value, schema, root, path="$"):
    if "$ref" in schema:
        ref = schema["$ref"]
        if not ref.startswith("#/"):
            raise Invalid(f"{path}: unsupported $ref {ref}")
        target = root
        for part in ref[2:].split("/"):
            target = target[part]
        return validate(value, target, root, path)
    if "const" in schema and value != schema["const"]:
        raise Invalid(f"{path}: expected const {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        raise Invalid(f"{path}: {value!r} not one of {schema['enum']}")
    if "type" in schema and not type_ok(value, schema["type"]):
        raise Invalid(f"{path}: expected {schema['type']}, got {type(value).__name__}")
    if "pattern" in schema:
        if not isinstance(value, str) or not re.search(schema["pattern"], value):
            raise Invalid(f"{path}: {value!r} does not match {schema['pattern']!r}")
    if "minimum" in schema:
        if isinstance(value, (int, float)) and value < schema["minimum"]:
            raise Invalid(f"{path}: {value} < minimum {schema['minimum']}")
    if "maximum" in schema:
        if isinstance(value, (int, float)) and value > schema["maximum"]:
            raise Invalid(f"{path}: {value} > maximum {schema['maximum']}")
    if isinstance(value, dict):
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for name in schema.get("required", []):
            if name not in value:
                raise Invalid(f"{path}: missing required property {name!r}")
        for name, item in value.items():
            if name in props:
                validate(item, props[name], root, f"{path}.{name}")
            elif extra is False:
                raise Invalid(f"{path}: unexpected property {name!r}")
            elif isinstance(extra, dict):
                validate(item, extra, root, f"{path}.{name}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], root, f"{path}[{i}]")
