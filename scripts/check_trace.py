#!/usr/bin/env python3
"""Check that a Chrome trace_event file is well-formed (stdlib only).

Invariants checked, per the trace contract in lib/obs/trace.mli:

  - the document is {"traceEvents": [...], "displayTimeUnit": ...}
  - every event has name/cat/ph/ts/pid/tid; ph is "X" (with dur >= 0)
    or "i"
  - timestamps are non-negative and non-decreasing per (pid, tid) after
    the writer's global sort — child events shipped over the wire must
    land in parent time, so a clock-offset bug shows up here
  - per (pid, tid), complete spans nest: two spans either don't overlap
    or one contains the other (balanced bracketing)

Options assert aggregation properties of a multi-process build:

    --expect-pid-count N   at least N distinct pids (parent + children)
    --expect-truncated     at least one span with args.truncated = "true"
                           (the supervisor's stand-in for a crashed
                           worker's dying compile)
    --expect-stages        at least one compile.static and one
                           compile.codegen span (the critical-path
                           schedule's pipelined phase split was active)
    --expect-stage-overlap at least one unit's compile.static span
                           overlaps another unit's compile.codegen span
                           in wall time: a dependent demonstrably
                           started before its dependency finished
                           code generation

    check_trace.py trace.json [--expect-pid-count N] [--expect-truncated]
                              [--expect-stages] [--expect-stage-overlap]
"""

import argparse
import json
import sys


# clock-offset-corrected child timestamps accumulate float rounding;
# tolerate 10ns of slop on the microsecond scale
EPS = 0.01


def fail(msg):
    print(f"MALFORMED: {msg}", file=sys.stderr)
    sys.exit(1)


def stage_spans(events):
    """(unit, start, end) per compile.static / compile.codegen span."""
    stages = {"compile.static": [], "compile.codegen": []}
    for ev in events:
        if ev.get("ph") == "X" and ev.get("name") in stages:
            unit = ev.get("args", {}).get("unit", "?")
            stages[ev["name"]].append((unit, ev["ts"], ev["ts"] + ev["dur"]))
    return stages


def stage_overlaps(stages):
    """Pairs where one unit's static span overlaps another's codegen."""
    pairs = []
    for su, ss, se in stages["compile.static"]:
        for cu, cs, ce in stages["compile.codegen"]:
            if su != cu and ss < ce - EPS and cs < se - EPS:
                pairs.append((su, cu))
    return pairs


def check(path, expect_pid_count, expect_truncated, expect_stages,
          expect_stage_overlap):
    with open(path) as fp:
        doc = json.load(fp)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("no traceEvents array")
    events = doc["traceEvents"]
    by_track = {}
    for i, ev in enumerate(events):
        for key in ("name", "cat", "ph", "ts", "pid", "tid"):
            if key not in ev:
                fail(f"event {i} missing {key!r}")
        if ev["ph"] not in ("X", "i"):
            fail(f"event {i} ({ev['name']}): unexpected ph {ev['ph']!r}")
        if ev["ts"] < 0:
            fail(f"event {i} ({ev['name']}): negative ts {ev['ts']}")
        if ev["ph"] == "X" and ev.get("dur", -1) < 0:
            fail(f"event {i} ({ev['name']}): complete span without dur")
        by_track.setdefault((ev["pid"], ev["tid"]), []).append(ev)

    for (pid, tid), track in by_track.items():
        last_ts = -1.0
        for ev in track:
            if ev["ts"] < last_ts:
                fail(
                    f"pid {pid} tid {tid}: ts went backwards at "
                    f"{ev['name']} ({ev['ts']} < {last_ts})"
                )
            last_ts = ev["ts"]
        # spans nest: walk a stack of open intervals in start order.
        # Ties on the (microsecond-quantized) start go longest-first,
        # so a retroactively recorded enclosing span (compile.static)
        # is seen before its first child
        stack = []
        spans = sorted(
            (ev for ev in track if ev["ph"] == "X"),
            key=lambda ev: (ev["ts"], -ev["dur"]),
        )
        for ev in spans:
            start, end = ev["ts"], ev["ts"] + ev["dur"]
            while stack and start >= stack[-1] - EPS:
                stack.pop()
            if stack and end > stack[-1] + EPS:
                fail(
                    f"pid {pid} tid {tid}: span {ev['name']} "
                    f"[{start}, {end}] straddles an enclosing span "
                    f"ending at {stack[-1]}"
                )
            stack.append(end)

    pids = {ev["pid"] for ev in events}
    if expect_pid_count is not None and len(pids) < expect_pid_count:
        fail(f"expected >= {expect_pid_count} pids, got {sorted(pids)}")
    truncated = [
        ev
        for ev in events
        if ev.get("args", {}).get("truncated") == "true"
    ]
    if expect_truncated and not truncated:
        fail("expected a truncated span (crashed worker salvage), found none")
    stages = stage_spans(events)
    overlaps = stage_overlaps(stages)
    if expect_stages and not (
        stages["compile.static"] and stages["compile.codegen"]
    ):
        fail(
            "expected compile.static and compile.codegen spans (pipelined "
            f"phase split), got {len(stages['compile.static'])} static / "
            f"{len(stages['compile.codegen'])} codegen"
        )
    if expect_stage_overlap and not overlaps:
        fail(
            "expected a unit's compile.static span to overlap another "
            "unit's compile.codegen span, found no such pair"
        )
    print(
        f"well-formed: {len(events)} event(s), {len(pids)} pid(s), "
        f"{len(by_track)} track(s), {len(truncated)} truncated span(s), "
        f"{len(stages['compile.static'])} static / "
        f"{len(stages['compile.codegen'])} codegen stage span(s), "
        f"{len(overlaps)} stage overlap(s)"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace")
    parser.add_argument("--expect-pid-count", type=int, default=None)
    parser.add_argument("--expect-truncated", action="store_true")
    parser.add_argument("--expect-stages", action="store_true")
    parser.add_argument("--expect-stage-overlap", action="store_true")
    args = parser.parse_args()
    check(args.trace, args.expect_pid_count, args.expect_truncated,
          args.expect_stages, args.expect_stage_overlap)


if __name__ == "__main__":
    main()
