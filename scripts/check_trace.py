#!/usr/bin/env python3
"""Check that a Chrome trace_event file is well-formed (stdlib only).

Invariants checked, per the trace contract in lib/obs/trace.mli:

  - the document is {"traceEvents": [...], "displayTimeUnit": ...}
  - every event has name/cat/ph/ts/pid/tid; ph is "X" (with dur >= 0)
    or "i"
  - timestamps are non-negative and non-decreasing per (pid, tid) after
    the writer's global sort — child events shipped over the wire must
    land in parent time, so a clock-offset bug shows up here
  - per (pid, tid), complete spans nest: two spans either don't overlap
    or one contains the other (balanced bracketing)

Options assert aggregation properties of a multi-process build:

    --expect-pid-count N   at least N distinct pids (parent + children)
    --expect-truncated     at least one span with args.truncated = "true"
                           (the supervisor's stand-in for a crashed
                           worker's dying compile)

    check_trace.py trace.json [--expect-pid-count N] [--expect-truncated]
"""

import argparse
import json
import sys


# clock-offset-corrected child timestamps accumulate float rounding;
# tolerate 10ns of slop on the microsecond scale
EPS = 0.01


def fail(msg):
    print(f"MALFORMED: {msg}", file=sys.stderr)
    sys.exit(1)


def check(path, expect_pid_count, expect_truncated):
    with open(path) as fp:
        doc = json.load(fp)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("no traceEvents array")
    events = doc["traceEvents"]
    by_track = {}
    for i, ev in enumerate(events):
        for key in ("name", "cat", "ph", "ts", "pid", "tid"):
            if key not in ev:
                fail(f"event {i} missing {key!r}")
        if ev["ph"] not in ("X", "i"):
            fail(f"event {i} ({ev['name']}): unexpected ph {ev['ph']!r}")
        if ev["ts"] < 0:
            fail(f"event {i} ({ev['name']}): negative ts {ev['ts']}")
        if ev["ph"] == "X" and ev.get("dur", -1) < 0:
            fail(f"event {i} ({ev['name']}): complete span without dur")
        by_track.setdefault((ev["pid"], ev["tid"]), []).append(ev)

    for (pid, tid), track in by_track.items():
        last_ts = -1.0
        for ev in track:
            if ev["ts"] < last_ts:
                fail(
                    f"pid {pid} tid {tid}: ts went backwards at "
                    f"{ev['name']} ({ev['ts']} < {last_ts})"
                )
            last_ts = ev["ts"]
        # spans nest: walk a stack of open intervals in start order
        stack = []
        for ev in track:
            if ev["ph"] != "X":
                continue
            start, end = ev["ts"], ev["ts"] + ev["dur"]
            while stack and start >= stack[-1] - EPS:
                stack.pop()
            if stack and end > stack[-1] + EPS:
                fail(
                    f"pid {pid} tid {tid}: span {ev['name']} "
                    f"[{start}, {end}] straddles an enclosing span "
                    f"ending at {stack[-1]}"
                )
            stack.append(end)

    pids = {ev["pid"] for ev in events}
    if expect_pid_count is not None and len(pids) < expect_pid_count:
        fail(f"expected >= {expect_pid_count} pids, got {sorted(pids)}")
    truncated = [
        ev
        for ev in events
        if ev.get("args", {}).get("truncated") == "true"
    ]
    if expect_truncated and not truncated:
        fail("expected a truncated span (crashed worker salvage), found none")
    print(
        f"well-formed: {len(events)} event(s), {len(pids)} pid(s), "
        f"{len(by_track)} track(s), {len(truncated)} truncated span(s)"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace")
    parser.add_argument("--expect-pid-count", type=int, default=None)
    parser.add_argument("--expect-truncated", action="store_true")
    args = parser.parse_args()
    check(args.trace, args.expect_pid_count, args.expect_truncated)


if __name__ == "__main__":
    main()
