#!/usr/bin/env python3
"""Validate a compile-server status envelope against schemas/daemon.schema.json.

Schema validation (stdlib only, via jsonschema_lite.py) plus the
cross-object invariants a schema can't express:

  - at least one connection is open (the status probe itself)
  - served counts at least the probe that produced the document
  - tracked files cover every unit of every group once a build ran
  - eager watch never accumulates dirty files (it rebuilds on the spot)

Exits 0 when the document conforms, 1 with a message when not.

    validate_daemon.py <schema.json> <document.json>
"""

import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from jsonschema_lite import Invalid, validate


def cross_checks(doc):
    if doc["clients"] < 1:
        raise Invalid("$.clients: the status probe itself holds a connection")
    if doc["served"] < 1:
        raise Invalid("$.served: the status probe itself was served")
    watch = doc["watch"]
    built = [g for g in doc["groups"] if g["builds"] > 0]
    if built:
        # each built group tracks its group file plus every unit
        floor = sum(g["units"] + 1 for g in built)
        if watch["tracked"] < floor:
            raise Invalid(
                f"$.watch.tracked: {watch['tracked']} files tracked but "
                f"built groups alone span {floor}"
            )
    if watch["eager"]:
        for i, g in enumerate(doc["groups"]):
            if g["dirty"]:
                raise Invalid(
                    f"$.groups[{i}].dirty: eager watch must rebuild "
                    f"instead of accumulating {g['dirty']}"
                )


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    with open(sys.argv[1]) as fp:
        schema = json.load(fp)
    with open(sys.argv[2]) as fp:
        document = json.load(fp)
    try:
        validate(document, schema, schema)
        cross_checks(document)
    except Invalid as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        sys.exit(1)
    watch = document["watch"]
    print(
        f"valid {schema.get('$id', 'schema')}: daemon pid {document['pid']}, "
        f"{document['served']} request(s) served, "
        f"{'eager' if watch['eager'] else 'lazy'} watch over "
        f"{watch['tracked']} file(s), {len(document['groups'])} group(s)"
    )


if __name__ == "__main__":
    main()
