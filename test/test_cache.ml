(* The content-addressed unit cache: warm-cache rebuilds from clean,
   miss-on-edit / hit-on-revert, LRU eviction under a byte budget, and
   corruption (object or index) degrading to misses, never to errors. *)

module Gen = Workload.Gen
module Driver = Irm.Driver

let setup () =
  let fs = Vfs.memory () in
  let project = Gen.create fs (Gen.Diamond 3) Gen.default_profile in
  (fs, project, Gen.sources project)

let clean_bins fs sources =
  List.iter (fun f -> fs.Vfs.fs_remove (f ^ ".bin")) sources

let cache_objects fs =
  List.filter
    (fun path ->
      String.length path > 19
      && String.equal (String.sub path 0 19) ".irm-cache/objects/")
    (fs.Vfs.fs_list ())

let test_warm_cache_from_clean () =
  let fs, _, sources = setup () in
  let mgr = Driver.create fs in
  let s0 =
    Driver.build ~cache:(Cache.ops (Cache.create fs)) mgr ~policy:Driver.Cutoff ~sources
  in
  Alcotest.(check int) "cold build compiles everything" (List.length sources)
    (List.length s0.Driver.st_recompiled);
  clean_bins fs sources;
  (* fresh manager and fresh cache handle over the same file system:
     a new process finding the cache a previous one left behind *)
  let mgr2 = Driver.create fs in
  let s1 =
    Driver.build ~cache:(Cache.ops (Cache.create fs)) mgr2 ~policy:Driver.Cutoff ~sources
  in
  Alcotest.(check int) "warm from-clean build recompiles nothing" 0
    (List.length s1.Driver.st_recompiled);
  Alcotest.(check int) "every unit served from the cache"
    (List.length sources)
    (List.length s1.Driver.st_cache_hits);
  (* and the result is a working build *)
  let dynenv = Driver.run mgr2 ~sources in
  Alcotest.(check int) "cached build runs" (List.length sources)
    (Digestkit.Pid.Map.cardinal dynenv)

let test_edit_misses_revert_hits () =
  let fs, project, sources = setup () in
  let cache = Cache.create fs in
  let mgr = Driver.create fs in
  let _ = Driver.build ~cache:(Cache.ops cache) mgr ~policy:Driver.Cutoff ~sources in
  let victim = Gen.middle_file project in
  let original = Option.get (fs.Vfs.fs_read victim) in
  Gen.edit project victim Gen.Impl_change;
  let s1 = Driver.build ~cache:(Cache.ops cache) mgr ~policy:Driver.Cutoff ~sources in
  Alcotest.(check (list string)) "edited source misses and recompiles"
    [ victim ] s1.Driver.st_recompiled;
  Alcotest.(check (list string)) "no hit for never-seen content" []
    s1.Driver.st_cache_hits;
  (* revert: same bytes as the first build, newer mtime — stale by
     timestamp, but the content address is back in the cache *)
  fs.Vfs.fs_write victim original;
  let s2 = Driver.build ~cache:(Cache.ops cache) mgr ~policy:Driver.Cutoff ~sources in
  Alcotest.(check (list string)) "reverted source hits" [ victim ]
    s2.Driver.st_cache_hits;
  Alcotest.(check (list string)) "nothing recompiled on revert" []
    s2.Driver.st_recompiled

let test_eviction_respects_budget () =
  let fs = Vfs.memory () in
  let cache = Cache.create ~budget_bytes:100 fs in
  let blob c = String.make 40 c in
  Cache.store cache "aa" (blob 'a');
  Cache.store cache "bb" (blob 'b');
  ignore (Cache.find cache "aa");
  (* 120 bytes would exceed the 100-byte budget: the LRU entry — bb,
     since aa was just touched — must go *)
  Cache.store cache "cc" (blob 'c');
  let st = Cache.stats cache in
  Alcotest.(check bool) "within budget" true (st.Cache.cs_bytes <= 100);
  Alcotest.(check int) "two entries left" 2 st.Cache.cs_entries;
  Alcotest.(check bool) "LRU entry evicted" true (Cache.find cache "bb" = None);
  Alcotest.(check bool) "recently-used entry survives" true
    (Cache.find cache "aa" <> None);
  Alcotest.(check bool) "new entry survives" true
    (Cache.find cache "cc" <> None);
  (* an entry larger than the whole budget is refused outright *)
  Cache.store cache "dd" (String.make 200 'd');
  Alcotest.(check bool) "oversized entry not stored" true
    (Cache.find cache "dd" = None)

let test_corrupt_objects_degrade_to_misses () =
  let fs, _, sources = setup () in
  let mgr = Driver.create fs in
  let _ =
    Driver.build ~cache:(Cache.ops (Cache.create fs)) mgr ~policy:Driver.Cutoff ~sources
  in
  (* smash every cached object, keeping sizes intact so the index still
     trusts them: the CRC check in Binfile.read must catch it *)
  List.iter
    (fun path ->
      let size = String.length (Option.get (fs.Vfs.fs_read path)) in
      fs.Vfs.fs_write path (String.make size 'x'))
    (cache_objects fs);
  clean_bins fs sources;
  let mgr2 = Driver.create fs in
  let s =
    Driver.build ~cache:(Cache.ops (Cache.create fs)) mgr2 ~policy:Driver.Cutoff ~sources
  in
  Alcotest.(check int) "all recompiled, no error" (List.length sources)
    (List.length s.Driver.st_recompiled);
  Alcotest.(check (list string)) "no hits from garbage" []
    s.Driver.st_cache_hits

let test_truncated_objects_degrade_to_misses () =
  let fs, _, sources = setup () in
  let mgr = Driver.create fs in
  let _ =
    Driver.build ~cache:(Cache.ops (Cache.create fs)) mgr ~policy:Driver.Cutoff ~sources
  in
  (* truncate instead: the size recorded in the index no longer
     matches, which the cache itself must treat as a miss *)
  List.iter (fun path -> fs.Vfs.fs_write path "stub") (cache_objects fs);
  clean_bins fs sources;
  let mgr2 = Driver.create fs in
  let s =
    Driver.build ~cache:(Cache.ops (Cache.create fs)) mgr2 ~policy:Driver.Cutoff ~sources
  in
  Alcotest.(check int) "all recompiled, no error" (List.length sources)
    (List.length s.Driver.st_recompiled)

let test_corrupt_index_is_empty_cache () =
  let fs = Vfs.memory () in
  fs.Vfs.fs_write ".irm-cache/index" "complete garbage\n-3 x\nnot a line";
  let cache = Cache.create fs in
  Alcotest.(check int) "damaged index reads as empty" 0
    (Cache.stats cache).Cache.cs_entries;
  (* and the instance still works *)
  let key =
    Cache.key ~version:"v1" ~name:"u.sml" ~source:"val x = 1" ~import_pids:[]
  in
  Cache.store cache key "some bytes";
  Alcotest.(check bool) "store after damage works" true
    (Cache.find cache key <> None)

let test_key_sensitivity () =
  let pid_a = Digestkit.Pid.intrinsic "interface a" in
  let pid_b = Digestkit.Pid.intrinsic "interface b" in
  let base =
    Cache.key ~version:"v1" ~name:"u.sml" ~source:"src"
      ~import_pids:[ pid_a; pid_b ]
  in
  let same_reordered =
    Cache.key ~version:"v1" ~name:"u.sml" ~source:"src"
      ~import_pids:[ pid_b; pid_a ]
  in
  Alcotest.(check string) "import order does not matter" base same_reordered;
  List.iter
    (fun (label, key) ->
      Alcotest.(check bool) label false (String.equal base key))
    [
      ( "source changes the key",
        Cache.key ~version:"v1" ~name:"u.sml" ~source:"src'"
          ~import_pids:[ pid_a; pid_b ] );
      ( "imports change the key",
        Cache.key ~version:"v1" ~name:"u.sml" ~source:"src"
          ~import_pids:[ pid_a ] );
      ( "version changes the key",
        Cache.key ~version:"v2" ~name:"u.sml" ~source:"src"
          ~import_pids:[ pid_a; pid_b ] );
      ( "unit name changes the key",
        Cache.key ~version:"v1" ~name:"v.sml" ~source:"src"
          ~import_pids:[ pid_a; pid_b ] );
    ]

let test_clear_and_gc () =
  let fs = Vfs.memory () in
  let cache = Cache.create ~budget_bytes:1000 fs in
  Cache.store cache "aa" (String.make 30 'a');
  Cache.store cache "bb" (String.make 30 'b');
  let report = Cache.gc cache in
  Alcotest.(check int) "gc under budget evicts nothing" 0
    report.Cache.gc_evicted;
  Alcotest.(check int) "gc under budget keeps everything" 2
    (Cache.stats cache).Cache.cs_entries;
  Cache.clear cache;
  Alcotest.(check int) "clear drops everything" 0
    (Cache.stats cache).Cache.cs_entries;
  Alcotest.(check int) "clear leaves no bytes" 0
    (Cache.stats cache).Cache.cs_bytes;
  Alcotest.(check bool) "objects gone from disk" true (cache_objects fs = [])

let test_crash_between_object_and_index () =
  let fs = Vfs.memory () in
  (* a store is: commit the object (write 1), then commit the journal
     record (write 2).  Crash during write 2: the object is on disk but
     no index will ever learn the key *)
  let ffs, _ = Vfs.faulty ~plan:[ Vfs.Write_crash (2, 5) ] fs in
  let cache = Cache.create ffs in
  (match Cache.store cache "aa" (String.make 30 'a') with
  | () -> Alcotest.fail "store should crash mid-journal-update"
  | exception Vfs.Crash _ -> ());
  Alcotest.(check int) "the orphaned object is on disk" 1
    (List.length (cache_objects fs));
  (* the next process: the key is a miss, never a torn hit *)
  let cache2 = Cache.create fs in
  Alcotest.(check int) "crashed store is invisible to the index" 0
    (Cache.stats cache2).Cache.cs_entries;
  Alcotest.(check bool) "lookup degrades to a miss" true
    (Cache.find cache2 "aa" = None);
  (* gc reclaims the orphan (and the torn journal staging file) *)
  let report = Cache.gc cache2 in
  Alcotest.(check bool) "gc finds the orphans" true
    (report.Cache.gc_orphans >= 1);
  Alcotest.(check bool) "gc reports the reclaimed bytes" true
    (report.Cache.gc_reclaimed_bytes >= 30);
  Alcotest.(check (list string)) "objects directory is clean" []
    (cache_objects fs)

let test_concurrent_eviction_during_lookup () =
  let fs = Vfs.memory () in
  let a = Cache.create fs in
  Cache.store a "aa" (String.make 30 'a');
  Cache.store a "bb" (String.make 30 'b');
  (* a second process opens the same cache and learns both keys *)
  let b = Cache.create fs in
  Alcotest.(check int) "second handle sees both entries" 2
    (Cache.stats b).Cache.cs_entries;
  (* the first process evicts aa behind the second one's back *)
  Cache.invalidate a "aa";
  Alcotest.(check bool) "stale lookup degrades to a miss" true
    (Cache.find b "aa" = None);
  Alcotest.(check bool) "unaffected entries still hit" true
    (Cache.find b "bb" <> None);
  (* and the first process clearing everything is just more misses *)
  Cache.clear a;
  Alcotest.(check bool) "lookup after a concurrent clear" true
    (Cache.find b "bb" = None)

let test_gc_reclaims_strays () =
  let fs = Vfs.memory () in
  let cache = Cache.create fs in
  Cache.store cache "aa" (String.make 30 'a');
  (* a stray object nothing indexes, and a staging file left by some
     interrupted commit *)
  fs.Vfs.fs_write ".irm-cache/objects/deadbeef" (String.make 25 'x');
  fs.Vfs.fs_write ".irm-cache/objects/cafe.#commit" (String.make 15 'y');
  let report = Cache.gc cache in
  Alcotest.(check int) "both strays reclaimed" 2 report.Cache.gc_orphans;
  Alcotest.(check int) "reclaimed bytes reported" 40
    report.Cache.gc_reclaimed_bytes;
  Alcotest.(check bool) "live entry untouched" true
    (Cache.find cache "aa" <> None);
  Alcotest.(check int) "nothing evicted" 0 report.Cache.gc_evicted

(* journal compaction racing a crash: gc's only eligible write is the
   index-snapshot commit (the stores ran fault-free beforehand), so
   [Write_crash (1, k)] walks the truncation point through every byte of
   the snapshot.  Whatever the offset, the staged temp never reaches the
   final name: a reopened cache must see exactly the stored entries — no
   lost, no phantom. *)
let compaction_entries = 5

let populate_cache fs =
  let cache = Cache.create fs in
  let entries =
    List.init compaction_entries (fun i ->
        ( Printf.sprintf "%02x%02x" i i,
          String.make (20 + i) (Char.chr (Char.code 'a' + i)) ))
  in
  List.iter (fun (k, v) -> Cache.store cache k v) entries;
  entries

let check_entries_survive name fs entries =
  let cache = Cache.create fs in
  Alcotest.(check int)
    (name ^ ": no lost or phantom entries")
    compaction_entries
    (Cache.stats cache).Cache.cs_entries;
  List.iter
    (fun (key, value) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: entry %s intact" name key)
        true
        (Cache.find cache key = Some value))
    entries

let test_compaction_crash_recovery () =
  (* measure the compacted snapshot on a pristine twin — the memory fs
     is deterministic, so every trial below writes identical bytes *)
  let fs0 = Vfs.memory () in
  let _ = populate_cache fs0 in
  ignore (Cache.gc (Cache.create fs0));
  let index_len =
    String.length (Option.get (fs0.Vfs.fs_read ".irm-cache/index"))
  in
  Alcotest.(check bool) "snapshot is non-trivial" true (index_len > 0);
  for k = 0 to index_len do
    let fs = Vfs.memory () in
    let entries = populate_cache fs in
    let ffs, _ = Vfs.faulty ~plan:[ Vfs.Write_crash (1, k) ] fs in
    (match Cache.gc (Cache.create ffs) with
    | _ -> Alcotest.failf "gc truncated at %d should crash" k
    | exception Vfs.Crash _ -> ());
    check_entries_survive (Printf.sprintf "crash at byte %d" k) fs entries
  done

let test_stale_journal_replay () =
  (* the other half of the compaction window: the new snapshot reached
     the final name but the crash hit before the journal was removed.
     Replaying the stale journal over the fresh snapshot must be
     idempotent — same entries, no duplicates. *)
  let fs = Vfs.memory () in
  let entries = populate_cache fs in
  let stale_journal = Option.get (fs.Vfs.fs_read ".irm-cache/journal") in
  ignore (Cache.gc (Cache.create fs));
  Alcotest.(check bool) "compaction removed the journal" true
    (fs.Vfs.fs_read ".irm-cache/journal" = None);
  fs.Vfs.fs_write ".irm-cache/journal" stale_journal;
  check_entries_survive "stale journal replay" fs entries

let suite =
  [
    Alcotest.test_case "warm cache rebuilds from clean" `Quick
      test_warm_cache_from_clean;
    Alcotest.test_case "edit misses, revert hits" `Quick
      test_edit_misses_revert_hits;
    Alcotest.test_case "eviction respects budget" `Quick
      test_eviction_respects_budget;
    Alcotest.test_case "corrupt objects are misses" `Quick
      test_corrupt_objects_degrade_to_misses;
    Alcotest.test_case "truncated objects are misses" `Quick
      test_truncated_objects_degrade_to_misses;
    Alcotest.test_case "corrupt index is empty cache" `Quick
      test_corrupt_index_is_empty_cache;
    Alcotest.test_case "key sensitivity" `Quick test_key_sensitivity;
    Alcotest.test_case "clear and gc" `Quick test_clear_and_gc;
    Alcotest.test_case "crash between object write and index update" `Quick
      test_crash_between_object_and_index;
    Alcotest.test_case "concurrent eviction during lookup" `Quick
      test_concurrent_eviction_during_lookup;
    Alcotest.test_case "gc reclaims strays" `Quick test_gc_reclaims_strays;
    Alcotest.test_case "compaction crash at every write offset" `Quick
      test_compaction_crash_recovery;
    Alcotest.test_case "stale journal replay is idempotent" `Quick
      test_stale_journal_replay;
  ]
