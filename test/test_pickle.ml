(* Byte-level and serialization-layer tests: varints, readers, token
   encoding, environment serialization details. *)

module Buf = Pickle.Buf
module Serial = Pickle.Serial
module Types = Statics.Types
module Stamp = Statics.Stamp
module Symbol = Support.Symbol
module Pid = Digestkit.Pid

let roundtrip_int n =
  let w = Buf.writer () in
  Buf.int w n;
  let r = Buf.reader (Buf.contents w) in
  let back = Buf.read_int r in
  Alcotest.(check int) (Printf.sprintf "varint %d" n) n back;
  Alcotest.(check bool) "fully consumed" true (Buf.at_end r)

let test_varints () =
  List.iter roundtrip_int
    [ 0; 1; -1; 63; 64; -64; -65; 127; 128; 16383; 16384; -100000;
      max_int / 2; -(max_int / 2) ]

let test_strings_options_lists () =
  let w = Buf.writer () in
  Buf.string w "hello";
  Buf.string w "";
  Buf.option w (Buf.string w) (Some "x");
  Buf.option w (Buf.string w) None;
  Buf.list w (Buf.int w) [ 1; 2; 3 ];
  Buf.bool w true;
  let r = Buf.reader (Buf.contents w) in
  Alcotest.(check string) "s1" "hello" (Buf.read_string r);
  Alcotest.(check string) "s2" "" (Buf.read_string r);
  Alcotest.(check (option string)) "some" (Some "x")
    (Buf.read_option r (fun () -> Buf.read_string r));
  Alcotest.(check (option string)) "none" None
    (Buf.read_option r (fun () -> Buf.read_string r));
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ]
    (Buf.read_list r (fun () -> Buf.read_int r));
  Alcotest.(check bool) "bool" true (Buf.read_bool r)

let test_truncation_detected () =
  let w = Buf.writer () in
  Buf.string w "some payload";
  let bytes = Buf.contents w in
  let r = Buf.reader (String.sub bytes 0 (String.length bytes - 2)) in
  match Buf.read_string r with
  | exception Buf.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated string must be detected"

let test_bad_tags_detected () =
  let r = Buf.reader "\255\255" in
  (match Buf.read_bool r with
  | exception Buf.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad bool byte");
  let r2 = Buf.reader "\007" in
  match Buf.read_option r2 (fun () -> 0) with
  | exception Buf.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad option byte"

(* ---- incremental frame parsing (the daemon's receive path) ---- *)

let test_frame_pop () =
  let f1 = Pickle.Frame.encode ~kind:17 ~id:"a" ~payload:"one" in
  let f2 = Pickle.Frame.encode ~kind:18 ~id:"b" ~payload:"two" in
  (* nothing buffered, or only part of a header/body: not a frame yet *)
  Alcotest.(check bool) "empty buffer" true (Pickle.Frame.pop "" = None);
  Alcotest.(check bool) "partial header" true
    (Pickle.Frame.pop (String.sub f1 0 4) = None);
  Alcotest.(check bool) "partial body" true
    (Pickle.Frame.pop (String.sub f1 0 (String.length f1 - 1)) = None);
  (* two concatenated frames pop in order, leaving the remainder *)
  (match Pickle.Frame.pop (f1 ^ f2) with
  | Some (m, rest) ->
    Alcotest.(check int) "first kind" 17 m.Pickle.Frame.f_kind;
    Alcotest.(check string) "first id" "a" m.Pickle.Frame.f_id;
    Alcotest.(check string) "first payload" "one" m.Pickle.Frame.f_payload;
    (match Pickle.Frame.pop rest with
    | Some (m2, rest2) ->
      Alcotest.(check int) "second kind" 18 m2.Pickle.Frame.f_kind;
      Alcotest.(check string) "drained" "" rest2
    | None -> Alcotest.fail "second frame must pop")
  | None -> Alcotest.fail "first frame must pop")

let test_frame_pop_corrupt () =
  let f = Pickle.Frame.encode ~kind:17 ~id:"x" ~payload:"payload" in
  (* flip a body byte: the CRC-64 trailer must catch it *)
  let damaged = Bytes.of_string f in
  Bytes.set damaged (String.length f - 9)
    (Char.chr (Char.code (Bytes.get damaged (String.length f - 9)) lxor 1));
  (match Pickle.Frame.pop (Bytes.to_string damaged) with
  | exception Pickle.Buf.Corrupt _ -> ()
  | _ -> Alcotest.fail "flipped byte must be detected");
  (* garbage that cannot even be a header *)
  match Pickle.Frame.pop "XXXXXXXXXXXXXXXX" with
  | exception Pickle.Buf.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic must be detected"

(* a socket delivers a frame stream in arbitrary slices: however the
   bytes are chunked, greedy popping must reconstruct exactly the
   frames that were sent, with nothing left over *)
let prop_frame_chunked_stream =
  let gen =
    QCheck.make ~print:(fun (msgs, sizes) ->
        Printf.sprintf "%d msgs, cuts [%s]" (List.length msgs)
          (String.concat ";" (List.map string_of_int sizes)))
      QCheck.Gen.(
        let msg =
          triple (int_range 0 255)
            (string_size ~gen:char (int_range 0 12))
            (string_size ~gen:char (int_range 0 64))
        in
        pair
          (list_size (int_range 1 8) msg)
          (list_size (int_range 1 20) (int_range 1 13)))
  in
  QCheck.Test.make ~name:"frame stream survives arbitrary chunking" ~count:300
    gen
  @@ fun (msgs, sizes) ->
  let stream =
    String.concat ""
      (List.map
         (fun (kind, id, payload) -> Pickle.Frame.encode ~kind ~id ~payload)
         msgs)
  in
  (* slice the stream into chunks, cycling through the cut sizes *)
  let sizes = Array.of_list sizes in
  let chunks = ref [] in
  let off = ref 0 and i = ref 0 in
  while !off < String.length stream do
    let n = min sizes.(!i mod Array.length sizes) (String.length stream - !off) in
    chunks := String.sub stream !off n :: !chunks;
    off := !off + n;
    incr i
  done;
  (* feed chunk by chunk, popping greedily after each arrival *)
  let buffer = ref "" and got = ref [] in
  List.iter
    (fun chunk ->
      buffer := !buffer ^ chunk;
      let rec drain () =
        match Pickle.Frame.pop !buffer with
        | Some (m, rest) ->
          buffer := rest;
          got :=
            (m.Pickle.Frame.f_kind, m.Pickle.Frame.f_id, m.Pickle.Frame.f_payload)
            :: !got;
          drain ()
        | None -> ()
      in
      drain ())
    (List.rev !chunks);
  !buffer = "" && List.rev !got = msgs

let test_frame_truncated_then_completed () =
  let f1 = Pickle.Frame.encode ~kind:32 ~id:"a" ~payload:"first" in
  let f2 = Pickle.Frame.encode ~kind:36 ~id:"b" ~payload:"second" in
  let f3 = Pickle.Frame.encode ~kind:37 ~id:"c" ~payload:"third" in
  (* a whole frame plus a torn tail: the whole one pops, the tail waits *)
  let cut = String.length f2 / 2 in
  let buffer = ref (f1 ^ String.sub f2 0 cut) in
  (match Pickle.Frame.pop !buffer with
  | Some (m, rest) ->
    Alcotest.(check string) "leading frame pops" "first"
      m.Pickle.Frame.f_payload;
    buffer := rest
  | None -> Alcotest.fail "leading frame must pop");
  Alcotest.(check bool) "torn tail is not a frame yet" true
    (Pickle.Frame.pop !buffer = None);
  (* the rest of the torn frame arrives, with another one behind it *)
  buffer := !buffer ^ String.sub f2 cut (String.length f2 - cut) ^ f3;
  (match Pickle.Frame.pop !buffer with
  | Some (m, rest) ->
    Alcotest.(check string) "completed frame decodes" "second"
      m.Pickle.Frame.f_payload;
    buffer := rest
  | None -> Alcotest.fail "completed frame must pop");
  match Pickle.Frame.pop !buffer with
  | Some (m, rest) ->
    Alcotest.(check string) "trailing frame decodes" "third"
      m.Pickle.Frame.f_payload;
    Alcotest.(check string) "stream drained" "" rest
  | None -> Alcotest.fail "trailing frame must pop"

let mk_ctx () =
  let ctx = Statics.Context.create () in
  Statics.Basis.register ctx;
  ctx

(* Build a small exported-shape environment by hand and roundtrip it. *)
let test_env_roundtrip_manual () =
  let ctx = mk_ctx () in
  let self = Pid.intrinsic "fake-unit" in
  let t_stamp = Stamp.External (self, 0) in
  Statics.Context.register ctx t_stamp
    {
      Types.tyc_name = Symbol.intern "t";
      tyc_arity = 1;
      tyc_defn =
        Types.Data
          [
            {
              Types.cd_name = Symbol.intern "Leaf";
              cd_arg = None;
              cd_tag = 0;
              cd_span = 2;
            };
            {
              Types.cd_name = Symbol.intern "Node";
              cd_arg = Some (Types.Tcon (t_stamp, [ Types.Tgen 0 ]));
              cd_tag = 1;
              cd_span = 2;
            };
          ];
    };
  let env =
    Types.empty_env
    |> Types.bind_tycon (Symbol.intern "t") t_stamp
    |> Types.bind_val (Symbol.intern "x")
         {
           Types.vi_scheme =
             { Types.arity = 1; body = Types.Tcon (t_stamp, [ Types.Tgen 0 ]) };
           vi_kind = Types.Vplain;
           vi_addr =
             Types.AdField (Types.AdExtern self, Symbol.intern "x");
         }
  in
  let w = Buf.writer () in
  Serial.write_env w ctx ~token:(Serial.exported_token ~self) ~with_addrs:true
    env;
  let resolve = function
    | Serial.TokGlobal n -> Stamp.Global n
    | Serial.TokOwn i -> Stamp.External (self, i)
    | Serial.TokExtern (p, i) -> Stamp.External (p, i)
  in
  let env' = Serial.read_env (Buf.reader (Buf.contents w)) ~resolve in
  (* the tycon binding survives *)
  (match Symbol.Map.find_opt (Symbol.intern "t") env'.Types.tycons with
  | Some stamp -> Alcotest.(check bool) "t stamp" true (Stamp.equal stamp t_stamp)
  | None -> Alcotest.fail "t lost");
  (* the val's scheme survives structurally *)
  match Symbol.Map.find_opt (Symbol.intern "x") env'.Types.vals with
  | Some info ->
    Alcotest.(check int) "arity" 1 info.Types.vi_scheme.Types.arity;
    Alcotest.(check bool) "scheme equal" true
      (Statics.Unify.equal_scheme ctx info.Types.vi_scheme
         { Types.arity = 1; body = Types.Tcon (t_stamp, [ Types.Tgen 0 ]) })
  | None -> Alcotest.fail "x lost"

let test_unresolved_tyvar_rejected () =
  let ctx = mk_ctx () in
  let env =
    Types.bind_val (Symbol.intern "bad")
      {
        Types.vi_scheme =
          Types.monotype (Statics.Unify.fresh_tyvar ~level:1 ());
        vi_kind = Types.Vplain;
        vi_addr = Types.AdNone;
      }
      Types.empty_env
  in
  let w = Buf.writer () in
  match
    Serial.write_env w ctx
      ~token:(Serial.exported_token ~self:(Pid.intrinsic "u"))
      ~with_addrs:true env
  with
  | exception Support.Diag.Error _ -> ()
  | () -> Alcotest.fail "unresolved unification variable must be rejected"

let test_hash_env_vs_order_of_binding () =
  (* hash is independent of binding insertion order (canonical order) *)
  let ctx = mk_ctx () in
  let vi n =
    {
      Types.vi_scheme = Types.monotype Statics.Basis.int_ty;
      vi_kind = Types.Vplain;
      vi_addr = Types.AdNone;
    }
    |> fun v -> (Symbol.intern n, v)
  in
  let a, va = vi "a" and b, vb = vi "b" and c, vc = vi "c" in
  let env1 =
    Types.empty_env |> Types.bind_val a va |> Types.bind_val b vb
    |> Types.bind_val c vc
  in
  let env2 =
    Types.empty_env |> Types.bind_val c vc |> Types.bind_val a va
    |> Types.bind_val b vb
  in
  Alcotest.(check bool) "insertion order irrelevant" true
    (Pid.equal
       (Pickle.Hashenv.hash_env ctx env1)
       (Pickle.Hashenv.hash_env ctx env2))

let test_unit_pid_depends_on_names () =
  let p = Pid.intrinsic "payload" in
  let one = Pickle.Hashenv.unit_pid [ (Symbol.intern "A", p) ] in
  let other = Pickle.Hashenv.unit_pid [ (Symbol.intern "B", p) ] in
  Alcotest.(check bool) "renaming a module changes the unit pid" false
    (Pid.equal one other)

let suite =
  [
    Alcotest.test_case "varint roundtrips" `Quick test_varints;
    Alcotest.test_case "strings, options, lists" `Quick
      test_strings_options_lists;
    Alcotest.test_case "truncation detected" `Quick test_truncation_detected;
    Alcotest.test_case "frame pop" `Quick test_frame_pop;
    Alcotest.test_case "frame pop corrupt" `Quick test_frame_pop_corrupt;
    QCheck_alcotest.to_alcotest prop_frame_chunked_stream;
    Alcotest.test_case "truncated frame completed by later bytes" `Quick
      test_frame_truncated_then_completed;
    Alcotest.test_case "bad tags detected" `Quick test_bad_tags_detected;
    Alcotest.test_case "manual env roundtrip" `Quick test_env_roundtrip_manual;
    Alcotest.test_case "unresolved tyvars rejected" `Quick
      test_unresolved_tyvar_rejected;
    Alcotest.test_case "hash independent of insertion order" `Quick
      test_hash_env_vs_order_of_binding;
    Alcotest.test_case "unit pid depends on binding names" `Quick
      test_unit_pid_depends_on_names;
  ]
