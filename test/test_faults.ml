(* Fault injection and crash recovery.

   Mechanics of the deterministic Vfs.faulty wrapper (torn writes,
   transient failures, kill semantics, op-log determinism), the atomic
   commit protocol, retry-with-backoff in the driver — and the headline
   harness: over random DAGs × policies × backends × fault plans, kill
   a build at every injected crash point, recover, rebuild, and assert
   the final bins, export pids and build partitions are byte-identical
   to a fault-free serial build.  A crashed build must be
   indistinguishable from a cold cache. *)

module Gen = Workload.Gen
module Driver = Irm.Driver
module Pid = Digestkit.Pid

let policies = [ Driver.Timestamp; Driver.Cutoff; Driver.Selective ]
let backends = [ Driver.Serial; Driver.Parallel 3 ]

(* ------------------------------------------------------------------ *)
(* Vfs.faulty mechanics                                                *)
(* ------------------------------------------------------------------ *)

let test_torn_write_is_silent () =
  let fs = Vfs.memory () in
  let ffs, inj = Vfs.faulty ~plan:[ Vfs.Write_torn (2, 3) ] fs in
  ffs.Vfs.fs_write "a" "full content";
  ffs.Vfs.fs_write "b" "full content";
  Alcotest.(check (option string)) "first write intact" (Some "full content")
    (fs.Vfs.fs_read "a");
  Alcotest.(check (option string)) "second write torn after 3 bytes"
    (Some "ful") (fs.Vfs.fs_read "b");
  Alcotest.(check int) "one fault fired" 1 (Vfs.faults_fired inj);
  let faulted =
    List.filter (fun op -> op.Vfs.op_fault <> None) (Vfs.oplog inj)
  in
  Alcotest.(check int) "op-log records the fault" 1 (List.length faulted)

let test_write_fail_is_transient () =
  let fs = Vfs.memory () in
  let ffs, inj = Vfs.faulty ~plan:[ Vfs.Write_fail 1 ] fs in
  (match ffs.Vfs.fs_write "a" "x" with
  | () -> Alcotest.fail "first write should fail"
  | exception Vfs.Fault { fault_transient; _ } ->
    Alcotest.(check bool) "fault is transient" true fault_transient);
  Alcotest.(check (option string)) "nothing written" None (fs.Vfs.fs_read "a");
  (* the retry — a fresh write op — succeeds *)
  ffs.Vfs.fs_write "a" "x";
  Alcotest.(check (option string)) "retry lands" (Some "x")
    (fs.Vfs.fs_read "a");
  Alcotest.(check bool) "not a crash" false (Vfs.crashed inj)

let test_crash_kills_the_process () =
  let fs = Vfs.memory () in
  let ffs, inj = Vfs.faulty ~plan:[ Vfs.Write_crash (2, 4) ] fs in
  ffs.Vfs.fs_write "a" "first";
  (match ffs.Vfs.fs_write "b" "second write" with
  | () -> Alcotest.fail "second write should crash"
  | exception Vfs.Crash _ -> ());
  Alcotest.(check bool) "injector is dead" true (Vfs.crashed inj);
  (* a prefix of the dying write reached the disk *)
  Alcotest.(check (option string)) "torn prefix on disk" (Some "seco")
    (fs.Vfs.fs_read "b");
  (* the dead process can do nothing more *)
  (match ffs.Vfs.fs_read "a" with
  | _ -> Alcotest.fail "reads after death must crash"
  | exception Vfs.Crash _ -> ());
  (match ffs.Vfs.fs_write "c" "z" with
  | () -> Alcotest.fail "writes after death must crash"
  | exception Vfs.Crash _ -> ());
  (* ...but the backing store survives for the next process *)
  Alcotest.(check (option string)) "backing store intact" (Some "first")
    (fs.Vfs.fs_read "a")

let test_read_corruption () =
  let fs = Vfs.memory () in
  fs.Vfs.fs_write "f" "pristine bytes";
  let ffs, _ = Vfs.faulty ~plan:[ Vfs.Read_corrupt 1 ] fs in
  let corrupted = Option.get (ffs.Vfs.fs_read "f") in
  Alcotest.(check bool) "read sees corrupted bytes" false
    (String.equal corrupted "pristine bytes");
  Alcotest.(check int) "same length" (String.length "pristine bytes")
    (String.length corrupted);
  Alcotest.(check (option string)) "backing store untouched"
    (Some "pristine bytes") (fs.Vfs.fs_read "f");
  Alcotest.(check (option string)) "next read is clean"
    (Some "pristine bytes") (ffs.Vfs.fs_read "f")

let test_oplog_deterministic () =
  let run () =
    let fs = Vfs.memory () in
    let ffs, inj = Vfs.faulty ~plan:[ Vfs.Write_torn (2, 1); Vfs.Remove_fail 1 ] fs in
    ffs.Vfs.fs_write "a" "1";
    ffs.Vfs.fs_write "b" "2";
    ignore (ffs.Vfs.fs_read "a");
    (try ffs.Vfs.fs_remove "a" with Vfs.Fault _ -> ());
    List.map
      (fun op ->
        Printf.sprintf "%s %s %s" op.Vfs.op_kind op.Vfs.op_path
          (Option.value ~default:"-" op.Vfs.op_fault))
      (Vfs.oplog inj)
  in
  Alcotest.(check (list string)) "same plan, same ops, same log" (run ()) (run ())

let test_seeded_plan_deterministic () =
  let plan1 = Vfs.seeded_plan ~seed:42 ~ops:30 in
  let plan2 = Vfs.seeded_plan ~seed:42 ~ops:30 in
  Alcotest.(check (list string)) "same seed, same plan"
    (List.map Vfs.fault_name plan1)
    (List.map Vfs.fault_name plan2);
  Alcotest.(check bool) "plan is non-empty" true (List.length plan1 >= 1)

let test_commit_is_atomic_under_crash () =
  let fs = Vfs.memory () in
  fs.Vfs.fs_write "f" "old";
  let ffs, _ = Vfs.faulty ~plan:[ Vfs.Write_crash (1, 5) ] fs in
  (match Vfs.commit ffs "f" "replacement" with
  | () -> Alcotest.fail "commit should crash"
  | exception Vfs.Crash _ -> ());
  Alcotest.(check (option string)) "target untouched by the torn commit"
    (Some "old") (fs.Vfs.fs_read "f");
  (* the orphaned staging file is recognizable for recovery sweeps *)
  Alcotest.(check bool) "staging orphan left behind" true
    (List.exists Vfs.is_commit_temp (fs.Vfs.fs_list ()));
  (* a clean commit replaces atomically and leaves no staging file *)
  Vfs.commit fs "f" "replacement";
  Alcotest.(check (option string)) "committed" (Some "replacement")
    (fs.Vfs.fs_read "f")

(* ------------------------------------------------------------------ *)
(* Build-level fault tolerance                                         *)
(* ------------------------------------------------------------------ *)

let bins_of fs sources =
  List.map (fun f -> Option.get (fs.Vfs.fs_read (f ^ ".bin"))) sources

let pids_of mgr sources =
  List.map
    (fun f -> Pid.to_hex (Driver.unit_of mgr f).Pickle.Binfile.uf_static_pid)
    sources

(* the fault-free serial reference for a topology: final bins and pids *)
let reference topology =
  let fs = Vfs.memory () in
  let project = Gen.create fs topology Gen.default_profile in
  let sources = Gen.sources project in
  let mgr = Driver.create fs in
  let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources in
  (bins_of fs sources, pids_of mgr sources)

let test_transient_faults_are_retried () =
  let topology = Gen.Diamond 2 in
  let ref_bins, ref_pids = reference topology in
  let fs = Vfs.memory () in
  let project = Gen.create fs topology Gen.default_profile in
  let sources = Gen.sources project in
  let ffs, inj =
    Vfs.faulty ~plan:[ Vfs.Write_fail 2; Vfs.Write_fail 5 ] fs
  in
  let mgr = Driver.create ffs in
  let stats = Driver.build mgr ~policy:Driver.Cutoff ~sources in
  Alcotest.(check int) "everything compiled despite faults"
    (List.length sources)
    (List.length stats.Driver.st_recompiled);
  Alcotest.(check bool) "the faults really fired" true
    (Vfs.faults_fired inj >= 1);
  Alcotest.(check (list string)) "pids match the fault-free build" ref_pids
    (pids_of mgr sources);
  List.iteri
    (fun i b ->
      Alcotest.(check bool)
        (Printf.sprintf "bin %d matches the fault-free build" i)
        true
        (String.equal b (List.nth ref_bins i)))
    (bins_of fs sources)

let test_torn_bin_self_heals () =
  let topology = Gen.Diamond 2 in
  let ref_bins, ref_pids = reference topology in
  let fs = Vfs.memory () in
  let project = Gen.create fs topology Gen.default_profile in
  let sources = Gen.sources project in
  (* the first write is the first unit's staged bin: tear it silently —
     the commit protocol then installs a corrupt bin under the final
     name, which nothing in this build re-reads *)
  let ffs, _ = Vfs.faulty ~plan:[ Vfs.Write_torn (1, 17) ] fs in
  let mgr = Driver.create ffs in
  let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources in
  (* recovery: the damaged bin is quarantined, the rebuild recompiles
     exactly that unit, and the result converges *)
  let mgr2 = Driver.create fs in
  let report = Driver.recover mgr2 ~sources in
  Alcotest.(check int) "one unit quarantined" 1
    (List.length report.Driver.rv_quarantined);
  let s = Driver.build mgr2 ~policy:Driver.Cutoff ~sources in
  Alcotest.(check (list string)) "only the damaged unit recompiles"
    report.Driver.rv_quarantined s.Driver.st_recompiled;
  Alcotest.(check (list string)) "pids converge" ref_pids (pids_of mgr2 sources);
  List.iteri
    (fun i b ->
      Alcotest.(check bool) (Printf.sprintf "bin %d converges" i) true
        (String.equal b (List.nth ref_bins i)))
    (bins_of fs sources)

(* ------------------------------------------------------------------ *)
(* The crash-recovery harness                                          *)
(* ------------------------------------------------------------------ *)

(* Kill a build at write [crash_at] (torn after [torn] bytes), then
   model the next process: recover, gc the cache, rebuild without
   faults, and demand convergence with the fault-free serial build. *)
let crash_and_recover ~topology ~policy ~backend ~with_cache ~crash_at ~torn
    ~ref_bins ~ref_pids =
  let fs = Vfs.memory () in
  let project = Gen.create fs topology Gen.default_profile in
  let sources = Gen.sources project in
  let ffs, inj =
    Vfs.faulty ~plan:[ Vfs.Write_crash (crash_at, torn) ] fs
  in
  let mgr = Driver.create ffs in
  let cache = if with_cache then Some (Cache.create ffs) else None in
  let crashed =
    match Driver.build ?cache:(Option.map Cache.ops cache) ~backend mgr ~policy ~sources with
    | _ -> false
    | exception Vfs.Crash _ -> true
  in
  ignore (Vfs.oplog inj);
  (* the next process starts from whatever the dead one left on disk *)
  let mgr2 = Driver.create fs in
  let _report = Driver.recover mgr2 ~sources in
  let cache2 = if with_cache then Some (Cache.create fs) else None in
  Option.iter (fun c -> ignore (Cache.gc c)) cache2;
  let _ = Driver.build ?cache:(Option.map Cache.ops cache2) mgr2 ~policy ~sources in
  let label fmt =
    Printf.ksprintf
      (fun s ->
        Printf.sprintf "%s/%s/crash@%d%s: %s" (Driver.policy_name policy)
          (Sched.backend_name backend) crash_at
          (if crashed then "" else " (no crash fired)")
          s)
      fmt
  in
  Alcotest.(check (list string))
    (label "export pids converge")
    ref_pids (pids_of mgr2 sources);
  List.iteri
    (fun i b ->
      if not (String.equal b (List.nth ref_bins i)) then
        Alcotest.fail (label "bin bytes of unit %d diverge" i))
    (bins_of fs sources);
  (* after convergence the crashed history is invisible: a null rebuild
     loads everything, exactly as it would after the fault-free build *)
  let null = Driver.build ?cache:(Option.map Cache.ops cache2) mgr2 ~policy ~sources in
  Alcotest.(check (list string)) (label "null rebuild recompiles nothing") []
    null.Driver.st_recompiled;
  Alcotest.(check int)
    (label "null rebuild loads every unit")
    (List.length sources)
    (List.length null.Driver.st_loaded)

(* count the eligible writes of one fault-free build of this
   configuration — every one of them is a crash point to exercise *)
let count_writes ~topology ~policy ~backend ~with_cache =
  let fs = Vfs.memory () in
  let project = Gen.create fs topology Gen.default_profile in
  let sources = Gen.sources project in
  let ffs, inj = Vfs.faulty ~plan:[] fs in
  let mgr = Driver.create ffs in
  let cache = if with_cache then Some (Cache.create ffs) else None in
  let _ = Driver.build ?cache:(Option.map Cache.ops cache) ~backend mgr ~policy ~sources in
  Vfs.writes inj

let crash_recovery_exhaustive ~units ~seed ~policy ~backend ~with_cache () =
  let topology = Gen.Random_dag { units; max_deps = 3; seed } in
  let fs_ref = Vfs.memory () in
  let project_ref = Gen.create fs_ref topology Gen.default_profile in
  let sources_ref = Gen.sources project_ref in
  let mgr_ref = Driver.create fs_ref in
  let _ = Driver.build mgr_ref ~policy ~sources:sources_ref in
  let ref_bins = bins_of fs_ref sources_ref in
  let ref_pids = pids_of mgr_ref sources_ref in
  let writes = count_writes ~topology ~policy ~backend ~with_cache in
  Alcotest.(check bool) "the build writes something" true (writes > 0);
  for crash_at = 1 to writes do
    crash_and_recover ~topology ~policy ~backend ~with_cache ~crash_at
      ~torn:(crash_at * 13 mod 48) ~ref_bins ~ref_pids
  done

(* the harness across all three policies and both backends *)
let crash_recovery_cases =
  List.concat_map
    (fun policy ->
      List.map
        (fun backend ->
          Alcotest.test_case
            (Printf.sprintf "crash recovery (%s, %s)"
               (Driver.policy_name policy)
               (Sched.backend_name backend))
            `Quick
            (crash_recovery_exhaustive ~units:6 ~seed:17 ~policy ~backend
               ~with_cache:true))
        backends)
    policies

(* CI runs the harness over published seeds: FAULT_SEEDS=s1,s2,s3 *)
let fixed_seeds () =
  match Sys.getenv_opt "FAULT_SEEDS" with
  | None | Some "" -> [ 7; 23; 101 ]
  | Some s ->
    List.filter_map int_of_string_opt (String.split_on_char ',' (String.trim s))

let test_fixed_seeds () =
  List.iter
    (fun seed ->
      crash_recovery_exhaustive ~units:5 ~seed ~policy:Driver.Cutoff
        ~backend:Driver.Serial ~with_cache:true ())
    (fixed_seeds ())

(* randomized: arbitrary seeded fault plans (torn writes, transient
   failures, corrupted reads, crashes) restricted to bins and cache
   files; whatever happens, recovery must converge *)
let persistent_path path =
  String.length path >= 4
  && (Filename.check_suffix path ".bin"
     || Vfs.is_commit_temp path
     ||
     let dir = Cache.default_dir in
     String.length path > String.length dir
     && String.equal (String.sub path 0 (String.length dir)) dir)

let prop_random_fault_plans_recover =
  QCheck.Test.make ~count:12 ~name:"random fault plans: recovery converges"
    QCheck.(
      quad (int_range 0 1000) (int_range 4 8) (int_range 0 1000)
        (pair
           (oneofl ~print:Driver.policy_name policies)
           (oneofl ~print:Sched.backend_name backends)))
    (fun (dag_seed, units, fault_seed, (policy, backend)) ->
      let topology = Gen.Random_dag { units; max_deps = 3; seed = dag_seed } in
      (* fault-free serial reference *)
      let fs_ref = Vfs.memory () in
      let project_ref = Gen.create fs_ref topology Gen.default_profile in
      let sources_ref = Gen.sources project_ref in
      let mgr_ref = Driver.create fs_ref in
      let _ = Driver.build mgr_ref ~policy ~sources:sources_ref in
      let ref_bins = bins_of fs_ref sources_ref in
      let ref_pids = pids_of mgr_ref sources_ref in
      (* the faulted run *)
      let fs = Vfs.memory () in
      let project = Gen.create fs topology Gen.default_profile in
      let sources = Gen.sources project in
      let plan = Vfs.seeded_plan ~seed:fault_seed ~ops:(4 * units) in
      let ffs, _inj = Vfs.faulty ~only:persistent_path ~plan fs in
      let mgr = Driver.create ffs in
      (match
         Driver.build ~cache:(Cache.ops (Cache.create ffs)) ~backend mgr ~policy ~sources
       with
      | _ -> ()
      | exception (Vfs.Crash _ | Vfs.Fault _) -> ());
      (* recovery in a fresh process *)
      let mgr2 = Driver.create fs in
      let _ = Driver.recover mgr2 ~sources in
      let cache2 = Cache.create fs in
      ignore (Cache.gc cache2);
      let _ = Driver.build ~cache:(Cache.ops cache2) mgr2 ~policy ~sources in
      ref_pids = pids_of mgr2 sources
      && List.for_all2 String.equal ref_bins (bins_of fs sources)
      && (Driver.build ~cache:(Cache.ops cache2) mgr2 ~policy ~sources).Driver.st_recompiled
         = [])

(* after recovery, the next edit behaves exactly as it would have with
   no crash in the history: identical partitions *)
let test_post_recovery_edit_partitions () =
  let topology = Gen.Random_dag { units = 7; max_deps = 3; seed = 5 } in
  List.iter
    (fun policy ->
      (* fault-free history *)
      let fs_ref = Vfs.memory () in
      let project_ref = Gen.create fs_ref topology Gen.default_profile in
      let sources_ref = Gen.sources project_ref in
      let mgr_ref = Driver.create fs_ref in
      let _ = Driver.build mgr_ref ~policy ~sources:sources_ref in
      (* crashed-and-recovered history *)
      let fs = Vfs.memory () in
      let project = Gen.create fs topology Gen.default_profile in
      let sources = Gen.sources project in
      let ffs, _ = Vfs.faulty ~plan:[ Vfs.Write_crash (3, 9) ] fs in
      (match
         Driver.build (Driver.create ffs) ~policy ~sources
       with
      | _ -> ()
      | exception Vfs.Crash _ -> ());
      let mgr = Driver.create fs in
      let _ = Driver.recover mgr ~sources in
      let _ = Driver.build mgr ~policy ~sources in
      (* the same edit on both histories *)
      Gen.edit project_ref (Gen.middle_file project_ref) Gen.Impl_change;
      Gen.edit project (Gen.middle_file project) Gen.Impl_change;
      let s_ref = Driver.build mgr_ref ~policy ~sources:sources_ref in
      let s = Driver.build mgr ~policy ~sources in
      let partitions s =
        ( s.Driver.st_recompiled,
          s.Driver.st_loaded,
          s.Driver.st_cache_hits,
          s.Driver.st_cutoff_hits )
      in
      if partitions s_ref <> partitions s then
        Alcotest.fail
          (Printf.sprintf "%s: post-recovery edit partitions differ"
             (Driver.policy_name policy)))
    policies

let suite =
  [
    Alcotest.test_case "torn writes are silent" `Quick test_torn_write_is_silent;
    Alcotest.test_case "write failures are transient" `Quick
      test_write_fail_is_transient;
    Alcotest.test_case "a crash kills the process" `Quick
      test_crash_kills_the_process;
    Alcotest.test_case "read corruption" `Quick test_read_corruption;
    Alcotest.test_case "op-log is deterministic" `Quick test_oplog_deterministic;
    Alcotest.test_case "seeded plans are deterministic" `Quick
      test_seeded_plan_deterministic;
    Alcotest.test_case "commit is atomic under crash" `Quick
      test_commit_is_atomic_under_crash;
    Alcotest.test_case "transient faults are retried" `Quick
      test_transient_faults_are_retried;
    Alcotest.test_case "torn bin self-heals via recover" `Quick
      test_torn_bin_self_heals;
  ]
  @ crash_recovery_cases
  @ [
      Alcotest.test_case "crash recovery (published seeds)" `Quick
        test_fixed_seeds;
      Alcotest.test_case "post-recovery edits behave identically" `Quick
        test_post_recovery_edit_partitions;
      QCheck_alcotest.to_alcotest prop_random_fault_plans_recover;
    ]
