(* Keep-going builds: structured multi-error diagnostics, poison
   propagation through the build DAG, and determinism of the
   failed/skipped partitions across policies and backends. *)

module Driver = Irm.Driver
module Gen = Workload.Gen
module Diag = Support.Diag

(* ------------------------------------------------------------------ *)
(* Source breakers: string edits that leave the structure wrapper (and
   hence the dependency scan) intact while injecting an error of a
   known phase into the body. *)
(* ------------------------------------------------------------------ *)

type breaker = Unbound | Mismatch | Syntax | Lex

let replace_first ~needle ~by src =
  let n = String.length needle in
  let rec find i =
    if i + n > String.length src then None
    else if String.sub src i n = needle then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> src
  | Some i ->
    String.sub src 0 i ^ by ^ String.sub src (i + n) (String.length src - i - n)

let apply_breaker kind src =
  match kind with
  | Unbound ->
    replace_first ~needle:"  val seed = "
      ~by:"  val seed = kg_unbound_variable + " src
  | Mismatch ->
    replace_first ~needle:"  val seed = " ~by:"  val seed = (1 2) + " src
  | Syntax ->
    replace_first ~needle:"= struct\n" ~by:"= struct\n  val = 3\n" src
  | Lex -> replace_first ~needle:"= struct\n" ~by:"= struct\n  val q = ?\n" src

(* a fresh project on a fresh memory fs, with [broken] (file, breaker)
   edits applied — deterministic, so two calls give identical state *)
let project topology broken =
  let fs = Vfs.memory () in
  let p = Gen.create fs topology Gen.default_profile in
  let originals =
    List.map
      (fun f -> (f, Option.get (fs.Vfs.fs_read f)))
      (Gen.sources p)
  in
  List.iter
    (fun (file, kind) ->
      let src = Option.get (fs.Vfs.fs_read file) in
      fs.Vfs.fs_write file (apply_breaker kind src))
    broken;
  (fs, Driver.create fs, Gen.sources p, originals)

let sorted = List.sort String.compare
let check_files = Alcotest.(check (list string))

let failed_names stats = List.map fst stats.Driver.st_failed
let skipped_names stats = List.map fst stats.Driver.st_skipped

let rendered_diags stats =
  List.concat_map
    (fun (_, ds) -> List.map Diag.to_string ds)
    stats.Driver.st_failed

(* ------------------------------------------------------------------ *)
(* Basics: poison propagation on a chain                               *)
(* ------------------------------------------------------------------ *)

let test_chain_poison () =
  (* u0 <- u1 <- u2 <- u3; break u1: u0 builds, u1 fails, u2/u3 skip *)
  let _fs, mgr, sources, _ = project (Gen.Chain 4) [ ("u001.sml", Unbound) ] in
  let stats =
    Driver.build ~keep_going:true mgr ~policy:Driver.Cutoff ~sources
  in
  check_files "failed" [ "u001.sml" ] (failed_names stats);
  check_files "skipped" [ "u002.sml"; "u003.sml" ] (sorted (skipped_names stats));
  check_files "recompiled" [ "u000.sml" ] stats.Driver.st_recompiled;
  let ds = List.assoc "u001.sml" stats.Driver.st_failed in
  Alcotest.(check bool) "has diagnostics" true (ds <> []);
  Alcotest.(check string) "stable code" "E0302" (List.hd ds).Diag.code;
  Alcotest.(check string)
    "unit stamped" "u001.sml"
    (Option.value ~default:"?" (List.hd ds).Diag.unit_name);
  Alcotest.(check string) "outcome failed" "failed"
    (Driver.outcome_of stats "u001.sml");
  Alcotest.(check string) "outcome skipped" "skipped"
    (Driver.outcome_of stats "u003.sml");
  Alcotest.(check bool) "summary mentions failures" true
    (let line = Driver.summary_line stats in
     let contains ~sub s =
       let n = String.length sub in
       let rec go i =
         i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
       in
       go 0
     in
     contains ~sub:"1 failed" line && contains ~sub:"2 skipped" line)

(* Independent subgraphs still compile: fanout with broken dependents. *)
let test_independent_subgraphs () =
  (* Fanout 5: u0 base, u1..u5 depend only on u0 *)
  let _fs, mgr, sources, _ =
    project (Gen.Fanout 5)
      [ ("u001.sml", Unbound); ("u003.sml", Syntax); ("u005.sml", Lex) ]
  in
  let stats =
    Driver.build ~keep_going:true mgr ~policy:Driver.Timestamp ~sources
  in
  check_files "failed" [ "u001.sml"; "u003.sml"; "u005.sml" ]
    (sorted (failed_names stats));
  check_files "skipped" [] (skipped_names stats);
  check_files "unaffected units all compiled"
    [ "u000.sml"; "u002.sml"; "u004.sml" ]
    (sorted stats.Driver.st_recompiled);
  (* k broken units -> at least k structured diagnostics in ONE run *)
  Alcotest.(check bool) "at least 3 diagnostics" true
    (List.length (rendered_diags stats) >= 3);
  (* each broken unit contributed at least one diagnostic of its own *)
  List.iter
    (fun (file, ds) ->
      Alcotest.(check bool) (file ^ " has own diags") true (ds <> []))
    stats.Driver.st_failed

(* Without keep_going the behaviour is unchanged: first serial error
   raises, independent of everything downstream. *)
let test_failfast_unchanged () =
  let _fs, mgr, sources, _ = project (Gen.Chain 3) [ ("u001.sml", Unbound) ] in
  match Driver.build mgr ~policy:Driver.Cutoff ~sources with
  | _ -> Alcotest.fail "fail-fast build should raise"
  | exception Diag.Error d ->
    Alcotest.(check string) "phase" "elaborate" (Diag.phase_id d.Diag.phase)
  | exception Diag.Errors (d :: _) ->
    Alcotest.(check string) "phase" "elaborate" (Diag.phase_id d.Diag.phase)
  | exception Diag.Errors [] -> Alcotest.fail "empty diagnostic batch"

(* ------------------------------------------------------------------ *)
(* Rerun after fix: recompile exactly failed + skipped                 *)
(* ------------------------------------------------------------------ *)

let rerun_after_fix policy =
  let _fs, mgr, sources, originals =
    project
      (Gen.Random_dag { units = 12; max_deps = 3; seed = 7 })
      [ ("u002.sml", Mismatch); ("u007.sml", Syntax) ]
  in
  let fs = _fs in
  let first = Driver.build ~keep_going:true mgr ~policy ~sources in
  Alcotest.(check bool) "something failed" true (first.Driver.st_failed <> []);
  (* restore the pristine sources of the broken units *)
  List.iter
    (fun file -> fs.Vfs.fs_write file (List.assoc file originals))
    (failed_names first);
  let second = Driver.build ~keep_going:true mgr ~policy ~sources in
  check_files "nothing fails after the fix" [] (failed_names second);
  check_files "nothing skipped after the fix" [] (skipped_names second);
  check_files "recompiled exactly failed+skipped"
    (sorted (failed_names first @ skipped_names first))
    (sorted second.Driver.st_recompiled)

let test_rerun_after_fix () =
  List.iter rerun_after_fix [ Driver.Timestamp; Driver.Cutoff; Driver.Selective ]

(* ------------------------------------------------------------------ *)
(* Determinism: partitions and diagnostics are byte-identical under    *)
(* every backend and policy                                            *)
(* ------------------------------------------------------------------ *)

let keepgoing_build topology broken policy backend =
  let _fs, mgr, sources, _ = project topology broken in
  Driver.build ~backend ~keep_going:true mgr ~policy ~sources

let test_deterministic_across_backends () =
  List.iter
    (fun seed ->
      let topology = Gen.Random_dag { units = 14; max_deps = 4; seed } in
      let broken =
        [
          (Printf.sprintf "u%03d.sml" (seed mod 14), Unbound);
          (Printf.sprintf "u%03d.sml" ((seed + 5) mod 14), Syntax);
        ]
      in
      List.iter
        (fun policy ->
          let reference = keepgoing_build topology broken policy Driver.Serial in
          List.iter
            (fun backend ->
              let label =
                Printf.sprintf "seed %d, %s, %s" seed
                  (Driver.policy_name policy)
                  (Sched.backend_name backend)
              in
              let stats = keepgoing_build topology broken policy backend in
              check_files (label ^ ": failed") (failed_names reference)
                (failed_names stats);
              Alcotest.(check (list (pair string string)))
                (label ^ ": skipped (with culprits)")
                reference.Driver.st_skipped stats.Driver.st_skipped;
              check_files
                (label ^ ": recompiled")
                reference.Driver.st_recompiled stats.Driver.st_recompiled;
              Alcotest.(check (list string))
                (label ^ ": diagnostics byte-identical")
                (rendered_diags reference) (rendered_diags stats))
            [ Driver.Serial; Driver.Parallel 4 ])
        [ Driver.Timestamp; Driver.Cutoff; Driver.Selective ])
    [ 3; 11; 29 ]

(* Random DAGs with random broken subsets: the failed partition is
   exactly the broken set, the union of partitions covers every unit,
   and fixing converges (property-style sweep over seeds). *)
let test_random_dag_partitions () =
  List.iter
    (fun seed ->
      let units = 8 + (seed mod 7) in
      let topology = Gen.Random_dag { units; max_deps = 3; seed } in
      let kinds = [| Unbound; Mismatch; Syntax; Lex |] in
      let broken =
        List.filteri (fun i _ -> (i * 7 + seed) mod 3 = 0)
          (List.init units (fun i -> i))
        |> List.map (fun i ->
               (Printf.sprintf "u%03d.sml" i, kinds.((i + seed) mod 4)))
      in
      if broken <> [] then begin
        let _fs, mgr, sources, _ = project topology broken in
        let stats =
          Driver.build ~backend:(Driver.Parallel 4) ~keep_going:true mgr
            ~policy:Driver.Cutoff ~sources
        in
        let label = Printf.sprintf "seed %d" seed in
        (* a broken unit downstream of another broken unit is skipped
           (never attempted), so: failed ⊆ broken, and every broken
           unit lands in failed or skipped — never in a built partition *)
        List.iter
          (fun f ->
            Alcotest.(check bool)
              (label ^ ": " ^ f ^ " was broken") true
              (List.mem_assoc f broken))
          (failed_names stats);
        List.iter
          (fun (f, _) ->
            Alcotest.(check bool)
              (label ^ ": " ^ f ^ " failed or skipped") true
              (List.mem f (failed_names stats)
              || List.mem f (skipped_names stats)))
          broken;
        (* every unit is in exactly one partition *)
        check_files
          (label ^ ": partitions cover the DAG")
          (sorted stats.Driver.st_order)
          (sorted
             (stats.Driver.st_recompiled @ stats.Driver.st_loaded
            @ stats.Driver.st_cache_hits @ failed_names stats
            @ skipped_names stats));
        (* every skipped unit names a culprit that indeed failed *)
        List.iter
          (fun (_, culprit) ->
            Alcotest.(check bool)
              (label ^ ": culprit failed") true
              (List.mem culprit (failed_names stats)))
          stats.Driver.st_skipped
      end)
    [ 1; 2; 5; 8; 13; 21; 34 ]

(* ------------------------------------------------------------------ *)
(* Warnings: --warn-error and the per-unit error limit                 *)
(* ------------------------------------------------------------------ *)

let warn_src =
  "structure W = struct\n\
   fun f xs = case xs of nil => 0\n\
   end\n"

let test_werror () =
  let fs = Vfs.memory () in
  fs.Vfs.fs_write "w.sml" warn_src;
  let mgr = Driver.create fs in
  let stats =
    Driver.build ~keep_going:true mgr ~policy:Driver.Cutoff
      ~sources:[ "w.sml" ]
  in
  check_files "warning alone does not fail" [] (failed_names stats);
  let fs2 = Vfs.memory () in
  fs2.Vfs.fs_write "w.sml" warn_src;
  let mgr2 = Driver.create fs2 in
  let stats2 =
    Driver.build ~keep_going:true ~werror:true mgr2 ~policy:Driver.Cutoff
      ~sources:[ "w.sml" ]
  in
  check_files "warn-error fails the unit" [ "w.sml" ] (failed_names stats2);
  let ds = List.assoc "w.sml" stats2.Driver.st_failed in
  Alcotest.(check string) "keeps the warning code" "W0001"
    (List.hd ds).Diag.code;
  Alcotest.(check string) "promoted to error" "error"
    (Diag.severity_name (List.hd ds).Diag.severity)

let test_max_errors () =
  let body =
    String.concat "\n"
      (List.init 10 (fun i -> Printf.sprintf "val x%d = kg_missing%d" i i))
  in
  let fs = Vfs.memory () in
  fs.Vfs.fs_write "m.sml" ("structure M = struct\n" ^ body ^ "\nend\n");
  let mgr = Driver.create fs in
  let stats =
    Driver.build ~keep_going:true ~max_errors:3 mgr ~policy:Driver.Cutoff
      ~sources:[ "m.sml" ]
  in
  let ds = List.assoc "m.sml" stats.Driver.st_failed in
  (* 3 collected errors plus the E0001 "too many errors" sentinel *)
  Alcotest.(check int) "limit respected" 4 (List.length ds);
  Alcotest.(check string) "sentinel code" "E0001"
    (List.nth ds 3).Diag.code

(* ------------------------------------------------------------------ *)
(* JSON build report and linker diagnostics                            *)
(* ------------------------------------------------------------------ *)

let test_report_json_partitions () =
  let _fs, mgr, sources, _ = project (Gen.Chain 3) [ ("u001.sml", Unbound) ] in
  let stats =
    Driver.build ~keep_going:true mgr ~policy:Driver.Cutoff ~sources
  in
  match Driver.report_json stats with
  | Obs.Json.Obj fields ->
    let int_field name =
      match List.assoc name fields with
      | Obs.Json.Int n -> n
      | _ -> Alcotest.fail (name ^ " not an int")
    in
    Alcotest.(check int) "failed count" 1 (int_field "failed");
    Alcotest.(check int) "skipped count" 1 (int_field "skipped");
    (match List.assoc "diagnostics" fields with
    | Obs.Json.List (Obs.Json.Obj d :: _) ->
      Alcotest.(check bool) "diag has code" true (List.mem_assoc "code" d);
      Alcotest.(check bool) "diag has phase" true (List.mem_assoc "phase" d);
      (match List.assoc "severity" d with
      | Obs.Json.String s -> Alcotest.(check string) "severity" "error" s
      | _ -> Alcotest.fail "severity not a string")
    | _ -> Alcotest.fail "diagnostics missing or empty")
  | _ -> Alcotest.fail "report_json not an object"

let test_linker_diag_names_unit () =
  let session = Sepcomp.Compile.new_session () in
  let a =
    Sepcomp.Compile.compile session ~name:"a.sml"
      ~source:"structure KgA = struct val v = 1 end" ~imports:[]
  in
  let b =
    Sepcomp.Compile.compile session ~name:"b.sml"
      ~source:"structure KgB = struct val w = KgA.v + 1 end" ~imports:[ a ]
  in
  (* executing b without a in the dynamic environment is a link error
     that must carry the unit's name, not Loc.dummy alone *)
  match Sepcomp.Compile.execute b Link.Linker.empty with
  | _ -> Alcotest.fail "expected a link error"
  | exception Diag.Error d ->
    Alcotest.(check string) "phase" "link" (Diag.phase_id d.Diag.phase);
    Alcotest.(check string) "code" "E0601" d.Diag.code;
    Alcotest.(check string) "unit name" "b.sml"
      (Option.value ~default:"?" d.Diag.unit_name)

let suite =
  [
    Alcotest.test_case "chain: poison propagation" `Quick test_chain_poison;
    Alcotest.test_case "fanout: independent subgraphs build" `Quick
      test_independent_subgraphs;
    Alcotest.test_case "fail-fast behaviour unchanged" `Quick
      test_failfast_unchanged;
    Alcotest.test_case "rerun after fix recompiles failed+skipped" `Quick
      test_rerun_after_fix;
    Alcotest.test_case "partitions/diagnostics deterministic across backends"
      `Quick test_deterministic_across_backends;
    Alcotest.test_case "random DAGs: failed = broken, partitions cover" `Quick
      test_random_dag_partitions;
    Alcotest.test_case "warn-error promotes warnings" `Quick test_werror;
    Alcotest.test_case "max-errors bounds the collector" `Quick test_max_errors;
    Alcotest.test_case "report_json carries partitions and diagnostics" `Quick
      test_report_json_partitions;
    Alcotest.test_case "linker diagnostics name the unit" `Quick
      test_linker_diag_names_unit;
  ]
