(* Telemetry layer: spans, metrics, the Chrome-trace export, and the
   build counters the IRM driver maintains. *)

module Trace = Obs.Trace
module Metrics = Obs.Metrics
module Json = Obs.Json
module Driver = Irm.Driver

(* ------------------------------------------------------------------ *)
(* Trace spans                                                         *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  Trace.enable ();
  let r =
    Trace.span "outer" (fun () ->
        Trace.span "inner-a" (fun () -> ());
        Trace.span "inner-b" (fun () -> ());
        17)
  in
  Trace.disable ();
  Alcotest.(check int) "thunk result passes through" 17 r;
  let evs = Trace.events () in
  Alcotest.(check (list string))
    "entry order" [ "outer"; "inner-a"; "inner-b" ]
    (List.map (fun e -> e.Trace.ev_name) evs);
  Alcotest.(check (list int))
    "nesting depths" [ 0; 1; 1 ]
    (List.map (fun e -> e.Trace.ev_depth) evs);
  let outer = List.hd evs and inner = List.nth evs 1 in
  Alcotest.(check bool)
    "inner contained in outer" true
    (inner.Trace.ev_start_us >= outer.Trace.ev_start_us
    && inner.Trace.ev_start_us +. inner.Trace.ev_dur_us
       <= outer.Trace.ev_start_us +. outer.Trace.ev_dur_us +. 1.0)

let test_span_disabled_is_noop () =
  Trace.disable ();
  Trace.reset ();
  let r = Trace.span "ghost" (fun () -> 3) in
  Alcotest.(check int) "still runs the thunk" 3 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.events ()))

let test_span_records_on_exception () =
  Trace.enable ();
  (try Trace.span "boom" (fun () -> failwith "expected") with Failure _ -> ());
  Trace.disable ();
  Alcotest.(check (list string))
    "span survives the raise" [ "boom" ]
    (List.map (fun e -> e.Trace.ev_name) (Trace.events ()))

let test_chrome_roundtrip () =
  Trace.enable ();
  Trace.span ~cat:"compile" ~args:[ ("unit", "a.sml") ] "compile.unit"
    (fun () -> Trace.span ~cat:"compile" "parse" (fun () -> ()));
  Trace.instant ~cat:"build" "build.cutoff_hit";
  Trace.disable ();
  let parsed = Json.parse (Json.to_string (Trace.to_chrome ())) in
  Alcotest.(check (option string))
    "display unit"
    (Some "ms")
    (match Json.member "displayTimeUnit" parsed with
    | Some (Json.String s) -> Some s
    | _ -> None);
  let events =
    match Json.member "traceEvents" parsed with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "traceEvents missing"
  in
  Alcotest.(check int) "one event per span" 3 (List.length events);
  List.iter
    (fun ev ->
      Alcotest.(check bool)
        "complete or instant event" true
        (match Json.member "ph" ev with
        | Some (Json.String ("X" | "i")) -> true
        | _ -> false);
      List.iter
        (fun k ->
          Alcotest.(check bool)
            (k ^ " present") true
            (Json.member k ev <> None))
        [ "name"; "cat"; "ts"; "dur"; "pid"; "tid" ])
    events;
  let first = List.hd events in
  Alcotest.(check bool)
    "span args exported" true
    (match Json.member "args" first with
    | Some args -> Json.member "unit" args = Some (Json.String "a.sml")
    | None -> false)

(* ------------------------------------------------------------------ *)
(* Cross-process aggregation primitives                                *)
(* ------------------------------------------------------------------ *)

let test_drain_inject_roundtrip () =
  Trace.enable ();
  Trace.span ~cat:"compile" ~args:[ ("unit", "a.sml") ] "parse" (fun () -> ());
  Trace.span "elaborate" (fun () -> ());
  let wire = Trace.drain_wire () in
  Alcotest.(check int) "drain empties the buffer" 0
    (List.length (Trace.events ()));
  Alcotest.(check string) "second drain is empty" "" (Trace.drain_wire ());
  let n = Trace.inject ~pid:4242 ~offset_us:1000.0 wire in
  Trace.disable ();
  Alcotest.(check int) "both events injected" 2 n;
  let evs = Trace.events () in
  Alcotest.(check (list string))
    "names survive the wire" [ "parse"; "elaborate" ]
    (List.map (fun e -> e.Trace.ev_name) evs);
  List.iter
    (fun e ->
      Alcotest.(check int) "tagged with the child pid" 4242 e.Trace.ev_pid;
      Alcotest.(check bool) "offset applied" true (e.Trace.ev_start_us >= 1000.))
    evs;
  let parse = List.hd evs in
  Alcotest.(check (list (pair string string)))
    "args survive the wire"
    [ ("unit", "a.sml") ]
    parse.Trace.ev_args

let test_inject_malformed_is_noop () =
  Trace.enable ();
  Alcotest.(check int) "garbage injects nothing" 0
    (Trace.inject ~pid:1 ~offset_us:0. "not a wire batch");
  Alcotest.(check int) "and leaves the trace empty" 0
    (List.length (Trace.events ()));
  Trace.disable ()

let test_record_phases_without_tracing () =
  Trace.disable ();
  Trace.reset ();
  let r, phases =
    Trace.record_phases (fun () ->
        Trace.span "parse" (fun () -> ());
        Trace.span "elaborate" (fun () -> Trace.span "unify" (fun () -> ()));
        (* repeated names are summed into one entry *)
        Trace.span "parse" (fun () -> ());
        11)
  in
  Alcotest.(check int) "thunk result passes through" 11 r;
  Alcotest.(check (list string))
    "each phase reported once"
    [ "elaborate"; "parse"; "unify" ]
    (List.sort String.compare (List.map fst phases));
  List.iter
    (fun (n, s) ->
      Alcotest.(check bool) (n ^ " non-negative") true (s >= 0.))
    phases;
  Alcotest.(check int) "no spans recorded while disabled" 0
    (List.length (Trace.events ()))

let test_record_span_is_truncated_standin () =
  Trace.enable ();
  let start = Unix.gettimeofday () -. 0.002 in
  Trace.record_span ~cat:"worker"
    ~args:[ ("truncated", "true") ]
    ~start_s:start "build.compile_job";
  Trace.disable ();
  match Trace.events () with
  | [ e ] ->
    Alcotest.(check string) "name" "build.compile_job" e.Trace.ev_name;
    Alcotest.(check bool) "spans the elapsed time" true
      (e.Trace.ev_dur_us >= 1000.);
    Alcotest.(check (list (pair string string)))
      "marked truncated"
      [ ("truncated", "true") ]
      e.Trace.ev_args
  | evs -> Alcotest.failf "expected one span, got %d" (List.length evs)

let test_json_canonical_sorted () =
  let v =
    Json.Obj
      [ ("b", Json.Int 2); ("a", Json.Int 1); ("c", Json.Obj [ ("z", Json.Null); ("y", Json.Bool true) ]) ]
  in
  Alcotest.(check string)
    "keys sorted recursively"
    "{\"a\":1,\"b\":2,\"c\":{\"y\":true,\"z\":null}}"
    (Json.to_canonical_string v);
  Alcotest.(check string)
    "canonical form is stable" (Json.to_canonical_string v)
    (Json.to_canonical_string (Json.parse (Json.to_canonical_string v)))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_monotonic () =
  let c = Metrics.counter "test.monotonic" in
  Metrics.reset ();
  Alcotest.(check int) "starts at zero" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "accumulates" 5 (Metrics.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Obs.Metrics: counter test.monotonic cannot decrease")
    (fun () -> Metrics.add c (-1));
  Alcotest.(check bool)
    "set rejected on counters" true
    (try
       Metrics.set c 0;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "value untouched by rejections" 5 (Metrics.value c)

let test_metric_registry () =
  let c = Metrics.counter "test.registry" in
  let c' = Metrics.counter "test.registry" in
  Metrics.reset ();
  Metrics.incr c;
  Alcotest.(check int) "same handle by name" 1 (Metrics.value c');
  Alcotest.(check (option int)) "find sees it" (Some 1)
    (Metrics.find "test.registry");
  Alcotest.(check bool)
    "kind clash rejected" true
    (try
       ignore (Metrics.gauge "test.registry");
       false
     with Invalid_argument _ -> true);
  Metrics.reset ();
  Alcotest.(check (option int))
    "reset zeroes but keeps registration" (Some 0)
    (Metrics.find "test.registry")

let test_metrics_json () =
  let c = Metrics.counter "test.json" in
  Metrics.reset ();
  Metrics.add c 7;
  let parsed = Json.parse (Json.to_string (Metrics.to_json ())) in
  Alcotest.(check (option int))
    "value round-trips"
    (Some 7)
    (match Json.member "test.json" parsed with
    | Some (Json.Int n) -> Some n
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Json parse-back                                                     *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd");
        ("n", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("l", Json.List [ Json.Bool true; Json.Null ]);
        ("o", Json.Obj []);
      ]
  in
  Alcotest.(check bool)
    "tree survives print/parse" true
    (Json.parse (Json.to_string v) = v);
  Alcotest.(check bool)
    "trailing garbage rejected" true
    (try
       ignore (Json.parse "{}x");
       false
     with Json.Parse_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Driver integration: registry counters match the per-build stats     *)
(* ------------------------------------------------------------------ *)

let test_build_counters_match_stats () =
  let fs = Vfs.memory () in
  fs.Vfs.fs_write "base.sml"
    "structure Base = struct val origin = 10 fun scale n = n * origin end";
  fs.Vfs.fs_write "mid.sml" "structure Mid = struct val v = Base.scale 2 end";
  fs.Vfs.fs_write "top.sml"
    "structure Top = struct val result = Mid.v + Base.origin end";
  let mgr = Driver.create fs in
  let sources = [ "base.sml"; "mid.sml"; "top.sml" ] in
  let _ = Driver.build mgr ~policy:Driver.Timestamp ~sources in
  (* a comment-only edit: recompiles cascade under timestamp, but every
     interface pid is unchanged, so each recompile is a cutoff hit *)
  fs.Vfs.fs_write "base.sml"
    "structure Base = struct val origin = 10 fun scale n = n * origin end (* touched *)";
  Metrics.reset ();
  let stats = Driver.build mgr ~policy:Driver.Timestamp ~sources in
  Alcotest.(check (option int))
    "build.recompiled matches stats"
    (Some (List.length stats.Driver.st_recompiled))
    (Metrics.find "build.recompiled");
  Alcotest.(check (option int))
    "build.loaded matches stats"
    (Some (List.length stats.Driver.st_loaded))
    (Metrics.find "build.loaded");
  Alcotest.(check (option int))
    "build.cutoff_hits matches stats"
    (Some (List.length stats.Driver.st_cutoff_hits))
    (Metrics.find "build.cutoff_hits");
  Alcotest.(check bool)
    "the touch produced cutoff hits" true
    (List.length stats.Driver.st_cutoff_hits > 0);
  List.iter
    (fun file ->
      Alcotest.(check string)
        (file ^ " outcome") "cutoff" (Driver.outcome_of stats file))
    stats.Driver.st_cutoff_hits

let suite =
  [
    Alcotest.test_case "span nesting and order" `Quick test_span_nesting;
    Alcotest.test_case "disabled span is a no-op" `Quick
      test_span_disabled_is_noop;
    Alcotest.test_case "span recorded on exception" `Quick
      test_span_records_on_exception;
    Alcotest.test_case "chrome trace round-trips" `Quick test_chrome_roundtrip;
    Alcotest.test_case "drain/inject wire round-trip" `Quick
      test_drain_inject_roundtrip;
    Alcotest.test_case "malformed inject is a no-op" `Quick
      test_inject_malformed_is_noop;
    Alcotest.test_case "record_phases works untraced" `Quick
      test_record_phases_without_tracing;
    Alcotest.test_case "record_span stands in truncated spans" `Quick
      test_record_span_is_truncated_standin;
    Alcotest.test_case "canonical json is sorted and stable" `Quick
      test_json_canonical_sorted;
    Alcotest.test_case "counter monotonicity" `Quick test_counter_monotonic;
    Alcotest.test_case "metric registry" `Quick test_metric_registry;
    Alcotest.test_case "metrics to_json" `Quick test_metrics_json;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "build counters match stats" `Quick
      test_build_counters_match_stats;
  ]
