(* The compile server: protocol codecs, the advisory build lock, the
   polling watcher, and the step-driven reactor itself — driven
   in-process (no forks, no background threads): the test plays the
   client on a raw non-blocking socket and pumps [Server.step] by hand,
   so client and daemon interleave deterministically in one domain. *)

module Frame = Pickle.Frame
module Protocol = Daemon.Protocol
module Server = Daemon.Server
module Client = Daemon.Client
module Watch = Daemon.Watch
module Lock = Daemon.Lock
module Driver = Irm.Driver

(* ------------------------------------------------------------------ *)
(* Protocol codecs                                                     *)
(* ------------------------------------------------------------------ *)

let gen_string = QCheck.Gen.(string_size ~gen:char (int_range 0 30))

let gen_build_opts =
  QCheck.Gen.(
    map
      (fun (((group, policy, jobs, cache), (kg, werr, maxe, json)), sched) ->
        {
          Protocol.b_group = group;
          b_policy = policy;
          b_jobs = jobs;
          b_cache = cache;
          b_keep_going = kg;
          b_werror = werr;
          b_max_errors = maxe;
          b_error_json = json;
          b_schedule = sched;
        })
      (pair
         (pair
            (quad gen_string
               (oneofl [ "cutoff"; "timestamp"; "selective" ])
               (int_range 0 64) bool)
            (quad bool bool (opt (int_range 0 1000)) bool))
         (oneofl [ "wavefront"; "critical-path" ])))

let gen_request =
  QCheck.Gen.(
    oneof
      [
        map (fun o -> Protocol.Build o) gen_build_opts;
        map (fun o -> Protocol.Run o) gen_build_opts;
        map
          (fun (u, j) -> Protocol.Explain { e_unit = u; e_json = j })
          (pair gen_string bool);
        map
          (fun (j, t) -> Protocol.Profile { p_json = j; p_top = t })
          (pair bool (int_range 0 100));
        return Protocol.Status;
        return Protocol.Shutdown;
      ])

let prop_request_roundtrip =
  QCheck.Test.make ~count:200 ~name:"request codec roundtrips"
    (QCheck.make gen_request)
    (fun req -> Protocol.decode_request (Protocol.encode_request req) = req)

let prop_response_roundtrip =
  QCheck.Test.make ~count:200 ~name:"response codec roundtrips"
    (QCheck.make
       QCheck.Gen.(
         map
           (fun (code, out, err) -> { Protocol.r_code = code; r_out = out; r_err = err })
           (triple (int_range (-255) 255) gen_string gen_string)))
    (fun resp -> Protocol.decode_response (Protocol.encode_response resp) = resp)

let test_codec_rejects_garbage () =
  (match Protocol.decode_request "\255\255\255" with
  | exception Pickle.Buf.Corrupt _ -> ()
  | _ -> Alcotest.fail "unknown request tag must be rejected");
  match Protocol.decode_response "" with
  | exception Pickle.Buf.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated response must be rejected"

(* ------------------------------------------------------------------ *)
(* Fixtures: real temp directories (the daemon serves a real fs)       *)
(* ------------------------------------------------------------------ *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "smlsep-d%d-%d" (Unix.getpid ()) !n)
    in
    rm_rf dir;
    Unix.mkdir dir 0o755;
    dir

let base_src =
  "structure Base = struct val origin = 10 fun scale n = n * origin end"

let mid_src = "structure Mid = struct val v = Base.scale 2 end"
let top_src = "structure Top = struct val result = Mid.v + Base.origin end"

let write_file dir file contents =
  Out_channel.with_open_bin (Filename.concat dir file) (fun oc ->
      Out_channel.output_string oc contents)

let fresh_project () =
  let dir = fresh_dir () in
  write_file dir "base.sml" base_src;
  write_file dir "mid.sml" mid_src;
  write_file dir "top.sml" top_src;
  write_file dir "sources.cm" "base.sml\nmid.sml\ntop.sml\n";
  dir

(* the produced artifacts: every <unit>.bin in the directory, by name *)
let bins dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".bin")
  |> List.sort String.compare
  |> List.map (fun f ->
         ( f,
           In_channel.with_open_bin (Filename.concat dir f) In_channel.input_all
         ))

let test_config ?(watch = false) ?(poll = 3600.) ?(client_timeout = 30.) dir =
  {
    (Server.default_config ~dir) with
    Server.d_watch = watch;
    d_poll_s = poll;
    d_client_timeout_s = client_timeout;
    d_log = ignore;
  }

(* ------------------------------------------------------------------ *)
(* A raw test client: non-blocking socket, hand-pumped reactor         *)
(* ------------------------------------------------------------------ *)

type client = { fd : Unix.file_descr; mutable buf : string }

let connect dir =
  let path =
    Protocol.socket_path ~dir ~state_dir:Protocol.default_state_dir
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Unix.set_nonblock fd;
  { fd; buf = "" }

let disconnect c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send c ~kind ~id payload =
  let frame = Frame.encode ~kind ~id ~payload in
  let n = Unix.write_substring c.fd frame 0 (String.length frame) in
  Alcotest.(check int) "frame fully written" (String.length frame) n

(* step the server once and drain whatever it sent us; [`Eof] when the
   daemon closed our connection *)
let pump srv c =
  Server.step ~timeout_s:0.01 srv;
  let chunk = Bytes.create 65536 in
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | 0 -> `Eof
  | n ->
    c.buf <- c.buf ^ Bytes.sub_string chunk 0 n;
    `Data
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> `Data

let recv_frame srv c =
  let rec go tries =
    if tries = 0 then Alcotest.fail "daemon never answered";
    match Frame.pop c.buf with
    | Some (msg, rest) ->
      c.buf <- rest;
      msg
    | None -> (
      match pump srv c with
      | `Eof -> Alcotest.fail "daemon closed the connection"
      | `Data -> go (tries - 1))
  in
  go 2000

let recv_eof srv c =
  let deadline = Unix.gettimeofday () +. 5. in
  let rec go () =
    match pump srv c with
    | `Eof -> ()
    | `Data ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "daemon never closed the connection"
      else begin
        Unix.sleepf 0.02;
        go ()
      end
  in
  go ()

let handshake srv c =
  send c ~kind:Protocol.k_hello ~id:"" Protocol.version;
  let m = recv_frame srv c in
  Alcotest.(check int) "hello answered" Protocol.k_hello m.Frame.f_kind

let client_of srv dir =
  let c = connect dir in
  handshake srv c;
  c

(* one request/response exchange; diag frames are collected *)
let rpc srv c ~id req =
  send c ~kind:Protocol.k_request ~id (Protocol.encode_request req);
  let rec go diags =
    let m = recv_frame srv c in
    if m.Frame.f_kind = Protocol.k_diag && String.equal m.Frame.f_id id then
      go (m.Frame.f_payload :: diags)
    else begin
      Alcotest.(check int) "response kind" Protocol.k_response m.Frame.f_kind;
      Alcotest.(check string) "response id" id m.Frame.f_id;
      (Protocol.decode_response m.Frame.f_payload, List.rev diags)
    end
  in
  go []

let build_opts ?(policy = "cutoff") ?(json = false) ?(schedule = "wavefront")
    group =
  {
    Protocol.b_group = group;
    b_policy = policy;
    b_jobs = 1;
    b_cache = false;
    b_keep_going = false;
    b_werror = false;
    b_max_errors = None;
    b_error_json = json;
    b_schedule = schedule;
  }

let status srv c ~id =
  let resp, _ = rpc srv c ~id Protocol.Status in
  Alcotest.(check int) "status code" 0 resp.Protocol.r_code;
  Obs.Json.parse resp.Protocol.r_out

let json_int k j =
  match Obs.Json.member k j with
  | Some (Obs.Json.Int n) -> n
  | _ -> Alcotest.fail (Printf.sprintf "status field %s missing" k)

let with_server cfg f =
  let srv = Server.create cfg in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () -> f srv

(* ------------------------------------------------------------------ *)
(* Reactor basics                                                      *)
(* ------------------------------------------------------------------ *)

let test_status_and_shutdown () =
  let dir = fresh_project () in
  let sock =
    Protocol.socket_path ~dir ~state_dir:Protocol.default_state_dir
  in
  with_server (test_config dir) @@ fun srv ->
  let c = client_of srv dir in
  let j = status srv c ~id:"1" in
  (match Obs.Json.member "version" j with
  | Some (Obs.Json.String v) ->
    Alcotest.(check string) "protocol version" Protocol.version v
  | _ -> Alcotest.fail "status has no version");
  Alcotest.(check int) "one request served" 1 (json_int "served" j);
  let resp, _ = rpc srv c ~id:"2" Protocol.Shutdown in
  Alcotest.(check int) "shutdown acknowledged" 0 resp.Protocol.r_code;
  (* the daemon drains the response, closes us, and stops *)
  recv_eof srv c;
  Server.step ~timeout_s:0.01 srv;
  Alcotest.(check bool) "server stopped" false (Server.running srv);
  Alcotest.(check bool) "socket removed" false (Sys.file_exists sock);
  disconnect c

let test_stale_socket_swept () =
  let dir = fresh_project () in
  let sock =
    Protocol.socket_path ~dir ~state_dir:Protocol.default_state_dir
  in
  Unix.mkdir (Filename.dirname sock) 0o755;
  (* a dead daemon's leftover: a bound socket file nobody listens on *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX sock);
  Unix.listen fd 1;
  Unix.close fd;
  with_server (test_config dir) @@ fun srv ->
  let c = client_of srv dir in
  let j = status srv c ~id:"1" in
  Alcotest.(check bool) "daemon rebound the socket" true (json_int "pid" j > 0);
  disconnect c

let test_half_open_socket_times_out () =
  (* a listener that accepts (via its backlog) but never speaks: the
     client's HELLO deadline must surface as [Timeout], not as a
     protocol error or a raw [Unix_error] *)
  let dir = fresh_project () in
  let sock =
    Protocol.socket_path ~dir ~state_dir:Protocol.default_state_dir
  in
  Unix.mkdir (Filename.dirname sock) 0o755;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX sock);
  Unix.listen fd 4;
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  (match Client.connect ~timeout_s:0.3 ~dir () with
  | _ -> Alcotest.fail "handshake against a mute listener succeeded"
  | exception Client.Timeout _ -> ()
  | exception Client.Protocol_error msg ->
    Alcotest.failf "deadline surfaced as Protocol_error: %s" msg);
  Alcotest.(check bool)
    "waited out the handshake budget" true
    (Unix.gettimeofday () -. t0 >= 0.25)

let test_version_mismatch_rejected () =
  let dir = fresh_project () in
  with_server (test_config dir) @@ fun srv ->
  let c = connect dir in
  send c ~kind:Protocol.k_hello ~id:"" "smlsep-daemon/999";
  let m = recv_frame srv c in
  Alcotest.(check int) "error frame" Protocol.k_error m.Frame.f_kind;
  Alcotest.(check bool) "names the mismatch" true
    (String.length m.Frame.f_payload > 0);
  recv_eof srv c;
  disconnect c;
  (* the daemon is unharmed: a well-behaved client still gets served *)
  let c2 = client_of srv dir in
  ignore (status srv c2 ~id:"1");
  disconnect c2

let test_garbage_frame_survived () =
  let dir = fresh_project () in
  with_server (test_config dir) @@ fun srv ->
  (* pure garbage: not even a frame header *)
  let c = connect dir in
  ignore (Unix.write_substring c.fd "not a frame at all!!" 0 20);
  let m = recv_frame srv c in
  Alcotest.(check int) "garbage answered with error" Protocol.k_error
    m.Frame.f_kind;
  recv_eof srv c;
  disconnect c;
  (* a valid frame whose payload is not a decodable request: the error
     names the request id and the connection stays up *)
  let c2 = client_of srv dir in
  send c2 ~kind:Protocol.k_request ~id:"bad" "\255\255\255";
  let m2 = recv_frame srv c2 in
  Alcotest.(check int) "undecodable request errored" Protocol.k_error
    m2.Frame.f_kind;
  Alcotest.(check string) "echoes the request id" "bad" m2.Frame.f_id;
  ignore (status srv c2 ~id:"after");
  disconnect c2

let test_wedged_client_dropped () =
  let dir = fresh_project () in
  with_server (test_config ~client_timeout:0.2 dir) @@ fun srv ->
  let c = connect dir in
  (* half a frame, then silence: the watchdog must cut us loose *)
  let frame = Frame.encode ~kind:Protocol.k_hello ~id:"" ~payload:Protocol.version in
  ignore (Unix.write_substring c.fd frame 0 4);
  let deadline = Unix.gettimeofday () +. 5. in
  let rec wait () =
    match pump srv c with
    | `Eof -> ()
    | `Data ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "wedged client never dropped"
      else begin
        Unix.sleepf 0.05;
        wait ()
      end
  in
  wait ();
  disconnect c;
  (* and the daemon keeps serving *)
  let c2 = client_of srv dir in
  ignore (status srv c2 ~id:"1");
  disconnect c2

(* ------------------------------------------------------------------ *)
(* Builds over the socket                                              *)
(* ------------------------------------------------------------------ *)

(* the reference: what a one-shot in-process build of the same tree
   produces *)
let oneshot_build ?(policy = Driver.Cutoff) dir =
  let fs = Vfs.real ~dir in
  let sources = Irm.Group.load fs "sources.cm" in
  let mgr = Driver.create fs in
  ignore (Driver.build mgr ~policy ~sources)

let policies =
  [ ("cutoff", Driver.Cutoff); ("timestamp", Driver.Timestamp);
    ("selective", Driver.Selective) ]

let test_daemon_build_matches_oneshot () =
  List.iter
    (fun (policy_name, policy) ->
      let daemon_dir = fresh_project () in
      let oneshot_dir = fresh_project () in
      with_server (test_config daemon_dir) @@ fun srv ->
      let c = client_of srv daemon_dir in
      let resp, _ =
        rpc srv c ~id:"b1"
          (Protocol.Build (build_opts ~policy:policy_name "sources.cm"))
      in
      Alcotest.(check int) (policy_name ^ ": initial build ok") 0
        resp.Protocol.r_code;
      oneshot_build ~policy oneshot_dir;
      Alcotest.(check bool)
        (policy_name ^ ": initial bins byte-identical")
        true
        (bins daemon_dir = bins oneshot_dir);
      (* edit a unit in both trees identically; push the source mtime
         forward so even the timestamp policy sees it without sleeping
         across a second boundary *)
      let edited = "structure Mid = struct val v = Base.scale 3 end" in
      let future = Unix.gettimeofday () +. 5. in
      List.iter
        (fun d ->
          write_file d "mid.sml" edited;
          Unix.utimes (Filename.concat d "mid.sml") future future)
        [ daemon_dir; oneshot_dir ];
      let resp2, _ =
        rpc srv c ~id:"b2"
          (Protocol.Build (build_opts ~policy:policy_name "sources.cm"))
      in
      Alcotest.(check int) (policy_name ^ ": rebuild ok") 0
        resp2.Protocol.r_code;
      Alcotest.(check bool)
        (policy_name ^ ": rebuild touched the edited unit")
        true
        (contains ~needle:"mid.sml" resp2.Protocol.r_out);
      oneshot_build ~policy oneshot_dir;
      Alcotest.(check bool)
        (policy_name ^ ": post-edit bins byte-identical")
        true
        (bins daemon_dir = bins oneshot_dir);
      let resp3, _ = rpc srv c ~id:"b3" Protocol.Shutdown in
      Alcotest.(check int) "clean shutdown" 0 resp3.Protocol.r_code;
      disconnect c)
    policies

let test_run_over_socket () =
  let dir = fresh_project () in
  write_file dir "main.sml"
    "structure Main = struct val () = print (Int.toString Top.result) end";
  write_file dir "sources.cm" "base.sml\nmid.sml\ntop.sml\nmain.sml\n";
  with_server (test_config dir) @@ fun srv ->
  let c = client_of srv dir in
  let resp, _ = rpc srv c ~id:"r1" (Protocol.Run (build_opts "sources.cm")) in
  Alcotest.(check int) "run ok" 0 resp.Protocol.r_code;
  Alcotest.(check string) "program output shipped back" "30"
    resp.Protocol.r_out;
  disconnect c

let test_diagnostics_streamed_as_envelope () =
  let dir = fresh_project () in
  write_file dir "mid.sml" "structure Mid = struct val v = Base.nope end";
  with_server (test_config dir) @@ fun srv ->
  let c = client_of srv dir in
  let resp, diags =
    rpc srv c ~id:"b1"
      (Protocol.Build (build_opts ~json:true "sources.cm"))
  in
  Alcotest.(check int) "broken build fails" 1 resp.Protocol.r_code;
  Alcotest.(check int) "one diag envelope streamed" 1 (List.length diags);
  let envelope = Obs.Json.parse (List.hd diags) in
  (match Obs.Json.member "version" envelope with
  | Some (Obs.Json.String v) ->
    Alcotest.(check string) "diag envelope version" "smlsep-diag/1" v
  | _ -> Alcotest.fail "diag envelope has no version");
  disconnect c

let test_concurrent_clients () =
  let dir = fresh_project () in
  (* a second, disjoint group in the same tree *)
  write_file dir "solo.sml" "structure Solo = struct val x = 42 end";
  write_file dir "other.cm" "solo.sml\n";
  let oneshot_dir = fresh_project () in
  write_file oneshot_dir "solo.sml" "structure Solo = struct val x = 42 end";
  write_file oneshot_dir "other.cm" "solo.sml\n";
  with_server (test_config dir) @@ fun srv ->
  let cs = List.init 4 (fun _ -> client_of srv dir) in
  (* all four requests are in flight before any response is read: two
     overlapping builds of the same group, one of the disjoint group,
     one status probe *)
  (match cs with
  | [ c1; c2; c3; c4 ] ->
    send c1 ~kind:Protocol.k_request ~id:"q1"
      (Protocol.encode_request (Protocol.Build (build_opts "sources.cm")));
    send c2 ~kind:Protocol.k_request ~id:"q2"
      (Protocol.encode_request (Protocol.Build (build_opts "sources.cm")));
    send c3 ~kind:Protocol.k_request ~id:"q3"
      (Protocol.encode_request (Protocol.Build (build_opts "other.cm")));
    send c4 ~kind:Protocol.k_request ~id:"q4"
      (Protocol.encode_request Protocol.Status);
    List.iteri
      (fun i c ->
        let id = Printf.sprintf "q%d" (i + 1) in
        let rec collect () =
          let m = recv_frame srv c in
          if m.Frame.f_kind = Protocol.k_diag then collect ()
          else begin
            Alcotest.(check string) (id ^ " response id") id m.Frame.f_id;
            Protocol.decode_response m.Frame.f_payload
          end
        in
        let resp = collect () in
        Alcotest.(check int) (id ^ " succeeded") 0 resp.Protocol.r_code)
      cs
  | _ -> assert false);
  List.iter disconnect cs;
  (* both groups' artifacts match one-shot builds *)
  oneshot_build oneshot_dir;
  let fs = Vfs.real ~dir:oneshot_dir in
  let mgr = Driver.create fs in
  ignore (Driver.build mgr ~policy:Driver.Cutoff ~sources:[ "solo.sml" ]);
  Alcotest.(check bool) "all bins byte-identical" true
    (bins dir = bins oneshot_dir)

(* ------------------------------------------------------------------ *)
(* Watch-driven rebuilds                                               *)
(* ------------------------------------------------------------------ *)

let test_eager_watch_rebuild () =
  let dir = fresh_project () in
  with_server (test_config ~watch:true ~poll:0.05 dir) @@ fun srv ->
  let c = client_of srv dir in
  let resp, _ = rpc srv c ~id:"b1" (Protocol.Build (build_opts "sources.cm")) in
  Alcotest.(check int) "initial build ok" 0 resp.Protocol.r_code;
  write_file dir "mid.sml" "structure Mid = struct val v = Base.scale 7 end";
  (let future = Unix.gettimeofday () +. 5. in
   Unix.utimes (Filename.concat dir "mid.sml") future future);
  (* the daemon's own sweep must pick the edit up and rebuild without
     any client request *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait () =
    Unix.sleepf 0.05;
    Server.step ~timeout_s:0.01 srv;
    let j = status srv c ~id:"s" in
    let groups =
      match Obs.Json.member "groups" j with
      | Some (Obs.Json.List gs) -> gs
      | _ -> []
    in
    let builds =
      List.fold_left (fun acc g -> acc + json_int "builds" g) 0 groups
    in
    if builds >= 2 then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "watch never rebuilt"
    else wait ()
  in
  wait ();
  disconnect c;
  (* and the artifacts equal a one-shot build of the edited tree *)
  let oneshot_dir = fresh_project () in
  write_file oneshot_dir "mid.sml"
    "structure Mid = struct val v = Base.scale 7 end";
  oneshot_build oneshot_dir;
  Alcotest.(check bool) "watch-rebuilt bins byte-identical" true
    (bins dir = bins oneshot_dir)

let test_lazy_invalidation () =
  let dir = fresh_project () in
  with_server (test_config ~watch:false ~poll:0.05 dir) @@ fun srv ->
  let c = client_of srv dir in
  ignore (rpc srv c ~id:"b1" (Protocol.Build (build_opts "sources.cm")));
  (* an interface change (a new export), so cutoff cannot spare the
     dependents and the whole cone must recompile *)
  write_file dir "base.sml"
    "structure Base = struct val origin = 10 val extra = true fun scale n = \
     n * origin end";
  (let future = Unix.gettimeofday () +. 5. in
   Unix.utimes (Filename.concat dir "base.sml") future future);
  (* sweeps mark the cone dirty but must not rebuild on their own *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait () =
    Unix.sleepf 0.05;
    Server.step ~timeout_s:0.01 srv;
    let j = status srv c ~id:"s" in
    let dirty =
      match Obs.Json.member "watch" j with
      | Some w -> json_int "dirty_total" w
      | None -> 0
    in
    if dirty > 0 then j
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "sweep never saw the edit"
    else wait ()
  in
  let j = wait () in
  let builds =
    match Obs.Json.member "groups" j with
    | Some (Obs.Json.List (g :: _)) -> json_int "builds" g
    | _ -> 0
  in
  Alcotest.(check int) "lazy mode: no rebuild yet" 1 builds;
  (* the next requested build recompiles the dirty cone *)
  let resp, _ = rpc srv c ~id:"b2" (Protocol.Build (build_opts "sources.cm")) in
  Alcotest.(check int) "requested rebuild ok" 0 resp.Protocol.r_code;
  let count_tag tag =
    List.length
      (List.filter
         (fun line -> contains ~needle:tag line)
         (String.split_on_char '\n' resp.Protocol.r_out))
  in
  Alcotest.(check int) "whole cone recompiled" 3 (count_tag "[recompiled");
  disconnect c

(* ------------------------------------------------------------------ *)
(* The advisory lock                                                   *)
(* ------------------------------------------------------------------ *)

let test_lock_basics () =
  let dir = fresh_dir () in
  let l = Lock.acquire ~dir in
  (match Lock.acquire ~dir with
  | exception Lock.Held { holder; _ } ->
    Alcotest.(check string) "holder names our pid"
      (string_of_int (Unix.getpid ()))
      holder
  | l2 ->
    Lock.release l2;
    Alcotest.fail "second acquire must fail");
  Lock.release l;
  Lock.release l;
  (* idempotent *)
  let l3 = Lock.acquire ~dir in
  Lock.release l3;
  (* with_lock releases on exception *)
  (match Lock.with_lock ~dir (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception must propagate");
  Lock.with_lock ~dir (fun () -> ())

let test_lock_contention_diagnostic () =
  let dir = fresh_project () in
  with_server (test_config dir) @@ fun srv ->
  let c = client_of srv dir in
  (* the test process plays the stray one-shot build holding the lock;
     the daemon's bounded retry must give up with a clear diagnostic *)
  let l = Lock.acquire ~dir in
  let resp, _ = rpc srv c ~id:"b1" (Protocol.Build (build_opts "sources.cm")) in
  Lock.release l;
  Alcotest.(check int) "locked build fails" 1 resp.Protocol.r_code;
  Alcotest.(check bool) "diagnostic names the lock" true
    (contains ~needle:"lock" resp.Protocol.r_err);
  (* after release the same request succeeds *)
  let resp2, _ =
    rpc srv c ~id:"b2" (Protocol.Build (build_opts "sources.cm"))
  in
  Alcotest.(check int) "unlocked build ok" 0 resp2.Protocol.r_code;
  disconnect c

(* ------------------------------------------------------------------ *)
(* The watcher                                                         *)
(* ------------------------------------------------------------------ *)

let test_watch_sweep () =
  let fs = Vfs.memory () in
  fs.Vfs.fs_write "a.sml" "alpha";
  fs.Vfs.fs_write "b.sml" "beta";
  let w = Watch.create fs in
  Watch.track w [ "a.sml"; "b.sml"; "ghost.sml" ];
  Alcotest.(check (list string))
    "tracked set"
    [ "a.sml"; "b.sml"; "ghost.sml" ]
    (Watch.tracked w);
  Alcotest.(check (list string)) "fresh track is clean" [] (Watch.sweep w);
  fs.Vfs.fs_write "b.sml" "beta beta";
  Alcotest.(check (list string)) "content change" [ "b.sml" ] (Watch.sweep w);
  Alcotest.(check (list string)) "change settles" [] (Watch.sweep w);
  (* same bytes rewritten: mtime moves, content does not — not dirty *)
  fs.Vfs.fs_write "a.sml" "alpha";
  Alcotest.(check (list string)) "touch without change" [] (Watch.sweep w);
  (* tracked-but-absent file appearing, then vanishing *)
  fs.Vfs.fs_write "ghost.sml" "boo";
  Alcotest.(check (list string)) "file appears" [ "ghost.sml" ] (Watch.sweep w);
  fs.Vfs.fs_remove "ghost.sml";
  Alcotest.(check (list string)) "file vanishes" [ "ghost.sml" ] (Watch.sweep w);
  (* untracking forgets *)
  Watch.track w [ "a.sml" ];
  fs.Vfs.fs_write "b.sml" "ignored now";
  Alcotest.(check (list string)) "untracked edits invisible" [] (Watch.sweep w)

(* ------------------------------------------------------------------ *)
(* Interrupted builds record partial profiles                          *)
(* ------------------------------------------------------------------ *)

let test_interrupt_records_partial_profile () =
  let fs = Vfs.memory () in
  List.iter
    (fun (p, s) -> fs.Vfs.fs_write p s)
    [ ("base.sml", base_src); ("mid.sml", mid_src); ("top.sml", top_src) ];
  (* the signal arrives while the second unit commits its bin *)
  let fs' =
    {
      fs with
      Vfs.fs_write =
        (fun path data ->
          (* bins land via the atomic-commit temp file *)
          if contains ~needle:"mid.sml.bin" path then
            raise (Driver.Interrupted "SIGINT-test");
          fs.Vfs.fs_write path data);
    }
  in
  let profile = Obs.Profile.load fs in
  let mgr = Driver.create fs' in
  (match
     Driver.build ~profile mgr ~policy:Driver.Cutoff
       ~sources:[ "base.sml"; "mid.sml"; "top.sml" ]
   with
  | _ -> Alcotest.fail "build must be interrupted"
  | exception Driver.Interrupted _ -> ());
  match Obs.Profile.last profile with
  | None -> Alcotest.fail "interrupted build must still be recorded"
  | Some b ->
    Alcotest.(check int) "only the completed unit recorded" 1
      (List.length b.Obs.Profile.bp_units);
    let u = List.hd b.Obs.Profile.bp_units in
    Alcotest.(check string) "it is the first unit" "base.sml"
      u.Obs.Profile.up_unit;
    Alcotest.(check string) "with its real outcome" "recompiled"
      u.Obs.Profile.up_outcome;
    (* the record survives a reload, so `irm profile` sees it *)
    let p' = Obs.Profile.load fs in
    Alcotest.(check bool) "persisted" true (Obs.Profile.last p' <> None)

(* ------------------------------------------------------------------ *)
(* Hot swapping through the daemon                                     *)
(* ------------------------------------------------------------------ *)

let main_src = "structure Main = struct val () = print (Int.toString Top.result) end"

let fresh_hot_project () =
  let dir = fresh_project () in
  write_file dir "main.sml" main_src;
  write_file dir "sources.cm" "base.sml\nmid.sml\ntop.sml\nmain.sml\n";
  dir

let hot_config dir = { (test_config dir) with Server.d_hot_swap = true }

(* make an edit visible to mtime-based staleness checks immediately *)
let edit dir file contents =
  write_file dir file contents;
  let future = Unix.gettimeofday () +. 5. in
  Unix.utimes (Filename.concat dir file) future future

(* the hot-swap fields of the first group in a status envelope *)
let swap_fields j =
  match Obs.Json.member "groups" j with
  | Some (Obs.Json.List (g :: _)) ->
    let epoch =
      match Obs.Json.member "epoch" g with
      | Some (Obs.Json.Int n) -> Some n
      | Some Obs.Json.Null -> None
      | _ -> Alcotest.fail "group epoch field missing"
    in
    let swaps k =
      match Obs.Json.member "swaps" g with
      | Some s -> json_int k s
      | None -> Alcotest.fail "group swaps field missing"
    in
    (epoch, swaps)
  | _ -> Alcotest.fail "no groups in status"

let test_hot_swap_impl_then_epoch () =
  let dir = fresh_hot_project () in
  with_server (hot_config dir) @@ fun srv ->
  let c = client_of srv dir in
  (* first clean build establishes the baseline epoch *)
  let resp, _ = rpc srv c ~id:"r1" (Protocol.Run (build_opts "sources.cm")) in
  Alcotest.(check int) "run ok" 0 resp.Protocol.r_code;
  Alcotest.(check string) "baseline output" "30" resp.Protocol.r_out;
  let j = status srv c ~id:"s1" in
  (match Obs.Json.member "hot_swap" j with
  | Some (Obs.Json.Bool true) -> ()
  | _ -> Alcotest.fail "status must advertise hot_swap");
  let epoch, _ = swap_fields j in
  Alcotest.(check (option int)) "baseline epoch" (Some 0) epoch;
  (* an implementation edit confined to main's own output: the swap
     rebinds in place, the epoch does not move *)
  edit dir "main.sml"
    "structure Main = struct val () = print (Int.toString (Top.result + 1)) \
     end";
  let resp, _ = rpc srv c ~id:"r2" (Protocol.Run (build_opts "sources.cm")) in
  Alcotest.(check int) "impl run ok" 0 resp.Protocol.r_code;
  Alcotest.(check string) "impl-swapped output" "31" resp.Protocol.r_out;
  let epoch, swaps = swap_fields (status srv c ~id:"s2") in
  Alcotest.(check (option int)) "epoch pid-stable" (Some 0) epoch;
  Alcotest.(check int) "one impl swap" 1 (swaps "impl");
  Alcotest.(check int) "no epoch swap yet" 0 (swaps "epoch");
  (* an interface edit bumps the epoch and relinks the cone *)
  edit dir "base.sml"
    "structure Base = struct val origin = 10 val extra = true fun scale n = \
     n * origin end";
  let resp, _ = rpc srv c ~id:"r3" (Protocol.Run (build_opts "sources.cm")) in
  Alcotest.(check int) "epoch run ok" 0 resp.Protocol.r_code;
  Alcotest.(check string) "epoch-swapped output" "31" resp.Protocol.r_out;
  let epoch, swaps = swap_fields (status srv c ~id:"s3") in
  Alcotest.(check (option int)) "epoch bumped" (Some 1) epoch;
  Alcotest.(check int) "one epoch swap" 1 (swaps "epoch");
  Alcotest.(check int) "no rollbacks" 0 (swaps "rollbacks");
  disconnect c

let test_swap_and_epochs_requests () =
  let dir = fresh_hot_project () in
  with_server (hot_config dir) @@ fun srv ->
  let c = client_of srv dir in
  ignore (rpc srv c ~id:"b1" (Protocol.Build (build_opts "sources.cm")));
  (* `irm swap UNIT`: rebuild and reconcile, reporting the outcome *)
  edit dir "main.sml"
    "structure Main = struct val () = print (Int.toString (Top.result + 2)) \
     end";
  let resp, _ =
    rpc srv c ~id:"w1"
      (Protocol.Swap { s_group = ""; s_unit = "main.sml" })
  in
  Alcotest.(check int) "swap ok" 0 resp.Protocol.r_code;
  Alcotest.(check bool) "reports an impl swap" true
    (contains ~needle:"impl swap" resp.Protocol.r_out);
  Alcotest.(check bool) "names the unit" true
    (contains ~needle:"main.sml" resp.Protocol.r_out);
  (* the swapped state serves the new output *)
  let resp, _ = rpc srv c ~id:"r1" (Protocol.Run (build_opts "sources.cm")) in
  Alcotest.(check string) "swapped output served" "32" resp.Protocol.r_out;
  (* a unit outside the group is refused *)
  let resp, _ =
    rpc srv c ~id:"w2"
      (Protocol.Swap { s_group = ""; s_unit = "nope.sml" })
  in
  Alcotest.(check int) "unknown unit refused" 1 resp.Protocol.r_code;
  (* the epoch inventory, as JSON *)
  let resp, _ =
    rpc srv c ~id:"e1" (Protocol.Epochs { ep_group = ""; ep_json = true })
  in
  Alcotest.(check int) "epochs ok" 0 resp.Protocol.r_code;
  let j = Obs.Json.parse resp.Protocol.r_out in
  Alcotest.(check int) "serving epoch 0" 0 (json_int "epoch" j);
  (match Obs.Json.member "history" j with
  | Some (Obs.Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "epoch history missing");
  disconnect c

let test_swap_disabled_refused () =
  let dir = fresh_hot_project () in
  with_server (test_config dir) @@ fun srv ->
  let c = client_of srv dir in
  let resp, _ =
    rpc srv c ~id:"w1" (Protocol.Swap { s_group = ""; s_unit = "" })
  in
  Alcotest.(check int) "refused" 2 resp.Protocol.r_code;
  Alcotest.(check bool) "says how to enable" true
    (contains ~needle:"--hot-swap" resp.Protocol.r_err);
  disconnect c

(* ------------------------------------------------------------------ *)
(* Stale daemon detection                                              *)
(* ------------------------------------------------------------------ *)

let test_probe_stale_daemon () =
  let dir = fresh_dir () in
  let sock =
    Protocol.socket_path ~dir ~state_dir:Protocol.default_state_dir
  in
  let pidp = Protocol.pid_path ~dir ~state_dir:Protocol.default_state_dir in
  Unix.mkdir (Filename.dirname sock) 0o755;
  (* a SIGKILL'd daemon's leftovers: a bound socket nobody listens on,
     and a recorded pid that is not running (beyond pid_max, so it
     cannot exist) *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX sock);
  Unix.listen fd 1;
  Unix.close fd;
  Out_channel.with_open_bin pidp (fun oc ->
      Out_channel.output_string oc "99999999\n");
  (match Client.probe ~dir () with
  | Client.Stale (Some p) ->
    Alcotest.(check int) "names the dead pid" 99999999 p
  | Client.Stale None -> Alcotest.fail "pid file was readable"
  | Client.Live _ | Client.Unresponsive _ | Client.Absent ->
    Alcotest.fail "expected a stale diagnosis");
  Alcotest.(check bool) "socket swept" false (Sys.file_exists sock);
  Alcotest.(check bool) "pid file swept" false (Sys.file_exists pidp);
  match Client.probe ~dir () with
  | Client.Absent -> ()
  | _ -> Alcotest.fail "a swept directory reads as absent"

(* ------------------------------------------------------------------ *)
(* Deleted files                                                       *)
(* ------------------------------------------------------------------ *)

let test_deleted_unit_invalidates_cone () =
  let dir = fresh_project () in
  with_server (test_config ~watch:false ~poll:0.05 dir) @@ fun srv ->
  let c = client_of srv dir in
  ignore (rpc srv c ~id:"b1" (Protocol.Build (build_opts "sources.cm")));
  (* deleting a tracked unit: its exports vanish from the parse, so
     the cone must fall back to the whole group, not silently shrink *)
  Sys.remove (Filename.concat dir "base.sml");
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait () =
    Unix.sleepf 0.05;
    Server.step ~timeout_s:0.01 srv;
    let dirty =
      match Obs.Json.member "groups" (status srv c ~id:"s") with
      | Some (Obs.Json.List (g :: _)) -> (
        match Obs.Json.member "dirty" g with
        | Some (Obs.Json.List l) ->
          List.filter_map
            (function Obs.Json.String s -> Some s | _ -> None)
            l
        | _ -> [])
      | _ -> []
    in
    if dirty <> [] then dirty
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "sweep never reported the deletion"
    else wait ()
  in
  let dirty = wait () in
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " invalidated") true (List.mem f dirty))
    [ "base.sml"; "mid.sml"; "top.sml" ];
  disconnect c

let suite =
  [
    QCheck_alcotest.to_alcotest prop_request_roundtrip;
    QCheck_alcotest.to_alcotest prop_response_roundtrip;
    Alcotest.test_case "codec rejects garbage" `Quick test_codec_rejects_garbage;
    Alcotest.test_case "status and shutdown" `Quick test_status_and_shutdown;
    Alcotest.test_case "stale socket swept" `Quick test_stale_socket_swept;
    Alcotest.test_case "half-open socket times out" `Quick
      test_half_open_socket_times_out;
    Alcotest.test_case "version mismatch rejected" `Quick
      test_version_mismatch_rejected;
    Alcotest.test_case "garbage frames survived" `Quick
      test_garbage_frame_survived;
    Alcotest.test_case "wedged client dropped" `Quick
      test_wedged_client_dropped;
    Alcotest.test_case "daemon build = one-shot build" `Quick
      test_daemon_build_matches_oneshot;
    Alcotest.test_case "run over the socket" `Quick test_run_over_socket;
    Alcotest.test_case "diagnostics streamed as envelope" `Quick
      test_diagnostics_streamed_as_envelope;
    Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
    Alcotest.test_case "eager watch rebuild" `Quick test_eager_watch_rebuild;
    Alcotest.test_case "lazy invalidation" `Quick test_lazy_invalidation;
    Alcotest.test_case "lock basics" `Quick test_lock_basics;
    Alcotest.test_case "lock contention diagnostic" `Quick
      test_lock_contention_diagnostic;
    Alcotest.test_case "watch sweep" `Quick test_watch_sweep;
    Alcotest.test_case "interrupt records partial profile" `Quick
      test_interrupt_records_partial_profile;
    Alcotest.test_case "hot swap: impl then epoch" `Quick
      test_hot_swap_impl_then_epoch;
    Alcotest.test_case "swap and epochs requests" `Quick
      test_swap_and_epochs_requests;
    Alcotest.test_case "swap refused when disabled" `Quick
      test_swap_disabled_refused;
    Alcotest.test_case "probe detects a stale daemon" `Quick
      test_probe_stale_daemon;
    Alcotest.test_case "deleted unit invalidates the cone" `Quick
      test_deleted_unit_invalidates_cone;
  ]
