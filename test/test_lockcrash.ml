(* Crash recovery for the advisory build lock.  The lock is a
   [Unix.lockf] record, so the kernel releases it with the holding
   process — a SIGKILL'd builder must never leave the directory
   unbuildable.  These tests fork real child processes, so they live
   in the worker executable (the main suite creates domains, which
   forbids fork). *)

module Lock = Daemon.Lock

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error _ -> ()

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "irm-lockcrash-%d-%d" (Unix.getpid ()) !n)
    in
    rm_rf dir;
    Unix.mkdir dir 0o755;
    dir

(* fork a child that takes the lock, touches [ready], and holds until
   killed; returns its pid once [ready] exists *)
let spawn_holder dir =
  let ready = Filename.concat dir "ready" in
  match Unix.fork () with
  | 0 ->
    let _held = Lock.acquire ~dir in
    Out_channel.with_open_bin ready (fun oc ->
        Out_channel.output_string oc "r");
    while true do
      Unix.sleepf 10.
    done;
    assert false
  | child ->
    let deadline = Unix.gettimeofday () +. 10. in
    while
      (not (Sys.file_exists ready)) && Unix.gettimeofday () < deadline
    do
      Unix.sleepf 0.02
    done;
    Alcotest.(check bool) "holder came up" true (Sys.file_exists ready);
    child

let test_killed_holder_reclaimable () =
  let dir = fresh_dir () in
  let child = spawn_holder dir in
  (* while the holder lives, contention names its pid *)
  (match Lock.acquire ~dir with
  | l ->
    Lock.release l;
    Alcotest.fail "the child should hold the lock"
  | exception Lock.Held { holder; _ } ->
    Alcotest.(check string) "Held names the holder"
      (string_of_int child) holder);
  (* crash the holder: no release runs, only the kernel's cleanup *)
  Unix.kill child Sys.sigkill;
  ignore (Unix.waitpid [] child);
  let l = Lock.acquire ~dir in
  Lock.release l

let test_exited_holder_reclaimable () =
  let dir = fresh_dir () in
  let ready = Filename.concat dir "ready" in
  (match Unix.fork () with
  | 0 ->
    (* acquire and exit without releasing *)
    let _held = Lock.acquire ~dir in
    Out_channel.with_open_bin ready (fun oc ->
        Out_channel.output_string oc "r");
    Stdlib.exit 0
  | child -> ignore (Unix.waitpid [] child));
  Alcotest.(check bool) "child ran" true (Sys.file_exists ready);
  let l = Lock.acquire ~dir in
  Lock.release l

let test_stale_lock_file_harmless () =
  let dir = fresh_dir () in
  (* a leftover lock file recording a dead pid, with no lockf record
     behind it: the content is advisory, only the kernel lock gates *)
  Out_channel.with_open_bin (Filename.concat dir Lock.lock_file) (fun oc ->
      Out_channel.output_string oc "99999999\n");
  let l = Lock.acquire ~dir in
  (* and acquiring rewrites the holder to us *)
  (match Lock.acquire ~dir with
  | l2 ->
    Lock.release l2;
    Alcotest.fail "second acquire must fail"
  | exception Lock.Held { holder; _ } ->
    Alcotest.(check string) "holder rewritten"
      (string_of_int (Unix.getpid ()))
      holder);
  Lock.release l

let suite =
  [
    Alcotest.test_case "SIGKILL'd holder is reclaimable" `Quick
      test_killed_holder_reclaimable;
    Alcotest.test_case "exited holder is reclaimable" `Quick
      test_exited_holder_reclaimable;
    Alcotest.test_case "stale lock file is harmless" `Quick
      test_stale_lock_file_harmless;
  ]
