let () =
  Alcotest.run "smlsep"
    [
      ("support", Test_support.suite);
      ("digest", Test_digest.suite);
      ("lang", Test_lang.suite);
      ("elab", Test_elab.suite);
      ("eval", Test_eval.suite);
      ("sepcomp", Test_sepcomp.suite);
      ("irm", Test_irm.suite);
      ("keepgoing", Test_keepgoing.suite);
      ("workload", Test_workload.suite);
      ("pickle", Test_pickle.suite);
      ("simplify", Test_simplify.suite);
      ("matchcheck", Test_matchcheck.suite);
      ("interactive", Test_interactive.suite);
      ("vm", Test_vm.suite);
      ("link", Test_link.suite);
      ("relink", Test_relink.suite);
      ("depend", Test_depend.suite);
      ("properties", Test_props.suite);
      ("obs", Test_obs.suite);
      ("profile", Test_profile.suite);
      ("sched", Test_sched.suite);
      ("cache", Test_cache.suite);
      ("faults", Test_faults.suite);
      ("daemon", Test_daemon.suite);
      ("remote", Test_remote.suite);
    ]
