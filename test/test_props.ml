(* Property-based tests of the system's core invariants (DESIGN.md §5):
   policy inclusion, incremental-equals-scratch, pickle stability,
   hash invariance, and differential evaluation of generated programs
   against an OCaml reference. *)

module Gen = Workload.Gen
module Driver = Irm.Driver
module Compile = Sepcomp.Compile
module Value = Dynamics.Value
module Pid = Digestkit.Pid
module Symbol = Support.Symbol

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let topology_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Gen.Chain (2 + n)) (0 -- 6);
        map (fun n -> Gen.Fanout (1 + n)) (0 -- 6);
        map (fun n -> Gen.Diamond (1 + n)) (0 -- 3);
        map
          (fun (units, seed) ->
            Gen.Random_dag { units = 3 + units; max_deps = 3; seed })
          (pair (0 -- 9) (0 -- 1000));
      ])

let edit_gen =
  QCheck.Gen.oneofl [ Gen.Touch; Gen.Impl_change; Gen.Iface_change ]

let project_arbitrary =
  QCheck.make
    ~print:(fun ((_, rich), edits) ->
      Printf.sprintf "<topology%s + %d edits>"
        (if rich then " (rich)" else "")
        (List.length edits))
    QCheck.Gen.(pair (pair topology_gen bool) (list_size (1 -- 4) edit_gen))

let fresh_project (topology, rich) =
  let fs = Vfs.memory () in
  let profile = if rich then Gen.rich_profile else Gen.default_profile in
  let project = Gen.create fs topology profile in
  (fs, project, Gen.sources project)

(* pick a victim deterministically from an int seed *)
let victim_of project i =
  let sources = Gen.sources project in
  List.nth sources (i mod List.length sources)

(* ------------------------------------------------------------------ *)
(* Policy inclusion: selective ⊆ cutoff ⊆ timestamp                    *)
(* ------------------------------------------------------------------ *)

let subset a b = List.for_all (fun x -> List.mem x b) a

let prop_policy_inclusion =
  QCheck.Test.make ~count:40 ~name:"policies: selective ⊆ cutoff ⊆ timestamp"
    project_arbitrary
    (fun (topology, edits) ->
      let run policy =
        let fs, project, sources = fresh_project topology in
        ignore fs;
        let mgr = Driver.create fs in
        let _ = Driver.build mgr ~policy ~sources in
        List.concat_map
          (fun (i, edit) ->
            Gen.edit project (victim_of project i) edit;
            let stats = Driver.build mgr ~policy ~sources in
            stats.Driver.st_recompiled)
          (List.mapi (fun i e -> (i * 3, e)) edits)
      in
      let ts = run Driver.Timestamp in
      let co = run Driver.Cutoff in
      let se = run Driver.Selective in
      subset co ts && subset se co)

(* ------------------------------------------------------------------ *)
(* Incremental equals scratch                                          *)
(* ------------------------------------------------------------------ *)

let final_pids mgr sources =
  List.map
    (fun f -> Pid.to_hex (Driver.unit_of mgr f).Pickle.Binfile.uf_static_pid)
    sources

let prop_incremental_equals_scratch policy name =
  QCheck.Test.make ~count:30
    ~name:(Printf.sprintf "%s: incremental build = scratch build" name)
    project_arbitrary
    (fun (topology, edits) ->
      (* incremental: edits interleaved with builds *)
      let fs, project, sources = fresh_project topology in
      ignore fs;
      let mgr = Driver.create fs in
      let _ = Driver.build mgr ~policy ~sources in
      List.iteri
        (fun i edit ->
          Gen.edit project (victim_of project (i * 5)) edit;
          ignore (Driver.build mgr ~policy ~sources))
        edits;
      let incremental = final_pids mgr sources in
      (* scratch: the same final sources compiled from nothing *)
      let fs2, project2, sources2 = fresh_project topology in
      ignore fs2;
      List.iteri
        (fun i edit -> Gen.edit project2 (victim_of project2 (i * 5)) edit)
        edits;
      let mgr2 = Driver.create fs2 in
      let _ = Driver.build mgr2 ~policy ~sources:sources2 in
      let scratch = final_pids mgr2 sources2 in
      incremental = scratch)

(* ------------------------------------------------------------------ *)
(* Pickle stability                                                    *)
(* ------------------------------------------------------------------ *)

let prop_pickle_roundtrip =
  QCheck.Test.make ~count:30 ~name:"pickle: read∘write is stable and verified"
    project_arbitrary
    (fun (topology, _) ->
      let fs, _project, sources = fresh_project topology in
      ignore fs;
      let mgr = Driver.create fs in
      let _ = Driver.build mgr ~policy:Driver.Cutoff ~sources in
      let session = Driver.session mgr in
      let ctx = Compile.context session in
      List.for_all
        (fun file ->
          let unit_ = Driver.unit_of mgr file in
          let bytes = Pickle.Binfile.write ctx unit_ in
          (* load into a brand-new context *)
          let session2 = Compile.new_session () in
          let ctx2 = Compile.context session2 in
          let unit2 = Pickle.Binfile.read ctx2 bytes in
          let bytes2 = Pickle.Binfile.write ctx2 unit2 in
          Pid.equal unit_.Pickle.Binfile.uf_static_pid
            unit2.Pickle.Binfile.uf_static_pid
          && String.equal bytes bytes2
          &&
          match
            Pickle.Hashenv.verify ctx2
              ~name_statics:unit2.Pickle.Binfile.uf_name_statics
              unit2.Pickle.Binfile.uf_env
          with
          | Some pid -> Pid.equal pid unit_.Pickle.Binfile.uf_static_pid
          | None -> false)
        sources)

(* ------------------------------------------------------------------ *)
(* Hash invariance under trivia                                        *)
(* ------------------------------------------------------------------ *)

let trivia_gen =
  QCheck.Gen.(
    list_size (1 -- 5)
      (oneofl
         [ "(* noise *)"; "\n\n"; "   "; "(* nested (* comment *) *)"; "\t" ]))

let prop_hash_ignores_trivia =
  QCheck.Test.make ~count:50 ~name:"hash: whitespace and comments ignored"
    (QCheck.make QCheck.Gen.(pair (0 -- 1000) trivia_gen))
    (fun (seed, trivia) ->
      let source =
        Printf.sprintf
          "structure S%d = struct val x = %d fun f n = n + %d end" (seed mod 7)
          seed (seed mod 13)
      in
      (* inject trivia around the source and between every token-safe
         space *)
      let spacer = " " ^ String.concat " " trivia ^ " " in
      let noisy =
        String.concat "" trivia
        ^ String.concat spacer (String.split_on_char ' ' source)
        ^ String.concat "" trivia
      in
      let s1 = Compile.new_session () in
      let u1 = Compile.compile s1 ~name:"s.sml" ~source ~imports:[] in
      let u2 = Compile.compile s1 ~name:"s.sml" ~source:noisy ~imports:[] in
      Pid.equal u1.Pickle.Binfile.uf_static_pid u2.Pickle.Binfile.uf_static_pid)

(* ------------------------------------------------------------------ *)
(* Differential evaluation against an OCaml reference                  *)
(* ------------------------------------------------------------------ *)

(* generate an int expression together with its reference value *)
let int_exp_gen =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then map (fun v -> (string_of_int v, v)) (0 -- 50)
         else
           frequency
             [
               (1, map (fun v -> (string_of_int v, v)) (0 -- 50));
               ( 2,
                 map2
                   (fun (sa, va) (sb, vb) ->
                     (Printf.sprintf "(%s + %s)" sa sb, va + vb))
                   (self (n / 2)) (self (n / 2)) );
               ( 2,
                 map2
                   (fun (sa, va) (sb, vb) ->
                     (Printf.sprintf "(%s - %s)" sa sb, va - vb))
                   (self (n / 2)) (self (n / 2)) );
               ( 2,
                 map2
                   (fun (sa, va) (sb, vb) ->
                     (Printf.sprintf "(%s * %s)" sa sb, va * vb))
                   (self (n / 3)) (self (n / 3)) );
               ( 1,
                 map2
                   (fun (sa, va) (sb, vb) ->
                     (* keep the divisor non-zero *)
                     ( Printf.sprintf "(%s div (%s + 1))" sa
                         (Printf.sprintf "(%s * %s)" sb sb),
                       va / ((vb * vb) + 1) ))
                   (self (n / 3)) (self (n / 3)) );
               ( 2,
                 map3
                   (fun (sa, va) (sb, vb) (sc, vc) ->
                     ( Printf.sprintf "(if %s < %s then %s else %s)" sa sb sc
                         sa,
                       if va < vb then vc else va ))
                   (self (n / 3)) (self (n / 3)) (self (n / 3)) );
               ( 1,
                 map2
                   (fun (sa, va) (sb, vb) ->
                     ( Printf.sprintf "(let val h = %s in h + %s end)" sa sb,
                       va + vb ))
                   (self (n / 2)) (self (n / 2)) );
             ])

let eval_int_unit source_exp =
  let session = Compile.new_session () in
  let unit_ =
    Compile.compile session ~name:"p.sml"
      ~source:(Printf.sprintf "structure P = struct val r = %s end" source_exp)
      ~imports:[]
  in
  let dynenv = Compile.execute unit_ Link.Linker.empty in
  let _, pid =
    List.hd unit_.Pickle.Binfile.uf_codeunit.Link.Codeunit.cu_exports
  in
  match Pid.Map.find pid dynenv with
  | Value.Vrecord fields -> (
    match Symbol.Map.find (Symbol.intern "r") fields with
    | Value.Vint n -> n
    | _ -> failwith "not an int")
  | _ -> failwith "not a record"

let prop_differential_eval =
  QCheck.Test.make ~count:80
    ~name:"evaluation agrees with the OCaml reference"
    (QCheck.make ~print:fst int_exp_gen)
    (fun (source, expected) -> eval_int_unit source = expected)

let prop_simplifier_preserves_semantics =
  QCheck.Test.make ~count:60
    ~name:"simplifier: optimized = unoptimized result"
    (QCheck.make ~print:fst int_exp_gen)
    (fun (source, _) ->
      let run optimize =
        let session = Compile.new_session () in
        let unit_ =
          Compile.compile ~optimize session ~name:"p.sml"
            ~source:
              (Printf.sprintf "structure P = struct val r = %s end" source)
            ~imports:[]
        in
        let dynenv = Compile.execute unit_ Link.Linker.empty in
        let _, pid =
          List.hd unit_.Pickle.Binfile.uf_codeunit.Link.Codeunit.cu_exports
        in
        match Pid.Map.find pid dynenv with
        | Value.Vrecord fields -> Symbol.Map.find (Symbol.intern "r") fields
        | _ -> failwith "not a record"
      in
      Value.equal (run true) (run false))

let prop_simplifier_never_grows =
  QCheck.Test.make ~count:60 ~name:"simplifier: code size never grows"
    (QCheck.make ~print:fst int_exp_gen)
    (fun (source, _) ->
      let session = Compile.new_session () in
      let compile optimize =
        (Compile.compile ~optimize session ~name:"p.sml"
           ~source:(Printf.sprintf "structure P = struct val r = %s end" source)
           ~imports:[])
          .Pickle.Binfile.uf_codeunit.Link.Codeunit.cu_code
      in
      Lambda.size (compile true) <= Lambda.size (compile false))

(* ------------------------------------------------------------------ *)
(* Corruption is always checked                                        *)
(* ------------------------------------------------------------------ *)

(* a damaged bin must either rehydrate identically or raise the checked
   [Buf.Corrupt] — never a wrong environment, never a stray exception *)
let flip_is_checked unit_ bytes pos mask =
  let flipped = Bytes.of_string bytes in
  Bytes.set flipped pos
    (Char.chr (Char.code (Bytes.get flipped pos) lxor mask));
  let flipped = Bytes.to_string flipped in
  let ctx = Compile.context (Compile.new_session ()) in
  match Pickle.Binfile.read ctx flipped with
  | unit2 ->
    (* only acceptable if the rehydration is indistinguishable *)
    Pid.equal unit2.Pickle.Binfile.uf_static_pid
      unit_.Pickle.Binfile.uf_static_pid
    && String.equal (Pickle.Binfile.write ctx unit2) bytes
  | exception Pickle.Buf.Corrupt _ -> true
  | exception _ -> false

let test_every_byte_flip_is_checked () =
  let session = Compile.new_session () in
  let unit_ =
    Compile.compile session ~name:"u.sml"
      ~source:"structure U = struct val x = 41 fun f n = n + x end" ~imports:[]
  in
  let bytes = Pickle.Binfile.write (Compile.context session) unit_ in
  for pos = 0 to String.length bytes - 1 do
    if not (flip_is_checked unit_ bytes pos 0x01) then
      Alcotest.fail
        (Printf.sprintf "flip at byte %d/%d escaped the corruption check" pos
           (String.length bytes))
  done

let prop_random_flip_is_checked =
  QCheck.Test.make ~count:60
    ~name:"pickle: any 1-byte flip rehydrates identically or is Corrupt"
    (QCheck.make
       ~print:(fun (seed, pos, mask) ->
         Printf.sprintf "<seed %d, byte %d, mask 0x%02x>" seed pos mask)
       QCheck.Gen.(triple (0 -- 1000) (0 -- 100_000) (1 -- 255)))
    (fun (seed, pos, mask) ->
      let session = Compile.new_session () in
      let unit_ =
        Compile.compile session ~name:"u.sml"
          ~source:
            (Printf.sprintf
               "structure U%d = struct val x = %d fun f n = n * x + %d end"
               (seed mod 5) seed (seed mod 17))
          ~imports:[]
      in
      let bytes = Pickle.Binfile.write (Compile.context session) unit_ in
      flip_is_checked unit_ bytes (pos mod String.length bytes) mask)

(* ------------------------------------------------------------------ *)
(* Build idempotence                                                   *)
(* ------------------------------------------------------------------ *)

let prop_null_build_idempotent =
  QCheck.Test.make ~count:30 ~name:"null rebuild recompiles nothing"
    project_arbitrary
    (fun (topology, edits) ->
      List.for_all
        (fun policy ->
          let fs, project, sources = fresh_project topology in
          ignore fs;
          let mgr = Driver.create fs in
          let _ = Driver.build mgr ~policy ~sources in
          List.iteri
            (fun i edit ->
              Gen.edit project (victim_of project (i * 7)) edit;
              ignore (Driver.build mgr ~policy ~sources))
            edits;
          let again = Driver.build mgr ~policy ~sources in
          again.Driver.st_recompiled = [])
        [ Driver.Timestamp; Driver.Cutoff; Driver.Selective ])

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_policy_inclusion;
      prop_incremental_equals_scratch Driver.Cutoff "cutoff";
      prop_incremental_equals_scratch Driver.Selective "selective";
      prop_pickle_roundtrip;
      prop_random_flip_is_checked;
      prop_hash_ignores_trivia;
      prop_differential_eval;
      prop_simplifier_preserves_semantics;
      prop_simplifier_never_grows;
      prop_null_build_idempotent;
    ]
  @ [
      Alcotest.test_case "every 1-byte flip in a bin is checked" `Quick
        test_every_byte_flip_is_checked;
    ]
